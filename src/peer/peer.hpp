// A loyal LOCKSS peer: the composition of every substrate behind the
// protocol::PeerHost interface.
//
// A Peer owns its AU replicas, task schedule, effort meter, per-AU
// reputation state (known-peers lists, introduction tables, reference
// lists), the admission-control machinery (consideration rate limiter,
// refractory tracker, random-drop policy), its bit-rot damage process, and
// the active poller/voter sessions. It registers itself as the network
// handler for its NodeId and dispatches protocol messages to sessions.
//
// Polls run at a fixed autonomous rate (§5.1): one poll per AU per
// inter-poll interval, phase-randomized at startup (desynchronization),
// never adapted to load or adversity.
#ifndef LOCKSS_PEER_PEER_HPP_
#define LOCKSS_PEER_PEER_HPP_

#include <array>
#include <memory>
#include <vector>

#include "crypto/cost_model.hpp"
#include "crypto/mbf.hpp"
#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "net/node_slot_registry.hpp"
#include "protocol/host.hpp"
#include "protocol/poller_session.hpp"
#include "protocol/session_table.hpp"
#include "protocol/voter_session.hpp"
#include "reputation/admission_policy.hpp"
#include "storage/damage.hpp"
#include "storage/storage_node.hpp"

namespace lockss::peer {

// Everything shared across the deployment; owned by the scenario.
struct PeerEnvironment {
  sim::Simulator* simulator = nullptr;
  net::Network* network = nullptr;
  metrics::MetricsCollector* metrics = nullptr;  // optional
  // Deployment-wide identity registry backing the dense per-AU substrates
  // (optional; null hosts fall back to the substrates' ordered-map paths).
  // When set, every identity must be registered before traffic starts —
  // scenario setup registers loyal peers, newcomers, then adversary
  // minions, in ascending NodeId order (the registry's ordering contract).
  const net::NodeSlotRegistry* nodes = nullptr;
  protocol::Params params;
  crypto::CostModel costs;
  storage::DamageConfig damage;
  bool enable_damage = true;
  // Keep completed tasks in the schedule instead of pruning them (the §6.3
  // layering methodology exports the full busy history after a run).
  bool retain_schedule_history = false;
  // Optional observer invoked for every concluded poll (examples, debugging,
  // custom experiment instrumentation).
  std::function<void(net::NodeId poller, const protocol::PollOutcome&)> poll_observer;
  // Protocol event sink for this peer's sessions (docs/observability.md), or
  // nullptr when tracing is off. In sharded runs each shard's peers share
  // that shard's sink.
  obs::EventSink* events = nullptr;
};

class Peer : public protocol::PeerHost, public net::MessageHandler {
 public:
  Peer(const PeerEnvironment& env, net::NodeId id, sim::Rng rng);
  ~Peer() override;

  // --- Deployment-time setup (before start()) ------------------------------
  // Adds a replica of `au` (publisher-correct).
  void join_au(storage::AuId au);
  // Seeds the initial reference list for `au`.
  void seed_reference_list(storage::AuId au, const std::vector<net::NodeId>& peers);
  // Seeds first-hand reputation (e.g. mutual `even` grades inside the
  // bootstrap population, or `debt` for a §7.4 adversary identity).
  void seed_grade(storage::AuId au, net::NodeId peer, reputation::Grade grade);
  void set_friends(std::vector<net::NodeId> friends) { friends_ = std::move(friends); }

  // Starts the damage process, the per-AU poll cycles (random initial
  // phase), and periodic maintenance.
  void start();

  // --- Deployment dynamics (dynamics::ChurnModel) --------------------------
  // Takes the peer offline: every live poller/voter session is closed
  // (pending events cancelled, booked schedule slots released — no leaked
  // reservations), in-flight polls simply vanish (no outcome is recorded),
  // and incoming messages are dropped until recovery. The poll cycle and
  // maintenance timers keep ticking but no-op while offline, so recovery
  // needs no re-randomized phases — determinism is preserved. Departing
  // twice is a driver bug and asserts (the churn model merges overlapping
  // down intervals at build time precisely so this cannot fire).
  void depart();
  // Brings the peer back. `state_loss` models a crash that took the disks:
  // every replica is reinstalled from the publisher (damaged blocks
  // restored, repair-service effort charged per AU). Recovering while
  // online asserts.
  void recover(bool state_loss);
  bool online() const { return online_; }

  // --- Operator interventions (dynamics::OperatorResponseEngine) -----------
  // Re-keys the peer: its admission-control state (refractory periods and
  // per-peer admission allowances) restarts from scratch, as a freshly
  // provisioned identity's would.
  void operator_rekey();
  // Multiplies the invitation-consideration budget by `factor` (cumulative,
  // floored so the peer never wedges shut entirely).
  void tighten_consideration_rate(double factor);
  // Re-fetches every AU from the publisher, restoring damaged blocks and
  // charging `cost_factor` replica hashes per AU (peer::OperatorModel's
  // audit cost model). Returns the number of blocks restored.
  uint32_t operator_recrawl(double cost_factor);

  // --- net::MessageHandler --------------------------------------------------
  void handle_message(net::MessagePtr message) override;

  // --- protocol::PeerHost ----------------------------------------------------
  net::NodeId id() const override { return id_; }
  const protocol::Params& params() const override { return env_.params; }
  const protocol::EffortSchedule& efforts() const override { return efforts_; }
  const crypto::CostModel& costs() const override { return env_.costs; }
  sim::Simulator& simulator() override { return *env_.simulator; }
  sim::Rng& rng() override { return rng_; }
  crypto::MbfService& mbf() override { return mbf_; }
  storage::AuReplica& replica(storage::AuId au) override { return storage_.replica(au); }
  bool has_replica(storage::AuId au) const override { return storage_.has_replica(au); }
  sched::TaskSchedule& schedule() override { return schedule_; }
  sched::EffortMeter& meter() override { return meter_; }
  sched::InvitationRateLimiter& consideration_limiter() override { return limiter_; }
  sched::RefractoryTracker& refractory() override { return refractory_; }
  reputation::KnownPeers& known_peers(storage::AuId au) override;
  reputation::IntroductionTable& introductions(storage::AuId au) override;
  protocol::ReferenceList& reference_list(storage::AuId au) override;
  const std::vector<net::NodeId>& friends() const override { return friends_; }
  const net::NodeSlotRegistry* node_registry() const override { return env_.nodes; }
  metrics::MetricsCollector* metrics() override { return env_.metrics; }
  obs::EventSink* trace_sink() override { return env_.events; }
  bool pass_random_drop(reputation::Standing standing) override {
    return admission_.pass_random_drop(standing);
  }
  bool pass_random_drop_with(double drop_probability) override {
    return !rng_.bernoulli(drop_probability);
  }
  void send(net::NodeId to, std::unique_ptr<protocol::ProtocolMessage> message) override;
  protocol::PollerSession* find_poller_session(protocol::PollId id) override;
  protocol::VoterSession* find_voter_session(protocol::PollId id) override;
  void retire_poller_session(protocol::PollId id) override;
  void retire_voter_session(protocol::PollId id) override;
  void on_poll_concluded(const protocol::PollOutcome& outcome) override;
  void on_replica_state_changed(storage::AuId au) override;
  void note_solicitation_sent() override { ++solicitations_sent_; }

  // --- Introspection ----------------------------------------------------------
  const storage::StorageNode& storage() const { return storage_; }
  const sched::EffortMeter& meter() const { return meter_; }
  uint64_t solicitations_sent() const { return solicitations_sent_; }
  uint64_t polls_started() const { return polls_started_; }
  size_t active_poller_sessions() const { return pollers_.size(); }
  size_t active_voter_sessions() const { return voters_.size(); }
  // Ids of the polls this peer is currently running as poller. Used by the
  // vote-flood adversary's replay oracle (§3.1 insider information) and by
  // diagnostics; loyal peers never need it.
  std::vector<protocol::PollId> live_poller_poll_ids() const;
  // Charges a manual operator audit (publisher re-fetch + verify + rewrite)
  // at `cost_factor` times one full replica hash. Called by OperatorModel.
  void charge_operator_audit(double cost_factor);
  const storage::DamageProcess* damage_process() const { return damage_.get(); }
  // Histogram of admission-pipeline decisions for incoming Poll invitations,
  // indexed by protocol::AdmissionVerdict.
  const std::array<uint64_t, 8>& admission_verdicts() const { return admission_verdicts_; }
  // Robustness counters accumulated from every concluded poll's outcome —
  // the observable surface of the unreliable-network fault layer
  // (docs/faults.md).
  uint64_t ack_timeouts_total() const { return ack_timeouts_total_; }
  uint64_t vote_timeouts_total() const { return vote_timeouts_total_; }
  uint64_t solicitation_retries_total() const { return solicitation_retries_total_; }
  // Histogram of poll conclusions that fell short of success, indexed by
  // protocol::PollAbortReason (slot kNone counts successes).
  const std::array<uint64_t, protocol::kPollAbortReasonCount>& poll_aborts() const {
    return poll_aborts_;
  }
  // Invokes `fn(started)` for every live poller and voter session, in
  // PollId order. The harvest-time session-liveness audit bounds each live
  // session's age against the inter-poll interval.
  void for_each_live_session_start(const std::function<void(sim::SimTime)>& fn);

 private:
  struct AuState {
    std::unique_ptr<reputation::KnownPeers> known_peers;
    std::unique_ptr<reputation::IntroductionTable> introductions;
    std::unique_ptr<protocol::ReferenceList> reference_list;
    // Last damaged-state reported to the metrics collector for this AU.
    bool damaged_cached = false;

    bool joined() const { return reference_list != nullptr; }
  };

  AuState& au_state(storage::AuId au);
  void start_poll(storage::AuId au);
  void on_damage_injected(storage::AuId au, uint32_t block);
  void refresh_damage_state(storage::AuId au);
  void maintenance();
  double expected_invitation_rate_per_second() const;

  PeerEnvironment env_;
  net::NodeId id_;
  sim::Rng rng_;
  crypto::MbfService mbf_;
  protocol::EffortSchedule efforts_;

  storage::StorageNode storage_;
  std::unique_ptr<storage::DamageProcess> damage_;
  sched::TaskSchedule schedule_;
  sched::EffortMeter meter_;
  sched::InvitationRateLimiter limiter_;
  sched::RefractoryTracker refractory_;
  reputation::AdmissionPolicy admission_;

  // Dense per-AU state, indexed by AuId.value (AU ids are small sequential
  // integers in every deployment); unjoined slots hold empty AuStates. The
  // per-message au_state() lookup is one vector index instead of a map walk.
  std::vector<AuState> au_states_;
  std::vector<net::NodeId> friends_;

  // Live sessions in open-addressed tables keyed by PollId: every message
  // dispatch and session-scheduled event resolves through them (PR 1's
  // find-by-id lifetime rule), so the lookup is hot-path.
  protocol::SessionTable<protocol::PollerSession> pollers_;
  protocol::SessionTable<protocol::VoterSession> voters_;
  uint32_t poll_sequence_ = 0;
  uint64_t solicitations_sent_ = 0;
  uint64_t polls_started_ = 0;
  std::array<uint64_t, 8> admission_verdicts_{};
  uint64_t ack_timeouts_total_ = 0;
  uint64_t vote_timeouts_total_ = 0;
  uint64_t solicitation_retries_total_ = 0;
  std::array<uint64_t, protocol::kPollAbortReasonCount> poll_aborts_{};
  bool started_ = false;
  bool online_ = true;
  // Cumulative operator rate-tightening; multiplies the §6.3 consideration
  // budget.
  double consideration_scale_ = 1.0;
};

}  // namespace lockss::peer

#endif  // LOCKSS_PEER_PEER_HPP_
