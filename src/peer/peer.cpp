#include "peer/peer.hpp"

#include <algorithm>
#include <cassert>

#include "obs/event_log.hpp"

namespace lockss::peer {
namespace {
// Periodic housekeeping cadence (schedule/refractory pruning).
constexpr sim::SimTime kMaintenanceInterval = sim::SimTime::days(30);
// Deferred session destruction delay; must be > 0 so a session is never
// deleted while one of its member functions is on the stack.
constexpr sim::SimTime kRetireDelay = sim::SimTime::milliseconds(1);
}  // namespace

Peer::Peer(const PeerEnvironment& env, net::NodeId id, sim::Rng rng)
    : env_(env),
      id_(id),
      rng_(rng),
      mbf_(env.costs, rng_.split()),
      efforts_(env.params, env.costs),
      limiter_(0.0, 8.0),
      refractory_(env.params.refractory_period),
      admission_(reputation::AdmissionPolicyConfig{env.params.unknown_drop_probability,
                                                   env.params.debt_drop_probability},
                 rng_.split()) {
  assert(env_.simulator != nullptr && env_.network != nullptr);
  env_.network->register_node(id_, this);
}

Peer::~Peer() { env_.network->unregister_node(id_); }

Peer::AuState& Peer::au_state(storage::AuId au) {
  assert(au.value < au_states_.size() && au_states_[au.value].joined() && "AU not joined");
  return au_states_[au.value];
}

void Peer::join_au(storage::AuId au) {
  storage_.add_replica(au, env_.params.au_spec);
  if (au.value >= au_states_.size()) {
    au_states_.resize(au.value + 1);
  }
  AuState& state = au_states_[au.value];
  state.known_peers =
      std::make_unique<reputation::KnownPeers>(env_.params.grade_decay_interval, env_.nodes);
  state.introductions = std::make_unique<reputation::IntroductionTable>(
      env_.params.max_outstanding_introductions, env_.nodes);
  state.reference_list = std::make_unique<protocol::ReferenceList>(id_, env_.nodes);
  if (env_.metrics != nullptr) {
    // Claim dense metric slots at setup time so the poll path never has to
    // register lazily (which would allocate).
    env_.metrics->register_peer(id_);
    env_.metrics->register_au(au);
  }
}

void Peer::seed_reference_list(storage::AuId au, const std::vector<net::NodeId>& peers) {
  auto& ref = *au_state(au).reference_list;
  for (net::NodeId peer : peers) {
    ref.insert(peer);
  }
}

void Peer::seed_grade(storage::AuId au, net::NodeId peer, reputation::Grade grade) {
  au_state(au).known_peers->ensure_known(peer, grade, env_.simulator->now());
}

double Peer::expected_invitation_rate_per_second() const {
  // Self-clocking (§5.1): we expect to *receive* invitations at roughly the
  // rate we send them — expected solicitations per poll, per AU, per
  // interval. The §6.3 budget is `consideration_rate_multiplier` times that.
  const double per_au_per_second = env_.params.expected_solicitations_per_poll() /
                                   env_.params.inter_poll_interval.to_seconds();
  return per_au_per_second * static_cast<double>(storage_.replica_count());
}

void Peer::start() {
  assert(!started_);
  started_ = true;
  limiter_.update_rate(expected_invitation_rate_per_second(),
                       env_.params.consideration_rate_multiplier);
  if (env_.enable_damage && storage_.replica_count() > 0) {
    damage_ = std::make_unique<storage::DamageProcess>(
        *env_.simulator, rng_.split(), env_.damage, storage_,
        [this](storage::AuId au, uint32_t block) { on_damage_injected(au, block); });
  }
  // Fixed-rate poll cycle per AU with a random initial phase: peers (and
  // AUs) spread their polls across the interval instead of synchronizing.
  for (storage::AuId au : storage_.au_ids()) {
    const sim::SimTime phase =
        rng_.uniform_time(sim::SimTime::zero(), env_.params.inter_poll_interval);
    env_.simulator->schedule_in(phase, [this, au] { start_poll(au); });
  }
  env_.simulator->schedule_in(kMaintenanceInterval, [this] { maintenance(); });
}

void Peer::start_poll(storage::AuId au) {
  // Schedule the next cycle first: the poll rate never adapts (§5.1).
  env_.simulator->schedule_in(env_.params.inter_poll_interval, [this, au] { start_poll(au); });
  if (!online_) {
    return;  // down peers keep the cycle ticking but call no polls
  }
  const protocol::PollId id = protocol::make_poll_id(id_, poll_sequence_++);
  auto* raw = pollers_.insert(id, std::make_unique<protocol::PollerSession>(*this, au, id));
  ++polls_started_;
  raw->start();
}

void Peer::depart() {
  assert(started_ && "depart() before start()");
  assert(online_ && "double departure");
  online_ = false;
  // Close every live session. Destroying a session cancels its pending
  // simulator events (they resolve through find_*_session and would no-op
  // anyway) and releases its booked schedule slots, so a departed peer's
  // calendar carries no phantom commitments into recovery. PollId order
  // keeps the teardown walk deterministic. Safe to destroy directly: the
  // churn driver runs from its own simulator event, never from inside a
  // session member function.
  for (protocol::PollId id : pollers_.keys_sorted()) {
    pollers_.erase(id);
  }
  for (protocol::PollId id : voters_.keys_sorted()) {
    voters_.erase(id);
  }
}

void Peer::recover(bool state_loss) {
  assert(started_ && "recover() before start()");
  assert(!online_ && "recover() while online");
  online_ = true;
  if (state_loss) {
    // The crash took the disks: reinstall every AU from the publisher —
    // the operator re-crawl, at one full replica hash per AU (fetch +
    // verify + rewrite), so crash recovery is never free.
    operator_recrawl(1.0);
  }
}

void Peer::operator_rekey() {
  // Fresh keys mean a fresh admission-control ledger: refractory periods
  // and per-peer admission allowances restart from scratch.
  refractory_ = sched::RefractoryTracker(env_.params.refractory_period);
}

void Peer::tighten_consideration_rate(double factor) {
  consideration_scale_ = std::max(0.01, consideration_scale_ * factor);
  if (started_) {
    limiter_.update_rate(expected_invitation_rate_per_second(),
                         env_.params.consideration_rate_multiplier * consideration_scale_);
  }
}

uint32_t Peer::operator_recrawl(double cost_factor) {
  uint32_t restored = 0;
  for (storage::AuId au : storage_.au_ids()) {
    storage::AuReplica& replica = storage_.replica(au);
    for (uint32_t b = 0; b < replica.spec().block_count; ++b) {
      if (replica.block_damaged(b)) {
        replica.restore_block(b);
        ++restored;
      }
    }
    charge_operator_audit(cost_factor);
    refresh_damage_state(au);
  }
  return restored;
}

void Peer::maintenance() {
  const sim::SimTime now = env_.simulator->now();
  if (!env_.retain_schedule_history) {
    schedule_.prune(now);
  }
  refractory_.prune(now);
  env_.simulator->schedule_in(kMaintenanceInterval, [this] { maintenance(); });
}

void Peer::handle_message(net::MessagePtr message) {
  if (!online_) {
    // Defense in depth: the Network re-checks link filters at delivery
    // time, so with an OfflineSetFilter installed (run_scenario always
    // installs one when churn is on) nothing reaches a departed peer.
    // This guard covers deployments that drive depart() without a filter
    // (hand-built tests, custom drivers).
    return;
  }
  // One virtual tag load + switch; the static_casts are sound because the
  // tag is owned by the concrete type (messages.hpp).
  switch (message->kind()) {
    case net::MessageKind::kPoll: {
      const auto& poll = static_cast<const protocol::PollMsg&>(*message);
      if (voters_.contains(poll.poll_id)) {
        return;  // duplicate invitation for a live session
      }
      protocol::AdmissionVerdict verdict;
      auto session = protocol::VoterSession::consider_invitation(*this, poll, &verdict);
      ++admission_verdicts_[static_cast<size_t>(verdict)];
      if (env_.events != nullptr) {
        obs::Event e;
        e.time_ns = env_.simulator->now().ns();
        e.poll = poll.poll_id;
        e.arg = static_cast<uint64_t>(verdict);
        e.origin = static_cast<uint32_t>(id_.value);
        e.other = static_cast<uint32_t>(poll.from.value);
        e.au = static_cast<uint32_t>(poll.au.value);
        e.kind = obs::EventKind::kInvitationConsidered;
        e.domain = 1;
        env_.events->record(e);
      }
      if (session != nullptr) {
        voters_.insert(poll.poll_id, std::move(session));
      }
      return;
    }
    case net::MessageKind::kPollAck: {
      const auto& ack = static_cast<const protocol::PollAckMsg&>(*message);
      if (auto* s = find_poller_session(ack.poll_id)) {
        s->on_poll_ack(ack);
      }
      return;
    }
    case net::MessageKind::kPollProof: {
      const auto& proof = static_cast<const protocol::PollProofMsg&>(*message);
      if (auto* s = find_voter_session(proof.poll_id)) {
        s->on_poll_proof(proof);
      }
      return;
    }
    case net::MessageKind::kVote: {
      const auto& vote = static_cast<const protocol::VoteMsg&>(*message);
      if (auto* s = find_poller_session(vote.poll_id)) {
        s->on_vote(vote);
      }
      return;
    }
    case net::MessageKind::kRepairRequest: {
      const auto& request = static_cast<const protocol::RepairRequestMsg&>(*message);
      if (auto* s = find_voter_session(request.poll_id)) {
        s->on_repair_request(request);
      }
      return;
    }
    case net::MessageKind::kRepair: {
      const auto& repair = static_cast<const protocol::RepairMsg&>(*message);
      if (auto* s = find_poller_session(repair.poll_id)) {
        s->on_repair(repair);
      }
      return;
    }
    case net::MessageKind::kEvaluationReceipt: {
      const auto& receipt = static_cast<const protocol::EvaluationReceiptMsg&>(*message);
      if (auto* s = find_voter_session(receipt.poll_id)) {
        s->on_receipt(receipt);
      }
      return;
    }
    case net::MessageKind::kOther:
      return;  // not a protocol message; ignore
  }
}

reputation::KnownPeers& Peer::known_peers(storage::AuId au) { return *au_state(au).known_peers; }

reputation::IntroductionTable& Peer::introductions(storage::AuId au) {
  return *au_state(au).introductions;
}

protocol::ReferenceList& Peer::reference_list(storage::AuId au) {
  return *au_state(au).reference_list;
}

void Peer::send(net::NodeId to, std::unique_ptr<protocol::ProtocolMessage> message) {
  message->from = id_;
  message->to = to;
  // Fixed per-message processing cost on the sender.
  meter_.charge(sched::EffortCategory::kOverhead, env_.costs.message_overhead_seconds);
  env_.network->send(std::move(message));
}

protocol::PollerSession* Peer::find_poller_session(protocol::PollId id) {
  return pollers_.find(id);
}

void Peer::charge_operator_audit(double cost_factor) {
  const double replica_hash_seconds =
      env_.costs.hash_time(env_.params.au_spec.size_bytes).to_seconds();
  meter_.charge(sched::EffortCategory::kRepairService, cost_factor * replica_hash_seconds);
}

std::vector<protocol::PollId> Peer::live_poller_poll_ids() const {
  // PollId order — the iteration order of the seed's std::map, which the
  // vote-flood replay oracle RNG-indexes into.
  return pollers_.keys_sorted();
}

protocol::VoterSession* Peer::find_voter_session(protocol::PollId id) {
  return voters_.find(id);
}

void Peer::retire_poller_session(protocol::PollId id) {
  env_.simulator->schedule_in(kRetireDelay, [this, id] { pollers_.erase(id); });
}

void Peer::retire_voter_session(protocol::PollId id) {
  env_.simulator->schedule_in(kRetireDelay, [this, id] { voters_.erase(id); });
}

void Peer::on_poll_concluded(const protocol::PollOutcome& outcome) {
  // Metrics recording happens in PollerSession::conclude() via metrics();
  // this hook carries host-side reactions plus the robustness counters
  // (lossy-network observability, docs/faults.md).
  ack_timeouts_total_ += outcome.ack_timeouts;
  vote_timeouts_total_ += outcome.vote_timeouts;
  solicitation_retries_total_ += outcome.solicitation_retries;
  ++poll_aborts_[static_cast<size_t>(outcome.abort)];
  if (env_.poll_observer) {
    env_.poll_observer(id_, outcome);
  }
}

void Peer::for_each_live_session_start(const std::function<void(sim::SimTime)>& fn) {
  for (protocol::PollId id : pollers_.keys_sorted()) {
    fn(pollers_.find(id)->started());
  }
  for (protocol::PollId id : voters_.keys_sorted()) {
    fn(voters_.find(id)->started());
  }
}

void Peer::on_damage_injected(storage::AuId au, uint32_t block) {
  (void)block;
  if (env_.metrics != nullptr) {
    env_.metrics->on_damage_event();
  }
  refresh_damage_state(au);
}

void Peer::on_replica_state_changed(storage::AuId au) { refresh_damage_state(au); }

void Peer::refresh_damage_state(storage::AuId au) {
  const bool now_damaged = storage_.replica(au).damaged();
  bool& cached = au_state(au).damaged_cached;
  if (cached == now_damaged) {
    return;
  }
  cached = now_damaged;
  if (env_.metrics != nullptr) {
    env_.metrics->on_damage_state_change(env_.simulator->now(), now_damaged ? 1 : -1);
  }
}

}  // namespace lockss::peer
