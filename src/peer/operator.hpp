// Human-operator response to poll alarms.
//
// §4.3: when a poll finds no landslide either way, the poller "deems the
// poll inconclusive, raising an alarm that requires attention from a human
// operator." The paper treats what happens next as out of band; a deployed
// archive needs the loop closed, and the LOCKSS design closes it by letting
// the operator re-fetch damaged content from the publisher (each peer's
// original replica source, §2) or adjudicate by hand.
//
// OperatorModel simulates that response: it watches poll outcomes, and for
// every alarm schedules a manual audit `response_delay` later (operators are
// not on call around the clock). The audit compares the replica block by
// block against the publisher's canonical content and restores any damaged
// blocks. Repair via operator costs the peer a full replica fetch, charged
// to its effort meter, so alarm handling is never free — the alarm-rate
// economics of §7 stay visible in the friction metrics.
//
// Install by chaining: the model wraps any existing poll observer and must
// be constructed before the peers (the environment is copied into each
// Peer).
#ifndef LOCKSS_PEER_OPERATOR_HPP_
#define LOCKSS_PEER_OPERATOR_HPP_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "peer/peer.hpp"

namespace lockss::peer {

struct OperatorConfig {
  // Time between the alarm and the operator's manual audit.
  sim::SimTime response_delay = sim::SimTime::days(3);
  // Effort charged for the manual audit, as a multiple of one full replica
  // hash (fetch from publisher + verify + rewrite).
  double audit_cost_factor = 2.0;
};

class OperatorModel {
 public:
  OperatorModel(sim::Simulator& simulator, OperatorConfig config);

  // Registers `peer_ptr` for alarm service. Call for every peer before
  // start().
  void attend(Peer* peer_ptr);

  // Returns the observer to install in PeerEnvironment::poll_observer;
  // chains to `next` (which may be empty).
  std::function<void(net::NodeId, const protocol::PollOutcome&)> observer(
      std::function<void(net::NodeId, const protocol::PollOutcome&)> next = nullptr);

  uint64_t alarms_seen() const { return alarms_seen_; }
  uint64_t audits_performed() const { return audits_performed_; }
  uint64_t blocks_restored() const { return blocks_restored_; }

 private:
  void on_outcome(net::NodeId poller, const protocol::PollOutcome& outcome);
  void audit(net::NodeId poller, storage::AuId au);

  sim::Simulator& simulator_;
  OperatorConfig config_;
  std::map<net::NodeId, Peer*> peers_;
  uint64_t alarms_seen_ = 0;
  uint64_t audits_performed_ = 0;
  uint64_t blocks_restored_ = 0;
};

}  // namespace lockss::peer

#endif  // LOCKSS_PEER_OPERATOR_HPP_
