#include "peer/operator.hpp"

namespace lockss::peer {

OperatorModel::OperatorModel(sim::Simulator& simulator, OperatorConfig config)
    : simulator_(simulator), config_(config) {}

void OperatorModel::attend(Peer* peer_ptr) { peers_[peer_ptr->id()] = peer_ptr; }

std::function<void(net::NodeId, const protocol::PollOutcome&)> OperatorModel::observer(
    std::function<void(net::NodeId, const protocol::PollOutcome&)> next) {
  return [this, next = std::move(next)](net::NodeId poller, const protocol::PollOutcome& outcome) {
    on_outcome(poller, outcome);
    if (next) {
      next(poller, outcome);
    }
  };
}

void OperatorModel::on_outcome(net::NodeId poller, const protocol::PollOutcome& outcome) {
  if (outcome.kind != protocol::PollOutcomeKind::kAlarm) {
    return;
  }
  ++alarms_seen_;
  if (!peers_.contains(poller)) {
    return;  // an unattended peer (e.g. a custom host in tests)
  }
  simulator_.schedule_in(config_.response_delay,
                         [this, poller, au = outcome.au] { audit(poller, au); });
}

void OperatorModel::audit(net::NodeId poller, storage::AuId au) {
  auto it = peers_.find(poller);
  if (it == peers_.end() || !it->second->has_replica(au)) {
    return;
  }
  Peer& peer = *it->second;
  ++audits_performed_;
  // Fetch from the publisher and verify against the local replica; restore
  // whatever differs. Charged at the configured multiple of one full replica
  // hash.
  storage::AuReplica& replica = peer.replica(au);
  uint32_t restored = 0;
  for (uint32_t b = 0; b < replica.spec().block_count; ++b) {
    if (replica.block_damaged(b)) {
      replica.restore_block(b);
      ++restored;
    }
  }
  blocks_restored_ += restored;
  peer.charge_operator_audit(config_.audit_cost_factor);
  if (restored > 0) {
    peer.on_replica_state_changed(au);
  }
}

}  // namespace lockss::peer
