// Deployment-wide dense indexing of node identities.
//
// The per-(peer, AU) protocol substrates — known-peers reputation tables,
// reference lists, introduction tables, vote tallies — are all keyed by
// NodeId. The seed kept each of them in a node-based ordered container,
// paying an allocation per first contact and an ordered walk per lookup on
// the invitation/vote/poll-conclusion hot path. Like metrics::SlotRegistry
// did for the metrics pipeline (PR 2), this registry assigns every identity
// in the deployment a small dense index once, at scenario setup; the
// substrates then use flat slot arrays and the hot path is an index load.
//
// Unlike the metrics registry, node ids are *not* near-dense: adversary
// minions live at high bases (1<<22 and up, "unconstrained identities",
// §3.1), so the id→index table is a small open-addressed hash table rather
// than a direct-indexed vector. Lookups never allocate.
//
// Ordering contract (determinism): slot index order equals NodeId order.
// Iterating slots 0..count-1 therefore yields identities in ascending
// NodeId order — exactly the iteration order of the std::map/std::set based
// seed containers whose walks feed RNG draws and message emission. The
// contract is enforced by requiring registration in ascending NodeId order
// (asserted), which every caller satisfies naturally: scenario setup
// registers loyal peers, then newcomers, then adversary minions, whose id
// bases ascend.
//
// Registration contract: identities register at scenario setup, before any
// substrate operation mentions them. An id that was never registered is
// still legal everywhere (the admission-flood adversary spoofs unbounded
// fresh ids); substrates route such ids through a small ordered-map
// overflow path with seed-identical semantics. Registering an id after a
// substrate has already seen it unregistered is tolerated too — reads fall
// back to the overflow entry and mutators migrate it into the slot — but
// it forfeits the O(1) fast path until the migration happens, so keep
// registration ahead of traffic.
#ifndef LOCKSS_NET_NODE_SLOT_REGISTRY_HPP_
#define LOCKSS_NET_NODE_SLOT_REGISTRY_HPP_

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "net/node_id.hpp"
#include "sim/rng.hpp"

namespace lockss::net {

class NodeSlotRegistry {
 public:
  static constexpr uint32_t kUnassigned = UINT32_MAX;

  // Idempotent; returns the dense index. New ids must arrive in ascending
  // NodeId order (see the ordering contract above). Registration is
  // setup-time work and may allocate; lookups never do.
  uint32_t register_node(NodeId id) {
    assert(id.valid());
    const uint32_t existing = index_of(id);
    if (existing != kUnassigned) {
      return existing;
    }
    // Out-of-order registration silently breaks the slot-order == NodeId-order
    // contract every dense substrate (and the shard partition) builds on, so
    // it is a hard error even in builds that compile asserts out — an assert
    // alone would let a release build corrupt every substrate walk.
    if (!nodes_.empty() && id.value <= nodes_.back().value) {
      std::fprintf(stderr,
                   "NodeSlotRegistry: out-of-order registration of node %u after %u "
                   "(registration must be in ascending NodeId order)\n",
                   id.value, nodes_.back().value);
      std::abort();
    }
    const uint32_t index = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(id);
    // 64-bit load-factor math: the 10x numerator must not wrap for slot
    // counts in the millions on any platform (size_t is 32 bits on some).
    if ((static_cast<uint64_t>(nodes_.size()) + 1) * 10 >=
        static_cast<uint64_t>(table_.size()) * 7) {  // load factor 0.7
      rehash();
    } else {
      place(id, index);
    }
    return index;
  }

  // kUnassigned when the id was never registered.
  uint32_t index_of(NodeId id) const {
    if (table_.empty() || !id.valid()) {
      return kUnassigned;
    }
    const size_t mask = table_.size() - 1;
    for (size_t probe = hash(id.value) & mask;; probe = (probe + 1) & mask) {
      const uint32_t index = table_[probe];
      if (index == kUnassigned) {
        return kUnassigned;
      }
      if (nodes_[index] == id) {
        return index;
      }
    }
  }

  NodeId node_at(uint32_t index) const {
    assert(index < nodes_.size());
    return nodes_[index];
  }

  uint32_t count() const { return static_cast<uint32_t>(nodes_.size()); }

 private:
  // splitmix64 finalizer: well mixed over both the small sequential loyal
  // ids and the high-base minion ids.
  static size_t hash(uint32_t raw) { return static_cast<size_t>(sim::splitmix64_mix(raw)); }

  void place(NodeId id, uint32_t index) {
    const size_t mask = table_.size() - 1;
    size_t probe = hash(id.value) & mask;
    while (table_[probe] != kUnassigned) {
      probe = (probe + 1) & mask;
    }
    table_[probe] = index;
  }

  void rehash() {
    uint64_t capacity = table_.empty() ? 16 : static_cast<uint64_t>(table_.size()) * 2;
    while (capacity * 7 <= (static_cast<uint64_t>(nodes_.size()) + 1) * 10) {
      capacity *= 2;
    }
    table_.assign(capacity, kUnassigned);
    for (uint32_t i = 0; i < nodes_.size(); ++i) {
      place(nodes_[i], i);
    }
  }

  std::vector<NodeId> nodes_;     // index → id; ascending by construction
  std::vector<uint32_t> table_;   // open-addressed id → index, power-of-2
};

}  // namespace lockss::net

#endif  // LOCKSS_NET_NODE_SLOT_REGISTRY_HPP_
