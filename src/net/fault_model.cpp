#include "net/fault_model.hpp"

#include <cassert>

namespace lockss::net {

namespace {

// Domain-separated lane seed: splitmix64 seeding decorrelates sequential
// seeds, so salt + id is already ideal; the extra mix guards against
// structured high ids (minion bases, spoofed ranges).
uint64_t lane_seed(uint64_t salt, uint64_t id) {
  return sim::splitmix64_mix(salt ^ (id + 1));
}

}  // namespace

FaultModel::FaultModel(const FaultConfig& config, sim::Rng rng, uint32_t dense_sender_count)
    : config_(config), lane_salt_(rng.next_u64()), burst_salt_(rng.next_u64()) {
  assert(config_.loss_rate >= 0.0 && config_.loss_rate <= 1.0);
  assert(config_.dup_rate >= 0.0 && config_.dup_rate <= 1.0);
  assert(config_.burst_outage_rate >= 0.0 && config_.burst_outage_rate <= 1.0);
  assert(!config_.jitter.is_negative());
  assert(config_.burst_outage_rate == 0.0 || config_.burst_cycle > sim::SimTime::zero());
  lanes_.reserve(dense_sender_count);
  for (uint32_t id = 0; id < dense_sender_count; ++id) {
    lanes_.emplace_back(lane_seed(lane_salt_, id));
  }
}

sim::Rng& FaultModel::lane(NodeId sender) {
  if (sender.value < lanes_.size()) {
    return lanes_[sender.value];
  }
  // Overflow senders (adversary minions, spoofed identities) send only from
  // the global context, which runs with every shard quiesced — so the map
  // has a single writer and iteration-order-free access.
  auto [it, inserted] = overflow_.try_emplace(sender.value, sim::Rng(lane_seed(lane_salt_, sender.value)));
  return it->second;
}

bool FaultModel::in_burst(NodeId from, NodeId to, sim::SimTime at) const {
  if (config_.burst_outage_rate <= 0.0) {
    return false;
  }
  if (config_.burst_outage_rate >= 1.0) {
    return true;
  }
  const int64_t cycle = config_.burst_cycle.ns();
  assert(cycle > 0);
  const int64_t t = at.ns() < 0 ? 0 : at.ns();
  const uint64_t k = static_cast<uint64_t>(t) / static_cast<uint64_t>(cycle);
  const int64_t phase = t - static_cast<int64_t>(k * static_cast<uint64_t>(cycle));
  const int64_t outage =
      static_cast<int64_t>(config_.burst_outage_rate * static_cast<double>(cycle));
  if (outage <= 0) {
    return false;
  }
  // Directed pair: (a, b) and (b, a) burst independently, like real access
  // links. The episode's placement within cycle k is a pure hash, so no
  // per-pair state exists to race or to diverge across shard counts.
  const uint64_t pair = sim::splitmix64_mix(from.value * 0x9E3779B97F4A7C15ull ^ to.value);
  const uint64_t h = sim::splitmix64_mix(burst_salt_ ^ pair ^ (k * 0xBF58476D1CE4E5B9ull));
  const int64_t offset = static_cast<int64_t>(h % static_cast<uint64_t>(cycle - outage + 1));
  return phase >= offset && phase < offset + outage;
}

FaultDecision FaultModel::decide(NodeId from, NodeId to, sim::SimTime now) {
  FaultDecision verdict;
  if (in_burst(from, to, now)) {
    verdict.drop = true;
    verdict.burst = true;
    return verdict;
  }
  sim::Rng& r = lane(from);
  const bool lost = r.bernoulli(config_.loss_rate);
  const bool dup = r.bernoulli(config_.dup_rate);
  const double jitter_u = r.uniform();
  if (lost) {
    verdict.drop = true;
    return verdict;
  }
  verdict.extra_delay = config_.jitter * jitter_u;
  if (dup) {
    verdict.duplicate = true;
    verdict.dup_extra_delay = config_.jitter * r.uniform();
  }
  return verdict;
}

}  // namespace lockss::net
