// Simulated network fabric (the paper's Narses network model, §6.2).
//
// The evaluation deliberately uses the simplest Narses model: per-message
// delivery time = propagation latency + transfer time, with no queueing or
// congestion, "except for the side-effects of artificial congestion used by
// a pipe stoppage adversary". We reproduce that:
//
//   * every node gets an access-link bandwidth drawn uniformly from
//     {1.5, 10, 100} Mbps (§6.2);
//   * every ordered pair gets a fixed latency drawn uniformly from
//     [1, 30] ms (§6.2);
//   * transfer time uses the bottleneck of the two access links;
//   * `LinkFilter`s model pipe stoppage: any installed filter may veto
//     delivery (the message is silently dropped, as a flooded link would).
#ifndef LOCKSS_NET_NETWORK_HPP_
#define LOCKSS_NET_NETWORK_HPP_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "net/node_id.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace lockss::obs {
class EventSink;
}  // namespace lockss::obs

namespace lockss::net {

class FaultModel;

// Veto-based delivery filter; pipe-stoppage adversaries install one.
class LinkFilter {
 public:
  virtual ~LinkFilter() = default;
  // Return false to drop traffic from `from` to `to`.
  virtual bool allow(NodeId from, NodeId to) const = 0;
};

struct NetworkConfig {
  // §6.2: "link bandwidths ... are uniformly distributed among three
  // choices: 1.5, 10, and 100 Mbps."
  std::vector<double> bandwidth_choices_bps = {1.5e6, 10e6, 100e6};
  // §6.2: "Link latencies are uniformly distributed between 1 and 30 ms."
  sim::SimTime min_latency = sim::SimTime::milliseconds(1);
  sim::SimTime max_latency = sim::SimTime::milliseconds(30);
};

struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_filtered = 0;
  uint64_t messages_no_handler = 0;
  uint64_t bytes_delivered = 0;
  // Fault-layer accounting (net::FaultModel; all zero on ideal networks).
  uint64_t messages_lost = 0;           // i.i.d. loss drops
  uint64_t messages_burst_dropped = 0;  // burst-episode drops
  uint64_t messages_duplicated = 0;     // extra copies scheduled
  uint64_t messages_jittered = 0;       // deliveries with nonzero extra delay

  NetworkStats& operator+=(const NetworkStats& o) {
    messages_sent += o.messages_sent;
    messages_delivered += o.messages_delivered;
    messages_filtered += o.messages_filtered;
    messages_no_handler += o.messages_no_handler;
    bytes_delivered += o.bytes_delivered;
    messages_lost += o.messages_lost;
    messages_burst_dropped += o.messages_burst_dropped;
    messages_duplicated += o.messages_duplicated;
    messages_jittered += o.messages_jittered;
    return *this;
  }

  uint64_t faults_injected() const {
    return messages_lost + messages_burst_dropped + messages_duplicated + messages_jittered;
  }
};

// Sharded-run delivery backend (sim/ShardedEngine adapter; docs/sharding.md).
// When installed, the network asks the bus for the *calling context's* clock
// and stats shard (so concurrent shards never touch shared counters) and
// hands it each delivery to route: same-context deliveries schedule
// directly, cross-context ones are buffered until the next shard barrier.
// Counter totals are summed at the end of the run (total_stats()); the sums
// equal the serial counters because every send/delivery happens exactly
// once in exactly one context.
class ShardBus {
 public:
  virtual ~ShardBus() = default;
  virtual sim::Simulator& context_sim() = 0;
  virtual NetworkStats& context_stats() = 0;
  virtual void schedule_delivery(NodeId to, sim::SimTime at, sim::EventFn fn) = 0;
  virtual NetworkStats total_stats() const = 0;
  // The calling context's protocol-event sink, or nullptr when tracing is
  // off (docs/observability.md). Mirrors context_stats(): concurrent shards
  // must never share a sink.
  virtual obs::EventSink* context_events() { return nullptr; }
};

class Network {
 public:
  Network(sim::Simulator& simulator, sim::Rng rng, NetworkConfig config = {});

  // Registers `handler` as the endpoint for `id`. Re-registering an id
  // replaces the handler (used when a peer restarts); link characteristics
  // are a pure function of the id, so they stay stable.
  void register_node(NodeId id, MessageHandler* handler);
  void unregister_node(NodeId id);

  // Sends `message` (whose from/to must be set). Delivery is scheduled at
  // now + latency(from,to) + size / bottleneck_bandwidth unless a filter
  // vetoes the pair at *send* time.
  void send(MessagePtr message);

  // Filters are not owned; callers keep them alive while installed.
  void add_filter(const LinkFilter* filter);
  void remove_filter(const LinkFilter* filter);

  // Installs (or clears, with nullptr) the unreliable-link fault model
  // (docs/faults.md). Not owned. Faults are decided once, at send time, in
  // the sender's owning context, after the veto filters: a vetoed message
  // was never on the wire, so it consumes no fault randomness. With no
  // model installed the delivery path is byte-for-byte the ideal-network
  // behavior — the golden corpus pins this.
  void set_fault_model(FaultModel* model) { faults_ = model; }

  // Deterministic per-pair latency (symmetric) and per-node bandwidth.
  // Both are pure functions of the ids and the run's salt, so an adversary
  // with unconstrained identities (§3.1) costs no simulator state.
  sim::SimTime latency(NodeId a, NodeId b) const;
  double bandwidth_bps(NodeId id) const;

  // Transfer delay for a message of `bytes` between two registered nodes.
  sim::SimTime delivery_delay(NodeId from, NodeId to, uint64_t bytes) const;

  const NetworkStats& stats() const { return stats_; }
  // Serial: stats(). Sharded: the sum over all context shards.
  NetworkStats total_stats() const { return bus_ != nullptr ? bus_->total_stats() : stats_; }
  sim::Simulator& simulator() { return simulator_; }

  // Installs (or clears, with nullptr) the sharded delivery backend. The
  // bus is not owned and must outlive the installed state. Serial runs
  // never call this; with no bus every path below is byte-for-byte the
  // pre-sharding behavior.
  void set_shard_bus(ShardBus* bus) { bus_ = bus; }

  // Installs (or clears, with nullptr) the serial-run protocol-event sink;
  // fault injections (loss/burst/dup/jitter) are recorded on it
  // (docs/observability.md). Sharded runs ignore this and route through
  // ShardBus::context_events() instead.
  void set_event_sink(obs::EventSink* sink) { events_ = sink; }

 private:
  bool allowed(NodeId from, NodeId to) const;
  void schedule_delivery(MessagePtr message, sim::SimTime delay);

  sim::Simulator& simulator_;
  ShardBus* bus_ = nullptr;
  FaultModel* faults_ = nullptr;
  obs::EventSink* events_ = nullptr;
  sim::Rng rng_;
  NetworkConfig config_;
  uint64_t latency_salt_;
  uint64_t bandwidth_salt_;
  std::unordered_map<NodeId, MessageHandler*> handlers_;
  std::vector<const LinkFilter*> filters_;
  NetworkStats stats_;
};

}  // namespace lockss::net

#endif  // LOCKSS_NET_NETWORK_HPP_
