#include "net/network.hpp"

#include <algorithm>
#include <cassert>

#include "crypto/digest.hpp"
#include "net/fault_model.hpp"
#include "obs/event_log.hpp"

namespace lockss::net {

Network::Network(sim::Simulator& simulator, sim::Rng rng, NetworkConfig config)
    : simulator_(simulator),
      rng_(rng),
      config_(std::move(config)),
      latency_salt_(rng_.next_u64()),
      bandwidth_salt_(rng_.next_u64()) {}

void Network::register_node(NodeId id, MessageHandler* handler) {
  assert(id.valid());
  assert(handler != nullptr);
  handlers_[id] = handler;
}

void Network::unregister_node(NodeId id) { handlers_.erase(id); }

sim::SimTime Network::latency(NodeId a, NodeId b) const {
  if (a == b) {
    return sim::SimTime::zero();
  }
  // Deterministic, symmetric: derive from the unordered pair and a run salt.
  const uint64_t lo = std::min(a.value, b.value);
  const uint64_t hi = std::max(a.value, b.value);
  const uint64_t h = crypto::mix64(latency_salt_ ^ (lo << 32 | hi));
  const int64_t span = config_.max_latency.ns() - config_.min_latency.ns();
  return config_.min_latency + sim::SimTime::nanoseconds(static_cast<int64_t>(h % static_cast<uint64_t>(span + 1)));
}

double Network::bandwidth_bps(NodeId id) const {
  const auto& choices = config_.bandwidth_choices_bps;
  assert(!choices.empty());
  const uint64_t h = crypto::mix64(bandwidth_salt_ ^ id.value);
  return choices[h % choices.size()];
}

sim::SimTime Network::delivery_delay(NodeId from, NodeId to, uint64_t bytes) const {
  const double bottleneck = std::min(bandwidth_bps(from), bandwidth_bps(to));
  const double transfer_secs = static_cast<double>(bytes) * 8.0 / bottleneck;
  return latency(from, to) + sim::SimTime::seconds(transfer_secs);
}

bool Network::allowed(NodeId from, NodeId to) const {
  return std::all_of(filters_.begin(), filters_.end(),
                     [&](const LinkFilter* f) { return f->allow(from, to); });
}

void Network::send(MessagePtr message) {
  assert(message != nullptr);
  assert(message->from.valid() && message->to.valid());
  // Sharded runs keep one stats block per context so concurrent shards
  // never race on the counters; serial runs use the single stats_.
  NetworkStats& send_stats = bus_ != nullptr ? bus_->context_stats() : stats_;
  ++send_stats.messages_sent;
  if (!allowed(message->from, message->to)) {
    ++send_stats.messages_filtered;
    return;
  }
  auto handler_it = handlers_.find(message->to);
  if (handler_it == handlers_.end()) {
    ++send_stats.messages_no_handler;
    return;
  }
  const sim::SimTime base_delay = delivery_delay(message->from, message->to, message->size_bytes());
  if (faults_ == nullptr) {
    schedule_delivery(std::move(message), base_delay);
    return;
  }
  // Faults are decided once, here, in the sender's owning context — never
  // at delivery — so the decision stream is a pure function of the sender's
  // send sequence (docs/faults.md). Jitter only adds delay: the total stays
  // strictly above min_latency, preserving the sharded lookahead contract.
  const sim::SimTime now = bus_ != nullptr ? bus_->context_sim().now() : simulator_.now();
  const FaultDecision verdict = faults_->decide(message->from, message->to, now);
  // Fault injections are recorded on the calling context's sink so the
  // trace attributes every lost/duplicated/jittered message to its sender
  // (docs/observability.md). The domain tag comes from the sender id, not
  // the execution context: minion sends run globally even in serial runs.
  obs::EventSink* events = bus_ != nullptr ? bus_->context_events() : events_;
  auto record_fault = [&](obs::EventKind kind, uint64_t arg) {
    obs::Event e;
    e.time_ns = now.ns();
    e.arg = arg;
    e.origin = static_cast<uint32_t>(message->from.value);
    e.other = static_cast<uint32_t>(message->to.value);
    e.kind = kind;
    e.domain = events->fault_domain(message->from.value);
    events->record(e);
  };
  if (verdict.drop) {
    ++(verdict.burst ? send_stats.messages_burst_dropped : send_stats.messages_lost);
    if (events != nullptr) {
      record_fault(verdict.burst ? obs::EventKind::kFaultBurstDrop : obs::EventKind::kFaultLoss,
                   0);
    }
    return;
  }
  if (verdict.extra_delay > sim::SimTime::zero()) {
    ++send_stats.messages_jittered;
    if (events != nullptr) {
      record_fault(obs::EventKind::kFaultJitter,
                   static_cast<uint64_t>(verdict.extra_delay.ns()));
    }
  }
  MessagePtr copy;
  if (verdict.duplicate) {
    // Messages that cannot clone (kOther diagnostics) are simply never
    // duplicated; the dup draw was still consumed, so lane streams do not
    // depend on message types.
    copy = message->clone();
    if (copy != nullptr) {
      ++send_stats.messages_duplicated;
      if (events != nullptr) {
        record_fault(obs::EventKind::kFaultDuplicate, 0);
      }
    }
  }
  schedule_delivery(std::move(message), base_delay + verdict.extra_delay);
  if (copy != nullptr) {
    schedule_delivery(std::move(copy), base_delay + verdict.dup_extra_delay);
  }
}

void Network::schedule_delivery(MessagePtr message, sim::SimTime delay) {
  const NodeId to = message->to;
  // EventFn supports move-only callables, so the unique_ptr rides in the
  // capture directly — no shared box, no allocation beyond the message.
  sim::EventFn deliver = [this, msg = std::move(message)]() mutable {
    assert(msg != nullptr);
    NetworkStats& recv_stats = bus_ != nullptr ? bus_->context_stats() : stats_;
    // Deliver through a fresh handler lookup: the recipient may unregister
    // (or be replaced) while the message is in flight.
    auto it = handlers_.find(msg->to);
    if (it == handlers_.end()) {
      ++recv_stats.messages_no_handler;
      return;
    }
    // Re-check filters at delivery: pipe stoppage that starts mid-flight
    // drowns packets already on the wire too.
    if (!allowed(msg->from, msg->to)) {
      ++recv_stats.messages_filtered;
      return;
    }
    ++recv_stats.messages_delivered;
    recv_stats.bytes_delivered += msg->size_bytes();
    it->second->handle_message(std::move(msg));
  };
  if (bus_ != nullptr) {
    bus_->schedule_delivery(to, bus_->context_sim().now() + delay, std::move(deliver));
    return;
  }
  simulator_.schedule_in(delay, std::move(deliver));
}

void Network::add_filter(const LinkFilter* filter) { filters_.push_back(filter); }

void Network::remove_filter(const LinkFilter* filter) {
  filters_.erase(std::remove(filters_.begin(), filters_.end(), filter), filters_.end());
}

}  // namespace lockss::net
