// Base class for protocol messages carried by the simulated network.
//
// Concrete message types live in `protocol/messages.hpp`; the network layer
// needs only addressing and a wire-size estimate (used to model transfer
// time over the sender's and receiver's access links).
#ifndef LOCKSS_NET_MESSAGE_HPP_
#define LOCKSS_NET_MESSAGE_HPP_

#include <cstdint>
#include <memory>

#include "net/node_id.hpp"

namespace lockss::net {

// Closed vocabulary of wire messages, one tag per concrete type in
// protocol/messages.hpp. Receivers dispatch on this tag with a switch and a
// single static_cast instead of walking a dynamic_cast chain per delivery —
// the chain was the top remaining per-message cost after the PR 3 substrate
// work (one RTTI comparison per candidate type, ~4 deep on average).
enum class MessageKind : uint8_t {
  kOther = 0,  // not a protocol message; receivers ignore it
  kPoll,
  kPollAck,
  kPollProof,
  kVote,
  kRepairRequest,
  kRepair,
  kEvaluationReceipt,
};

class Message;
using MessagePtr = std::unique_ptr<Message>;

class Message {
 public:
  virtual ~Message() = default;

  // Serialized size in bytes, including framing; drives transfer-time cost.
  virtual uint64_t size_bytes() const = 0;

  // Stable name for logging and statistics ("Poll", "Vote", ...).
  virtual const char* type_name() const = 0;

  // Dispatch tag; kOther for anything outside the protocol vocabulary.
  virtual MessageKind kind() const { return MessageKind::kOther; }

  // Deep copy for the fault layer's duplicate deliveries (net::FaultModel).
  // Types that return nullptr simply never get duplicated; every protocol
  // message overrides this with a plain copy.
  virtual MessagePtr clone() const { return nullptr; }

  NodeId from;
  NodeId to;
};

// Receiver interface; one per registered node.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void handle_message(MessagePtr message) = 0;
};

}  // namespace lockss::net

#endif  // LOCKSS_NET_MESSAGE_HPP_
