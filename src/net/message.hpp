// Base class for protocol messages carried by the simulated network.
//
// Concrete message types live in `protocol/messages.hpp`; the network layer
// needs only addressing and a wire-size estimate (used to model transfer
// time over the sender's and receiver's access links).
#ifndef LOCKSS_NET_MESSAGE_HPP_
#define LOCKSS_NET_MESSAGE_HPP_

#include <cstdint>
#include <memory>

#include "net/node_id.hpp"

namespace lockss::net {

class Message {
 public:
  virtual ~Message() = default;

  // Serialized size in bytes, including framing; drives transfer-time cost.
  virtual uint64_t size_bytes() const = 0;

  // Stable name for logging and statistics ("Poll", "Vote", ...).
  virtual const char* type_name() const = 0;

  NodeId from;
  NodeId to;
};

using MessagePtr = std::unique_ptr<Message>;

// Receiver interface; one per registered node.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void handle_message(MessagePtr message) = 0;
};

}  // namespace lockss::net

#endif  // LOCKSS_NET_MESSAGE_HPP_
