// First-class unreliable-link model on the message delivery path.
//
// The paper designs a poll as "a sequence of two-party interactions" (§5.2)
// precisely so sporadic unavailability cannot stall it; this layer is what
// actually exercises that claim. Unlike the veto `LinkFilter`s (which model
// deliberate suppression and binary outages), the fault model perturbs every
// send probabilistically:
//
//   * loss        — the message silently disappears in flight;
//   * duplication — the receiver gets a second, independent copy;
//   * jitter      — delivery is delayed by an extra uniform [0, jitter)
//                   beyond the Narses latency+transfer time, which also
//                   yields bounded reordering between messages of one pair;
//   * bursts      — Gilbert–Elliott-style flaky-link episodes: each
//                   directed pair spends a configured fraction of every
//                   burst cycle in a hard outage window whose placement is
//                   a pure hash of (pair, cycle index).
//
// Determinism contract (docs/faults.md): all decisions for messages sent by
// node S are drawn from S's private lane — a generator fixed at setup from
// the scenario seed. A sender's sends execute serially in its owning shard
// context in the same order at every shard count, so lane consumption (and
// therefore every fault outcome) is bit-identical at shards 1/2/4/8 — the
// per-sender refinement of "per-context streams split at setup", and the
// fix for the `mutable sim::Rng`-in-a-LinkFilter hazard that made the old
// test-only LossLinkFilter unusable under sim::ShardedEngine (its allow()
// ran once at send and once at delivery, in whichever context the event
// landed). Burst membership consumes no lane draws at all: it is a pure
// function of (pair, time, salt).
//
// Jitter only ever *adds* delay, so total delivery time stays strictly
// above the network's min_latency and the sharded engine's lookahead window
// contract is never violated.
#ifndef LOCKSS_NET_FAULT_MODEL_HPP_
#define LOCKSS_NET_FAULT_MODEL_HPP_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/node_id.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace lockss::net {

// Pure configuration; the campaign `network_faults` section parses into one
// of these (mirroring dynamics::ChurnConfig: no engine dependencies, and an
// enabled() predicate that keeps zero-fault runs off the fault path
// entirely).
struct FaultConfig {
  // Per-message drop probability, [0, 1].
  double loss_rate = 0.0;
  // Per-message duplication probability, [0, 1]. A duplicated message is
  // delivered twice; the copy gets its own jitter draw.
  double dup_rate = 0.0;
  // Maximum extra delivery delay; each message is delayed by an extra
  // uniform [0, jitter) on top of latency + transfer time.
  sim::SimTime jitter = sim::SimTime::zero();
  // Fraction of every burst cycle each directed pair spends in a hard
  // outage episode, [0, 1]. 0 disables bursts; 1 is a permanent outage.
  double burst_outage_rate = 0.0;
  // Length of the burst cycle (> 0 when bursts are enabled).
  sim::SimTime burst_cycle = sim::SimTime::days(1.0);
  // Installs the model even when every knob above is zero. The inert model
  // consumes lane draws but changes nothing observable — bench_report's
  // overhead row uses this to measure the delivery-path cost of the fault
  // hook against an ideal run with identical metrics.
  bool install_when_inert = false;

  bool enabled() const {
    return loss_rate > 0.0 || dup_rate > 0.0 || burst_outage_rate > 0.0 ||
           jitter > sim::SimTime::zero() || install_when_inert;
  }
};

// Verdict for one send. At most one of {drop, duplicate} is set; jitter
// fields are zero when the message is dropped.
struct FaultDecision {
  bool drop = false;
  bool burst = false;  // the drop was a burst-episode casualty, not i.i.d. loss
  bool duplicate = false;
  sim::SimTime extra_delay = sim::SimTime::zero();      // original's jitter
  sim::SimTime dup_extra_delay = sim::SimTime::zero();  // duplicate's jitter
};

class FaultModel {
 public:
  // `rng` seeds the lane and burst salts (two draws, like Network's ctor).
  // Senders with ids below `dense_sender_count` — the scenario's
  // established population plus arrivals, whose sends run on shard threads
  // — get preallocated lanes; higher ids (adversary minions and spoofed
  // identities, which only ever send from the global context) fall through
  // to a lazily grown overflow table. The split keeps the hot path a vector
  // index and keeps the mutable overflow map single-writer: shard contexts
  // never touch it.
  FaultModel(const FaultConfig& config, sim::Rng rng, uint32_t dense_sender_count);

  // Decides the fate of one message sent now. Mutates the sender's lane:
  // exactly three draws per non-burst send (loss, duplication, jitter, in
  // that order, regardless of outcome) plus one extra jitter draw when the
  // duplicate fires — so a lane's position depends only on the sender's
  // send count, never on which faults happened to fire.
  FaultDecision decide(NodeId from, NodeId to, sim::SimTime now);

  // True when the directed pair is inside a burst outage episode at `at`.
  // Pure function of (pair, at, burst salt); consumes no randomness.
  bool in_burst(NodeId from, NodeId to, sim::SimTime at) const;

  const FaultConfig& config() const { return config_; }

 private:
  sim::Rng& lane(NodeId sender);

  FaultConfig config_;
  uint64_t lane_salt_;
  uint64_t burst_salt_;
  std::vector<sim::Rng> lanes_;
  std::unordered_map<uint64_t, sim::Rng> overflow_;
};

}  // namespace lockss::net

#endif  // LOCKSS_NET_FAULT_MODEL_HPP_
