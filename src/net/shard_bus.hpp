// Network-to-ShardedEngine delivery bridge (docs/sharding.md).
//
// Adapts sim::ShardedEngine for net::Network::set_shard_bus: deliveries are
// routed to the destination node's owning context (same-context posts
// schedule directly, cross-context posts wait for the barrier merge), and
// every context gets its own NetworkStats block so the counters are never
// touched from two threads at once. total_stats() sums the blocks; the sum
// equals the serial counters because each send and each delivery executes
// exactly once, in exactly one context.
#ifndef LOCKSS_NET_SHARD_BUS_HPP_
#define LOCKSS_NET_SHARD_BUS_HPP_

#include <cstddef>
#include <vector>

#include "net/network.hpp"
#include "obs/event_log.hpp"
#include "sim/sharded_engine.hpp"

namespace lockss::net {

class EngineShardBus final : public ShardBus {
 public:
  explicit EngineShardBus(sim::ShardedEngine& engine)
      : engine_(engine), stats_(static_cast<size_t>(engine.plan().shards) + 1) {}

  sim::Simulator& context_sim() override { return engine_.current_sim(); }

  NetworkStats& context_stats() override {
    return stats_[slot(engine_.current_context())];
  }

  void schedule_delivery(NodeId to, sim::SimTime at, sim::EventFn fn) override {
    engine_.post(engine_.context_of(to.value), at, std::move(fn));
  }

  NetworkStats total_stats() const override {
    NetworkStats total;
    for (const NetworkStats& s : stats_) {
      total += s;
    }
    return total;
  }

  // Attaches (or clears) the run's event log; context_events() then hands
  // each context its own sink, mirroring the per-context stats blocks. The
  // log must be built with sink_count == shards + 1 (scenario setup owns
  // that invariant).
  void set_event_log(obs::EventLog* log) { log_ = log; }

  obs::EventSink* context_events() override {
    if (log_ == nullptr) {
      return nullptr;
    }
    return log_->sink(slot(engine_.current_context()));
  }

 private:
  // Shards use their index; the global context takes the last block.
  size_t slot(uint32_t context) const {
    return context == sim::ShardPlan::kGlobalContext ? stats_.size() - 1 : context;
  }

  sim::ShardedEngine& engine_;
  std::vector<NetworkStats> stats_;
  obs::EventLog* log_ = nullptr;
};

}  // namespace lockss::net

#endif  // LOCKSS_NET_SHARD_BUS_HPP_
