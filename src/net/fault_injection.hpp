// Non-adversarial network fault injection.
//
// The paper's adversaries suppress traffic deliberately; real deployments
// additionally lose messages to congestion, reboots, and flaky links. These
// filters let tests and experiments inject such faults independently of any
// adversary, to verify that the protocol's retry and desynchronization
// machinery absorbs them (§5.2: a poll is "a sequence of two-party
// interactions" precisely so sporadic unavailability cannot stall it).
//
//   * LossLinkFilter    — drops each message with a fixed probability,
//                         optionally only for a chosen victim set;
//   * OutageLinkFilter  — takes one node fully offline between two
//                         instants (a crash-and-reboot, or an operator
//                         unplugging a peer), without re-randomizing like
//                         the pipe-stoppage adversary does.
//
// Both are plain net::LinkFilters: install with Network::add_filter() and
// keep alive until removed.
#ifndef LOCKSS_NET_FAULT_INJECTION_HPP_
#define LOCKSS_NET_FAULT_INJECTION_HPP_

#include <set>
#include <vector>

#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace lockss::net {

// Drops each message with probability `loss`. With an empty victim set the
// loss applies to every message; otherwise only to messages whose sender or
// receiver is a victim.
class LossLinkFilter : public LinkFilter {
 public:
  LossLinkFilter(sim::Rng rng, double loss_probability)
      : rng_(rng), loss_probability_(loss_probability) {}
  LossLinkFilter(sim::Rng rng, double loss_probability, std::vector<NodeId> victims)
      : rng_(rng), loss_probability_(loss_probability), victims_(victims.begin(), victims.end()) {}

  bool allow(NodeId from, NodeId to) const override;

  uint64_t dropped() const { return dropped_; }

 private:
  // allow() is const in the LinkFilter contract; the filter's own dice and
  // counters are bookkeeping, not observable link state.
  mutable sim::Rng rng_;
  double loss_probability_;
  std::set<NodeId> victims_;
  mutable uint64_t dropped_ = 0;
};

// Silences one node during [start, end): nothing is delivered to or from it.
// The node's timers keep running (a crashed peer loses its in-flight
// sessions to timeouts, exactly as the protocol expects).
class OutageLinkFilter : public LinkFilter {
 public:
  OutageLinkFilter(sim::Simulator& simulator, NodeId node, sim::SimTime start, sim::SimTime end)
      : simulator_(simulator), node_(node), start_(start), end_(end) {}

  bool allow(NodeId from, NodeId to) const override;

  bool active() const;

 private:
  sim::Simulator& simulator_;
  NodeId node_;
  sim::SimTime start_;
  sim::SimTime end_;
};

}  // namespace lockss::net

#endif  // LOCKSS_NET_FAULT_INJECTION_HPP_
