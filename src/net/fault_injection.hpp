// Non-adversarial network fault injection.
//
// The paper's adversaries suppress traffic deliberately; real deployments
// additionally lose messages to congestion, reboots, and flaky links. These
// filters let tests and experiments inject such faults independently of any
// adversary, to verify that the protocol's retry and desynchronization
// machinery absorbs them (§5.2: a poll is "a sequence of two-party
// interactions" precisely so sporadic unavailability cannot stall it).
//
//   * OutageLinkFilter  — takes one node fully offline between two
//                         instants (a crash-and-reboot, or an operator
//                         unplugging a peer), without re-randomizing like
//                         the pipe-stoppage adversary does;
//   * OfflineSetFilter  — a dynamic membership set of fully-offline nodes,
//                         flipped at runtime by a driver (the deployment-
//                         dynamics churn model layers its departures,
//                         crashes, and correlated regional outages on this
//                         one filter instead of stacking per-window
//                         OutageLinkFilters).
//
// Both are plain net::LinkFilters: install with Network::add_filter() and
// keep alive until removed. Binary outages are all a veto filter can say;
// probabilistic loss, duplication, and jitter live in net::FaultModel
// (fault_model.hpp), whose per-sender RNG lanes stay deterministic under
// sim::ShardedEngine — a LinkFilter rolling its own `mutable sim::Rng`
// (the retired LossLinkFilter) ran its dice once at send and once at
// delivery in whichever context the event landed, so its outcomes changed
// with the shard count.
#ifndef LOCKSS_NET_FAULT_INJECTION_HPP_
#define LOCKSS_NET_FAULT_INJECTION_HPP_

#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace lockss::net {

// Silences every node currently in the set: nothing is delivered to or
// from an offline node. Membership is driver-maintained (see
// dynamics::ChurnModel); timers at the silenced node keep running, exactly
// like OutageLinkFilter.
//
// allow() sits on the per-message delivery path of every churned run, so
// membership is a flat bitmap indexed by NodeId value — churned peers are
// the established population, whose ids are small dense integers by the
// scenario's registration contract — with a live count fast-path for the
// (common) fully-online state. High ids (adversary minions) never enter
// the set and fall off the end of the bitmap in one bounds check.
class OfflineSetFilter : public LinkFilter {
 public:
  // Idempotent either way.
  void set_offline(NodeId node, bool down);
  bool offline(NodeId node) const {
    return node.value < offline_.size() && offline_[node.value];
  }
  size_t offline_count() const { return count_; }

  bool allow(NodeId from, NodeId to) const override {
    if (count_ == 0) {
      return true;
    }
    return !offline(from) && !offline(to);
  }

 private:
  std::vector<bool> offline_;
  size_t count_ = 0;
};

// Silences one node during [start, end): nothing is delivered to or from it.
// The node's timers keep running (a crashed peer loses its in-flight
// sessions to timeouts, exactly as the protocol expects).
class OutageLinkFilter : public LinkFilter {
 public:
  OutageLinkFilter(sim::Simulator& simulator, NodeId node, sim::SimTime start, sim::SimTime end)
      : simulator_(simulator), node_(node), start_(start), end_(end) {}

  bool allow(NodeId from, NodeId to) const override;

  bool active() const;

 private:
  sim::Simulator& simulator_;
  NodeId node_;
  sim::SimTime start_;
  sim::SimTime end_;
};

}  // namespace lockss::net

#endif  // LOCKSS_NET_FAULT_INJECTION_HPP_
