// Strongly-typed node identity.
//
// A NodeId names one network endpoint — a loyal peer or one adversary minion
// identity. The attrition adversary has "unconstrained identities" (§3.1), so
// minions may own many NodeIds; the id space is flat and cheap.
#ifndef LOCKSS_NET_NODE_ID_HPP_
#define LOCKSS_NET_NODE_ID_HPP_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace lockss::net {

struct NodeId {
  uint32_t value = UINT32_MAX;

  static constexpr NodeId invalid() { return NodeId{UINT32_MAX}; }
  constexpr bool valid() const { return value != UINT32_MAX; }

  friend constexpr auto operator<=>(const NodeId&, const NodeId&) = default;
  std::string to_string() const { return "n" + std::to_string(value); }
};

}  // namespace lockss::net

template <>
struct std::hash<lockss::net::NodeId> {
  size_t operator()(const lockss::net::NodeId& id) const noexcept {
    return std::hash<uint32_t>{}(id.value);
  }
};

#endif  // LOCKSS_NET_NODE_ID_HPP_
