#include "net/fault_injection.hpp"

namespace lockss::net {

bool LossLinkFilter::allow(NodeId from, NodeId to) const {
  if (!victims_.empty() && !victims_.contains(from) && !victims_.contains(to)) {
    return true;
  }
  if (rng_.bernoulli(loss_probability_)) {
    ++dropped_;
    return false;
  }
  return true;
}

bool OutageLinkFilter::active() const {
  const sim::SimTime now = simulator_.now();
  return now >= start_ && now < end_;
}

bool OutageLinkFilter::allow(NodeId from, NodeId to) const {
  if (from != node_ && to != node_) {
    return true;
  }
  return !active();
}

}  // namespace lockss::net
