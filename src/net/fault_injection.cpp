#include "net/fault_injection.hpp"

namespace lockss::net {

void OfflineSetFilter::set_offline(NodeId node, bool down) {
  if (down && node.value >= offline_.size()) {
    offline_.resize(node.value + 1, false);
  }
  if (node.value < offline_.size() && offline_[node.value] != down) {
    offline_[node.value] = down;
    count_ += down ? 1 : -1;
  }
}

bool OutageLinkFilter::active() const {
  const sim::SimTime now = simulator_.now();
  return now >= start_ && now < end_;
}

bool OutageLinkFilter::allow(NodeId from, NodeId to) const {
  if (from != node_ && to != node_) {
    return true;
  }
  return !active();
}

}  // namespace lockss::net
