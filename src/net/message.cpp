#include "net/message.hpp"

// Message is an abstract base; this translation unit anchors its vtable.
