#include "adversary/grade_recovery.hpp"

#include <cassert>

namespace lockss::adversary {

GradeRecoveryAdversary::GradeRecoveryAdversary(sim::Simulator& simulator, net::Network& network,
                                               sim::Rng rng, GradeRecoveryConfig config,
                                               std::vector<peer::Peer*> victims,
                                               std::vector<storage::AuId> aus,
                                               const protocol::Params& params,
                                               const crypto::CostModel& costs)
    : simulator_(simulator),
      network_(network),
      rng_(rng),
      config_(config),
      victims_(std::move(victims)),
      aus_(std::move(aus)),
      params_(params),
      costs_(costs),
      efforts_(params, costs),
      mbf_(costs, rng_.split()) {
  for (uint32_t m = 0; m < config_.minion_count; ++m) {
    network_.register_node(net::NodeId{config_.minion_id_base + m}, this);
  }
}

GradeRecoveryAdversary::~GradeRecoveryAdversary() {
  for (uint32_t m = 0; m < config_.minion_count; ++m) {
    network_.unregister_node(net::NodeId{config_.minion_id_base + m});
  }
}

peer::Peer* GradeRecoveryAdversary::victim_by_id(net::NodeId id) {
  for (peer::Peer* victim : victims_) {
    if (victim->id() == id) {
      return victim;
    }
  }
  return nullptr;
}

void GradeRecoveryAdversary::start() {
  stopped_ = false;
  if (seeded_) {
    return;  // reactivation: resume answering with the standing that remains
  }
  seeded_ = true;
  // Long-term infiltration: minions sit in the victims' reference lists with
  // an even grade, indistinguishable from loyal peers (masquerading, §3.1).
  for (peer::Peer* victim : victims_) {
    for (storage::AuId au : aus_) {
      if (!victim->has_replica(au)) {
        continue;
      }
      std::vector<net::NodeId> minions;
      for (uint32_t m = 0; m < config_.minion_count; ++m) {
        const net::NodeId minion{config_.minion_id_base + m};
        victim->seed_grade(au, minion, reputation::Grade::kEven);
        minions.push_back(minion);
      }
      victim->seed_reference_list(au, minions);
    }
  }
}

void GradeRecoveryAdversary::handle_message(net::MessagePtr message) {
  if (stopped_) {
    return;  // deactivated phase: minions stop answering invitations
  }
  switch (message->kind()) {
    case net::MessageKind::kPoll:
      on_poll(static_cast<const protocol::PollMsg&>(*message));
      return;
    case net::MessageKind::kPollProof:
      on_poll_proof(static_cast<const protocol::PollProofMsg&>(*message));
      return;
    case net::MessageKind::kRepairRequest:
      on_repair_request(static_cast<const protocol::RepairRequestMsg&>(*message));
      return;
    default:
      // PollAcks for defecting polls need no action (INTRO defection:
      // silence); receipts for supplied votes likewise.
      return;
  }
}

void GradeRecoveryAdversary::on_poll(const protocol::PollMsg& poll) {
  peer::Peer* victim = victim_by_id(poll.from);
  if (victim == nullptr) {
    return;  // only victims' invitations are honored
  }
  // Model voter: always accept (unlimited parallel compute).
  voter_lanes_[poll.poll_id] = VoterLane{poll.to, poll.from, poll.au};
  auto ack = std::make_unique<protocol::PollAckMsg>();
  ack->from = poll.to;
  ack->to = poll.from;
  ack->poll_id = poll.poll_id;
  ack->au = poll.au;
  ack->accept = true;
  network_.send(std::move(ack));
}

void GradeRecoveryAdversary::on_poll_proof(const protocol::PollProofMsg& proof) {
  auto it = voter_lanes_.find(proof.poll_id);
  if (it == voter_lanes_.end()) {
    return;
  }
  const VoterLane lane = it->second;
  // Compute a *valid* vote from the magically incorruptible AU copy (§6.2):
  // canonical content, genuine effort proof, minion-only nominations (the
  // discovery channel is how new minions are introduced).
  meter_.charge(sched::EffortCategory::kMbfVerification,
                costs_.mbf_verify_effort(efforts_.remaining_effort()));
  meter_.charge(sched::EffortCategory::kVoteComputation, efforts_.vote_computation_effort());
  meter_.charge(sched::EffortCategory::kMbfGeneration, efforts_.vote_proof_effort());
  auto vote = std::make_unique<protocol::VoteMsg>();
  vote->from = lane.minion;
  vote->to = lane.victim;
  vote->poll_id = proof.poll_id;
  vote->au = lane.au;
  crypto::Digest64 running = crypto::vote_chain_seed(proof.vote_nonce);
  vote->block_hashes.reserve(params_.au_spec.block_count);
  for (uint32_t b = 0; b < params_.au_spec.block_count; ++b) {
    running = crypto::running_block_hash(running, storage::canonical_content(lane.au, b));
    vote->block_hashes.push_back(running);
  }
  vote->vote_effort = mbf_.generate(efforts_.vote_proof_effort());
  for (uint32_t n = 0; n < params_.nominations_per_vote; ++n) {
    vote->nominations.push_back(
        net::NodeId{config_.minion_id_base + static_cast<uint32_t>(rng_.index(
                                                 config_.minion_count))});
  }
  network_.send(std::move(vote));
  ++votes_supplied_;

  auto key = std::make_tuple(lane.minion, lane.victim, lane.au);
  if (++supplied_[key] >= config_.votes_before_defection) {
    supplied_[key] = 0;
    maybe_defect(lane.minion, lane.victim, lane.au);
  }
  voter_lanes_.erase(proof.poll_id);
}

void GradeRecoveryAdversary::on_repair_request(const protocol::RepairRequestMsg& request) {
  // Serve valid repairs: staying ostensibly legitimate preserves standing.
  peer::Peer* victim = victim_by_id(request.from);
  if (victim == nullptr || request.block >= params_.au_spec.block_count) {
    return;
  }
  meter_.charge(sched::EffortCategory::kRepairService, efforts_.block_hash_effort());
  auto repair = std::make_unique<protocol::RepairMsg>();
  repair->from = request.to;
  repair->to = request.from;
  repair->poll_id = request.poll_id;
  repair->au = request.au;
  repair->block = request.block;
  repair->content = storage::canonical_content(request.au, request.block);
  repair->wire_block_bytes = params_.au_spec.block_size_bytes();
  network_.send(std::move(repair));
}

void GradeRecoveryAdversary::maybe_defect(net::NodeId minion, net::NodeId victim,
                                          storage::AuId au) {
  // Spend the earned standing: a poll invitation that will desert after the
  // victim commits (INTRO-style defection maximizes victim waste per earned
  // admission). The invitation uses the even/credit channel, bypassing
  // random drops — the whole point of the grade recovery.
  const double intro = efforts_.introductory_effort();
  meter_.charge(sched::EffortCategory::kMbfGeneration, intro);
  meter_.charge(sched::EffortCategory::kHandshake, costs_.session_handshake_seconds);
  auto poll = std::make_unique<protocol::PollMsg>();
  poll->from = minion;
  poll->to = victim;
  poll->poll_id = protocol::make_poll_id(minion, poll_sequence_++);
  poll->au = au;
  poll->introductory_effort = mbf_.generate(intro);
  poll->vote_deadline = simulator_.now() + params_.vote_window;
  network_.send(std::move(poll));
  ++defecting_polls_;
}

}  // namespace lockss::adversary
