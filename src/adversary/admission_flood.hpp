// The admission-control adversary (§7.3, Figures 6–8).
//
// "The admission control adversary aims to reduce the likelihood of a victim
// admitting a loyal poll request by triggering that victim's refractory
// period as often as possible. This adversary sends cheap garbage
// invitations to varying fractions of the peer population for varying
// periods of time separated by a fixed recuperation period of 30 days. The
// adversary sends his invitations using poller addresses that are unknown to
// the victims."
//
// Garbage invitations carry a *claimed* introductory effort but no genuine
// proof, so they cost the adversary nothing (effortless attack) while each
// admitted one burns the victim's per-AU refractory admission and its
// verification effort. Fresh spoofed NodeIds keep the sender in the
// "unknown" standing forever.
//
// Per §3.1 the adversary has total information awareness and insider
// information: each (victim, AU) attack lane watches the victim's refractory
// state through an oracle and probes only while the period is cold, so the
// refractory stays lit with near-perfect duty cycle at minimal probe volume.
#ifndef LOCKSS_ADVERSARY_ADMISSION_FLOOD_HPP_
#define LOCKSS_ADVERSARY_ADMISSION_FLOOD_HPP_

#include <cstdint>
#include <vector>

#include "adversary/attack_schedule.hpp"
#include "net/network.hpp"
#include "peer/peer.hpp"
#include "protocol/params.hpp"
#include "storage/au.hpp"

namespace lockss::adversary {

struct AdmissionFloodConfig {
  AttackCadence cadence;
  // Pause between probes while the victim's refractory period is cold (the
  // next probe has a ~10% chance of being admitted and re-arming it).
  sim::SimTime probe_gap = sim::SimTime::minutes(15);
  // How often a lane re-checks a hot refractory period for expiry.
  sim::SimTime recheck_gap = sim::SimTime::hours(2);
  // First spoofed identity; the space above it is reserved for the attack.
  uint32_t spoofed_id_base = 1u << 24;
};

class AdmissionFloodAdversary {
 public:
  // `victims` are the attackable peers; each lane targets one AU of one
  // victim. The Peer pointers double as the §3.1 insider-information oracle
  // (read-only).
  AdmissionFloodAdversary(sim::Simulator& simulator, net::Network& network, sim::Rng rng,
                          AdmissionFloodConfig config, std::vector<peer::Peer*> victims,
                          std::vector<storage::AuId> aus, const protocol::Params& params);

  void start();

  // Phase-installable teardown: halts the cadence and disarms every live
  // probe lane.
  void stop();

  // Policy throttle (adversary/policy.hpp): scale attack windows by
  // `factor` in (0, 1] and stretch recuperation by 1/factor; applies from
  // the next on/off transition.
  void throttle_cadence(double factor);

  uint64_t probes_sent() const { return probes_sent_; }
  bool attacking() const { return schedule_.attacking(); }

 private:
  struct Lane {
    peer::Peer* victim = nullptr;
    storage::AuId au;
    sim::EventHandle timer;
  };

  void arm_lanes(const std::vector<net::NodeId>& victim_ids);
  void disarm_lanes();
  void lane_tick(size_t lane_index);

  sim::Simulator& simulator_;
  net::Network& network_;
  sim::Rng rng_;
  AdmissionFloodConfig config_;
  std::vector<peer::Peer*> all_victims_;
  std::vector<storage::AuId> aus_;
  const protocol::Params& params_;

  std::vector<Lane> lanes_;
  AttackSchedule schedule_;
  uint32_t next_spoofed_ = 0;
  uint64_t probes_sent_ = 0;
};

}  // namespace lockss::adversary

#endif  // LOCKSS_ADVERSARY_ADMISSION_FLOOD_HPP_
