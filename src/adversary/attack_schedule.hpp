// Shared attack cadence (§7.2, §7.3).
//
// "Each attack consists of a period of pipe stoppage, which lasts between 1
// and 180 days, followed by a 30-day recuperation period during which all
// communication is restored; this pattern is repeated for the entire
// experiment, affecting a different random subset of the population in each
// iteration." The admission-control adversary uses the same on/off pattern
// with its own duration sweep.
#ifndef LOCKSS_ADVERSARY_ATTACK_SCHEDULE_HPP_
#define LOCKSS_ADVERSARY_ATTACK_SCHEDULE_HPP_

#include <functional>
#include <vector>

#include "net/node_id.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace lockss::adversary {

struct AttackCadence {
  sim::SimTime attack_duration = sim::SimTime::days(30);
  sim::SimTime recuperation = sim::SimTime::days(30);
  // Fraction of the loyal population targeted each iteration (§7.2 sweeps
  // 0.10 to 1.00).
  double coverage = 1.0;
};

// Drives repeated on/off attack phases, re-sampling the victim subset each
// iteration. The owner supplies callbacks that install/remove the attack.
class AttackSchedule {
 public:
  using PhaseStart = std::function<void(const std::vector<net::NodeId>& victims)>;
  using PhaseEnd = std::function<void()>;

  AttackSchedule(sim::Simulator& simulator, sim::Rng rng, AttackCadence cadence,
                 std::vector<net::NodeId> population, PhaseStart on_start, PhaseEnd on_end);

  // Begins an attack phase immediately. Restart-safe: if an iteration is
  // already live (a policy switch re-activating a running phase), the old
  // window is torn down first — the owner's teardown callback runs and any
  // booked rate-limiter state is released *now*, not at the next stop().
  void start();

  // Halts the cadence: cancels the pending on/off transition and, if an
  // attack iteration is live, ends it (running the owner's teardown
  // callback). start() may be called again later — campaign pipelines use
  // this to window an attack inside a larger scenario.
  void stop();

  // Scales the cadence down to stay under detection: attack windows shrink
  // by `factor` ∈ (0, 1], recuperation stretches by 1/factor. The attack
  // window saturates at one second — repeated throttles (an adaptive policy
  // re-firing under a sustained trigger) must converge, not drive the
  // integer duration to zero.
  void throttle(double factor);

  // Replaces the cadence; takes effect at the next on/off transition
  // (PolicyEngine throttling — adversary/policy.hpp).
  void set_cadence(AttackCadence cadence);

  const AttackCadence& cadence() const { return cadence_; }

  bool attacking() const { return attacking_; }
  uint64_t iterations() const { return iterations_; }
  const std::vector<net::NodeId>& current_victims() const { return victims_; }

 private:
  void begin_phase();
  void end_phase();

  sim::Simulator& simulator_;
  sim::Rng rng_;
  AttackCadence cadence_;
  std::vector<net::NodeId> population_;
  PhaseStart on_start_;
  PhaseEnd on_end_;
  std::vector<net::NodeId> victims_;
  sim::EventHandle pending_;  // next on/off transition
  bool attacking_ = false;
  uint64_t iterations_ = 0;
};

}  // namespace lockss::adversary

#endif  // LOCKSS_ADVERSARY_ATTACK_SCHEDULE_HPP_
