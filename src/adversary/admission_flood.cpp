#include "adversary/admission_flood.hpp"

#include <algorithm>

#include "protocol/effort_schedule.hpp"
#include "protocol/messages.hpp"

namespace lockss::adversary {

AdmissionFloodAdversary::AdmissionFloodAdversary(sim::Simulator& simulator, net::Network& network,
                                                 sim::Rng rng, AdmissionFloodConfig config,
                                                 std::vector<peer::Peer*> victims,
                                                 std::vector<storage::AuId> aus,
                                                 const protocol::Params& params)
    : simulator_(simulator),
      network_(network),
      rng_(rng),
      config_(config),
      all_victims_(std::move(victims)),
      aus_(std::move(aus)),
      params_(params),
      schedule_(
          simulator, rng_.split(), config.cadence,
          [&] {
            std::vector<net::NodeId> ids;
            ids.reserve(all_victims_.size());
            for (const peer::Peer* victim : all_victims_) {
              ids.push_back(victim->id());
            }
            return ids;
          }(),
          [this](const std::vector<net::NodeId>& victim_ids) { arm_lanes(victim_ids); },
          [this] { disarm_lanes(); }) {}

void AdmissionFloodAdversary::start() { schedule_.start(); }

void AdmissionFloodAdversary::stop() { schedule_.stop(); }

void AdmissionFloodAdversary::throttle_cadence(double factor) { schedule_.throttle(factor); }

void AdmissionFloodAdversary::arm_lanes(const std::vector<net::NodeId>& victim_ids) {
  disarm_lanes();
  for (peer::Peer* victim : all_victims_) {
    if (std::find(victim_ids.begin(), victim_ids.end(), victim->id()) == victim_ids.end()) {
      continue;
    }
    for (storage::AuId au : aus_) {
      if (!victim->has_replica(au)) {
        continue;
      }
      lanes_.push_back(Lane{victim, au, {}});
      const size_t index = lanes_.size() - 1;
      // Small stagger so 60 x 50 lanes do not tick in lockstep.
      lanes_.back().timer = simulator_.schedule_in(
          rng_.uniform_time(sim::SimTime::zero(), config_.recheck_gap),
          [this, index] { lane_tick(index); });
    }
  }
}

void AdmissionFloodAdversary::disarm_lanes() {
  for (Lane& lane : lanes_) {
    lane.timer.cancel();
  }
  lanes_.clear();
}

void AdmissionFloodAdversary::lane_tick(size_t lane_index) {
  Lane& lane = lanes_[lane_index];
  // Insider information (§3.1): consult the victim's refractory state
  // directly instead of burning probes against a hot period.
  if (lane.victim->refractory().in_refractory(lane.au, simulator_.now())) {
    lane.timer = simulator_.schedule_in(
        config_.recheck_gap + rng_.uniform_time(sim::SimTime::zero(), sim::SimTime::minutes(10)),
        [this, lane_index] { lane_tick(lane_index); });
    return;
  }
  // Cold: send one free garbage invitation from a fresh unknown identity.
  auto poll = std::make_unique<protocol::PollMsg>();
  poll->from = net::NodeId{config_.spoofed_id_base + next_spoofed_++};
  poll->to = lane.victim->id();
  poll->poll_id = protocol::make_poll_id(poll->from, 0);
  poll->au = lane.au;
  // Claims exactly the required effort, cost nothing to make, and fails
  // verification — after burning the admission.
  const protocol::EffortSchedule efforts(params_, crypto::CostModel{});
  poll->introductory_effort = crypto::MbfProof::garbage(efforts.introductory_effort());
  poll->vote_deadline = simulator_.now() + params_.vote_window;
  network_.send(std::move(poll));
  ++probes_sent_;
  lane.timer = simulator_.schedule_in(
      config_.probe_gap + rng_.uniform_time(sim::SimTime::zero(), sim::SimTime::minutes(5)),
      [this, lane_index] { lane_tick(lane_index); });
}

}  // namespace lockss::adversary
