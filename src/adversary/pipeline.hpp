// Composable multi-adversary pipelines (§9 "combined adversary strategies").
//
// The paper evaluates one adversary at a time and closes by asking how
// *combinations* fare. A pipeline is an ordered list of AdversaryPhase
// entries — each naming one of the attack modules, its cadence, its
// defection point, an optional activation window [start, stop), and an
// optional private minion-identity pool — installed together into one
// scenario. Phases with overlapping windows run concurrently (e.g. rolling
// pipe stoppage + vote flood); disjoint windows sequence attacks (e.g. an
// admission flood timed into the brute-force recuperation).
//
// Determinism contract: the fleet consumes exactly one root-RNG split per
// phase, in phase order, and schedules no events for phases whose window is
// the whole run (start == stop == 0, the legacy shape). A single-phase
// pipeline is therefore bit-identical to the hard-coded single-adversary
// construction it replaced, and the canonical pipelines for the old
// AdversarySpec kinds (experiment::canonical_pipeline) reproduce the golden
// corpus byte-for-byte.
#ifndef LOCKSS_ADVERSARY_PIPELINE_HPP_
#define LOCKSS_ADVERSARY_PIPELINE_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/admission_flood.hpp"
#include "adversary/attack_schedule.hpp"
#include "adversary/brute_force.hpp"
#include "adversary/grade_recovery.hpp"
#include "adversary/pipe_stoppage.hpp"
#include "adversary/vote_flood.hpp"
#include "net/node_slot_registry.hpp"

namespace lockss::adversary {

// One attack module, as installable into a pipeline phase.
enum class PhaseKind : uint8_t {
  kPipeStoppage,    // §7.2 network-level blackout (effortless)
  kAdmissionFlood,  // §7.3 garbage invitations (effortless)
  kBruteForce,      // §7.4 effortful poll invitations from in-debt minions
  kGradeRecovery,   // §7.4 closing variant (sleeper minions)
  kVoteFlood,       // §5.1 unsolicited-vote spray
};

const char* phase_kind_name(PhaseKind kind);
// Case-sensitive inverse of phase_kind_name ("pipe_stoppage", ...);
// returns false on unknown names.
bool parse_phase_kind(const std::string& name, PhaseKind* out);

struct AdversaryPhase {
  PhaseKind kind = PhaseKind::kPipeStoppage;
  // On/off cadence; consumed by pipe stoppage and admission flood (the
  // other modules attack continuously while active).
  AttackCadence cadence;
  // Brute-force defection point (ignored by other kinds).
  DefectionPoint defection = DefectionPoint::kNone;
  // Activation window. start == 0 activates at scenario start without
  // scheduling an event (the legacy shape); stop == 0 runs to the end.
  sim::SimTime start = sim::SimTime::zero();
  sim::SimTime stop = sim::SimTime::zero();
  // Identity-pool overrides; 0 keeps the module's default. For the
  // admission flood (which spoofs unbounded fresh ids) minion_id_base
  // overrides the spoofed-id base and minion_count is ignored. Concurrent
  // phases must use disjoint pools; AdversaryFleet validates.
  uint32_t minion_count = 0;
  uint32_t minion_id_base = 0;
};

using AdversaryPipeline = std::vector<AdversaryPhase>;

// The fixed identity pool a phase registers, if any.
struct PhaseIdentityPool {
  uint32_t base = 0;
  uint32_t count = 0;
};
PhaseIdentityPool phase_identity_pool(const AdversaryPhase& phase);

// Everything a phase needs from the scenario under construction. Pointers
// are non-owning and must outlive the fleet.
struct FleetEnvironment {
  sim::Simulator* simulator = nullptr;
  net::Network* network = nullptr;
  // Deployment identity registry; may be null (hand-built hosts). Fixed
  // minion pools register here, sorted ascending across phases to satisfy
  // the registry's ordering contract.
  net::NodeSlotRegistry* registry = nullptr;
  // Ids below this belong to loyal peers/newcomers; minion pools must sit
  // above it (asserted at fleet construction via validate_pipeline).
  uint32_t reserved_low_ids = 0;
  std::vector<net::NodeId> loyal_ids;     // pipe-stoppage population
  std::vector<peer::Peer*> victims;       // attackable peers (loyal only)
  std::vector<storage::AuId> aus;
  const protocol::Params* params = nullptr;
  const crypto::CostModel* costs = nullptr;
};

// Validates a pipeline shape without building anything: disjoint fixed
// identity pools, pools above the loyal/newcomer id space, stop > start
// where a stop is given. Returns an empty string when valid, else a
// human-readable reason.
std::string validate_pipeline(const AdversaryPipeline& pipeline, uint32_t reserved_low_ids);

// Owns and drives every phase of one scenario's pipeline.
class AdversaryFleet {
 public:
  // Registers all fixed minion pools (ascending id order) and constructs
  // every phase's adversary, consuming one root.split() per phase in phase
  // order. Aborts (assert) on an invalid pipeline; run validate_pipeline
  // first for a recoverable diagnostic.
  AdversaryFleet(const FleetEnvironment& env, const AdversaryPipeline& pipeline, sim::Rng& root);

  // Starts phases with start == 0 synchronously (no event) and schedules
  // the rest; schedules stops where given.
  void start();

  // --- Policy-engine actions (adversary/policy.hpp) -------------------------
  // Deterministic activation toggles, called from PolicyEngine reactions on
  // the global context. All are idempotent against the per-phase active
  // flag, so a policy switch racing a scheduled window stop never
  // double-tears a phase down.
  void start_phase(size_t index);            // activate (no-op when active)
  void stop_phase(size_t index);             // deactivate (no-op when inactive)
  void restart_phase(size_t index);          // retarget: teardown + fresh start
  // Throttle to stay under detection: cadence-driven phases scale their
  // attack windows by `factor` (and stretch recuperation by 1/factor);
  // continuous phases duty-cycle — stop now, resume after `pause`.
  void throttle_phase(size_t index, double factor, sim::SimTime pause);
  bool phase_active(size_t index) const { return installed_[index].active; }

  // Aggregates for the RunResult / trace sampler. Sums across phases; for
  // every single-adversary pipeline the sums equal the legacy per-kind
  // counters (at most one phase carries each counter).
  double effort_seconds() const;
  uint64_t invitations() const;
  uint64_t admissions() const;

  size_t phase_count() const { return installed_.size(); }

 private:
  struct Installed {
    AdversaryPhase phase;
    bool active = false;  // flipped by start()/stop(); read by the policy APIs
    std::unique_ptr<PipeStoppageAdversary> pipe_stoppage;
    std::unique_ptr<AdmissionFloodAdversary> admission_flood;
    std::unique_ptr<BruteForceAdversary> brute_force;
    std::unique_ptr<GradeRecoveryAdversary> grade_recovery;
    std::unique_ptr<VoteFloodAdversary> vote_flood;

    void start();
    void stop();
  };

  sim::Simulator* simulator_;
  std::vector<Installed> installed_;
};

}  // namespace lockss::adversary

#endif  // LOCKSS_ADVERSARY_PIPELINE_HPP_
