// The vote-flood adversary (§5.1, "Rate Limitation").
//
// "A vote flood adversary would seek to supply as many bogus votes as
// possible hoping to exhaust loyal pollers' resources in useless but
// expensive proofs of invalidity. ... The vote flood adversary is hamstrung
// by the fact that votes can be supplied only in response to an invitation
// by the putative victim poller, and pollers solicit votes at a fixed rate.
// Unsolicited votes are ignored."
//
// This adversary sprays Vote messages at victims, fabricating poll
// identifiers three ways:
//   * random ids that have never existed;
//   * ids forged in the victim's own id space (plausible-looking sequence
//     numbers, as an adversary with insider information would craft);
//   * replays of ids observed to be live (with the optional live-poll
//     oracle), arriving from a sender that was never invited.
//
// Every variant dies at the victim's session dispatch: a vote that does not
// match a live poller session the victim itself created is dropped before
// any hashing or proof verification. The adversary exists to demonstrate —
// in tests and the ext_vote_flood bench — that the flood buys zero friction
// at any send rate, the paper's stated rationale for not even evaluating
// this adversary in §7.
#ifndef LOCKSS_ADVERSARY_VOTE_FLOOD_HPP_
#define LOCKSS_ADVERSARY_VOTE_FLOOD_HPP_

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "peer/peer.hpp"
#include "protocol/messages.hpp"
#include "sched/effort_meter.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "storage/au.hpp"

namespace lockss::adversary {

struct VoteFloodConfig {
  // Votes sprayed per victim per tick.
  uint32_t votes_per_burst = 4;
  // Tick spacing. The default floods each victim with ~1150 bogus votes per
  // day — vastly more votes than the ~30 legitimate ones a peer consumes per
  // AU per 3-month poll cycle.
  sim::SimTime burst_gap = sim::SimTime::minutes(5);
  // Fraction of sprayed votes that reuse a *live* poll id of the victim
  // (requires the oracle; the rest use forged ids).
  double replay_fraction = 0.25;
  // Bogus block hashes per vote; sized like a genuine vote so the wire cost
  // is realistic.
  uint32_t blocks_per_vote = 128;
  uint32_t minion_id_base = 1u << 24;
  uint32_t minion_count = 64;
};

class VoteFloodAdversary : public net::MessageHandler {
 public:
  VoteFloodAdversary(sim::Simulator& simulator, net::Network& network, sim::Rng rng,
                     VoteFloodConfig config, std::vector<peer::Peer*> victims,
                     std::vector<storage::AuId> aus);
  ~VoteFloodAdversary() override;

  void start();

  // Phase-installable teardown: cancels every victim's burst timer.
  void stop();

  // The adversary never expects replies; stray messages are ignored.
  void handle_message(net::MessagePtr /*message*/) override {}

  uint64_t votes_sent() const { return votes_sent_; }
  const sched::EffortMeter& meter() const { return meter_; }

 private:
  void burst(size_t victim_index);
  protocol::PollId forge_poll_id(const peer::Peer& victim);

  sim::Simulator& simulator_;
  net::Network& network_;
  sim::Rng rng_;
  VoteFloodConfig config_;
  std::vector<peer::Peer*> victims_;
  std::vector<storage::AuId> aus_;
  std::vector<sim::EventHandle> timers_;
  sched::EffortMeter meter_;
  uint64_t votes_sent_ = 0;
  uint32_t next_minion_ = 0;
};

}  // namespace lockss::adversary

#endif  // LOCKSS_ADVERSARY_VOTE_FLOOD_HPP_
