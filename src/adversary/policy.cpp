#include "adversary/policy.hpp"

#include <cassert>

#include "adversary/pipeline.hpp"

namespace lockss::adversary {

const char* policy_trigger_name(PolicyTrigger trigger) {
  switch (trigger) {
    case PolicyTrigger::kAlarm:
      return "alarm";
    case PolicyTrigger::kBackoff:
      return "backoff";
    case PolicyTrigger::kOutage:
      return "outage";
    case PolicyTrigger::kRecovery:
      return "recovery";
    case PolicyTrigger::kGradeCollapse:
      return "grade_collapse";
  }
  return "?";
}

const char* policy_action_name(PolicyAction action) {
  switch (action) {
    case PolicyAction::kSwitchPhase:
      return "switch_phase";
    case PolicyAction::kRetarget:
      return "retarget";
    case PolicyAction::kThrottle:
      return "throttle";
    case PolicyAction::kGoDormant:
      return "go_dormant";
  }
  return "?";
}

bool parse_policy_trigger(const std::string& name, PolicyTrigger* out) {
  for (PolicyTrigger trigger :
       {PolicyTrigger::kAlarm, PolicyTrigger::kBackoff, PolicyTrigger::kOutage,
        PolicyTrigger::kRecovery, PolicyTrigger::kGradeCollapse}) {
    if (name == policy_trigger_name(trigger)) {
      *out = trigger;
      return true;
    }
  }
  return false;
}

bool parse_policy_action(const std::string& name, PolicyAction* out) {
  for (PolicyAction action : {PolicyAction::kSwitchPhase, PolicyAction::kRetarget,
                              PolicyAction::kThrottle, PolicyAction::kGoDormant}) {
    if (name == policy_action_name(action)) {
      *out = action;
      return true;
    }
  }
  return false;
}

std::string validate_policies(const AdversaryPolicyConfig& config, size_t phase_count) {
  if (config.policies.empty()) {
    return "";  // disabled — nothing to validate
  }
  if (phase_count == 0) {
    return "adversary policies require an adversary pipeline to act on";
  }
  if (config.reaction_latency <= sim::SimTime::zero()) {
    return "reaction_latency must be positive";
  }
  if (config.sensor_interval <= sim::SimTime::zero()) {
    return "sensor_interval must be positive";
  }
  if (config.cooldown < sim::SimTime::zero()) {
    return "cooldown must be non-negative";
  }
  if (config.outage_threshold < 0.0 || config.outage_threshold > 1.0) {
    return "outage_threshold must be within [0, 1]";
  }
  if (config.backoff_threshold < 0.0 || config.backoff_threshold > 1.0) {
    return "backoff_threshold must be within [0, 1]";
  }
  if (config.collapse_threshold < 0.0 || config.collapse_threshold > 1.0) {
    return "collapse_threshold must be within [0, 1]";
  }
  if (config.dormant_mean <= sim::SimTime::zero()) {
    return "dormant_mean must be positive";
  }
  if (config.throttle_pause <= sim::SimTime::zero()) {
    return "throttle_pause must be positive";
  }
  for (size_t i = 0; i < config.policies.size(); ++i) {
    const AdversaryPolicy& policy = config.policies[i];
    if (policy.phase >= phase_count) {
      return "policy " + std::to_string(i) + " (" + policy_trigger_name(policy.trigger) +
             " -> " + policy_action_name(policy.action) + "): phase " +
             std::to_string(policy.phase) + " is out of range (pipeline has " +
             std::to_string(phase_count) + (phase_count == 1 ? " phase)" : " phases)");
    }
    if (policy.action == PolicyAction::kThrottle &&
        (policy.factor <= 0.0 || policy.factor > 1.0)) {
      return "policy " + std::to_string(i) + " (" + policy_trigger_name(policy.trigger) +
             " -> throttle): factor must be within (0, 1]";
    }
  }
  return "";
}

PolicyEngine::PolicyEngine(sim::Simulator& simulator, AdversaryPolicyConfig config,
                           uint64_t scenario_seed)
    : simulator_(simulator),
      config_(std::move(config)),
      rng_(sim::splitmix64_mix(scenario_seed ^ kPolicyStreamTag)) {}

void PolicyEngine::arm(AdversaryFleet* fleet, uint32_t established_count) {
  assert(fleet != nullptr);
  assert(validate_policies(config_, fleet->phase_count()).empty() &&
         "invalid policy table; run validate_policies first for the diagnostic");
  fleet_ = fleet;
  established_ = established_count;
  next_allowed_.assign(config_.policies.size(), sim::SimTime::zero());
}

bool PolicyEngine::wants(PolicyTrigger trigger) const {
  for (const AdversaryPolicy& policy : config_.policies) {
    if (policy.trigger == trigger) {
      return true;
    }
  }
  return false;
}

void PolicyEngine::start() {
  assert(fleet_ != nullptr && "arm() before start()");
  if (wants(PolicyTrigger::kBackoff) || wants(PolicyTrigger::kGradeCollapse)) {
    simulator_.schedule_in(config_.sensor_interval, [this] { sensor_tick(); });
  }
}

std::function<void(net::NodeId, const protocol::PollOutcome&)> PolicyEngine::observer(
    std::function<void(net::NodeId, const protocol::PollOutcome&)> next) {
  return [this, next = std::move(next)](net::NodeId poller,
                                        const protocol::PollOutcome& outcome) {
    if (outcome.kind == protocol::PollOutcomeKind::kAlarm) {
      on_trigger_at(PolicyTrigger::kAlarm, simulator_.now());
    }
    if (next) {
      next(poller, outcome);
    }
  };
}

void PolicyEngine::on_alarm_observed(net::NodeId /*poller*/, sim::SimTime observed_at) {
  on_trigger_at(PolicyTrigger::kAlarm, observed_at);
}

void PolicyEngine::on_churn_sample(sim::SimTime at, uint32_t offline_count) {
  if (established_ == 0) {
    return;
  }
  const double fraction =
      static_cast<double>(offline_count) / static_cast<double>(established_);
  const bool open = fraction >= config_.outage_threshold;
  if (open && !outage_live_) {
    outage_live_ = true;
    on_trigger_at(PolicyTrigger::kOutage, at);
  } else if (!open && outage_live_) {
    outage_live_ = false;
    on_trigger_at(PolicyTrigger::kRecovery, at);
  }
}

void PolicyEngine::sensor_tick() {
  const uint64_t invitations = fleet_->invitations();
  const uint64_t admissions = fleet_->admissions();
  const uint64_t delta_inv = invitations - sensed_invitations_;
  const uint64_t delta_adm = admissions - sensed_admissions_;
  sensed_invitations_ = invitations;
  sensed_admissions_ = admissions;
  const sim::SimTime now = simulator_.now();
  if (delta_inv > 0 && static_cast<double>(delta_adm) <
                           config_.backoff_threshold * static_cast<double>(delta_inv)) {
    on_trigger_at(PolicyTrigger::kBackoff, now);
  }
  if (invitations >= kCollapseMinInvitations &&
      static_cast<double>(admissions) <
          config_.collapse_threshold * static_cast<double>(invitations)) {
    on_trigger_at(PolicyTrigger::kGradeCollapse, now);
  }
  simulator_.schedule_in(config_.sensor_interval, [this] { sensor_tick(); });
}

void PolicyEngine::on_trigger_at(PolicyTrigger trigger, sim::SimTime observed_at) {
  // Rules fire in table order, each gated by its own cooldown — the
  // adversary notices once, then works through its playbook (the
  // OperatorResponseEngine discipline).
  for (size_t i = 0; i < config_.policies.size(); ++i) {
    const AdversaryPolicy& policy = config_.policies[i];
    if (policy.trigger != trigger || observed_at < next_allowed_[i]) {
      continue;
    }
    next_allowed_[i] = observed_at + config_.cooldown;
    ++triggers_seen_;
    if (trigger_hook_) {
      trigger_hook_(trigger, static_cast<uint32_t>(i));
    }
    simulator_.schedule_at(observed_at + config_.reaction_latency,
                           [this, i] { apply(i); });
  }
}

void PolicyEngine::apply(size_t policy_index) {
  const AdversaryPolicy& policy = config_.policies[policy_index];
  const size_t target = policy.phase;
  switch (policy.action) {
    case PolicyAction::kSwitchPhase:
      for (size_t p = 0; p < fleet_->phase_count(); ++p) {
        if (p != target) {
          fleet_->stop_phase(p);
        }
      }
      fleet_->start_phase(target);
      break;
    case PolicyAction::kRetarget:
      fleet_->restart_phase(target);
      break;
    case PolicyAction::kThrottle:
      fleet_->throttle_phase(target, policy.factor, config_.throttle_pause);
      break;
    case PolicyAction::kGoDormant: {
      fleet_->stop_phase(target);
      // Irregular dormancy (the one legitimate use of the policy stream):
      // a fixed sleep would let defenders calibrate to the cadence.
      const sim::SimTime sleep = rng_.exponential_time(config_.dormant_mean);
      simulator_.schedule_in(sleep, [this, target] { fleet_->start_phase(target); });
      break;
    }
  }
  ++actions_applied_[static_cast<size_t>(policy.action)];
  if (action_hook_) {
    action_hook_(policy.action, static_cast<uint32_t>(target));
  }
}

uint64_t PolicyEngine::actions_total() const {
  uint64_t total = 0;
  for (uint64_t n : actions_applied_) {
    total += n;
  }
  return total;
}

}  // namespace lockss::adversary
