#include "adversary/pipe_stoppage.hpp"

namespace lockss::adversary {

PipeStoppageAdversary::PipeStoppageAdversary(sim::Simulator& simulator, net::Network& network,
                                             sim::Rng rng, AttackCadence cadence,
                                             std::vector<net::NodeId> population)
    : network_(network),
      schedule_(
          simulator, rng, cadence, std::move(population),
          [this](const std::vector<net::NodeId>& victims) {
            victims_.clear();
            victims_.insert(victims.begin(), victims.end());
          },
          [this] { victims_.clear(); }) {
  network_.add_filter(this);
}

PipeStoppageAdversary::~PipeStoppageAdversary() { network_.remove_filter(this); }

void PipeStoppageAdversary::start() { schedule_.start(); }

void PipeStoppageAdversary::stop() { schedule_.stop(); }

void PipeStoppageAdversary::throttle_cadence(double factor) { schedule_.throttle(factor); }

bool PipeStoppageAdversary::allow(net::NodeId from, net::NodeId to) const {
  if (victims_.empty()) {
    return true;
  }
  return !victims_.contains(from) && !victims_.contains(to);
}

}  // namespace lockss::adversary
