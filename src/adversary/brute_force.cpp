#include "adversary/brute_force.hpp"

#include <cassert>

namespace lockss::adversary {

const char* defection_point_name(DefectionPoint point) {
  switch (point) {
    case DefectionPoint::kIntro:
      return "INTRO";
    case DefectionPoint::kRemaining:
      return "REMAINING";
    case DefectionPoint::kNone:
      return "NONE";
  }
  return "?";
}

BruteForceAdversary::BruteForceAdversary(sim::Simulator& simulator, net::Network& network,
                                         sim::Rng rng, BruteForceConfig config,
                                         std::vector<peer::Peer*> victims,
                                         std::vector<storage::AuId> aus,
                                         const protocol::Params& params,
                                         const crypto::CostModel& costs)
    : simulator_(simulator),
      network_(network),
      rng_(rng),
      config_(config),
      victims_(std::move(victims)),
      aus_(std::move(aus)),
      params_(params),
      costs_(costs),
      efforts_(params, costs),
      mbf_(costs, rng_.split()) {
  // All minion identities share this handler.
  for (uint32_t m = 0; m < config_.minion_count; ++m) {
    network_.register_node(net::NodeId{config_.minion_id_base + m}, this);
  }
}

BruteForceAdversary::~BruteForceAdversary() {
  for (uint32_t m = 0; m < config_.minion_count; ++m) {
    network_.unregister_node(net::NodeId{config_.minion_id_base + m});
  }
}

net::NodeId BruteForceAdversary::next_minion() {
  const net::NodeId id{config_.minion_id_base + (next_minion_ % config_.minion_count)};
  ++next_minion_;
  return id;
}

void BruteForceAdversary::start() {
  stopped_ = false;
  if (!fronts_.empty()) {
    // Policy-driven reactivation (adversary/policy.hpp): the grades were
    // seeded and the lanes built on the first start; just bring every
    // front back to life with a fresh stagger.
    for (size_t f = 0; f < fronts_.size(); ++f) {
      schedule_attempt(f, rng_.uniform_time(sim::SimTime::zero(), params_.refractory_period));
    }
    return;
  }
  // "We conservatively initialize all adversary addresses with a debt grade
  // at all loyal peers" (§7.4).
  for (peer::Peer* victim : victims_) {
    for (storage::AuId au : aus_) {
      if (!victim->has_replica(au)) {
        continue;
      }
      for (uint32_t m = 0; m < config_.minion_count; ++m) {
        victim->seed_grade(au, net::NodeId{config_.minion_id_base + m},
                           reputation::Grade::kDebt);
      }
    }
  }
  // One attack lane per (victim, AU), started with a small random stagger.
  for (peer::Peer* victim : victims_) {
    for (storage::AuId au : aus_) {
      if (!victim->has_replica(au)) {
        continue;
      }
      fronts_.push_back(Front{victim, au, 0, {}, {}});
      schedule_attempt(fronts_.size() - 1,
                       rng_.uniform_time(sim::SimTime::zero(), params_.refractory_period));
    }
  }
}

void BruteForceAdversary::stop() {
  stopped_ = true;
  for (Front& front : fronts_) {
    front.timer.cancel();
    front.live_poll = 0;
  }
  front_by_poll_.clear();
}

void BruteForceAdversary::schedule_attempt(size_t front_index, sim::SimTime delay) {
  Front& front = fronts_[front_index];
  front.timer.cancel();
  front.timer = simulator_.schedule_in(delay, [this, front_index] { attempt(front_index); });
}

void BruteForceAdversary::attempt(size_t front_index) {
  Front& front = fronts_[front_index];
  const sim::SimTime now = simulator_.now();

  // Insider information: wait out the victim's refractory period instead of
  // wasting introductory proofs on automatic rejections.
  if (front.victim->refractory().in_refractory(front.au, now)) {
    schedule_attempt(front_index, params_.refractory_period * 0.1 + config_.refractory_slack);
    return;
  }
  // Schedule oracle (§7.4): skip victims that would refuse for lack of a
  // vote-computation slot.
  const sim::SimTime vote_task = sim::SimTime::seconds(
      efforts_.vote_computation_effort() + efforts_.vote_proof_effort());
  if (!front.victim->schedule().can_reserve(vote_task, now + params_.poll_proof_timeout * 0.5,
                                            now + params_.vote_window)) {
    schedule_attempt(front_index, sim::SimTime::hours(1));
    return;
  }

  // Drop bookkeeping for a previous unanswered invitation on this front.
  if (front.live_poll != 0) {
    front_by_poll_.erase(front.live_poll);
    front.live_poll = 0;
  }

  // Send a Poll with a *genuine* introductory proof from an in-debt minion.
  // Unlimited parallel compute: the effort is accounted, not scheduled.
  const double intro = efforts_.introductory_effort();
  meter_.charge(sched::EffortCategory::kMbfGeneration, intro);
  meter_.charge(sched::EffortCategory::kHandshake, costs_.session_handshake_seconds);

  const net::NodeId minion = next_minion();
  const protocol::PollId poll_id = protocol::make_poll_id(minion, poll_sequence_++);
  auto poll = std::make_unique<protocol::PollMsg>();
  poll->from = minion;
  poll->to = front.victim->id();
  poll->poll_id = poll_id;
  poll->au = front.au;
  poll->introductory_effort = mbf_.generate(intro);
  poll->vote_deadline = now + params_.vote_window;
  network_.send(std::move(poll));
  ++invitations_sent_;

  front.live_poll = poll_id;
  front_by_poll_[poll_id] = front_index;
  // Silent drop detection: if no PollAck arrives promptly, try again with the
  // next minion (the 0.8 random drop ate the invitation).
  schedule_attempt(front_index, config_.retry_gap);
}

void BruteForceAdversary::handle_message(net::MessagePtr message) {
  if (stopped_) {
    return;  // deactivated phase: minion identities fall silent
  }
  switch (message->kind()) {
    case net::MessageKind::kPollAck: {
      const auto& ack = static_cast<const protocol::PollAckMsg&>(*message);
      auto it = front_by_poll_.find(ack.poll_id);
      if (it != front_by_poll_.end() && fronts_[it->second].live_poll == ack.poll_id) {
        on_ack(it->second, ack);
      }
      return;
    }
    case net::MessageKind::kVote: {
      const auto& vote = static_cast<const protocol::VoteMsg&>(*message);
      auto it = front_by_poll_.find(vote.poll_id);
      if (it != front_by_poll_.end() && fronts_[it->second].live_poll == vote.poll_id) {
        on_vote(it->second, vote);
      }
      return;
    }
    default:
      // Anything else (repairs we never request, stray receipts) is ignored.
      return;
  }
}

void BruteForceAdversary::on_ack(size_t front_index, const protocol::PollAckMsg& ack) {
  Front& front = fronts_[front_index];
  front.timer.cancel();
  front_by_poll_.erase(ack.poll_id);
  if (!ack.accept) {
    // Refused (schedule race); try again shortly.
    front.live_poll = 0;
    schedule_attempt(front_index, config_.retry_gap);
    return;
  }
  ++admissions_;
  // Our invitation was admitted; the victim's refractory period is hot now,
  // so the next attempt on this front waits it out regardless of defection.
  if (config_.defection == DefectionPoint::kIntro) {
    // Desert: never send the PollProof. The victim holds its reservation
    // until the proof timeout, then frees it and grades the minion down.
    front.live_poll = 0;
    schedule_attempt(front_index, params_.refractory_period + config_.refractory_slack);
    return;
  }
  // REMAINING / NONE: follow up with a genuine PollProof.
  const double remaining = efforts_.remaining_effort();
  meter_.charge(sched::EffortCategory::kMbfGeneration, remaining);
  auto proof = std::make_unique<protocol::PollProofMsg>();
  proof->from = ack.to;  // reply from the same minion identity
  proof->to = front.victim->id();
  proof->poll_id = ack.poll_id;
  proof->au = front.au;
  proof->remaining_effort = mbf_.generate(remaining);
  proof->vote_nonce = crypto::Digest64{rng_.next_u64() | 1};
  front.nonce = proof->vote_nonce;
  front.live_poll = ack.poll_id;
  front_by_poll_[ack.poll_id] = front_index;
  network_.send(std::move(proof));
  // Await the vote; if it never comes, move on after the vote window.
  schedule_attempt(front_index, params_.vote_window + params_.vote_slack);
}

void BruteForceAdversary::on_vote(size_t front_index, const protocol::VoteMsg& vote) {
  Front& front = fronts_[front_index];
  front.timer.cancel();
  front_by_poll_.erase(vote.poll_id);
  front.live_poll = 0;
  if (config_.defection == DefectionPoint::kRemaining) {
    // Desert: discard the vote unevaluated (wasteful strategy); the victim's
    // receipt timeout will penalize the minion.
    schedule_attempt(front_index, params_.refractory_period + config_.refractory_slack);
    return;
  }
  // NONE: behave exactly like a legitimate poller as far as the victim can
  // tell — but no further. Total information awareness (§3.1) tells the
  // adversary the honest victim's vote is valid, so it skips the loyal
  // poller's block-by-block evaluation hashing entirely; verifying the
  // vote's effort proof is all it needs to recover the receipt byproduct.
  // This is what makes NONE the *cheapest per unit of harm* (Table 1): the
  // victim does full vote-computation work, the attacker only MBF work.
  const auto verification = mbf_.verify(vote.vote_effort, efforts_.vote_proof_effort());
  meter_.charge(sched::EffortCategory::kMbfVerification, verification.verify_effort);
  // Mimic the frivolous repairs of a loyal poller (§4.3); requests are
  // nearly free to send, but each one charges the victim a repair service.
  const net::NodeId minion = vote.to;
  for (uint32_t r = 0; r < config_.repairs_per_poll; ++r) {
    auto request = std::make_unique<protocol::RepairRequestMsg>();
    request->from = minion;
    request->to = front.victim->id();
    request->poll_id = vote.poll_id;
    request->au = front.au;
    request->block = static_cast<uint32_t>(rng_.index(params_.au_spec.block_count));
    meter_.charge(sched::EffortCategory::kOverhead, costs_.message_overhead_seconds);
    network_.send(std::move(request));
  }
  // Let the repairs arrive and be served before the receipt closes the
  // victim's session.
  front.live_poll = vote.poll_id;
  front_by_poll_[vote.poll_id] = front_index;
  front.timer = simulator_.schedule_in(
      config_.receipt_delay,
      [this, front_index, poll_id = vote.poll_id, minion, byproduct = verification.byproduct] {
        send_receipt(front_index, poll_id, minion, byproduct);
      });
}

void BruteForceAdversary::send_receipt(size_t front_index, protocol::PollId poll_id,
                                       net::NodeId minion, crypto::Digest64 receipt_byproduct) {
  Front& front = fronts_[front_index];
  front_by_poll_.erase(poll_id);
  front.live_poll = 0;
  auto receipt = std::make_unique<protocol::EvaluationReceiptMsg>();
  receipt->from = minion;
  receipt->to = front.victim->id();
  receipt->poll_id = poll_id;
  receipt->au = front.au;
  receipt->receipt = receipt_byproduct;
  meter_.charge(sched::EffortCategory::kOverhead, costs_.message_overhead_seconds);
  network_.send(std::move(receipt));
  schedule_attempt(front_index, params_.refractory_period + config_.refractory_slack);
}

}  // namespace lockss::adversary
