#include "adversary/pipeline.hpp"

#include <algorithm>
#include <cassert>

#include "peer/peer.hpp"

namespace lockss::adversary {

const char* phase_kind_name(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kPipeStoppage:
      return "pipe_stoppage";
    case PhaseKind::kAdmissionFlood:
      return "admission_flood";
    case PhaseKind::kBruteForce:
      return "brute_force";
    case PhaseKind::kGradeRecovery:
      return "grade_recovery";
    case PhaseKind::kVoteFlood:
      return "vote_flood";
  }
  return "?";
}

bool parse_phase_kind(const std::string& name, PhaseKind* out) {
  for (PhaseKind kind :
       {PhaseKind::kPipeStoppage, PhaseKind::kAdmissionFlood, PhaseKind::kBruteForce,
        PhaseKind::kGradeRecovery, PhaseKind::kVoteFlood}) {
    if (name == phase_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

PhaseIdentityPool phase_identity_pool(const AdversaryPhase& phase) {
  PhaseIdentityPool pool;
  switch (phase.kind) {
    case PhaseKind::kPipeStoppage:
      return pool;  // no identities of its own
    case PhaseKind::kAdmissionFlood:
      // Spoofed ids are unbounded and never registered; report the base so
      // overlap validation can keep fixed pools out of the spoof space, with
      // count 0 marking "open-ended, unregistered".
      pool.base = phase.minion_id_base != 0 ? phase.minion_id_base
                                            : AdmissionFloodConfig{}.spoofed_id_base;
      pool.count = 0;
      return pool;
    case PhaseKind::kBruteForce: {
      const BruteForceConfig defaults;
      pool.base = phase.minion_id_base != 0 ? phase.minion_id_base : defaults.minion_id_base;
      pool.count = phase.minion_count != 0 ? phase.minion_count : defaults.minion_count;
      return pool;
    }
    case PhaseKind::kGradeRecovery: {
      const GradeRecoveryConfig defaults;
      pool.base = phase.minion_id_base != 0 ? phase.minion_id_base : defaults.minion_id_base;
      pool.count = phase.minion_count != 0 ? phase.minion_count : defaults.minion_count;
      return pool;
    }
    case PhaseKind::kVoteFlood: {
      const VoteFloodConfig defaults;
      pool.base = phase.minion_id_base != 0 ? phase.minion_id_base : defaults.minion_id_base;
      pool.count = phase.minion_count != 0 ? phase.minion_count : defaults.minion_count;
      return pool;
    }
  }
  return pool;
}

std::string validate_pipeline(const AdversaryPipeline& pipeline, uint32_t reserved_low_ids) {
  struct Range {
    uint64_t lo;
    uint64_t hi;  // exclusive; UINT64_MAX for open-ended spoof space
    size_t phase;
  };
  std::vector<Range> ranges;
  for (size_t i = 0; i < pipeline.size(); ++i) {
    const AdversaryPhase& phase = pipeline[i];
    if (phase.start < sim::SimTime::zero()) {
      return "phase " + std::to_string(i) + " (" + phase_kind_name(phase.kind) +
             "): start must be non-negative";
    }
    if (phase.stop != sim::SimTime::zero() && phase.stop <= phase.start) {
      return "phase " + std::to_string(i) + " (" + phase_kind_name(phase.kind) +
             "): stop must come after start";
    }
    if (phase.kind == PhaseKind::kPipeStoppage || phase.kind == PhaseKind::kAdmissionFlood) {
      if (phase.cadence.coverage < 0.0 || phase.cadence.coverage > 1.0) {
        return "phase " + std::to_string(i) + " (" + phase_kind_name(phase.kind) +
               "): coverage must be within [0, 1]";
      }
      if (phase.cadence.attack_duration <= sim::SimTime::zero()) {
        return "phase " + std::to_string(i) + " (" + phase_kind_name(phase.kind) +
               "): attack duration must be positive";
      }
    }
    const PhaseIdentityPool pool = phase_identity_pool(phase);
    if (pool.base == 0) {
      continue;  // no identity pool
    }
    if (pool.base < reserved_low_ids) {
      return "phase " + std::to_string(i) + " (" + phase_kind_name(phase.kind) +
             "): identity pool collides with the loyal/newcomer id space";
    }
    ranges.push_back(Range{pool.base,
                           pool.count == 0 ? UINT64_MAX : uint64_t{pool.base} + pool.count, i});
  }
  std::sort(ranges.begin(), ranges.end(), [](const Range& a, const Range& b) {
    return a.lo < b.lo;
  });
  for (size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i].lo < ranges[i - 1].hi) {
      return "phases " + std::to_string(ranges[i - 1].phase) + " and " +
             std::to_string(ranges[i].phase) +
             " use overlapping identity pools; give one an explicit disjoint "
             "minion_id_base";
    }
  }
  return "";
}

AdversaryFleet::AdversaryFleet(const FleetEnvironment& env, const AdversaryPipeline& pipeline,
                               sim::Rng& root)
    : simulator_(env.simulator) {
  assert(env.simulator != nullptr && env.network != nullptr && env.params != nullptr &&
         env.costs != nullptr);
  assert(validate_pipeline(pipeline, env.reserved_low_ids).empty() &&
         "invalid pipeline (minion pools must sit above the loyal/newcomer id "
         "space); run validate_pipeline first for the diagnostic");

  // Fixed minion pools register at setup, before any traffic, sorted
  // ascending across phases (the registry's ordering contract). The
  // admission flood's spoofed ids intentionally stay unregistered — the
  // substrates' overflow path is part of that attack's semantics.
  if (env.registry != nullptr) {
    std::vector<PhaseIdentityPool> pools;
    for (const AdversaryPhase& phase : pipeline) {
      const PhaseIdentityPool pool = phase_identity_pool(phase);
      if (pool.count > 0) {
        pools.push_back(pool);
      }
    }
    std::sort(pools.begin(), pools.end(),
              [](const PhaseIdentityPool& a, const PhaseIdentityPool& b) {
                return a.base < b.base;
              });
    for (const PhaseIdentityPool& pool : pools) {
      for (uint32_t m = 0; m < pool.count; ++m) {
        env.registry->register_node(net::NodeId{pool.base + m});
      }
    }
  }

  // Construction order is phase order; each phase consumes exactly one
  // root split (the determinism contract in the header).
  installed_.reserve(pipeline.size());
  for (const AdversaryPhase& phase : pipeline) {
    Installed entry;
    entry.phase = phase;
    switch (phase.kind) {
      case PhaseKind::kPipeStoppage:
        entry.pipe_stoppage = std::make_unique<PipeStoppageAdversary>(
            *env.simulator, *env.network, root.split(), phase.cadence, env.loyal_ids);
        break;
      case PhaseKind::kAdmissionFlood: {
        AdmissionFloodConfig config;
        config.cadence = phase.cadence;
        if (phase.minion_id_base != 0) {
          config.spoofed_id_base = phase.minion_id_base;
        }
        entry.admission_flood = std::make_unique<AdmissionFloodAdversary>(
            *env.simulator, *env.network, root.split(), config, env.victims, env.aus,
            *env.params);
        break;
      }
      case PhaseKind::kBruteForce: {
        BruteForceConfig config;
        config.defection = phase.defection;
        if (phase.minion_count != 0) {
          config.minion_count = phase.minion_count;
        }
        if (phase.minion_id_base != 0) {
          config.minion_id_base = phase.minion_id_base;
        }
        entry.brute_force = std::make_unique<BruteForceAdversary>(
            *env.simulator, *env.network, root.split(), config, env.victims, env.aus,
            *env.params, *env.costs);
        break;
      }
      case PhaseKind::kGradeRecovery: {
        GradeRecoveryConfig config;
        if (phase.minion_count != 0) {
          config.minion_count = phase.minion_count;
        }
        if (phase.minion_id_base != 0) {
          config.minion_id_base = phase.minion_id_base;
        }
        entry.grade_recovery = std::make_unique<GradeRecoveryAdversary>(
            *env.simulator, *env.network, root.split(), config, env.victims, env.aus,
            *env.params, *env.costs);
        break;
      }
      case PhaseKind::kVoteFlood: {
        VoteFloodConfig config;
        if (phase.minion_count != 0) {
          config.minion_count = phase.minion_count;
        }
        if (phase.minion_id_base != 0) {
          config.minion_id_base = phase.minion_id_base;
        }
        entry.vote_flood = std::make_unique<VoteFloodAdversary>(
            *env.simulator, *env.network, root.split(), config, env.victims, env.aus);
        break;
      }
    }
    installed_.push_back(std::move(entry));
  }
}

void AdversaryFleet::Installed::start() {
  active = true;
  if (pipe_stoppage) {
    pipe_stoppage->start();
  } else if (admission_flood) {
    admission_flood->start();
  } else if (brute_force) {
    brute_force->start();
  } else if (grade_recovery) {
    grade_recovery->start();
  } else if (vote_flood) {
    vote_flood->start();
  }
}

void AdversaryFleet::Installed::stop() {
  active = false;
  if (pipe_stoppage) {
    pipe_stoppage->stop();
  } else if (admission_flood) {
    admission_flood->stop();
  } else if (brute_force) {
    brute_force->stop();
  } else if (grade_recovery) {
    grade_recovery->stop();
  } else if (vote_flood) {
    vote_flood->stop();
  }
}

void AdversaryFleet::start() {
  for (Installed& entry : installed_) {
    if (entry.phase.start == sim::SimTime::zero()) {
      // Legacy shape: activate synchronously, no extra simulator event (the
      // bit-identity contract with the old single-adversary construction).
      entry.start();
    } else {
      simulator_->schedule_at(entry.phase.start, [&entry] { entry.start(); });
    }
    if (entry.phase.stop != sim::SimTime::zero()) {
      simulator_->schedule_at(entry.phase.stop, [&entry] { entry.stop(); });
    }
  }
}

void AdversaryFleet::start_phase(size_t index) {
  Installed& entry = installed_[index];
  if (!entry.active) {
    entry.start();
  }
}

void AdversaryFleet::stop_phase(size_t index) {
  Installed& entry = installed_[index];
  if (entry.active) {
    entry.stop();
  }
}

void AdversaryFleet::restart_phase(size_t index) {
  Installed& entry = installed_[index];
  if (entry.active) {
    entry.stop();
  }
  entry.start();
}

void AdversaryFleet::throttle_phase(size_t index, double factor, sim::SimTime pause) {
  Installed& entry = installed_[index];
  assert(factor > 0.0 && factor <= 1.0);
  if (entry.pipe_stoppage) {
    entry.pipe_stoppage->throttle_cadence(factor);
  } else if (entry.admission_flood) {
    entry.admission_flood->throttle_cadence(factor);
  } else {
    // Continuous attackers have no cadence to scale: duty-cycle instead.
    if (entry.active) {
      entry.stop();
    }
    simulator_->schedule_in(pause, [&entry] {
      if (!entry.active) {
        entry.start();
      }
    });
  }
}

double AdversaryFleet::effort_seconds() const {
  double total = 0.0;
  for (const Installed& entry : installed_) {
    if (entry.brute_force) {
      total += entry.brute_force->meter().total();
    } else if (entry.grade_recovery) {
      total += entry.grade_recovery->meter().total();
    } else if (entry.vote_flood) {
      total += entry.vote_flood->meter().total();
    }
  }
  return total;
}

uint64_t AdversaryFleet::invitations() const {
  uint64_t total = 0;
  for (const Installed& entry : installed_) {
    if (entry.brute_force) {
      total += entry.brute_force->invitations_sent();
    } else if (entry.admission_flood) {
      total += entry.admission_flood->probes_sent();
    } else if (entry.grade_recovery) {
      total += entry.grade_recovery->defecting_polls();
    } else if (entry.vote_flood) {
      total += entry.vote_flood->votes_sent();
    }
  }
  return total;
}

uint64_t AdversaryFleet::admissions() const {
  uint64_t total = 0;
  for (const Installed& entry : installed_) {
    if (entry.brute_force) {
      total += entry.brute_force->admissions();
    } else if (entry.grade_recovery) {
      total += entry.grade_recovery->votes_supplied();
    }
  }
  return total;
}

}  // namespace lockss::adversary
