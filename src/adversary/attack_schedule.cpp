#include "adversary/attack_schedule.hpp"

#include <cassert>
#include <cmath>

namespace lockss::adversary {

AttackSchedule::AttackSchedule(sim::Simulator& simulator, sim::Rng rng, AttackCadence cadence,
                               std::vector<net::NodeId> population, PhaseStart on_start,
                               PhaseEnd on_end)
    : simulator_(simulator),
      rng_(rng),
      cadence_(cadence),
      population_(std::move(population)),
      on_start_(std::move(on_start)),
      on_end_(std::move(on_end)) {
  assert(cadence_.coverage >= 0.0 && cadence_.coverage <= 1.0);
}

void AttackSchedule::start() { begin_phase(); }

void AttackSchedule::stop() {
  pending_.cancel();
  if (attacking_) {
    attacking_ = false;
    victims_.clear();
    if (on_end_) {
      on_end_();
    }
  }
}

void AttackSchedule::begin_phase() {
  const size_t count = static_cast<size_t>(
      std::lround(cadence_.coverage * static_cast<double>(population_.size())));
  victims_ = rng_.sample(population_, count);
  attacking_ = true;
  ++iterations_;
  if (on_start_) {
    on_start_(victims_);
  }
  pending_ = simulator_.schedule_in(cadence_.attack_duration, [this] { end_phase(); });
}

void AttackSchedule::end_phase() {
  attacking_ = false;
  victims_.clear();
  if (on_end_) {
    on_end_();
  }
  pending_ = simulator_.schedule_in(cadence_.recuperation, [this] { begin_phase(); });
}

}  // namespace lockss::adversary
