#include "adversary/attack_schedule.hpp"

#include <cassert>
#include <cmath>

namespace lockss::adversary {

AttackSchedule::AttackSchedule(sim::Simulator& simulator, sim::Rng rng, AttackCadence cadence,
                               std::vector<net::NodeId> population, PhaseStart on_start,
                               PhaseEnd on_end)
    : simulator_(simulator),
      rng_(rng),
      cadence_(cadence),
      population_(std::move(population)),
      on_start_(std::move(on_start)),
      on_end_(std::move(on_end)) {
  assert(cadence_.coverage >= 0.0 && cadence_.coverage <= 1.0);
}

void AttackSchedule::start() {
  // A start() over a live iteration (policy-driven re-activation) must not
  // leak the old window: cancel the pending transition and run the owner's
  // teardown before opening the fresh window, so anything the old victims
  // had booked — link filters, attack lanes, schedule reservations — is
  // released immediately. First-time starts see both branches as no-ops.
  pending_.cancel();
  if (attacking_) {
    attacking_ = false;
    victims_.clear();
    if (on_end_) {
      on_end_();
    }
  }
  begin_phase();
}

void AttackSchedule::throttle(double factor) {
  assert(factor > 0.0 && factor <= 1.0);
  AttackCadence cadence = cadence_;
  cadence.attack_duration = cadence.attack_duration * factor;
  const sim::SimTime floor = sim::SimTime::seconds(1.0);
  if (cadence.attack_duration < floor) {
    cadence.attack_duration = floor;
  }
  cadence.recuperation = cadence.recuperation * (1.0 / factor);
  set_cadence(cadence);
}

void AttackSchedule::set_cadence(AttackCadence cadence) {
  assert(cadence.coverage >= 0.0 && cadence.coverage <= 1.0);
  assert(cadence.attack_duration > sim::SimTime::zero());
  cadence_ = cadence;
}

void AttackSchedule::stop() {
  pending_.cancel();
  if (attacking_) {
    attacking_ = false;
    victims_.clear();
    if (on_end_) {
      on_end_();
    }
  }
}

void AttackSchedule::begin_phase() {
  const size_t count = static_cast<size_t>(
      std::lround(cadence_.coverage * static_cast<double>(population_.size())));
  victims_ = rng_.sample(population_, count);
  attacking_ = true;
  ++iterations_;
  if (on_start_) {
    on_start_(victims_);
  }
  pending_ = simulator_.schedule_in(cadence_.attack_duration, [this] { end_phase(); });
}

void AttackSchedule::end_phase() {
  attacking_ = false;
  victims_.clear();
  if (on_end_) {
    on_end_();
  }
  pending_ = simulator_.schedule_in(cadence_.recuperation, [this] { begin_phase(); });
}

}  // namespace lockss::adversary
