// The grade-recovery adversary — the §7.4 closing variant.
//
// "We omit experiments with an adversary whose minions may be in either even
// or credit grade. This adversary polls a victim only after he has supplied
// that victim with a vote, then defects in any of the ways described above.
// He then recovers his grade at the victim by supplying an appropriate
// number of valid votes in succession. Each vote he supplies is used to
// introduce new minions that thereby bypass the victim's admission control
// before defecting. This attack requires the victim to invite minions into
// polls and is thus rate-limited enough that it is less effective than brute
// force. It is also further limited by the decay of first-hand reputation
// toward the debt grade."
//
// The paper leaves the measurements to "an extended version"; we implement
// the adversary so the claim can be checked: bench/ext_grade_recovery shows
// its friction below the brute-force adversary's.
//
// Infiltration model: a configurable number of minion identities start
// inside the victims' reference lists with an even grade (long-term sleeper
// behaviour predating the attack). Minions then behave as model voters —
// valid votes, valid repairs, minion-only nominations — and spend the
// standing they earn on defecting polls.
#ifndef LOCKSS_ADVERSARY_GRADE_RECOVERY_HPP_
#define LOCKSS_ADVERSARY_GRADE_RECOVERY_HPP_

#include <cstdint>
#include <map>
#include <vector>

#include "crypto/mbf.hpp"
#include "net/network.hpp"
#include "peer/peer.hpp"
#include "protocol/effort_schedule.hpp"
#include "protocol/messages.hpp"
#include "sched/effort_meter.hpp"
#include "storage/au.hpp"

namespace lockss::adversary {

struct GradeRecoveryConfig {
  // Minion identity pool; each is seeded into every victim's reference list.
  uint32_t minion_count = 32;
  uint32_t minion_id_base = 1u << 23;
  // Valid votes a minion supplies to a victim before spending the earned
  // standing on a defecting poll.
  uint32_t votes_before_defection = 1;
};

class GradeRecoveryAdversary : public net::MessageHandler {
 public:
  GradeRecoveryAdversary(sim::Simulator& simulator, net::Network& network, sim::Rng rng,
                         GradeRecoveryConfig config, std::vector<peer::Peer*> victims,
                         std::vector<storage::AuId> aus, const protocol::Params& params,
                         const crypto::CostModel& costs);
  ~GradeRecoveryAdversary() override;

  // Seeds minions into the victims' reference lists (even grade) and starts
  // listening for invitations. Restart-safe: a policy-driven reactivation
  // resumes answering without re-seeding (the infiltrated standing keeps
  // whatever it decayed to).
  void start();

  // Phase-installable teardown: minions stop answering invitations and stop
  // spending earned standing (already-seeded grades keep decaying normally).
  void stop() { stopped_ = true; }

  void handle_message(net::MessagePtr message) override;

  const sched::EffortMeter& meter() const { return meter_; }
  uint64_t votes_supplied() const { return votes_supplied_; }
  uint64_t defecting_polls() const { return defecting_polls_; }

 private:
  // Voter-side state for an accepted invitation from a victim.
  struct VoterLane {
    net::NodeId minion;
    net::NodeId victim;
    storage::AuId au;
  };

  void on_poll(const protocol::PollMsg& poll);
  void on_poll_proof(const protocol::PollProofMsg& proof);
  void on_repair_request(const protocol::RepairRequestMsg& request);
  void maybe_defect(net::NodeId minion, net::NodeId victim, storage::AuId au);
  peer::Peer* victim_by_id(net::NodeId id);

  sim::Simulator& simulator_;
  net::Network& network_;
  sim::Rng rng_;
  GradeRecoveryConfig config_;
  std::vector<peer::Peer*> victims_;
  std::vector<storage::AuId> aus_;
  const protocol::Params& params_;
  crypto::CostModel costs_;
  protocol::EffortSchedule efforts_;
  crypto::MbfService mbf_;
  sched::EffortMeter meter_;

  std::map<protocol::PollId, VoterLane> voter_lanes_;
  // Votes supplied since the last defection, per (minion, victim, au).
  std::map<std::tuple<net::NodeId, net::NodeId, storage::AuId>, uint32_t> supplied_;
  uint32_t poll_sequence_ = 0;
  uint64_t votes_supplied_ = 0;
  uint64_t defecting_polls_ = 0;
  bool stopped_ = false;
  bool seeded_ = false;  // first start() seeds; restarts only resume
};

}  // namespace lockss::adversary

#endif  // LOCKSS_ADVERSARY_GRADE_RECOVERY_HPP_
