// The brute-force effortful adversary (§7.4, Table 1).
//
// "We consider an attack by a 'brute force' adversary who continuously sends
// enough poll invitations with valid introductory efforts to get past the
// random drops; ... the adversary launches attacks from in-debt addresses.
// We conservatively initialize all adversary addresses with a debt grade at
// all loyal peers. We also give the adversary an oracle that allows him to
// inspect all the loyal peers' schedules."
//
// Once admitted, the adversary defects at a configurable point:
//   INTRO     — never follows the affirmative PollAck with a PollProof;
//   REMAINING — sends a genuine PollProof, receives the vote, but never
//               evaluates it / sends a receipt;
//   NONE      — participates fully *as the strongest adversary would*: it
//               verifies the vote's effort proof (recovering the receipt
//               byproduct), requests a few repairs the way an ostensibly
//               legitimate poller does (§4.3), and returns a valid receipt.
//               It does NOT hash its AU copy to compare votes: total
//               information awareness (§3.1) already tells it that honest
//               victims' votes are valid, so the block-by-block evaluation a
//               loyal poller performs would be pure waste for it. This is
//               why full participation is the adversary's most
//               *cost-effective* strategy (Table 1): the defender-visible
//               behaviour is identical to a loyal poller's, but the attacker
//               skips the single most expensive evaluation-phase cost.
//
// The adversary has unlimited *parallel* compute (§3.1), so its effort is
// accounted (for the cost-ratio metric) but never scheduled: it can mint any
// number of proofs concurrently. Total information awareness lets it time
// retries to the victims' refractory expirations and skip victims whose
// schedules cannot accommodate a vote.
#ifndef LOCKSS_ADVERSARY_BRUTE_FORCE_HPP_
#define LOCKSS_ADVERSARY_BRUTE_FORCE_HPP_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "crypto/mbf.hpp"
#include "net/network.hpp"
#include "peer/peer.hpp"
#include "protocol/effort_schedule.hpp"
#include "protocol/messages.hpp"
#include "sched/effort_meter.hpp"
#include "storage/au.hpp"

namespace lockss::adversary {

enum class DefectionPoint {
  kIntro,      // desert after the Poll message
  kRemaining,  // desert after the PollProof message
  kNone,       // full participation (receipt included)
};

const char* defection_point_name(DefectionPoint point);

struct BruteForceConfig {
  DefectionPoint defection = DefectionPoint::kNone;
  // Size of the minion identity pool (all seeded in-debt at the victims).
  uint32_t minion_count = 256;
  uint32_t minion_id_base = 1u << 22;
  // Pause between an unadmitted try and the next one (the adversary detects
  // silent drops via total information awareness).
  sim::SimTime retry_gap = sim::SimTime::minutes(5);
  // Extra slack after a victim's refractory period expires before probing.
  sim::SimTime refractory_slack = sim::SimTime::minutes(1);
  // NONE only: repair blocks requested per completed poll, mimicking the
  // frivolous-repair behaviour of a loyal poller (§4.3) while charging the
  // victim a repair-service disk fetch per block.
  uint32_t repairs_per_poll = 2;
  // NONE only: pause between the repair requests and the receipt, so the
  // victim's session is still alive to serve them.
  sim::SimTime receipt_delay = sim::SimTime::minutes(10);
};

class BruteForceAdversary : public net::MessageHandler {
 public:
  BruteForceAdversary(sim::Simulator& simulator, net::Network& network, sim::Rng rng,
                      BruteForceConfig config, std::vector<peer::Peer*> victims,
                      std::vector<storage::AuId> aus, const protocol::Params& params,
                      const crypto::CostModel& costs);
  ~BruteForceAdversary() override;

  // Seeds the debt grades at the victims and begins the per-(victim, AU)
  // attack loops.
  void start();

  // Phase-installable teardown: cancels every attack lane's timer and makes
  // the minion identities fall silent (in-flight replies are dropped).
  void stop();

  // Minion message reception (PollAck / Vote routed to the shared handler).
  void handle_message(net::MessagePtr message) override;

  const sched::EffortMeter& meter() const { return meter_; }
  uint64_t invitations_sent() const { return invitations_sent_; }
  uint64_t admissions() const { return admissions_; }

 private:
  struct Front {  // one (victim, AU) attack lane
    peer::Peer* victim = nullptr;
    storage::AuId au;
    protocol::PollId live_poll = 0;  // poll id awaiting ack/vote, 0 if idle
    crypto::Digest64 nonce;
    sim::EventHandle timer;
  };

  void attempt(size_t front_index);
  void schedule_attempt(size_t front_index, sim::SimTime delay);
  void on_ack(size_t front_index, const protocol::PollAckMsg& ack);
  void on_vote(size_t front_index, const protocol::VoteMsg& vote);
  void send_receipt(size_t front_index, protocol::PollId poll_id, net::NodeId minion,
                    crypto::Digest64 receipt);
  net::NodeId next_minion();

  sim::Simulator& simulator_;
  net::Network& network_;
  sim::Rng rng_;
  BruteForceConfig config_;
  std::vector<peer::Peer*> victims_;
  std::vector<storage::AuId> aus_;
  const protocol::Params& params_;
  crypto::CostModel costs_;
  protocol::EffortSchedule efforts_;
  crypto::MbfService mbf_;
  sched::EffortMeter meter_;

  std::vector<Front> fronts_;
  std::map<protocol::PollId, size_t> front_by_poll_;
  uint32_t next_minion_ = 0;
  uint32_t poll_sequence_ = 0;
  uint64_t invitations_sent_ = 0;
  uint64_t admissions_ = 0;
  bool stopped_ = false;
};

}  // namespace lockss::adversary

#endif  // LOCKSS_ADVERSARY_BRUTE_FORCE_HPP_
