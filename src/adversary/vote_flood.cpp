#include "adversary/vote_flood.hpp"

namespace lockss::adversary {

VoteFloodAdversary::VoteFloodAdversary(sim::Simulator& simulator, net::Network& network,
                                       sim::Rng rng, VoteFloodConfig config,
                                       std::vector<peer::Peer*> victims,
                                       std::vector<storage::AuId> aus)
    : simulator_(simulator),
      network_(network),
      rng_(rng),
      config_(config),
      victims_(std::move(victims)),
      aus_(std::move(aus)) {
  for (uint32_t m = 0; m < config_.minion_count; ++m) {
    network_.register_node(net::NodeId{config_.minion_id_base + m}, this);
  }
}

VoteFloodAdversary::~VoteFloodAdversary() {
  for (sim::EventHandle& timer : timers_) {
    timer.cancel();
  }
  for (uint32_t m = 0; m < config_.minion_count; ++m) {
    network_.unregister_node(net::NodeId{config_.minion_id_base + m});
  }
}

void VoteFloodAdversary::start() {
  timers_.resize(victims_.size());
  for (size_t v = 0; v < victims_.size(); ++v) {
    timers_[v] = simulator_.schedule_in(
        rng_.uniform_time(sim::SimTime::zero(), config_.burst_gap), [this, v] { burst(v); });
  }
}

void VoteFloodAdversary::stop() {
  for (sim::EventHandle& timer : timers_) {
    timer.cancel();
  }
}

protocol::PollId VoteFloodAdversary::forge_poll_id(const peer::Peer& victim) {
  if (rng_.bernoulli(config_.replay_fraction)) {
    // Replay oracle: pick a poll the victim is genuinely running right now.
    // The vote still dies because its sender was never solicited for it —
    // the poller session tracks exactly whom it invited.
    const auto live = victim.live_poller_poll_ids();
    if (!live.empty()) {
      return live[rng_.index(live.size())];
    }
  }
  // Forge an id in the victim's own id space with a plausible sequence
  // number, or (rarely) pure noise.
  if (rng_.bernoulli(0.9)) {
    return protocol::make_poll_id(victim.id(), static_cast<uint32_t>(rng_.index(1u << 16)));
  }
  return rng_.next_u64();
}

void VoteFloodAdversary::burst(size_t victim_index) {
  peer::Peer* victim = victims_[victim_index];
  for (uint32_t i = 0; i < config_.votes_per_burst; ++i) {
    auto vote = std::make_unique<protocol::VoteMsg>();
    vote->from = net::NodeId{config_.minion_id_base + (next_minion_++ % config_.minion_count)};
    vote->to = victim->id();
    vote->poll_id = forge_poll_id(*victim);
    vote->au = aus_[rng_.index(aus_.size())];
    vote->block_hashes.assign(config_.blocks_per_vote, crypto::Digest64{rng_.next_u64()});
    vote->vote_effort = crypto::MbfProof::garbage(1.0);
    network_.send(std::move(vote));
    ++votes_sent_;
  }
  timers_[victim_index] = simulator_.schedule_in(
      config_.burst_gap +
          rng_.uniform_time(sim::SimTime::zero(), sim::SimTime::seconds(30)),
      [this, victim_index] { burst(victim_index); });
}

}  // namespace lockss::adversary
