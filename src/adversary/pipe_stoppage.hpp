// The effortless network-level attrition adversary (§7.2).
//
// "The 'pipe stoppage' adversary models packet flooding or more
// sophisticated attacks. This adversary suppresses all communication between
// some proportion of the total peer population (its coverage) and other
// LOCKSS peers." Implemented as a net::LinkFilter that vetoes every message
// to or from a victim while an attack phase is active; the AttackSchedule
// re-randomizes victims each iteration and inserts the 30-day recuperation.
//
// The attack is *effortless* (§3.1): nothing is charged to any effort meter.
#ifndef LOCKSS_ADVERSARY_PIPE_STOPPAGE_HPP_
#define LOCKSS_ADVERSARY_PIPE_STOPPAGE_HPP_

#include <memory>
#include <set>
#include <vector>

#include "adversary/attack_schedule.hpp"
#include "net/network.hpp"

namespace lockss::adversary {

class PipeStoppageAdversary : public net::LinkFilter {
 public:
  PipeStoppageAdversary(sim::Simulator& simulator, net::Network& network, sim::Rng rng,
                        AttackCadence cadence, std::vector<net::NodeId> population);
  ~PipeStoppageAdversary() override;

  // Launches the first stoppage immediately.
  void start();

  // Phase-installable teardown: halts the cadence and lifts any live
  // blackout (traffic flows again immediately).
  void stop();

  // Policy throttle (adversary/policy.hpp): scale attack windows by
  // `factor` in (0, 1] and stretch recuperation by 1/factor; applies from
  // the next on/off transition.
  void throttle_cadence(double factor);

  // net::LinkFilter: drop anything touching a current victim.
  bool allow(net::NodeId from, net::NodeId to) const override;

  bool attacking() const { return schedule_.attacking(); }
  size_t victim_count() const { return victims_.size(); }
  uint64_t iterations() const { return schedule_.iterations(); }

 private:
  net::Network& network_;
  std::set<net::NodeId> victims_;
  AttackSchedule schedule_;
};

}  // namespace lockss::adversary

#endif  // LOCKSS_ADVERSARY_PIPE_STOPPAGE_HPP_
