// Adaptive adversary policies (§9 "adversaries that react").
//
// Every attack module in this directory follows a fixed schedule; the
// paper's closing question is what happens when the adversary *observes*
// the defenders and adapts. This engine is the adversary-side mirror of
// dynamics::OperatorResponseEngine: deterministic trigger→action rules
// with one shared reaction latency, driving the installed
// adversary::AdversaryFleet.
//
// Triggers (what the adversary notices):
//   kAlarm         a loyal poll raised an attrition alarm — the defenders
//                  are onto something; observed through the scenario's
//                  poll-observer chain (the adversary eavesdrops on the
//                  same signal the operators act on).
//   kBackoff       the victims' rate limiters are refusing the fleet's
//                  invitations: over the last sensor interval the
//                  admission ratio fell below `backoff_threshold`.
//   kOutage        a churn/outage window opened — the offline fraction of
//                  the established population crossed `outage_threshold`
//                  ("attack during outages", the first shipped policy).
//   kRecovery      that window closed again (offline fraction fell back
//                  under the threshold).
//   kGradeCollapse the owned minions' standing has collapsed: cumulative
//                  admissions ran below `collapse_threshold` of cumulative
//                  invitations (grades sit at debt everywhere; continuing
//                  to spend effort is pointless).
//
// Actions (what it does about it, `reaction_latency` later):
//   kSwitchPhase   stop every other active phase and activate the target.
//   kRetarget      restart the target phase: victims resample, attack
//                  lanes rebuild.
//   kThrottle      scale the target phase down to stay under detection —
//                  cadence-driven phases shorten attack windows and
//                  lengthen recuperation by `factor`; continuous phases
//                  duty-cycle (stop now, resume after `throttle_pause`).
//   kGoDormant     stop the target phase and resume after an
//                  exponentially-sampled dormancy (mean `dormant_mean`) —
//                  irregular enough that defenders cannot calibrate to it.
//
// Determinism contract: the engine's RNG is a domain-separated hash of the
// scenario seed (kPolicyStreamTag) — never a root split — so installing a
// policy engine (even an inert one) shifts no other stream; policy-free
// configs reproduce the golden corpus byte for byte. Alarm observations
// arrive through the same serial-or-barrier plumbing as operator alarms
// (docs/sharding.md); sensor ticks and churn samples run on the global
// context with every shard quiesced. All scheduled reactions are ordinary
// simulator events, so enabled-policy runs are bit-identical across shard
// and worker counts too.
#ifndef LOCKSS_ADVERSARY_POLICY_HPP_
#define LOCKSS_ADVERSARY_POLICY_HPP_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/node_id.hpp"
#include "protocol/host.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace lockss::adversary {

class AdversaryFleet;

enum class PolicyTrigger : uint8_t {
  kAlarm = 0,
  kBackoff,
  kOutage,
  kRecovery,
  kGradeCollapse,
};
constexpr size_t kPolicyTriggerCount = 5;

enum class PolicyAction : uint8_t {
  kSwitchPhase = 0,
  kRetarget,
  kThrottle,
  kGoDormant,
};
constexpr size_t kPolicyActionCount = 4;

const char* policy_trigger_name(PolicyTrigger trigger);
const char* policy_action_name(PolicyAction action);
// Case-sensitive inverses ("alarm" | "backoff" | "outage" | "recovery" |
// "grade_collapse"; "switch_phase" | "retarget" | "throttle" |
// "go_dormant"); return false on unknown names.
bool parse_policy_trigger(const std::string& name, PolicyTrigger* out);
bool parse_policy_action(const std::string& name, PolicyAction* out);

// One trigger→action rule. `phase` indexes the installed pipeline: the
// phase to activate for kSwitchPhase, the phase acted on otherwise.
struct AdversaryPolicy {
  PolicyTrigger trigger = PolicyTrigger::kOutage;
  PolicyAction action = PolicyAction::kSwitchPhase;
  uint32_t phase = 0;
  // kThrottle: multiplicative cadence factor in (0, 1]. Other actions
  // ignore it.
  double factor = 0.5;
};

struct AdversaryPolicyConfig {
  // Adversaries watch their own telemetry, so they react faster than
  // operators detect — but not instantly (botnet command fan-out).
  sim::SimTime reaction_latency = sim::SimTime::hours(6);
  // Cadence of the backoff/grade-collapse sensor sweep over the fleet's
  // own counters. Only scheduled when some policy needs a sensed trigger.
  sim::SimTime sensor_interval = sim::SimTime::days(1);
  // Per-rule refractory: once a rule fires it stays quiet this long, so a
  // sustained outage does not re-trigger every churn transition.
  sim::SimTime cooldown = sim::SimTime::days(2);
  // Offline fraction of the established population at/above which an
  // outage window is considered open.
  double outage_threshold = 0.10;
  // kBackoff fires when interval admissions < threshold * interval
  // invitations (and at least one invitation went out).
  double backoff_threshold = 0.5;
  // kGradeCollapse fires when cumulative admissions < threshold *
  // cumulative invitations, after at least kCollapseMinInvitations.
  double collapse_threshold = 0.05;
  // kGoDormant dormancy mean (exponential, from the policy stream).
  sim::SimTime dormant_mean = sim::SimTime::days(7);
  // kThrottle pause for continuous (non-cadence) phases.
  sim::SimTime throttle_pause = sim::SimTime::days(3);
  std::vector<AdversaryPolicy> policies;

  bool enabled() const { return !policies.empty(); }
};

// Domain-separation tag for the policy RNG stream (seed ^ tag through
// splitmix64_mix — the net::FaultModel pattern).
inline constexpr uint64_t kPolicyStreamTag = 0xADAB71FEAD5E65EDull;

// Cumulative invitations before kGradeCollapse may fire (a fleet that has
// barely attacked has no evidence its grades collapsed).
inline constexpr uint64_t kCollapseMinInvitations = 100;

// Validates a policy table against an installed pipeline shape. Returns an
// empty string when valid, else a human-readable reason (mirrors
// validate_pipeline).
std::string validate_policies(const AdversaryPolicyConfig& config, size_t phase_count);

class PolicyEngine {
 public:
  // Consumes no root split: the RNG stream is derived from `scenario_seed`
  // under kPolicyStreamTag.
  PolicyEngine(sim::Simulator& simulator, AdversaryPolicyConfig config,
               uint64_t scenario_seed);

  // Points the engine at the fleet it drives; call after fleet
  // construction, before start(). `established_count` scales the
  // outage-fraction sensor. Aborts (assert) on a policy table that does
  // not validate against the fleet's phase count.
  void arm(AdversaryFleet* fleet, uint32_t established_count);

  // Schedules the sensor sweep when some policy needs it. Call after
  // arm(), alongside fleet start.
  void start();

  // The observer to install in PeerEnvironment::poll_observer; chains to
  // `next`, exactly like OperatorResponseEngine::observer.
  std::function<void(net::NodeId, const protocol::PollOutcome&)> observer(
      std::function<void(net::NodeId, const protocol::PollOutcome&)> next = nullptr);

  // Sharded-run entry point: an alarm raised on a shard at `observed_at`,
  // reported at the next barrier. The reaction still lands at
  // observed_at + reaction_latency (sharding_supported() guarantees the
  // latency covers the barrier lookahead).
  void on_alarm_observed(net::NodeId poller, sim::SimTime observed_at);

  // Churn-transition feed (the scenario calls this from the churn model's
  // transition hook, on the global context): the current offline count of
  // the established population after the transition applied.
  void on_churn_sample(sim::SimTime at, uint32_t offline_count);

  // Trace hooks (docs/observability.md): fired per rule trigger and per
  // applied action, on the global context.
  void set_trigger_hook(std::function<void(PolicyTrigger, uint32_t)> hook) {
    trigger_hook_ = std::move(hook);
  }
  void set_action_hook(std::function<void(PolicyAction, uint32_t)> hook) {
    action_hook_ = std::move(hook);
  }

  // --- Pure reads ----------------------------------------------------------
  uint64_t triggers_seen() const { return triggers_seen_; }
  // Applied actions, indexed by PolicyAction.
  const std::array<uint64_t, kPolicyActionCount>& actions_applied() const {
    return actions_applied_;
  }
  uint64_t actions_total() const;

 private:
  void on_trigger_at(PolicyTrigger trigger, sim::SimTime observed_at);
  void apply(size_t policy_index);
  void sensor_tick();
  bool wants(PolicyTrigger trigger) const;

  sim::Simulator& simulator_;
  AdversaryPolicyConfig config_;
  sim::Rng rng_;
  AdversaryFleet* fleet_ = nullptr;
  uint32_t established_ = 0;
  bool outage_live_ = false;
  uint64_t sensed_invitations_ = 0;  // counter snapshot at the last sweep
  uint64_t sensed_admissions_ = 0;
  std::vector<sim::SimTime> next_allowed_;  // per rule, cooldown gate
  std::function<void(PolicyTrigger, uint32_t)> trigger_hook_;
  std::function<void(PolicyAction, uint32_t)> action_hook_;
  uint64_t triggers_seen_ = 0;
  std::array<uint64_t, kPolicyActionCount> actions_applied_{};
};

}  // namespace lockss::adversary

#endif  // LOCKSS_ADVERSARY_POLICY_HPP_
