#include "crypto/mbf.hpp"

// MbfService is header-only today; this translation unit anchors the library.
