// Cost model for "a low-cost PC" circa the paper's deployment (§6.3: "We set
// all costs of primitive operations (hashing, encryption, L1 cache and RAM
// accesses, etc.) to match the capabilities of such a low-cost PC").
//
// Effort is measured in *effort-seconds*: one unit equals one second of the
// reference machine's fully-utilized pipeline. The scheduler (`sched/`) books
// effort-seconds as wall-clock seconds on the simulated CPU, and the metrics
// module sums them for the friction and cost-ratio metrics.
#ifndef LOCKSS_CRYPTO_COST_MODEL_HPP_
#define LOCKSS_CRYPTO_COST_MODEL_HPP_

#include <cstdint>

#include "sim/time.hpp"

namespace lockss::crypto {

struct CostModel {
  // Disk-read + SHA-1 pipeline throughput for hashing AU content. 50 MB/s is
  // representative of a 2005 commodity PC with a single IDE disk.
  double hash_bytes_per_second = 50.0 * 1024 * 1024;

  // Memory-bound-function asymmetry: verifying a proof costs 1/gamma of
  // generating it (Dwork et al. report one to two orders of magnitude; we use
  // a conservative 20x).
  double mbf_verify_asymmetry = 20.0;

  // CPU cost of the anonymous Diffie-Hellman TLS handshake that fronts every
  // poller/voter exchange (§4.1), per endpoint.
  double session_handshake_seconds = 0.05;

  // Fixed per-message processing overhead (parse, dispatch, schedule check).
  double message_overhead_seconds = 0.001;

  // --- Derived helpers ---------------------------------------------------

  sim::SimTime hash_time(uint64_t bytes) const {
    return sim::SimTime::seconds(static_cast<double>(bytes) / hash_bytes_per_second);
  }

  // Generating `effort_seconds` of provable MBF effort takes exactly that
  // long on the reference machine.
  sim::SimTime mbf_generate_time(double effort_seconds) const {
    return sim::SimTime::seconds(effort_seconds);
  }

  // Verifying is cheaper by the asymmetry factor.
  sim::SimTime mbf_verify_time(double effort_seconds) const {
    return sim::SimTime::seconds(effort_seconds / mbf_verify_asymmetry);
  }

  double mbf_verify_effort(double effort_seconds) const {
    return effort_seconds / mbf_verify_asymmetry;
  }

  sim::SimTime handshake_time() const { return sim::SimTime::seconds(session_handshake_seconds); }
  sim::SimTime message_overhead_time() const {
    return sim::SimTime::seconds(message_overhead_seconds);
  }
};

}  // namespace lockss::crypto

#endif  // LOCKSS_CRYPTO_COST_MODEL_HPP_
