#include "crypto/digest.hpp"

#include <cstdio>

namespace lockss::crypto {

std::string Digest64::to_hex() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace lockss::crypto
