// Simulated cryptographic digests.
//
// The production LOCKSS daemon hashes AU content with SHA-1. For the
// simulation the only properties that matter are (a) equal inputs hash equal,
// (b) different inputs collide with negligible probability, and (c) hashing
// costs simulated time (charged via crypto::CostModel, not here). A 64-bit
// mixed value provides (a) and (b) at simulation scale; the *time* cost of
// "real" SHA-1 over 0.5 GB is modelled separately.
#ifndef LOCKSS_CRYPTO_DIGEST_HPP_
#define LOCKSS_CRYPTO_DIGEST_HPP_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace lockss::crypto {

struct Digest64 {
  uint64_t value = 0;

  friend constexpr auto operator<=>(const Digest64&, const Digest64&) = default;
  std::string to_hex() const;
};

// Strong 64-bit mixer (splitmix64 finalizer); the basis of all simulated
// hashing in the repository.
constexpr uint64_t mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Combines a running digest with one more 64-bit word.
constexpr Digest64 digest_combine(Digest64 acc, uint64_t word) {
  return Digest64{mix64(acc.value * 0x9E3779B97F4A7C15ull + word + 0xD1B54A32D192ED03ull)};
}

// Digest of a (nonce, word) pair; used where the protocol hashes a nonce
// followed by content.
constexpr Digest64 keyed_digest(Digest64 nonce, uint64_t word) {
  return digest_combine(digest_combine(Digest64{0x243F6A8885A308D3ull}, nonce.value), word);
}

// Running block-hash chain: the voter hashes the poller-supplied nonce, then
// the AU block by block, emitting the running digest at each block boundary
// (§4.1). `prev` is the running digest before this block (the nonce digest
// for block 0).
constexpr Digest64 running_block_hash(Digest64 prev, uint64_t block_content) {
  return digest_combine(prev, block_content);
}

// The digest a vote chain starts from for a given nonce.
constexpr Digest64 vote_chain_seed(Digest64 nonce) {
  return keyed_digest(nonce, 0x5648F9A3C1E0D2B7ull);
}

}  // namespace lockss::crypto

// Hash support so digests can key unordered containers.
template <>
struct std::hash<lockss::crypto::Digest64> {
  size_t operator()(const lockss::crypto::Digest64& d) const noexcept {
    return static_cast<size_t>(d.value);
  }
};

#endif  // LOCKSS_CRYPTO_DIGEST_HPP_
