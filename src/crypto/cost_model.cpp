#include "crypto/cost_model.hpp"

// CostModel is header-only today; this translation unit anchors the library
// and reserves a home for future non-inline cost tables.
