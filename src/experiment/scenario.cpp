#include "experiment/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <memory>

#include "adversary/admission_flood.hpp"
#include "adversary/grade_recovery.hpp"
#include "adversary/pipe_stoppage.hpp"
#include "adversary/vote_flood.hpp"
#include "dynamics/churn.hpp"
#include "dynamics/operator_response.hpp"
#include "net/fault_injection.hpp"
#include "net/network.hpp"
#include "net/node_slot_registry.hpp"
#include "net/shard_bus.hpp"
#include "peer/peer.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulator.hpp"

namespace lockss::experiment {

namespace {

std::atomic<uint32_t> g_default_shards_override{0};

// An alarm seen on a shard, reported to the operator engine at the next
// barrier (docs/sharding.md).
struct AlarmObservation {
  sim::SimTime at;
  net::NodeId poller;
};

// Everything the sharded execution path adds on top of the serial scenario:
// the engine (one Simulator per shard + one global), the network delivery
// bus, per-shard metric logs fronted by log-mode collectors, and per-shard
// alarm buffers. Null on the serial path.
struct ShardRuntime {
  sim::ShardedEngine engine;
  net::EngineShardBus bus;
  std::vector<metrics::MetricLog> logs;
  std::vector<metrics::MetricsCollector> shard_collectors;
  std::vector<std::vector<AlarmObservation>> alarms;

  ShardRuntime(uint32_t shards, uint32_t owned_ids, sim::SimTime lookahead)
      : engine(sim::ShardPlan::block_partition(shards, owned_ids), lookahead),
        bus(engine),
        logs(shards),
        shard_collectors(shards),
        alarms(shards) {}
};

}  // namespace

uint32_t default_shards() {
  const uint32_t override = g_default_shards_override.load(std::memory_order_relaxed);
  if (override > 0) {
    return override;
  }
  if (const char* env = std::getenv("LOCKSS_SHARDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) {
      return static_cast<uint32_t>(v);
    }
  }
  return 1;
}

void set_default_shards(uint32_t shards) {
  g_default_shards_override.store(shards, std::memory_order_relaxed);
}

bool sharding_supported(const ScenarioConfig& config) {
  // An external poll observer expects the serial calling convention (called
  // at the poll-conclusion instant, in global order); sharded runs would
  // invoke it from worker threads.
  if (config.poll_observer) {
    return false;
  }
  // The sharded engine's lookahead is the network's minimum latency — a
  // strict lower bound on every cross-shard delay. A zero (or negative)
  // minimum leaves no lookahead window, so those configs run serial.
  if (config.network.min_latency <= sim::SimTime::zero()) {
    return false;
  }
  // Operator alarms are reported at shard barriers, so an intervention can
  // only land at its serial instant if the detection latency reaches past
  // the barrier lookahead (real latencies are hours-to-days; the lookahead
  // is the network's minimum latency, one millisecond by default).
  if (config.operators.enabled() &&
      config.operators.detection_latency < config.network.min_latency) {
    return false;
  }
  // The adversary policy engine observes alarms through the same barrier
  // plumbing; its reaction latency must cover the lookahead for the same
  // reason.
  if (config.adversary_policy.enabled() &&
      config.adversary_policy.reaction_latency < config.network.min_latency) {
    return false;
  }
  return true;
}

adversary::AdversaryPipeline canonical_pipeline(const AdversarySpec& spec) {
  adversary::AdversaryPipeline pipeline;
  const auto phase = [&spec](adversary::PhaseKind kind) {
    adversary::AdversaryPhase p;
    p.kind = kind;
    p.cadence = spec.cadence;
    p.defection = spec.defection;
    return p;
  };
  switch (spec.kind) {
    case AdversarySpec::Kind::kNone:
      break;
    case AdversarySpec::Kind::kPipeStoppage:
      pipeline.push_back(phase(adversary::PhaseKind::kPipeStoppage));
      break;
    case AdversarySpec::Kind::kAdmissionFlood:
      pipeline.push_back(phase(adversary::PhaseKind::kAdmissionFlood));
      break;
    case AdversarySpec::Kind::kBruteForce:
      pipeline.push_back(phase(adversary::PhaseKind::kBruteForce));
      break;
    case AdversarySpec::Kind::kGradeRecovery:
      pipeline.push_back(phase(adversary::PhaseKind::kGradeRecovery));
      break;
    case AdversarySpec::Kind::kVoteFlood:
      pipeline.push_back(phase(adversary::PhaseKind::kVoteFlood));
      break;
    case AdversarySpec::Kind::kCombined:
      // §9 combined strategy: a network-level blackout over part of the
      // population while the brute-force adversary drains the remainder at
      // the application level. The blackout also severs the brute-force
      // lanes into covered victims, so the effortful attack concentrates on
      // whoever can still communicate. Pipe stoppage installs first — the
      // ordering the old hard-coded switch used, now part of the canonical
      // pipeline's bit-identity contract.
      pipeline.push_back(phase(adversary::PhaseKind::kPipeStoppage));
      pipeline.push_back(phase(adversary::PhaseKind::kBruteForce));
      break;
  }
  return pipeline;
}

adversary::AdversaryPipeline effective_pipeline(const AdversarySpec& spec) {
  return spec.pipeline.empty() ? canonical_pipeline(spec) : spec.pipeline;
}

namespace {

// The one scenario body, serial and sharded: `shards` <= 1 runs the
// pre-sharding serial path untouched (rt stays null and every wiring point
// below collapses to the old code); `shards` > 1 builds a ShardRuntime and
// reroutes peers' simulators, metrics, network deliveries, and operator
// alarms through it. Construction order — and with it the root-RNG split
// sequence — is identical either way, which is what makes the sharded
// result bit-identical to the serial one (tests/sharding_identity_test).
RunResult run_scenario_impl(const ScenarioConfig& config, uint32_t shards) {
  // Wall-clock self-profiling (docs/observability.md). Reads of the host
  // clock never touch simulation state, so profiling cannot perturb the
  // deterministic result; the numbers are reporting only.
  const obs::Stopwatch total_watch;
  obs::Stopwatch phase_watch;
  obs::RunProfile profile;

  sim::Simulator serial_sim;
  sim::Rng root(config.seed);
  // Deployment dynamics draw first: one root split per enabled stream
  // (churn, operators), taken before anything else so the arrival count is
  // known when the identity registry freezes below. Disabled streams take
  // no split at all, which keeps every static-deployment RNG stream — and
  // therefore the whole golden corpus — bit-identical to the pre-dynamics
  // engine.
  const bool churn_enabled = config.churn.enabled();
  const bool operators_enabled = config.operators.enabled();
  // The adversary policy engine exists only when there is both a policy
  // table and a pipeline to drive; it consumes no root split either way
  // (its RNG stream is a domain-separated hash of the seed).
  const bool policy_enabled =
      config.adversary_policy.enabled() && !effective_pipeline(config.adversary).empty();
  sim::Rng churn_rng(0);
  sim::Rng operators_rng(0);
  dynamics::ChurnSchedule churn_schedule;
  if (churn_enabled) {
    churn_rng = root.split();
    churn_schedule =
        dynamics::build_churn_schedule(config.churn, config.peer_count, config.duration,
                                       churn_rng);
  }
  if (operators_enabled) {
    operators_rng = root.split();
  }
  const uint32_t arrival_count = churn_schedule.arrival_count;

  // Sharded runtime (null = serial). The owned ids — established peers,
  // newcomers, and the whole churn arrival schedule — partition into
  // contiguous NodeId blocks, one per shard; every other identity
  // (adversary minions, spoofed floods) lives in the engine's global
  // context. The lookahead is the network's minimum latency: a strict
  // lower bound on every cross-shard interaction delay.
  const uint32_t owned_ids = config.peer_count + config.newcomer_count + arrival_count;
  std::unique_ptr<ShardRuntime> rt;
  if (shards > 1 && owned_ids > 0) {
    rt = std::make_unique<ShardRuntime>(shards, owned_ids, config.network.min_latency);
  }
  // Global actors — the adversary fleet, churn, operators, trace ticks —
  // and the whole serial path drive this simulator.
  sim::Simulator& simulator = rt != nullptr ? rt->engine.global_sim() : serial_sim;

  net::Network network(simulator, root.split(), config.network);
  if (rt != nullptr) {
    network.set_shard_bus(&rt->bus);
  }
  // Unreliable-link fault layer. Its RNG is a domain-separated hash of the
  // scenario seed — NOT a root split — so installing the model (even an
  // inert one) shifts no other stream: a zero-fault run is byte-identical
  // to ideal, and the bench overhead row asserts an inert-enabled run
  // produces identical metrics too (docs/faults.md).
  constexpr uint64_t kFaultStreamTag = 0xFA017A6E5EEDC0DEull;
  std::unique_ptr<net::FaultModel> fault_model;
  if (config.faults.enabled()) {
    fault_model = std::make_unique<net::FaultModel>(
        config.faults, sim::Rng(sim::splitmix64_mix(config.seed ^ kFaultStreamTag)), owned_ids);
    network.set_fault_model(fault_model.get());
  }
  // Protocol event tracing (docs/observability.md). The log takes no RNG
  // split and sampling is a pure hash, so enabling it shifts no stream; a
  // disabled config constructs nothing and every hook site stays a null
  // check. Sharded runs get one sink per shard plus the global sink (last),
  // drained at every barrier; serial runs record into a single sink. The
  // dense owned-id range (peers + newcomers + arrivals) bounds the
  // peer-domain ids for fault-event tagging.
  std::unique_ptr<obs::EventLog> event_log;
  obs::EventSink* global_events = nullptr;
  if (config.obs_trace.enabled) {
    const size_t sink_count = rt != nullptr ? static_cast<size_t>(shards) + 1 : 1;
    event_log = std::make_unique<obs::EventLog>(config.obs_trace, sink_count, owned_ids);
    global_events = event_log->global_sink();
    if (rt != nullptr) {
      rt->bus.set_event_log(event_log.get());
      rt->engine.add_barrier_hook([log = event_log.get()] { log->drain(); });
    } else {
      network.set_event_sink(event_log->sink(0));
    }
  }
  if (config.obs_profile && rt != nullptr) {
    rt->engine.set_profile(&profile.engine);
  }
  metrics::MetricsCollector collector;
  if (rt != nullptr) {
    for (uint32_t s = 0; s < shards; ++s) {
      rt->shard_collectors[s].set_log_mode(&collector, &rt->logs[s],
                                           &rt->engine.shard_sim(s));
    }
    // Barrier hook: replay the per-shard metric logs into the master in
    // (time, shard) order — the serial accumulation order, because shard
    // order is NodeId-block order (docs/sharding.md). Within a shard the
    // log is already time-sorted (events execute in time order).
    rt->engine.add_barrier_hook([rtp = rt.get(), collector_ptr = &collector] {
      auto& logs = rtp->logs;
      std::vector<size_t> idx(logs.size(), 0);
      for (;;) {
        size_t best = logs.size();
        for (size_t s = 0; s < logs.size(); ++s) {
          if (idx[s] >= logs[s].size()) {
            continue;
          }
          if (best == logs.size() || logs[s][idx[s]].at < logs[best][idx[best]].at) {
            best = s;
          }
        }
        if (best == logs.size()) {
          break;
        }
        collector_ptr->apply(logs[best][idx[best]++]);
      }
      for (auto& log : logs) {
        log.clear();
      }
    });
  }
  // Deployment-wide identity registry behind the dense per-AU substrates.
  // Registration happens entirely at setup, in ascending NodeId order
  // (loyal peers, newcomers, churn arrivals — the *whole* arrival schedule,
  // even peers that only come up late in the run — then adversary minions
  // at their high id bases — the registry's ordering contract, which makes
  // slot order equal NodeId order and keeps every substrate walk
  // seed-identical).
  net::NodeSlotRegistry registry;
  for (uint32_t p = 0; p < config.peer_count + config.newcomer_count + arrival_count; ++p) {
    registry.register_node(net::NodeId{p});
  }

  // Operator-response engine (constructed before the peers so its alarm
  // observer can ride the environment's poll-observer chain).
  std::unique_ptr<dynamics::OperatorResponseEngine> operators_engine;
  if (operators_enabled) {
    operators_engine = std::make_unique<dynamics::OperatorResponseEngine>(
        simulator, config.operators, operators_rng.split());
  }
  // Adaptive-adversary policy engine (adversary/policy.hpp): constructed
  // before the peers so its alarm observer can ride the poll-observer
  // chain, armed with the fleet after the fleet exists below. No root
  // split — the policy stream is a domain-separated hash of the seed.
  std::unique_ptr<adversary::PolicyEngine> policy_engine;
  if (policy_enabled) {
    policy_engine = std::make_unique<adversary::PolicyEngine>(
        simulator, config.adversary_policy, config.seed);
  }
  if (rt != nullptr && (operators_engine != nullptr || policy_engine != nullptr)) {
    // Barrier hook: report the alarms each shard buffered during the last
    // window, merged by (time, shard) — the serial trigger order — to the
    // operator engine and the adversary policy engine alike. The
    // reactions still land at their serial instants because triggers
    // draw no randomness and schedule at observed_at + latency
    // (>= the barrier time whenever the latency covers the lookahead,
    // which sharding_supported() guarantees for both engines).
    rt->engine.add_barrier_hook([rtp = rt.get(), eng = operators_engine.get(),
                                 pol = policy_engine.get()] {
      auto& bufs = rtp->alarms;
      std::vector<size_t> idx(bufs.size(), 0);
      for (;;) {
        size_t best = bufs.size();
        for (size_t s = 0; s < bufs.size(); ++s) {
          if (idx[s] >= bufs[s].size()) {
            continue;
          }
          if (best == bufs.size() || bufs[s][idx[s]].at < bufs[best][idx[best]].at) {
            best = s;
          }
        }
        if (best == bufs.size()) {
          break;
        }
        const AlarmObservation& obs = bufs[best][idx[best]++];
        if (eng != nullptr) {
          eng->on_alarm_observed(obs.poller, obs.at);
        }
        if (pol != nullptr) {
          pol->on_alarm_observed(obs.poller, obs.at);
        }
      }
      for (auto& buf : bufs) {
        buf.clear();
      }
    });
  }

  peer::PeerEnvironment env;
  env.simulator = &simulator;
  env.network = &network;
  env.metrics = &collector;
  env.nodes = &registry;
  env.params = config.params;
  env.costs = config.costs;
  env.damage = config.damage;
  env.enable_damage = config.enable_damage;
  env.retain_schedule_history = config.collect_schedule_history;
  // Serial runs share the one sink; sharded runs assign per-shard sinks in
  // env_for below.
  env.events = (event_log != nullptr && rt == nullptr) ? event_log->sink(0) : nullptr;
  // Sharded runs report alarms through the per-shard barrier buffers
  // instead of the inline observer chain (config.poll_observer is empty
  // there — sharding_supported() falls back to serial otherwise). Serial
  // runs chain the alarm consumers: the policy engine wraps the operator
  // engine's observer, so both see each alarm once, in poll order.
  env.poll_observer = config.poll_observer;
  if (rt == nullptr) {
    if (operators_engine != nullptr) {
      env.poll_observer = operators_engine->observer(env.poll_observer);
    }
    if (policy_engine != nullptr) {
      env.poll_observer = policy_engine->observer(env.poll_observer);
    }
  }

  // Per-peer environment: a sharded run points each peer at its shard's
  // simulator and log-mode collector and buffers its alarms; a serial run
  // hands `env` back untouched.
  const auto env_for = [&](uint32_t raw_id) {
    peer::PeerEnvironment e = env;
    if (rt != nullptr) {
      const uint32_t shard = rt->engine.context_of(raw_id);
      e.simulator = &rt->engine.shard_sim(shard);
      e.metrics = &rt->shard_collectors[shard];
      if (event_log != nullptr) {
        e.events = event_log->sink(shard);
      }
      if (operators_engine != nullptr || policy_engine != nullptr) {
        std::vector<AlarmObservation>* alarms = &rt->alarms[shard];
        sim::Simulator* clock = e.simulator;
        e.poll_observer = [alarms, clock](net::NodeId poller,
                                          const protocol::PollOutcome& outcome) {
          if (outcome.kind == protocol::PollOutcomeKind::kAlarm) {
            alarms->push_back(AlarmObservation{clock->now(), poller});
          }
        };
      }
    }
    return e;
  };

  // --- Loyal population ------------------------------------------------------
  std::vector<std::unique_ptr<peer::Peer>> peers;
  std::vector<net::NodeId> ids;
  peers.reserve(config.peer_count);
  for (uint32_t p = 0; p < config.peer_count; ++p) {
    const net::NodeId id{p};
    ids.push_back(id);
    peers.push_back(std::make_unique<peer::Peer>(env_for(p), id, root.split()));
  }
  std::vector<storage::AuId> aus;
  for (uint32_t a = 0; a < config.au_count; ++a) {
    aus.push_back(storage::AuId{a});
  }
  // Fix the slot registry's row stride up front by registering every AU in
  // id order; the peers (and newcomers) register themselves in join_au
  // below, so after setup nothing on the poll path registers lazily.
  for (storage::AuId au : aus) {
    collector.register_au(au);
  }
  // Collection membership. At au_coverage = 1.0 every peer holds every AU
  // (the paper's setting); below it, each peer joins each AU independently,
  // with a floor of 2x quorum holders per AU so polls remain feasible.
  sim::Rng membership = root.split();
  std::vector<std::vector<net::NodeId>> holders(config.au_count);
  uint64_t total_replicas = 0;
  for (uint32_t a = 0; a < config.au_count; ++a) {
    for (uint32_t p = 0; p < config.peer_count; ++p) {
      if (config.au_coverage >= 1.0 || membership.bernoulli(config.au_coverage)) {
        holders[a].push_back(ids[p]);
      }
    }
    const uint32_t floor = std::min(config.peer_count, 2 * config.params.quorum);
    if (holders[a].size() < floor) {
      // Top up deterministically with the lowest-id non-holders.
      for (uint32_t p = 0; p < config.peer_count && holders[a].size() < floor; ++p) {
        if (std::find(holders[a].begin(), holders[a].end(), ids[p]) == holders[a].end()) {
          holders[a].push_back(ids[p]);
        }
      }
    }
    for (net::NodeId id : holders[a]) {
      peers[id.value]->join_au(aus[a]);
    }
    total_replicas += holders[a].size();
  }
  collector.set_total_replicas(total_replicas);

  // Friends lists (operator-maintained, §4.1): a few random fellow peers.
  sim::Rng bootstrap = root.split();
  for (uint32_t p = 0; p < config.peer_count; ++p) {
    std::vector<net::NodeId> others;
    for (net::NodeId id : ids) {
      if (id != ids[p]) {
        others.push_back(id);
      }
    }
    peers[p]->set_friends(bootstrap.sample(others, config.params.friends_list_size));
  }

  // Initial reference lists with mutual familiarity: the deployed beta
  // network bootstraps peers from the publisher and prior contact, so both
  // directions start at an `even` grade. Reference lists draw only from the
  // AU's actual holders — a peer cannot vote on an AU it does not preserve.
  for (uint32_t a = 0; a < config.au_count; ++a) {
    for (net::NodeId holder : holders[a]) {
      std::vector<net::NodeId> others;
      for (net::NodeId id : holders[a]) {
        if (id != holder) {
          others.push_back(id);
        }
      }
      const auto seeds = bootstrap.sample(others, config.params.reference_list_target);
      peers[holder.value]->seed_reference_list(aus[a], seeds);
      for (net::NodeId other : seeds) {
        peers[holder.value]->seed_grade(aus[a], other, reputation::Grade::kEven);
        peers[other.value]->seed_grade(aus[a], holder, reputation::Grade::kEven);
      }
    }
  }

  // Newcomers (§9 extension): constructed now so the network knows their
  // addresses, but started only at their join time. They hold correct
  // publisher replicas of every AU they join and know a bootstrap sample of
  // established holders; no established peer knows them.
  std::vector<std::unique_ptr<peer::Peer>> newcomers;
  // Historically named `churn` (pre-dating the dynamics subsystem); renamed
  // so the newcomer-bootstrap stream can never be confused with the
  // dynamics `churn_rng` above — the draw sequence is unchanged.
  sim::Rng newcomer_rng = root.split();
  for (uint32_t n = 0; n < config.newcomer_count; ++n) {
    const net::NodeId id{config.peer_count + n};
    newcomers.push_back(std::make_unique<peer::Peer>(env_for(id.value), id, root.split()));
    peer::Peer* newcomer = newcomers.back().get();
    for (uint32_t a = 0; a < config.au_count; ++a) {
      newcomer->join_au(aus[a]);
      const auto seeds = newcomer_rng.sample(holders[a], config.params.reference_list_target);
      newcomer->seed_reference_list(aus[a], seeds);
    }
    newcomer->set_friends(newcomer_rng.sample(ids, config.params.friends_list_size));
    const sim::SimTime join_at =
        newcomer_rng.uniform_time(sim::SimTime::zero(), config.newcomer_join_window);
    // The join event mutates only the newcomer, so it runs on its shard.
    sim::Simulator& join_sim = rt != nullptr ? rt->engine.sim_of(id.value) : simulator;
    join_sim.schedule_at(join_at, [newcomer] { newcomer->start(); });
  }
  // Churn arrivals (deployment dynamics): constructed and seeded now — like
  // newcomers, the network must know their addresses and the registry their
  // ids before any traffic flows — but started only when their schedule
  // event fires (ChurnModel::apply). Their bootstrap draws come from the
  // churn stream, never the protocol streams.
  std::vector<std::unique_ptr<peer::Peer>> arrival_peers;
  for (uint32_t a = 0; a < arrival_count; ++a) {
    const net::NodeId id{config.peer_count + config.newcomer_count + a};
    arrival_peers.push_back(
        std::make_unique<peer::Peer>(env_for(id.value), id, churn_rng.split()));
    peer::Peer* arrival = arrival_peers.back().get();
    for (uint32_t au = 0; au < config.au_count; ++au) {
      arrival->join_au(aus[au]);
      const auto seeds = churn_rng.sample(holders[au], config.params.reference_list_target);
      arrival->seed_reference_list(aus[au], seeds);
    }
    arrival->set_friends(churn_rng.sample(ids, config.params.friends_list_size));
  }
  if (config.newcomer_count > 0 || arrival_count > 0) {
    collector.set_total_replicas(
        total_replicas +
        static_cast<uint64_t>(config.newcomer_count + arrival_count) * config.au_count);
  }

  // Background load from previous layers (§6.3 layering).
  if (config.background != nullptr) {
    assert(config.background->size() == peers.size());
    for (size_t p = 0; p < peers.size(); ++p) {
      for (const sched::Reservation& r : (*config.background)[p]) {
        peers[p]->schedule().inject_busy(r.start, r.end);
      }
    }
  }

  for (auto& p : peers) {
    p->start();
  }

  // --- Adversary --------------------------------------------------------------
  // Every spec — legacy single enum or explicit multi-phase pipeline — is
  // installed through the AdversaryFleet. Minions with fixed identity sets
  // register like everyone else (their per-victim reputation entries then
  // live in the dense slot arrays); the admission-flood adversary spoofs
  // unbounded fresh ids and stays on the substrates' overflow path by
  // design. The fleet consumes one root split per phase in phase order, so
  // canonical single-kind pipelines reproduce the pre-pipeline RNG stream
  // exactly (golden corpus pins this).
  std::vector<peer::Peer*> victim_ptrs;
  for (auto& p : peers) {
    victim_ptrs.push_back(p.get());
  }
  const adversary::AdversaryPipeline pipeline = effective_pipeline(config.adversary);
  adversary::FleetEnvironment fleet_env;
  fleet_env.simulator = &simulator;
  fleet_env.network = &network;
  fleet_env.registry = &registry;
  fleet_env.reserved_low_ids = config.peer_count + config.newcomer_count + arrival_count;
  fleet_env.loyal_ids = ids;
  fleet_env.victims = victim_ptrs;
  fleet_env.aus = aus;
  fleet_env.params = &config.params;
  fleet_env.costs = &config.costs;
  adversary::AdversaryFleet fleet(fleet_env, pipeline, root);
  fleet.start();
  if (policy_engine != nullptr) {
    policy_engine->arm(&fleet, config.peer_count);
    policy_engine->start();
  }

  // --- Deployment dynamics ----------------------------------------------------
  // The churn model replays its precomputed schedule off the event queue,
  // flipping established peers through depart()/recover() and the offline
  // link filter, and starting arrivals. The operator engine attends every
  // loyal peer (established, newcomer, arrival) and samples friend
  // refreshes from the established roster.
  std::unique_ptr<net::OfflineSetFilter> offline_filter;
  std::unique_ptr<dynamics::ChurnModel> churn_model;
  if (operators_engine != nullptr) {
    for (auto& p : peers) {
      operators_engine->attend(p.get());
    }
    for (auto& p : newcomers) {
      operators_engine->attend(p.get());
    }
    for (auto& p : arrival_peers) {
      operators_engine->attend(p.get());
    }
    operators_engine->set_roster(ids);
  }
  if (churn_enabled) {
    offline_filter = std::make_unique<net::OfflineSetFilter>();
    network.add_filter(offline_filter.get());
    std::vector<peer::Peer*> established_ptrs = victim_ptrs;
    std::vector<peer::Peer*> arrival_ptrs;
    for (auto& p : arrival_peers) {
      arrival_ptrs.push_back(p.get());
    }
    churn_model = std::make_unique<dynamics::ChurnModel>(
        simulator, std::move(churn_schedule), std::move(established_ptrs),
        std::move(arrival_ptrs), offline_filter.get());
    if (operators_engine != nullptr) {
      churn_model->set_recovery_hook(
          [engine = operators_engine.get()](peer::Peer& p) { engine->on_peer_recovered(p); });
    }
    if (global_events != nullptr || policy_engine != nullptr) {
      // Churn transitions execute on the global context (shards quiesced),
      // so they record into the global sink with the domain-0 tag — the
      // canonical order then sorts them ahead of peer streams at exact
      // ties, matching the engine's global-first execution rule. Leave/
      // crash/recover carry established indices, which equal NodeIds;
      // arrival ordinals offset past the newcomer block. The adversary
      // policy engine samples the established offline count off the same
      // hook (an outage-watching adversary sees every transition), which
      // likewise runs with shards quiesced.
      const uint32_t arrival_base = config.peer_count + config.newcomer_count;
      churn_model->set_transition_hook([global_events, arrival_base,
                                        pol = policy_engine.get(),
                                        cm = churn_model.get()](const dynamics::ChurnEvent& ev) {
        if (global_events != nullptr) {
          obs::Event e;
          e.time_ns = ev.at.ns();
          switch (ev.kind) {
            case dynamics::ChurnEventKind::kArrival:
              e.kind = obs::EventKind::kChurnArrival;
              break;
            case dynamics::ChurnEventKind::kLeave:
              e.kind = obs::EventKind::kChurnLeave;
              break;
            case dynamics::ChurnEventKind::kCrash:
              e.kind = obs::EventKind::kChurnCrash;
              break;
            case dynamics::ChurnEventKind::kRecover:
              e.kind = obs::EventKind::kChurnRecover;
              e.arg = ev.state_loss ? 1 : 0;
              break;
          }
          e.origin = ev.kind == dynamics::ChurnEventKind::kArrival ? arrival_base + ev.peer
                                                                   : ev.peer;
          e.domain = 0;
          global_events->record(e);
        }
        if (pol != nullptr && ev.kind != dynamics::ChurnEventKind::kArrival) {
          pol->on_churn_sample(ev.at, cm->offline_count());
        }
      });
    }
    churn_model->start();
  }
  if (global_events != nullptr && operators_engine != nullptr) {
    // Operator interventions likewise run on the global context.
    operators_engine->set_action_hook(
        [global_events, clock = &simulator](dynamics::OperatorAction action, net::NodeId peer) {
          obs::Event e;
          e.time_ns = clock->now().ns();
          e.arg = static_cast<uint64_t>(action);
          e.origin = static_cast<uint32_t>(peer.value);
          e.kind = obs::EventKind::kOperatorAction;
          e.domain = 0;
          global_events->record(e);
        });
  }
  if (global_events != nullptr && policy_engine != nullptr) {
    // Adversary policy transitions are global-context actors too: triggers
    // fire from the observer/churn/sensor paths and actions land on the
    // global simulator, both with shards quiesced.
    policy_engine->set_trigger_hook(
        [global_events, clock = &simulator](adversary::PolicyTrigger trigger, uint32_t rule) {
          obs::Event e;
          e.time_ns = clock->now().ns();
          e.arg = static_cast<uint64_t>(trigger);
          e.origin = rule;
          e.kind = obs::EventKind::kAdversaryPolicyTrigger;
          e.domain = 0;
          global_events->record(e);
        });
    policy_engine->set_action_hook(
        [global_events, clock = &simulator](adversary::PolicyAction action, uint32_t phase) {
          obs::Event e;
          e.time_ns = clock->now().ns();
          e.arg = static_cast<uint64_t>(action);
          e.origin = phase;
          e.kind = obs::EventKind::kAdversaryPolicyAction;
          e.domain = 0;
          global_events->record(e);
        });
  }

  // --- Trace sampling ----------------------------------------------------------
  // Fixed-interval §6.1 time series. Every sampled quantity is a pure read
  // (afp_to_date peeks the damage integral without advancing it; efforts
  // come straight off the live meters), so a traced run computes the exact
  // same report as an untraced one; the ticks are ordinary simulator
  // events and therefore deterministic.
  metrics::TraceRecorder recorder(config.trace_interval);
  const auto loyal_effort_now = [&] {
    double total = 0.0;
    for (const auto& p : peers) {
      total += p->meter().total();
    }
    for (const auto& p : newcomers) {
      total += p->meter().total();
    }
    for (const auto& p : arrival_peers) {
      total += p->meter().total();
    }
    return total;
  };
  const auto adversary_effort_now = [&]() -> double { return fleet.effort_seconds(); };
  const auto sample_trace = [&](sim::SimTime t) {
    metrics::TracePoint point;
    point.t = t;
    point.damaged_fraction = collector.damaged_fraction_now();
    point.afp_to_date = collector.afp_to_date(t);
    point.successful_polls = collector.successful_polls();
    point.inquorate_polls = collector.inquorate_polls();
    point.alarms = collector.alarms();
    point.repairs = collector.repairs();
    point.loyal_effort_seconds = loyal_effort_now();
    point.adversary_effort_seconds = adversary_effort_now();
    // Robustness counters (fault layer + poll timeouts/retries). Trace
    // ticks run on the global context with every shard quiesced, so these
    // cross-shard reads are race-free and bit-identical to serial — the
    // same argument as loyal_effort_now above.
    point.faults_injected = network.total_stats().faults_injected();
    uint64_t acks = 0, votes = 0, retries = 0;
    const auto add_robustness = [&](const peer::Peer& p) {
      acks += p.ack_timeouts_total();
      votes += p.vote_timeouts_total();
      retries += p.solicitation_retries_total();
    };
    for (const auto& p : peers) {
      add_robustness(*p);
    }
    for (const auto& p : newcomers) {
      add_robustness(*p);
    }
    for (const auto& p : arrival_peers) {
      add_robustness(*p);
    }
    point.ack_timeouts = acks;
    point.vote_timeouts = votes;
    point.solicitation_retries = retries;
    if (churn_model != nullptr) {
      point.online_fraction = churn_model->online_fraction();
      point.departures = churn_model->departures();
      point.recoveries = churn_model->recoveries();
      point.mean_recovery_days = churn_model->mean_recovery_days();
    }
    recorder.record(point);
  };
  std::function<void()> trace_tick;  // self-rescheduling; outlives run_until
  if (recorder.enabled()) {
    trace_tick = [&] {
      sample_trace(simulator.now());
      if (simulator.now() + config.trace_interval < config.duration) {
        simulator.schedule_in(config.trace_interval, [&trace_tick] { trace_tick(); });
      }
    };
    if (config.trace_interval < config.duration) {
      simulator.schedule_in(config.trace_interval, [&trace_tick] { trace_tick(); });
    }
  }

  // --- Run ---------------------------------------------------------------------
  profile.setup_ms = phase_watch.elapsed_ms();
  phase_watch.reset();
  if (rt != nullptr) {
    rt->engine.run_until(config.duration);
  } else {
    simulator.run_until(config.duration);
  }
  profile.run_ms = phase_watch.elapsed_ms();
  phase_watch.reset();

  // --- Harvest -------------------------------------------------------------------
  RunResult result;
  if (recorder.enabled()) {
    // Closing sample at end-of-run (in-run ticks stop strictly before it).
    sample_trace(config.duration);
  }
  result.trace = recorder.close(config.duration);
  // Session-liveness audit horizon (docs/faults.md): a poller books work
  // only up to ~one inter-poll interval past its start and the repair chain
  // is timeout-bounded well inside that, so twice the interval covers every
  // legitimate session lifetime and schedule commitment. Anything older is
  // a leak.
  const sim::SimTime audit_horizon = config.params.inter_poll_interval * 2.0;
  const auto harvest_peer = [&](peer::Peer& p) {
    result.polls_started += p.polls_started();
    result.solicitations_sent += p.solicitations_sent();
    for (size_t v = 0; v < result.admission_verdicts.size(); ++v) {
      result.admission_verdicts[v] += p.admission_verdicts()[v];
    }
    result.ack_timeouts += p.ack_timeouts_total();
    result.vote_timeouts += p.vote_timeouts_total();
    result.solicitation_retries += p.solicitation_retries_total();
    for (size_t a = 0; a < result.polls_aborted.size(); ++a) {
      result.polls_aborted[a] += p.poll_aborts()[a];
    }
    p.for_each_live_session_start([&](sim::SimTime started) {
      ++result.sessions_live_at_end;
      if (started + audit_horizon < config.duration) {
        ++result.stale_sessions_at_end;
      }
    });
    result.reservations_beyond_horizon +=
        p.schedule().intervals_after(config.duration + audit_horizon).size();
  };
  for (auto& p : peers) {
    harvest_peer(*p);
  }
  for (auto& p : newcomers) {
    harvest_peer(*p);
  }
  for (auto& p : arrival_peers) {
    harvest_peer(*p);
  }
  if (churn_model != nullptr) {
    result.churn_departures = churn_model->departures();
    result.churn_recoveries = churn_model->recoveries();
    result.churn_arrivals = churn_model->arrivals_started();
    result.availability_mean = churn_model->availability_mean(config.duration);
    result.mean_recovery_days = churn_model->mean_recovery_days();
  }
  if (operators_engine != nullptr) {
    result.operator_interventions = operators_engine->interventions();
  }
  if (policy_engine != nullptr) {
    result.policy_triggers = policy_engine->triggers_seen();
    result.policy_actions = policy_engine->actions_applied();
  }
  collector.set_effort_totals(loyal_effort_now(), adversary_effort_now());
  result.report = collector.finalize(config.duration);
  // total_stats() sums the per-context shards (serial: just stats_); the
  // sums equal the serial counters. events_processed likewise sums to the
  // serial count exactly; peak_queue_depth is the one field with no serial
  // equivalent under sharding (sum of per-queue peaks, an upper bound).
  const net::NetworkStats net_stats = network.total_stats();
  result.messages_delivered = net_stats.messages_delivered;
  result.messages_filtered = net_stats.messages_filtered;
  result.faults_lost = net_stats.messages_lost;
  result.faults_burst_dropped = net_stats.messages_burst_dropped;
  result.faults_duplicated = net_stats.messages_duplicated;
  result.faults_jittered = net_stats.messages_jittered;
  result.events_processed =
      rt != nullptr ? rt->engine.events_processed() : simulator.events_processed();
  result.peak_queue_depth =
      rt != nullptr ? rt->engine.peak_queue_depth_sum() : simulator.peak_queue_depth();
  result.adversary_invitations = fleet.invitations();
  result.adversary_admissions = fleet.admissions();
  if (config.collect_schedule_history) {
    result.schedules.reserve(peers.size());
    for (auto& p : peers) {
      result.schedules.push_back(p->schedule().intervals_after(sim::SimTime::zero()));
    }
  }
  if (event_log != nullptr) {
    result.obs_events = event_log->finalize();
  }
  if (config.obs_profile) {
    profile.enabled = true;
    profile.harvest_ms = phase_watch.elapsed_ms();
    profile.total_ms = total_watch.elapsed_ms();
    profile.peak_rss_kb = obs::vm_hwm_kb();
    result.profile = profile;
  }
  return result;
}

}  // namespace

RunResult run_scenario(const ScenarioConfig& config) {
  const uint32_t requested = config.shards != 0 ? config.shards : default_shards();
  const uint32_t shards = requested > 1 && sharding_supported(config) ? requested : 1;
  return run_scenario_impl(config, shards);
}

std::vector<RunResult> run_layered(const ScenarioConfig& config, uint32_t layers) {
  std::vector<RunResult> results;
  // Accumulated busy intervals per peer across layers.
  std::vector<std::vector<sched::Reservation>> background(config.peer_count);
  for (uint32_t layer = 0; layer < layers; ++layer) {
    ScenarioConfig layer_config = config;
    layer_config.seed = config.seed + 7919 * layer;  // distinct stream per layer
    layer_config.collect_schedule_history = true;
    layer_config.background = layer > 0 ? &background : nullptr;
    RunResult r = run_scenario(layer_config);
    // Fold this layer's *new* busy time into the accumulated background.
    // intervals_after() returns the merged schedule (old injected + new), so
    // simply replacing the background with the export keeps the union.
    for (uint32_t p = 0; p < config.peer_count; ++p) {
      background[p] = r.schedules[p];
    }
    r.schedules.clear();  // not useful to callers; keep results lean
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace lockss::experiment
