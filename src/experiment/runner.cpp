#include "experiment/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace lockss::experiment {

namespace {
std::atomic<unsigned> g_default_workers_override{0};

// Shared fan-out: each index is claimed exactly once off an atomic counter
// and each result slot written exactly once, so the only synchronization is
// the counter and the joins. `fn(i)` must be a pure function of i.
template <typename Fn>
void parallel_for_index(unsigned workers, size_t count, const Fn& fn) {
  if (workers <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) {
          return;
        }
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

bool any_observer(const std::vector<ScenarioConfig>& jobs) {
  return std::any_of(jobs.begin(), jobs.end(),
                     [](const ScenarioConfig& job) { return job.poll_observer != nullptr; });
}

}  // namespace

ParallelRunner::ParallelRunner(unsigned workers)
    : workers_(workers > 0 ? workers : default_workers()) {}

unsigned ParallelRunner::default_workers() {
  const unsigned override = g_default_workers_override.load(std::memory_order_relaxed);
  if (override > 0) {
    return override;
  }
  if (const char* env = std::getenv("LOCKSS_WORKERS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) {
      return static_cast<unsigned>(n);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ParallelRunner::set_default_workers(unsigned n) {
  g_default_workers_override.store(n, std::memory_order_relaxed);
}

std::vector<RunResult> ParallelRunner::run(const std::vector<ScenarioConfig>& jobs) const {
  std::vector<RunResult> results(jobs.size());
  // A caller-supplied poll_observer is a shared std::function with no
  // thread-safety contract (established callers mutate captured probes);
  // degrade to serial execution rather than race it. Results are identical
  // either way — that is the runner's determinism contract.
  const unsigned workers =
      any_observer(jobs) ? 1u : static_cast<unsigned>(std::min<size_t>(workers_, jobs.size()));
  parallel_for_index(workers, jobs.size(),
                     [&](size_t i) { results[i] = run_scenario(jobs[i]); });
  return results;
}

std::vector<std::vector<RunResult>> ParallelRunner::run_layered_grid(
    const std::vector<ScenarioConfig>& jobs, uint32_t layers) const {
  std::vector<std::vector<RunResult>> results(jobs.size());
  const unsigned workers =
      any_observer(jobs) ? 1u : static_cast<unsigned>(std::min<size_t>(workers_, jobs.size()));
  parallel_for_index(workers, jobs.size(),
                     [&](size_t i) { results[i] = run_layered(jobs[i], layers); });
  return results;
}

std::vector<RunResult> run_grid(const std::vector<ScenarioConfig>& jobs, unsigned workers) {
  return ParallelRunner(workers).run(jobs);
}

std::vector<std::vector<RunResult>> run_layered_grid(const std::vector<ScenarioConfig>& jobs,
                                                     uint32_t layers, unsigned workers) {
  return ParallelRunner(workers).run_layered_grid(jobs, layers);
}

}  // namespace lockss::experiment
