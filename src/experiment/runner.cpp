#include "experiment/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace lockss::experiment {

namespace {
std::atomic<unsigned> g_default_workers_override{0};

// Shared fan-out: each index is claimed exactly once off an atomic counter
// and each result slot written exactly once, so the only synchronization is
// the counter and the joins. `fn(i)` must be a pure function of i.
template <typename Fn>
void parallel_for_index(unsigned workers, size_t count, const Fn& fn) {
  if (workers <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) {
          return;
        }
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

bool any_observer(const std::vector<ScenarioConfig>& jobs) {
  return std::any_of(jobs.begin(), jobs.end(),
                     [](const ScenarioConfig& job) { return job.poll_observer != nullptr; });
}

}  // namespace

ParallelRunner::ParallelRunner(unsigned workers)
    : workers_(workers > 0 ? workers : default_workers()) {}

unsigned ParallelRunner::default_workers() {
  const unsigned override = g_default_workers_override.load(std::memory_order_relaxed);
  if (override > 0) {
    return override;
  }
  if (const char* env = std::getenv("LOCKSS_WORKERS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) {
      return static_cast<unsigned>(n);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ParallelRunner::set_default_workers(unsigned n) {
  g_default_workers_override.store(n, std::memory_order_relaxed);
}

std::vector<RunResult> ParallelRunner::run(const std::vector<ScenarioConfig>& jobs) const {
  std::vector<RunResult> results(jobs.size());
  // A caller-supplied poll_observer is a shared std::function with no
  // thread-safety contract (established callers mutate captured probes);
  // degrade to serial execution rather than race it. Results are identical
  // either way — that is the runner's determinism contract.
  const unsigned workers =
      any_observer(jobs) ? 1u : static_cast<unsigned>(std::min<size_t>(workers_, jobs.size()));
  parallel_for_index(workers, jobs.size(),
                     [&](size_t i) { results[i] = run_scenario(jobs[i]); });
  return results;
}

std::vector<std::vector<RunResult>> ParallelRunner::run_layered_grid(
    const std::vector<ScenarioConfig>& jobs, uint32_t layers) const {
  std::vector<std::vector<RunResult>> results(jobs.size());
  const unsigned workers =
      any_observer(jobs) ? 1u : static_cast<unsigned>(std::min<size_t>(workers_, jobs.size()));
  parallel_for_index(workers, jobs.size(),
                     [&](size_t i) { results[i] = run_layered(jobs[i], layers); });
  return results;
}

std::vector<JobOutcome> ParallelRunner::run_protected(
    size_t count, const std::function<RunResult(size_t index, uint32_t attempt)>& run_job,
    uint32_t max_attempts,
    const std::function<void(size_t index, const JobOutcome&)>& on_complete) const {
  if (max_attempts == 0) {
    max_attempts = 1;
  }
  std::vector<JobOutcome> outcomes(count);
  std::vector<size_t> pending(count);
  for (size_t i = 0; i < count; ++i) {
    pending[i] = i;
  }
  std::mutex mutex;  // guards `failed` collection and serializes on_complete
  for (uint32_t attempt = 1; attempt <= max_attempts && !pending.empty(); ++attempt) {
    std::vector<size_t> failed;
    const unsigned workers =
        static_cast<unsigned>(std::min<size_t>(workers_, pending.size()));
    parallel_for_index(workers, pending.size(), [&](size_t j) {
      const size_t i = pending[j];
      JobOutcome& outcome = outcomes[i];
      outcome.attempts = attempt;
      try {
        outcome.result = run_job(i, attempt);
        outcome.ok = true;
        outcome.error.clear();
      } catch (const std::exception& e) {
        outcome.ok = false;
        outcome.error = e.what();
      } catch (...) {
        outcome.ok = false;
        outcome.error = "unknown exception";
      }
      const bool final = outcome.ok || attempt == max_attempts;
      std::lock_guard<std::mutex> lock(mutex);
      if (final) {
        if (on_complete) {
          on_complete(i, outcome);
        }
      } else {
        failed.push_back(i);
      }
    });
    // Retry rounds are barriers: the failed set is fixed, sorted, and
    // re-run in index order, so the attempt sequence every job sees is a
    // pure function of (jobs, max_attempts) — never of scheduling.
    std::sort(failed.begin(), failed.end());
    pending = std::move(failed);
  }
  return outcomes;
}

std::vector<RunResult> run_grid(const std::vector<ScenarioConfig>& jobs, unsigned workers) {
  return ParallelRunner(workers).run(jobs);
}

std::vector<std::vector<RunResult>> run_layered_grid(const std::vector<ScenarioConfig>& jobs,
                                                     uint32_t layers, unsigned workers) {
  return ParallelRunner(workers).run_layered_grid(jobs, layers);
}

}  // namespace lockss::experiment
