#include "experiment/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace lockss::experiment {

namespace {
std::atomic<unsigned> g_default_workers_override{0};
}  // namespace

ParallelRunner::ParallelRunner(unsigned workers)
    : workers_(workers > 0 ? workers : default_workers()) {}

unsigned ParallelRunner::default_workers() {
  const unsigned override = g_default_workers_override.load(std::memory_order_relaxed);
  if (override > 0) {
    return override;
  }
  if (const char* env = std::getenv("LOCKSS_WORKERS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) {
      return static_cast<unsigned>(n);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ParallelRunner::set_default_workers(unsigned n) {
  g_default_workers_override.store(n, std::memory_order_relaxed);
}

std::vector<RunResult> ParallelRunner::run(const std::vector<ScenarioConfig>& jobs) const {
  std::vector<RunResult> results(jobs.size());
  // A caller-supplied poll_observer is a shared std::function with no
  // thread-safety contract (established callers mutate captured probes);
  // degrade to serial execution rather than race it. Results are identical
  // either way — that is the runner's determinism contract.
  const bool has_observer =
      std::any_of(jobs.begin(), jobs.end(),
                  [](const ScenarioConfig& job) { return job.poll_observer != nullptr; });
  const unsigned workers =
      has_observer ? 1u : static_cast<unsigned>(std::min<size_t>(workers_, jobs.size()));
  if (workers <= 1) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      results[i] = run_scenario(jobs[i]);
    }
    return results;
  }
  // Each job index is claimed exactly once and each result slot written
  // exactly once, so the only synchronization needed is the counter and the
  // joins. Result order is job order by construction.
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size()) {
          return;
        }
        results[i] = run_scenario(jobs[i]);
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  return results;
}

std::vector<RunResult> run_grid(const std::vector<ScenarioConfig>& jobs, unsigned workers) {
  return ParallelRunner(workers).run(jobs);
}

}  // namespace lockss::experiment
