// Whole-deployment scenario construction and execution.
//
// A ScenarioConfig describes one simulated deployment (§6.3): a population
// of loyal peers preserving a collection of AUs for a simulated span, plus
// at most one adversary. run_scenario() builds everything, runs the
// discrete-event simulation, and returns the §6.1 metrics together with raw
// counters.
//
// The 600-AU collections of §6.3 are simulated with the paper's *layering*
// methodology: "We simulate 600 AU collections by layering 50 AUs/peer runs,
// adding the tasks caused by this layer's 50 AUs to the task schedule for
// each peer accumulated during the preceding layers." run_layered() exports
// every peer's busy intervals after each layer and injects them as
// background load into the next.
#ifndef LOCKSS_EXPERIMENT_SCENARIO_HPP_
#define LOCKSS_EXPERIMENT_SCENARIO_HPP_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "adversary/attack_schedule.hpp"
#include "adversary/brute_force.hpp"
#include "adversary/pipeline.hpp"
#include "adversary/policy.hpp"
#include "crypto/cost_model.hpp"
#include "dynamics/spec.hpp"
#include "metrics/collector.hpp"
#include "metrics/trace.hpp"
#include "net/fault_model.hpp"
#include "net/network.hpp"
#include "obs/event_log.hpp"
#include "obs/profile.hpp"
#include "protocol/host.hpp"
#include "protocol/params.hpp"
#include "sched/task_schedule.hpp"
#include "storage/damage.hpp"

namespace lockss::experiment {

struct AdversarySpec {
  enum class Kind {
    kNone,
    kPipeStoppage,    // §7.2 (Figures 3–5)
    kAdmissionFlood,  // §7.3 (Figures 6–8)
    kBruteForce,      // §7.4 (Table 1)
    kGradeRecovery,   // §7.4 closing variant (extension)
    kVoteFlood,       // §5.1 rate-limitation adversary (extension)
    kCombined,        // §9 combined strategy: pipe stoppage + brute force
  };
  Kind kind = Kind::kNone;
  adversary::AttackCadence cadence;  // pipe stoppage / admission flood / combined
  adversary::DefectionPoint defection = adversary::DefectionPoint::kNone;  // brute force/combined
  // Composable multi-adversary pipeline (§9). When non-empty it takes
  // precedence over `kind` and is installed verbatim; when empty, `kind` is
  // expanded via canonical_pipeline() below. Every run — legacy enum or
  // explicit pipeline — therefore flows through adversary::AdversaryFleet.
  adversary::AdversaryPipeline pipeline;
};

// The canonical pipeline for a legacy single-enum spec: one phase per kind
// (two for kCombined: pipe stoppage then brute force, the §9 ordering),
// carrying the spec's cadence and defection point. Bit-identical to the old
// hard-coded adversary switch by the fleet's determinism contract; the
// equivalence is property-tested (tests/adversary_pipeline_test.cpp) and
// pinned by the golden corpus.
adversary::AdversaryPipeline canonical_pipeline(const AdversarySpec& spec);

// The pipeline a ScenarioConfig will actually install: spec.pipeline when
// non-empty, else canonical_pipeline(spec).
adversary::AdversaryPipeline effective_pipeline(const AdversarySpec& spec);

struct ScenarioConfig {
  uint32_t peer_count = 100;   // §6.3: "a constant loyal peer population of 100"
  uint32_t au_count = 50;      // one layer's collection
  // Fraction of the AU collection each peer holds (extension; §6.3 notes the
  // paper does "not yet simulate the diversity of local collections"). At
  // 1.0 every peer holds every AU, the paper's setting. Below 1.0 each peer
  // joins each AU independently with this probability; reference lists and
  // reputation seeds are then drawn from the AU's actual holders, and the
  // metrics denominators count actual replicas.
  double au_coverage = 1.0;
  // Extension (§9): a dynamic population. `newcomer_count` additional peers
  // (node ids peer_count .. peer_count+newcomer_count-1) join the running
  // system at uniform-random times within [0, newcomer_join_window]. Each
  // bootstraps the way a freshly installed peer does: it holds correct
  // publisher replicas and knows a sample of established holders, but nobody
  // knows it — its first solicitations run through the unknown-peer
  // admission channel and the discovery/introduction machinery.
  uint32_t newcomer_count = 0;
  sim::SimTime newcomer_join_window = sim::SimTime::years(1);
  sim::SimTime duration = sim::SimTime::years(2);  // §6.3: two simulated years
  uint64_t seed = 1;
  protocol::Params params;
  crypto::CostModel costs;
  storage::DamageConfig damage;
  bool enable_damage = true;
  AdversarySpec adversary;
  // Adaptive adversary policies (adversary/policy.hpp; docs/adversaries.md):
  // deterministic trigger→action rules driving the installed pipeline. The
  // engine's RNG is a domain-separated hash of `seed` — never a root split —
  // and nothing is constructed when the table is empty (or the pipeline is),
  // so policy-free configs reproduce the golden corpus bit for bit.
  adversary::AdversaryPolicyConfig adversary_policy;
  // Deployment dynamics (extension; see docs/dynamics.md): session churn,
  // correlated regional outages, and Poisson peer arrivals over the
  // established population, plus detection-latency-delayed operator
  // interventions. Each enabled subsystem consumes exactly one root-RNG
  // split (taken before any other stream), so disabled configs reproduce
  // the static deployment bit for bit — the golden corpus pins this.
  dynamics::ChurnConfig churn;
  dynamics::OperatorResponseConfig operators;
  // Network topology parameters (§6.2 latency band + bandwidth choices).
  // The minimum latency doubles as the sharded engine's lookahead; configs
  // with a zero minimum run serial (sharding_supported()).
  net::NetworkConfig network;
  // Unreliable-link fault layer (net::FaultModel; docs/faults.md): loss,
  // duplication, jitter, burst outages on the delivery path. The model's
  // RNG is a domain-separated hash of `seed` — never a root split — so
  // enabling (or inertly installing) it shifts no other stream, and the
  // default disabled config reproduces the ideal network bit for bit.
  net::FaultConfig faults;
  // Layering support: per-peer busy intervals injected before the run, and
  // whether to retain full schedule history for export.
  const std::vector<std::vector<sched::Reservation>>* background = nullptr;
  bool collect_schedule_history = false;
  // Optional per-poll observer (diagnostics / examples).
  std::function<void(net::NodeId, const protocol::PollOutcome&)> poll_observer;
  // Metric time-series sampling cadence (metrics::TraceRecorder); zero
  // disables tracing. Samples are scheduled as ordinary simulator events,
  // so traces obey the same bit-identical determinism contract as the
  // scalar report.
  sim::SimTime trace_interval = sim::SimTime::zero();
  // Deterministic intra-run sharding (docs/sharding.md): split this run's
  // peers and event load across `shards` worker threads. 0 picks the
  // process default (default_shards(), normally 1); 1 runs the unsharded
  // serial path. Every shard count produces the same RunResult bit for bit
  // — peak_queue_depth excepted, which becomes a sum of per-queue peaks —
  // so this is an execution knob, not part of the experiment definition
  // (campaign specs and manifests never record it).
  uint32_t shards = 0;
  // Protocol event tracing (docs/observability.md). Disabled (the default)
  // every hook is a cached null check and the run is byte-for-byte the
  // untraced behavior — the golden corpus pins this. Enabled, the trace in
  // RunResult::obs_events is itself bit-identical across shard and worker
  // counts. Tracing consumes no RNG (sampling is a pure hash), so it never
  // perturbs the simulation either way.
  obs::TraceConfig obs_trace;
  // Wall-clock self-profiling (setup/run/harvest timers, engine barrier
  // histograms, peak RSS) into RunResult::profile. Non-deterministic by
  // nature; reporting only.
  bool obs_profile = false;
};

struct RunResult {
  metrics::MetricsReport report;
  // Fixed-interval §6.1 time series (empty unless config.trace_interval set).
  metrics::RunTrace trace;
  uint64_t polls_started = 0;
  uint64_t solicitations_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_filtered = 0;
  uint64_t adversary_invitations = 0;
  uint64_t adversary_admissions = 0;
  // Population-wide admission-verdict histogram (protocol::AdmissionVerdict).
  std::array<uint64_t, 8> admission_verdicts{};
  // Simulation-engine counters (deterministic; tracked for the perf reports).
  uint64_t events_processed = 0;
  uint64_t peak_queue_depth = 0;
  // Deployment-dynamics accounting (defaults for static deployments, so
  // every existing fixture and comparator is unaffected).
  uint64_t churn_departures = 0;
  uint64_t churn_recoveries = 0;
  uint64_t churn_arrivals = 0;
  // Time-weighted mean online fraction of the established population.
  double availability_mean = 1.0;
  // Mean completed downtime, in days (0 when nothing ever recovered).
  double mean_recovery_days = 0.0;
  // Operator interventions applied, indexed by dynamics::OperatorAction.
  std::array<uint64_t, dynamics::kOperatorActionCount> operator_interventions{};
  // Adaptive-adversary policy accounting (all zero without a policy table):
  // rule firings seen, and reactions applied indexed by
  // adversary::PolicyAction.
  uint64_t policy_triggers = 0;
  std::array<uint64_t, adversary::kPolicyActionCount> policy_actions{};
  // Fault-layer accounting (net::FaultModel; all zero on ideal networks).
  uint64_t faults_lost = 0;
  uint64_t faults_burst_dropped = 0;
  uint64_t faults_duplicated = 0;
  uint64_t faults_jittered = 0;
  // Protocol robustness counters, summed over every concluded poll.
  uint64_t ack_timeouts = 0;
  uint64_t vote_timeouts = 0;
  uint64_t solicitation_retries = 0;
  // Poll conclusions by abort reason (protocol::PollAbortReason; slot
  // kNone counts full successes).
  std::array<uint64_t, protocol::kPollAbortReasonCount> polls_aborted{};
  // Session-liveness audit, computed at harvest (docs/faults.md). Sessions
  // still live at end-of-run are legitimate when young; a live session
  // older than twice the inter-poll interval, or a schedule reservation
  // ending past that horizon, is a leak — both counts must stay zero under
  // arbitrary loss (tests/fault_soak_test.cpp).
  uint64_t sessions_live_at_end = 0;
  uint64_t stale_sessions_at_end = 0;
  uint64_t reservations_beyond_horizon = 0;
  // Per-peer busy history (only when collect_schedule_history).
  std::vector<std::vector<sched::Reservation>> schedules;
  // Canonically ordered protocol event trace (empty unless
  // config.obs_trace.enabled; docs/observability.md). Deterministic, but
  // deliberately excluded from the campaign journal and golden comparisons —
  // trace artifacts are serialized separately.
  obs::EventTrace obs_events;
  // Wall-clock profile (zeroed unless config.obs_profile). Never
  // deterministic; never journaled or compared.
  obs::RunProfile profile;
};

// Shard count used when ScenarioConfig::shards is 0: the process-wide
// override if set, else the LOCKSS_SHARDS environment variable (>= 1),
// else 1 (serial).
uint32_t default_shards();
// Process-wide override (CLI tools, benches); 0 restores automatic
// selection.
void set_default_shards(uint32_t shards);

// True when the sharded engine can run `config` bit-identically to the
// serial path; when false (an external poll_observer, or operator latency
// inside the network lookahead) run_scenario silently runs serial.
bool sharding_supported(const ScenarioConfig& config);

// Builds and runs one scenario to completion.
RunResult run_scenario(const ScenarioConfig& config);

// Runs `layers` scenarios, threading accumulated schedule load through, and
// returns the per-layer results (combine with combine_results()).
std::vector<RunResult> run_layered(const ScenarioConfig& config, uint32_t layers);

}  // namespace lockss::experiment

#endif  // LOCKSS_EXPERIMENT_SCENARIO_HPP_
