// Parallel scenario execution.
//
// Every figure and table in the paper is a grid of *independent* runs —
// durations × coverage levels × seeds (§6.3) — and each run owns its entire
// world (Simulator, Rng, Network, peers), so runs parallelize with no shared
// state. ParallelRunner fans a job list out across a fixed set of worker
// threads and writes each result into the slot matching its job index, so
// the output order is the job order regardless of completion order.
//
// Determinism contract: run_scenario(config) is a pure function of its
// config (all randomness flows from config.seed). Therefore the result
// vector is bit-identical for any worker count, including 1; the tier-1
// suite enforces this. There is no work stealing and no cross-run
// communication — scheduling only decides *when* a job runs, never *what*
// it computes.
#ifndef LOCKSS_EXPERIMENT_RUNNER_HPP_
#define LOCKSS_EXPERIMENT_RUNNER_HPP_

#include <functional>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"

namespace lockss::experiment {

// Outcome of one fault-isolated job (ParallelRunner::run_protected): either
// a result, or the diagnostic of the last failed attempt.
struct JobOutcome {
  RunResult result;
  bool ok = false;
  uint32_t attempts = 0;  // attempts actually made (final one decided ok)
  std::string error;      // last attempt's diagnostic when !ok
};

class ParallelRunner {
 public:
  // `workers` = 0 picks default_workers().
  explicit ParallelRunner(unsigned workers = 0);

  unsigned workers() const { return workers_; }

  // Runs every config and returns results in job order. Jobs carrying a
  // poll_observer run serially: the observer is a shared callback with no
  // thread-safety contract, and results are identical either way.
  std::vector<RunResult> run(const std::vector<ScenarioConfig>& jobs) const;

  // Runs every config as one §6.3 layered *campaign* of `layers` runs
  // (run_layered). Layers within a campaign are sequentially dependent —
  // each injects the accumulated busy schedule of its predecessors — so a
  // campaign is the unit of work: campaigns fan out across the workers,
  // layers inside each stay ordered. Returns the per-layer results per
  // campaign, in job order; bit-identical for any worker count (each
  // campaign is a pure function of its config, like run()).
  std::vector<std::vector<RunResult>> run_layered_grid(
      const std::vector<ScenarioConfig>& jobs, uint32_t layers) const;

  // Fault-isolated execution with bounded, deterministically ordered retry
  // (the campaign engine's crash-resumable path rides on this).
  //
  // Runs `count` jobs through `run_job(index, attempt)` — a pure function
  // of (index, attempt) that returns the job's result or throws. A throw
  // marks one failed attempt and never escapes: attempt 1 of every job runs
  // in the normal parallel fan-out; jobs that failed are then retried in
  // rounds, each round re-running the surviving failures *in ascending
  // index order* (the deterministic backoff ordering — no wall-clock
  // backoff, which would break reproducibility), up to `max_attempts`
  // attempts per job. A job whose every attempt threw comes back with
  // ok == false and the last diagnostic.
  //
  // `on_complete(index, outcome)`, when given, fires exactly once per job —
  // as soon as that job reaches its final state, serialized under an
  // internal mutex (safe for journal appends) — in completion order, which
  // may differ across runs; callers needing determinism must key on the
  // index, not the order.
  std::vector<JobOutcome> run_protected(
      size_t count, const std::function<RunResult(size_t index, uint32_t attempt)>& run_job,
      uint32_t max_attempts,
      const std::function<void(size_t index, const JobOutcome&)>& on_complete = nullptr) const;

  // Worker count used when none is given: the LOCKSS_WORKERS environment
  // variable if set (>= 1), else std::thread::hardware_concurrency().
  static unsigned default_workers();
  // Process-wide override (tests, benches); 0 restores automatic selection.
  static void set_default_workers(unsigned n);

 private:
  unsigned workers_;
};

// Convenience: one-shot grid execution with the default (or given) workers.
std::vector<RunResult> run_grid(const std::vector<ScenarioConfig>& jobs, unsigned workers = 0);

// Convenience: one-shot layered-campaign grid with the default (or given)
// workers. The layered drivers (table1_brute_force, fig2_baseline) route
// their campaign sets through this instead of looping run_layered serially.
std::vector<std::vector<RunResult>> run_layered_grid(const std::vector<ScenarioConfig>& jobs,
                                                     uint32_t layers, unsigned workers = 0);

}  // namespace lockss::experiment

#endif  // LOCKSS_EXPERIMENT_RUNNER_HPP_
