// Parallel scenario execution.
//
// Every figure and table in the paper is a grid of *independent* runs —
// durations × coverage levels × seeds (§6.3) — and each run owns its entire
// world (Simulator, Rng, Network, peers), so runs parallelize with no shared
// state. ParallelRunner fans a job list out across a fixed set of worker
// threads and writes each result into the slot matching its job index, so
// the output order is the job order regardless of completion order.
//
// Determinism contract: run_scenario(config) is a pure function of its
// config (all randomness flows from config.seed). Therefore the result
// vector is bit-identical for any worker count, including 1; the tier-1
// suite enforces this. There is no work stealing and no cross-run
// communication — scheduling only decides *when* a job runs, never *what*
// it computes.
#ifndef LOCKSS_EXPERIMENT_RUNNER_HPP_
#define LOCKSS_EXPERIMENT_RUNNER_HPP_

#include <vector>

#include "experiment/scenario.hpp"

namespace lockss::experiment {

class ParallelRunner {
 public:
  // `workers` = 0 picks default_workers().
  explicit ParallelRunner(unsigned workers = 0);

  unsigned workers() const { return workers_; }

  // Runs every config and returns results in job order. Jobs carrying a
  // poll_observer run serially: the observer is a shared callback with no
  // thread-safety contract, and results are identical either way.
  std::vector<RunResult> run(const std::vector<ScenarioConfig>& jobs) const;

  // Runs every config as one §6.3 layered *campaign* of `layers` runs
  // (run_layered). Layers within a campaign are sequentially dependent —
  // each injects the accumulated busy schedule of its predecessors — so a
  // campaign is the unit of work: campaigns fan out across the workers,
  // layers inside each stay ordered. Returns the per-layer results per
  // campaign, in job order; bit-identical for any worker count (each
  // campaign is a pure function of its config, like run()).
  std::vector<std::vector<RunResult>> run_layered_grid(
      const std::vector<ScenarioConfig>& jobs, uint32_t layers) const;

  // Worker count used when none is given: the LOCKSS_WORKERS environment
  // variable if set (>= 1), else std::thread::hardware_concurrency().
  static unsigned default_workers();
  // Process-wide override (tests, benches); 0 restores automatic selection.
  static void set_default_workers(unsigned n);

 private:
  unsigned workers_;
};

// Convenience: one-shot grid execution with the default (or given) workers.
std::vector<RunResult> run_grid(const std::vector<ScenarioConfig>& jobs, unsigned workers = 0);

// Convenience: one-shot layered-campaign grid with the default (or given)
// workers. The layered drivers (table1_brute_force, fig2_baseline) route
// their campaign sets through this instead of looping run_layered serially.
std::vector<std::vector<RunResult>> run_layered_grid(const std::vector<ScenarioConfig>& jobs,
                                                     uint32_t layers, unsigned workers = 0);

}  // namespace lockss::experiment

#endif  // LOCKSS_EXPERIMENT_RUNNER_HPP_
