// Console / CSV table output for the bench harnesses.
//
// Every figure/table binary prints aligned columns to stdout (the "same
// rows/series the paper reports") and optionally mirrors them to a CSV file
// for plotting.
#ifndef LOCKSS_EXPERIMENT_TABLE_HPP_
#define LOCKSS_EXPERIMENT_TABLE_HPP_

#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "metrics/trace.hpp"

namespace lockss::experiment {

class TableWriter {
 public:
  // `echo_stdout` = false silences the console table (CSV mirroring only;
  // the campaign engine's --quiet mode).
  explicit TableWriter(std::vector<std::string> columns, const std::string& csv_path = "",
                       bool echo_stdout = true);

  // True when a CSV path was given and the file opened; callers that
  // promised a CSV should treat false as an I/O error.
  bool csv_ok() const { return csv_open_; }

  // Prints (and mirrors) the header row.
  void header();
  // Prints one row; cells must match the column count.
  void row(const std::vector<std::string>& cells);

  // Formatting helpers.
  static std::string fixed(double value, int precision);
  static std::string scientific(double value, int precision);

 private:
  std::vector<std::string> columns_;
  std::vector<size_t> widths_;
  std::ofstream csv_;
  bool csv_open_ = false;
  bool echo_stdout_ = true;
};

// Writes labelled metric time series in long form — one row per (series,
// sample): series,t_days,damaged_fraction,afp_to_date,successful_polls,
// inquorate_polls,alarms,repairs,loyal_effort_s,adversary_effort_s.
// Disabled traces are skipped. Returns false if the file cannot be opened
// or every series was disabled (no file is left behind with a bare header).
bool write_trace_csv(const std::string& path,
                     const std::vector<std::pair<std::string, const metrics::RunTrace*>>& series);

}  // namespace lockss::experiment

#endif  // LOCKSS_EXPERIMENT_TABLE_HPP_
