#include "experiment/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace lockss::experiment {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      extras_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      keys_.push_back(arg.substr(0, eq));
      values_[keys_.back()] = arg.substr(eq + 1);
      continue;
    }
    keys_.push_back(arg);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[i + 1];
      ++i;
    } else {
      values_[arg] = "";
    }
  }
}

bool CliArgs::flag(const std::string& name) const { return values_.contains(name); }

int64_t CliArgs::integer(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() || it->second.empty() ? fallback : std::atoll(it->second.c_str());
}

double CliArgs::real(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() || it->second.empty() ? fallback : std::atof(it->second.c_str());
}

std::string CliArgs::text(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::vector<double> CliArgs::reals(const std::string& name, std::vector<double> fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    return fallback;
  }
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(std::atof(item.c_str()));
  }
  return out.empty() ? fallback : out;
}

BenchProfile resolve_profile(const CliArgs& args, uint32_t quick_peers, uint32_t quick_aus,
                             double quick_years, uint32_t quick_seeds) {
  BenchProfile profile;
  profile.paper = args.flag("paper");
  profile.peers = static_cast<uint32_t>(
      args.integer("peers", profile.paper ? 100 : quick_peers));
  profile.aus = static_cast<uint32_t>(args.integer("aus", profile.paper ? 50 : quick_aus));
  profile.years = args.real("years", profile.paper ? 2.0 : quick_years);
  profile.seeds = static_cast<uint32_t>(args.integer("seeds", profile.paper ? 3 : quick_seeds));
  profile.csv = args.text("csv", "");
  return profile;
}

ScenarioConfig base_config(const BenchProfile& profile) {
  ScenarioConfig config;
  config.peer_count = profile.peers;
  config.au_count = profile.aus;
  config.duration = sim::SimTime::years(profile.years);
  if (profile.paper) {
    // §7.1: attack experiments pin storage damage at one block per 5 disk
    // years (50 AUs per disk).
    config.damage.mean_disk_years_between_failures = 5.0;
    config.damage.aus_per_disk = 50.0;
  } else {
    // Reduced profile: at paper rates a small collection sees almost no
    // damage events, so access-failure estimates would be all noise.
    // Inflate the per-AU damage rate (one disk per peer, ~0.6 disk-years
    // between failures) — the absolute AFP shifts up by the inflation
    // factor, but every *relative* shape (vs attack duration, coverage,
    // poll interval) is preserved. The preamble reports the factor.
    config.damage.mean_disk_years_between_failures = 0.6;
    config.damage.aus_per_disk = profile.aus;
  }
  return config;
}

double damage_rate_inflation(const BenchProfile& profile) {
  if (profile.paper) {
    return 1.0;
  }
  const double paper_rate = 1.0 / (5.0 * 50.0);
  const double quick_rate = 1.0 / (0.6 * profile.aus);
  return quick_rate / paper_rate;
}

void print_preamble(const std::string& what, const BenchProfile& profile) {
  std::printf("# %s\n", what.c_str());
  std::printf("# scale: %u peers, %u AUs, %.2f simulated years, %u seed(s)%s\n", profile.peers,
              profile.aus, profile.years, profile.seeds,
              profile.paper ? " [--paper]" : " [reduced; use --paper for full §6.3 scale]");
  const double inflation = damage_rate_inflation(profile);
  if (inflation != 1.0) {
    std::printf("# note: damage rate inflated %.0fx for statistical power; absolute access\n"
                "#       failure probabilities are ~%.0fx the paper's, shapes are unaffected\n",
                inflation, inflation);
  }
  std::fflush(stdout);
}

}  // namespace lockss::experiment
