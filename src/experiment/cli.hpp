// Minimal command-line parsing shared by the bench binaries.
//
// Conventions: `--flag` (boolean), `--key value`. Every figure/table binary
// supports:
//   --paper          full §6.3 parameters (100 peers, 50/600 AUs, 2 years,
//                    3 seeds, full sweep grids) — CPU-hours of work;
//   --peers/--aus/--years/--seeds  individual overrides;
//   --csv PATH       mirror rows to a CSV file.
// The default is a reduced grid that preserves every *rate* in §6.3 (poll
// interval, damage rate, refractory period, drop probabilities) and shrinks
// only population/collection/duration, so the reported shapes match the
// paper at a fraction of the cost.
#ifndef LOCKSS_EXPERIMENT_CLI_HPP_
#define LOCKSS_EXPERIMENT_CLI_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"

namespace lockss::experiment {

class CliArgs {
 public:
  // Accepts both `--key value` and `--key=value`; anything that is not a
  // `--` option (and not consumed as a value) is collected into extras().
  CliArgs(int argc, char** argv);

  bool flag(const std::string& name) const;
  int64_t integer(const std::string& name, int64_t fallback) const;
  double real(const std::string& name, double fallback) const;
  std::string text(const std::string& name, const std::string& fallback) const;
  // Comma-separated doubles, e.g. "--coverages 10,40,70,100".
  std::vector<double> reals(const std::string& name, std::vector<double> fallback) const;

  // Every option name seen, in command-line order (for strict binaries that
  // reject unknown flags, e.g. lockss_campaign).
  const std::vector<std::string>& keys() const { return keys_; }
  // Bare positional arguments that were not consumed as option values.
  const std::vector<std::string>& extras() const { return extras_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> keys_;
  std::vector<std::string> extras_;
};

// The common experiment profile derived from the standard flags.
struct BenchProfile {
  uint32_t peers = 0;
  uint32_t aus = 0;
  double years = 0.0;
  uint32_t seeds = 0;
  bool paper = false;
  std::string csv;
};

// Resolves the profile: defaults scale down unless --paper is given.
BenchProfile resolve_profile(const CliArgs& args, uint32_t quick_peers, uint32_t quick_aus,
                             double quick_years, uint32_t quick_seeds);

// Base scenario config from a profile (§6.3 parameters otherwise).
ScenarioConfig base_config(const BenchProfile& profile);

// How much the reduced profile inflates the per-AU damage rate relative to
// §7.1 (1.0 under --paper).
double damage_rate_inflation(const BenchProfile& profile);

// Standard preamble print: what this binary reproduces and at what scale.
void print_preamble(const std::string& what, const BenchProfile& profile);

}  // namespace lockss::experiment

#endif  // LOCKSS_EXPERIMENT_CLI_HPP_
