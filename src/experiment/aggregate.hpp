// Aggregation helpers: multi-seed replication (§6.3 runs 3 seeds per data
// point) and combination of per-layer results for 600-AU collections.
#ifndef LOCKSS_EXPERIMENT_AGGREGATE_HPP_
#define LOCKSS_EXPERIMENT_AGGREGATE_HPP_

#include <functional>
#include <vector>

#include "experiment/scenario.hpp"

namespace lockss::experiment {

// Mean/min/max of one scalar across runs.
struct Aggregate {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  size_t n = 0;
};

Aggregate aggregate(const std::vector<double>& values);

// Runs `config` under `seeds` different seeds (seed, seed+1, ...).
std::vector<RunResult> run_replicated(const ScenarioConfig& config, uint32_t seeds);

// Combines per-layer (or per-seed) results into one deployment-level result:
// access-failure probabilities average (equal replica counts per part);
// counts and efforts sum; success gaps pool weighted by gap count. Traces
// merge pointwise (metrics::merge_traces) when every part carries one.
RunResult combine_results(const std::vector<RunResult>& parts);

// Combines the `block`-th group of `per_block` consecutive results from a
// flattened grid (as produced by run_grid over a job list built in blocks of
// `per_block` seed-replicas). Shared by the sweep/table drivers so the
// slicing arithmetic lives in one place and results are not copied.
RunResult combine_block(const std::vector<RunResult>& grid_runs, size_t block,
                        uint32_t per_block);

// Runs every config `seeds` times (seed, seed+1, ...) as one flat parallel
// grid and returns one seed-combined result per config, in config order.
// The workhorse of the figure/table drivers: the seed replication and the
// block slicing live here, so a driver's build loop and consume loop only
// have to agree on config order.
std::vector<RunResult> run_replicated_grid(const std::vector<ScenarioConfig>& configs,
                                           uint32_t seeds);

// The layered counterpart: every config becomes `seeds` independent §6.3
// layered campaigns (seed, seed+1, ...) of `layers` layers each, fanned out
// across the parallel runner (campaigns parallel, layers sequential inside
// each — run_layered_grid); returns one result per config combining all of
// its seeds × layers parts, in config order. Like run_replicated_grid, the
// seed expansion and block slicing live here so the layered drivers
// (table1_brute_force, fig2_baseline) cannot drift apart.
std::vector<RunResult> run_layered_replicated_grid(const std::vector<ScenarioConfig>& configs,
                                                   uint32_t layers, uint32_t seeds);

// Extracts a metric across runs.
Aggregate aggregate_metric(const std::vector<RunResult>& runs,
                           const std::function<double(const RunResult&)>& metric);

// The four §6.1 metrics relative to a baseline run.
struct RelativeMetrics {
  double access_failure = 0.0;  // absolute probability (the paper plots this)
  double delay_ratio = 1.0;     // attack mean gap / baseline mean gap
  double friction = 1.0;        // attack effort-per-success / baseline's
  double cost_ratio = 0.0;      // adversary effort / loyal effort
};

RelativeMetrics relative_metrics(const RunResult& attack, const RunResult& baseline);

}  // namespace lockss::experiment

#endif  // LOCKSS_EXPERIMENT_AGGREGATE_HPP_
