#include "experiment/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <iostream>

namespace lockss::experiment {

TableWriter::TableWriter(std::vector<std::string> columns, const std::string& csv_path,
                         bool echo_stdout)
    : columns_(std::move(columns)), echo_stdout_(echo_stdout) {
  widths_.reserve(columns_.size());
  for (const std::string& c : columns_) {
    widths_.push_back(std::max<size_t>(c.size() + 2, 12));
  }
  if (!csv_path.empty()) {
    csv_.open(csv_path);
    csv_open_ = csv_.is_open();
  }
}

void TableWriter::header() {
  if (echo_stdout_) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::cout << columns_[i];
      if (i + 1 < columns_.size()) {
        std::cout << std::string(widths_[i] - columns_[i].size(), ' ');
      }
    }
    std::cout << "\n";
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::cout << std::string(std::min(widths_[i] - 2, columns_[i].size() + 4), '-');
      if (i + 1 < columns_.size()) {
        std::cout << std::string(widths_[i] -
                                 std::min(widths_[i] - 2, columns_[i].size() + 4), ' ');
      }
    }
    std::cout << "\n";
  }
  if (csv_open_) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      csv_ << columns_[i] << (i + 1 < columns_.size() ? "," : "\n");
    }
  }
}

void TableWriter::row(const std::vector<std::string>& cells) {
  assert(cells.size() == columns_.size());
  if (echo_stdout_) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::cout << cells[i];
      if (i + 1 < cells.size() && cells[i].size() < widths_[i]) {
        std::cout << std::string(widths_[i] - cells[i].size(), ' ');
      } else if (i + 1 < cells.size()) {
        std::cout << "  ";
      }
    }
    std::cout << "\n" << std::flush;
  }
  if (csv_open_) {
    for (size_t i = 0; i < cells.size(); ++i) {
      csv_ << cells[i] << (i + 1 < cells.size() ? "," : "\n");
    }
    csv_.flush();
  }
}

std::string TableWriter::fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TableWriter::scientific(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

bool write_trace_csv(const std::string& path,
                     const std::vector<std::pair<std::string, const metrics::RunTrace*>>& series) {
  bool any = false;
  for (const auto& [label, trace] : series) {
    any = any || (trace != nullptr && trace->enabled());
  }
  if (!any) {
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f,
               "series,t_days,damaged_fraction,afp_to_date,successful_polls,"
               "inquorate_polls,alarms,repairs,loyal_effort_s,adversary_effort_s,"
               "online_fraction,departures,recoveries,mean_recovery_days\n");
  for (const auto& [label, trace] : series) {
    if (trace == nullptr || !trace->enabled()) {
      continue;
    }
    for (const metrics::TracePoint& p : trace->points) {
      std::fprintf(f,
                   "%s,%.6f,%.9g,%.9g,%llu,%llu,%llu,%llu,%.9g,%.9g,%.9g,%llu,%llu,%.9g\n",
                   label.c_str(), p.t.to_days(), p.damaged_fraction, p.afp_to_date,
                   static_cast<unsigned long long>(p.successful_polls),
                   static_cast<unsigned long long>(p.inquorate_polls),
                   static_cast<unsigned long long>(p.alarms),
                   static_cast<unsigned long long>(p.repairs), p.loyal_effort_seconds,
                   p.adversary_effort_seconds, p.online_fraction,
                   static_cast<unsigned long long>(p.departures),
                   static_cast<unsigned long long>(p.recoveries), p.mean_recovery_days);
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace lockss::experiment
