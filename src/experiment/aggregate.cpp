#include "experiment/aggregate.hpp"

#include <algorithm>
#include <cassert>

namespace lockss::experiment {

Aggregate aggregate(const std::vector<double>& values) {
  Aggregate out;
  if (values.empty()) {
    return out;
  }
  out.n = values.size();
  out.min = *std::min_element(values.begin(), values.end());
  out.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  out.mean = sum / static_cast<double>(values.size());
  return out;
}

std::vector<RunResult> run_replicated(const ScenarioConfig& config, uint32_t seeds) {
  std::vector<RunResult> runs;
  runs.reserve(seeds);
  for (uint32_t s = 0; s < seeds; ++s) {
    ScenarioConfig c = config;
    c.seed = config.seed + s;
    runs.push_back(run_scenario(c));
  }
  return runs;
}

RunResult combine_results(const std::vector<RunResult>& parts) {
  assert(!parts.empty());
  RunResult out;
  out.report.duration = parts.front().report.duration;
  double afp_sum = 0.0;
  double gap_weighted = 0.0;
  double gap_weight = 0.0;
  for (const RunResult& part : parts) {
    const metrics::MetricsReport& r = part.report;
    afp_sum += r.access_failure_probability;
    out.report.successful_polls += r.successful_polls;
    out.report.inquorate_polls += r.inquorate_polls;
    out.report.alarms += r.alarms;
    out.report.repairs += r.repairs;
    out.report.damage_events += r.damage_events;
    out.report.loyal_effort_seconds += r.loyal_effort_seconds;
    out.report.adversary_effort_seconds += r.adversary_effort_seconds;
    // mean_success_gap is duration*replicas/successes per part, so the
    // success-weighted mean reconstructs duration*total_replicas/total_successes.
    const double w = static_cast<double>(r.successful_polls);
    gap_weighted += r.mean_success_gap_days * w;
    gap_weight += w;
    out.polls_started += part.polls_started;
    out.solicitations_sent += part.solicitations_sent;
    out.messages_delivered += part.messages_delivered;
    out.messages_filtered += part.messages_filtered;
    out.adversary_invitations += part.adversary_invitations;
    out.adversary_admissions += part.adversary_admissions;
  }
  out.report.access_failure_probability = afp_sum / static_cast<double>(parts.size());
  out.report.mean_success_gap_days = gap_weight > 0.0 ? gap_weighted / gap_weight : 0.0;
  out.report.effort_per_successful_poll =
      out.report.successful_polls > 0
          ? out.report.loyal_effort_seconds / static_cast<double>(out.report.successful_polls)
          : 0.0;
  out.report.cost_ratio = out.report.loyal_effort_seconds > 0.0
                              ? out.report.adversary_effort_seconds /
                                    out.report.loyal_effort_seconds
                              : 0.0;
  return out;
}

Aggregate aggregate_metric(const std::vector<RunResult>& runs,
                           const std::function<double(const RunResult&)>& metric) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const RunResult& run : runs) {
    values.push_back(metric(run));
  }
  return aggregate(values);
}

RelativeMetrics relative_metrics(const RunResult& attack, const RunResult& baseline) {
  RelativeMetrics out;
  out.access_failure = attack.report.access_failure_probability;
  if (baseline.report.mean_success_gap_days > 0.0 && attack.report.mean_success_gap_days > 0.0) {
    out.delay_ratio =
        attack.report.mean_success_gap_days / baseline.report.mean_success_gap_days;
  } else if (attack.report.successful_polls == 0 && baseline.report.successful_polls > 0) {
    // Nothing ever succeeded under attack: the delay is unbounded; report
    // the ratio as if exactly one poll had succeeded (a lower bound).
    out.delay_ratio = static_cast<double>(baseline.report.successful_polls);
  }
  if (baseline.report.effort_per_successful_poll > 0.0 &&
      attack.report.effort_per_successful_poll > 0.0) {
    out.friction =
        attack.report.effort_per_successful_poll / baseline.report.effort_per_successful_poll;
  }
  out.cost_ratio = attack.report.cost_ratio;
  return out;
}

}  // namespace lockss::experiment
