#include "experiment/aggregate.hpp"

#include <algorithm>
#include <cassert>

#include "experiment/runner.hpp"

namespace lockss::experiment {

Aggregate aggregate(const std::vector<double>& values) {
  Aggregate out;
  if (values.empty()) {
    return out;
  }
  out.n = values.size();
  out.min = *std::min_element(values.begin(), values.end());
  out.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  out.mean = sum / static_cast<double>(values.size());
  return out;
}

std::vector<RunResult> run_replicated(const ScenarioConfig& config, uint32_t seeds) {
  // Replicated runs are independent; fan them out across the default worker
  // pool. Results come back in seed order whatever the completion order.
  std::vector<ScenarioConfig> jobs;
  jobs.reserve(seeds);
  for (uint32_t s = 0; s < seeds; ++s) {
    ScenarioConfig c = config;
    c.seed = config.seed + s;
    jobs.push_back(c);
  }
  return run_grid(jobs);
}

namespace {

RunResult combine_range(const RunResult* parts, size_t count) {
  assert(count > 0);
  RunResult out;
  out.report.duration = parts[0].report.duration;
  {
    // Pointwise trace merge (disabled unless every part carries one).
    std::vector<const metrics::RunTrace*> traces;
    traces.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      traces.push_back(&parts[i].trace);
    }
    out.trace = metrics::merge_traces(traces);
  }
  double afp_sum = 0.0;
  double gap_weighted = 0.0;
  double gap_weight = 0.0;
  double availability_sum = 0.0;
  double recovery_weighted = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const RunResult& part = parts[i];
    const metrics::MetricsReport& r = part.report;
    afp_sum += r.access_failure_probability;
    out.report.successful_polls += r.successful_polls;
    out.report.inquorate_polls += r.inquorate_polls;
    out.report.alarms += r.alarms;
    out.report.repairs += r.repairs;
    out.report.damage_events += r.damage_events;
    out.report.loyal_effort_seconds += r.loyal_effort_seconds;
    out.report.adversary_effort_seconds += r.adversary_effort_seconds;
    // mean_success_gap is duration*replicas/successes per part, so the
    // success-weighted mean reconstructs duration*total_replicas/total_successes.
    const double w = static_cast<double>(r.successful_polls);
    gap_weighted += r.mean_success_gap_days * w;
    gap_weight += w;
    out.polls_started += part.polls_started;
    out.solicitations_sent += part.solicitations_sent;
    out.messages_delivered += part.messages_delivered;
    out.messages_filtered += part.messages_filtered;
    out.adversary_invitations += part.adversary_invitations;
    out.adversary_admissions += part.adversary_admissions;
    out.events_processed += part.events_processed;
    out.peak_queue_depth = std::max(out.peak_queue_depth, part.peak_queue_depth);
    out.churn_departures += part.churn_departures;
    out.churn_recoveries += part.churn_recoveries;
    out.churn_arrivals += part.churn_arrivals;
    availability_sum += part.availability_mean;
    recovery_weighted += part.mean_recovery_days * static_cast<double>(part.churn_recoveries);
    for (size_t a = 0; a < out.operator_interventions.size(); ++a) {
      out.operator_interventions[a] += part.operator_interventions[a];
    }
    out.policy_triggers += part.policy_triggers;
    for (size_t a = 0; a < out.policy_actions.size(); ++a) {
      out.policy_actions[a] += part.policy_actions[a];
    }
    out.faults_lost += part.faults_lost;
    out.faults_burst_dropped += part.faults_burst_dropped;
    out.faults_duplicated += part.faults_duplicated;
    out.faults_jittered += part.faults_jittered;
    out.ack_timeouts += part.ack_timeouts;
    out.vote_timeouts += part.vote_timeouts;
    out.solicitation_retries += part.solicitation_retries;
    for (size_t a = 0; a < out.polls_aborted.size(); ++a) {
      out.polls_aborted[a] += part.polls_aborted[a];
    }
    out.sessions_live_at_end += part.sessions_live_at_end;
    out.stale_sessions_at_end += part.stale_sessions_at_end;
    out.reservations_beyond_horizon += part.reservations_beyond_horizon;
  }
  // Parts share one duration and population, so availability averages;
  // recovery times pool weighted by how many recoveries each part saw.
  out.availability_mean = availability_sum / static_cast<double>(count);
  out.mean_recovery_days =
      out.churn_recoveries > 0
          ? recovery_weighted / static_cast<double>(out.churn_recoveries)
          : 0.0;
  out.report.access_failure_probability = afp_sum / static_cast<double>(count);
  out.report.mean_success_gap_days = gap_weight > 0.0 ? gap_weighted / gap_weight : 0.0;
  out.report.effort_per_successful_poll =
      out.report.successful_polls > 0
          ? out.report.loyal_effort_seconds / static_cast<double>(out.report.successful_polls)
          : 0.0;
  out.report.cost_ratio = out.report.loyal_effort_seconds > 0.0
                              ? out.report.adversary_effort_seconds /
                                    out.report.loyal_effort_seconds
                              : 0.0;
  return out;
}

}  // namespace

RunResult combine_results(const std::vector<RunResult>& parts) {
  return combine_range(parts.data(), parts.size());
}

RunResult combine_block(const std::vector<RunResult>& grid_runs, size_t block,
                        uint32_t per_block) {
  assert((block + 1) * per_block <= grid_runs.size());
  return combine_range(grid_runs.data() + block * per_block, per_block);
}

std::vector<RunResult> run_replicated_grid(const std::vector<ScenarioConfig>& configs,
                                           uint32_t seeds) {
  assert(seeds > 0);
  std::vector<ScenarioConfig> jobs;
  jobs.reserve(configs.size() * seeds);
  for (const ScenarioConfig& config : configs) {
    for (uint32_t s = 0; s < seeds; ++s) {
      ScenarioConfig c = config;
      c.seed = config.seed + s;
      jobs.push_back(c);
    }
  }
  const std::vector<RunResult> runs = run_grid(jobs);
  std::vector<RunResult> combined;
  combined.reserve(configs.size());
  for (size_t block = 0; block < configs.size(); ++block) {
    combined.push_back(combine_block(runs, block, seeds));
  }
  return combined;
}

std::vector<RunResult> run_layered_replicated_grid(const std::vector<ScenarioConfig>& configs,
                                                   uint32_t layers, uint32_t seeds) {
  assert(seeds > 0);
  std::vector<ScenarioConfig> jobs;
  jobs.reserve(configs.size() * seeds);
  for (const ScenarioConfig& config : configs) {
    for (uint32_t s = 0; s < seeds; ++s) {
      ScenarioConfig c = config;
      c.seed = config.seed + s;
      jobs.push_back(c);
    }
  }
  const std::vector<std::vector<RunResult>> campaigns = run_layered_grid(jobs, layers);
  std::vector<RunResult> combined;
  combined.reserve(configs.size());
  for (size_t block = 0; block < configs.size(); ++block) {
    std::vector<RunResult> parts;
    parts.reserve(static_cast<size_t>(seeds) * layers);
    for (uint32_t s = 0; s < seeds; ++s) {
      const std::vector<RunResult>& campaign = campaigns[block * seeds + s];
      parts.insert(parts.end(), campaign.begin(), campaign.end());
    }
    combined.push_back(combine_results(parts));
  }
  return combined;
}

Aggregate aggregate_metric(const std::vector<RunResult>& runs,
                           const std::function<double(const RunResult&)>& metric) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const RunResult& run : runs) {
    values.push_back(metric(run));
  }
  return aggregate(values);
}

RelativeMetrics relative_metrics(const RunResult& attack, const RunResult& baseline) {
  RelativeMetrics out;
  out.access_failure = attack.report.access_failure_probability;
  if (baseline.report.mean_success_gap_days > 0.0 && attack.report.mean_success_gap_days > 0.0) {
    out.delay_ratio =
        attack.report.mean_success_gap_days / baseline.report.mean_success_gap_days;
  } else if (attack.report.successful_polls == 0 && baseline.report.successful_polls > 0) {
    // Nothing ever succeeded under attack: the delay is unbounded; report
    // the ratio as if exactly one poll had succeeded (a lower bound).
    out.delay_ratio = static_cast<double>(baseline.report.successful_polls);
  }
  if (baseline.report.effort_per_successful_poll > 0.0 &&
      attack.report.effort_per_successful_poll > 0.0) {
    out.friction =
        attack.report.effort_per_successful_poll / baseline.report.effort_per_successful_poll;
  }
  out.cost_ratio = attack.report.cost_ratio;
  return out;
}

}  // namespace lockss::experiment
