// Shared op streams for the substrate before/after benchmarks.
//
// bench/micro_substrates.cpp (google-benchmark, per-op timing) and
// tools/bench_report.cpp (fixed-ops timing recorded in BENCH_sweep.json)
// both measure the dense containers against their preserved *Reference
// seeds. The numbers are only comparable across the two harnesses — and
// across PRs — while the workloads are *identical*: same population
// shapes, same RNG seeds, same query tables, same per-op probes. Those
// live here, templated over the container type, so neither harness can
// drift on its own.
//
// Access patterns are deliberately randomized: sequential probes are
// branch-predictable and flatter the ordered seed containers (a map walk
// whose comparisons always predict is nearly free); real dispatch arrives
// in whatever order the network delivers.
#ifndef LOCKSS_BENCH_SUPPORT_SUBSTRATE_WORKLOADS_HPP_
#define LOCKSS_BENCH_SUPPORT_SUBSTRATE_WORKLOADS_HPP_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/node_id.hpp"
#include "protocol/messages.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace lockss::bench_support {

// Precomputed query tables; probe loops index with `i & kQueryMask`.
constexpr uint32_t kQueryTableSize = 4096;
constexpr uint32_t kQueryMask = kQueryTableSize - 1;

// --- KnownPeers::standing ----------------------------------------------------

template <typename KnownPeersT>
void populate_graded(KnownPeersT& known, uint32_t peers) {
  for (uint32_t p = 0; p < peers; ++p) {
    known.record_service_supplied(net::NodeId{p}, sim::SimTime::days(p % 90));
  }
}

inline std::vector<net::NodeId> standing_queries(uint32_t peers) {
  sim::Rng rng(17);
  std::vector<net::NodeId> queries;
  queries.reserve(kQueryTableSize);
  for (uint32_t q = 0; q < kQueryTableSize; ++q) {
    queries.push_back(net::NodeId{static_cast<uint32_t>(rng.index(peers))});
  }
  return queries;
}

template <typename KnownPeersT>
auto standing_probe(const KnownPeersT& known, const std::vector<net::NodeId>& queries,
                    uint64_t i) {
  return known.standing(queries[i & kQueryMask],
                        sim::SimTime::days(100 + static_cast<double>(i & 255)));
}

// --- KnownPeers grade transitions -------------------------------------------
// Caller owns the rng (seed 23) and passes a monotonically increasing day.

constexpr uint64_t kTransitionRngSeed = 23;

template <typename KnownPeersT>
void transition_op(KnownPeersT& known, sim::Rng& rng, uint32_t peers, int64_t day) {
  const net::NodeId peer{static_cast<uint32_t>(rng.index(peers))};
  switch (rng.index(3)) {
    case 0:
      known.record_service_supplied(peer, sim::SimTime::days(static_cast<double>(day)));
      break;
    case 1:
      known.record_service_consumed(peer, sim::SimTime::days(static_cast<double>(day)));
      break;
    case 2:
      known.record_misbehavior(peer, sim::SimTime::days(static_cast<double>(day)));
      break;
  }
}

// --- Session-table lookup ----------------------------------------------------
// A peer's live-session census: a handful of overlapping polls, hammered by
// message dispatch — the find-by-PollId rate dwarfs insert/erase by orders
// of magnitude. ~7/8 hits on live sessions, 1/8 misses (retired polls,
// flood forgeries).

constexpr uint32_t kLiveSessions = 12;

template <typename TableT, typename MakeSession>
std::vector<protocol::PollId> populate_sessions(TableT& table, const MakeSession& make) {
  std::vector<protocol::PollId> ids;
  for (uint32_t s = 0; s < kLiveSessions; ++s) {
    const protocol::PollId id = protocol::make_poll_id(net::NodeId{40 + s}, 7000 + s);
    ids.push_back(id);
    table.insert(id, make());
  }
  return ids;
}

inline std::vector<protocol::PollId> session_queries(
    const std::vector<protocol::PollId>& live) {
  sim::Rng rng(31);
  std::vector<protocol::PollId> queries;
  queries.reserve(kQueryTableSize);
  for (uint32_t q = 0; q < kQueryTableSize; ++q) {
    queries.push_back(rng.bernoulli(0.125) ? protocol::make_poll_id(net::NodeId{9999}, q)
                                           : live[rng.index(live.size())]);
  }
  return queries;
}

template <typename TableT>
auto lookup_probe(const TableT& table, const std::vector<protocol::PollId>& queries,
                  uint64_t i) {
  return table.find(queries[i & kQueryMask]);
}

}  // namespace lockss::bench_support

#endif  // LOCKSS_BENCH_SUPPORT_SUBSTRATE_WORKLOADS_HPP_
