// Shared workload for the message-dispatch micro-benchmarks.
//
// PR 4 replaced the dynamic_cast chain in Peer::handle_message (one RTTI
// comparison per candidate type, ~4 deep on average over the protocol mix)
// with a MessageKind tag switch. Both dispatchers live here so
// bench/micro_substrates (google-benchmark) and tools/bench_report (JSON
// trajectory) measure the identical op stream: a deterministic shuffle of
// the seven protocol message types weighted roughly like a live scenario's
// delivery mix (polls and acks dominate; repairs are rare).
#ifndef LOCKSS_BENCH_SUPPORT_MESSAGE_DISPATCH_HPP_
#define LOCKSS_BENCH_SUPPORT_MESSAGE_DISPATCH_HPP_

#include <memory>
#include <vector>

#include "protocol/messages.hpp"
#include "sim/rng.hpp"

namespace lockss::bench_support {

// Weighted mix: Poll-heavy front half of the exchange, few repairs — the
// shape the admission-control path sees under attack.
inline std::vector<net::MessagePtr> make_message_stream(size_t count, uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<net::MessagePtr> stream;
  stream.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    switch (rng.index(16)) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4:
        stream.push_back(std::make_unique<protocol::PollMsg>());
        break;
      case 5:
      case 6:
      case 7:
      case 8:
        stream.push_back(std::make_unique<protocol::PollAckMsg>());
        break;
      case 9:
      case 10:
        stream.push_back(std::make_unique<protocol::PollProofMsg>());
        break;
      case 11:
      case 12:
        stream.push_back(std::make_unique<protocol::VoteMsg>());
        break;
      case 13:
        stream.push_back(std::make_unique<protocol::RepairRequestMsg>());
        break;
      case 14:
        stream.push_back(std::make_unique<protocol::RepairMsg>());
        break;
      default:
        stream.push_back(std::make_unique<protocol::EvaluationReceiptMsg>());
        break;
    }
  }
  return stream;
}

// The seed dispatcher: the dynamic_cast chain Peer::handle_message used
// through PR 3, preserved verbatim for the before/after measurement.
inline int dispatch_reference(net::Message& message) {
  auto* base = dynamic_cast<protocol::ProtocolMessage*>(&message);
  if (base == nullptr) {
    return 0;
  }
  if (dynamic_cast<protocol::PollMsg*>(base) != nullptr) {
    return 1;
  }
  if (dynamic_cast<protocol::PollAckMsg*>(base) != nullptr) {
    return 2;
  }
  if (dynamic_cast<protocol::PollProofMsg*>(base) != nullptr) {
    return 3;
  }
  if (dynamic_cast<protocol::VoteMsg*>(base) != nullptr) {
    return 4;
  }
  if (dynamic_cast<protocol::RepairRequestMsg*>(base) != nullptr) {
    return 5;
  }
  if (dynamic_cast<protocol::RepairMsg*>(base) != nullptr) {
    return 6;
  }
  if (dynamic_cast<protocol::EvaluationReceiptMsg*>(base) != nullptr) {
    return 7;
  }
  return 0;
}

// The PR 4 dispatcher: one virtual tag load and a dense switch.
inline int dispatch_kind(net::Message& message) {
  switch (message.kind()) {
    case net::MessageKind::kPoll:
      return 1;
    case net::MessageKind::kPollAck:
      return 2;
    case net::MessageKind::kPollProof:
      return 3;
    case net::MessageKind::kVote:
      return 4;
    case net::MessageKind::kRepairRequest:
      return 5;
    case net::MessageKind::kRepair:
      return 6;
    case net::MessageKind::kEvaluationReceipt:
      return 7;
    case net::MessageKind::kOther:
      return 0;
  }
  return 0;
}

}  // namespace lockss::bench_support

#endif  // LOCKSS_BENCH_SUPPORT_MESSAGE_DISPATCH_HPP_
