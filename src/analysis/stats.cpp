#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lockss::analysis {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const {
  if (count_ < 2) {
    return 0.0;
  }
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, uint32_t bins)
    : lo_(lo), width_((hi - lo) / std::max(1u, bins)), counts_(std::max(1u, bins), 0) {}

void Histogram::add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<uint64_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<size_t>(bin)];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) {
    return lo_;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double running = static_cast<double>(underflow_);
  if (target <= running) {
    return lo_;
  }
  for (uint32_t b = 0; b < bins(); ++b) {
    const auto in_bin = static_cast<double>(counts_[b]);
    if (running + in_bin >= target && in_bin > 0) {
      const double frac = (target - running) / in_bin;
      return bin_lo(b) + frac * width_;
    }
    running += in_bin;
  }
  return bin_hi(bins() - 1);
}

std::string Histogram::render(uint32_t width) const {
  uint64_t peak = 1;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[160];
  if (underflow_ > 0) {
    std::snprintf(line, sizeof line, "%12s < %-9.3g %8llu\n", "", lo_,
                  static_cast<unsigned long long>(underflow_));
    out += line;
  }
  for (uint32_t b = 0; b < bins(); ++b) {
    if (counts_[b] == 0) {
      continue;
    }
    const auto bar = static_cast<uint32_t>(counts_[b] * width / peak);
    std::snprintf(line, sizeof line, "[%9.3g, %9.3g) %8llu %s\n", bin_lo(b), bin_hi(b),
                  static_cast<unsigned long long>(counts_[b]),
                  std::string(std::max(1u, bar), '#').c_str());
    out += line;
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof line, "%12s >= %-8.3g %8llu\n", "", bin_hi(bins() - 1),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

void TimeWeighted::set(sim::SimTime now, double value) {
  if (!started_) {
    started_ = true;
    start_ = now;
  } else if (now > last_) {
    integral_ += value_ * (now - last_).to_seconds();
  }
  last_ = now;
  value_ = value;
}

double TimeWeighted::mean(sim::SimTime end) const {
  if (!started_ || end <= start_) {
    return 0.0;
  }
  double integral = integral_;
  if (end > last_) {
    integral += value_ * (end - last_).to_seconds();
  }
  return integral / (end - start_).to_seconds();
}

}  // namespace lockss::analysis
