// Streaming statistics for experiment post-processing.
//
// The experiment harness reports §6.1 metrics per run; these helpers support
// aggregation across runs and within time series without storing samples:
//
//   * RunningStats — Welford-style streaming mean/variance/min/max;
//   * Histogram   — fixed-width bins with underflow/overflow, quantile
//                   estimates, and text rendering for bench output;
//   * TimeWeighted — time-weighted mean of a step function (the same
//                   integral the metrics collector uses for the
//                   access-failure probability, reusable by callers).
//
// All of it is exact, deterministic, and allocation-free after construction
// (Histogram allocates its bins once).
#ifndef LOCKSS_ANALYSIS_STATS_HPP_
#define LOCKSS_ANALYSIS_STATS_HPP_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace lockss::analysis {

// Welford's online algorithm: numerically stable single-pass mean/variance.
class RunningStats {
 public:
  void add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  // Half-width of the normal-approximation 95% confidence interval for the
  // mean (1.96 sigma / sqrt(n)); 0 with fewer than two samples.
  double ci95_half_width() const;

  // Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width histogram over [lo, hi) with `bins` bins plus underflow and
// overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, uint32_t bins);

  void add(double x);

  uint64_t count() const { return count_; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t bin_count(uint32_t bin) const { return counts_.at(bin); }
  uint32_t bins() const { return static_cast<uint32_t>(counts_.size()); }
  double bin_lo(uint32_t bin) const { return lo_ + width_ * bin; }
  double bin_hi(uint32_t bin) const { return lo_ + width_ * (bin + 1); }

  // Quantile estimate by linear interpolation within the containing bin.
  // q in [0, 1]; underflow/overflow samples clamp to the range edges.
  double quantile(double q) const;

  // Multi-line text rendering (one row per non-empty bin, `#` bars scaled to
  // `width` characters), for bench/tool output.
  std::string render(uint32_t width = 40) const;

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
};

// Time-weighted mean of a right-continuous step function: call set(t, v) at
// each change; value(t_end) integrates up to t_end.
class TimeWeighted {
 public:
  void set(sim::SimTime now, double value);
  // Time-weighted mean over [first set, end].
  double mean(sim::SimTime end) const;
  double current() const { return value_; }

 private:
  bool started_ = false;
  sim::SimTime last_;
  double value_ = 0.0;
  double integral_ = 0.0;
  sim::SimTime start_;
};

}  // namespace lockss::analysis

#endif  // LOCKSS_ANALYSIS_STATS_HPP_
