// Gnuplot script emission for the figure benches.
//
// Every fig* bench can mirror its rows to CSV (--csv); this helper emits a
// companion .gp script that re-draws the paper's figure from that CSV with
// the paper's axes (log-scale y for access-failure plots, log-scale x for
// the duration sweeps). Usage from a bench:
//
//   analysis::GnuplotSpec spec;
//   spec.title = "Figure 3: access failure under pipe stoppage";
//   spec.csv_path = profile.csv;
//   spec.x_label = "Attack duration (days)";  spec.log_x = true;
//   spec.y_label = "Access failure probability"; spec.log_y = true;
//   spec.series = {"10%", "40%", "70%", "100%"};
//   analysis::write_gnuplot(spec, profile.csv + ".gp");
//
// The scripts run offline with stock gnuplot: `gnuplot fig3.csv.gp`.
#ifndef LOCKSS_ANALYSIS_GNUPLOT_HPP_
#define LOCKSS_ANALYSIS_GNUPLOT_HPP_

#include <string>
#include <vector>

namespace lockss::analysis {

struct GnuplotSpec {
  std::string title;
  std::string csv_path;    // data file the script plots (CSV with header)
  std::string x_label;
  std::string y_label;
  bool log_x = false;
  bool log_y = false;
  // Column labels for series 2..N+1 of the CSV (column 1 is x).
  std::vector<std::string> series;
  // Output image name inside the script (png); defaults to csv_path + ".png".
  std::string output_png;
};

// Renders the script text.
std::string gnuplot_script(const GnuplotSpec& spec);

// Writes the script next to the CSV; returns false (and does nothing) if
// spec.csv_path is empty or the file cannot be created.
bool write_gnuplot(const GnuplotSpec& spec, const std::string& path);

}  // namespace lockss::analysis

#endif  // LOCKSS_ANALYSIS_GNUPLOT_HPP_
