// Undetected storage-failure injection ("bit rot", §3.2, §7.1).
//
// §7.1: "Our simulated peers suffer random storage damage at rates of one
// block in 1 to 5 disk years (50 AUs per disk)." DamageProcess turns that
// into a per-peer Poisson process whose rate scales with the number of disks
// the peer's collection occupies, corrupting one uniformly-random block of a
// uniformly-random AU at each arrival.
#ifndef LOCKSS_STORAGE_DAMAGE_HPP_
#define LOCKSS_STORAGE_DAMAGE_HPP_

#include <functional>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "storage/storage_node.hpp"

namespace lockss::storage {

struct DamageConfig {
  // Mean time between block-damage events per disk, in disk-years. §7.1
  // sweeps 1..5; the attack experiments pin 5.
  double mean_disk_years_between_failures = 5.0;
  // §6.3 / §7.1: 50 AUs per disk.
  double aus_per_disk = 50.0;
};

// Notification invoked after a block has been corrupted; the peer/metrics
// layers use it to account damaged replicas. Arguments: AU and block index.
using DamageCallback = std::function<void(AuId, uint32_t)>;

class DamageProcess {
 public:
  // Starts injecting damage into `node` immediately; the process lives for
  // the whole simulation (damage never stops, attacks or not).
  DamageProcess(sim::Simulator& simulator, sim::Rng rng, DamageConfig config, StorageNode& node,
                DamageCallback on_damage = {});

  // Events injected so far.
  uint64_t damage_events() const { return damage_events_; }

  // Mean time between damage events for this node's collection size.
  sim::SimTime mean_interarrival() const;

 private:
  void schedule_next();
  void inject();

  sim::Simulator& simulator_;
  sim::Rng rng_;
  DamageConfig config_;
  StorageNode& node_;
  DamageCallback on_damage_;
  uint64_t damage_events_ = 0;
};

}  // namespace lockss::storage

#endif  // LOCKSS_STORAGE_DAMAGE_HPP_
