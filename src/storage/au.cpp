#include "storage/au.hpp"

// AuId/AuSpec are header-only; this translation unit anchors the library.
