// One peer's replica of one AU.
//
// Stores a content word per block. Undamaged blocks hold the canonical
// content; storage failures overwrite a block with a corrupt word. Repair
// (§4.3) copies a block from another replica. The replica also computes the
// running block-hash chains that make up votes (§4.1).
#ifndef LOCKSS_STORAGE_REPLICA_HPP_
#define LOCKSS_STORAGE_REPLICA_HPP_

#include <cstdint>
#include <vector>

#include "crypto/digest.hpp"
#include "storage/au.hpp"

namespace lockss::storage {

class AuReplica {
 public:
  AuReplica(AuId au, AuSpec spec);

  AuId au() const { return au_; }
  const AuSpec& spec() const { return spec_; }

  uint64_t block_content(uint32_t block) const { return blocks_[block]; }
  void set_block_content(uint32_t block, uint64_t content);

  // Damage helpers ---------------------------------------------------------
  bool block_damaged(uint32_t block) const {
    return blocks_[block] != canonical_content(au_, block);
  }
  // A replica is "damaged" for the access-failure metric if any block
  // differs from the canonical content (§6.1: a reader fetching it would
  // obtain a damaged AU).
  bool damaged() const { return damaged_blocks_ != 0; }
  uint32_t damaged_block_count() const { return damaged_blocks_; }

  // Overwrites `block` with a corrupt word derived from `entropy` (never the
  // canonical word). Returns true if the block changed from good to damaged.
  bool corrupt_block(uint32_t block, uint64_t entropy);

  // Restores the canonical content (used by tests and by publisher reload).
  void restore_block(uint32_t block);

  // Vote computation (§4.1): hash the nonce, then the AU block by block,
  // emitting the running digest at each block boundary.
  std::vector<crypto::Digest64> vote_hashes(crypto::Digest64 nonce) const;

  // The running hash the poller expects for a single block, given the chain
  // digest before the block. Used by block-at-a-time evaluation (§4.3).
  crypto::Digest64 expected_block_hash(crypto::Digest64 prev, uint32_t block) const {
    return crypto::running_block_hash(prev, blocks_[block]);
  }

 private:
  AuId au_;
  AuSpec spec_;
  std::vector<uint64_t> blocks_;
  uint32_t damaged_blocks_ = 0;
};

}  // namespace lockss::storage

#endif  // LOCKSS_STORAGE_REPLICA_HPP_
