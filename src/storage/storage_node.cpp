#include "storage/storage_node.hpp"

#include <cassert>

namespace lockss::storage {

AuReplica& StorageNode::add_replica(AuId au, AuSpec spec) {
  assert(au.valid());
  if (au.value >= replicas_.size()) {
    replicas_.resize(au.value + 1);
  }
  assert(replicas_[au.value] == nullptr && "replica already present");
  replicas_[au.value] = std::make_unique<AuReplica>(au, spec);
  ++replica_count_;
  return *replicas_[au.value];
}

AuReplica& StorageNode::replica(AuId au) {
  assert(has_replica(au));
  return *replicas_[au.value];
}

const AuReplica& StorageNode::replica(AuId au) const {
  assert(has_replica(au));
  return *replicas_[au.value];
}

std::vector<AuId> StorageNode::au_ids() const {
  std::vector<AuId> ids;
  ids.reserve(replica_count_);
  for (const auto& replica : replicas_) {
    if (replica != nullptr) {
      ids.push_back(replica->au());
    }
  }
  return ids;
}

size_t StorageNode::damaged_replica_count() const {
  size_t count = 0;
  for (const auto& replica : replicas_) {
    if (replica != nullptr && replica->damaged()) {
      ++count;
    }
  }
  return count;
}

}  // namespace lockss::storage
