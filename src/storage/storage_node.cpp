#include "storage/storage_node.hpp"

#include <cassert>

namespace lockss::storage {

AuReplica& StorageNode::add_replica(AuId au, AuSpec spec) {
  auto [it, inserted] = replicas_.try_emplace(au, au, spec);
  assert(inserted && "replica already present");
  (void)inserted;
  return it->second;
}

AuReplica& StorageNode::replica(AuId au) {
  auto it = replicas_.find(au);
  assert(it != replicas_.end());
  return it->second;
}

const AuReplica& StorageNode::replica(AuId au) const {
  auto it = replicas_.find(au);
  assert(it != replicas_.end());
  return it->second;
}

std::vector<AuId> StorageNode::au_ids() const {
  std::vector<AuId> ids;
  ids.reserve(replicas_.size());
  for (const auto& [id, replica] : replicas_) {
    ids.push_back(id);
  }
  return ids;
}

size_t StorageNode::damaged_replica_count() const {
  size_t count = 0;
  for (const auto& [id, replica] : replicas_) {
    if (replica.damaged()) {
      ++count;
    }
  }
  return count;
}

}  // namespace lockss::storage
