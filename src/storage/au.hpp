// Archival Units (AUs) — the unit of preservation (§2: "a year's run of an
// on-line journal, in our target application").
//
// Every peer preserving an AU holds a full replica. Block content is
// synthetic: the canonical content of block i of AU a is a fixed function of
// (a, i), so any two undamaged replicas agree bit-for-bit, and a damaged
// block (bit rot, §3.2) is any other value. Hashing costs are charged against
// the AU's *logical* size (0.5 GB in §6.3), not the simulation's compact
// representation.
#ifndef LOCKSS_STORAGE_AU_HPP_
#define LOCKSS_STORAGE_AU_HPP_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "crypto/digest.hpp"

namespace lockss::storage {

struct AuId {
  uint32_t value = UINT32_MAX;

  static constexpr AuId invalid() { return AuId{UINT32_MAX}; }
  constexpr bool valid() const { return value != UINT32_MAX; }
  friend constexpr auto operator<=>(const AuId&, const AuId&) = default;
  std::string to_string() const { return "au" + std::to_string(value); }
};

struct AuSpec {
  // §6.3: "we assume that each AU contains 0.5 GBytes (a large AU in
  // practice)".
  uint64_t size_bytes = 512ull * 1024 * 1024;
  // Number of content blocks; votes carry one running hash per block and
  // repairs are block-granular (§4.3). 128 blocks of 4 MiB keeps vote
  // messages and tally work realistic without per-byte simulation.
  uint32_t block_count = 128;

  uint64_t block_size_bytes() const { return size_bytes / block_count; }
};

// Canonical (publisher-correct) content word of one block.
constexpr uint64_t canonical_content(AuId au, uint32_t block) {
  return crypto::mix64(0xA0C597B3D6E1F845ull ^ (static_cast<uint64_t>(au.value) << 32) ^ block);
}

}  // namespace lockss::storage

template <>
struct std::hash<lockss::storage::AuId> {
  size_t operator()(const lockss::storage::AuId& id) const noexcept {
    return std::hash<uint32_t>{}(id.value);
  }
};

#endif  // LOCKSS_STORAGE_AU_HPP_
