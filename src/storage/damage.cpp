#include "storage/damage.hpp"

#include <cassert>

namespace lockss::storage {

DamageProcess::DamageProcess(sim::Simulator& simulator, sim::Rng rng, DamageConfig config,
                             StorageNode& node, DamageCallback on_damage)
    : simulator_(simulator),
      rng_(rng),
      config_(config),
      node_(node),
      on_damage_(std::move(on_damage)) {
  schedule_next();
}

sim::SimTime DamageProcess::mean_interarrival() const {
  const double disks =
      static_cast<double>(node_.replica_count()) / config_.aus_per_disk;
  if (disks <= 0.0) {
    return sim::SimTime::max();
  }
  return sim::SimTime::years(config_.mean_disk_years_between_failures / disks);
}

void DamageProcess::schedule_next() {
  const sim::SimTime mean = mean_interarrival();
  if (mean == sim::SimTime::max()) {
    // Empty collection: re-check for replicas periodically (cheap).
    simulator_.schedule_in(sim::SimTime::days(30), [this] { schedule_next(); });
    return;
  }
  simulator_.schedule_in(rng_.exponential_time(mean), [this] { inject(); });
}

void DamageProcess::inject() {
  if (node_.replica_count() > 0) {
    const auto ids = node_.au_ids();
    const AuId au = ids[rng_.index(ids.size())];
    AuReplica& replica = node_.replica(au);
    const uint32_t block = static_cast<uint32_t>(rng_.index(replica.spec().block_count));
    replica.corrupt_block(block, rng_.next_u64());
    ++damage_events_;
    if (on_damage_) {
      on_damage_(au, block);
    }
  }
  schedule_next();
}

}  // namespace lockss::storage
