#include "storage/replica.hpp"

#include <cassert>

namespace lockss::storage {

AuReplica::AuReplica(AuId au, AuSpec spec) : au_(au), spec_(spec) {
  blocks_.reserve(spec_.block_count);
  for (uint32_t b = 0; b < spec_.block_count; ++b) {
    blocks_.push_back(canonical_content(au_, b));
  }
}

void AuReplica::set_block_content(uint32_t block, uint64_t content) {
  assert(block < spec_.block_count);
  const bool was_damaged = block_damaged(block);
  blocks_[block] = content;
  const bool now_damaged = block_damaged(block);
  if (was_damaged && !now_damaged) {
    --damaged_blocks_;
  } else if (!was_damaged && now_damaged) {
    ++damaged_blocks_;
  }
}

bool AuReplica::corrupt_block(uint32_t block, uint64_t entropy) {
  assert(block < spec_.block_count);
  const bool was_damaged = block_damaged(block);
  uint64_t corrupt = crypto::mix64(entropy ^ blocks_[block]);
  if (corrupt == canonical_content(au_, block)) {
    ++corrupt;  // never corrupt *to* the canonical word
  }
  set_block_content(block, corrupt);
  return !was_damaged;
}

void AuReplica::restore_block(uint32_t block) {
  set_block_content(block, canonical_content(au_, block));
}

std::vector<crypto::Digest64> AuReplica::vote_hashes(crypto::Digest64 nonce) const {
  std::vector<crypto::Digest64> hashes;
  hashes.reserve(spec_.block_count);
  crypto::Digest64 running = crypto::vote_chain_seed(nonce);
  for (uint32_t b = 0; b < spec_.block_count; ++b) {
    running = crypto::running_block_hash(running, blocks_[b]);
    hashes.push_back(running);
  }
  return hashes;
}

}  // namespace lockss::storage
