// A peer's storage subsystem: the set of AU replicas it preserves.
//
// §6.3 models 50 AUs per disk; a peer preserving N AUs therefore owns N/50
// disks, and storage failures arrive per disk. StorageNode exposes the
// replica map plus aggregate damage queries used by the metrics module.
#ifndef LOCKSS_STORAGE_STORAGE_NODE_HPP_
#define LOCKSS_STORAGE_STORAGE_NODE_HPP_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/au.hpp"
#include "storage/replica.hpp"

namespace lockss::storage {

class StorageNode {
 public:
  // Adds a fresh (publisher-correct) replica. Returns a stable reference.
  AuReplica& add_replica(AuId au, AuSpec spec);

  bool has_replica(AuId au) const {
    return au.value < replicas_.size() && replicas_[au.value] != nullptr;
  }
  AuReplica& replica(AuId au);
  const AuReplica& replica(AuId au) const;

  size_t replica_count() const { return replica_count_; }
  std::vector<AuId> au_ids() const;

  // Number of replicas currently damaged (any block differing from
  // canonical); the numerator of the instantaneous access-failure fraction.
  size_t damaged_replica_count() const;

 private:
  // Dense by AuId.value (AU ids are small sequential integers in every
  // deployment): replica(au) — on the hot path of every vote hash and
  // damage refresh — is one vector index instead of a map walk. Entries
  // are heap-boxed so references stay stable across add_replica growth;
  // unjoined slots are null. Index order doubles as the deterministic
  // iteration order the old std::map provided.
  std::vector<std::unique_ptr<AuReplica>> replicas_;
  size_t replica_count_ = 0;
};

}  // namespace lockss::storage

#endif  // LOCKSS_STORAGE_STORAGE_NODE_HPP_
