#include "sim/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace lockss::sim {

std::string SimTime::to_string() const {
  int64_t total_ns = ns_;
  const char* sign = "";
  if (total_ns < 0) {
    sign = "-";
    total_ns = -total_ns;
  }
  const int64_t total_secs = total_ns / 1000000000;
  const int64_t frac_ms = (total_ns % 1000000000) / 1000000;
  const int64_t d = total_secs / 86400;
  const int64_t h = (total_secs % 86400) / 3600;
  const int64_t m = (total_secs % 3600) / 60;
  const int64_t s = total_secs % 60;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%" PRId64 "d %02" PRId64 ":%02" PRId64 ":%02" PRId64 ".%03" PRId64,
                sign, d, h, m, s, frac_ms);
  return buf;
}

}  // namespace lockss::sim
