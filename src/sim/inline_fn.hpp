// Small-buffer-optimized `void()` callable for the event hot path.
//
// Every scheduled event in the simulator carries a callback. The common case
// is a lambda capturing `this` plus a couple of scalars — a few dozen bytes —
// yet `std::function` routes many such captures through the heap. `InlineFn`
// stores callables up to `kInlineBytes` directly inside the object (no
// allocation on construct, move, invoke, or destroy) and falls back to the
// heap only for oversized or potentially-throwing-move captures. Heap
// fallbacks are counted so tests and benches can assert the hot path stays
// allocation-free.
//
// InlineFn is move-only, which lets callbacks own move-only resources
// (e.g. a `unique_ptr` message in flight) without the shared_ptr boxing that
// `std::function`'s copyability requirement forces.
#ifndef LOCKSS_SIM_INLINE_FN_HPP_
#define LOCKSS_SIM_INLINE_FN_HPP_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace lockss::sim {

class InlineFn {
 public:
  // Sized for the repo's largest common capture set (a reference + a message
  // pointer + a handful of ids) with headroom; a 64-byte slot also keeps one
  // event record within two cache lines.
  static constexpr size_t kInlineBytes = 64;

  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for EventFn
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      // The pointer travels in/out of the raw buffer via memcpy: plain
      // assignment through a reinterpret_cast would access a pointer object
      // whose lifetime never began in storage_.
      Fn* heap = new Fn(std::forward<F>(f));
      std::memcpy(storage_, &heap, sizeof(heap));
      ops_ = &kHeapOps<Fn>;
      heap_allocations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  // Releases the stored callable (and any resources its captures own).
  void reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial) {
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

  // Invokes the stored callable. Requires engaged (operator bool).
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  // Test/bench hook: number of callables that did not fit inline and were
  // heap-allocated since process start (or the last reset).
  static uint64_t heap_allocations() {
    return heap_allocations_.load(std::memory_order_relaxed);
  }
  static void reset_heap_allocations() {
    heap_allocations_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs into `to`'s raw storage and destroys the source.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* storage);
    // Trivially copyable + destructible: relocation is a memcpy done at the
    // call site (no indirect call) and destruction is a no-op.
    bool trivial;
  };

  void relocate_from(InlineFn& other) noexcept {
    if (ops_->trivial) {
      std::memcpy(storage_, other.storage_, kInlineBytes);
    } else {
      ops_->relocate(other.storage_, storage_);
    }
    other.ops_ = nullptr;
  }

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* from, void* to) {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>,
  };

  template <typename Fn>
  static Fn* heap_ptr(void* storage) {
    Fn* p;
    std::memcpy(&p, storage, sizeof(p));
    return p;
  }

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* s) { (*heap_ptr<Fn>(s))(); },
      [](void* from, void* to) { std::memcpy(to, from, sizeof(Fn*)); },
      [](void* s) { delete heap_ptr<Fn>(s); },
      false,
  };

  inline static std::atomic<uint64_t> heap_allocations_{0};

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace lockss::sim

#endif  // LOCKSS_SIM_INLINE_FN_HPP_
