// Pending-event set for the discrete-event engine.
//
// Events live in a slab of pooled records addressed by a generation-checked
// (index, generation) pair; a 4-ary implicit min-heap of slot indices orders
// them by (time, sequence). Sequence numbers break time ties in scheduling
// order, which keeps runs fully deterministic. Scheduling a small-capture
// callback performs no heap allocation (see sim/inline_fn.hpp); freed slots
// are recycled through a free list, so a steady-state simulation reaches a
// fixed memory footprint and never allocates on the hot path.
//
// Cancellation is O(1) and lazy: `EventHandle::cancel()` flips a bit in the
// slab record (releasing the callback's captures immediately) and the heap
// entry is discarded when it surfaces. Handles are POD-sized {queue, index,
// generation} triples: copies are free, stale handles — fired, cancelled, or
// outliving a recycled slot — are detected by generation mismatch and become
// inert. A handle must not be used after its EventQueue is destroyed.
#ifndef LOCKSS_SIM_EVENT_QUEUE_HPP_
#define LOCKSS_SIM_EVENT_QUEUE_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace lockss::sim {

using EventFn = InlineFn;

class EventQueue;

// Handle to a scheduled event. Default-constructed handles are inert.
// Copyable; all copies refer to the same scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Idempotent; safe on
  // default-constructed and stale handles.
  void cancel();

  // True if the handle refers to an event that is still pending.
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, uint32_t index, uint64_t generation)
      : queue_(queue), index_(index), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  uint32_t index_ = 0;
  // 64-bit so a long-held stale handle can never alias a recycled slot:
  // the LIFO free list concentrates reuse on few slots, and a 32-bit
  // counter would wrap within ~4.3e9 events on one slot.
  uint64_t generation_ = 0;
};

class EventQueue {
 public:
  // Adds an event at absolute time `at`. Returns a cancellation handle.
  EventHandle push(SimTime at, EventFn fn);

  // True when no uncancelled events remain. Const: backed by a live-event
  // count, not by pruning the heap.
  bool empty() const { return live_ == 0; }

  // Number of pending (uncancelled, unfired) events.
  size_t size() const { return live_; }

  // Timestamp of the earliest pending event. Requires !empty(). Prunes
  // cancelled records that have surfaced at the heap root.
  SimTime next_time();

  // Pops the earliest pending event and returns it so the simulator can
  // advance its clock before invoking the callback.
  struct Popped {
    SimTime at;
    EventFn fn;
  };
  Popped pop();

  // High-water mark of heap entries (pending + not-yet-pruned cancelled),
  // tracked for the perf reports.
  size_t peak_depth() const { return peak_depth_; }

 private:
  friend class EventHandle;

  struct Slot {
    SimTime at;
    uint64_t seq = 0;
    EventFn fn;
    uint64_t generation = 0;
    bool cancelled = false;
  };

  // Heap entries carry the full (time, seq) ordering key so sift operations
  // compare and move 24-byte PODs without dereferencing the slab — the slab
  // is only touched at push, cancel, and pop, never per comparison.
  struct HeapEntry {
    SimTime at;
    uint64_t seq;
    uint32_t index;
  };

  // The slab is chunked so records never move: growing it allocates one
  // fixed-size chunk (amortized over kChunkSize events) instead of
  // relocating every live callback the way a flat vector would.
  static constexpr size_t kChunkShift = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;

  Slot& slot(uint32_t index) { return chunks_[index >> kChunkShift][index & (kChunkSize - 1)]; }
  const Slot& slot(uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  bool slot_pending(uint32_t index, uint64_t generation) const {
    return index < slot_count_ && slot(index).generation == generation &&
           !slot(index).cancelled;
  }
  void cancel_slot(uint32_t index, uint64_t generation);

  // Heap order: earlier time first, scheduling order among ties.
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    return a.seq < b.seq;
  }
  void sift_up(size_t pos);
  void sift_down(size_t pos);
  void remove_root();
  // Returns the slot to the free list and invalidates outstanding handles.
  void release(uint32_t index);
  void prune_cancelled_root();

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  uint32_t slot_count_ = 0;
  std::vector<uint32_t> free_;
  std::vector<HeapEntry> heap_;
  uint64_t next_seq_ = 0;
  size_t live_ = 0;
  size_t peak_depth_ = 0;
};

}  // namespace lockss::sim

#endif  // LOCKSS_SIM_EVENT_QUEUE_HPP_
