// Pending-event set for the discrete-event engine.
//
// Events are (time, sequence, callback) triples kept in a binary heap.
// Sequence numbers break time ties in scheduling order, which makes runs
// fully deterministic. Cancellation is lazy: `EventHandle::cancel()` marks a
// shared flag and the queue skips the entry when it surfaces.
#ifndef LOCKSS_SIM_EVENT_QUEUE_HPP_
#define LOCKSS_SIM_EVENT_QUEUE_HPP_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace lockss::sim {

using EventFn = std::function<void()>;

// Handle to a scheduled event. Default-constructed handles are inert.
// Copyable; all copies refer to the same scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Idempotent.
  void cancel() {
    if (cancelled_) {
      *cancelled_ = true;
    }
  }

  // True if the handle refers to an event that is still pending.
  bool pending() const { return cancelled_ && !*cancelled_ && !*fired_; }

 private:
  friend class EventQueue;
  EventHandle(std::shared_ptr<bool> cancelled, std::shared_ptr<bool> fired)
      : cancelled_(std::move(cancelled)), fired_(std::move(fired)) {}

  std::shared_ptr<bool> cancelled_;
  std::shared_ptr<bool> fired_;
};

class EventQueue {
 public:
  // Adds an event at absolute time `at`. Returns a cancellation handle.
  EventHandle push(SimTime at, EventFn fn);

  // True when no uncancelled events remain. May discard cancelled heads.
  bool empty();

  // Timestamp of the earliest pending event. Requires !empty().
  SimTime next_time();

  // Removes and runs nothing: pops the earliest pending event and returns it
  // so the simulator can advance its clock before invoking the callback.
  struct Popped {
    SimTime at;
    EventFn fn;
  };
  Popped pop();

  size_t size() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime at;
    uint64_t seq;
    // shared_ptr keeps cancellation flags alive as long as either the queue
    // or an outstanding handle needs them.
    std::shared_ptr<bool> cancelled;
    std::shared_ptr<bool> fired;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_head();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace lockss::sim

#endif  // LOCKSS_SIM_EVENT_QUEUE_HPP_
