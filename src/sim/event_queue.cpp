#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lockss::sim {

namespace {
constexpr size_t kArity = 4;
}  // namespace

void EventHandle::cancel() {
  if (queue_ != nullptr) {
    queue_->cancel_slot(index_, generation_);
  }
}

bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->slot_pending(index_, generation_);
}

EventHandle EventQueue::push(SimTime at, EventFn fn) {
  uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    if (slot_count_ == chunks_.size() * kChunkSize) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    index = slot_count_++;
  }
  Slot& s = slot(index);
  s.at = at;
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  s.cancelled = false;

  heap_.push_back(HeapEntry{at, s.seq, index});
  sift_up(heap_.size() - 1);
  ++live_;
  if (heap_.size() > peak_depth_) {
    peak_depth_ = heap_.size();
  }
  return EventHandle(this, index, s.generation);
}

void EventQueue::cancel_slot(uint32_t index, uint64_t generation) {
  if (!slot_pending(index, generation)) {
    return;
  }
  Slot& s = slot(index);
  s.cancelled = true;
  // Release the callback now so cancelled events do not pin captured
  // resources until the record surfaces at the heap root.
  s.fn.reset();
  --live_;
}

void EventQueue::sift_up(size_t pos) {
  const HeapEntry moving = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) / kArity;
    if (!before(moving, heap_[parent])) {
      break;
    }
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = moving;
}

void EventQueue::sift_down(size_t pos) {
  const size_t n = heap_.size();
  const HeapEntry moving = heap_[pos];
  while (true) {
    const size_t first_child = pos * kArity + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    const size_t last_child = std::min(first_child + kArity, n);
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!before(heap_[best], moving)) {
      break;
    }
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = moving;
}

void EventQueue::remove_root() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    sift_down(0);
  }
}

void EventQueue::release(uint32_t index) {
  Slot& s = slot(index);
  ++s.generation;  // invalidates every outstanding handle to this record
  s.fn.reset();
  free_.push_back(index);
}

void EventQueue::prune_cancelled_root() {
  while (!heap_.empty() && slot(heap_[0].index).cancelled) {
    release(heap_[0].index);
    remove_root();
  }
}

SimTime EventQueue::next_time() {
  prune_cancelled_root();
  assert(!heap_.empty());
  return heap_[0].at;
}

EventQueue::Popped EventQueue::pop() {
  prune_cancelled_root();
  assert(!heap_.empty());
  const uint32_t index = heap_[0].index;
  Slot& s = slot(index);
  Popped popped{s.at, std::move(s.fn)};
  release(index);
  remove_root();
  --live_;
  return popped;
}

}  // namespace lockss::sim
