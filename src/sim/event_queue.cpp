#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace lockss::sim {

EventHandle EventQueue::push(SimTime at, EventFn fn) {
  auto cancelled = std::make_shared<bool>(false);
  auto fired = std::make_shared<bool>(false);
  EventHandle handle(cancelled, fired);
  heap_.push(Entry{at, next_seq_++, std::move(cancelled), std::move(fired), std::move(fn)});
  return handle;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && *heap_.top().cancelled) {
    heap_.pop();
  }
}

bool EventQueue::empty() {
  drop_cancelled_head();
  return heap_.empty();
}

SimTime EventQueue::next_time() {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  // priority_queue::top() is const; the entry must be copied out before pop.
  Entry entry = heap_.top();
  heap_.pop();
  *entry.fired = true;
  return Popped{entry.at, std::move(entry.fn)};
}

}  // namespace lockss::sim
