// Deterministic intra-run sharding: one deployment's event load split
// across worker threads, byte-identical to the serial run.
//
// Conservative parallel discrete-event simulation with a lookahead window
// (docs/sharding.md). Each shard owns a contiguous NodeId block (ShardPlan)
// and runs those peers' events on its own Simulator; global actors — the
// adversary fleet and its minions, the churn model, the operator-response
// engine, trace ticks — run on a separate global Simulator driven by the
// coordinator with every shard quiesced. The engine alternates:
//
//   1. Barrier: merge cross-context event posts (ordered by
//      (time, source context, post order) — a total order, so queue
//      insertion order is deterministic), then run the registered barrier
//      hooks (metric-log replay, deferred operator observations).
//   2. If the next global event is due no later than the earliest shard
//      event, quiesce every shard to that instant and run the global events
//      there ("global-first" at exact ties).
//   3. Otherwise open the window [t_min, W_end) with
//      W_end = min(t_min + lookahead, next global event, horizon) and run
//      every shard to W_end in parallel.
//
// Correctness of the window: `lookahead` is a strict lower bound on the
// delay of any cross-context interaction (the network's minimum latency —
// delivery takes latency + transfer > min latency), so no event inside a
// window can affect another context within the same window; cross-context
// posts always land at or after W_end and are merged at the barrier.
//
// Determinism: peers own all their state (RNG, sessions, schedule, damage
// process, effort meters, substrates), so per-shard execution order equals
// the serial order restricted to that shard. Cross-shard interleaving is
// made deterministic by the merge key; shared floating-point accumulators
// are not updated concurrently at all but replayed through per-shard logs
// in serial order (metrics::MetricLog). The one surrendered diagnostic is
// peak_queue_depth: a per-queue high-water mark has no serial equivalent,
// so the engine reports the sum of per-queue peaks (an upper bound).
#ifndef LOCKSS_SIM_SHARDED_ENGINE_HPP_
#define LOCKSS_SIM_SHARDED_ENGINE_HPP_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/profile.hpp"
#include "sim/shard_plan.hpp"
#include "sim/simulator.hpp"

namespace lockss::sim {

class ShardedEngine {
 public:
  // `lookahead` must be a strict lower bound on every cross-context
  // interaction delay (> 0).
  ShardedEngine(ShardPlan plan, SimTime lookahead);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  const ShardPlan& plan() const { return plan_; }

  Simulator& global_sim() { return global_; }
  Simulator& shard_sim(uint32_t shard) { return *shards_[shard].sim; }
  // Owning context's simulator for a raw NodeId value.
  Simulator& sim_of(uint32_t raw_id) { return sim_for_context(plan_.context_of(raw_id)); }
  uint32_t context_of(uint32_t raw_id) const { return plan_.context_of(raw_id); }

  // Executing context of the calling thread: a shard index inside a window,
  // ShardPlan::kGlobalContext on the coordinator (setup, barriers, global
  // events).
  uint32_t current_context() const;
  Simulator& current_sim() { return sim_for_context(current_context()); }

  // Schedules `fn` at absolute time `at` on `dst_context`'s queue. Same-
  // context posts (and any post made by the coordinator, which only runs
  // while shards are quiescent) schedule directly — identical to the serial
  // path. Cross-context posts from a shard are buffered in that shard's
  // outbox and merged at the next barrier in (at, source, order) order;
  // `at` must be at or beyond the window end (guaranteed by the lookahead
  // contract, asserted at merge time by Simulator::schedule_at).
  void post(uint32_t dst_context, SimTime at, EventFn fn);

  // Runs at every barrier on the coordinator thread, with all shards
  // quiescent, before any global event executes. Hooks must be cheap when
  // idle: with dense queues there is a barrier roughly every lookahead of
  // simulated time.
  void add_barrier_hook(std::function<void()> hook);

  // Drives the whole system to `horizon` (events at the horizon do not
  // run), exactly like Simulator::run_until on the serial path.
  void run_until(SimTime horizon);

  // Attaches (or clears, with nullptr) a wall-clock profile the engine fills
  // while running: windows/barriers counted, shard execution vs barrier
  // stall timed, window occupancy histogrammed (docs/observability.md). The
  // profile is reporting only — it never influences execution — and must
  // outlive the engine's run. Detached (the default) the cost is a branch
  // and a steady-clock sample per window.
  void set_profile(obs::EngineProfile* profile) { profile_ = profile; }

  // Sum over all queues (shards + global); equals the serial count.
  uint64_t events_processed() const;
  // Sum of per-queue high-water marks: an upper bound on the serial peak,
  // NOT comparable across shard counts (see docs/sharding.md).
  uint64_t peak_queue_depth_sum() const;

 private:
  struct PostedEvent {
    SimTime at;
    uint32_t dst;
    EventFn fn;
  };
  struct Shard {
    std::unique_ptr<Simulator> sim;
    // Cross-context posts made by this shard's window execution; single
    // writer (the shard), drained by the coordinator at the barrier.
    std::vector<PostedEvent> outbox;
  };

  Simulator& sim_for_context(uint32_t context) {
    return context == ShardPlan::kGlobalContext ? global_ : *shards_[context].sim;
  }
  void merge_outboxes();
  void run_barrier_hooks();
  // Parallel shard execution to `w_end`; shards with no event before the
  // window end only advance their clock and are not dispatched to workers.
  void dispatch_window(SimTime w_end);
  void worker_loop(uint32_t shard);

  ShardPlan plan_;
  SimTime lookahead_;
  Simulator global_;
  std::vector<Shard> shards_;
  std::vector<std::function<void()>> hooks_;
  obs::EngineProfile* profile_ = nullptr;

  // Worker pool: one thread per shard, woken per window by epoch bump.
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t epoch_ = 0;
  SimTime window_end_;
  std::vector<uint8_t> active_;  // per shard: run this window?
  uint32_t remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace lockss::sim

#endif  // LOCKSS_SIM_SHARDED_ENGINE_HPP_
