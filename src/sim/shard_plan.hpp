// Deterministic partition of the NodeId space across intra-run shards.
//
// Sharding one run (docs/sharding.md) splits the deployment's peers across
// worker-owned event queues by NodeId *block*: the NodeSlotRegistry's
// ordering contract makes slot order equal NodeId order, and PR 5's regional
// outage model already groups contiguous NodeId blocks, so a contiguous
// block partition keeps every deterministic walk (registry iteration, churn
// schedule application, regional grouping) aligned with shard order. That
// alignment is what makes the cross-shard merge key (time, shard, sequence)
// reproduce the serial event order: any global actor that touches several
// peers at one timestamp touches them in ascending NodeId order, which is
// ascending shard order.
//
// Ids at or above `owned_ids` (adversary minions at their high bases,
// admission-flood spoofed identities) belong to no shard: they are global
// actors, executed by the coordinator between windows (kGlobalContext).
#ifndef LOCKSS_SIM_SHARD_PLAN_HPP_
#define LOCKSS_SIM_SHARD_PLAN_HPP_

#include <cstdint>

namespace lockss::sim {

struct ShardPlan {
  // Context id of the coordinator (global actors: adversary fleet, churn,
  // operator engine, trace ticks).
  static constexpr uint32_t kGlobalContext = UINT32_MAX;

  uint32_t shards = 1;
  uint32_t owned_ids = 0;  // ids [0, owned_ids) are block-partitioned
  uint32_t block = 1;      // ids per shard (ceil), last shard takes the slack

  static ShardPlan block_partition(uint32_t shards, uint32_t owned_ids) {
    ShardPlan plan;
    plan.shards = shards == 0 ? 1 : shards;
    plan.owned_ids = owned_ids;
    plan.block = owned_ids == 0 ? 1 : (owned_ids + plan.shards - 1) / plan.shards;
    return plan;
  }

  // Owning context of a raw NodeId value: a shard index, or kGlobalContext
  // for ids outside the owned range.
  uint32_t context_of(uint32_t raw_id) const {
    if (raw_id >= owned_ids) {
      return kGlobalContext;
    }
    const uint32_t shard = raw_id / block;
    return shard < shards ? shard : shards - 1;
  }
};

}  // namespace lockss::sim

#endif  // LOCKSS_SIM_SHARD_PLAN_HPP_
