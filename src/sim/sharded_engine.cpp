#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <cassert>

namespace lockss::sim {

namespace {
// Executing context of the current OS thread, engine-scoped: worker threads
// belong to exactly one engine; every other thread (the coordinator, outer
// ParallelRunner workers) is the global context of whatever engine asks.
thread_local const ShardedEngine* tls_engine = nullptr;
thread_local uint32_t tls_context = ShardPlan::kGlobalContext;

struct ContextScope {
  const ShardedEngine* prev_engine;
  uint32_t prev_context;
  ContextScope(const ShardedEngine* engine, uint32_t context)
      : prev_engine(tls_engine), prev_context(tls_context) {
    tls_engine = engine;
    tls_context = context;
  }
  ~ContextScope() {
    tls_engine = prev_engine;
    tls_context = prev_context;
  }
};
}  // namespace

ShardedEngine::ShardedEngine(ShardPlan plan, SimTime lookahead)
    : plan_(plan), lookahead_(lookahead) {
  assert(lookahead_ > SimTime::zero() &&
         "sharding needs a positive lookahead (minimum cross-context delay)");
  shards_.resize(plan_.shards);
  for (Shard& shard : shards_) {
    shard.sim = std::make_unique<Simulator>();
  }
  active_.assign(plan_.shards, 0);
  if (plan_.shards > 1) {
    threads_.reserve(plan_.shards);
    for (uint32_t s = 0; s < plan_.shards; ++s) {
      threads_.emplace_back([this, s] { worker_loop(s); });
    }
  }
}

ShardedEngine::~ShardedEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

uint32_t ShardedEngine::current_context() const {
  return tls_engine == this ? tls_context : ShardPlan::kGlobalContext;
}

void ShardedEngine::post(uint32_t dst_context, SimTime at, EventFn fn) {
  const uint32_t src = current_context();
  if (src == dst_context || src == ShardPlan::kGlobalContext) {
    // Same-context, or the coordinator posting while every shard is
    // quiescent: a direct push is already deterministic.
    sim_for_context(dst_context).schedule_at(at, std::move(fn));
    return;
  }
  shards_[src].outbox.push_back(PostedEvent{at, dst_context, std::move(fn)});
}

void ShardedEngine::add_barrier_hook(std::function<void()> hook) {
  hooks_.push_back(std::move(hook));
}

void ShardedEngine::merge_outboxes() {
  // Gather in source order, then a stable sort by time: the resulting order
  // is (at, source context, post order) — a total order over all posts, so
  // destination-queue insertion order (and with it tie-breaking sequence
  // numbers) is independent of which thread finished first.
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.outbox.size();
  }
  if (total == 0) {
    return;
  }
  std::vector<PostedEvent> merged;
  merged.reserve(total);
  for (Shard& shard : shards_) {
    for (PostedEvent& e : shard.outbox) {
      merged.push_back(std::move(e));
    }
    shard.outbox.clear();
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const PostedEvent& a, const PostedEvent& b) { return a.at < b.at; });
  for (PostedEvent& e : merged) {
    // schedule_at asserts at >= the destination clock — exactly the
    // lookahead contract (posts land at or beyond the barrier time).
    sim_for_context(e.dst).schedule_at(e.at, std::move(e.fn));
  }
}

void ShardedEngine::run_barrier_hooks() {
  for (const std::function<void()>& hook : hooks_) {
    hook();
  }
}

void ShardedEngine::dispatch_window(SimTime w_end) {
  // Shards with no event before the window end have nothing to execute;
  // advancing their clock inline is free and skips the thread wake-up. With
  // sparse queues most windows have exactly one active shard, which then
  // runs inline on the coordinator too.
  const obs::Stopwatch window_watch;
  double stall_seconds = 0.0;
  uint32_t active_count = 0;
  uint32_t last_active = 0;
  {
    // Written under the lock: sleeping workers read active_ in their wait
    // predicate (any spurious wake-up evaluates it).
    std::lock_guard<std::mutex> lock(mu_);
    for (uint32_t s = 0; s < plan_.shards; ++s) {
      const bool runs = shards_[s].sim->next_event_time() < w_end;
      active_[s] = runs ? 1 : 0;
      if (runs) {
        ++active_count;
        last_active = s;
      }
    }
    if (active_count > 1 && !threads_.empty()) {
      window_end_ = w_end;
      remaining_ = active_count;
      ++epoch_;
    }
  }
  // Reporting only — a detached profile costs one branch per window.
  const auto record_window = [&] {
    if (profile_ == nullptr) {
      return;
    }
    ++profile_->windows;
    const size_t bucket = std::min<size_t>(
        active_count, obs::EngineProfile::kOccupancyBuckets - 1);
    ++profile_->occupancy[bucket];
    profile_->window_exec_seconds += window_watch.elapsed_seconds() - stall_seconds;
    profile_->barrier_stall_seconds += stall_seconds;
  };
  if (active_count > 1 && !threads_.empty()) {
    cv_work_.notify_all();
    for (uint32_t s = 0; s < plan_.shards; ++s) {
      if (!active_[s]) {
        shards_[s].sim->run_until(w_end);
      }
    }
    const obs::Stopwatch stall_watch;
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return remaining_ == 0; });
    stall_seconds = stall_watch.elapsed_seconds();
    record_window();
    return;
  }
  for (uint32_t s = 0; s < plan_.shards; ++s) {
    if (active_[s] && s == last_active) {
      ContextScope scope(this, s);
      shards_[s].sim->run_until(w_end);
    } else {
      shards_[s].sim->run_until(w_end);
    }
  }
  record_window();
}

void ShardedEngine::worker_loop(uint32_t shard) {
  ContextScope scope(this, shard);
  uint64_t seen_epoch = 0;
  for (;;) {
    SimTime w_end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return shutdown_ || (epoch_ != seen_epoch && active_[shard]); });
      if (shutdown_) {
        return;
      }
      seen_epoch = epoch_;
      w_end = window_end_;
    }
    shards_[shard].sim->run_until(w_end);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) {
        cv_done_.notify_all();
      }
    }
  }
}

void ShardedEngine::run_until(SimTime horizon) {
  for (;;) {
    const obs::Stopwatch barrier_watch;
    merge_outboxes();
    run_barrier_hooks();
    if (profile_ != nullptr) {
      ++profile_->barriers;
      profile_->barrier_stall_seconds += barrier_watch.elapsed_seconds();
    }

    SimTime t_shard = SimTime::max();
    for (Shard& shard : shards_) {
      t_shard = std::min(t_shard, shard.sim->next_event_time());
    }
    const SimTime t_global = global_.next_event_time();
    if (std::min(t_shard, t_global) >= horizon) {
      break;
    }
    if (t_global <= t_shard) {
      // Global events run with every shard quiesced at exactly their time.
      // At an exact tie the global event runs first (serial ties are broken
      // by scheduling order, unreproducible across queues; continuous-time
      // delay draws make cross-context ties measure-zero in practice — the
      // golden corpus enforces this empirically).
      for (Shard& shard : shards_) {
        assert(shard.sim->next_event_time() >= t_global);
        shard.sim->run_until(t_global);
      }
      global_.run_at(t_global);
      continue;
    }
    SimTime w_end = t_shard + lookahead_;  // saturating
    w_end = std::min(w_end, t_global);
    w_end = std::min(w_end, horizon);
    dispatch_window(w_end);
    if (global_.now() < w_end) {
      global_.run_until(w_end);  // clock only: no global event before w_end
    }
  }
  for (Shard& shard : shards_) {
    shard.sim->run_until(horizon);
  }
  if (global_.now() < horizon) {
    global_.run_until(horizon);
  }
  // Posts from the final window target times at or past the horizon; merge
  // them anyway so their callables are owned by the queues (and run if a
  // caller extends the horizon later), then give hooks a final drain.
  merge_outboxes();
  run_barrier_hooks();
}

uint64_t ShardedEngine::events_processed() const {
  uint64_t total = global_.events_processed();
  for (const Shard& shard : shards_) {
    total += shard.sim->events_processed();
  }
  return total;
}

uint64_t ShardedEngine::peak_queue_depth_sum() const {
  uint64_t total = global_.peak_queue_depth();
  for (const Shard& shard : shards_) {
    total += shard.sim->peak_queue_depth();
  }
  return total;
}

}  // namespace lockss::sim
