// Simulated-time representation for the discrete-event engine.
//
// A `SimTime` is a signed 64-bit count of nanoseconds. It doubles as an
// absolute timestamp (nanoseconds since simulation start) and as a duration;
// the arithmetic operators keep both uses convenient. Two simulated years
// (~6.3e16 ns) fit comfortably within the representable range (~9.2e18 ns).
//
// Calendar helpers use the paper's conventions: a "month" is 30 days and a
// "year" is 365 days, which is how the evaluation section phrases intervals
// ("3 months", "2 simulated years").
#ifndef LOCKSS_SIM_TIME_HPP_
#define LOCKSS_SIM_TIME_HPP_

#include <cstdint>
#include <compare>
#include <string>

namespace lockss::sim {

class SimTime {
 public:
  constexpr SimTime() : ns_(0) {}

  // Factories. Double-valued factories round to the nearest nanosecond.
  static constexpr SimTime nanoseconds(int64_t n) { return SimTime(n); }
  static constexpr SimTime microseconds(int64_t us) { return SimTime(us * 1000); }
  static constexpr SimTime milliseconds(int64_t ms) { return SimTime(ms * 1000000); }
  // Saturates at the representable range: exponential waiting-time draws
  // with century-scale means (small collections under §7.1 damage rates)
  // can exceed INT64_MAX nanoseconds, and "effectively never" must stay
  // positive rather than wrap negative.
  static constexpr SimTime seconds(double s) {
    const double ns = s * 1e9;
    if (ns >= static_cast<double>(INT64_MAX)) {
      return SimTime(INT64_MAX);
    }
    if (ns <= static_cast<double>(INT64_MIN)) {
      return SimTime(INT64_MIN);
    }
    return SimTime(static_cast<int64_t>(ns + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime minutes(double m) { return seconds(m * 60.0); }
  static constexpr SimTime hours(double h) { return seconds(h * 3600.0); }
  static constexpr SimTime days(double d) { return seconds(d * 86400.0); }
  static constexpr SimTime months(double m) { return days(m * 30.0); }
  static constexpr SimTime years(double y) { return days(y * 365.0); }
  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() { return SimTime(INT64_MAX); }

  constexpr int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_days() const { return to_seconds() / 86400.0; }
  constexpr double to_years() const { return to_days() / 365.0; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  // Arithmetic saturates at the representable range, like seconds(): times
  // near SimTime::max() mean "effectively never", and "never plus an hour"
  // must stay "never" rather than wrap into the distant past (signed
  // overflow is UB besides being wrong).
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(sat_add(a.ns_, b.ns_));
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(sat_sub(a.ns_, b.ns_));
  }
  friend constexpr SimTime operator*(SimTime a, double k) {
    const double ns = static_cast<double>(a.ns_) * k;
    if (ns >= static_cast<double>(INT64_MAX)) {
      return SimTime(INT64_MAX);
    }
    if (ns <= static_cast<double>(INT64_MIN)) {
      return SimTime(INT64_MIN);
    }
    return SimTime(static_cast<int64_t>(ns));
  }
  friend constexpr SimTime operator*(double k, SimTime a) { return a * k; }
  friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ = sat_add(ns_, o.ns_);
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ = sat_sub(ns_, o.ns_);
    return *this;
  }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

  // Human-readable rendering for logs, e.g. "12d 03:25:11.5".
  std::string to_string() const;

 private:
  explicit constexpr SimTime(int64_t n) : ns_(n) {}

  static constexpr int64_t sat_add(int64_t a, int64_t b) {
    int64_t out = 0;
    if (__builtin_add_overflow(a, b, &out)) {
      return b > 0 ? INT64_MAX : INT64_MIN;
    }
    return out;
  }
  static constexpr int64_t sat_sub(int64_t a, int64_t b) {
    int64_t out = 0;
    if (__builtin_sub_overflow(a, b, &out)) {
      return b > 0 ? INT64_MIN : INT64_MAX;
    }
    return out;
  }

  int64_t ns_;
};

}  // namespace lockss::sim

#endif  // LOCKSS_SIM_TIME_HPP_
