#include "sim/simulator.hpp"

#include <cassert>

namespace lockss::sim {

EventHandle Simulator::schedule_in(SimTime delay, EventFn fn) {
  assert(!delay.is_negative());
  // Saturating add: a delay at (or near) SimTime::max() means "effectively
  // never" and must not wrap past the end of representable time.
  const SimTime at =
      delay < SimTime::max() - now_ ? now_ + delay : SimTime::max();
  return queue_.push(at, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime at, EventFn fn) {
  assert(at >= now_);
  return queue_.push(at, std::move(fn));
}

void Simulator::run_until(SimTime horizon) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() < horizon) {
    auto popped = queue_.pop();
    assert(popped.at >= now_);
    now_ = popped.at;
    popped.fn();
    ++events_processed_;
  }
  if (!stopped_ && now_ < horizon) {
    now_ = horizon;
  }
}

void Simulator::run_at(SimTime t) {
  assert(t >= now_);
  stopped_ = false;
  now_ = t;
  while (!stopped_ && !queue_.empty() && queue_.next_time() == t) {
    auto popped = queue_.pop();
    popped.fn();
    ++events_processed_;
  }
  assert(stopped_ || queue_.empty() || queue_.next_time() > t);
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    auto popped = queue_.pop();
    assert(popped.at >= now_);
    now_ = popped.at;
    popped.fn();
    ++events_processed_;
  }
}

}  // namespace lockss::sim
