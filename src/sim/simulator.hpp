// The discrete-event simulator driving every scenario in this repository.
//
// This replaces the paper's Narses simulator (§6.2): a single-threaded,
// deterministic event loop with a monotonically advancing clock. Expensive
// peer-side computations (hashing an archival unit, generating or verifying a
// memory-bound-function proof) are modelled by scheduling their completion
// rather than performing real work, exactly as Narses "provides facilities
// for modeling computationally expensive operations".
#ifndef LOCKSS_SIM_SIMULATOR_HPP_
#define LOCKSS_SIM_SIMULATOR_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace lockss::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  SimTime now() const { return now_; }

  // Schedules `fn` to run after `delay` (>= 0) from now.
  EventHandle schedule_in(SimTime delay, EventFn fn);

  // Schedules `fn` at absolute time `at` (>= now()).
  EventHandle schedule_at(SimTime at, EventFn fn);

  // Runs until the queue drains or the horizon is reached, whichever is
  // first. Events scheduled exactly at the horizon do not run; the clock is
  // left at the horizon (or at the last event if the queue drained early).
  void run_until(SimTime horizon);

  // Runs until the queue drains. Intended for tests and small scenarios.
  void run();

  // Runs every event scheduled at exactly `t` (including events those
  // events schedule at `t`), leaving the clock at `t` and touching nothing
  // later. The sharded engine's coordinator uses this to execute global
  // events with every shard quiesced at the same instant; earlier events
  // must already have run (asserted).
  void run_at(SimTime t);

  // Earliest pending event time, or SimTime::max() when the queue is empty.
  // Non-const: surfacing the head may prune lazily-cancelled entries.
  SimTime next_event_time() {
    return queue_.empty() ? SimTime::max() : queue_.next_time();
  }

  // Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  uint64_t events_processed() const { return events_processed_; }
  // Number of pending (uncancelled, unfired) events. Const: the queue keeps
  // a live count, so no lazy cleanup happens on this query path.
  size_t events_pending() const { return queue_.size(); }
  // High-water mark of the event queue, for the perf reports.
  size_t peak_queue_depth() const { return queue_.peak_depth(); }

 private:
  EventQueue queue_;
  SimTime now_;
  bool stopped_ = false;
  uint64_t events_processed_ = 0;
};

}  // namespace lockss::sim

#endif  // LOCKSS_SIM_SIMULATOR_HPP_
