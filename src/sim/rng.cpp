#include "sim/rng.hpp"

#include <cmath>

namespace lockss::sim {
namespace {

uint64_t splitmix64(uint64_t& x) {
  const uint64_t z = splitmix64_mix(x);
  x += 0x9E3779B97F4A7C15ull;
  return z;
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

size_t Rng::index(size_t n) {
  return static_cast<size_t>(uniform_int(0, static_cast<int64_t>(n) - 1));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

SimTime Rng::exponential_time(SimTime mean) {
  return SimTime::seconds(exponential(mean.to_seconds()));
}

SimTime Rng::uniform_time(SimTime lo, SimTime hi) {
  return SimTime::nanoseconds(uniform_int(lo.ns(), hi.ns()));
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace lockss::sim
