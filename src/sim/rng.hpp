// Deterministic random-number generation for simulations.
//
// All randomness in a scenario flows from a single root `Rng` seeded from the
// experiment configuration; subsystems receive children created by `split()`,
// so adding a consumer never perturbs the streams seen by existing consumers.
// The generator is xoshiro256** (public domain, Blackman & Vigna), seeded via
// splitmix64 — fast, high quality, and fully reproducible across platforms.
#ifndef LOCKSS_SIM_RNG_HPP_
#define LOCKSS_SIM_RNG_HPP_

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace lockss::sim {

// The splitmix64 finalizer (Steele, Lea & Flood; public domain): a cheap,
// well-mixed 64→64 bit scrambler. Used to seed the xoshiro state and as
// the hash for the open-addressed id/session tables — one set of mixing
// constants for the whole repo.
constexpr uint64_t splitmix64_mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 uniform bits.
  uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi);

  // Uniform index in [0, n). Requires n > 0.
  size_t index(size_t n);

  // True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  // Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  // Exponentially distributed waiting time with the given mean.
  SimTime exponential_time(SimTime mean);

  // Uniform time in [lo, hi].
  SimTime uniform_time(SimTime lo, SimTime hi);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  // k distinct elements sampled uniformly from `from` (k may exceed the size,
  // in which case all elements are returned, shuffled).
  template <typename T>
  std::vector<T> sample(const std::vector<T>& from, size_t k) {
    std::vector<T> pool = from;
    shuffle(pool);
    if (k < pool.size()) {
      pool.resize(k);
    }
    return pool;
  }

  // Independent child generator; the parent stream advances by one draw.
  Rng split();

 private:
  uint64_t s_[4];
};

}  // namespace lockss::sim

#endif  // LOCKSS_SIM_RNG_HPP_
