// Operator-response policy engine: detection-latency-delayed interventions.
//
// peer::OperatorModel closes the §4.3 alarm loop with one hard-coded
// response (a manual audit). Real archive operators have a playbook:
// re-key a peer that looks compromised, re-provision its friends list,
// tighten its admission-control budget while an attack is on, or re-crawl
// its AUs from the publisher. This engine generalizes the model into
// trigger→action policies (dynamics/spec.hpp) with one shared detection
// latency — the window an attacker races (campaigns/operator_response_race
// sweeps it).
//
// Triggers:   poll alarms (observed through the scenario's poll-observer
//             chain, like OperatorModel) and churn recoveries (hooked by
//             dynamics::ChurnModel).
// Actions:    applied `detection_latency` after the trigger, to the peer
//             that raised it, through the Peer operator APIs
//             (operator_rekey / set_friends / tighten_consideration_rate /
//             operator_recrawl). Friend refreshes draw from one dedicated
//             RNG stream (a root split the scenario hands over), so
//             operator randomness never perturbs the protocol streams.
//
// Determinism: interventions are ordinary simulator events; a departed
// peer's pending interventions apply at their scheduled time only if the
// peer is back online (an operator cannot service a dark machine), checked
// at apply time — a pure function of the deterministic churn schedule.
#ifndef LOCKSS_DYNAMICS_OPERATOR_RESPONSE_HPP_
#define LOCKSS_DYNAMICS_OPERATOR_RESPONSE_HPP_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "dynamics/spec.hpp"
#include "net/node_id.hpp"
#include "protocol/host.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace lockss::peer {
class Peer;
}

namespace lockss::dynamics {

class OperatorResponseEngine {
 public:
  OperatorResponseEngine(sim::Simulator& simulator, OperatorResponseConfig config,
                         sim::Rng rng);

  // Registers `peer_ptr` for operator attention; call for every loyal peer
  // before traffic starts. The roster is the id pool friend refreshes
  // sample from (normally the established population).
  void attend(peer::Peer* peer_ptr);
  void set_roster(std::vector<net::NodeId> roster);

  // The observer to install in PeerEnvironment::poll_observer; chains to
  // `next` (which may be empty), exactly like peer::OperatorModel.
  std::function<void(net::NodeId, const protocol::PollOutcome&)> observer(
      std::function<void(net::NodeId, const protocol::PollOutcome&)> next = nullptr);

  // ChurnModel recovery hook entry point.
  void on_peer_recovered(peer::Peer& peer);

  // Optional observer invoked after every applied intervention (the
  // scenario's trace hook, docs/observability.md). Interventions run on the
  // global context, so the hook may record into the global event sink.
  void set_action_hook(std::function<void(OperatorAction, net::NodeId)> hook) {
    action_hook_ = std::move(hook);
  }

  // Sharded-run entry point (docs/sharding.md): an alarm raised on a shard
  // at `observed_at`, reported at the next shard barrier. The intervention
  // still lands at observed_at + detection_latency — the same instant the
  // serial observer() chain schedules — because on_trigger draws no
  // randomness and detection latencies dwarf the barrier lookahead (the
  // scenario runner falls back to the serial path otherwise).
  void on_alarm_observed(net::NodeId poller, sim::SimTime observed_at);

  // --- Pure reads ----------------------------------------------------------
  uint64_t triggers_seen() const { return triggers_seen_; }
  // Applied interventions, indexed by OperatorAction.
  const std::array<uint64_t, kOperatorActionCount>& interventions() const {
    return interventions_;
  }
  uint64_t interventions_total() const;

 private:
  void on_trigger(OperatorTrigger trigger, net::NodeId peer);
  void on_trigger_at(OperatorTrigger trigger, net::NodeId peer, sim::SimTime observed_at);
  void apply(const OperatorPolicy& policy, net::NodeId peer);

  sim::Simulator& simulator_;
  OperatorResponseConfig config_;
  sim::Rng rng_;
  std::map<net::NodeId, peer::Peer*> peers_;
  std::vector<net::NodeId> roster_;
  std::function<void(OperatorAction, net::NodeId)> action_hook_;
  uint64_t triggers_seen_ = 0;
  std::array<uint64_t, kOperatorActionCount> interventions_{};
};

}  // namespace lockss::dynamics

#endif  // LOCKSS_DYNAMICS_OPERATOR_RESPONSE_HPP_
