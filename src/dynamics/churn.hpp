// Deterministic deployment churn: session departures, crashes, staggered
// recoveries, correlated regional outages, and Poisson peer arrivals.
//
// Two halves:
//
//   * build_churn_schedule() — pure function (config, population, duration,
//     one RNG) → the complete, sorted event schedule for a run. Computed at
//     scenario setup so the arrival count is known before the
//     net::NodeSlotRegistry freezes (registration at setup for the whole
//     arrival schedule is the determinism contract: slot order stays NodeId
//     order no matter when a peer actually comes up). Overlapping down
//     intervals for one peer (individual churn landing inside a regional
//     outage, say) are merged at build time, so the runtime never sees a
//     double departure and peer::Peer::depart()'s assert holds by
//     construction.
//
//   * ChurnModel — the runtime: owns the schedule, drives it off the
//     simulator event queue (one cursor event at a time), flips peers
//     offline/online through Peer::depart()/recover() plus a
//     net::OfflineSetFilter, starts arrival peers, and keeps the
//     availability/recovery-time accounting the trace sampler and
//     RunResult read. Every read is a pure peek, so traced and untraced
//     runs stay bit-identical.
//
// Determinism: the schedule is a pure function of (config, established,
// duration, rng); the model consumes no RNG at runtime and schedules
// events strictly in schedule order with a deterministic tie-break
// (time, peer, kind) fixed at build time.
#ifndef LOCKSS_DYNAMICS_CHURN_HPP_
#define LOCKSS_DYNAMICS_CHURN_HPP_

#include <cstdint>
#include <functional>
#include <vector>

#include "dynamics/spec.hpp"
#include "net/fault_injection.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace lockss::peer {
class Peer;
}

namespace lockss::dynamics {

enum class ChurnEventKind : uint8_t {
  kArrival,  // a brand-new peer starts (peer = arrival ordinal)
  kLeave,    // graceful departure (state kept)
  kCrash,    // departure with state loss at recovery
  kRecover,  // the peer comes back up
};

const char* churn_event_kind_name(ChurnEventKind kind);

struct ChurnEvent {
  sim::SimTime at;
  ChurnEventKind kind = ChurnEventKind::kArrival;
  // Established-peer index for leave/crash/recover; arrival ordinal for
  // kArrival.
  uint32_t peer = 0;
  // For kRecover: whether the peer reinstalls from the publisher.
  bool state_loss = false;
};

struct ChurnSchedule {
  // Sorted by (at, peer, kind) — the runtime replays it verbatim.
  std::vector<ChurnEvent> events;
  uint32_t arrival_count = 0;

  bool empty() const { return events.empty(); }
};

// Materializes the whole run's churn. Consumes only from `rng` (the
// scenario hands it one root split); per-peer session processes draw from
// child splits in ascending peer order, then regions in region order, then
// the arrival process — so adding one stream never perturbs another.
ChurnSchedule build_churn_schedule(const ChurnConfig& config, uint32_t established,
                                   sim::SimTime duration, sim::Rng& rng);

class ChurnModel {
 public:
  // `established` are the always-constructed loyal peers the schedule's
  // leave/crash/recover events index; `arrivals` are the pre-constructed
  // (but not started) peers the kArrival events start. `offline` is the
  // shared link filter (installed on the network by the scenario) that
  // silences down peers. Pointers are non-owning and must outlive the
  // model.
  ChurnModel(sim::Simulator& simulator, ChurnSchedule schedule,
             std::vector<peer::Peer*> established, std::vector<peer::Peer*> arrivals,
             net::OfflineSetFilter* offline);

  // Schedules the first cursor event. Call once, after every peer has
  // started.
  void start();

  // Invoked after every applied transition (the property tests hook this to
  // audit session-table/schedule/reference-list invariants mid-run), and
  // after every recovery (the operator-response engine hooks this to
  // trigger recovery policies).
  void set_transition_hook(std::function<void(const ChurnEvent&)> hook);
  void set_recovery_hook(std::function<void(peer::Peer&)> hook);

  // --- Pure reads (trace sampler / RunResult harvest) ----------------------
  uint32_t established_count() const { return static_cast<uint32_t>(established_.size()); }
  uint32_t offline_count() const { return offline_count_; }
  double online_fraction() const;
  uint64_t departures() const { return departures_; }
  uint64_t recoveries() const { return recoveries_; }
  uint64_t arrivals_started() const { return arrivals_started_; }
  // Mean completed-downtime duration to date, in days (0 until the first
  // recovery).
  double mean_recovery_days() const;
  // Time-weighted mean online fraction of the established population over
  // [0, now]. A peek: the stored integral is not advanced.
  double availability_mean(sim::SimTime now) const;

 private:
  void step();
  void apply(const ChurnEvent& event);
  void set_offline(uint32_t peer, bool down);

  sim::Simulator& simulator_;
  ChurnSchedule schedule_;
  std::vector<peer::Peer*> established_;
  std::vector<peer::Peer*> arrivals_;
  net::OfflineSetFilter* offline_filter_;
  std::function<void(const ChurnEvent&)> transition_hook_;
  std::function<void(peer::Peer&)> recovery_hook_;

  size_t cursor_ = 0;
  std::vector<sim::SimTime> down_since_;  // per established peer; valid while down
  std::vector<bool> is_down_;
  uint32_t offline_count_ = 0;
  uint64_t departures_ = 0;
  uint64_t recoveries_ = 0;
  uint64_t arrivals_started_ = 0;
  double downtime_seconds_sum_ = 0.0;  // completed downtimes only
  // Availability integral: offline peer-seconds accumulated up to
  // last_change_.
  double offline_peer_seconds_ = 0.0;
  sim::SimTime last_change_;
};

}  // namespace lockss::dynamics

#endif  // LOCKSS_DYNAMICS_CHURN_HPP_
