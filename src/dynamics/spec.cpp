#include "dynamics/spec.hpp"

namespace lockss::dynamics {

const char* operator_trigger_name(OperatorTrigger trigger) {
  switch (trigger) {
    case OperatorTrigger::kAlarm:
      return "alarm";
    case OperatorTrigger::kRecovery:
      return "recovery";
  }
  return "?";
}

const char* operator_action_name(OperatorAction action) {
  switch (action) {
    case OperatorAction::kRekey:
      return "rekey";
    case OperatorAction::kFriendRefresh:
      return "friend_refresh";
    case OperatorAction::kRateTighten:
      return "rate_tighten";
    case OperatorAction::kAuRecrawl:
      return "au_recrawl";
  }
  return "?";
}

bool parse_operator_trigger(const std::string& name, OperatorTrigger* out) {
  for (OperatorTrigger trigger : {OperatorTrigger::kAlarm, OperatorTrigger::kRecovery}) {
    if (name == operator_trigger_name(trigger)) {
      *out = trigger;
      return true;
    }
  }
  return false;
}

bool parse_operator_action(const std::string& name, OperatorAction* out) {
  for (OperatorAction action :
       {OperatorAction::kRekey, OperatorAction::kFriendRefresh, OperatorAction::kRateTighten,
        OperatorAction::kAuRecrawl}) {
    if (name == operator_action_name(action)) {
      *out = action;
      return true;
    }
  }
  return false;
}

}  // namespace lockss::dynamics
