#include "dynamics/operator_response.hpp"

#include "peer/peer.hpp"

namespace lockss::dynamics {

OperatorResponseEngine::OperatorResponseEngine(sim::Simulator& simulator,
                                               OperatorResponseConfig config, sim::Rng rng)
    : simulator_(simulator), config_(std::move(config)), rng_(rng) {}

void OperatorResponseEngine::attend(peer::Peer* peer_ptr) {
  peers_[peer_ptr->id()] = peer_ptr;
}

void OperatorResponseEngine::set_roster(std::vector<net::NodeId> roster) {
  roster_ = std::move(roster);
}

std::function<void(net::NodeId, const protocol::PollOutcome&)> OperatorResponseEngine::observer(
    std::function<void(net::NodeId, const protocol::PollOutcome&)> next) {
  return [this, next = std::move(next)](net::NodeId poller,
                                        const protocol::PollOutcome& outcome) {
    if (outcome.kind == protocol::PollOutcomeKind::kAlarm) {
      on_trigger(OperatorTrigger::kAlarm, poller);
    }
    if (next) {
      next(poller, outcome);
    }
  };
}

void OperatorResponseEngine::on_peer_recovered(peer::Peer& peer) {
  on_trigger(OperatorTrigger::kRecovery, peer.id());
}

void OperatorResponseEngine::on_alarm_observed(net::NodeId poller, sim::SimTime observed_at) {
  on_trigger_at(OperatorTrigger::kAlarm, poller, observed_at);
}

void OperatorResponseEngine::on_trigger(OperatorTrigger trigger, net::NodeId peer) {
  on_trigger_at(trigger, peer, simulator_.now());
}

void OperatorResponseEngine::on_trigger_at(OperatorTrigger trigger, net::NodeId peer,
                                           sim::SimTime observed_at) {
  if (!peers_.contains(peer)) {
    return;  // unattended (e.g. a hand-built host in tests)
  }
  ++triggers_seen_;
  // Policies fire in file order, all sharing the one detection latency: the
  // operator notices once, then works through the playbook.
  for (const OperatorPolicy& policy : config_.policies) {
    if (policy.trigger != trigger) {
      continue;
    }
    simulator_.schedule_at(observed_at + config_.detection_latency,
                           [this, policy, peer] { apply(policy, peer); });
  }
}

void OperatorResponseEngine::apply(const OperatorPolicy& policy, net::NodeId peer_id) {
  auto it = peers_.find(peer_id);
  if (it == peers_.end()) {
    return;
  }
  peer::Peer& peer = *it->second;
  if (!peer.online()) {
    return;  // the machine went dark again before the operator got to it
  }
  switch (policy.action) {
    case OperatorAction::kRekey:
      peer.operator_rekey();
      break;
    case OperatorAction::kFriendRefresh: {
      std::vector<net::NodeId> pool;
      pool.reserve(roster_.size());
      for (net::NodeId id : roster_) {
        if (id != peer_id) {
          pool.push_back(id);
        }
      }
      peer.set_friends(rng_.sample(pool, peer.params().friends_list_size));
      break;
    }
    case OperatorAction::kRateTighten:
      peer.tighten_consideration_rate(policy.factor);
      break;
    case OperatorAction::kAuRecrawl:
      peer.operator_recrawl(config_.recrawl_cost_factor);
      break;
  }
  ++interventions_[static_cast<size_t>(policy.action)];
  if (action_hook_) {
    action_hook_(policy.action, peer_id);
  }
}

uint64_t OperatorResponseEngine::interventions_total() const {
  uint64_t total = 0;
  for (uint64_t n : interventions_) {
    total += n;
  }
  return total;
}

}  // namespace lockss::dynamics
