#include "dynamics/churn.hpp"

#include <algorithm>
#include <cassert>

#include "peer/peer.hpp"

namespace lockss::dynamics {
namespace {

constexpr double kDaysPerYear = 365.0;

// One peer's down intervals, before merging.
struct DownInterval {
  sim::SimTime start;
  sim::SimTime end;  // clipped to duration; end == duration means "never recovers"
  bool state_loss = false;
};

// Union of possibly-overlapping intervals; state loss is sticky across a
// merged interval (if any constituent lost the disk, the recovery
// reinstalls).
std::vector<DownInterval> merge_intervals(std::vector<DownInterval> intervals) {
  if (intervals.empty()) {
    return intervals;
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const DownInterval& a, const DownInterval& b) {
              return a.start != b.start ? a.start < b.start : a.end < b.end;
            });
  std::vector<DownInterval> merged;
  merged.push_back(intervals[0]);
  for (size_t i = 1; i < intervals.size(); ++i) {
    DownInterval& last = merged.back();
    if (intervals[i].start <= last.end) {
      last.end = std::max(last.end, intervals[i].end);
      last.state_loss = last.state_loss || intervals[i].state_loss;
    } else {
      merged.push_back(intervals[i]);
    }
  }
  return merged;
}

}  // namespace

const char* churn_event_kind_name(ChurnEventKind kind) {
  switch (kind) {
    case ChurnEventKind::kArrival:
      return "arrival";
    case ChurnEventKind::kLeave:
      return "leave";
    case ChurnEventKind::kCrash:
      return "crash";
    case ChurnEventKind::kRecover:
      return "recover";
  }
  return "?";
}

ChurnSchedule build_churn_schedule(const ChurnConfig& config, uint32_t established,
                                   sim::SimTime duration, sim::Rng& rng) {
  ChurnSchedule out;
  if (!config.enabled() || duration <= sim::SimTime::zero()) {
    return out;
  }

  // Per-peer down intervals from every source, merged per peer below.
  std::vector<std::vector<DownInterval>> per_peer(established);

  // --- Individual session churn (one child split per peer, id order) ------
  if (config.session_churn()) {
    const double total_rate =
        config.leave_rate_per_peer_year + config.crash_rate_per_peer_year;
    const double crash_share = config.crash_rate_per_peer_year / total_rate;
    const sim::SimTime mean_up = sim::SimTime::days(kDaysPerYear / total_rate);
    const sim::SimTime mean_down = sim::SimTime::days(config.mean_downtime_days);
    for (uint32_t p = 0; p < established; ++p) {
      sim::Rng peer_rng = rng.split();
      sim::SimTime t = sim::SimTime::zero();
      while (true) {
        const sim::SimTime down_at = t + peer_rng.exponential_time(mean_up);
        if (down_at >= duration) {
          break;
        }
        const bool crash = peer_rng.bernoulli(crash_share);
        const sim::SimTime up_at = down_at + peer_rng.exponential_time(mean_down);
        per_peer[p].push_back(
            DownInterval{down_at, std::min(up_at, duration), crash});
        if (up_at >= duration) {
          break;
        }
        t = up_at;
      }
    }
  }

  // --- Correlated regional outages (one child split per region) -----------
  if (config.regional_outages() && established > 0) {
    const uint32_t regions = std::min(config.regions, established);
    const sim::SimTime mean_gap =
        sim::SimTime::days(kDaysPerYear / config.regional_outage_rate_per_year);
    const sim::SimTime outage = sim::SimTime::days(config.regional_outage_days);
    const sim::SimTime stagger =
        sim::SimTime::hours(config.regional_recovery_stagger_hours);
    for (uint32_t r = 0; r < regions; ++r) {
      sim::Rng region_rng = rng.split();
      // Balanced contiguous blocks: every region is non-empty (sizes
      // differ by at most one), so `regions: N` means N real regions at
      // any population size.
      const uint32_t first =
          static_cast<uint32_t>(static_cast<uint64_t>(r) * established / regions);
      const uint32_t last =
          static_cast<uint32_t>(static_cast<uint64_t>(r + 1) * established / regions);
      sim::SimTime t = sim::SimTime::zero();
      while (true) {
        const sim::SimTime down_at = t + region_rng.exponential_time(mean_gap);
        if (down_at >= duration) {
          break;
        }
        const sim::SimTime region_up = down_at + outage;
        for (uint32_t p = first; p < last; ++p) {
          // Staggered walk-up: peer k of the region recovers k*stagger
          // after the outage window ends.
          const sim::SimTime up_at = region_up + stagger * static_cast<double>(p - first);
          per_peer[p].push_back(DownInterval{down_at, std::min(up_at, duration),
                                             config.regional_state_loss});
        }
        t = region_up;
      }
    }
  }

  // --- Arrivals (one child split for the whole stream) ---------------------
  std::vector<sim::SimTime> arrivals;
  if (config.arrival_rate_per_year > 0.0) {
    sim::Rng arrival_rng = rng.split();
    const sim::SimTime mean_gap =
        sim::SimTime::days(kDaysPerYear / config.arrival_rate_per_year);
    sim::SimTime t = arrival_rng.exponential_time(mean_gap);
    while (t < duration) {
      arrivals.push_back(t);
      t = t + arrival_rng.exponential_time(mean_gap);
    }
  }
  out.arrival_count = static_cast<uint32_t>(arrivals.size());

  // --- Emit events ---------------------------------------------------------
  for (uint32_t p = 0; p < established; ++p) {
    for (const DownInterval& interval : merge_intervals(std::move(per_peer[p]))) {
      out.events.push_back(ChurnEvent{interval.start,
                                      interval.state_loss ? ChurnEventKind::kCrash
                                                          : ChurnEventKind::kLeave,
                                      p, interval.state_loss});
      if (interval.end < duration) {
        out.events.push_back(
            ChurnEvent{interval.end, ChurnEventKind::kRecover, p, interval.state_loss});
      }
    }
  }
  for (uint32_t a = 0; a < out.arrival_count; ++a) {
    out.events.push_back(ChurnEvent{arrivals[a], ChurnEventKind::kArrival, a, false});
  }
  // Deterministic replay order: time, then peer, then kind. Ties across
  // peers are possible (a region goes down at one instant); the runtime
  // applies them in this exact order.
  std::sort(out.events.begin(), out.events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              if (a.at != b.at) {
                return a.at < b.at;
              }
              if (a.peer != b.peer) {
                return a.peer < b.peer;
              }
              return static_cast<uint8_t>(a.kind) < static_cast<uint8_t>(b.kind);
            });
  return out;
}

ChurnModel::ChurnModel(sim::Simulator& simulator, ChurnSchedule schedule,
                       std::vector<peer::Peer*> established,
                       std::vector<peer::Peer*> arrivals, net::OfflineSetFilter* offline)
    : simulator_(simulator),
      schedule_(std::move(schedule)),
      established_(std::move(established)),
      arrivals_(std::move(arrivals)),
      offline_filter_(offline),
      down_since_(established_.size()),
      is_down_(established_.size(), false) {
  assert(schedule_.arrival_count == arrivals_.size() &&
         "arrival peers must match the schedule's arrival count");
#ifndef NDEBUG
  for (const ChurnEvent& event : schedule_.events) {
    if (event.kind == ChurnEventKind::kArrival) {
      assert(event.peer < arrivals_.size());
    } else {
      assert(event.peer < established_.size());
    }
  }
#endif
}

void ChurnModel::set_transition_hook(std::function<void(const ChurnEvent&)> hook) {
  transition_hook_ = std::move(hook);
}

void ChurnModel::set_recovery_hook(std::function<void(peer::Peer&)> hook) {
  recovery_hook_ = std::move(hook);
}

void ChurnModel::start() {
  if (!schedule_.events.empty()) {
    simulator_.schedule_at(schedule_.events.front().at, [this] { step(); });
  }
}

void ChurnModel::step() {
  assert(cursor_ < schedule_.events.size());
  apply(schedule_.events[cursor_]);
  ++cursor_;
  if (cursor_ < schedule_.events.size()) {
    simulator_.schedule_at(schedule_.events[cursor_].at, [this] { step(); });
  }
}

void ChurnModel::set_offline(uint32_t peer, bool down) {
  // Keep the availability integral current before the population changes.
  const sim::SimTime now = simulator_.now();
  offline_peer_seconds_ +=
      static_cast<double>(offline_count_) * (now - last_change_).to_seconds();
  last_change_ = now;
  is_down_[peer] = down;
  offline_count_ += down ? 1 : -1;
  if (offline_filter_ != nullptr) {
    offline_filter_->set_offline(established_[peer]->id(), down);
  }
}

void ChurnModel::apply(const ChurnEvent& event) {
  switch (event.kind) {
    case ChurnEventKind::kArrival:
      arrivals_[event.peer]->start();
      ++arrivals_started_;
      break;
    case ChurnEventKind::kLeave:
    case ChurnEventKind::kCrash:
      // Build-time interval merging guarantees no double departure.
      assert(!is_down_[event.peer]);
      set_offline(event.peer, true);
      down_since_[event.peer] = event.at;
      established_[event.peer]->depart();
      ++departures_;
      break;
    case ChurnEventKind::kRecover: {
      assert(is_down_[event.peer]);
      set_offline(event.peer, false);
      downtime_seconds_sum_ += (event.at - down_since_[event.peer]).to_seconds();
      peer::Peer& peer = *established_[event.peer];
      peer.recover(event.state_loss);
      ++recoveries_;
      if (recovery_hook_) {
        recovery_hook_(peer);
      }
      break;
    }
  }
  if (transition_hook_) {
    transition_hook_(event);
  }
}

double ChurnModel::online_fraction() const {
  if (established_.empty()) {
    return 1.0;
  }
  return 1.0 - static_cast<double>(offline_count_) /
                   static_cast<double>(established_.size());
}

double ChurnModel::mean_recovery_days() const {
  if (recoveries_ == 0) {
    return 0.0;
  }
  return downtime_seconds_sum_ / static_cast<double>(recoveries_) / 86400.0;
}

double ChurnModel::availability_mean(sim::SimTime now) const {
  if (established_.empty() || now <= sim::SimTime::zero()) {
    return 1.0;
  }
  const double offline_integral =
      offline_peer_seconds_ +
      static_cast<double>(offline_count_) * (now - last_change_).to_seconds();
  return 1.0 - offline_integral /
                   (static_cast<double>(established_.size()) * now.to_seconds());
}

}  // namespace lockss::dynamics
