// Deployment-dynamics configuration (churn + operator response).
//
// The attrition paper evaluates a static deployment: a fixed loyal
// population that is up for the whole run. The LOCKSS sampled-voting paper
// (Maniatis et al., SOSP 2003) — and any real archive — lives in a dynamic
// one: peers join, crash, recover, whole machine rooms lose power, and
// human operators intervene hours or days after something goes wrong.
// These structs describe that dynamics layer declaratively; the engines
// live in dynamics/churn.hpp (session churn, regional outages, arrivals)
// and dynamics/operator_response.hpp (detection-latency-delayed operator
// interventions). campaign::Spec exposes both as `dynamics` and
// `operators` sections (docs/dynamics.md, docs/campaigns.md).
//
// Everything here is pure configuration with no engine dependencies, so
// experiment::ScenarioConfig can embed it without dragging the peer layer
// into every translation unit.
#ifndef LOCKSS_DYNAMICS_SPEC_HPP_
#define LOCKSS_DYNAMICS_SPEC_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace lockss::dynamics {

// Deterministic churn over the established loyal population plus a Poisson
// arrival stream of brand-new peers. All randomness flows from a single
// root-RNG split (one split for the whole churn stream — the determinism
// contract run_scenario documents), and the entire schedule is materialized
// at scenario setup so every identity it will ever need — in particular the
// whole arrival schedule — registers with net::NodeSlotRegistry before any
// traffic flows.
struct ChurnConfig {
  // Individual session churn (per established peer, exponential holding
  // times): graceful departures keep state; crashes lose it — the peer
  // reinstalls from the publisher at recovery and pays for the re-fetch.
  double leave_rate_per_peer_year = 0.0;
  double crash_rate_per_peer_year = 0.0;
  // Mean downtime of an individual departure/crash (exponential).
  double mean_downtime_days = 7.0;

  // Poisson arrivals of brand-new peers over the whole run (deployment-wide
  // rate). Arrivals bootstrap exactly like §9 newcomers: they hold correct
  // publisher replicas and know a sample of holders; nobody knows them.
  double arrival_rate_per_year = 0.0;

  // Correlated regional outages: the established population is split into
  // `regions` contiguous NodeId blocks; each region suffers Poisson outages
  // that take every peer in it down at once. Recovery is staggered — peer k
  // of the region comes back k * stagger after the outage window ends, the
  // way operators walk a rack back up.
  uint32_t regions = 0;
  double regional_outage_rate_per_year = 0.0;  // per region
  double regional_outage_days = 3.0;
  double regional_recovery_stagger_hours = 6.0;
  // Whether a regional outage loses state (disks wiped, publisher re-fetch
  // at recovery) or just connectivity (default).
  bool regional_state_loss = false;

  bool session_churn() const {
    return leave_rate_per_peer_year > 0.0 || crash_rate_per_peer_year > 0.0;
  }
  bool regional_outages() const {
    return regions > 0 && regional_outage_rate_per_year > 0.0;
  }
  bool enabled() const {
    return session_churn() || arrival_rate_per_year > 0.0 || regional_outages();
  }
};

// --- Operator response -----------------------------------------------------

// What wakes the operator up.
enum class OperatorTrigger : uint8_t {
  kAlarm,     // a poll at the attended peer raised an alarm (§4.3)
  kRecovery,  // the attended peer just came back from a departure/crash
};

// What the operator does about it, `detection_latency` later.
enum class OperatorAction : uint8_t {
  kRekey,          // re-key the peer: fresh admission-control state
  kFriendRefresh,  // re-provision the operator-maintained friends list
  kRateTighten,    // tighten the invitation-consideration rate limit
  kAuRecrawl,      // re-crawl every AU from the publisher (repairs damage)
};
constexpr size_t kOperatorActionCount = 4;

const char* operator_trigger_name(OperatorTrigger trigger);
const char* operator_action_name(OperatorAction action);
// Case-sensitive inverses ("alarm" | "recovery"; "rekey" | "friend_refresh"
// | "rate_tighten" | "au_recrawl"); return false on unknown names.
bool parse_operator_trigger(const std::string& name, OperatorTrigger* out);
bool parse_operator_action(const std::string& name, OperatorAction* out);

// One trigger→action rule.
struct OperatorPolicy {
  OperatorTrigger trigger = OperatorTrigger::kAlarm;
  OperatorAction action = OperatorAction::kAuRecrawl;
  // kRateTighten: multiplicative factor on the consideration budget (0, 1].
  // Other actions ignore it.
  double factor = 0.5;
};

struct OperatorResponseConfig {
  // Time between the trigger and the intervention: operators are not on
  // call around the clock, and attackers race this latency.
  sim::SimTime detection_latency = sim::SimTime::days(2);
  // Effort charged for a kAuRecrawl, as a multiple of one full replica
  // hash per AU (fetch from publisher + verify + rewrite) — the same
  // cost model peer::OperatorModel uses for manual audits.
  double recrawl_cost_factor = 2.0;
  std::vector<OperatorPolicy> policies;

  bool enabled() const { return !policies.empty(); }
};

}  // namespace lockss::dynamics

#endif  // LOCKSS_DYNAMICS_SPEC_HPP_
