#include "metrics/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace lockss::metrics {

TraceRecorder::TraceRecorder(sim::SimTime interval) { trace_.interval = interval; }

void TraceRecorder::record(const TracePoint& point) {
  assert(enabled() && "record() on a disabled TraceRecorder");
  assert(!closed_ && "record() after close()");
  assert((trace_.points.empty() || point.t > trace_.points.back().t) &&
         "trace samples must be strictly increasing in time");
  trace_.points.push_back(point);
}

RunTrace TraceRecorder::close(sim::SimTime end) {
  assert(!closed_ && "TraceRecorder::close() called twice");
  assert((trace_.points.empty() || trace_.points.back().t <= end) &&
         "trace extends past end-of-run");
  closed_ = true;
  return std::move(trace_);
}

RunTrace merge_traces(const std::vector<const RunTrace*>& parts) {
  RunTrace out;
  if (parts.empty()) {
    return out;
  }
  size_t min_points = SIZE_MAX;
  for (const RunTrace* part : parts) {
    if (!part->enabled()) {
      return out;  // disabled
    }
    assert(part->interval == parts[0]->interval && "mergeable traces share one interval");
    min_points = std::min(min_points, part->points.size());
  }
  out.interval = parts[0]->interval;
  out.points.reserve(min_points);
  const double inv_n = 1.0 / static_cast<double>(parts.size());
  for (size_t k = 0; k < min_points; ++k) {
    TracePoint merged;
    merged.t = parts[0]->points[k].t;
    merged.online_fraction = 0.0;
    double recovery_weighted = 0.0;
    for (const RunTrace* part : parts) {
      const TracePoint& p = part->points[k];
      assert(p.t == merged.t && "mergeable traces share the sampling grid");
      merged.damaged_fraction += p.damaged_fraction;
      merged.afp_to_date += p.afp_to_date;
      merged.successful_polls += p.successful_polls;
      merged.inquorate_polls += p.inquorate_polls;
      merged.alarms += p.alarms;
      merged.repairs += p.repairs;
      merged.loyal_effort_seconds += p.loyal_effort_seconds;
      merged.adversary_effort_seconds += p.adversary_effort_seconds;
      merged.online_fraction += p.online_fraction;
      merged.departures += p.departures;
      merged.recoveries += p.recoveries;
      merged.faults_injected += p.faults_injected;
      merged.ack_timeouts += p.ack_timeouts;
      merged.vote_timeouts += p.vote_timeouts;
      merged.solicitation_retries += p.solicitation_retries;
      recovery_weighted += p.mean_recovery_days * static_cast<double>(p.recoveries);
    }
    merged.damaged_fraction *= inv_n;
    merged.afp_to_date *= inv_n;
    merged.online_fraction *= inv_n;
    merged.mean_recovery_days =
        merged.recoveries > 0 ? recovery_weighted / static_cast<double>(merged.recoveries)
                              : 0.0;
    out.points.push_back(merged);
  }
  return out;
}

}  // namespace lockss::metrics
