// Evaluation metrics (§6.1).
//
//   * access failure probability — "the fraction of all replicas in the
//     system that are damaged, averaged over all time points": a
//     time-weighted integral of the damaged-replica fraction;
//   * delay ratio — "mean time between successful polls at loyal peers with
//     the system under attack divided by the same measurement without the
//     attack": this collector reports the mean gap; the experiment harness
//     divides attack by baseline;
//   * coefficient of friction — "average effort expended by loyal peers per
//     successful poll during an attack divided by their average per-poll
//     effort absent an attack": the collector reports effort-per-success
//     (effort totals are pushed in at finalize time from the peers' effort
//     meters); the harness forms the ratio;
//   * cost ratio — attacker total effort over defender total effort.
//
// Per-(peer, AU) state lives in a dense array keyed by the SlotRegistry:
// peers and AUs register once at scenario setup, after which record_poll()
// and on_damage_state_change() are O(1) array operations with zero
// allocations. Unregistered ids are registered lazily on first use (the
// allocation then happens once, outside the steady state), so hand-built
// collectors in tests and examples keep working without setup calls.
#ifndef LOCKSS_METRICS_COLLECTOR_HPP_
#define LOCKSS_METRICS_COLLECTOR_HPP_

#include <cstdint>
#include <vector>

#include "metrics/slot_registry.hpp"
#include "net/node_id.hpp"
#include "protocol/host.hpp"
#include "sim/time.hpp"
#include "storage/au.hpp"

namespace lockss::sim {
class Simulator;
}

namespace lockss::metrics {

// One recorded collector mutation, for deterministic sharded replay
// (docs/sharding.md). The §6.1 accumulators include order-dependent
// floating-point sums (the damage integral, the observed-gap sum), so a
// sharded run cannot keep per-shard partial sums — different association,
// different rounding, different bytes. Instead each shard's collector runs
// in *log mode*: every mutation is appended to the shard's MetricLog
// stamped with the shard clock, and at every shard barrier the logs are
// merged by (time, shard, append order) — equal to the serial event order,
// because shard order is NodeId-block order — and replayed into the one
// master collector, reproducing the serial accumulation sequence exactly.
struct MetricEvent {
  enum class Kind : uint8_t { kDamageStateChange, kDamageEvent, kPoll };
  sim::SimTime at;
  Kind kind = Kind::kDamageEvent;
  int64_t delta = 0;             // kDamageStateChange
  net::NodeId poller;            // kPoll
  protocol::PollOutcome outcome;  // kPoll
};
using MetricLog = std::vector<MetricEvent>;

struct MetricsReport {
  double access_failure_probability = 0.0;
  // Mean time between successful polls per (peer, AU), censoring-robust:
  // total observation time across all replicas divided by total successes.
  // Pairs that never succeed lengthen this mean instead of vanishing from
  // it (survivor bias would otherwise hide severe attacks).
  double mean_success_gap_days = 0.0;
  // Mean of the directly observed gaps between consecutive successes of the
  // same (peer, AU) — the naive estimator, kept for diagnostics.
  double mean_observed_gap_days = 0.0;
  uint64_t successful_polls = 0;
  uint64_t inquorate_polls = 0;
  uint64_t alarms = 0;
  uint64_t repairs = 0;
  uint64_t damage_events = 0;
  double loyal_effort_seconds = 0.0;
  double adversary_effort_seconds = 0.0;
  // Loyal effort per successful poll (friction numerator before dividing by
  // the baseline's value).
  double effort_per_successful_poll = 0.0;
  // Attacker / defender effort.
  double cost_ratio = 0.0;
  sim::SimTime duration;
};

class MetricsCollector {
 public:
  // --- Setup-time registration ---------------------------------------------
  // Announces a participant; idempotent. Registering everything up front
  // (scenario.cpp does) keeps the poll path allocation-free.
  void register_peer(net::NodeId id);
  void register_au(storage::AuId au);
  const SlotRegistry& slots() const { return slots_; }

  // Total number of (peer, AU) replicas in the deployment; the denominator
  // of the damaged fraction. Kept explicit rather than derived from the
  // registry because partial-coverage deployments hold fewer replicas than
  // peers x AUs.
  void set_total_replicas(uint64_t n) { total_replicas_ = n; }

  // --- Run-time recording ----------------------------------------------------
  // A replica flipped between damaged and clean. `delta` is +1 (damaged) or
  // -1 (repaired).
  void on_damage_state_change(sim::SimTime now, int64_t delta);

  // A bit-rot injection occurred (rate bookkeeping).
  void on_damage_event();

  // Poll lifecycle.
  void record_poll(net::NodeId poller, const protocol::PollOutcome& outcome);

  // --- Sharded recording (sim/sharded_engine, docs/sharding.md) -------------
  // Turns this collector into a logging front-end: mutations append to
  // `log` stamped with `clock`'s now(), registrations forward to `master`.
  // The scenario's barrier hook merges the per-shard logs deterministically
  // and replays them into the master via apply(). Must be called before any
  // recording; reads on a log-mode collector are meaningless (nothing in
  // the peer stack reads, only the scenario layer does, on the master).
  void set_log_mode(MetricsCollector* master, MetricLog* log, sim::Simulator* clock);
  bool log_mode() const { return log_ != nullptr; }

  // Replays one logged event into this (master) collector.
  void apply(const MetricEvent& e);

  // Effort totals, pushed by the scenario runner at the end of a run.
  void set_effort_totals(double loyal_seconds, double adversary_seconds);

  // Closes the damage integral and computes the report. Must be called
  // exactly once: the integrals are closed and the collector retired, and a
  // second finalize (e.g. a scenario also closing its trace recorder at
  // end-of-run) would silently double-count observation time — so it
  // asserts instead.
  MetricsReport finalize(sim::SimTime end);

  // --- Instantaneous views (trace sampling, examples, debugging) -------------
  uint64_t damaged_replicas_now() const { return damaged_now_; }
  uint64_t total_replicas() const { return total_replicas_; }
  double damaged_fraction_now() const {
    return total_replicas_ > 0
               ? static_cast<double>(damaged_now_) / static_cast<double>(total_replicas_)
               : 0.0;
  }
  // Time-weighted mean damaged fraction over [0, now]. A pure peek: the
  // stored integral is NOT advanced, so sampling never perturbs the
  // summation order (and hence the bit-exact value) of the final report —
  // traced and untraced runs of one config stay bit-identical.
  double afp_to_date(sim::SimTime now) const;
  uint64_t successful_polls() const { return successful_polls_; }
  uint64_t inquorate_polls() const { return inquorate_polls_; }
  uint64_t alarms() const { return alarms_; }
  uint64_t repairs() const { return repairs_; }
  uint64_t damage_events() const { return damage_events_; }

 private:
  void accumulate(sim::SimTime now);
  // Dense index of the (peer, au) pair, registering lazily as needed.
  size_t success_slot(net::NodeId poller, storage::AuId au);

  SlotRegistry slots_;
  uint64_t total_replicas_ = 0;
  uint64_t damaged_now_ = 0;
  sim::SimTime last_change_;
  double damaged_replica_seconds_ = 0.0;

  uint64_t successful_polls_ = 0;
  uint64_t inquorate_polls_ = 0;
  uint64_t alarms_ = 0;
  uint64_t repairs_ = 0;
  uint64_t damage_events_ = 0;

  // Per-(peer, AU) last-success times, peer-major (SlotRegistry::slot).
  // kNever marks a pair with no success yet.
  static constexpr sim::SimTime kNever = sim::SimTime::nanoseconds(INT64_MIN);
  std::vector<sim::SimTime> last_success_;
  double gap_seconds_sum_ = 0.0;
  uint64_t gap_count_ = 0;

  double loyal_effort_seconds_ = 0.0;
  double adversary_effort_seconds_ = 0.0;
  bool finalized_ = false;

  // Log mode (all null on the serial path and on the master).
  MetricsCollector* master_ = nullptr;
  MetricLog* log_ = nullptr;
  sim::Simulator* clock_ = nullptr;
};

}  // namespace lockss::metrics

#endif  // LOCKSS_METRICS_COLLECTOR_HPP_
