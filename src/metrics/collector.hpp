// Evaluation metrics (§6.1).
//
//   * access failure probability — "the fraction of all replicas in the
//     system that are damaged, averaged over all time points": a
//     time-weighted integral of the damaged-replica fraction;
//   * delay ratio — "mean time between successful polls at loyal peers with
//     the system under attack divided by the same measurement without the
//     attack": this collector reports the mean gap; the experiment harness
//     divides attack by baseline;
//   * coefficient of friction — "average effort expended by loyal peers per
//     successful poll during an attack divided by their average per-poll
//     effort absent an attack": the collector reports effort-per-success
//     (effort totals are pushed in at finalize time from the peers' effort
//     meters); the harness forms the ratio;
//   * cost ratio — attacker total effort over defender total effort.
#ifndef LOCKSS_METRICS_COLLECTOR_HPP_
#define LOCKSS_METRICS_COLLECTOR_HPP_

#include <cstdint>
#include <map>
#include <utility>

#include "net/node_id.hpp"
#include "protocol/host.hpp"
#include "sim/time.hpp"
#include "storage/au.hpp"

namespace lockss::metrics {

struct MetricsReport {
  double access_failure_probability = 0.0;
  // Mean time between successful polls per (peer, AU), censoring-robust:
  // total observation time across all replicas divided by total successes.
  // Pairs that never succeed lengthen this mean instead of vanishing from
  // it (survivor bias would otherwise hide severe attacks).
  double mean_success_gap_days = 0.0;
  // Mean of the directly observed gaps between consecutive successes of the
  // same (peer, AU) — the naive estimator, kept for diagnostics.
  double mean_observed_gap_days = 0.0;
  uint64_t successful_polls = 0;
  uint64_t inquorate_polls = 0;
  uint64_t alarms = 0;
  uint64_t repairs = 0;
  uint64_t damage_events = 0;
  double loyal_effort_seconds = 0.0;
  double adversary_effort_seconds = 0.0;
  // Loyal effort per successful poll (friction numerator before dividing by
  // the baseline's value).
  double effort_per_successful_poll = 0.0;
  // Attacker / defender effort.
  double cost_ratio = 0.0;
  sim::SimTime duration;
};

class MetricsCollector {
 public:
  // Total number of (peer, AU) replicas in the deployment; the denominator
  // of the damaged fraction.
  void set_total_replicas(uint64_t n) { total_replicas_ = n; }

  // A replica flipped between damaged and clean. `delta` is +1 (damaged) or
  // -1 (repaired).
  void on_damage_state_change(sim::SimTime now, int64_t delta);

  // A bit-rot injection occurred (rate bookkeeping).
  void on_damage_event() { ++damage_events_; }

  // Poll lifecycle.
  void record_poll(net::NodeId poller, const protocol::PollOutcome& outcome);

  // Effort totals, pushed by the scenario runner at the end of a run.
  void set_effort_totals(double loyal_seconds, double adversary_seconds);

  // Closes the damage integral and computes the report.
  MetricsReport finalize(sim::SimTime end);

  // Instantaneous view (examples / debugging).
  uint64_t damaged_replicas_now() const { return damaged_now_; }
  uint64_t successful_polls() const { return successful_polls_; }
  uint64_t alarms() const { return alarms_; }

 private:
  void accumulate(sim::SimTime now);

  uint64_t total_replicas_ = 0;
  uint64_t damaged_now_ = 0;
  sim::SimTime last_change_;
  double damaged_replica_seconds_ = 0.0;

  uint64_t successful_polls_ = 0;
  uint64_t inquorate_polls_ = 0;
  uint64_t alarms_ = 0;
  uint64_t repairs_ = 0;
  uint64_t damage_events_ = 0;

  // Per-(peer, AU) success gap accounting.
  std::map<std::pair<net::NodeId, storage::AuId>, sim::SimTime> last_success_;
  double gap_seconds_sum_ = 0.0;
  uint64_t gap_count_ = 0;

  double loyal_effort_seconds_ = 0.0;
  double adversary_effort_seconds_ = 0.0;
};

}  // namespace lockss::metrics

#endif  // LOCKSS_METRICS_COLLECTOR_HPP_
