#include "metrics/collector.hpp"

#include <cassert>

#include "sim/simulator.hpp"

namespace lockss::metrics {

void MetricsCollector::set_log_mode(MetricsCollector* master, MetricLog* log,
                                    sim::Simulator* clock) {
  assert(master != nullptr && log != nullptr && clock != nullptr);
  assert(!master->log_mode() && "log-mode collectors must front a real master");
  master_ = master;
  log_ = log;
  clock_ = clock;
}

void MetricsCollector::apply(const MetricEvent& e) {
  assert(!log_mode());
  switch (e.kind) {
    case MetricEvent::Kind::kDamageStateChange:
      on_damage_state_change(e.at, e.delta);
      break;
    case MetricEvent::Kind::kDamageEvent:
      on_damage_event();
      break;
    case MetricEvent::Kind::kPoll:
      record_poll(e.poller, e.outcome);
      break;
  }
}

void MetricsCollector::register_peer(net::NodeId id) {
  if (master_ != nullptr) {
    master_->register_peer(id);
    return;
  }
  const uint32_t rows_before = slots_.peer_count();
  slots_.register_peer(id);
  if (slots_.peer_count() != rows_before) {
    // Peer-major layout: a new peer is a fresh row at the end.
    last_success_.resize(slots_.slot_count(), kNever);
  }
}

void MetricsCollector::register_au(storage::AuId au) {
  if (master_ != nullptr) {
    master_->register_au(au);
    return;
  }
  const uint32_t stride_before = slots_.au_count();
  slots_.register_au(au);
  if (slots_.au_count() == stride_before) {
    return;
  }
  // The row stride grew: re-lay the grid out. Registration is setup-time
  // (or a lazy one-off), so the O(peers x aus) copy is off the poll path.
  std::vector<sim::SimTime> grid(slots_.slot_count(), kNever);
  const uint32_t stride_after = slots_.au_count();
  for (uint32_t p = 0; p < slots_.peer_count(); ++p) {
    for (uint32_t a = 0; a < stride_before; ++a) {
      grid[static_cast<size_t>(p) * stride_after + a] =
          last_success_[static_cast<size_t>(p) * stride_before + a];
    }
  }
  last_success_ = std::move(grid);
}

size_t MetricsCollector::success_slot(net::NodeId poller, storage::AuId au) {
  uint32_t p = slots_.peer_index(poller);
  if (p == SlotRegistry::kUnassigned) {
    register_peer(poller);
    p = slots_.peer_index(poller);
  }
  uint32_t a = slots_.au_index(au);
  if (a == SlotRegistry::kUnassigned) {
    register_au(au);
    a = slots_.au_index(au);
  }
  return slots_.slot(p, a);
}

void MetricsCollector::accumulate(sim::SimTime now) {
  assert(now >= last_change_);
  damaged_replica_seconds_ +=
      static_cast<double>(damaged_now_) * (now - last_change_).to_seconds();
  last_change_ = now;
}

double MetricsCollector::afp_to_date(sim::SimTime now) const {
  assert(now >= last_change_);
  if (total_replicas_ == 0 || now <= sim::SimTime::zero()) {
    return 0.0;
  }
  const double integral =
      damaged_replica_seconds_ +
      static_cast<double>(damaged_now_) * (now - last_change_).to_seconds();
  return integral / (static_cast<double>(total_replicas_) * now.to_seconds());
}

void MetricsCollector::on_damage_state_change(sim::SimTime now, int64_t delta) {
  if (log_ != nullptr) {
    log_->push_back(MetricEvent{now, MetricEvent::Kind::kDamageStateChange, delta, {}, {}});
    return;
  }
  accumulate(now);
  assert(delta >= 0 || damaged_now_ >= static_cast<uint64_t>(-delta));
  damaged_now_ = static_cast<uint64_t>(static_cast<int64_t>(damaged_now_) + delta);
}

void MetricsCollector::on_damage_event() {
  if (log_ != nullptr) {
    log_->push_back(MetricEvent{clock_->now(), MetricEvent::Kind::kDamageEvent, 0, {}, {}});
    return;
  }
  ++damage_events_;
}

void MetricsCollector::record_poll(net::NodeId poller, const protocol::PollOutcome& outcome) {
  if (log_ != nullptr) {
    log_->push_back(MetricEvent{clock_->now(), MetricEvent::Kind::kPoll, 0, poller, outcome});
    return;
  }
  repairs_ += outcome.repairs;
  switch (outcome.kind) {
    case protocol::PollOutcomeKind::kSuccess: {
      ++successful_polls_;
      sim::SimTime& last = last_success_[success_slot(poller, outcome.au)];
      if (last != kNever) {
        gap_seconds_sum_ += (outcome.concluded - last).to_seconds();
        ++gap_count_;
      }
      last = outcome.concluded;
      break;
    }
    case protocol::PollOutcomeKind::kInquorate:
      ++inquorate_polls_;
      break;
    case protocol::PollOutcomeKind::kAlarm:
      ++alarms_;
      break;
  }
}

void MetricsCollector::set_effort_totals(double loyal_seconds, double adversary_seconds) {
  loyal_effort_seconds_ = loyal_seconds;
  adversary_effort_seconds_ = adversary_seconds;
}

MetricsReport MetricsCollector::finalize(sim::SimTime end) {
  assert(!finalized_ && "MetricsCollector::finalize() called twice");
  finalized_ = true;
  accumulate(end);
  MetricsReport report;
  report.duration = end;
  if (total_replicas_ > 0 && end > sim::SimTime::zero()) {
    report.access_failure_probability =
        damaged_replica_seconds_ / (static_cast<double>(total_replicas_) * end.to_seconds());
  }
  report.successful_polls = successful_polls_;
  report.inquorate_polls = inquorate_polls_;
  report.alarms = alarms_;
  report.repairs = repairs_;
  report.damage_events = damage_events_;
  report.mean_observed_gap_days =
      gap_count_ > 0 ? gap_seconds_sum_ / static_cast<double>(gap_count_) / 86400.0 : 0.0;
  if (successful_polls_ > 0 && total_replicas_ > 0) {
    report.mean_success_gap_days = end.to_days() * static_cast<double>(total_replicas_) /
                                   static_cast<double>(successful_polls_);
  }
  report.loyal_effort_seconds = loyal_effort_seconds_;
  report.adversary_effort_seconds = adversary_effort_seconds_;
  report.effort_per_successful_poll =
      successful_polls_ > 0 ? loyal_effort_seconds_ / static_cast<double>(successful_polls_) : 0.0;
  report.cost_ratio =
      loyal_effort_seconds_ > 0.0 ? adversary_effort_seconds_ / loyal_effort_seconds_ : 0.0;
  return report;
}

}  // namespace lockss::metrics
