// Fixed-interval time series of the §6.1 metrics over one run.
//
// The MetricsCollector reduces a whole run to scalars; the LOCKSS voting
// paper (Maniatis et al., SOSP 2003) evaluates the same quantities as time
// series, which is what operators actually watch during an attack: how fast
// the damaged fraction climbs, when polls stop succeeding, how the effort
// integrals diverge. A TraceRecorder samples those quantities on a fixed
// grid (the scenario schedules the sampling events), producing a RunTrace
// that rides along in experiment::RunResult, merges across seed replicas,
// and is emitted as CSV by tools/bench_report and the figure drivers.
//
// Sampling is part of the simulation's deterministic event stream, so a
// trace is bit-identical across ParallelRunner worker counts like every
// other RunResult field.
#ifndef LOCKSS_METRICS_TRACE_HPP_
#define LOCKSS_METRICS_TRACE_HPP_

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace lockss::metrics {

struct TracePoint {
  sim::SimTime t;
  // Instantaneous damaged-replica fraction at t.
  double damaged_fraction = 0.0;
  // Time-weighted mean of the damaged fraction over [0, t] — the access
  // failure probability the run would report if it ended at t.
  double afp_to_date = 0.0;
  // Cumulative counters at t.
  uint64_t successful_polls = 0;
  uint64_t inquorate_polls = 0;
  uint64_t alarms = 0;
  uint64_t repairs = 0;
  // Cumulative effort integrals at t (loyal peers / the adversary).
  double loyal_effort_seconds = 0.0;
  double adversary_effort_seconds = 0.0;
  // Deployment-dynamics series (dynamics::ChurnModel). Static deployments
  // keep the defaults, so fixtures and merges for churn-free runs are
  // unchanged. `online_fraction` is the instantaneous availability of the
  // established population; `departures`/`recoveries` are cumulative;
  // `mean_recovery_days` is the mean completed downtime to date.
  double online_fraction = 1.0;
  uint64_t departures = 0;
  uint64_t recoveries = 0;
  double mean_recovery_days = 0.0;
  // Robustness series (net::FaultModel + poll timeout/retry accounting;
  // docs/faults.md). All cumulative; fault-free runs keep the zero
  // defaults, so existing fixtures and merges are unchanged.
  uint64_t faults_injected = 0;
  uint64_t ack_timeouts = 0;
  uint64_t vote_timeouts = 0;
  uint64_t solicitation_retries = 0;

  // Exact equality over every field — the determinism gates (bench_report,
  // the parallel-runner tests) compare through this so a future field
  // cannot silently escape coverage.
  friend bool operator==(const TracePoint&, const TracePoint&) = default;
};

struct RunTrace {
  // Zero interval means tracing was disabled for the run.
  sim::SimTime interval;
  std::vector<TracePoint> points;

  bool enabled() const { return !interval.is_zero(); }
  friend bool operator==(const RunTrace&, const RunTrace&) = default;
};

class TraceRecorder {
 public:
  // A zero interval disables the recorder (record() must not be called).
  explicit TraceRecorder(sim::SimTime interval);

  bool enabled() const { return trace_.enabled(); }
  sim::SimTime interval() const { return trace_.interval; }

  // Appends one sample; times must be strictly increasing.
  void record(const TracePoint& point);

  // Closes the series and surrenders it. The final point (at end-of-run)
  // must already be recorded; like MetricsCollector::finalize(), closing
  // twice is a bug and asserts.
  RunTrace close(sim::SimTime end);

  size_t sample_count() const { return trace_.points.size(); }

 private:
  RunTrace trace_;
  bool closed_ = false;
};

// Pointwise combination across parts (seed replicas or layers), mirroring
// combine_results(): fractions average, counts and efforts sum. Parts must
// share the sampling interval; the series is truncated to the shortest
// part. Returns a disabled trace if any part is disabled (a mixed grid has
// no meaningful combined series).
RunTrace merge_traces(const std::vector<const RunTrace*>& parts);

}  // namespace lockss::metrics

#endif  // LOCKSS_METRICS_TRACE_HPP_
