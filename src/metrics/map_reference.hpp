// Reference (seed) metrics accounting — TEST AND BENCH USE ONLY.
//
// This is the pre-dense MetricsCollector, preserved verbatim: per-(peer, AU)
// last-success times in a std::map keyed by the pair. It exists so that
//   * tests/metrics_equivalence_test.cpp can property-check that the dense
//     slot-array collector reports byte-identical MetricsReport values over
//     randomized poll/damage sequences, and
//   * bench/micro_metrics can measure the map→dense win on a synthetic
//     workload.
// Nothing in the simulator links against it; keep it that way.
#ifndef LOCKSS_METRICS_MAP_REFERENCE_HPP_
#define LOCKSS_METRICS_MAP_REFERENCE_HPP_

#include <cassert>
#include <cstdint>
#include <map>
#include <utility>

#include "metrics/collector.hpp"

namespace lockss::metrics {

class MapReferenceCollector {
 public:
  void set_total_replicas(uint64_t n) { total_replicas_ = n; }

  void on_damage_state_change(sim::SimTime now, int64_t delta) {
    accumulate(now);
    assert(delta >= 0 || damaged_now_ >= static_cast<uint64_t>(-delta));
    damaged_now_ = static_cast<uint64_t>(static_cast<int64_t>(damaged_now_) + delta);
  }

  void on_damage_event() { ++damage_events_; }

  void record_poll(net::NodeId poller, const protocol::PollOutcome& outcome) {
    repairs_ += outcome.repairs;
    switch (outcome.kind) {
      case protocol::PollOutcomeKind::kSuccess: {
        ++successful_polls_;
        const auto key = std::make_pair(poller, outcome.au);
        auto it = last_success_.find(key);
        if (it != last_success_.end()) {
          gap_seconds_sum_ += (outcome.concluded - it->second).to_seconds();
          ++gap_count_;
          it->second = outcome.concluded;
        } else {
          last_success_.emplace(key, outcome.concluded);
        }
        break;
      }
      case protocol::PollOutcomeKind::kInquorate:
        ++inquorate_polls_;
        break;
      case protocol::PollOutcomeKind::kAlarm:
        ++alarms_;
        break;
    }
  }

  void set_effort_totals(double loyal_seconds, double adversary_seconds) {
    loyal_effort_seconds_ = loyal_seconds;
    adversary_effort_seconds_ = adversary_seconds;
  }

  MetricsReport finalize(sim::SimTime end) {
    accumulate(end);
    MetricsReport report;
    report.duration = end;
    if (total_replicas_ > 0 && end > sim::SimTime::zero()) {
      report.access_failure_probability =
          damaged_replica_seconds_ / (static_cast<double>(total_replicas_) * end.to_seconds());
    }
    report.successful_polls = successful_polls_;
    report.inquorate_polls = inquorate_polls_;
    report.alarms = alarms_;
    report.repairs = repairs_;
    report.damage_events = damage_events_;
    report.mean_observed_gap_days =
        gap_count_ > 0 ? gap_seconds_sum_ / static_cast<double>(gap_count_) / 86400.0 : 0.0;
    if (successful_polls_ > 0 && total_replicas_ > 0) {
      report.mean_success_gap_days = end.to_days() * static_cast<double>(total_replicas_) /
                                     static_cast<double>(successful_polls_);
    }
    report.loyal_effort_seconds = loyal_effort_seconds_;
    report.adversary_effort_seconds = adversary_effort_seconds_;
    report.effort_per_successful_poll =
        successful_polls_ > 0 ? loyal_effort_seconds_ / static_cast<double>(successful_polls_)
                              : 0.0;
    report.cost_ratio =
        loyal_effort_seconds_ > 0.0 ? adversary_effort_seconds_ / loyal_effort_seconds_ : 0.0;
    return report;
  }

 private:
  void accumulate(sim::SimTime now) {
    assert(now >= last_change_);
    damaged_replica_seconds_ +=
        static_cast<double>(damaged_now_) * (now - last_change_).to_seconds();
    last_change_ = now;
  }

  uint64_t total_replicas_ = 0;
  uint64_t damaged_now_ = 0;
  sim::SimTime last_change_;
  double damaged_replica_seconds_ = 0.0;

  uint64_t successful_polls_ = 0;
  uint64_t inquorate_polls_ = 0;
  uint64_t alarms_ = 0;
  uint64_t repairs_ = 0;
  uint64_t damage_events_ = 0;

  std::map<std::pair<net::NodeId, storage::AuId>, sim::SimTime> last_success_;
  double gap_seconds_sum_ = 0.0;
  uint64_t gap_count_ = 0;

  double loyal_effort_seconds_ = 0.0;
  double adversary_effort_seconds_ = 0.0;
};

}  // namespace lockss::metrics

#endif  // LOCKSS_METRICS_MAP_REFERENCE_HPP_
