// Dense (peer, AU) slot indexing for the metrics hot path.
//
// The §6.1 metrics need per-(peer, AU) state (last successful poll time).
// The seed kept it in a std::map keyed by the pair, which allocates a node
// on every first success and pays an ordered lookup on every poll — the
// next hot-path allocation source after the PR 1 event-queue overhaul
// (ROADMAP). Peers and AUs are known at scenario setup, so the registry
// assigns each a dense index once; a (peer, AU) pair then maps to the slot
// `peer_index * au_count + au_index` of a flat array and the poll path is
// two vector reads, no allocation, no ordering comparisons.
//
// NodeId/AuId values are near-dense small integers in every deployment
// (scenario.cpp hands them out sequentially), so the id→index tables are
// direct-indexed vectors rather than hash maps.
#ifndef LOCKSS_METRICS_SLOT_REGISTRY_HPP_
#define LOCKSS_METRICS_SLOT_REGISTRY_HPP_

#include <cstdint>
#include <vector>

#include "net/node_id.hpp"
#include "storage/au.hpp"

namespace lockss::metrics {

class SlotRegistry {
 public:
  static constexpr uint32_t kUnassigned = UINT32_MAX;

  // Idempotent; returns the dense index. Registration is setup-time work
  // and may allocate; lookups never do.
  uint32_t register_peer(net::NodeId id) { return register_id(peer_index_by_id_, id.value, peer_count_); }
  uint32_t register_au(storage::AuId au) { return register_id(au_index_by_id_, au.value, au_count_); }

  // kUnassigned when the id was never registered.
  uint32_t peer_index(net::NodeId id) const { return index_of(peer_index_by_id_, id.value); }
  uint32_t au_index(storage::AuId au) const { return index_of(au_index_by_id_, au.value); }

  uint32_t peer_count() const { return peer_count_; }
  uint32_t au_count() const { return au_count_; }
  size_t slot_count() const {
    return static_cast<size_t>(peer_count_) * static_cast<size_t>(au_count_);
  }
  // Peer-major layout: registering a peer appends a row, registering an AU
  // widens the stride (the owner of the slot array re-lays it out).
  size_t slot(uint32_t peer_idx, uint32_t au_idx) const {
    return static_cast<size_t>(peer_idx) * au_count_ + au_idx;
  }

 private:
  static uint32_t register_id(std::vector<uint32_t>& table, uint32_t raw, uint32_t& count) {
    if (raw >= table.size()) {
      // Widen before adding one: `raw + 1` in uint32 wraps to zero at
      // UINT32_MAX, which would resize the table away and write out of
      // bounds below.
      table.resize(static_cast<size_t>(raw) + 1, kUnassigned);
    }
    if (table[raw] == kUnassigned) {
      table[raw] = count++;
    }
    return table[raw];
  }
  static uint32_t index_of(const std::vector<uint32_t>& table, uint32_t raw) {
    return raw < table.size() ? table[raw] : kUnassigned;
  }

  std::vector<uint32_t> peer_index_by_id_;
  std::vector<uint32_t> au_index_by_id_;
  uint32_t peer_count_ = 0;
  uint32_t au_count_ = 0;
};

}  // namespace lockss::metrics

#endif  // LOCKSS_METRICS_SLOT_REGISTRY_HPP_
