#include "campaign/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace lockss::campaign {

const char* Json::type_name(Type type) {
  switch (type) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return "bool";
    case Type::kNumber:
      return "number";
    case Type::kString:
      return "string";
    case Type::kArray:
      return "array";
    case Type::kObject:
      return "object";
  }
  return "?";
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool parse(Json* out) {
    skip_ws();
    if (!parse_value(out)) {
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing content after the top-level value");
    }
    return true;
  }

 private:
  bool fail(const std::string& reason) {
    *error_ = "line " + std::to_string(line_) + ": " + reason;
    return false;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char take() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
    }
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        take();
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && peek() != '\n') {
          take();
        }
      } else {
        break;
      }
    }
  }

  bool parse_value(Json* out) {
    out->line = line_;
    switch (peek()) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out->type = Json::Type::kString;
        return parse_string(&out->string_value);
      case 't':
      case 'f':
        return parse_bool(out);
      case 'n':
        return parse_null(out);
      case '\0':
        return fail("unexpected end of input");
      default:
        return parse_number(out);
    }
  }

  // Bounded nesting: campaign files are shallow; a pathological input must
  // produce a diagnostic, not a stack overflow.
  static constexpr int kMaxDepth = 64;

  struct DepthGuard {
    int& depth;
    ~DepthGuard() { --depth; }
  };

  bool parse_object(Json* out) {
    if (depth_ >= kMaxDepth) {
      return fail("nesting deeper than 64 levels");
    }
    ++depth_;
    DepthGuard guard{depth_};
    out->type = Json::Type::kObject;
    take();  // '{'
    skip_ws();
    if (peek() == '}') {
      take();
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() == '}') {  // tolerated trailing comma
        take();
        return true;
      }
      if (peek() != '"') {
        return fail("expected a quoted member name");
      }
      std::string name;
      if (!parse_string(&name)) {
        return false;
      }
      if (out->find(name) != nullptr) {
        return fail("duplicate member \"" + name + "\"");
      }
      skip_ws();
      if (peek() != ':') {
        return fail("expected ':' after member name \"" + name + "\"");
      }
      take();
      skip_ws();
      Json value;
      if (!parse_value(&value)) {
        return false;
      }
      out->object_members.emplace_back(std::move(name), std::move(value));
      skip_ws();
      if (peek() == ',') {
        take();
        continue;
      }
      if (peek() == '}') {
        take();
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Json* out) {
    if (depth_ >= kMaxDepth) {
      return fail("nesting deeper than 64 levels");
    }
    ++depth_;
    DepthGuard guard{depth_};
    out->type = Json::Type::kArray;
    take();  // '['
    skip_ws();
    if (peek() == ']') {
      take();
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() == ']') {  // tolerated trailing comma
        take();
        return true;
      }
      Json item;
      if (!parse_value(&item)) {
        return false;
      }
      out->array_items.push_back(std::move(item));
      skip_ws();
      if (peek() == ',') {
        take();
        continue;
      }
      if (peek() == ']') {
        take();
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    take();  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) {
        return fail("unterminated string");
      }
      char c = take();
      if (c == '"') {
        return true;
      }
      if (c == '\n') {
        return fail("newline inside string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return fail("unterminated escape");
      }
      c = take();
      switch (c) {
        case '"':
        case '\\':
        case '/':
          out->push_back(c);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        default:
          // \uXXXX and friends are outside the campaign-file subset.
          return fail(std::string("unsupported escape '\\") + c + "'");
      }
    }
  }

  bool parse_bool(Json* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->type = Json::Type::kBool;
      out->bool_value = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->type = Json::Type::kBool;
      out->bool_value = false;
      return true;
    }
    return fail("malformed literal");
  }

  bool parse_null(Json* out) {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out->type = Json::Type::kNull;
      return true;
    }
    return fail("malformed literal");
  }

  bool parse_number(Json* out) {
    const size_t start = pos_;
    if (peek() == '-') {
      take();
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      take();
    }
    if (peek() == '.') {
      take();
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        take();
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      take();
      if (peek() == '+' || peek() == '-') {
        take();
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        take();
      }
    }
    if (pos_ == start) {
      return fail("expected a value");
    }
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    out->type = Json::Type::kNumber;
    out->number_value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return fail("malformed number '" + token + "'");
    }
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
  int line_ = 1;
  int depth_ = 0;
};

}  // namespace

bool parse_json(const std::string& text, Json* out, std::string* error) {
  std::string local_error;
  Parser parser(text, error != nullptr ? error : &local_error);
  *out = Json{};
  return parser.parse(out);
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// --- JsonWriter ---------------------------------------------------------

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) {
      out_ += ",";
    }
    first_in_scope_.back() = false;
    out_ += "\n";
    out_.append(2 * first_in_scope_.size(), ' ');
  }
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += "{";
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = first_in_scope_.back();
  first_in_scope_.pop_back();
  if (!empty) {
    out_ += "\n";
    out_.append(2 * first_in_scope_.size(), ' ');
  }
  out_ += "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ += "[";
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool empty = first_in_scope_.back();
  first_in_scope_.pop_back();
  if (!empty) {
    out_ += "\n";
    out_.append(2 * first_in_scope_.size(), ' ');
  }
  out_ += "]";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  separator();
  out_ += "\"" + escape_json(name) + "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separator();
  out_ += "\"" + escape_json(v) + "\"";
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  separator();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace lockss::campaign
