#include "campaign/fault.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>

#include "crypto/digest.hpp"

namespace lockss::campaign {
namespace {

// Splits "a,b,c" into trimmed non-empty directives.
std::vector<std::string> split_directives(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(',', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    std::string item = text.substr(start, end - start);
    while (!item.empty() && (item.front() == ' ' || item.front() == '\t')) {
      item.erase(item.begin());
    }
    while (!item.empty() && (item.back() == ' ' || item.back() == '\t')) {
      item.pop_back();
    }
    if (!item.empty()) {
      out.push_back(std::move(item));
    }
    if (end == text.size()) {
      break;
    }
    start = end + 1;
  }
  return out;
}

bool parse_u64(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool parse_real(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

bool parse_fault_plan(const std::string& text, FaultPlan* out, std::string* error) {
  *out = FaultPlan{};
  for (const std::string& directive : split_directives(text)) {
    uint64_t n = 0;
    if (directive.rfind("cell:", 0) == 0) {
      const size_t at = directive.find('@');
      uint64_t index = 0, attempts = 0;
      if (at == std::string::npos || !parse_u64(directive.substr(5, at - 5), &index) ||
          !parse_u64(directive.substr(at + 1), &attempts) || attempts == 0) {
        *error = "fault-inject: expected cell:<index>@<attempts>, got '" + directive + "'";
        return false;
      }
      out->fail_cell_index = static_cast<size_t>(index);
      out->fail_attempts = static_cast<uint32_t>(attempts);
    } else if (directive.rfind("baseline@", 0) == 0) {
      uint64_t attempts = 0;
      if (!parse_u64(directive.substr(9), &attempts) || attempts == 0) {
        *error = "fault-inject: expected baseline@<attempts>, got '" + directive + "'";
        return false;
      }
      out->fail_baseline = true;
      out->fail_attempts = static_cast<uint32_t>(attempts);
    } else if (directive.rfind("cellrate:", 0) == 0) {
      double rate = 0.0;
      if (!parse_real(directive.substr(9), &rate) || rate < 0.0 || rate > 1.0) {
        *error = "fault-inject: expected cellrate:<probability in [0,1]>, got '" + directive +
                 "'";
        return false;
      }
      out->cell_failure_rate = rate;
    } else if (directive.rfind("journal-io:", 0) == 0) {
      if (!parse_u64(directive.substr(11), &n)) {
        *error = "fault-inject: expected journal-io:<append ordinal>, got '" + directive + "'";
        return false;
      }
      out->journal_io_failures.push_back(n);
    } else if (directive.rfind("artifact-io:", 0) == 0) {
      const std::string name = directive.substr(12);
      if (name.empty()) {
        *error = "fault-inject: expected artifact-io:<file name>, got '" + directive + "'";
        return false;
      }
      out->artifact_io_failures.push_back(name);
    } else if (directive.rfind("kill:", 0) == 0) {
      if (!parse_u64(directive.substr(5), &n)) {
        *error = "fault-inject: expected kill:<append ordinal>, got '" + directive + "'";
        return false;
      }
      out->kill_after_append.push_back(n);
    } else {
      *error = "fault-inject: unknown directive '" + directive +
               "' (expected cell:/baseline@/cellrate:/journal-io:/artifact-io:/kill:)";
      return false;
    }
    out->enabled = true;
  }
  return true;
}

bool FaultPlan::should_fail_unit(bool is_baseline, size_t cell_index, uint64_t unit_hash,
                                 uint32_t attempt) const {
  if (!enabled) {
    return false;
  }
  if (fail_attempts > 0 && attempt <= fail_attempts &&
      ((is_baseline && fail_baseline) ||
       (!is_baseline && fail_cell_index != kNoCell && cell_index == fail_cell_index))) {
    return true;
  }
  if (cell_failure_rate > 0.0) {
    // One independent, reproducible draw per (campaign, unit, attempt):
    // strong-mix the coordinates and compare 53 uniform bits against the
    // rate. Worker count and completion order never enter.
    const uint64_t draw = crypto::mix64(
        campaign_hash ^ crypto::mix64(unit_hash + 0x9E3779B97F4A7C15ull * attempt));
    const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
    if (u < cell_failure_rate) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::should_fail_journal_append(uint64_t ordinal) const {
  return enabled && std::find(journal_io_failures.begin(), journal_io_failures.end(),
                              ordinal) != journal_io_failures.end();
}

bool FaultPlan::should_fail_artifact(const std::string& file_name) const {
  return enabled && std::find(artifact_io_failures.begin(), artifact_io_failures.end(),
                              file_name) != artifact_io_failures.end();
}

void FaultPlan::maybe_kill_after_append(uint64_t ordinal) const {
  if (enabled && std::find(kill_after_append.begin(), kill_after_append.end(), ordinal) !=
                     kill_after_append.end()) {
    // A hard kill, not an exception: the point is that *nothing* below this
    // line runs — no flushes, no destructors — exactly like SIGKILL.
    ::_exit(137);
  }
}

}  // namespace lockss::campaign
