// Content-addressed campaign cells.
//
// Crash-resumable execution (campaign/journal.hpp) needs a stable identity
// for every unit of work: a journal written by one process must be
// readable by a resume with a different worker count, binary build, or
// host, and must be rejected when the spec itself changed. The identity is
// a 64-bit FNV-1a hash over a *canonical* JSON rendering of the semantic
// spec fields — canonical means a fixed key order and fixed number
// formatting (%.17g round-trip), so the hash is byte-stable against key
// reordering, comments, and whitespace in the campaign file, and
// deterministic across platforms (no pointer values, no locale, no
// iteration-order dependence).
//
// What the canonical form covers is exactly what determines computed
// results: deployment scale, damage model, protocol overrides (in
// application order — order is semantic), dynamics/operators, the
// adversary pipeline, sweep axes (in grid order), seed/seeds/layers, and
// tracing. Cosmetic fields (description, output file names, figure layout)
// are excluded: re-plotting the same cells is reuse, not new work.
//
// Per-cell identity extends the campaign hash with the cell's coordinates
// (index, label, axis values) plus the replication parameters, so "cell 7
// of this exact spec" names the same computation forever. The baseline
// unit uses a reserved label that no compiled cell can collide with.
#ifndef LOCKSS_CAMPAIGN_CELL_HASH_HPP_
#define LOCKSS_CAMPAIGN_CELL_HASH_HPP_

#include <cstdint>
#include <string>

#include "campaign/spec.hpp"

namespace lockss::campaign {

// 64-bit FNV-1a over bytes: tiny, dependency-free, identical on every
// platform and compiler (unlike std::hash).
uint64_t fnv1a64(const void* data, size_t len);
uint64_t fnv1a64(const std::string& s);

// The canonical JSON rendering of a spec's semantic fields (fixed key
// order, %.17g numbers). Exposed so tests can pin byte-stability.
std::string render_spec_canonical(const Spec& spec);

// Identity of the whole campaign: fnv1a64(render_spec_canonical(spec)).
uint64_t campaign_hash(const Spec& spec);

// Identity of one compiled cell within a campaign.
uint64_t cell_identity(uint64_t campaign_hash_value, size_t cell_index,
                       const CompiledCell& cell);

// Identity of the adversary-free baseline unit.
uint64_t baseline_identity(uint64_t campaign_hash_value);

}  // namespace lockss::campaign

#endif  // LOCKSS_CAMPAIGN_CELL_HASH_HPP_
