// Deterministic fault injection for campaign execution.
//
// The crash-resumability contract (journal + atomic artifacts + per-cell
// retry) is only trustworthy if kill-resume-verify loops run in CI rather
// than being hand-tested. A FaultPlan describes, deterministically, which
// faults to inject during one campaign run:
//
//   * cell-run exceptions — a chosen cell (or the baseline, or a seeded
//     random fraction of all cells) throws instead of computing, for a
//     chosen number of attempts, exercising retry and failed-cell
//     bookkeeping;
//   * simulated I/O errors — a chosen journal append or artifact write
//     fails the way a full disk would, exercising clean error unwinding;
//   * hard kills — _exit(137) immediately after a chosen journal append,
//     exercising resume from every journal offset.
//
// Plans parse from a compact directive string (comma-separated), supplied
// via `lockss_campaign --fault-inject=<spec>` or the LOCKSS_FAULT_INJECT
// environment variable:
//
//   cell:<k>@<n>       cell index k throws on attempts 1..n
//   baseline@<n>       the baseline unit throws on attempts 1..n
//   cellrate:<p>       every (unit, attempt) throws with probability p,
//                      seeded from the campaign hash — deterministic for a
//                      given spec, uncorrelated across cells and attempts
//   journal-io:<n>     the nth journal append (header = 0) fails with a
//                      simulated I/O error
//   artifact-io:<name> writing the artifact whose file name is <name>
//                      fails with a simulated I/O error
//   kill:<n>           _exit(137) immediately after the nth journal append
//                      (header = 0, first unit record = 1, ...)
//
// Everything is a pure function of (plan, campaign hash, unit hash,
// attempt), so a plan replays identically at any worker count.
#ifndef LOCKSS_CAMPAIGN_FAULT_HPP_
#define LOCKSS_CAMPAIGN_FAULT_HPP_

#include <cstdint>
#include <string>
#include <vector>

namespace lockss::campaign {

struct FaultPlan {
  static constexpr size_t kNoCell = static_cast<size_t>(-1);

  bool enabled = false;

  // cell:<k>@<n> / baseline@<n>
  size_t fail_cell_index = kNoCell;
  bool fail_baseline = false;
  uint32_t fail_attempts = 0;  // attempts 1..fail_attempts throw

  // cellrate:<p>
  double cell_failure_rate = 0.0;

  std::vector<uint64_t> journal_io_failures;   // append ordinals
  std::vector<std::string> artifact_io_failures;  // artifact file names
  std::vector<uint64_t> kill_after_append;     // append ordinals

  // Set by the engine before execution; seeds the cellrate draw.
  uint64_t campaign_hash = 0;

  // Whether unit (`is_baseline`, `cell_index`, `unit_hash`) should throw on
  // its `attempt`-th attempt (1-based).
  bool should_fail_unit(bool is_baseline, size_t cell_index, uint64_t unit_hash,
                        uint32_t attempt) const;
  // Whether the journal append with this ordinal should report an I/O error.
  bool should_fail_journal_append(uint64_t ordinal) const;
  // Whether writing this artifact (by file name, directory stripped) should
  // report an I/O error.
  bool should_fail_artifact(const std::string& file_name) const;
  // Calls _exit(137) when the plan schedules a kill after this append.
  void maybe_kill_after_append(uint64_t ordinal) const;
};

// Parses a directive string. Empty input yields a disabled plan. Returns
// false with a one-line diagnostic on any malformed directive.
bool parse_fault_plan(const std::string& text, FaultPlan* out, std::string* error);

}  // namespace lockss::campaign

#endif  // LOCKSS_CAMPAIGN_FAULT_HPP_
