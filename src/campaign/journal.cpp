#include "campaign/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "campaign/cell_hash.hpp"

namespace lockss::campaign {
namespace {

// Fixed-width little-endian packing, independent of host endianness.
void put_u32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_i64(std::string* out, int64_t v) { put_u64(out, static_cast<uint64_t>(v)); }

void put_double(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::string* out, const std::string& s) {
  put_u32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool get_u32(const std::string& in, size_t* cursor, uint32_t* v) {
  if (in.size() - *cursor < 4 || *cursor > in.size()) {
    return false;
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(in[*cursor + i])) << (8 * i);
  }
  *cursor += 4;
  *v = out;
  return true;
}

bool get_u64(const std::string& in, size_t* cursor, uint64_t* v) {
  if (in.size() - *cursor < 8 || *cursor > in.size()) {
    return false;
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(in[*cursor + i])) << (8 * i);
  }
  *cursor += 8;
  *v = out;
  return true;
}

bool get_i64(const std::string& in, size_t* cursor, int64_t* v) {
  uint64_t u;
  if (!get_u64(in, cursor, &u)) {
    return false;
  }
  *v = static_cast<int64_t>(u);
  return true;
}

bool get_double(const std::string& in, size_t* cursor, double* v) {
  uint64_t bits;
  if (!get_u64(in, cursor, &bits)) {
    return false;
  }
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool get_string(const std::string& in, size_t* cursor, std::string* s) {
  uint32_t len;
  if (!get_u32(in, cursor, &len) || in.size() - *cursor < len) {
    return false;
  }
  s->assign(in, *cursor, len);
  *cursor += len;
  return true;
}

constexpr uint8_t kRecordHeader = 0;
constexpr uint8_t kRecordResult = 1;
constexpr uint8_t kRecordFailure = 2;

// Defense against garbage length words: no legitimate record (even a
// year-long daily trace) comes near this.
constexpr uint32_t kMaxPayload = 256u << 20;

}  // namespace

void serialize_run_result(const experiment::RunResult& result, std::string* out) {
  const metrics::MetricsReport& m = result.report;
  put_double(out, m.access_failure_probability);
  put_double(out, m.mean_success_gap_days);
  put_double(out, m.mean_observed_gap_days);
  put_u64(out, m.successful_polls);
  put_u64(out, m.inquorate_polls);
  put_u64(out, m.alarms);
  put_u64(out, m.repairs);
  put_u64(out, m.damage_events);
  put_double(out, m.loyal_effort_seconds);
  put_double(out, m.adversary_effort_seconds);
  put_double(out, m.effort_per_successful_poll);
  put_double(out, m.cost_ratio);
  put_i64(out, m.duration.ns());

  put_i64(out, result.trace.interval.ns());
  put_u64(out, result.trace.points.size());
  for (const metrics::TracePoint& p : result.trace.points) {
    put_i64(out, p.t.ns());
    put_double(out, p.damaged_fraction);
    put_double(out, p.afp_to_date);
    put_u64(out, p.successful_polls);
    put_u64(out, p.inquorate_polls);
    put_u64(out, p.alarms);
    put_u64(out, p.repairs);
    put_double(out, p.loyal_effort_seconds);
    put_double(out, p.adversary_effort_seconds);
    put_double(out, p.online_fraction);
    put_u64(out, p.departures);
    put_u64(out, p.recoveries);
    put_double(out, p.mean_recovery_days);
    put_u64(out, p.faults_injected);
    put_u64(out, p.ack_timeouts);
    put_u64(out, p.vote_timeouts);
    put_u64(out, p.solicitation_retries);
  }

  put_u64(out, result.polls_started);
  put_u64(out, result.solicitations_sent);
  put_u64(out, result.messages_delivered);
  put_u64(out, result.messages_filtered);
  put_u64(out, result.adversary_invitations);
  put_u64(out, result.adversary_admissions);
  for (uint64_t v : result.admission_verdicts) {
    put_u64(out, v);
  }
  put_u64(out, result.events_processed);
  put_u64(out, result.peak_queue_depth);
  put_u64(out, result.churn_departures);
  put_u64(out, result.churn_recoveries);
  put_u64(out, result.churn_arrivals);
  put_double(out, result.availability_mean);
  put_double(out, result.mean_recovery_days);
  for (uint64_t v : result.operator_interventions) {
    put_u64(out, v);
  }
  put_u64(out, result.faults_lost);
  put_u64(out, result.faults_burst_dropped);
  put_u64(out, result.faults_duplicated);
  put_u64(out, result.faults_jittered);
  put_u64(out, result.ack_timeouts);
  put_u64(out, result.vote_timeouts);
  put_u64(out, result.solicitation_retries);
  for (uint64_t v : result.polls_aborted) {
    put_u64(out, v);
  }
  put_u64(out, result.sessions_live_at_end);
  put_u64(out, result.stale_sessions_at_end);
  put_u64(out, result.reservations_beyond_horizon);
  put_u64(out, result.policy_triggers);
  for (uint64_t v : result.policy_actions) {
    put_u64(out, v);
  }
  // result.schedules is deliberately not serialized: campaign units never
  // collect schedule history (it is a layering-internal transfer buffer).
  // result.obs_events and result.profile are deliberately not serialized
  // either: traces live in their own .trace.bin artifacts (written before
  // the journal append, so a resumed unit's artifact already exists), and
  // the wall-clock profile is non-deterministic by nature — journaling it
  // would make resumed manifests disagree with fresh ones.
}

bool deserialize_run_result(const std::string& bytes, size_t* cursor,
                            experiment::RunResult* out) {
  metrics::MetricsReport& m = out->report;
  int64_t ns;
  bool ok = get_double(bytes, cursor, &m.access_failure_probability) &&
            get_double(bytes, cursor, &m.mean_success_gap_days) &&
            get_double(bytes, cursor, &m.mean_observed_gap_days) &&
            get_u64(bytes, cursor, &m.successful_polls) &&
            get_u64(bytes, cursor, &m.inquorate_polls) &&
            get_u64(bytes, cursor, &m.alarms) &&
            get_u64(bytes, cursor, &m.repairs) &&
            get_u64(bytes, cursor, &m.damage_events) &&
            get_double(bytes, cursor, &m.loyal_effort_seconds) &&
            get_double(bytes, cursor, &m.adversary_effort_seconds) &&
            get_double(bytes, cursor, &m.effort_per_successful_poll) &&
            get_double(bytes, cursor, &m.cost_ratio) && get_i64(bytes, cursor, &ns);
  if (!ok) {
    return false;
  }
  m.duration = sim::SimTime::nanoseconds(ns);

  if (!get_i64(bytes, cursor, &ns)) {
    return false;
  }
  out->trace.interval = sim::SimTime::nanoseconds(ns);
  uint64_t points;
  if (!get_u64(bytes, cursor, &points) || points > (bytes.size() - *cursor) / 8) {
    return false;
  }
  out->trace.points.resize(points);
  for (metrics::TracePoint& p : out->trace.points) {
    if (!get_i64(bytes, cursor, &ns)) {
      return false;
    }
    p.t = sim::SimTime::nanoseconds(ns);
    ok = get_double(bytes, cursor, &p.damaged_fraction) &&
         get_double(bytes, cursor, &p.afp_to_date) &&
         get_u64(bytes, cursor, &p.successful_polls) &&
         get_u64(bytes, cursor, &p.inquorate_polls) && get_u64(bytes, cursor, &p.alarms) &&
         get_u64(bytes, cursor, &p.repairs) &&
         get_double(bytes, cursor, &p.loyal_effort_seconds) &&
         get_double(bytes, cursor, &p.adversary_effort_seconds) &&
         get_double(bytes, cursor, &p.online_fraction) &&
         get_u64(bytes, cursor, &p.departures) && get_u64(bytes, cursor, &p.recoveries) &&
         get_double(bytes, cursor, &p.mean_recovery_days) &&
         get_u64(bytes, cursor, &p.faults_injected) &&
         get_u64(bytes, cursor, &p.ack_timeouts) &&
         get_u64(bytes, cursor, &p.vote_timeouts) &&
         get_u64(bytes, cursor, &p.solicitation_retries);
    if (!ok) {
      return false;
    }
  }

  ok = get_u64(bytes, cursor, &out->polls_started) &&
       get_u64(bytes, cursor, &out->solicitations_sent) &&
       get_u64(bytes, cursor, &out->messages_delivered) &&
       get_u64(bytes, cursor, &out->messages_filtered) &&
       get_u64(bytes, cursor, &out->adversary_invitations) &&
       get_u64(bytes, cursor, &out->adversary_admissions);
  if (!ok) {
    return false;
  }
  for (uint64_t& v : out->admission_verdicts) {
    if (!get_u64(bytes, cursor, &v)) {
      return false;
    }
  }
  ok = get_u64(bytes, cursor, &out->events_processed) &&
       get_u64(bytes, cursor, &out->peak_queue_depth) &&
       get_u64(bytes, cursor, &out->churn_departures) &&
       get_u64(bytes, cursor, &out->churn_recoveries) &&
       get_u64(bytes, cursor, &out->churn_arrivals) &&
       get_double(bytes, cursor, &out->availability_mean) &&
       get_double(bytes, cursor, &out->mean_recovery_days);
  if (!ok) {
    return false;
  }
  for (uint64_t& v : out->operator_interventions) {
    if (!get_u64(bytes, cursor, &v)) {
      return false;
    }
  }
  ok = get_u64(bytes, cursor, &out->faults_lost) &&
       get_u64(bytes, cursor, &out->faults_burst_dropped) &&
       get_u64(bytes, cursor, &out->faults_duplicated) &&
       get_u64(bytes, cursor, &out->faults_jittered) &&
       get_u64(bytes, cursor, &out->ack_timeouts) &&
       get_u64(bytes, cursor, &out->vote_timeouts) &&
       get_u64(bytes, cursor, &out->solicitation_retries);
  if (!ok) {
    return false;
  }
  for (uint64_t& v : out->polls_aborted) {
    if (!get_u64(bytes, cursor, &v)) {
      return false;
    }
  }
  ok = get_u64(bytes, cursor, &out->sessions_live_at_end) &&
       get_u64(bytes, cursor, &out->stale_sessions_at_end) &&
       get_u64(bytes, cursor, &out->reservations_beyond_horizon) &&
       get_u64(bytes, cursor, &out->policy_triggers);
  if (!ok) {
    return false;
  }
  for (uint64_t& v : out->policy_actions) {
    if (!get_u64(bytes, cursor, &v)) {
      return false;
    }
  }
  return true;
}

bool read_journal(const std::string& path, JournalContents* out, std::string* error) {
  *out = JournalContents{};
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    *error = path + ": cannot open";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  size_t cursor = 0;
  bool first = true;
  while (cursor < bytes.size()) {
    const size_t record_start = cursor;
    uint32_t length;
    uint64_t checksum;
    if (!get_u32(bytes, &cursor, &length) || length > kMaxPayload ||
        !get_u64(bytes, &cursor, &checksum) || bytes.size() - cursor < length) {
      out->torn_tail = true;
      break;
    }
    const std::string payload = bytes.substr(cursor, length);
    cursor += length;
    if (fnv1a64(payload) != checksum) {
      out->torn_tail = true;
      cursor = record_start;
      break;
    }

    const uint8_t type =
        payload.empty() ? 0xFF : static_cast<uint8_t>(static_cast<unsigned char>(payload[0]));
    size_t p = 1;
    bool parsed = false;
    if (type == kRecordHeader && first) {
      uint32_t magic, version;
      uint64_t hash;
      if (get_u32(payload, &p, &magic) && magic == kJournalMagic &&
          get_u32(payload, &p, &version) && version == kJournalVersion &&
          get_u64(payload, &p, &hash)) {
        out->header_ok = true;
        out->campaign_hash = hash;
        parsed = true;
      }
    } else if (type == kRecordResult && !first) {
      JournalRecord record;
      if (get_u64(payload, &p, &record.unit_hash) &&
          deserialize_run_result(payload, &p, &record.result) && p == payload.size()) {
        out->records.push_back(std::move(record));
        parsed = true;
      }
    } else if (type == kRecordFailure && !first) {
      JournalRecord record;
      record.failed = true;
      if (get_u64(payload, &p, &record.unit_hash) && get_u32(payload, &p, &record.attempts) &&
          get_string(payload, &p, &record.diagnostic) && p == payload.size()) {
        out->records.push_back(std::move(record));
        parsed = true;
      }
    }
    if (!parsed) {
      // Framing was intact but the payload is not a record we understand:
      // treat it like a torn tail so the valid prefix is still recovered.
      out->torn_tail = true;
      cursor = record_start;
      break;
    }
    first = false;
    out->valid_bytes = cursor;
  }
  if (cursor < bytes.size()) {
    out->torn_tail = true;
  }
  return true;
}

JournalWriter::~JournalWriter() { close(); }

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool JournalWriter::create(const std::string& path, uint64_t campaign_hash,
                           std::string* error) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    *error = path + ": cannot create journal: " + std::strerror(errno);
    return false;
  }
  path_ = path;
  appends_ = 0;
  std::string payload;
  payload.push_back(static_cast<char>(kRecordHeader));
  put_u32(&payload, kJournalMagic);
  put_u32(&payload, kJournalVersion);
  put_u64(&payload, campaign_hash);
  return append_payload(payload, error);
}

bool JournalWriter::open_append(const std::string& path, uint64_t valid_bytes,
                                std::string* error) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd_ < 0) {
    *error = path + ": cannot open journal for append: " + std::strerror(errno);
    return false;
  }
  // Discard any torn tail before appending, so the file stays a valid
  // record sequence from byte 0.
  if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    *error = path + ": cannot truncate torn journal tail: " + std::strerror(errno);
    close();
    return false;
  }
  path_ = path;
  appends_ = 0;
  return true;
}

bool JournalWriter::append_payload(const std::string& payload, std::string* error) {
  std::string frame;
  frame.reserve(12 + payload.size());
  put_u32(&frame, static_cast<uint32_t>(payload.size()));
  put_u64(&frame, fnv1a64(payload));
  frame.append(payload);
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = path_ + ": journal write failed: " + std::strerror(errno);
      return false;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    *error = path_ + ": journal fsync failed: " + std::strerror(errno);
    return false;
  }
  ++appends_;
  return true;
}

bool JournalWriter::append_result(uint64_t unit_hash, const experiment::RunResult& result,
                                  std::string* error) {
  std::string payload;
  payload.push_back(static_cast<char>(kRecordResult));
  put_u64(&payload, unit_hash);
  serialize_run_result(result, &payload);
  return append_payload(payload, error);
}

bool JournalWriter::append_failure(uint64_t unit_hash, uint32_t attempts,
                                   const std::string& diagnostic, std::string* error) {
  std::string payload;
  payload.push_back(static_cast<char>(kRecordFailure));
  put_u64(&payload, unit_hash);
  put_u32(&payload, attempts);
  put_string(&payload, diagnostic);
  return append_payload(payload, error);
}

}  // namespace lockss::campaign
