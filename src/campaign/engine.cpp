#include "campaign/engine.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "analysis/gnuplot.hpp"
#include "campaign/cell_hash.hpp"
#include "campaign/journal.hpp"
#include "experiment/aggregate.hpp"
#include "experiment/runner.hpp"
#include "experiment/table.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"

namespace lockss::campaign {
namespace {

std::string join_path(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir == ".") {
    return name;
  }
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

std::string base_name(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Flushes `tmp` to stable storage and renames it over `path` — the atomic
// commit: a kill before the rename leaves the previous artifact (or none),
// a kill after leaves the new one, and nothing in between is observable.
bool commit_artifact(const std::string& tmp, const std::string& path, const FaultPlan& faults,
                     std::string* error) {
  if (faults.should_fail_artifact(base_name(path))) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    *error = path + ": injected artifact I/O error";
    return false;
  }
  const int fd = ::open(tmp.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    *error = "cannot rename " + tmp + " over " + path + ": " + ec.message();
    return false;
  }
  return true;
}

bool write_file_atomic(const std::string& path, const std::string& content,
                       const FaultPlan& faults, std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      *error = "cannot write " + tmp;
      return false;
    }
    out << content;
    out.close();
    if (!out) {
      *error = "write failed: " + tmp;
      return false;
    }
  }
  return commit_artifact(tmp, path, faults, error);
}

double figure_metric(const std::string& metric, const experiment::RelativeMetrics& rel) {
  if (metric == "access_failure") {
    return rel.access_failure;
  }
  if (metric == "delay_ratio") {
    return rel.delay_ratio;
  }
  return rel.friction;
}

// The attrition-sweep CSV layout, byte-identical to bench/attrition_sweep.hpp:
// rows = axis 0, one column per axis-1 value labelled "<v>%", access-failure
// cells in %.2e and everything else in %.2f, plus the companion trace CSV
// and gnuplot script. Each file is staged to <name>.tmp and atomically
// renamed into place.
bool write_figure(const CompiledCampaign& campaign, const CampaignOutcome& outcome,
                  const RunOptions& options, std::vector<std::string>* files,
                  std::string* error) {
  const Spec& spec = campaign.spec;
  const SweepAxis& rows = spec.axes[0];
  const SweepAxis& cols = spec.axes[1];
  const std::string csv_path = join_path(options.out_dir, spec.figure.csv);
  const std::string csv_tmp = csv_path + ".tmp";

  std::vector<std::string> columns = {spec.figure.row_header};
  for (double v : cols.values) {
    columns.push_back(experiment::TableWriter::fixed(v, 0) + "%");
  }
  {
    experiment::TableWriter table(columns, csv_tmp, /*echo_stdout=*/!options.quiet);
    if (!table.csv_ok()) {
      *error = "cannot write " + csv_path;
      return false;
    }
    table.header();
    size_t cell = 0;
    for (double row_value : rows.values) {
      std::vector<std::string> row = {experiment::TableWriter::fixed(row_value, 0)};
      for (size_t c = 0; c < cols.values.size(); ++c) {
        const experiment::RelativeMetrics rel =
            experiment::relative_metrics(outcome.cells[cell++], outcome.baseline);
        const double value = figure_metric(spec.figure.metric, rel);
        row.push_back(spec.figure.metric == "access_failure"
                          ? experiment::TableWriter::scientific(value, 2)
                          : experiment::TableWriter::fixed(value, 2));
      }
      table.row(row);
    }
  }
  if (!commit_artifact(csv_tmp, csv_path, options.faults, error)) {
    return false;
  }
  files->push_back(csv_path);

  if (spec.trace_interval > sim::SimTime::zero()) {
    std::vector<std::pair<std::string, const metrics::RunTrace*>> traces;
    traces.emplace_back("baseline", &outcome.baseline.trace);
    for (size_t k = 0; k < campaign.cells.size(); ++k) {
      traces.emplace_back(campaign.cells[k].label, &outcome.cells[k].trace);
    }
    const std::string trace_path = csv_path + ".trace.csv";
    if (experiment::write_trace_csv(trace_path + ".tmp", traces)) {
      if (!commit_artifact(trace_path + ".tmp", trace_path, options.faults, error)) {
        return false;
      }
      files->push_back(trace_path);
    }
  }

  analysis::GnuplotSpec plot;
  plot.title = spec.figure.title;
  // Reference the CSV by bare name: the script sits next to it, and the
  // rendered bytes stay a pure function of the spec (no out-dir leakage),
  // which the kill-resume bit-identity tests compare across directories.
  plot.csv_path = spec.figure.csv;
  plot.x_label = spec.figure.x_label;
  plot.y_label = spec.figure.metric == "access_failure" ? "access_failure_probability"
                 : spec.figure.metric == "delay_ratio"  ? "delay_ratio"
                                                        : "coefficient_of_friction";
  plot.log_x = spec.figure.log_x;
  plot.log_y = spec.figure.log_y;
  for (double v : cols.values) {
    plot.series.push_back(experiment::TableWriter::fixed(v, 0) + "% coverage");
  }
  const std::string gp_path = csv_path + ".gp";
  if (analysis::write_gnuplot(plot, gp_path + ".tmp")) {
    if (!commit_artifact(gp_path + ".tmp", gp_path, options.faults, error)) {
      return false;
    }
    files->push_back(gp_path);
  }
  return true;
}

// Dynamics keys in the manifest/CSV are emitted only for dynamic specs
// (campaign::spec_is_dynamic — base sections or dynamics sweep axes), so
// static campaigns (and their committed golden fixtures) render
// byte-identically to the pre-dynamics engine.
void append_dynamics_metrics(JsonWriter& w, const experiment::RunResult& r) {
  w.key("churn_departures").value(r.churn_departures);
  w.key("churn_recoveries").value(r.churn_recoveries);
  w.key("churn_arrivals").value(r.churn_arrivals);
  w.key("availability_mean").value(r.availability_mean);
  w.key("mean_recovery_days").value(r.mean_recovery_days);
  w.key("operator_interventions").begin_array();
  for (uint64_t n : r.operator_interventions) {
    w.value(n);
  }
  w.end_array();
}

// Policy keys only for policy-engaging specs (spec_has_policies), so every
// policy-free campaign manifest renders byte-identically to the pre-policy
// engine.
void append_policy_metrics(JsonWriter& w, const experiment::RunResult& r) {
  w.key("policy_triggers").value(r.policy_triggers);
  w.key("policy_actions").begin_array();
  for (uint64_t n : r.policy_actions) {
    w.value(n);
  }
  w.end_array();
}

// Fault keys likewise only for fault-injecting specs (spec_has_faults), so
// every fault-free campaign manifest renders byte-identically to the
// pre-fault engine.
void append_fault_metrics(JsonWriter& w, const experiment::RunResult& r) {
  w.key("faults_lost").value(r.faults_lost);
  w.key("faults_burst_dropped").value(r.faults_burst_dropped);
  w.key("faults_duplicated").value(r.faults_duplicated);
  w.key("faults_jittered").value(r.faults_jittered);
}

// Protocol robustness and session-liveness audit keys, for EVERY spec:
// polls abort and acks time out on ideal networks too (refusals, busy
// schedules), and the liveness audit is exactly the counter that must stay
// zero when nothing is faulty — hiding it from clean campaigns would hide
// a leak. These used to ride inside the fault block; the golden fixtures
// were regenerated when they became unconditional.
void append_robustness_metrics(JsonWriter& w, const experiment::RunResult& r) {
  w.key("ack_timeouts").value(r.ack_timeouts);
  w.key("vote_timeouts").value(r.vote_timeouts);
  w.key("solicitation_retries").value(r.solicitation_retries);
  w.key("polls_aborted").begin_array();
  for (uint64_t n : r.polls_aborted) {
    w.value(n);
  }
  w.end_array();
  w.key("sessions_live_at_end").value(r.sessions_live_at_end);
  w.key("stale_sessions_at_end").value(r.stale_sessions_at_end);
  w.key("reservations_beyond_horizon").value(r.reservations_beyond_horizon);
}

void append_metrics(JsonWriter& w, const experiment::RunResult& r) {
  const metrics::MetricsReport& m = r.report;
  w.key("access_failure_probability").value(m.access_failure_probability);
  w.key("mean_success_gap_days").value(m.mean_success_gap_days);
  w.key("successful_polls").value(m.successful_polls);
  w.key("inquorate_polls").value(m.inquorate_polls);
  w.key("alarms").value(m.alarms);
  w.key("repairs").value(m.repairs);
  w.key("damage_events").value(m.damage_events);
  w.key("loyal_effort_seconds").value(m.loyal_effort_seconds);
  w.key("adversary_effort_seconds").value(m.adversary_effort_seconds);
  w.key("effort_per_successful_poll").value(m.effort_per_successful_poll);
  w.key("cost_ratio").value(m.cost_ratio);
  w.key("polls_started").value(r.polls_started);
  w.key("messages_delivered").value(r.messages_delivered);
  w.key("messages_filtered").value(r.messages_filtered);
  w.key("adversary_invitations").value(r.adversary_invitations);
  w.key("adversary_admissions").value(r.adversary_admissions);
  w.key("events_processed").value(r.events_processed);
}

// Per-unit trace artifact name (next to the manifest): campaign name,
// unit label, .trace.bin. Written by on_complete before the journal
// append, so a resumed unit's file is already on disk.
std::string trace_file_name(const Spec& spec, const std::string& label) {
  return spec.name + "." + label + ".trace.bin";
}

// Per-unit trailer shared by the baseline and the cells: unconditional
// robustness keys, then the opt-in observability keys (trace file name is
// a pure function of the spec; wall_ms/peak_rss_kb deliberately are not —
// see the purity caveat in engine.hpp).
void append_unit_extras(JsonWriter& w, const Spec& spec, const experiment::RunResult& r,
                        const std::string& label) {
  append_robustness_metrics(w, r);
  if (spec_has_trace(spec)) {
    // Only the file name — event counts live in the artifact itself, and a
    // journal-resumed unit (whose in-memory trace is empty; traces are
    // never journaled) must render the same manifest as a fresh run.
    w.key("trace_file").value(trace_file_name(spec, label));
  }
  if (spec.obs_profile) {
    w.key("wall_ms").value(r.profile.total_ms);
    w.key("peak_rss_kb").value(r.profile.peak_rss_kb);
  }
}

// Failed units render their status instead of metrics, so a manifest is
// never silently mistaken for a fully computed one. Campaigns with no
// failures render byte-identically to the pre-resilience engine (the
// golden fixtures pin this).
void append_failure(JsonWriter& w, const UnitStatus& status) {
  w.key("status").value("failed");
  w.key("attempts").value(static_cast<uint64_t>(status.attempts));
  w.key("error").value(status.error);
}

std::string render_cells_csv(const CompiledCampaign& campaign, const CampaignOutcome& outcome) {
  const Spec& spec = campaign.spec;
  std::string out = "cell";
  for (const SweepAxis& axis : spec.axes) {
    out += "," + axis.param;
  }
  out += ",access_failure,mean_success_gap_days,successful_polls,inquorate_polls,alarms,"
         "repairs,loyal_effort_s,adversary_effort_s,cost_ratio,adversary_invitations,"
         "adversary_admissions";
  const bool dynamic = spec_is_dynamic(spec);
  if (dynamic) {
    out += ",churn_departures,churn_recoveries,churn_arrivals,availability_mean,"
           "mean_recovery_days,operator_interventions";
  }
  const bool faulty = spec_has_faults(spec);
  if (faulty) {
    out += ",faults_lost,faults_burst_dropped,faults_duplicated,faults_jittered";
  }
  const bool policied = spec_has_policies(spec);
  if (policied) {
    out += ",policy_triggers,policy_actions";
  }
  // Robustness columns for every spec (the manifest's
  // append_robustness_metrics rationale).
  out += ",ack_timeouts,vote_timeouts,solicitation_retries,stale_sessions_at_end";
  if (spec.baseline) {
    out += ",delay_ratio,friction";
  }
  out += "\n";
  char buf[512];
  for (size_t k = 0; k < campaign.cells.size(); ++k) {
    const CompiledCell& cell = campaign.cells[k];
    // A failed cell's result is the default RunResult (all-zero metrics);
    // the manifest carries its authoritative failed status.
    const experiment::RunResult& r = outcome.cells[k];
    out += cell.label;
    for (const std::string& name : cell.names) {
      out += "," + name;
    }
    std::snprintf(buf, sizeof(buf),
                  ",%.6e,%.4f,%llu,%llu,%llu,%llu,%.6e,%.6e,%.4f,%llu,%llu",
                  r.report.access_failure_probability, r.report.mean_success_gap_days,
                  static_cast<unsigned long long>(r.report.successful_polls),
                  static_cast<unsigned long long>(r.report.inquorate_polls),
                  static_cast<unsigned long long>(r.report.alarms),
                  static_cast<unsigned long long>(r.report.repairs),
                  r.report.loyal_effort_seconds, r.report.adversary_effort_seconds,
                  r.report.cost_ratio,
                  static_cast<unsigned long long>(r.adversary_invitations),
                  static_cast<unsigned long long>(r.adversary_admissions));
    out += buf;
    if (dynamic) {
      uint64_t interventions = 0;
      for (uint64_t n : r.operator_interventions) {
        interventions += n;
      }
      std::snprintf(buf, sizeof(buf), ",%llu,%llu,%llu,%.6f,%.4f,%llu",
                    static_cast<unsigned long long>(r.churn_departures),
                    static_cast<unsigned long long>(r.churn_recoveries),
                    static_cast<unsigned long long>(r.churn_arrivals), r.availability_mean,
                    r.mean_recovery_days, static_cast<unsigned long long>(interventions));
      out += buf;
    }
    if (faulty) {
      std::snprintf(buf, sizeof(buf), ",%llu,%llu,%llu,%llu",
                    static_cast<unsigned long long>(r.faults_lost),
                    static_cast<unsigned long long>(r.faults_burst_dropped),
                    static_cast<unsigned long long>(r.faults_duplicated),
                    static_cast<unsigned long long>(r.faults_jittered));
      out += buf;
    }
    if (policied) {
      uint64_t actions = 0;
      for (uint64_t n : r.policy_actions) {
        actions += n;
      }
      std::snprintf(buf, sizeof(buf), ",%llu,%llu",
                    static_cast<unsigned long long>(r.policy_triggers),
                    static_cast<unsigned long long>(actions));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), ",%llu,%llu,%llu,%llu",
                  static_cast<unsigned long long>(r.ack_timeouts),
                  static_cast<unsigned long long>(r.vote_timeouts),
                  static_cast<unsigned long long>(r.solicitation_retries),
                  static_cast<unsigned long long>(r.stale_sessions_at_end));
    out += buf;
    if (spec.baseline) {
      const experiment::RelativeMetrics rel =
          experiment::relative_metrics(r, outcome.baseline);
      std::snprintf(buf, sizeof(buf), ",%.4f,%.4f", rel.delay_ratio, rel.friction);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

// Runs one unit of work: all of its seed replicas (and §6.3 layers),
// combined in the same part order the grid helpers
// (experiment::run_replicated_grid / run_layered_replicated_grid) use, so
// the combined result is bit-identical to the pre-resilience engine's.
experiment::RunResult execute_unit(const experiment::ScenarioConfig& config, const Spec& spec) {
  std::vector<experiment::RunResult> parts;
  parts.reserve(static_cast<size_t>(spec.seeds) * (spec.layers > 0 ? spec.layers : 1));
  for (uint32_t s = 0; s < spec.seeds; ++s) {
    experiment::ScenarioConfig c = config;
    c.seed = config.seed + s;
    if (spec.layers > 0) {
      std::vector<experiment::RunResult> layer_results =
          experiment::run_layered(c, spec.layers);
      for (experiment::RunResult& r : layer_results) {
        parts.push_back(std::move(r));
      }
    } else {
      parts.push_back(experiment::run_scenario(c));
    }
  }
  experiment::RunResult combined = experiment::combine_results(parts);
  // combine_results builds a fresh RunResult and deliberately ignores the
  // observability fields. A trace is only well-defined for a single run
  // (parse_spec rejects tracing with seeds > 1 or layers); the profile
  // sums across parts since unit wall time is what the manifest reports.
  if (parts.size() == 1) {
    combined.obs_events = std::move(parts[0].obs_events);
  }
  for (const experiment::RunResult& part : parts) {
    if (!part.profile.enabled) {
      continue;
    }
    combined.profile.enabled = true;
    combined.profile.setup_ms += part.profile.setup_ms;
    combined.profile.run_ms += part.profile.run_ms;
    combined.profile.harvest_ms += part.profile.harvest_ms;
    combined.profile.total_ms += part.profile.total_ms;
    combined.profile.peak_rss_kb = std::max(combined.profile.peak_rss_kb,
                                            part.profile.peak_rss_kb);
  }
  return combined;
}

// One schedulable unit: the baseline or one compiled cell.
struct Unit {
  bool is_baseline = false;
  size_t cell_index = 0;  // meaningful when !is_baseline
  uint64_t hash = 0;
  const experiment::ScenarioConfig* config = nullptr;
  std::string label;
};

}  // namespace

std::string render_manifest(const CompiledCampaign& campaign, const CampaignOutcome& outcome) {
  const Spec& spec = campaign.spec;
  const bool baseline_ok = outcome.baseline_status.ok;
  JsonWriter w;
  w.begin_object();
  w.key("campaign").value(spec.name);
  w.key("description").value(spec.description);
  w.key("generated_by").value("tools/lockss_campaign");
  if (outcome.units_failed > 0) {
    w.key("failed_units").value(static_cast<uint64_t>(outcome.units_failed));
  }
  w.key("scale").begin_object();
  w.key("peers").value(static_cast<uint64_t>(spec.peers));
  w.key("aus").value(static_cast<uint64_t>(spec.aus));
  w.key("au_coverage").value(spec.au_coverage);
  w.key("newcomers").value(static_cast<uint64_t>(spec.newcomers));
  w.key("duration_days").value(spec.duration.to_days());
  w.key("seed").value(spec.seed);
  w.key("seeds").value(static_cast<uint64_t>(spec.seeds));
  w.key("layers").value(static_cast<uint64_t>(spec.layers));
  w.key("trace_interval_days").value(spec.trace_interval.to_days());
  w.end_object();
  if (spec_is_dynamic(spec)) {
    w.key("dynamics").begin_object();
    w.key("leave_rate_per_peer_year").value(spec.churn.leave_rate_per_peer_year);
    w.key("crash_rate_per_peer_year").value(spec.churn.crash_rate_per_peer_year);
    w.key("mean_downtime_days").value(spec.churn.mean_downtime_days);
    w.key("arrival_rate_per_year").value(spec.churn.arrival_rate_per_year);
    w.key("regions").value(static_cast<uint64_t>(spec.churn.regions));
    w.key("regional_outage_rate_per_year").value(spec.churn.regional_outage_rate_per_year);
    w.key("regional_outage_days").value(spec.churn.regional_outage_days);
    w.key("regional_recovery_stagger_hours")
        .value(spec.churn.regional_recovery_stagger_hours);
    w.key("regional_state_loss").value(spec.churn.regional_state_loss);
    w.end_object();
    w.key("operators").begin_object();
    w.key("detection_latency_days").value(spec.operators.detection_latency.to_days());
    w.key("recrawl_cost_factor").value(spec.operators.recrawl_cost_factor);
    w.key("policies").begin_array();
    for (const dynamics::OperatorPolicy& policy : spec.operators.policies) {
      w.begin_object();
      w.key("trigger").value(dynamics::operator_trigger_name(policy.trigger));
      w.key("action").value(dynamics::operator_action_name(policy.action));
      w.key("factor").value(policy.factor);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  if (spec_has_faults(spec)) {
    w.key("network").begin_object();
    w.key("min_latency_ms").value(spec.network.min_latency.to_seconds() * 1000.0);
    w.key("max_latency_ms").value(spec.network.max_latency.to_seconds() * 1000.0);
    w.end_object();
    w.key("network_faults").begin_object();
    w.key("loss_rate").value(spec.faults.loss_rate);
    w.key("dup_rate").value(spec.faults.dup_rate);
    w.key("jitter_ms").value(spec.faults.jitter.to_seconds() * 1000.0);
    w.key("burst_outage_rate").value(spec.faults.burst_outage_rate);
    w.key("burst_cycle_days").value(spec.faults.burst_cycle.to_days());
    w.end_object();
  }
  w.key("pipeline").begin_array();
  for (const adversary::AdversaryPhase& phase : spec.pipeline) {
    w.begin_object();
    w.key("kind").value(adversary::phase_kind_name(phase.kind));
    w.key("attack_days").value(phase.cadence.attack_duration.to_days());
    w.key("recuperation_days").value(phase.cadence.recuperation.to_days());
    w.key("coverage").value(phase.cadence.coverage);
    w.key("defection").value(adversary::defection_point_name(phase.defection));
    w.key("start_days").value(phase.start.to_days());
    w.key("stop_days").value(phase.stop.to_days());
    w.end_object();
  }
  w.end_array();
  if (spec_has_policies(spec)) {
    const auto policy_rules = [&w](const std::vector<adversary::AdversaryPolicy>& rules) {
      w.begin_array();
      for (const adversary::AdversaryPolicy& rule : rules) {
        w.begin_object();
        w.key("trigger").value(adversary::policy_trigger_name(rule.trigger));
        w.key("action").value(adversary::policy_action_name(rule.action));
        w.key("phase").value(static_cast<uint64_t>(rule.phase));
        w.key("factor").value(rule.factor);
        w.end_object();
      }
      w.end_array();
    };
    w.key("adversary_policy").begin_object();
    w.key("reaction_latency_hours")
        .value(spec.adversary_policy.reaction_latency.to_seconds() / 3600.0);
    w.key("sensor_interval_days").value(spec.adversary_policy.sensor_interval.to_days());
    w.key("cooldown_days").value(spec.adversary_policy.cooldown.to_days());
    w.key("outage_threshold").value(spec.adversary_policy.outage_threshold);
    w.key("backoff_threshold").value(spec.adversary_policy.backoff_threshold);
    w.key("collapse_threshold").value(spec.adversary_policy.collapse_threshold);
    w.key("dormant_mean_days").value(spec.adversary_policy.dormant_mean.to_days());
    w.key("throttle_pause_days").value(spec.adversary_policy.throttle_pause.to_days());
    w.key("policies");
    policy_rules(spec.adversary_policy.policies);
    w.end_object();
    if (spec.tournament) {
      w.key("tournament").begin_object();
      w.key("adversary_strategies").begin_array();
      for (const Spec::AdversaryStrategy& strategy : spec.adversary_strategies) {
        w.begin_object();
        w.key("name").value(strategy.name);
        w.key("policies");
        policy_rules(strategy.policies);
        w.end_object();
      }
      w.end_array();
      w.key("operator_strategies").begin_array();
      for (const Spec::OperatorStrategy& strategy : spec.operator_strategies) {
        w.begin_object();
        w.key("name").value(strategy.name);
        w.key("detection_latency_days").value(strategy.operators.detection_latency.to_days());
        w.key("recrawl_cost_factor").value(strategy.operators.recrawl_cost_factor);
        w.key("policies").begin_array();
        for (const dynamics::OperatorPolicy& rule : strategy.operators.policies) {
          w.begin_object();
          w.key("trigger").value(dynamics::operator_trigger_name(rule.trigger));
          w.key("action").value(dynamics::operator_action_name(rule.action));
          w.key("factor").value(rule.factor);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
      w.key("payoff").value(spec.payoff_name);
      w.end_object();
    }
  }
  w.key("axes").begin_array();
  for (const SweepAxis& axis : spec.axes) {
    w.begin_object();
    w.key("param").value(axis.param);
    w.key("phase").value(static_cast<uint64_t>(axis.phase));
    w.key("values").begin_array();
    if (axis.categorical()) {
      for (const std::string& name : axis.names) {
        w.value(name);
      }
    } else {
      for (double v : axis.values) {
        w.value(v);
      }
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (spec.baseline) {
    w.key("baseline").begin_object();
    if (baseline_ok) {
      append_metrics(w, outcome.baseline);
      if (spec_is_dynamic(spec)) {
        append_dynamics_metrics(w, outcome.baseline);
      }
      if (spec_has_faults(spec)) {
        append_fault_metrics(w, outcome.baseline);
      }
      if (spec_has_policies(spec)) {
        append_policy_metrics(w, outcome.baseline);
      }
      append_unit_extras(w, spec, outcome.baseline, "baseline");
    } else {
      append_failure(w, outcome.baseline_status);
    }
    w.end_object();
  }
  w.key("cells").begin_array();
  for (size_t k = 0; k < campaign.cells.size(); ++k) {
    const CompiledCell& cell = campaign.cells[k];
    const bool cell_ok = k >= outcome.cell_status.size() || outcome.cell_status[k].ok;
    w.begin_object();
    w.key("label").value(cell.label);
    w.key("values").begin_array();
    for (const std::string& name : cell.names) {
      w.value(name);
    }
    w.end_array();
    if (!cell_ok) {
      append_failure(w, outcome.cell_status[k]);
    } else {
      append_metrics(w, outcome.cells[k]);
      if (spec_is_dynamic(spec)) {
        append_dynamics_metrics(w, outcome.cells[k]);
      }
      if (spec_has_faults(spec)) {
        append_fault_metrics(w, outcome.cells[k]);
      }
      if (spec_has_policies(spec)) {
        append_policy_metrics(w, outcome.cells[k]);
      }
      append_unit_extras(w, spec, outcome.cells[k], cell.label);
      if (spec.baseline && baseline_ok) {
        const experiment::RelativeMetrics rel =
            experiment::relative_metrics(outcome.cells[k], outcome.baseline);
        w.key("relative").begin_object();
        w.key("access_failure").value(rel.access_failure);
        w.key("delay_ratio").value(rel.delay_ratio);
        w.key("friction").value(rel.friction);
        w.key("cost_ratio").value(rel.cost_ratio);
        w.end_object();
      }
    }
    w.end_object();
  }
  w.end_array();
  if (spec.obs_profile) {
    // Campaign-level wall-clock summary; see the purity caveat up top.
    w.key("profile").begin_object();
    w.key("workers").value(static_cast<uint64_t>(outcome.workers_used));
    w.key("total_wall_ms").value(outcome.total_wall_ms);
    w.end_object();
  }
  w.end_object();
  std::string out = w.take();
  out += "\n";
  return out;
}

std::string render_payoff_csv(const CompiledCampaign& campaign,
                              const CampaignOutcome& outcome) {
  const Spec& spec = campaign.spec;
  if (!spec.tournament) {
    return "";
  }
  // Tournament cells are exactly adversary_strategies × operator_strategies
  // in row-major order (the strategy axes are the only axes; parse_spec
  // rejects tournament + sweep).
  const size_t rows = spec.adversary_strategies.size();
  const size_t cols = spec.operator_strategies.size();
  char buf[64];
  std::string out;
  const auto matrix = [&](const char* metric,
                          const std::function<std::string(const experiment::RunResult&)>&
                              render_cell) {
    out += "# payoff: ";
    out += metric;
    out += "\nadversary_strategy";
    for (const Spec::OperatorStrategy& strategy : spec.operator_strategies) {
      out += "," + strategy.name;
    }
    out += "\n";
    for (size_t a = 0; a < rows; ++a) {
      out += spec.adversary_strategies[a].name;
      for (size_t o = 0; o < cols; ++o) {
        const size_t cell = a * cols + o;
        out += ",";
        // A failed cell has no metrics; say so instead of rendering its
        // all-zero placeholder as a legitimate score.
        if (cell < outcome.cell_status.size() && !outcome.cell_status[cell].ok) {
          out += "failed";
        } else {
          out += render_cell(outcome.cells[cell]);
        }
      }
      out += "\n";
    }
  };
  matrix("afp", [&](const experiment::RunResult& r) {
    std::snprintf(buf, sizeof(buf), "%.6e", r.report.access_failure_probability);
    return std::string(buf);
  });
  out += "\n";
  matrix("adversary_effort_seconds", [&](const experiment::RunResult& r) {
    std::snprintf(buf, sizeof(buf), "%.6e", r.report.adversary_effort_seconds);
    return std::string(buf);
  });
  out += "\n";
  // The pairing score: damage bought per attacker-second. Higher = the
  // adversary strategy dominates that operator strategy; an effort-free
  // pairing scores its raw afp (all damage was free).
  matrix("score", [&](const experiment::RunResult& r) {
    const double effort = r.report.adversary_effort_seconds;
    const double score = effort > 0.0 ? r.report.access_failure_probability / effort
                                      : r.report.access_failure_probability;
    std::snprintf(buf, sizeof(buf), "%.6e", score);
    return std::string(buf);
  });
  return out;
}

bool run_campaign(const CompiledCampaign& campaign, const RunOptions& options,
                  CampaignOutcome* outcome, std::string* error) {
  const obs::Stopwatch campaign_watch;
  const Spec& spec = campaign.spec;
  if (options.write_outputs && !options.out_dir.empty() && options.out_dir != ".") {
    std::error_code ec;
    std::filesystem::create_directories(options.out_dir, ec);
    if (ec) {
      *error = "cannot create " + options.out_dir + ": " + ec.message();
      return false;
    }
  }

  const uint64_t spec_hash = campaign_hash(spec);
  FaultPlan faults = options.faults;
  faults.campaign_hash = spec_hash;

  outcome->cells.assign(campaign.cells.size(), experiment::RunResult{});
  outcome->cell_status.assign(campaign.cells.size(), UnitStatus{});
  outcome->baseline_status = UnitStatus{};
  outcome->units_resumed = 0;
  outcome->units_failed = 0;

  // Every unit of work in deterministic order: baseline first, then cells.
  std::vector<Unit> units;
  units.reserve(campaign.cells.size() + 1);
  if (spec.baseline) {
    units.push_back(
        {true, 0, baseline_identity(spec_hash), &campaign.base, "baseline"});
  }
  for (size_t k = 0; k < campaign.cells.size(); ++k) {
    units.push_back({false, k, cell_identity(spec_hash, k, campaign.cells[k]),
                     &campaign.cells[k].config, campaign.cells[k].label});
  }

  // --- Journal: replay (resume) and open for appending --------------------
  const bool journaling = options.write_outputs;
  JournalWriter journal;
  std::unordered_map<uint64_t, JournalRecord> replayed;
  if (journaling) {
    outcome->journal_path = join_path(options.out_dir, spec.name + ".journal");
    bool appending = false;
    if (options.resume) {
      JournalContents contents;
      std::string read_error;
      if (read_journal(outcome->journal_path, &contents, &read_error) && contents.header_ok) {
        if (contents.campaign_hash != spec_hash) {
          *error = outcome->journal_path +
                   ": journal belongs to a different campaign spec (content hash mismatch); "
                   "rerun without --resume or remove the journal";
          return false;
        }
        for (JournalRecord& record : contents.records) {
          replayed[record.unit_hash] = std::move(record);  // latest record wins
        }
        if (!journal.open_append(outcome->journal_path, contents.valid_bytes, error)) {
          return false;
        }
        appending = true;
      }
      // Missing or headerless journal: fall through to a fresh one.
    }
    if (!appending) {
      if (faults.should_fail_journal_append(0)) {
        *error = outcome->journal_path + ": injected journal I/O error (append 0)";
        return false;
      }
      if (!journal.create(outcome->journal_path, spec_hash, error)) {
        return false;
      }
      faults.maybe_kill_after_append(0);
    }
  }

  // --- Partition units: resumed from the journal vs still to run ----------
  std::vector<size_t> pending;  // indices into `units`
  pending.reserve(units.size());
  for (size_t u = 0; u < units.size(); ++u) {
    const Unit& unit = units[u];
    auto it = replayed.find(unit.hash);
    if (it != replayed.end() && !it->second.failed) {
      if (unit.is_baseline) {
        outcome->baseline = std::move(it->second.result);
        outcome->baseline_status = {true, true, 0, ""};
      } else {
        outcome->cells[unit.cell_index] = std::move(it->second.result);
        outcome->cell_status[unit.cell_index] = {true, true, 0, ""};
      }
      ++outcome->units_resumed;
    } else {
      // Never run, or recorded as failed: (re-)attempt it.
      pending.push_back(u);
    }
  }

  // --- Execute pending units with per-unit isolation + retry --------------
  bool any_observer = campaign.base.poll_observer != nullptr;
  for (const CompiledCell& cell : campaign.cells) {
    any_observer = any_observer || cell.config.poll_observer != nullptr;
  }
  experiment::ParallelRunner runner(any_observer ? 1u : 0u);
  outcome->workers_used = runner.workers();

  RunOptions::Progress progress;
  progress.units_done = outcome->units_resumed;
  progress.units_total = units.size();
  if (options.progress) {
    options.progress(progress);
  }

  const bool tracing = spec_has_trace(spec) && options.write_outputs;
  std::string journal_error;  // first journal/artifact failure (ends journaling)
  bool journal_dead = !journaling;
  const auto on_complete = [&](size_t index, const experiment::JobOutcome& job) {
    // Serialized by run_protected's mutex. Journal order is completion
    // order — records are self-identifying, so replay never depends on it.
    const Unit& unit = units[pending[index]];
    if (options.progress) {
      ++progress.units_done;
      if (!job.ok) {
        ++progress.units_failed;
      }
      progress.extra_attempts += job.attempts > 0 ? job.attempts - 1 : 0;
      options.progress(progress);
    }
    if (journal_dead) {
      return;
    }
    // Trace artifact BEFORE the journal append: if the write dies here the
    // unit is never journaled and a --resume recomputes it (the in-memory
    // trace is not journaled, so this is the only chance to persist it).
    if (tracing && job.ok) {
      const std::string trace_path =
          join_path(options.out_dir, trace_file_name(spec, unit.label));
      std::string bytes;
      obs::serialize_trace(job.result.obs_events, &bytes);
      std::string trace_error;
      if (!write_file_atomic(trace_path, bytes, faults, &trace_error)) {
        journal_error = trace_error;
        journal_dead = true;
        return;
      }
    }
    const uint64_t ordinal = journal.appends();
    if (faults.should_fail_journal_append(ordinal)) {
      journal_error = outcome->journal_path + ": injected journal I/O error (append " +
                      std::to_string(ordinal) + ")";
      journal_dead = true;
      return;
    }
    std::string append_error;
    const bool ok = job.ok
                        ? journal.append_result(unit.hash, job.result, &append_error)
                        : journal.append_failure(unit.hash, job.attempts, job.error,
                                                 &append_error);
    if (!ok) {
      journal_error = append_error;
      journal_dead = true;
      return;
    }
    faults.maybe_kill_after_append(ordinal);
  };

  const std::vector<experiment::JobOutcome> job_outcomes = runner.run_protected(
      pending.size(),
      [&](size_t index, uint32_t attempt) -> experiment::RunResult {
        const Unit& unit = units[pending[index]];
        if (faults.should_fail_unit(unit.is_baseline, unit.cell_index, unit.hash, attempt)) {
          throw std::runtime_error("injected cell fault (" + unit.label + ", attempt " +
                                   std::to_string(attempt) + ")");
        }
        return execute_unit(*unit.config, spec);
      },
      options.retries + 1, on_complete);

  for (size_t index = 0; index < pending.size(); ++index) {
    const Unit& unit = units[pending[index]];
    const experiment::JobOutcome& job = job_outcomes[index];
    UnitStatus status;
    status.ok = job.ok;
    status.attempts = job.attempts;
    status.error = job.error;
    if (!job.ok) {
      ++outcome->units_failed;
    }
    if (unit.is_baseline) {
      outcome->baseline = job.result;
      outcome->baseline_status = status;
    } else {
      outcome->cells[unit.cell_index] = job.result;
      outcome->cell_status[unit.cell_index] = status;
    }
  }

  if (journaling && !journal_error.empty()) {
    *error = journal_error;
    return false;
  }

  // --- Report ---------------------------------------------------------------
  if (!options.quiet) {
    std::printf("# campaign %s: %zu cells x %u seed(s)%s\n", spec.name.c_str(),
                campaign.cells.size(), spec.seeds,
                spec.layers > 0 ? (" x " + std::to_string(spec.layers) + " layers").c_str()
                                : "");
    if (outcome->units_resumed > 0) {
      std::printf("# resume: %zu of %zu unit(s) replayed from %s\n", outcome->units_resumed,
                  units.size(), outcome->journal_path.c_str());
    }
    if (spec.baseline && outcome->baseline_status.ok) {
      std::printf("# baseline: afp=%.3e gap=%.1fd effort/success=%.0fs over %llu polls\n",
                  outcome->baseline.report.access_failure_probability,
                  outcome->baseline.report.mean_success_gap_days,
                  outcome->baseline.report.effort_per_successful_poll,
                  static_cast<unsigned long long>(outcome->baseline.report.successful_polls));
    }
    if (spec.baseline && !outcome->baseline_status.ok) {
      std::printf("# FAILED baseline after %u attempt(s): %s\n",
                  outcome->baseline_status.attempts, outcome->baseline_status.error.c_str());
    }
    for (size_t k = 0; k < campaign.cells.size(); ++k) {
      if (!outcome->cell_status[k].ok) {
        std::printf("# FAILED %s after %u attempt(s): %s\n",
                    campaign.cells[k].label.c_str(), outcome->cell_status[k].attempts,
                    outcome->cell_status[k].error.c_str());
      }
    }
  }

  const bool baseline_usable = !spec.baseline || outcome->baseline_status.ok;
  if (spec.figure.enabled && options.write_outputs && baseline_usable) {
    if (!write_figure(campaign, *outcome, options, &outcome->files_written, error)) {
      return false;
    }
  } else if (!options.quiet) {
    for (size_t k = 0; k < campaign.cells.size(); ++k) {
      if (!outcome->cell_status[k].ok) {
        continue;
      }
      std::printf("  %-24s afp=%.3e polls=%llu adversary_effort=%.3es\n",
                  campaign.cells[k].label.c_str(),
                  outcome->cells[k].report.access_failure_probability,
                  static_cast<unsigned long long>(outcome->cells[k].report.successful_polls),
                  outcome->cells[k].report.adversary_effort_seconds);
    }
  }

  if (!options.write_outputs) {
    outcome->total_wall_ms = campaign_watch.elapsed_ms();
    return true;
  }
  // List trace artifacts in deterministic unit order (they were written in
  // completion order by on_complete; resumed units' files predate this run).
  if (tracing) {
    if (spec.baseline && outcome->baseline_status.ok) {
      outcome->files_written.push_back(
          join_path(options.out_dir, trace_file_name(spec, "baseline")));
    }
    for (size_t k = 0; k < campaign.cells.size(); ++k) {
      if (outcome->cell_status[k].ok) {
        outcome->files_written.push_back(
            join_path(options.out_dir, trace_file_name(spec, campaign.cells[k].label)));
      }
    }
  }
  outcome->total_wall_ms = campaign_watch.elapsed_ms();
  const std::string manifest_path = join_path(options.out_dir, spec.manifest_name);
  if (!write_file_atomic(manifest_path, render_manifest(campaign, *outcome), faults, error)) {
    return false;
  }
  outcome->files_written.push_back(manifest_path);
  const std::string cells_path = join_path(options.out_dir, spec.cells_name);
  if (!write_file_atomic(cells_path, render_cells_csv(campaign, *outcome), faults, error)) {
    return false;
  }
  outcome->files_written.push_back(cells_path);
  if (spec.tournament) {
    const std::string payoff_path = join_path(options.out_dir, spec.payoff_name);
    if (!write_file_atomic(payoff_path, render_payoff_csv(campaign, *outcome), faults,
                           error)) {
      return false;
    }
    outcome->files_written.push_back(payoff_path);
  }
  return true;
}

}  // namespace lockss::campaign
