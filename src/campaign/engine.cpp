#include "campaign/engine.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/gnuplot.hpp"
#include "experiment/aggregate.hpp"
#include "experiment/runner.hpp"
#include "experiment/table.hpp"

namespace lockss::campaign {
namespace {

std::string join_path(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir == ".") {
    return name;
  }
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

bool write_file(const std::string& path, const std::string& content, std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    *error = "cannot write " + path;
    return false;
  }
  out << content;
  return true;
}

double figure_metric(const std::string& metric, const experiment::RelativeMetrics& rel) {
  if (metric == "access_failure") {
    return rel.access_failure;
  }
  if (metric == "delay_ratio") {
    return rel.delay_ratio;
  }
  return rel.friction;
}

// The attrition-sweep CSV layout, byte-identical to bench/attrition_sweep.hpp:
// rows = axis 0, one column per axis-1 value labelled "<v>%", access-failure
// cells in %.2e and everything else in %.2f, plus the companion trace CSV
// and gnuplot script.
bool write_figure(const CompiledCampaign& campaign, const CampaignOutcome& outcome,
                  const RunOptions& options, std::vector<std::string>* files,
                  std::string* error) {
  const Spec& spec = campaign.spec;
  const SweepAxis& rows = spec.axes[0];
  const SweepAxis& cols = spec.axes[1];
  const std::string csv_path = join_path(options.out_dir, spec.figure.csv);

  std::vector<std::string> columns = {spec.figure.row_header};
  for (double v : cols.values) {
    columns.push_back(experiment::TableWriter::fixed(v, 0) + "%");
  }
  experiment::TableWriter table(columns, csv_path, /*echo_stdout=*/!options.quiet);
  if (!table.csv_ok()) {
    *error = "cannot write " + csv_path;
    return false;
  }
  table.header();
  size_t cell = 0;
  for (double row_value : rows.values) {
    std::vector<std::string> row = {experiment::TableWriter::fixed(row_value, 0)};
    for (size_t c = 0; c < cols.values.size(); ++c) {
      const experiment::RelativeMetrics rel =
          experiment::relative_metrics(outcome.cells[cell++], outcome.baseline);
      const double value = figure_metric(spec.figure.metric, rel);
      row.push_back(spec.figure.metric == "access_failure"
                        ? experiment::TableWriter::scientific(value, 2)
                        : experiment::TableWriter::fixed(value, 2));
    }
    table.row(row);
  }
  files->push_back(csv_path);

  if (spec.trace_interval > sim::SimTime::zero()) {
    std::vector<std::pair<std::string, const metrics::RunTrace*>> traces;
    traces.emplace_back("baseline", &outcome.baseline.trace);
    for (size_t k = 0; k < campaign.cells.size(); ++k) {
      traces.emplace_back(campaign.cells[k].label, &outcome.cells[k].trace);
    }
    if (experiment::write_trace_csv(csv_path + ".trace.csv", traces)) {
      files->push_back(csv_path + ".trace.csv");
    }
  }

  analysis::GnuplotSpec plot;
  plot.title = spec.figure.title;
  plot.csv_path = csv_path;
  plot.x_label = spec.figure.x_label;
  plot.y_label = spec.figure.metric == "access_failure" ? "access_failure_probability"
                 : spec.figure.metric == "delay_ratio"  ? "delay_ratio"
                                                        : "coefficient_of_friction";
  plot.log_x = spec.figure.log_x;
  plot.log_y = spec.figure.log_y;
  for (double v : cols.values) {
    plot.series.push_back(experiment::TableWriter::fixed(v, 0) + "% coverage");
  }
  if (analysis::write_gnuplot(plot, csv_path + ".gp")) {
    files->push_back(csv_path + ".gp");
  }
  return true;
}

// Dynamics keys in the manifest/CSV are emitted only for dynamic specs
// (campaign::spec_is_dynamic — base sections or dynamics sweep axes), so
// static campaigns (and their committed golden fixtures) render
// byte-identically to the pre-dynamics engine.
void append_dynamics_metrics(JsonWriter& w, const experiment::RunResult& r) {
  w.key("churn_departures").value(r.churn_departures);
  w.key("churn_recoveries").value(r.churn_recoveries);
  w.key("churn_arrivals").value(r.churn_arrivals);
  w.key("availability_mean").value(r.availability_mean);
  w.key("mean_recovery_days").value(r.mean_recovery_days);
  w.key("operator_interventions").begin_array();
  for (uint64_t n : r.operator_interventions) {
    w.value(n);
  }
  w.end_array();
}

void append_metrics(JsonWriter& w, const experiment::RunResult& r) {
  const metrics::MetricsReport& m = r.report;
  w.key("access_failure_probability").value(m.access_failure_probability);
  w.key("mean_success_gap_days").value(m.mean_success_gap_days);
  w.key("successful_polls").value(m.successful_polls);
  w.key("inquorate_polls").value(m.inquorate_polls);
  w.key("alarms").value(m.alarms);
  w.key("repairs").value(m.repairs);
  w.key("damage_events").value(m.damage_events);
  w.key("loyal_effort_seconds").value(m.loyal_effort_seconds);
  w.key("adversary_effort_seconds").value(m.adversary_effort_seconds);
  w.key("effort_per_successful_poll").value(m.effort_per_successful_poll);
  w.key("cost_ratio").value(m.cost_ratio);
  w.key("polls_started").value(r.polls_started);
  w.key("messages_delivered").value(r.messages_delivered);
  w.key("messages_filtered").value(r.messages_filtered);
  w.key("adversary_invitations").value(r.adversary_invitations);
  w.key("adversary_admissions").value(r.adversary_admissions);
  w.key("events_processed").value(r.events_processed);
}

std::string render_cells_csv(const CompiledCampaign& campaign, const CampaignOutcome& outcome) {
  const Spec& spec = campaign.spec;
  std::string out = "cell";
  for (const SweepAxis& axis : spec.axes) {
    out += "," + axis.param;
  }
  out += ",access_failure,mean_success_gap_days,successful_polls,inquorate_polls,alarms,"
         "repairs,loyal_effort_s,adversary_effort_s,cost_ratio,adversary_invitations,"
         "adversary_admissions";
  const bool dynamic = spec_is_dynamic(spec);
  if (dynamic) {
    out += ",churn_departures,churn_recoveries,churn_arrivals,availability_mean,"
           "mean_recovery_days,operator_interventions";
  }
  if (spec.baseline) {
    out += ",delay_ratio,friction";
  }
  out += "\n";
  char buf[512];
  for (size_t k = 0; k < campaign.cells.size(); ++k) {
    const CompiledCell& cell = campaign.cells[k];
    const experiment::RunResult& r = outcome.cells[k];
    out += cell.label;
    for (const std::string& name : cell.names) {
      out += "," + name;
    }
    std::snprintf(buf, sizeof(buf),
                  ",%.6e,%.4f,%llu,%llu,%llu,%llu,%.6e,%.6e,%.4f,%llu,%llu",
                  r.report.access_failure_probability, r.report.mean_success_gap_days,
                  static_cast<unsigned long long>(r.report.successful_polls),
                  static_cast<unsigned long long>(r.report.inquorate_polls),
                  static_cast<unsigned long long>(r.report.alarms),
                  static_cast<unsigned long long>(r.report.repairs),
                  r.report.loyal_effort_seconds, r.report.adversary_effort_seconds,
                  r.report.cost_ratio,
                  static_cast<unsigned long long>(r.adversary_invitations),
                  static_cast<unsigned long long>(r.adversary_admissions));
    out += buf;
    if (dynamic) {
      uint64_t interventions = 0;
      for (uint64_t n : r.operator_interventions) {
        interventions += n;
      }
      std::snprintf(buf, sizeof(buf), ",%llu,%llu,%llu,%.6f,%.4f,%llu",
                    static_cast<unsigned long long>(r.churn_departures),
                    static_cast<unsigned long long>(r.churn_recoveries),
                    static_cast<unsigned long long>(r.churn_arrivals), r.availability_mean,
                    r.mean_recovery_days, static_cast<unsigned long long>(interventions));
      out += buf;
    }
    if (spec.baseline) {
      const experiment::RelativeMetrics rel =
          experiment::relative_metrics(r, outcome.baseline);
      std::snprintf(buf, sizeof(buf), ",%.4f,%.4f", rel.delay_ratio, rel.friction);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace

std::string render_manifest(const CompiledCampaign& campaign, const CampaignOutcome& outcome) {
  const Spec& spec = campaign.spec;
  JsonWriter w;
  w.begin_object();
  w.key("campaign").value(spec.name);
  w.key("description").value(spec.description);
  w.key("generated_by").value("tools/lockss_campaign");
  w.key("scale").begin_object();
  w.key("peers").value(static_cast<uint64_t>(spec.peers));
  w.key("aus").value(static_cast<uint64_t>(spec.aus));
  w.key("au_coverage").value(spec.au_coverage);
  w.key("newcomers").value(static_cast<uint64_t>(spec.newcomers));
  w.key("duration_days").value(spec.duration.to_days());
  w.key("seed").value(spec.seed);
  w.key("seeds").value(static_cast<uint64_t>(spec.seeds));
  w.key("layers").value(static_cast<uint64_t>(spec.layers));
  w.key("trace_interval_days").value(spec.trace_interval.to_days());
  w.end_object();
  if (spec_is_dynamic(spec)) {
    w.key("dynamics").begin_object();
    w.key("leave_rate_per_peer_year").value(spec.churn.leave_rate_per_peer_year);
    w.key("crash_rate_per_peer_year").value(spec.churn.crash_rate_per_peer_year);
    w.key("mean_downtime_days").value(spec.churn.mean_downtime_days);
    w.key("arrival_rate_per_year").value(spec.churn.arrival_rate_per_year);
    w.key("regions").value(static_cast<uint64_t>(spec.churn.regions));
    w.key("regional_outage_rate_per_year").value(spec.churn.regional_outage_rate_per_year);
    w.key("regional_outage_days").value(spec.churn.regional_outage_days);
    w.key("regional_recovery_stagger_hours")
        .value(spec.churn.regional_recovery_stagger_hours);
    w.key("regional_state_loss").value(spec.churn.regional_state_loss);
    w.end_object();
    w.key("operators").begin_object();
    w.key("detection_latency_days").value(spec.operators.detection_latency.to_days());
    w.key("recrawl_cost_factor").value(spec.operators.recrawl_cost_factor);
    w.key("policies").begin_array();
    for (const dynamics::OperatorPolicy& policy : spec.operators.policies) {
      w.begin_object();
      w.key("trigger").value(dynamics::operator_trigger_name(policy.trigger));
      w.key("action").value(dynamics::operator_action_name(policy.action));
      w.key("factor").value(policy.factor);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.key("pipeline").begin_array();
  for (const adversary::AdversaryPhase& phase : spec.pipeline) {
    w.begin_object();
    w.key("kind").value(adversary::phase_kind_name(phase.kind));
    w.key("attack_days").value(phase.cadence.attack_duration.to_days());
    w.key("recuperation_days").value(phase.cadence.recuperation.to_days());
    w.key("coverage").value(phase.cadence.coverage);
    w.key("defection").value(adversary::defection_point_name(phase.defection));
    w.key("start_days").value(phase.start.to_days());
    w.key("stop_days").value(phase.stop.to_days());
    w.end_object();
  }
  w.end_array();
  w.key("axes").begin_array();
  for (const SweepAxis& axis : spec.axes) {
    w.begin_object();
    w.key("param").value(axis.param);
    w.key("phase").value(static_cast<uint64_t>(axis.phase));
    w.key("values").begin_array();
    if (axis.categorical()) {
      for (const std::string& name : axis.names) {
        w.value(name);
      }
    } else {
      for (double v : axis.values) {
        w.value(v);
      }
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (spec.baseline) {
    w.key("baseline").begin_object();
    append_metrics(w, outcome.baseline);
    if (spec_is_dynamic(spec)) {
      append_dynamics_metrics(w, outcome.baseline);
    }
    w.end_object();
  }
  w.key("cells").begin_array();
  for (size_t k = 0; k < campaign.cells.size(); ++k) {
    const CompiledCell& cell = campaign.cells[k];
    w.begin_object();
    w.key("label").value(cell.label);
    w.key("values").begin_array();
    for (const std::string& name : cell.names) {
      w.value(name);
    }
    w.end_array();
    append_metrics(w, outcome.cells[k]);
    if (spec_is_dynamic(spec)) {
      append_dynamics_metrics(w, outcome.cells[k]);
    }
    if (spec.baseline) {
      const experiment::RelativeMetrics rel =
          experiment::relative_metrics(outcome.cells[k], outcome.baseline);
      w.key("relative").begin_object();
      w.key("access_failure").value(rel.access_failure);
      w.key("delay_ratio").value(rel.delay_ratio);
      w.key("friction").value(rel.friction);
      w.key("cost_ratio").value(rel.cost_ratio);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string out = w.take();
  out += "\n";
  return out;
}

bool run_campaign(const CompiledCampaign& campaign, const RunOptions& options,
                  CampaignOutcome* outcome, std::string* error) {
  const Spec& spec = campaign.spec;
  if (options.write_outputs && !options.out_dir.empty() && options.out_dir != ".") {
    std::error_code ec;
    std::filesystem::create_directories(options.out_dir, ec);
    if (ec) {
      *error = "cannot create " + options.out_dir + ": " + ec.message();
      return false;
    }
  }

  // Baseline first (the fig drivers' order), then the cell grid in one
  // parallel batch. Each run is a pure function of its config, so the
  // batching never changes a number — only wall-clock.
  if (spec.baseline) {
    if (spec.layers > 0) {
      outcome->baseline =
          experiment::run_layered_replicated_grid({campaign.base}, spec.layers, spec.seeds)
              .front();
    } else {
      outcome->baseline = experiment::combine_results(
          experiment::run_replicated(campaign.base, spec.seeds));
    }
  }
  std::vector<experiment::ScenarioConfig> configs;
  configs.reserve(campaign.cells.size());
  for (const CompiledCell& cell : campaign.cells) {
    configs.push_back(cell.config);
  }
  if (spec.layers > 0) {
    outcome->cells = experiment::run_layered_replicated_grid(configs, spec.layers, spec.seeds);
  } else {
    outcome->cells = experiment::run_replicated_grid(configs, spec.seeds);
  }

  if (!options.quiet) {
    std::printf("# campaign %s: %zu cells x %u seed(s)%s\n", spec.name.c_str(),
                campaign.cells.size(), spec.seeds,
                spec.layers > 0 ? (" x " + std::to_string(spec.layers) + " layers").c_str()
                                : "");
    if (spec.baseline) {
      std::printf("# baseline: afp=%.3e gap=%.1fd effort/success=%.0fs over %llu polls\n",
                  outcome->baseline.report.access_failure_probability,
                  outcome->baseline.report.mean_success_gap_days,
                  outcome->baseline.report.effort_per_successful_poll,
                  static_cast<unsigned long long>(outcome->baseline.report.successful_polls));
    }
  }

  if (spec.figure.enabled && options.write_outputs) {
    if (!write_figure(campaign, *outcome, options, &outcome->files_written, error)) {
      return false;
    }
  } else if (!options.quiet) {
    for (size_t k = 0; k < campaign.cells.size(); ++k) {
      std::printf("  %-24s afp=%.3e polls=%llu adversary_effort=%.3es\n",
                  campaign.cells[k].label.c_str(),
                  outcome->cells[k].report.access_failure_probability,
                  static_cast<unsigned long long>(outcome->cells[k].report.successful_polls),
                  outcome->cells[k].report.adversary_effort_seconds);
    }
  }

  if (!options.write_outputs) {
    return true;
  }
  const std::string manifest_path = join_path(options.out_dir, spec.manifest_name);
  if (!write_file(manifest_path, render_manifest(campaign, *outcome), error)) {
    return false;
  }
  outcome->files_written.push_back(manifest_path);
  const std::string cells_path = join_path(options.out_dir, spec.cells_name);
  if (!write_file(cells_path, render_cells_csv(campaign, *outcome), error)) {
    return false;
  }
  outcome->files_written.push_back(cells_path);
  return true;
}

}  // namespace lockss::campaign
