#include "campaign/cell_hash.hpp"

#include "adversary/pipeline.hpp"

namespace lockss::campaign {

uint64_t fnv1a64(const void* data, size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xCBF29CE484222325ull;  // FNV offset basis
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x00000100000001B3ull;  // FNV prime
  }
  return hash;
}

uint64_t fnv1a64(const std::string& s) { return fnv1a64(s.data(), s.size()); }

std::string render_spec_canonical(const Spec& spec) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value(spec.name);
  w.key("peers").value(static_cast<uint64_t>(spec.peers));
  w.key("aus").value(static_cast<uint64_t>(spec.aus));
  w.key("au_coverage").value(spec.au_coverage);
  w.key("newcomers").value(static_cast<uint64_t>(spec.newcomers));
  w.key("newcomer_join_window_ns").value(static_cast<uint64_t>(spec.newcomer_join_window.ns()));
  w.key("duration_ns").value(static_cast<uint64_t>(spec.duration.ns()));
  w.key("seed").value(spec.seed);
  w.key("seeds").value(static_cast<uint64_t>(spec.seeds));
  w.key("layers").value(static_cast<uint64_t>(spec.layers));
  w.key("trace_interval_ns").value(static_cast<uint64_t>(spec.trace_interval.ns()));
  w.key("enable_damage").value(spec.enable_damage);
  w.key("damage_mtbf_disk_years").value(spec.damage_mtbf_disk_years);
  w.key("damage_aus_per_disk").value(spec.damage_aus_per_disk);
  // Protocol overrides apply in file order, so their order is semantic and
  // is preserved here (this is not the "key reordering" the hash must be
  // stable against — that is cosmetic member order in the JSON file, which
  // parse_spec already normalizes into this struct).
  w.key("protocol_overrides").begin_array();
  for (const auto& [name, value] : spec.protocol_overrides) {
    w.begin_object();
    w.key("param").value(name);
    w.key("value").value(value);
    w.end_object();
  }
  w.end_array();
  w.key("churn").begin_object();
  w.key("leave_rate_per_peer_year").value(spec.churn.leave_rate_per_peer_year);
  w.key("crash_rate_per_peer_year").value(spec.churn.crash_rate_per_peer_year);
  w.key("mean_downtime_days").value(spec.churn.mean_downtime_days);
  w.key("arrival_rate_per_year").value(spec.churn.arrival_rate_per_year);
  w.key("regions").value(static_cast<uint64_t>(spec.churn.regions));
  w.key("regional_outage_rate_per_year").value(spec.churn.regional_outage_rate_per_year);
  w.key("regional_outage_days").value(spec.churn.regional_outage_days);
  w.key("regional_recovery_stagger_hours").value(spec.churn.regional_recovery_stagger_hours);
  w.key("regional_state_loss").value(spec.churn.regional_state_loss);
  w.end_object();
  w.key("operators").begin_object();
  w.key("detection_latency_ns").value(static_cast<uint64_t>(spec.operators.detection_latency.ns()));
  w.key("recrawl_cost_factor").value(spec.operators.recrawl_cost_factor);
  w.key("policies").begin_array();
  for (const dynamics::OperatorPolicy& policy : spec.operators.policies) {
    w.begin_object();
    w.key("trigger").value(dynamics::operator_trigger_name(policy.trigger));
    w.key("action").value(dynamics::operator_action_name(policy.action));
    w.key("factor").value(policy.factor);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  // Network/fault keys are emitted only when they leave the defaults, so
  // every pre-existing campaign keeps its pre-fault hash (journals written
  // before the fault layer stay resumable).
  const net::NetworkConfig default_net;
  if (spec.network.min_latency != default_net.min_latency ||
      spec.network.max_latency != default_net.max_latency) {
    w.key("network").begin_object();
    w.key("min_latency_ns").value(static_cast<uint64_t>(spec.network.min_latency.ns()));
    w.key("max_latency_ns").value(static_cast<uint64_t>(spec.network.max_latency.ns()));
    w.end_object();
  }
  if (spec_has_faults(spec)) {
    w.key("network_faults").begin_object();
    w.key("loss_rate").value(spec.faults.loss_rate);
    w.key("dup_rate").value(spec.faults.dup_rate);
    w.key("jitter_ns").value(static_cast<uint64_t>(spec.faults.jitter.ns()));
    w.key("burst_outage_rate").value(spec.faults.burst_outage_rate);
    w.key("burst_cycle_ns").value(static_cast<uint64_t>(spec.faults.burst_cycle.ns()));
    w.end_object();
  }
  // Policy/tournament keys likewise only for policy-engaging specs, so
  // every pre-policy campaign keeps its hash (and its journals resumable).
  const auto policy_rules = [&w](const std::vector<adversary::AdversaryPolicy>& rules) {
    w.begin_array();
    for (const adversary::AdversaryPolicy& rule : rules) {
      w.begin_object();
      w.key("trigger").value(adversary::policy_trigger_name(rule.trigger));
      w.key("action").value(adversary::policy_action_name(rule.action));
      w.key("phase").value(static_cast<uint64_t>(rule.phase));
      w.key("factor").value(rule.factor);
      w.end_object();
    }
    w.end_array();
  };
  const auto operator_rules = [&w](const std::vector<dynamics::OperatorPolicy>& rules) {
    w.begin_array();
    for (const dynamics::OperatorPolicy& rule : rules) {
      w.begin_object();
      w.key("trigger").value(dynamics::operator_trigger_name(rule.trigger));
      w.key("action").value(dynamics::operator_action_name(rule.action));
      w.key("factor").value(rule.factor);
      w.end_object();
    }
    w.end_array();
  };
  if (spec_has_policies(spec)) {
    w.key("adversary_policy").begin_object();
    w.key("reaction_latency_ns")
        .value(static_cast<uint64_t>(spec.adversary_policy.reaction_latency.ns()));
    w.key("sensor_interval_ns")
        .value(static_cast<uint64_t>(spec.adversary_policy.sensor_interval.ns()));
    w.key("cooldown_ns").value(static_cast<uint64_t>(spec.adversary_policy.cooldown.ns()));
    w.key("outage_threshold").value(spec.adversary_policy.outage_threshold);
    w.key("backoff_threshold").value(spec.adversary_policy.backoff_threshold);
    w.key("collapse_threshold").value(spec.adversary_policy.collapse_threshold);
    w.key("dormant_mean_ns")
        .value(static_cast<uint64_t>(spec.adversary_policy.dormant_mean.ns()));
    w.key("throttle_pause_ns")
        .value(static_cast<uint64_t>(spec.adversary_policy.throttle_pause.ns()));
    w.key("policies");
    policy_rules(spec.adversary_policy.policies);
    w.end_object();
  }
  if (spec.tournament) {
    w.key("tournament").begin_object();
    w.key("adversary_strategies").begin_array();
    for (const Spec::AdversaryStrategy& strategy : spec.adversary_strategies) {
      w.begin_object();
      w.key("name").value(strategy.name);
      w.key("policies");
      policy_rules(strategy.policies);
      w.end_object();
    }
    w.end_array();
    w.key("operator_strategies").begin_array();
    for (const Spec::OperatorStrategy& strategy : spec.operator_strategies) {
      w.begin_object();
      w.key("name").value(strategy.name);
      w.key("detection_latency_ns")
          .value(static_cast<uint64_t>(strategy.operators.detection_latency.ns()));
      w.key("recrawl_cost_factor").value(strategy.operators.recrawl_cost_factor);
      w.key("policies");
      operator_rules(strategy.operators.policies);
      w.end_object();
    }
    w.end_array();
    w.key("payoff").value(spec.payoff_name);
    w.end_object();
  }
  w.key("pipeline").begin_array();
  for (const adversary::AdversaryPhase& phase : spec.pipeline) {
    w.begin_object();
    w.key("kind").value(adversary::phase_kind_name(phase.kind));
    w.key("attack_duration_ns").value(static_cast<uint64_t>(phase.cadence.attack_duration.ns()));
    w.key("recuperation_ns").value(static_cast<uint64_t>(phase.cadence.recuperation.ns()));
    w.key("coverage").value(phase.cadence.coverage);
    w.key("defection").value(adversary::defection_point_name(phase.defection));
    w.key("start_ns").value(static_cast<uint64_t>(phase.start.ns()));
    w.key("stop_ns").value(static_cast<uint64_t>(phase.stop.ns()));
    w.key("minion_count").value(static_cast<uint64_t>(phase.minion_count));
    w.key("minion_id_base").value(static_cast<uint64_t>(phase.minion_id_base));
    w.end_object();
  }
  w.end_array();
  w.key("axes").begin_array();
  for (const SweepAxis& axis : spec.axes) {
    w.begin_object();
    w.key("param").value(axis.param);
    w.key("phase").value(static_cast<uint64_t>(axis.phase));
    w.key("label").value(axis.label);
    if (axis.categorical()) {
      w.key("names").begin_array();
      for (const std::string& name : axis.names) {
        w.value(name);
      }
      w.end_array();
    } else {
      w.key("values").begin_array();
      for (double v : axis.values) {
        w.value(v);
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.key("baseline").value(spec.baseline);
  w.end_object();
  return w.take();
}

uint64_t campaign_hash(const Spec& spec) { return fnv1a64(render_spec_canonical(spec)); }

namespace {

// Units are addressed by a canonical "<campaign-hex>/<label>#<index>{names}"
// string rather than mixing raw words, so two different coordinate sets can
// never fold to the same byte stream.
uint64_t unit_identity(uint64_t campaign_hash_value, const std::string& label,
                       uint64_t index, const std::vector<std::string>& names) {
  JsonWriter w;
  w.begin_object();
  w.key("campaign").value(campaign_hash_value);
  w.key("unit").value(label);
  w.key("index").value(index);
  w.key("values").begin_array();
  for (const std::string& name : names) {
    w.value(name);
  }
  w.end_array();
  w.end_object();
  return fnv1a64(w.take());
}

}  // namespace

uint64_t cell_identity(uint64_t campaign_hash_value, size_t cell_index,
                       const CompiledCell& cell) {
  return unit_identity(campaign_hash_value, cell.label, static_cast<uint64_t>(cell_index),
                       cell.names);
}

uint64_t baseline_identity(uint64_t campaign_hash_value) {
  // Reserved coordinates: compiled cell labels never contain '/', and no
  // cell has index UINT64_MAX.
  return unit_identity(campaign_hash_value, "/baseline", ~0ull, {});
}

}  // namespace lockss::campaign
