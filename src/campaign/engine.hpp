// Campaign execution: compiled cells through the parallel runner, results
// onto disk.
//
// run_campaign() fans the baseline replicas and every (cell × seed) job —
// or, for layered campaigns, every (cell × seed) §6.3 layered campaign —
// through experiment::ParallelRunner, then writes:
//
//   <out_dir>/<manifest>      deterministic JSON: spec echo, per-cell and
//                             baseline metrics (%.17g doubles — golden-
//                             pinnable, see tests/campaign_golden_test.cpp)
//   <out_dir>/<cells>         long-form CSV, one row per cell
//   <out_dir>/<figure.csv>    only when the spec has a figure output:
//                             byte-identical to the hard-coded fig drivers'
//                             CSV (rows = axis 0, columns = axis 1), plus
//                             the companion .trace.csv and .gp files when
//                             tracing is on
//
// Everything written is a pure function of the spec (wall-clock and worker
// count never reach the files); the determinism contract is the same as
// run_scenario's.
#ifndef LOCKSS_CAMPAIGN_ENGINE_HPP_
#define LOCKSS_CAMPAIGN_ENGINE_HPP_

#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "experiment/scenario.hpp"

namespace lockss::campaign {

struct RunOptions {
  std::string out_dir = ".";  // created if missing
  // Worker count comes from ParallelRunner::default_workers(); override it
  // process-wide with ParallelRunner::set_default_workers (the
  // lockss_campaign --workers flag does exactly that).
  bool quiet = false;         // suppress the stdout report (incl. figure table)
  // false = run only, leave no files behind (in-memory consumers like the
  // campaign-driven examples).
  bool write_outputs = true;
};

struct CampaignOutcome {
  // Seed-combined (and, when layered, layer-combined) results.
  experiment::RunResult baseline;  // meaningful only when spec.baseline
  std::vector<experiment::RunResult> cells;  // compiled-cell order
  std::vector<std::string> files_written;
};

// Executes a compiled campaign and writes its outputs. Returns false with a
// diagnostic on I/O failure (simulation itself cannot fail).
bool run_campaign(const CompiledCampaign& campaign, const RunOptions& options,
                  CampaignOutcome* outcome, std::string* error);

// Renders the deterministic run manifest (exposed for the golden test).
std::string render_manifest(const CompiledCampaign& campaign, const CampaignOutcome& outcome);

}  // namespace lockss::campaign

#endif  // LOCKSS_CAMPAIGN_ENGINE_HPP_
