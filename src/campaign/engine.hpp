// Campaign execution: compiled cells through the parallel runner, results
// onto disk — crash-resumably.
//
// run_campaign() fans the baseline and every compiled cell — each unit
// running its seeds (and §6.3 layers) internally — through
// experiment::ParallelRunner::run_protected, then writes:
//
//   <out_dir>/<name>.journal  append-only, checksum-framed, fsync'd record
//                             per completed/failed unit (campaign/journal.hpp);
//                             --resume replays it and skips computed units
//   <out_dir>/<manifest>      deterministic JSON: spec echo, per-cell and
//                             baseline metrics (%.17g doubles — golden-
//                             pinnable, see tests/campaign_golden_test.cpp);
//                             failed cells carry status/attempts/error
//   <out_dir>/<cells>         long-form CSV, one row per cell
//   <out_dir>/<figure.csv>    only when the spec has a figure output:
//                             byte-identical to the hard-coded fig drivers'
//                             CSV, plus the companion .trace.csv and .gp
//
// Every artifact is written via temp file + atomic rename, so a kill at
// any instant leaves either the previous artifact or the new one — never a
// torn file. Everything written is a pure function of the spec (wall-clock
// and worker count never reach the files), and a resumed run reconstructs
// units from the journal bit-exactly, so kill + --resume at any journal
// offset and any worker count reproduces the uninterrupted artifacts
// byte for byte (tests/campaign_resilience_test.cpp proves it under the
// fault-injection plans of campaign/fault.hpp). The one deliberate
// exception: a spec with `observability.profile: true` opts into wall_ms /
// peak_rss_kb / worker-count keys in its manifest — those are measurements
// of the machine, not of the experiment, and such manifests are never
// golden-pinned or resume-compared (docs/observability.md).
//
// Failure isolation: a unit that throws is retried (deterministic rounds,
// see run_protected), then recorded as failed — in the journal, the
// manifest, and CampaignOutcome — while the rest of the grid completes.
#ifndef LOCKSS_CAMPAIGN_ENGINE_HPP_
#define LOCKSS_CAMPAIGN_ENGINE_HPP_

#include <functional>
#include <string>
#include <vector>

#include "campaign/fault.hpp"
#include "campaign/spec.hpp"
#include "experiment/scenario.hpp"

namespace lockss::campaign {

struct RunOptions {
  std::string out_dir = ".";  // created if missing
  // Worker count comes from ParallelRunner::default_workers(); override it
  // process-wide with ParallelRunner::set_default_workers (the
  // lockss_campaign --workers flag does exactly that).
  bool quiet = false;         // suppress the stdout report (incl. figure table)
  // false = run only, leave no files behind (in-memory consumers like the
  // campaign-driven examples). Also disables journaling.
  bool write_outputs = true;
  // Replay <out_dir>/<name>.journal: skip units it already holds (a torn
  // trailing record is truncated away; units recorded as failed are
  // re-attempted). A missing or headerless journal starts fresh; a journal
  // whose campaign hash differs from this spec is an error.
  bool resume = false;
  // Extra attempts per unit after the first (per-cell retry bound).
  uint32_t retries = 0;
  // Deterministic fault injection (campaign/fault.hpp); default disabled.
  FaultPlan faults;
  // Live progress (lockss_campaign --progress): fired once before execution
  // (done = units replayed from the journal) and once per unit as it
  // reaches its final state, serialized under the runner's completion
  // mutex. Completion order is wall-clock-dependent — reporting only, never
  // an input to anything written to disk.
  struct Progress {
    size_t units_done = 0;    // includes journal-resumed units
    size_t units_total = 0;
    size_t units_failed = 0;  // exhausted their retry budget so far
    uint32_t extra_attempts = 0;  // retry attempts beyond each unit's first
  };
  std::function<void(const Progress&)> progress;
};

// Final state of one unit of work (the baseline or one cell).
struct UnitStatus {
  bool ok = true;
  bool from_journal = false;  // resumed, not recomputed
  uint32_t attempts = 0;      // 0 when resumed from the journal
  std::string error;          // last diagnostic when !ok
};

struct CampaignOutcome {
  // Seed-combined (and, when layered, layer-combined) results.
  experiment::RunResult baseline;  // meaningful only when spec.baseline
  std::vector<experiment::RunResult> cells;  // compiled-cell order
  UnitStatus baseline_status;
  std::vector<UnitStatus> cell_status;       // compiled-cell order
  size_t units_resumed = 0;  // skipped via the journal
  size_t units_failed = 0;   // exhausted their retry budget
  std::vector<std::string> files_written;
  std::string journal_path;  // empty when journaling was off
  // Wall-clock accounting (reporting only; reaches the manifest only when
  // the spec sets observability.profile).
  double total_wall_ms = 0.0;
  unsigned workers_used = 0;

  bool all_ok() const { return units_failed == 0; }
};

// Executes a compiled campaign and writes its outputs. Returns false with a
// diagnostic on I/O failure or a spec-mismatched resume journal. Cell
// failures are NOT an I/O failure: the grid completes, the manifest records
// them, run_campaign returns true, and the caller checks outcome->all_ok()
// (lockss_campaign exits non-zero on it).
bool run_campaign(const CompiledCampaign& campaign, const RunOptions& options,
                  CampaignOutcome* outcome, std::string* error);

// Renders the deterministic run manifest (exposed for the golden test).
std::string render_manifest(const CompiledCampaign& campaign, const CampaignOutcome& outcome);

// Renders the tournament payoff-matrix CSV (exposed for the determinism
// tests; docs/adversaries.md). Three blocks — afp, adversary_effort_seconds,
// and score = afp / effort (afp when the strategy spent nothing) — each a
// matrix of adversary strategies (rows) × operator strategies (columns).
// Lower scores mean the defense won: less damage per attacker-second spent.
// Empty for non-tournament campaigns.
std::string render_payoff_csv(const CompiledCampaign& campaign, const CampaignOutcome& outcome);

}  // namespace lockss::campaign

#endif  // LOCKSS_CAMPAIGN_ENGINE_HPP_
