// Minimal dependency-free JSON for campaign files.
//
// The campaign subsystem needs exactly one serialization format: small
// hand-written scenario specs (campaigns/*.json) read at tool startup, and
// run manifests written once per campaign. This is a strict recursive-
// descent parser over that subset of reality — no streaming, no SAX, no
// number-precision heroics — with two properties the spec layer leans on:
//
//   * every value remembers the line it started on, so validation errors
//     cite "campaigns/fig3.json:17: axes[0].values: ..." instead of
//     "bad file";
//   * object members keep file order, so sweep-axis order (and therefore
//     grid row-major order) is exactly what the author wrote.
//
// Extensions over RFC 8259: '//' comments to end-of-line (campaign files
// are documentation too) and a tolerated trailing comma in arrays/objects.
#ifndef LOCKSS_CAMPAIGN_JSON_HPP_
#define LOCKSS_CAMPAIGN_JSON_HPP_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace lockss::campaign {

class Json {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<Json> array_items;
  std::vector<std::pair<std::string, Json>> object_members;  // file order
  int line = 0;  // 1-based line where this value started

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  static const char* type_name(Type type);

  // Member lookup (objects only); nullptr when absent.
  const Json* find(const std::string& key) const {
    for (const auto& [name, value] : object_members) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }
};

// Parses `text`; on failure returns false and sets `error` to
// "line N: reason". `source` names the file in the error.
bool parse_json(const std::string& text, Json* out, std::string* error);

// --- Manifest writing ---------------------------------------------------
// Small append-style JSON writer: values render with stable formatting
// (numbers via %.17g round-trip, strings escaped), so manifests are
// byte-deterministic functions of their inputs and can be golden-pinned.
class JsonWriter {
 public:
  std::string take() { return std::move(out_); }

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(uint64_t v);
  // Ints route through the double renderer (exact for |v| < 2^53), so a
  // negative never wraps through uint64_t.
  JsonWriter& value(int v) { return value(static_cast<double>(v)); }
  JsonWriter& value(bool v);

 private:
  void comma_and_indent(bool closing = false);
  void separator();

  std::string out_;
  std::vector<bool> first_in_scope_;
  bool after_key_ = false;
};

std::string escape_json(const std::string& s);

}  // namespace lockss::campaign

#endif  // LOCKSS_CAMPAIGN_JSON_HPP_
