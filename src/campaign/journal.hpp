// Crash-safe execution journal for campaign runs.
//
// The campaign engine appends one record per completed (or permanently
// failed) unit of work — the baseline or one cell — to
// <out_dir>/<name>.journal. A resumed run replays the journal, skips every
// unit it already holds, and reconstructs bit-identical artifacts from the
// stored results, so a process kill at any instant costs at most the cells
// in flight (GiuliMBRR05 §5's discipline applied to our own tooling:
// long-running work must absorb sporadic failure without restarting).
//
// Format (all integers little-endian, fixed width):
//
//   record  := u32 payload_length | u64 fnv1a64(payload) | payload
//   payload := u8 type | body
//
//   type 0 (header, always first): u32 magic "LKJ1" | u32 version |
//            u64 campaign_hash (campaign::campaign_hash of the spec)
//   type 1 (completed unit): u64 unit_hash | RunResult blob (below)
//   type 2 (failed unit):    u64 unit_hash | u32 attempts |
//                            u32 len | diagnostic bytes
//
// The RunResult blob serializes every field the engine's artifacts read
// (report scalars, counters, dynamics accounting, the full trace series)
// with doubles as IEEE-754 bit patterns, so a result read back renders
// byte-identically to the freshly computed one.
//
// Durability contract: each append is written with a single write() and
// fsync'd before the writer returns, so after a crash the file is a valid
// record sequence followed by at most one torn tail. read_journal()
// recovers the longest valid prefix (truncated length word, short payload,
// checksum mismatch, or garbage all stop the scan without failing) and
// reports where the valid bytes end so the writer can truncate the tear
// before appending.
#ifndef LOCKSS_CAMPAIGN_JOURNAL_HPP_
#define LOCKSS_CAMPAIGN_JOURNAL_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"

namespace lockss::campaign {

inline constexpr uint32_t kJournalMagic = 0x314A4B4Cu;  // "LKJ1"
// v2 added the fault-layer, protocol-robustness, and liveness-audit
// counters (plus the per-point fault fields of the trace series) to the
// RunResult blob when the manifest began rendering them for every spec. A
// version bump invalidates pre-v2 journals wholesale — their records would
// silently resume with zeroed counters — so --resume recomputes instead.
// v3 appended the adaptive-adversary policy counters (policy_triggers and
// the per-PolicyAction applications) for the same reason.
inline constexpr uint32_t kJournalVersion = 3;

struct JournalRecord {
  uint64_t unit_hash = 0;
  bool failed = false;
  // Completed units.
  experiment::RunResult result;
  // Failed units.
  uint32_t attempts = 0;
  std::string diagnostic;
};

struct JournalContents {
  bool header_ok = false;       // a valid header record was read
  uint64_t campaign_hash = 0;   // from the header
  std::vector<JournalRecord> records;
  uint64_t valid_bytes = 0;     // prefix length covered by valid records
  bool torn_tail = false;       // bytes beyond valid_bytes were unreadable
};

// Reads a journal, recovering the longest valid record prefix. Returns
// false only when the file cannot be opened/read at all; corruption is not
// an error (the contents report how far the valid prefix reaches). An
// empty file yields header_ok == false with zero records.
bool read_journal(const std::string& path, JournalContents* out, std::string* error);

// Append-side handle. All writes are framed, single-write(), and fsync'd.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Creates/truncates the journal and writes the header record.
  bool create(const std::string& path, uint64_t campaign_hash, std::string* error);
  // Opens an existing journal for appending, first truncating it to
  // `valid_bytes` (discarding a torn tail found by read_journal).
  bool open_append(const std::string& path, uint64_t valid_bytes, std::string* error);

  bool append_result(uint64_t unit_hash, const experiment::RunResult& result,
                     std::string* error);
  bool append_failure(uint64_t unit_hash, uint32_t attempts, const std::string& diagnostic,
                      std::string* error);

  // Records appended through this writer (header included for create()).
  uint64_t appends() const { return appends_; }

  void close();
  bool is_open() const { return fd_ >= 0; }

 private:
  bool append_payload(const std::string& payload, std::string* error);

  int fd_ = -1;
  std::string path_;
  uint64_t appends_ = 0;
};

// RunResult <-> bytes (exposed for tests; the blob format is internal to
// the journal otherwise).
void serialize_run_result(const experiment::RunResult& result, std::string* out);
bool deserialize_run_result(const std::string& bytes, size_t* cursor,
                            experiment::RunResult* out);

}  // namespace lockss::campaign

#endif  // LOCKSS_CAMPAIGN_JOURNAL_HPP_
