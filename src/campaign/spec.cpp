#include "campaign/spec.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace lockss::campaign {
namespace {

// --- Protocol override vocabulary ----------------------------------------

struct ProtocolParam {
  const char* name;
  void (*apply)(protocol::Params&, double);
};

const ProtocolParam kProtocolParams[] = {
    {"quorum", [](protocol::Params& p, double v) { p.quorum = static_cast<uint32_t>(v); }},
    {"inner_circle_factor",
     [](protocol::Params& p, double v) { p.inner_circle_factor = static_cast<uint32_t>(v); }},
    {"max_disagreeing",
     [](protocol::Params& p, double v) { p.max_disagreeing = static_cast<uint32_t>(v); }},
    {"inter_poll_days",
     [](protocol::Params& p, double v) { p.inter_poll_interval = sim::SimTime::days(v); }},
    {"nominations_per_vote",
     [](protocol::Params& p, double v) { p.nominations_per_vote = static_cast<uint32_t>(v); }},
    {"outer_circle_size",
     [](protocol::Params& p, double v) { p.outer_circle_size = static_cast<uint32_t>(v); }},
    {"introduction_fraction",
     [](protocol::Params& p, double v) { p.introduction_fraction = v; }},
    {"reference_list_target",
     [](protocol::Params& p, double v) { p.reference_list_target = static_cast<uint32_t>(v); }},
    {"friends_per_poll",
     [](protocol::Params& p, double v) { p.friends_per_poll = static_cast<uint32_t>(v); }},
    {"friends_list_size",
     [](protocol::Params& p, double v) { p.friends_list_size = static_cast<uint32_t>(v); }},
    {"unknown_drop_probability",
     [](protocol::Params& p, double v) { p.unknown_drop_probability = v; }},
    {"debt_drop_probability",
     [](protocol::Params& p, double v) { p.debt_drop_probability = v; }},
    {"refractory_days",
     [](protocol::Params& p, double v) { p.refractory_period = sim::SimTime::days(v); }},
    {"consideration_rate_multiplier",
     [](protocol::Params& p, double v) { p.consideration_rate_multiplier = v; }},
    {"grade_decay_months",
     [](protocol::Params& p, double v) { p.grade_decay_interval = sim::SimTime::months(v); }},
    {"introductory_effort_fraction",
     [](protocol::Params& p, double v) { p.introductory_effort_fraction = v; }},
    {"frivolous_repair_probability",
     [](protocol::Params& p, double v) { p.frivolous_repair_probability = v; }},
    {"adaptive_acceptance",
     [](protocol::Params& p, double v) { p.adaptive_acceptance = v != 0.0; }},
    {"adaptive_scale", [](protocol::Params& p, double v) { p.adaptive_scale = v; }},
};

const ProtocolParam* find_protocol_param(const std::string& name) {
  for (const ProtocolParam& entry : kProtocolParams) {
    if (name == entry.name) {
      return &entry;
    }
  }
  return nullptr;
}

// --- Sweep-axis vocabulary ------------------------------------------------

constexpr const char* kDeploymentAxes[] = {
    "peers", "aus", "au_coverage", "newcomers", "newcomer_window_days", "duration_years",
};
constexpr const char* kPhaseAxes[] = {
    "attack_days", "recuperation_days", "coverage_percent", "start_days",
    "stop_days",   "minion_count",      "defection",
};
// Deployment-dynamics axes (docs/dynamics.md): churn rates apply to the
// `dynamics` section, detection latency to `operators`.
constexpr const char* kDynamicsAxes[] = {
    "churn_leave_rate",   "churn_crash_rate",     "churn_mean_downtime_days",
    "churn_arrival_rate", "regional_outage_rate", "detection_latency_days",
};
// Unreliable-link fault axes (docs/faults.md): all apply to the
// `network_faults` section, which must be present for them to mean
// anything (cross-validated below).
constexpr const char* kFaultAxes[] = {
    "loss_rate",
    "dup_rate",
    "jitter_ms",
    "burst_outage_rate",
};

bool is_deployment_axis(const std::string& name) {
  return std::find_if(std::begin(kDeploymentAxes), std::end(kDeploymentAxes),
                      [&](const char* a) { return name == a; }) != std::end(kDeploymentAxes);
}
bool is_phase_axis(const std::string& name) {
  return std::find_if(std::begin(kPhaseAxes), std::end(kPhaseAxes),
                      [&](const char* a) { return name == a; }) != std::end(kPhaseAxes);
}
bool is_dynamics_axis(const std::string& name) {
  return std::find_if(std::begin(kDynamicsAxes), std::end(kDynamicsAxes),
                      [&](const char* a) { return name == a; }) != std::end(kDynamicsAxes);
}
bool is_fault_axis(const std::string& name) {
  return std::find_if(std::begin(kFaultAxes), std::end(kFaultAxes),
                      [&](const char* a) { return name == a; }) != std::end(kFaultAxes);
}

bool param_is_unsigned_int(const std::string& param) {
  for (const char* name : {"peers", "aus", "newcomers", "minion_count", "quorum",
                           "inner_circle_factor", "max_disagreeing", "nominations_per_vote",
                           "outer_circle_size", "reference_list_target", "friends_per_poll",
                           "friends_list_size", "max_outstanding_introductions"}) {
    if (param == name) {
      return true;
    }
  }
  return false;
}

// Range/shape constraint for one numeric axis value; empty string = OK.
// Integer-valued params must be whole non-negative 32-bit numbers (a silent
// static_cast truncation would run a different experiment than the file
// describes), and a few params carry semantic ranges.
std::string check_axis_value(const std::string& param, double v) {
  if (param_is_unsigned_int(param)) {
    if (v < 0 || v > 4294967295.0 || v != static_cast<double>(static_cast<uint64_t>(v))) {
      return "'" + param + "' values must be whole non-negative 32-bit numbers";
    }
    if ((param == "peers" || param == "aus") && v < 1) {
      return "'" + param + "' values must be >= 1";
    }
    return "";
  }
  if (param == "au_coverage") {
    return v > 0.0 && v <= 1.0 ? "" : "'au_coverage' values must be within (0, 1]";
  }
  if (param == "duration_years") {
    return v > 0.0 ? "" : "'duration_years' values must be positive";
  }
  if (param == "attack_days" || param == "recuperation_days" || param == "start_days" ||
      param == "stop_days" || param == "newcomer_window_days") {
    return v >= 0.0 ? "" : "'" + param + "' values must be non-negative";
  }
  if (param == "coverage_percent") {
    return v >= 0.0 && v <= 100.0 ? "" : "'coverage_percent' values must be within [0, 100]";
  }
  if (param == "churn_leave_rate" || param == "churn_crash_rate" ||
      param == "churn_arrival_rate" || param == "regional_outage_rate" ||
      param == "detection_latency_days") {
    return v >= 0.0 ? "" : "'" + param + "' values must be non-negative";
  }
  if (param == "churn_mean_downtime_days") {
    return v > 0.0 ? "" : "'churn_mean_downtime_days' values must be positive";
  }
  if (param == "loss_rate" || param == "dup_rate" || param == "burst_outage_rate") {
    return v >= 0.0 && v <= 1.0 ? "" : "'" + param + "' values must be within [0, 1]";
  }
  if (param == "jitter_ms") {
    return v >= 0.0 ? "" : "'jitter_ms' values must be non-negative";
  }
  return "";
}

bool parse_defection(const std::string& name, adversary::DefectionPoint* out) {
  for (adversary::DefectionPoint point :
       {adversary::DefectionPoint::kIntro, adversary::DefectionPoint::kRemaining,
        adversary::DefectionPoint::kNone}) {
    if (name == adversary::defection_point_name(point)) {
      *out = point;
      return true;
    }
  }
  return false;
}

// --- Diagnostics-carrying object reader -----------------------------------

// Wraps one JSON object: typed member access with "path:line: field: why"
// diagnostics, plus unknown-member detection (catches typos instead of
// silently ignoring them).
class ObjectReader {
 public:
  ObjectReader(const Json& json, const std::string& source, const std::string& field_prefix,
               std::string* error)
      : json_(json), source_(source), prefix_(field_prefix), error_(error) {}

  bool ok() const { return ok_; }

  bool fail(int line, const std::string& field, const std::string& reason) {
    if (ok_) {  // keep the first error
      *error_ = source_ + ":" + std::to_string(line) + ": " + qualify(field) + ": " + reason;
      ok_ = false;
    }
    return false;
  }

  // Object-shape check; call first.
  bool expect_object() {
    if (!json_.is_object()) {
      return fail(json_.line, prefix_.empty() ? "(top level)" : prefix_,
                  std::string("expected an object, got ") + Json::type_name(json_.type));
    }
    return true;
  }

  const Json* member(const std::string& name) {
    consumed_.insert(name);
    return json_.find(name);
  }

  bool number(const std::string& name, double* out) {
    const Json* m = member(name);
    if (m == nullptr) {
      return true;  // optional; *out keeps its default
    }
    if (!m->is_number()) {
      return fail(m->line, name,
                  std::string("expected a number, got ") + Json::type_name(m->type));
    }
    *out = m->number_value;
    return true;
  }

  bool unsigned_int(const std::string& name, uint32_t* out) {
    const Json* m = member(name);
    if (m == nullptr) {
      return true;
    }
    if (!m->is_number() || m->number_value < 0 ||
        m->number_value != static_cast<double>(static_cast<uint64_t>(m->number_value))) {
      return fail(m->line, name, "expected a non-negative integer");
    }
    if (m->number_value > 4294967295.0) {
      return fail(m->line, name, "exceeds the 32-bit range");
    }
    *out = static_cast<uint32_t>(m->number_value);
    return true;
  }

  bool unsigned_int64(const std::string& name, uint64_t* out) {
    const Json* m = member(name);
    if (m == nullptr) {
      return true;
    }
    if (!m->is_number() || m->number_value < 0 ||
        m->number_value != static_cast<double>(static_cast<uint64_t>(m->number_value))) {
      return fail(m->line, name, "expected a non-negative integer");
    }
    if (m->number_value > 9007199254740992.0) {  // 2^53: exact-double ceiling
      return fail(m->line, name, "too large to represent exactly (max 2^53)");
    }
    *out = static_cast<uint64_t>(m->number_value);
    return true;
  }

  bool boolean(const std::string& name, bool* out) {
    const Json* m = member(name);
    if (m == nullptr) {
      return true;
    }
    if (!m->is_bool()) {
      return fail(m->line, name, std::string("expected a bool, got ") + Json::type_name(m->type));
    }
    *out = m->bool_value;
    return true;
  }

  bool string(const std::string& name, std::string* out) {
    const Json* m = member(name);
    if (m == nullptr) {
      return true;
    }
    if (!m->is_string()) {
      return fail(m->line, name,
                  std::string("expected a string, got ") + Json::type_name(m->type));
    }
    *out = m->string_value;
    return true;
  }

  // Errors on members this reader never asked about.
  bool finish() {
    if (!ok_) {
      return false;
    }
    for (const auto& [name, value] : json_.object_members) {
      if (!consumed_.contains(name)) {
        return fail(value.line, name, "unknown member (see docs/campaigns.md for the schema)");
      }
    }
    return true;
  }

  std::string qualify(const std::string& field) const {
    return prefix_.empty() ? field : prefix_ + "." + field;
  }

 private:
  const Json& json_;
  const std::string& source_;
  std::string prefix_;
  std::string* error_;
  std::set<std::string> consumed_;
  bool ok_ = true;
};

// One adversary trigger→action rule ({ trigger, action, phase?, factor? };
// docs/adversaries.md). Shared by the adversary_policy section and the
// tournament strategy tables. Phase-range and factor constraints are
// checked later via adversary::validate_policies (they need the pipeline).
bool parse_adversary_policy_rule(const Json& json, const std::string& source,
                                 const std::string& prefix, adversary::AdversaryPolicy* out,
                                 std::string* error) {
  ObjectReader p(json, source, prefix, error);
  if (!p.expect_object()) {
    return false;
  }
  std::string trigger;
  std::string action;
  uint32_t phase = 0;
  if (!p.string("trigger", &trigger) || !p.string("action", &action) ||
      !p.unsigned_int("phase", &phase) || !p.number("factor", &out->factor)) {
    return false;
  }
  out->phase = phase;
  if (trigger.empty()) {
    return p.fail(json.line, "trigger",
                  "required (alarm | backoff | outage | recovery | grade_collapse)");
  }
  if (!adversary::parse_policy_trigger(trigger, &out->trigger)) {
    const Json* m = json.find("trigger");
    return p.fail(m != nullptr ? m->line : json.line, "trigger",
                  "unknown trigger '" + trigger +
                      "' (expected alarm | backoff | outage | recovery | grade_collapse)");
  }
  if (action.empty()) {
    return p.fail(json.line, "action",
                  "required (switch_phase | retarget | throttle | go_dormant)");
  }
  if (!adversary::parse_policy_action(action, &out->action)) {
    const Json* m = json.find("action");
    return p.fail(m != nullptr ? m->line : json.line, "action",
                  "unknown action '" + action +
                      "' (expected switch_phase | retarget | throttle | go_dormant)");
  }
  return p.finish();
}

// One operator trigger→action rule; shared by the operators section and the
// tournament operator strategies.
bool parse_operator_policy_entry(const Json& entry, const std::string& source,
                                 const std::string& prefix, dynamics::OperatorPolicy* out,
                                 std::string* error) {
  ObjectReader p(entry, source, prefix, error);
  if (!p.expect_object()) {
    return false;
  }
  std::string trigger;
  std::string action;
  if (!p.string("trigger", &trigger) || !p.string("action", &action) ||
      !p.number("factor", &out->factor)) {
    return false;
  }
  if (!dynamics::parse_operator_trigger(trigger, &out->trigger)) {
    const Json* m = entry.find("trigger");
    return p.fail(m != nullptr ? m->line : entry.line, "trigger",
                  "unknown trigger '" + trigger + "' (expected alarm | recovery)");
  }
  if (!dynamics::parse_operator_action(action, &out->action)) {
    const Json* m = entry.find("action");
    return p.fail(m != nullptr ? m->line : entry.line, "action",
                  "unknown action '" + action +
                      "' (expected rekey | friend_refresh | rate_tighten | au_recrawl)");
  }
  if (out->action == dynamics::OperatorAction::kRateTighten &&
      (out->factor <= 0.0 || out->factor > 1.0)) {
    const Json* m = entry.find("factor");
    return p.fail(m != nullptr ? m->line : entry.line, "factor",
                  "rate_tighten factor must be within (0, 1]");
  }
  return p.finish();
}

// Tournament strategy names become cell-label segments and payoff CSV
// headers, so the separators those formats use are reserved.
std::string check_strategy_name(const std::string& name) {
  if (name.empty()) {
    return "required";
  }
  if (name.find('/') != std::string::npos || name.find(' ') != std::string::npos ||
      name.find(',') != std::string::npos || name.find('_') != std::string::npos) {
    return "must not contain '/', '_', ',' or spaces (used in cell labels and the payoff CSV)";
  }
  return "";
}

bool parse_phase(const Json& json, const std::string& source, size_t index,
                 adversary::AdversaryPhase* out, std::string* error) {
  const std::string prefix = "adversary[" + std::to_string(index) + "]";
  ObjectReader reader(json, source, prefix, error);
  if (!reader.expect_object()) {
    return false;
  }
  std::string kind;
  if (!reader.string("kind", &kind)) {
    return false;
  }
  const Json* kind_member = json.find("kind");
  if (kind.empty()) {
    return reader.fail(json.line, "kind", "required (pipe_stoppage | admission_flood | "
                                          "brute_force | grade_recovery | vote_flood)");
  }
  if (!adversary::parse_phase_kind(kind, &out->kind)) {
    return reader.fail(kind_member->line, "kind",
                       "unknown attack module '" + kind +
                           "' (expected pipe_stoppage | admission_flood | brute_force | "
                           "grade_recovery | vote_flood)");
  }
  double attack_days = out->cadence.attack_duration.to_days();
  double recuperation_days = out->cadence.recuperation.to_days();
  double coverage_percent = out->cadence.coverage * 100.0;
  double start_days = 0.0;
  double stop_days = 0.0;
  if (!reader.number("attack_days", &attack_days) ||
      !reader.number("recuperation_days", &recuperation_days) ||
      !reader.number("coverage_percent", &coverage_percent) ||
      !reader.number("start_days", &start_days) || !reader.number("stop_days", &stop_days) ||
      !reader.unsigned_int("minion_count", &out->minion_count) ||
      !reader.unsigned_int("minion_id_base", &out->minion_id_base)) {
    return false;
  }
  std::string defection;
  if (!reader.string("defection", &defection)) {
    return false;
  }
  if (!defection.empty() && !parse_defection(defection, &out->defection)) {
    return reader.fail(json.find("defection")->line, "defection",
                       "unknown defection point '" + defection +
                           "' (expected INTRO | REMAINING | NONE)");
  }
  out->cadence.attack_duration = sim::SimTime::days(attack_days);
  out->cadence.recuperation = sim::SimTime::days(recuperation_days);
  out->cadence.coverage = coverage_percent / 100.0;
  out->start = sim::SimTime::days(start_days);
  out->stop = sim::SimTime::days(stop_days);
  return reader.finish();
}

bool parse_axis(const Json& json, const std::string& source, size_t index,
                const adversary::AdversaryPipeline& pipeline, SweepAxis* out,
                std::string* error) {
  const std::string prefix = "sweep[" + std::to_string(index) + "]";
  ObjectReader reader(json, source, prefix, error);
  if (!reader.expect_object()) {
    return false;
  }
  out->line = json.line;
  uint32_t phase = 0;
  if (!reader.string("param", &out->param) || !reader.unsigned_int("phase", &phase) ||
      !reader.string("label", &out->label)) {
    return false;
  }
  out->phase = phase;
  if (out->param.empty()) {
    return reader.fail(json.line, "param", "required");
  }
  const bool phase_level = is_phase_axis(out->param);
  if (!phase_level && !is_deployment_axis(out->param) && !is_dynamics_axis(out->param) &&
      !is_fault_axis(out->param) && find_protocol_param(out->param) == nullptr) {
    std::string known;
    for (const std::string& name : axis_params()) {
      known += (known.empty() ? "" : ", ") + name;
    }
    return reader.fail(json.find("param")->line, "param",
                       "unknown sweep parameter '" + out->param + "' (known: " + known + ")");
  }
  if (phase_level && out->phase >= pipeline.size()) {
    return reader.fail(json.line, "phase",
                       "phase index " + std::to_string(out->phase) +
                           " out of range (pipeline has " + std::to_string(pipeline.size()) +
                           " phase(s))");
  }
  const Json* values = reader.member("values");
  if (values == nullptr || !values->is_array() || values->array_items.empty()) {
    return reader.fail(values != nullptr ? values->line : json.line, "values",
                       "required non-empty array");
  }
  const bool expect_names = out->param == "defection";
  for (const Json& item : values->array_items) {
    if (expect_names) {
      adversary::DefectionPoint ignored;
      if (!item.is_string() || !parse_defection(item.string_value, &ignored)) {
        return reader.fail(item.line, "values",
                           "defection values must be INTRO | REMAINING | NONE strings");
      }
      out->names.push_back(item.string_value);
    } else {
      if (!item.is_number()) {
        return reader.fail(item.line, "values", "expected numbers");
      }
      const std::string constraint = check_axis_value(out->param, item.number_value);
      if (!constraint.empty()) {
        return reader.fail(item.line, "values", constraint);
      }
      out->values.push_back(item.number_value);
    }
  }
  if (out->label.empty() && !out->categorical()) {
    // Numeric axes need a prefix to tell "d30" from "c30"; categorical
    // value names are self-describing.
    out->label = out->param.substr(0, 1);
  }
  return reader.finish();
}

std::string format_axis_value(const SweepAxis& axis, size_t index) {
  if (axis.categorical()) {
    return axis.names[index];
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", axis.values[index]);
  return buf;
}

// Applies one axis value onto a cell config. Parse-time validation already
// guaranteed the param/phase are legal. Tournament strategy axes resolve
// their names against the spec's strategy tables.
void apply_axis_value(const Spec& spec, const SweepAxis& axis, size_t index,
                      experiment::ScenarioConfig* config) {
  if (axis.categorical()) {
    if (axis.param == "adversary_strategy") {
      // Shared knobs from the adversary_policy section; the rule table is
      // the strategy's.
      config->adversary_policy = spec.adversary_policy;
      config->adversary_policy.policies = spec.adversary_strategies[index].policies;
      return;
    }
    if (axis.param == "operator_strategy") {
      config->operators = spec.operator_strategies[index].operators;
      return;
    }
    // defection
    adversary::DefectionPoint point = adversary::DefectionPoint::kNone;
    parse_defection(axis.names[index], &point);
    config->adversary.pipeline[axis.phase].defection = point;
    return;
  }
  const double v = axis.values[index];
  if (is_phase_axis(axis.param)) {
    adversary::AdversaryPhase& phase = config->adversary.pipeline[axis.phase];
    if (axis.param == "attack_days") {
      phase.cadence.attack_duration = sim::SimTime::days(v);
    } else if (axis.param == "recuperation_days") {
      phase.cadence.recuperation = sim::SimTime::days(v);
    } else if (axis.param == "coverage_percent") {
      phase.cadence.coverage = v / 100.0;
    } else if (axis.param == "start_days") {
      phase.start = sim::SimTime::days(v);
    } else if (axis.param == "stop_days") {
      phase.stop = sim::SimTime::days(v);
    } else if (axis.param == "minion_count") {
      phase.minion_count = static_cast<uint32_t>(v);
    }
    return;
  }
  if (axis.param == "churn_leave_rate") {
    config->churn.leave_rate_per_peer_year = v;
  } else if (axis.param == "churn_crash_rate") {
    config->churn.crash_rate_per_peer_year = v;
  } else if (axis.param == "churn_mean_downtime_days") {
    config->churn.mean_downtime_days = v;
  } else if (axis.param == "churn_arrival_rate") {
    config->churn.arrival_rate_per_year = v;
  } else if (axis.param == "regional_outage_rate") {
    config->churn.regional_outage_rate_per_year = v;
  } else if (axis.param == "detection_latency_days") {
    config->operators.detection_latency = sim::SimTime::days(v);
  } else if (axis.param == "loss_rate") {
    config->faults.loss_rate = v;
  } else if (axis.param == "dup_rate") {
    config->faults.dup_rate = v;
  } else if (axis.param == "jitter_ms") {
    config->faults.jitter = sim::SimTime::seconds(v / 1000.0);
  } else if (axis.param == "burst_outage_rate") {
    config->faults.burst_outage_rate = v;
  } else if (axis.param == "peers") {
    config->peer_count = static_cast<uint32_t>(v);
  } else if (axis.param == "aus") {
    config->au_count = static_cast<uint32_t>(v);
  } else if (axis.param == "au_coverage") {
    config->au_coverage = v;
  } else if (axis.param == "newcomers") {
    config->newcomer_count = static_cast<uint32_t>(v);
  } else if (axis.param == "newcomer_window_days") {
    config->newcomer_join_window = sim::SimTime::days(v);
  } else if (axis.param == "duration_years") {
    config->duration = sim::SimTime::years(v);
  } else if (const ProtocolParam* param = find_protocol_param(axis.param)) {
    param->apply(config->params, v);
  }
}

}  // namespace

std::vector<std::string> axis_params() {
  std::vector<std::string> out;
  for (const char* name : kDeploymentAxes) {
    out.push_back(name);
  }
  for (const char* name : kPhaseAxes) {
    out.push_back(name);
  }
  for (const char* name : kDynamicsAxes) {
    out.push_back(name);
  }
  for (const char* name : kFaultAxes) {
    out.push_back(name);
  }
  for (const ProtocolParam& entry : kProtocolParams) {
    out.push_back(entry.name);
  }
  return out;
}

std::vector<std::string> protocol_params() {
  std::vector<std::string> out;
  for (const ProtocolParam& entry : kProtocolParams) {
    out.push_back(entry.name);
  }
  return out;
}

bool spec_is_dynamic(const Spec& spec) {
  if (spec.churn.enabled() || spec.operators.enabled()) {
    return true;
  }
  for (const SweepAxis& axis : spec.axes) {
    if (is_dynamics_axis(axis.param)) {
      return true;
    }
  }
  // A tournament's operator strategies enable the operator engine per cell.
  for (const Spec::OperatorStrategy& strategy : spec.operator_strategies) {
    if (strategy.operators.enabled()) {
      return true;
    }
  }
  return false;
}

bool spec_has_faults(const Spec& spec) {
  if (spec.faults.enabled()) {
    return true;
  }
  for (const SweepAxis& axis : spec.axes) {
    if (is_fault_axis(axis.param)) {
      return true;
    }
  }
  return false;
}

bool spec_has_trace(const Spec& spec) { return spec.obs_trace.enabled; }

bool spec_has_policies(const Spec& spec) {
  return spec.adversary_policy.enabled() || spec.tournament;
}

bool parse_spec(const Json& json, const std::string& source_path, Spec* out,
                std::string* error) {
  *out = Spec{};
  out->source_path = source_path;
  ObjectReader reader(json, source_path, "", error);
  if (!reader.expect_object()) {
    return false;
  }
  if (!reader.string("name", &out->name) || !reader.string("description", &out->description)) {
    return false;
  }
  if (out->name.empty()) {
    return reader.fail(json.line, "name", "required");
  }
  if (out->name.find('/') != std::string::npos || out->name.find(' ') != std::string::npos) {
    return reader.fail(json.find("name")->line, "name",
                       "must not contain '/' or spaces (used in output file names)");
  }

  // deployment
  if (const Json* deployment = reader.member("deployment")) {
    ObjectReader d(*deployment, source_path, "deployment", error);
    double duration_years = out->duration.to_days() / 365.0;
    double newcomer_window_days = out->newcomer_join_window.to_days();
    if (!d.expect_object() || !d.unsigned_int("peers", &out->peers) ||
        !d.unsigned_int("aus", &out->aus) || !d.number("au_coverage", &out->au_coverage) ||
        !d.unsigned_int("newcomers", &out->newcomers) ||
        !d.number("newcomer_window_days", &newcomer_window_days) ||
        !d.number("duration_years", &duration_years) ||
        !d.unsigned_int64("seed", &out->seed) || !d.unsigned_int("seeds", &out->seeds) ||
        !d.unsigned_int("layers", &out->layers) || !d.finish()) {
      return false;
    }
    out->duration = sim::SimTime::years(duration_years);
    out->newcomer_join_window = sim::SimTime::days(newcomer_window_days);
    if (out->peers == 0) {
      return d.fail(deployment->line, "peers", "must be >= 1");
    }
    if (out->aus == 0) {
      return d.fail(deployment->line, "aus", "must be >= 1");
    }
    if (out->seeds == 0) {
      return d.fail(deployment->line, "seeds", "must be >= 1");
    }
    if (out->duration <= sim::SimTime::zero()) {
      return d.fail(deployment->line, "duration_years", "must be positive");
    }
    if (out->au_coverage <= 0.0 || out->au_coverage > 1.0) {
      return d.fail(deployment->line, "au_coverage", "must be within (0, 1]");
    }
  }

  // damage
  if (const Json* damage = reader.member("damage")) {
    ObjectReader d(*damage, source_path, "damage", error);
    if (!d.expect_object() || !d.boolean("enabled", &out->enable_damage) ||
        !d.number("mean_disk_years_between_failures", &out->damage_mtbf_disk_years) ||
        !d.number("aus_per_disk", &out->damage_aus_per_disk) || !d.finish()) {
      return false;
    }
    if (out->damage_mtbf_disk_years <= 0.0 || out->damage_aus_per_disk <= 0.0) {
      return d.fail(damage->line, "mean_disk_years_between_failures", "must be positive");
    }
  }

  // deployment dynamics
  if (const Json* dyn = reader.member("dynamics")) {
    ObjectReader d(*dyn, source_path, "dynamics", error);
    if (!d.expect_object() ||
        !d.number("leave_rate_per_peer_year", &out->churn.leave_rate_per_peer_year) ||
        !d.number("crash_rate_per_peer_year", &out->churn.crash_rate_per_peer_year) ||
        !d.number("mean_downtime_days", &out->churn.mean_downtime_days) ||
        !d.number("arrival_rate_per_year", &out->churn.arrival_rate_per_year) ||
        !d.unsigned_int("regions", &out->churn.regions) ||
        !d.number("regional_outage_rate_per_year",
                  &out->churn.regional_outage_rate_per_year) ||
        !d.number("regional_outage_days", &out->churn.regional_outage_days) ||
        !d.number("regional_recovery_stagger_hours",
                  &out->churn.regional_recovery_stagger_hours) ||
        !d.boolean("regional_state_loss", &out->churn.regional_state_loss) || !d.finish()) {
      return false;
    }
    if (out->churn.leave_rate_per_peer_year < 0.0) {
      return d.fail(dyn->line, "leave_rate_per_peer_year", "must be non-negative");
    }
    if (out->churn.crash_rate_per_peer_year < 0.0) {
      return d.fail(dyn->line, "crash_rate_per_peer_year", "must be non-negative");
    }
    if (out->churn.arrival_rate_per_year < 0.0) {
      return d.fail(dyn->line, "arrival_rate_per_year", "must be non-negative");
    }
    if (out->churn.mean_downtime_days <= 0.0) {
      return d.fail(dyn->line, "mean_downtime_days", "must be positive");
    }
    if (out->churn.regional_outage_rate_per_year < 0.0) {
      return d.fail(dyn->line, "regional_outage_rate_per_year", "must be non-negative");
    }
    if (out->churn.regional_outage_days <= 0.0) {
      return d.fail(dyn->line, "regional_outage_days", "must be positive");
    }
    if (out->churn.regional_recovery_stagger_hours < 0.0) {
      return d.fail(dyn->line, "regional_recovery_stagger_hours", "must be non-negative");
    }
    if (out->churn.regional_outage_rate_per_year > 0.0 && out->churn.regions == 0) {
      return d.fail(dyn->line, "regions",
                    "required (>= 1) when regional_outage_rate_per_year is set");
    }
  }

  // operator response
  if (const Json* operators = reader.member("operators")) {
    ObjectReader o(*operators, source_path, "operators", error);
    double detection_latency_days = out->operators.detection_latency.to_days();
    if (!o.expect_object() || !o.number("detection_latency_days", &detection_latency_days) ||
        !o.number("recrawl_cost_factor", &out->operators.recrawl_cost_factor)) {
      return false;
    }
    if (detection_latency_days < 0.0) {
      return o.fail(operators->line, "detection_latency_days", "must be non-negative");
    }
    if (out->operators.recrawl_cost_factor <= 0.0) {
      return o.fail(operators->line, "recrawl_cost_factor", "must be positive");
    }
    out->operators.detection_latency = sim::SimTime::days(detection_latency_days);
    const Json* policies = o.member("policies");
    if (policies == nullptr || !policies->is_array() || policies->array_items.empty()) {
      return o.fail(policies != nullptr ? policies->line : operators->line, "policies",
                    "required non-empty array of { trigger, action } objects");
    }
    for (size_t i = 0; i < policies->array_items.size(); ++i) {
      const std::string prefix = "operators.policies[" + std::to_string(i) + "]";
      dynamics::OperatorPolicy policy;
      if (!parse_operator_policy_entry(policies->array_items[i], source_path, prefix, &policy,
                                       error)) {
        return false;
      }
      out->operators.policies.push_back(policy);
    }
    if (!o.finish()) {
      return false;
    }
  }

  // network topology
  if (const Json* network = reader.member("network")) {
    ObjectReader n(*network, source_path, "network", error);
    double min_latency_ms = out->network.min_latency.to_seconds() * 1000.0;
    double max_latency_ms = out->network.max_latency.to_seconds() * 1000.0;
    if (!n.expect_object() || !n.number("min_latency_ms", &min_latency_ms) ||
        !n.number("max_latency_ms", &max_latency_ms) || !n.finish()) {
      return false;
    }
    if (min_latency_ms < 0.0) {
      return n.fail(network->line, "min_latency_ms", "must be non-negative");
    }
    if (max_latency_ms < min_latency_ms) {
      return n.fail(network->line, "max_latency_ms", "must be >= min_latency_ms");
    }
    out->network.min_latency = sim::SimTime::seconds(min_latency_ms / 1000.0);
    out->network.max_latency = sim::SimTime::seconds(max_latency_ms / 1000.0);
  }

  // unreliable-link faults (docs/faults.md)
  if (const Json* faults = reader.member("network_faults")) {
    ObjectReader f(*faults, source_path, "network_faults", error);
    out->faults_section = true;
    double jitter_ms = 0.0;
    double burst_cycle_days = out->faults.burst_cycle.to_days();
    if (!f.expect_object() || !f.number("loss_rate", &out->faults.loss_rate) ||
        !f.number("dup_rate", &out->faults.dup_rate) || !f.number("jitter_ms", &jitter_ms) ||
        !f.number("burst_outage_rate", &out->faults.burst_outage_rate) ||
        !f.number("burst_cycle_days", &burst_cycle_days) || !f.finish()) {
      return false;
    }
    if (out->faults.loss_rate < 0.0 || out->faults.loss_rate > 1.0) {
      return f.fail(faults->line, "loss_rate", "must be within [0, 1]");
    }
    if (out->faults.dup_rate < 0.0 || out->faults.dup_rate > 1.0) {
      return f.fail(faults->line, "dup_rate", "must be within [0, 1]");
    }
    if (out->faults.burst_outage_rate < 0.0 || out->faults.burst_outage_rate > 1.0) {
      return f.fail(faults->line, "burst_outage_rate", "must be within [0, 1]");
    }
    if (jitter_ms < 0.0) {
      return f.fail(faults->line, "jitter_ms", "must be non-negative");
    }
    if (jitter_ms > 0.0 && out->network.min_latency <= sim::SimTime::zero()) {
      // Jitter rides on top of the propagation latency; with a zero
      // minimum there is no delay floor for the sharded lookahead contract
      // to stand on (docs/faults.md).
      return f.fail(faults->line, "jitter_ms",
                    "jitter needs network.min_latency_ms > 0 (zero-latency networks have no "
                    "delay floor for delivery jitter to ride on)");
    }
    if (burst_cycle_days <= 0.0) {
      return f.fail(faults->line, "burst_cycle_days", "must be positive");
    }
    out->faults.jitter = sim::SimTime::seconds(jitter_ms / 1000.0);
    out->faults.burst_cycle = sim::SimTime::days(burst_cycle_days);
  }

  // observability: protocol event tracing + self-profiling
  // (docs/observability.md)
  if (const Json* observability = reader.member("observability")) {
    ObjectReader o(*observability, source_path, "observability", error);
    uint64_t ring_capacity = 0;
    if (!o.expect_object() || !o.boolean("trace", &out->obs_trace.enabled) ||
        !o.number("sample_rate", &out->obs_trace.sample_rate) ||
        !o.unsigned_int64("ring_capacity", &ring_capacity) ||
        !o.boolean("profile", &out->obs_profile)) {
      return false;
    }
    if (out->obs_trace.sample_rate < 0.0 || out->obs_trace.sample_rate > 1.0) {
      return o.fail(observability->line, "sample_rate", "must be within [0, 1]");
    }
    out->obs_trace.ring_capacity = static_cast<size_t>(ring_capacity);
    if (const Json* kinds = o.member("kinds")) {
      if (!kinds->is_array()) {
        return o.fail(kinds->line, "kinds",
                      "expected an array of event-group names "
                      "(poll | voter | churn | operator | fault | adversary)");
      }
      uint32_t mask = 0;
      for (const Json& item : kinds->array_items) {
        if (!item.is_string()) {
          return o.fail(item.line, "kinds", "expected strings");
        }
        if (item.string_value == "poll") {
          mask |= obs::kMaskPoll;
        } else if (item.string_value == "voter") {
          mask |= obs::kMaskVoter;
        } else if (item.string_value == "churn") {
          mask |= obs::kMaskChurn;
        } else if (item.string_value == "operator") {
          mask |= obs::kMaskOperator;
        } else if (item.string_value == "fault") {
          mask |= obs::kMaskFault;
        } else if (item.string_value == "adversary") {
          mask |= obs::kMaskAdversary;
        } else {
          return o.fail(item.line, "kinds",
                        "unknown event group '" + item.string_value +
                            "' (expected poll | voter | churn | operator | fault | "
                            "adversary)");
        }
      }
      out->obs_trace.kind_mask = mask;
    }
    if (!o.finish()) {
      return false;
    }
    // Trace artifacts are one-file-per-unit snapshots of a single run; a
    // seed-replicated or layered unit aggregates several runs and has no
    // single trace to write.
    if (out->obs_trace.enabled && out->seeds > 1) {
      return o.fail(observability->line, "trace",
                    "tracing requires deployment.seeds == 1 (one trace file per unit)");
    }
    if (out->obs_trace.enabled && out->layers > 0) {
      return o.fail(observability->line, "trace",
                    "tracing is not supported with deployment.layers (layered units "
                    "aggregate several runs)");
    }
  }

  // protocol overrides
  if (const Json* protocol = reader.member("protocol")) {
    ObjectReader p(*protocol, source_path, "protocol", error);
    if (!p.expect_object()) {
      return false;
    }
    for (const auto& [name, value] : protocol->object_members) {
      if (find_protocol_param(name) == nullptr) {
        std::string known;
        for (const std::string& k : protocol_params()) {
          known += (known.empty() ? "" : ", ") + k;
        }
        return p.fail(value.line, name,
                      "unknown protocol parameter (known: " + known + ")");
      }
      double v = 0.0;
      if (value.is_bool()) {
        v = value.bool_value ? 1.0 : 0.0;
      } else if (value.is_number()) {
        v = value.number_value;
      } else {
        return p.fail(value.line, name, "expected a number or bool");
      }
      out->protocol_overrides.emplace_back(name, v);
    }
  }

  double trace_days = 0.0;
  if (!reader.number("trace_days", &trace_days)) {
    return false;
  }
  out->trace_interval = sim::SimTime::days(trace_days);

  // adversary pipeline
  if (const Json* adversary_json = reader.member("adversary")) {
    if (!adversary_json->is_array()) {
      return reader.fail(adversary_json->line, "adversary",
                         "expected an array of phase objects");
    }
    for (size_t i = 0; i < adversary_json->array_items.size(); ++i) {
      adversary::AdversaryPhase phase;
      if (!parse_phase(adversary_json->array_items[i], source_path, i, &phase, error)) {
        return false;
      }
      out->pipeline.push_back(phase);
    }
    const std::string pipeline_error =
        adversary::validate_pipeline(out->pipeline, out->peers + out->newcomers);
    if (!pipeline_error.empty()) {
      return reader.fail(adversary_json->line, "adversary", pipeline_error);
    }
  }

  // adaptive adversary policies (docs/adversaries.md). The non-empty-table
  // and pipeline-shape checks run after the tournament section below: a
  // tournament spec may use this section for knobs only.
  const Json* adversary_policy_json = reader.member("adversary_policy");
  if (adversary_policy_json != nullptr) {
    ObjectReader a(*adversary_policy_json, source_path, "adversary_policy", error);
    adversary::AdversaryPolicyConfig& pol = out->adversary_policy;
    double reaction_latency_hours = pol.reaction_latency.to_seconds() / 3600.0;
    double sensor_interval_days = pol.sensor_interval.to_days();
    double cooldown_days = pol.cooldown.to_days();
    double dormant_mean_days = pol.dormant_mean.to_days();
    double throttle_pause_days = pol.throttle_pause.to_days();
    if (!a.expect_object() ||
        !a.number("reaction_latency_hours", &reaction_latency_hours) ||
        !a.number("sensor_interval_days", &sensor_interval_days) ||
        !a.number("cooldown_days", &cooldown_days) ||
        !a.number("outage_threshold", &pol.outage_threshold) ||
        !a.number("backoff_threshold", &pol.backoff_threshold) ||
        !a.number("collapse_threshold", &pol.collapse_threshold) ||
        !a.number("dormant_mean_days", &dormant_mean_days) ||
        !a.number("throttle_pause_days", &throttle_pause_days)) {
      return false;
    }
    pol.reaction_latency = sim::SimTime::hours(reaction_latency_hours);
    pol.sensor_interval = sim::SimTime::days(sensor_interval_days);
    pol.cooldown = sim::SimTime::days(cooldown_days);
    pol.dormant_mean = sim::SimTime::days(dormant_mean_days);
    pol.throttle_pause = sim::SimTime::days(throttle_pause_days);
    if (const Json* policies = a.member("policies")) {
      if (!policies->is_array()) {
        return a.fail(policies->line, "policies",
                      "expected an array of { trigger, action } objects");
      }
      for (size_t i = 0; i < policies->array_items.size(); ++i) {
        const std::string prefix = "adversary_policy.policies[" + std::to_string(i) + "]";
        adversary::AdversaryPolicy rule;
        if (!parse_adversary_policy_rule(policies->array_items[i], source_path, prefix, &rule,
                                         error)) {
          return false;
        }
        out->adversary_policy.policies.push_back(rule);
      }
    }
    if (!a.finish()) {
      return false;
    }
  }

  // sweep axes
  if (const Json* sweep = reader.member("sweep")) {
    if (!sweep->is_array()) {
      return reader.fail(sweep->line, "sweep", "expected an array of axis objects");
    }
    for (size_t i = 0; i < sweep->array_items.size(); ++i) {
      SweepAxis axis;
      if (!parse_axis(sweep->array_items[i], source_path, i, out->pipeline, &axis, error)) {
        return false;
      }
      out->axes.push_back(std::move(axis));
    }
    // Dynamics axes only mean something with their section in place: a
    // detection-latency sweep with no operator policies (or a regional
    // outage-rate sweep with no regions) would silently run the same
    // scenario in every cell.
    for (size_t i = 0; i < out->axes.size(); ++i) {
      const SweepAxis& axis = out->axes[i];
      const auto axis_fail = [&](const std::string& reason) {
        *error = source_path + ":" + std::to_string(axis.line) + ": sweep[" +
                 std::to_string(i) + "].param: " + reason;
        return false;
      };
      if (is_fault_axis(axis.param) && !out->faults_section) {
        return axis_fail("'" + axis.param +
                         "' sweeps need a network_faults section (even an all-zero one) so "
                         "the campaign states its fault model explicitly");
      }
      if (axis.param == "jitter_ms" && out->network.min_latency <= sim::SimTime::zero()) {
        return axis_fail(
            "'jitter_ms' sweeps need network.min_latency_ms > 0 (zero-latency networks have "
            "no delay floor for delivery jitter to ride on)");
      }
      if (axis.param == "detection_latency_days" && out->operators.policies.empty()) {
        return axis_fail(
            "'detection_latency_days' sweeps need an operators section with at least one "
            "policy");
      }
      if (axis.param == "regional_outage_rate" && out->churn.regions == 0) {
        return axis_fail("'regional_outage_rate' sweeps need dynamics.regions >= 1");
      }
      if (axis.param == "churn_mean_downtime_days" && !out->churn.session_churn()) {
        // Downtime is inert without session churn; allow the sweep only if
        // a sibling axis switches churn on per cell.
        bool churn_swept = false;
        for (const SweepAxis& other : out->axes) {
          churn_swept = churn_swept || other.param == "churn_leave_rate" ||
                        other.param == "churn_crash_rate";
        }
        if (!churn_swept) {
          return axis_fail(
              "'churn_mean_downtime_days' sweeps need session churn: set "
              "dynamics.leave_rate_per_peer_year / crash_rate_per_peer_year or sweep them");
        }
      }
    }
  }

  // tournament (docs/adversaries.md): adversary strategies × operator
  // strategies as two categorical axes appended to the sweep grid.
  if (const Json* tournament = reader.member("tournament")) {
    ObjectReader t(*tournament, source_path, "tournament", error);
    if (!t.expect_object()) {
      return false;
    }
    out->tournament = true;
    if (!out->axes.empty()) {
      return t.fail(tournament->line, "tournament",
                    "tournament campaigns cross their strategy axes exclusively; remove the "
                    "sweep section");
    }
    if (!t.string("payoff", &out->payoff_name)) {
      return false;
    }
    const Json* adv = t.member("adversary_strategies");
    if (adv == nullptr || !adv->is_array() || adv->array_items.empty()) {
      return t.fail(adv != nullptr ? adv->line : tournament->line, "adversary_strategies",
                    "required non-empty array of { name, policies } objects");
    }
    const Json* ops = t.member("operator_strategies");
    if (ops == nullptr || !ops->is_array() || ops->array_items.empty()) {
      return t.fail(ops != nullptr ? ops->line : tournament->line, "operator_strategies",
                    "required non-empty array of { name, policies } objects");
    }
    for (size_t i = 0; i < adv->array_items.size(); ++i) {
      const Json& entry = adv->array_items[i];
      const std::string prefix = "tournament.adversary_strategies[" + std::to_string(i) + "]";
      ObjectReader s(entry, source_path, prefix, error);
      Spec::AdversaryStrategy strategy;
      strategy.line = entry.line;
      if (!s.expect_object() || !s.string("name", &strategy.name)) {
        return false;
      }
      const std::string name_error = check_strategy_name(strategy.name);
      if (!name_error.empty()) {
        const Json* m = entry.find("name");
        return s.fail(m != nullptr ? m->line : entry.line, "name", name_error);
      }
      if (const Json* policies = s.member("policies")) {
        if (!policies->is_array()) {
          return s.fail(policies->line, "policies",
                        "expected an array of { trigger, action } objects (empty = the "
                        "static, non-adaptive adversary)");
        }
        for (size_t j = 0; j < policies->array_items.size(); ++j) {
          adversary::AdversaryPolicy rule;
          if (!parse_adversary_policy_rule(policies->array_items[j], source_path,
                                           prefix + ".policies[" + std::to_string(j) + "]",
                                           &rule, error)) {
            return false;
          }
          strategy.policies.push_back(rule);
        }
      }
      if (!s.finish()) {
        return false;
      }
      if (!strategy.policies.empty()) {
        // Shape-check against the pipeline with the section knobs the cell
        // will actually run under.
        adversary::AdversaryPolicyConfig probe = out->adversary_policy;
        probe.policies = strategy.policies;
        const std::string policy_error =
            adversary::validate_policies(probe, out->pipeline.size());
        if (!policy_error.empty()) {
          return t.fail(entry.line, "adversary_strategies[" + std::to_string(i) + "]",
                        policy_error);
        }
      }
      for (const Spec::AdversaryStrategy& prior : out->adversary_strategies) {
        if (prior.name == strategy.name) {
          return t.fail(entry.line, "adversary_strategies[" + std::to_string(i) + "].name",
                        "duplicate strategy name '" + strategy.name + "'");
        }
      }
      out->adversary_strategies.push_back(std::move(strategy));
    }
    for (size_t i = 0; i < ops->array_items.size(); ++i) {
      const Json& entry = ops->array_items[i];
      const std::string prefix = "tournament.operator_strategies[" + std::to_string(i) + "]";
      ObjectReader s(entry, source_path, prefix, error);
      Spec::OperatorStrategy strategy;
      strategy.line = entry.line;
      double detection_latency_days = strategy.operators.detection_latency.to_days();
      if (!s.expect_object() || !s.string("name", &strategy.name) ||
          !s.number("detection_latency_days", &detection_latency_days) ||
          !s.number("recrawl_cost_factor", &strategy.operators.recrawl_cost_factor)) {
        return false;
      }
      const std::string name_error = check_strategy_name(strategy.name);
      if (!name_error.empty()) {
        const Json* m = entry.find("name");
        return s.fail(m != nullptr ? m->line : entry.line, "name", name_error);
      }
      if (detection_latency_days < 0.0) {
        return s.fail(entry.line, "detection_latency_days", "must be non-negative");
      }
      if (strategy.operators.recrawl_cost_factor <= 0.0) {
        return s.fail(entry.line, "recrawl_cost_factor", "must be positive");
      }
      strategy.operators.detection_latency = sim::SimTime::days(detection_latency_days);
      if (const Json* policies = s.member("policies")) {
        if (!policies->is_array()) {
          return s.fail(policies->line, "policies",
                        "expected an array of { trigger, action } objects (empty = "
                        "hands-off operators)");
        }
        for (size_t j = 0; j < policies->array_items.size(); ++j) {
          dynamics::OperatorPolicy policy;
          if (!parse_operator_policy_entry(policies->array_items[j], source_path,
                                           prefix + ".policies[" + std::to_string(j) + "]",
                                           &policy, error)) {
            return false;
          }
          strategy.operators.policies.push_back(policy);
        }
      }
      if (!s.finish()) {
        return false;
      }
      for (const Spec::OperatorStrategy& prior : out->operator_strategies) {
        if (prior.name == strategy.name) {
          return t.fail(entry.line, "operator_strategies[" + std::to_string(i) + "].name",
                        "duplicate strategy name '" + strategy.name + "'");
        }
      }
      out->operator_strategies.push_back(std::move(strategy));
    }
    if (!t.finish()) {
      return false;
    }
    // The two strategy axes, adversary outermost — the payoff matrix's
    // row-major order. Categorical names are self-describing (no label
    // prefix), matching the defection axis convention.
    SweepAxis adversary_axis;
    adversary_axis.param = "adversary_strategy";
    adversary_axis.line = tournament->line;
    for (const Spec::AdversaryStrategy& strategy : out->adversary_strategies) {
      adversary_axis.names.push_back(strategy.name);
    }
    SweepAxis operator_axis;
    operator_axis.param = "operator_strategy";
    operator_axis.line = tournament->line;
    for (const Spec::OperatorStrategy& strategy : out->operator_strategies) {
      operator_axis.names.push_back(strategy.name);
    }
    out->axes.push_back(std::move(adversary_axis));
    out->axes.push_back(std::move(operator_axis));
  }
  if (out->payoff_name.empty()) {
    out->payoff_name = out->name + ".payoff.csv";
  }

  // Deferred adversary_policy cross-checks (they need the tournament and
  // pipeline context from above).
  if (adversary_policy_json != nullptr && out->adversary_policy.policies.empty() &&
      !out->tournament) {
    *error = source_path + ":" + std::to_string(adversary_policy_json->line) +
             ": adversary_policy.policies: required non-empty array of { trigger, action } "
             "objects (knob-only sections are only meaningful with a tournament)";
    return false;
  }
  if (!out->adversary_policy.policies.empty()) {
    const std::string policy_error =
        adversary::validate_policies(out->adversary_policy, out->pipeline.size());
    if (!policy_error.empty()) {
      *error = source_path + ":" + std::to_string(adversary_policy_json->line) +
               ": adversary_policy: " + policy_error;
      return false;
    }
  }

  if (!reader.boolean("baseline", &out->baseline)) {
    return false;
  }

  // outputs
  out->manifest_name = out->name + ".manifest.json";
  out->cells_name = out->name + ".cells.csv";
  if (const Json* outputs = reader.member("outputs")) {
    ObjectReader o(*outputs, source_path, "outputs", error);
    if (!o.expect_object() || !o.string("manifest", &out->manifest_name) ||
        !o.string("cells", &out->cells_name)) {
      return false;
    }
    if (const Json* figure = o.member("figure")) {
      ObjectReader f(*figure, source_path, "outputs.figure", error);
      out->figure.enabled = true;
      if (!f.expect_object() || !f.string("metric", &out->figure.metric) ||
          !f.string("row_header", &out->figure.row_header) ||
          !f.string("title", &out->figure.title) || !f.string("x_label", &out->figure.x_label) ||
          !f.boolean("log_x", &out->figure.log_x) || !f.boolean("log_y", &out->figure.log_y) ||
          !f.string("csv", &out->figure.csv) || !f.finish()) {
        return false;
      }
      if (out->figure.metric != "access_failure" && out->figure.metric != "delay_ratio" &&
          out->figure.metric != "friction") {
        return f.fail(figure->line, "metric",
                      "unknown metric '" + out->figure.metric +
                          "' (expected access_failure | delay_ratio | friction)");
      }
      if (out->figure.csv.empty()) {
        return f.fail(figure->line, "csv", "required");
      }
      if (out->figure.row_header.empty()) {
        return f.fail(figure->line, "row_header", "required");
      }
      if (out->axes.size() != 2) {
        return f.fail(figure->line, "figure",
                      "figure outputs need exactly 2 sweep axes (rows, columns); this "
                      "campaign has " +
                          std::to_string(out->axes.size()));
      }
      if (out->axes[0].categorical() || out->axes[1].categorical()) {
        return f.fail(figure->line, "figure", "figure axes must be numeric");
      }
      if (!out->baseline) {
        return f.fail(figure->line, "figure",
                      "figure metrics are relative to the baseline; set baseline: true");
      }
    }
    if (!o.finish()) {
      return false;
    }
  }

  return reader.finish();
}

bool load_spec_file(const std::string& path, Spec* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    *error = path + ": cannot open";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  Json json;
  std::string json_error;
  if (!parse_json(buffer.str(), &json, &json_error)) {
    *error = path + ": " + json_error;
    return false;
  }
  return parse_spec(json, path, out, error);
}

bool compile_campaign(const Spec& spec, CompiledCampaign* out, std::string* error) {
  out->spec = spec;
  out->cells.clear();

  experiment::ScenarioConfig base;
  base.peer_count = spec.peers;
  base.au_count = spec.aus;
  base.au_coverage = spec.au_coverage;
  base.newcomer_count = spec.newcomers;
  base.newcomer_join_window = spec.newcomer_join_window;
  base.duration = spec.duration;
  base.seed = spec.seed;
  base.enable_damage = spec.enable_damage;
  base.damage.mean_disk_years_between_failures = spec.damage_mtbf_disk_years;
  base.damage.aus_per_disk = spec.damage_aus_per_disk;
  base.trace_interval = spec.trace_interval;
  // Dynamics are deployment properties, like newcomers: the adversary-free
  // baseline churns exactly as the attack cells do — and so is the
  // network, faults included (a lossy campaign's baseline is lossy too).
  base.churn = spec.churn;
  base.operators = spec.operators;
  base.adversary_policy = spec.adversary_policy;
  base.network = spec.network;
  base.faults = spec.faults;
  base.obs_trace = spec.obs_trace;
  base.obs_profile = spec.obs_profile;
  for (const auto& [name, value] : spec.protocol_overrides) {
    // parse_spec vets override names, but a hand-built Spec may not have
    // gone through it; diagnose instead of dereferencing null.
    const ProtocolParam* param = find_protocol_param(name);
    if (param == nullptr) {
      *error = spec.source_path + ": unknown protocol override '" + name + "'";
      return false;
    }
    param->apply(base.params, value);
  }
  out->base = base;

  // Row-major cartesian expansion, first axis outermost — the same loop
  // nest order the hard-coded sweep drivers use.
  size_t cell_count = 1;
  for (const SweepAxis& axis : spec.axes) {
    if (axis.size() == 0) {
      *error = spec.source_path + ": sweep axis '" + axis.param + "' has no values";
      return false;
    }
    if (cell_count > 100000 / axis.size()) {
      *error = spec.source_path + ": sweep grid exceeds 100000 cells";
      return false;
    }
    cell_count *= axis.size();
  }
  std::vector<size_t> indices(spec.axes.size(), 0);
  for (size_t cell = 0; cell < cell_count; ++cell) {
    CompiledCell compiled;
    compiled.config = base;
    compiled.config.adversary.pipeline = spec.pipeline;
    std::string label;
    for (size_t a = 0; a < spec.axes.size(); ++a) {
      const SweepAxis& axis = spec.axes[a];
      apply_axis_value(spec, axis, indices[a], &compiled.config);
      compiled.values.push_back(axis.categorical() ? static_cast<double>(indices[a])
                                                   : axis.values[indices[a]]);
      compiled.names.push_back(format_axis_value(axis, indices[a]));
      label += (label.empty() ? "" : "_") + axis.label + compiled.names.back();
    }
    compiled.label = label.empty() ? "cell" : label;
    // Re-validate: an axis can move a phase window or pool into an invalid
    // shape that the static pipeline validation could not see.
    const std::string pipeline_error = adversary::validate_pipeline(
        compiled.config.adversary.pipeline,
        compiled.config.peer_count + compiled.config.newcomer_count);
    if (!pipeline_error.empty()) {
      *error = spec.source_path + ": cell " + compiled.label + ": " + pipeline_error;
      return false;
    }
    if (compiled.config.adversary_policy.enabled()) {
      const std::string policy_error = adversary::validate_policies(
          compiled.config.adversary_policy, compiled.config.adversary.pipeline.size());
      if (!policy_error.empty()) {
        *error = spec.source_path + ": cell " + compiled.label + ": " + policy_error;
        return false;
      }
    }
    out->cells.push_back(std::move(compiled));
    for (size_t a = spec.axes.size(); a-- > 0;) {
      if (++indices[a] < spec.axes[a].size()) {
        break;
      }
      indices[a] = 0;
    }
  }
  return true;
}

}  // namespace lockss::campaign
