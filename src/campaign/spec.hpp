// Declarative campaign specs: data-driven scenario descriptions.
//
// A campaign file (campaigns/*.json) describes a whole experiment the way
// the hard-coded fig/table drivers do in C++: a deployment (peers, AUs,
// coverage, newcomers, duration), protocol/cost/damage overrides, an
// adversary *pipeline* (ordered, windowed, composable phases — see
// adversary/pipeline.hpp), sweep axes expanded into a grid, seed
// replication, §6.3 layering, and trace/output settings. campaign::Spec is
// the validated in-memory form; compile_campaign() lowers it onto
// experiment::ScenarioConfig cells that run through the parallel runner.
//
// Validation errors carry file/line/field context ("fig3.json:14:
// adversary[0].kind: unknown attack module ...") — a campaign author should
// never have to read this source to find a typo.
//
// Schema reference: docs/campaigns.md.
#ifndef LOCKSS_CAMPAIGN_SPEC_HPP_
#define LOCKSS_CAMPAIGN_SPEC_HPP_

#include <string>
#include <vector>

#include "campaign/json.hpp"
#include "experiment/scenario.hpp"

namespace lockss::campaign {

// One sweep dimension. Axes expand to their cartesian product in file
// order, first axis outermost (row-major) — the grid order the hard-coded
// sweep drivers use.
struct SweepAxis {
  // What the axis varies. Phase-level params ("attack_days",
  // "recuperation_days", "coverage_percent", "start_days", "stop_days",
  // "minion_count", "defection") apply to pipeline[phase]; the rest apply
  // deployment- or protocol-wide (see axis_params() / docs/campaigns.md).
  std::string param;
  size_t phase = 0;
  // Short prefix used in cell labels ("d" -> "d30"); defaults to the
  // param's first letter.
  std::string label;
  std::vector<double> values;       // numeric axis ...
  std::vector<std::string> names;   // ... or categorical (e.g. defection)
  int line = 0;

  bool categorical() const { return !names.empty(); }
  size_t size() const { return categorical() ? names.size() : values.size(); }
};

// Optional figure output reproducing the attrition-sweep CSV layout
// byte-for-byte: rows = axis 0, one column per axis-1 value, cells holding
// `metric` relative to the baseline.
struct FigureOutput {
  bool enabled = false;
  std::string metric;      // access_failure | delay_ratio | friction
  std::string row_header;  // first CSV column name, e.g. "duration_days"
  std::string title;
  std::string x_label;
  bool log_x = true;
  bool log_y = true;
  std::string csv;  // output file name (relative to the run's out dir)
};

struct Spec {
  std::string name;
  std::string description;
  std::string source_path;  // where the spec was loaded from (diagnostics)

  // Deployment (defaults = experiment::ScenarioConfig defaults).
  uint32_t peers = 100;
  uint32_t aus = 50;
  double au_coverage = 1.0;
  uint32_t newcomers = 0;
  sim::SimTime newcomer_join_window = sim::SimTime::years(1);
  sim::SimTime duration = sim::SimTime::years(2);
  uint64_t seed = 1;
  uint32_t seeds = 1;   // replication: seed, seed+1, ...
  uint32_t layers = 0;  // §6.3 layering; 0 = single run
  sim::SimTime trace_interval = sim::SimTime::zero();

  // Damage model.
  bool enable_damage = true;
  double damage_mtbf_disk_years = 5.0;
  double damage_aus_per_disk = 50.0;

  // Protocol overrides by name, applied in file order (see
  // protocol_params() for the vocabulary).
  std::vector<std::pair<std::string, double>> protocol_overrides;

  // Deployment dynamics: session churn, regional outages, Poisson arrivals
  // (`dynamics` section) and operator-response policies (`operators`
  // section). Defaults = disabled = the static deployment.
  dynamics::ChurnConfig churn;
  dynamics::OperatorResponseConfig operators;

  // Network topology (`network` section): latency band overrides. The
  // default is the §6.2 model (1–30 ms).
  net::NetworkConfig network;
  // Unreliable-link faults (`network_faults` section; docs/faults.md).
  // Defaults = disabled = the ideal delivery path. `faults_section`
  // records whether the section appeared at all — fault sweep axes are
  // rejected without it, so a sweep can never silently run ideal cells.
  net::FaultConfig faults;
  bool faults_section = false;

  // Observability (`observability` section; docs/observability.md):
  // protocol event tracing (per-unit trace artifacts) and wall-clock
  // self-profiling (wall_ms/peak_rss_kb keys in the manifest). Defaults =
  // both off = byte-identical manifests and goldens.
  obs::TraceConfig obs_trace;
  bool obs_profile = false;

  // The adversary pipeline (empty = undisturbed deployment).
  adversary::AdversaryPipeline pipeline;

  // Adaptive adversary policies (`adversary_policy` section;
  // docs/adversaries.md): deterministic trigger→action rules driving the
  // pipeline. Defaults = disabled = the fixed-schedule adversary, with
  // byte-identical manifests and goldens. In tournament mode the section
  // may carry only the knobs (the rule tables come per strategy).
  adversary::AdversaryPolicyConfig adversary_policy;

  // Tournament mode (`tournament` section; docs/adversaries.md): named
  // adversary-policy strategies crossed against named operator-policy
  // strategies as two categorical axes ("adversary_strategy" outermost,
  // then "operator_strategy", appended to `axes` at parse time), scored
  // into a payoff-matrix CSV next to the manifest. Mutually exclusive
  // with explicit sweep axes.
  struct AdversaryStrategy {
    std::string name;
    // Rule table for this strategy (empty = the static, non-adaptive
    // adversary — a tournament control row). Shared knobs come from the
    // spec's adversary_policy section.
    std::vector<adversary::AdversaryPolicy> policies;
    int line = 0;
  };
  struct OperatorStrategy {
    std::string name;
    // Full per-strategy operator config (empty policies = hands-off
    // operators, a control column).
    dynamics::OperatorResponseConfig operators;
    int line = 0;
  };
  bool tournament = false;
  std::vector<AdversaryStrategy> adversary_strategies;
  std::vector<OperatorStrategy> operator_strategies;
  std::string payoff_name;  // default: <name>.payoff.csv

  std::vector<SweepAxis> axes;

  // Run an adversary-free baseline (same deployment/seeds) and report
  // relative metrics. Required by figure outputs.
  bool baseline = true;

  FigureOutput figure;
  std::string manifest_name;  // default: <name>.manifest.json
  std::string cells_name;     // default: <name>.cells.csv
};

// Parses and validates a spec. Returns false and a "path:line: field:
// reason" diagnostic on any malformed, unknown, or inconsistent input.
bool parse_spec(const Json& json, const std::string& source_path, Spec* out, std::string* error);

// Reads, parses, and validates a campaign file.
bool load_spec_file(const std::string& path, Spec* out, std::string* error);

// --- Compilation ---------------------------------------------------------

struct CompiledCell {
  experiment::ScenarioConfig config;
  std::vector<double> values;       // per axis (categorical: index)
  std::vector<std::string> names;   // per axis, display form
  std::string label;                // "d30_c100"
};

struct CompiledCampaign {
  Spec spec;
  experiment::ScenarioConfig base;   // adversary-free baseline config
  std::vector<CompiledCell> cells;   // row-major over axes
};

// Lowers a validated Spec onto ScenarioConfig cells. Returns false (with a
// diagnostic) on inconsistencies that only surface during expansion.
bool compile_campaign(const Spec& spec, CompiledCampaign* out, std::string* error);

// The sweepable-axis and protocol-override vocabularies (documentation +
// error messages + tests).
std::vector<std::string> axis_params();
std::vector<std::string> protocol_params();

// Whether the campaign runs a dynamic deployment anywhere in its grid:
// the base dynamics/operators sections, or any dynamics sweep axis (a
// sweep can enable churn in cells the base spec leaves static). Gates the
// dynamics keys/columns in the manifest and cells CSV.
bool spec_is_dynamic(const Spec& spec);

// Whether the campaign injects network faults anywhere in its grid: the
// base `network_faults` section, or any fault sweep axis. Gates the fault
// keys/columns in the manifest and cells CSV.
bool spec_has_faults(const Spec& spec);

// Whether the campaign records protocol event traces (per-unit .trace.bin
// artifacts next to the manifest). Gates the trace keys in the manifest.
bool spec_has_trace(const Spec& spec);

// Whether the campaign engages adaptive adversary policies anywhere in its
// grid: a base `adversary_policy` rule table, or a tournament (whose
// strategy axes swap rule tables per cell). Gates the policy keys/columns
// in the manifest and cells CSV, so policy-free campaigns render
// byte-identically to the pre-policy engine.
bool spec_has_policies(const Spec& spec);

}  // namespace lockss::campaign

#endif  // LOCKSS_CAMPAIGN_SPEC_HPP_
