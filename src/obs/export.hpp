// Trace exporters (docs/observability.md): a compact little-endian binary
// format ("LKTR"), a flat CSV, and a Chrome/Perfetto trace.json where each
// poll lifecycle (poll_opened .. poll_concluded, matched by poller + poll id)
// becomes a duration span and every other event an instant.
#ifndef LOCKSS_OBS_EXPORT_HPP_
#define LOCKSS_OBS_EXPORT_HPP_

#include <ostream>
#include <string>
#include <vector>

#include "obs/event_log.hpp"

namespace lockss::obs {

constexpr uint32_t kTraceMagic = 0x52544B4C;  // "LKTR" little-endian
constexpr uint32_t kTraceVersion = 1;

// Binary layout: u32 magic, u32 version, u64 dropped, u64 count, then
// `count` packed records (i64 time_ns, u64 poll, u64 arg, u32 origin,
// u32 other, u32 au, u8 kind, u8 domain). Byte-deterministic for a given
// event sequence, independent of host endianness.
void serialize_trace(const EventTrace& trace, std::string* out);
bool deserialize_trace(const std::string& bytes, EventTrace* out, std::string* error);

bool write_trace_file(const std::string& path, const EventTrace& trace,
                      std::string* error);
bool read_trace_file(const std::string& path, EventTrace* out, std::string* error);

// CSV: header + one row per event, kind spelled out.
void write_csv(std::ostream& out, const std::vector<Event>& events);

// Perfetto/Chrome trace-event JSON ("traceEvents" array, microsecond
// timestamps; tracks are peers, pid 0). Load via ui.perfetto.dev.
void write_perfetto_json(std::ostream& out, const std::vector<Event>& events);

}  // namespace lockss::obs

#endif  // LOCKSS_OBS_EXPORT_HPP_
