// Structured protocol lifecycle events (docs/observability.md).
//
// One Event per protocol-visible transition — poll opened/concluded,
// solicitation traffic, voter admission, churn transitions, operator
// interventions, injected network faults — recorded in *sim time* so an
// enabled trace is a deterministic function of the scenario config,
// bit-identical across shard and worker counts.
//
// This header sits at the bottom of the layering (only <cstdint>): protocol,
// dynamics, net, and experiment all record through it, so it must not pull
// any of them in. Identifiers are therefore raw integers: `origin`/`other`
// are net::NodeId values, `au` is a storage::AuId value, `poll` a
// protocol::PollId.
#ifndef LOCKSS_OBS_EVENT_HPP_
#define LOCKSS_OBS_EVENT_HPP_

#include <cstddef>
#include <cstdint>

namespace lockss::obs {

enum class EventKind : uint8_t {
  // Poller-side lifecycle (origin = poller).
  kPollOpened = 0,          // au, poll
  kInvitationSent,          // other = invitee
  kSolicitationRetry,       // other = invitee
  kAckReceived,             // other = invitee (affirmative PollAck)
  kAckRefused,              // other = invitee (negative PollAck)
  kAckTimeout,              // other = invitee (silence)
  kVoteTimeout,             // other = committed voter that never delivered
  kVoteReceived,            // other = voter
  kOuterCircleStarted,      // arg = outer invitees added
  kRepairRequested,         // other = repair source, arg = block
  kRepairReceived,          // other = repair source, arg = block
  kPollConcluded,           // arg = (outcome kind << 8) | abort reason
  // Voter-side lifecycle (origin = voter).
  kInvitationConsidered,    // other = poller, arg = AdmissionVerdict
  kVoteSent,                // other = poller
  kRepairServed,            // other = poller, arg = block
  kReceiptChecked,          // other = poller, arg = 1 valid / 0 bogus
  // Churn transitions (global actors; origin = affected peer).
  kChurnArrival,
  kChurnLeave,
  kChurnCrash,
  kChurnRecover,            // arg = 1 if the crash took the disks
  // Operator interventions (origin = serviced peer, arg = OperatorAction).
  kOperatorAction,
  // Injected network faults (origin = sender, other = destination).
  kFaultLoss,
  kFaultBurstDrop,
  kFaultDuplicate,
  kFaultJitter,             // arg = extra delivery delay in ns
  // Adaptive adversary policy transitions (global actors; origin = policy
  // rule index for triggers, target phase index for actions).
  kAdversaryPolicyTrigger,  // arg = adversary::PolicyTrigger
  kAdversaryPolicyAction,   // arg = adversary::PolicyAction
  kCount,
};

constexpr size_t kEventKindCount = static_cast<size_t>(EventKind::kCount);
static_assert(kEventKindCount <= 32, "EventKind must fit a 32-bit kind mask");

const char* event_kind_name(EventKind kind);
// Reverse lookup; returns false for unknown names.
bool parse_event_kind(const char* name, EventKind* out);

// Bit masks over EventKind, grouped the way campaign specs and the
// lockss_trace CLI address them.
constexpr uint32_t kind_bit(EventKind kind) { return 1u << static_cast<uint32_t>(kind); }
constexpr uint32_t kMaskAll = (1u << kEventKindCount) - 1;
constexpr uint32_t kMaskPoll =
    (kind_bit(EventKind::kInvitationConsidered) - 1);  // bits 0..11
constexpr uint32_t kMaskVoter =
    kind_bit(EventKind::kInvitationConsidered) | kind_bit(EventKind::kVoteSent) |
    kind_bit(EventKind::kRepairServed) | kind_bit(EventKind::kReceiptChecked);
constexpr uint32_t kMaskChurn =
    kind_bit(EventKind::kChurnArrival) | kind_bit(EventKind::kChurnLeave) |
    kind_bit(EventKind::kChurnCrash) | kind_bit(EventKind::kChurnRecover);
constexpr uint32_t kMaskOperator = kind_bit(EventKind::kOperatorAction);
constexpr uint32_t kMaskFault =
    kind_bit(EventKind::kFaultLoss) | kind_bit(EventKind::kFaultBurstDrop) |
    kind_bit(EventKind::kFaultDuplicate) | kind_bit(EventKind::kFaultJitter);
constexpr uint32_t kMaskAdversary = kind_bit(EventKind::kAdversaryPolicyTrigger) |
                                    kind_bit(EventKind::kAdversaryPolicyAction);

// The canonical trace record. `domain` is a *static* tag of the recording
// actor — 0 for global-context actors (churn, operators, adversary minions),
// 1 for peer-owned streams — never derived from which thread happened to
// execute the record. The canonical trace order is
// (time_ns, domain, origin, per-origin record order); see event_log.hpp for
// why that is shard-count-invariant.
struct Event {
  int64_t time_ns = 0;
  uint64_t poll = 0;    // protocol::PollId, or 0 when not poll-scoped
  uint64_t arg = 0;     // kind-specific payload (see EventKind comments)
  uint32_t origin = 0;  // acting peer / actor NodeId
  uint32_t other = 0;   // counterpart NodeId, or 0
  uint32_t au = kNoAu;  // storage::AuId, or kNoAu when not AU-scoped
  EventKind kind = EventKind::kPollOpened;
  uint8_t domain = 1;

  static constexpr uint32_t kNoAu = 0xFFFFFFFFu;

  friend bool operator==(const Event&, const Event&) = default;
};

}  // namespace lockss::obs

#endif  // LOCKSS_OBS_EVENT_HPP_
