#include "obs/profile.hpp"

#include <cstdio>
#include <cstring>

namespace lockss::obs {
namespace {

uint64_t proc_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  uint64_t kb = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len + 1, " %llu", &value) == 1) {
        kb = value;
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

uint64_t vm_hwm_kb() { return proc_status_kb("VmHWM"); }
uint64_t vm_rss_kb() { return proc_status_kb("VmRSS"); }

}  // namespace lockss::obs
