// Deterministic sim-time event tracing (docs/observability.md).
//
// Architecture mirrors net::EngineShardBus: the EventLog owns one EventSink
// per execution context (shards 0..N-1 plus the global context in the last
// slot; a serial run owns a single sink), so recording never takes a lock
// and never races. Sinks are drained into the master buffer at ShardedEngine
// barriers (shards quiescent) and the master is put into canonical order at
// finalize time.
//
// Canonical order & the determinism contract
// ------------------------------------------
// The raw interleaving of events across peers differs between a serial run
// (one queue) and a sharded run (per-shard queues), so per-sink order alone
// cannot be the trace order. Instead every event carries a static
// (domain, origin) stream tag, and the canonical trace is the stable sort of
// all events by (time_ns, domain, origin). Each stream's events execute in
// exactly one context, in the same relative order at every shard count (a
// shard's execution order is the serial order restricted to that shard;
// global actors run on the global simulator in serial order), so the sorted
// sequence is bit-identical at shards 1/2/4/8 and across worker counts.
// Per-sink sequence numbers are deliberately *not* part of the record: they
// differ across shard counts.
//
// Sampling is a pure hash of (time_ns, origin, kind) — no RNG stream is
// consumed, so enabling a trace never perturbs the simulation.
//
// Ring capacity: 0 means unbounded (the determinism contract holds
// unconditionally). A bounded sink drops the newest events once full within
// a barrier window and counts the drops; with drops the surviving subset can
// depend on the shard count, so determinism tests use unbounded sinks.
#ifndef LOCKSS_OBS_EVENT_LOG_HPP_
#define LOCKSS_OBS_EVENT_LOG_HPP_

#include <cstdint>
#include <vector>

#include "obs/event.hpp"

namespace lockss::obs {

struct TraceConfig {
  bool enabled = false;
  uint32_t kind_mask = kMaskAll;
  double sample_rate = 1.0;    // fraction of mask-passing events kept
  uint64_t ring_capacity = 0;  // per-sink events per barrier window; 0 = unbounded

  friend bool operator==(const TraceConfig&, const TraceConfig&) = default;
};

class EventSink {
 public:
  EventSink() = default;

  void configure(const TraceConfig& config, uint32_t peer_domain_limit) {
    config_ = config;
    peer_domain_limit_ = peer_domain_limit;
  }

  // Hot path: mask check first (an installed-but-inert hook costs one load
  // and a branch), then deterministic sampling, then the capacity gate.
  void record(Event e) {
    if (((config_.kind_mask >> static_cast<uint32_t>(e.kind)) & 1u) == 0) {
      return;
    }
    if (config_.sample_rate < 1.0 && !sampled(e)) {
      return;
    }
    if (config_.ring_capacity != 0 && events_.size() >= config_.ring_capacity) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  // Fault events are recorded by the Network, which knows only the sender
  // id; the static domain tag falls out of the id space (minions live above
  // the shard-owned dense range).
  uint8_t fault_domain(uint32_t sender) const {
    return sender < peer_domain_limit_ ? 1 : 0;
  }

  uint64_t dropped() const { return dropped_; }
  const std::vector<Event>& events() const { return events_; }

 private:
  friend class EventLog;

  bool sampled(const Event& e) const;

  TraceConfig config_;
  uint32_t peer_domain_limit_ = 0;
  std::vector<Event> events_;
  uint64_t dropped_ = 0;
};

// The merged, canonically ordered trace of one run, carried in
// experiment::RunResult. `enabled` distinguishes "tracing off" from "traced
// but nothing matched".
struct EventTrace {
  bool enabled = false;
  uint64_t dropped = 0;
  std::vector<Event> events;

  friend bool operator==(const EventTrace&, const EventTrace&) = default;
};

class EventLog {
 public:
  // `sink_count` = shards + 1 for a sharded run (global context last), or 1
  // for a serial run. `peer_domain_limit` bounds the dense shard-owned
  // NodeId range (peers + newcomers); ids at or above it are global actors.
  EventLog(const TraceConfig& config, size_t sink_count, uint32_t peer_domain_limit);

  EventSink* sink(size_t index) { return &sinks_[index]; }
  EventSink* global_sink() { return &sinks_.back(); }

  // Barrier hook body: append every sink's window onto the master buffer (in
  // sink order — irrelevant for the final order, which is a stable sort by
  // stream) and reset the sinks for the next window. Cheap when idle.
  void drain();

  // Drain any remaining sink contents and return the canonical trace.
  EventTrace finalize();

 private:
  std::vector<EventSink> sinks_;
  std::vector<Event> master_;
  uint64_t dropped_ = 0;
};

// Stable-sorts `events` into canonical (time_ns, domain, origin) order.
// Exposed for exporters and tests.
void canonicalize(std::vector<Event>* events);

}  // namespace lockss::obs

#endif  // LOCKSS_OBS_EVENT_LOG_HPP_
