#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

namespace lockss::obs {
namespace {

void put_u32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

bool get_u32(const std::string& in, size_t* cursor, uint32_t* v) {
  if (in.size() < 4 || *cursor > in.size() - 4) {
    return false;
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(in[*cursor + i])) << (8 * i);
  }
  *cursor += 4;
  *v = out;
  return true;
}

bool get_u64(const std::string& in, size_t* cursor, uint64_t* v) {
  if (in.size() < 8 || *cursor > in.size() - 8) {
    return false;
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(in[*cursor + i])) << (8 * i);
  }
  *cursor += 8;
  *v = out;
  return true;
}

constexpr size_t kRecordBytes = 8 + 8 + 8 + 4 + 4 + 4 + 1 + 1;

}  // namespace

void serialize_trace(const EventTrace& trace, std::string* out) {
  out->reserve(out->size() + 28 + trace.events.size() * kRecordBytes);
  put_u32(out, kTraceMagic);
  put_u32(out, kTraceVersion);
  put_u64(out, trace.dropped);
  put_u64(out, trace.events.size());
  for (const Event& e : trace.events) {
    put_u64(out, static_cast<uint64_t>(e.time_ns));
    put_u64(out, e.poll);
    put_u64(out, e.arg);
    put_u32(out, e.origin);
    put_u32(out, e.other);
    put_u32(out, e.au);
    out->push_back(static_cast<char>(e.kind));
    out->push_back(static_cast<char>(e.domain));
  }
}

bool deserialize_trace(const std::string& bytes, EventTrace* out, std::string* error) {
  *out = EventTrace{};
  out->enabled = true;
  size_t cursor = 0;
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  if (!get_u32(bytes, &cursor, &magic) || magic != kTraceMagic) {
    *error = "not a LOCKSS trace file (bad magic)";
    return false;
  }
  if (!get_u32(bytes, &cursor, &version) || version != kTraceVersion) {
    *error = "unsupported trace version";
    return false;
  }
  if (!get_u64(bytes, &cursor, &out->dropped) || !get_u64(bytes, &cursor, &count) ||
      bytes.size() - cursor < count * kRecordBytes) {
    *error = "truncated trace header";
    return false;
  }
  out->events.resize(count);
  for (Event& e : out->events) {
    uint64_t time_bits = 0;
    if (!get_u64(bytes, &cursor, &time_bits) || !get_u64(bytes, &cursor, &e.poll) ||
        !get_u64(bytes, &cursor, &e.arg) || !get_u32(bytes, &cursor, &e.origin) ||
        !get_u32(bytes, &cursor, &e.other) || !get_u32(bytes, &cursor, &e.au) ||
        bytes.size() - cursor < 2) {
      *error = "truncated trace record";
      return false;
    }
    e.time_ns = static_cast<int64_t>(time_bits);
    const uint8_t kind = static_cast<uint8_t>(bytes[cursor++]);
    if (kind >= kEventKindCount) {
      *error = "unknown event kind in trace";
      return false;
    }
    e.kind = static_cast<EventKind>(kind);
    e.domain = static_cast<uint8_t>(bytes[cursor++]);
  }
  return true;
}

bool write_trace_file(const std::string& path, const EventTrace& trace,
                      std::string* error) {
  std::string bytes;
  serialize_trace(trace, &bytes);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    *error = path + ": cannot open for writing";
    return false;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) {
    *error = path + ": write failed";
    return false;
  }
  return true;
}

bool read_trace_file(const std::string& path, EventTrace* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    *error = path + ": cannot open";
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return deserialize_trace(bytes, out, error);
}

void write_csv(std::ostream& out, const std::vector<Event>& events) {
  out << "time_ns,kind,domain,origin,other,au,poll,arg\n";
  for (const Event& e : events) {
    out << e.time_ns << ',' << event_kind_name(e.kind) << ','
        << static_cast<int>(e.domain) << ',' << e.origin << ',' << e.other << ',';
    if (e.au == Event::kNoAu) {
      out << '-';
    } else {
      out << e.au;
    }
    out << ',' << e.poll << ',' << e.arg << '\n';
  }
}

void write_perfetto_json(std::ostream& out, const std::vector<Event>& events) {
  // Match poll lifecycles into spans keyed by (origin, poll id); everything
  // else becomes a thread-scoped instant on the origin's track.
  std::map<std::pair<uint32_t, uint64_t>, const Event*> open_polls;
  char buf[256];
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const char* json) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << '\n' << json;
  };
  for (const Event& e : events) {
    const double ts_us = static_cast<double>(e.time_ns) / 1000.0;
    if (e.kind == EventKind::kPollOpened) {
      open_polls[{e.origin, e.poll}] = &e;
      continue;
    }
    if (e.kind == EventKind::kPollConcluded) {
      const auto it = open_polls.find({e.origin, e.poll});
      const double start_us =
          it != open_polls.end() ? static_cast<double>(it->second->time_ns) / 1000.0 : ts_us;
      if (it != open_polls.end()) {
        open_polls.erase(it);
      }
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"poll %llu\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                    "\"pid\":0,\"tid\":%u,\"args\":{\"au\":%u,\"outcome\":%llu,"
                    "\"abort\":%llu}}",
                    static_cast<unsigned long long>(e.poll), start_us, ts_us - start_us,
                    e.origin, e.au, static_cast<unsigned long long>(e.arg >> 8),
                    static_cast<unsigned long long>(e.arg & 0xFF));
      emit(buf);
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":0,"
                  "\"tid\":%u,\"args\":{\"other\":%u,\"poll\":%llu,\"arg\":%llu}}",
                  event_kind_name(e.kind), ts_us, e.origin, e.other,
                  static_cast<unsigned long long>(e.poll),
                  static_cast<unsigned long long>(e.arg));
    emit(buf);
  }
  // Polls still open at run end render as zero-length spans so they stay
  // visible rather than vanishing.
  for (const auto& [key, opened] : open_polls) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"poll %llu (open)\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":0,"
                  "\"pid\":0,\"tid\":%u,\"args\":{\"au\":%u}}",
                  static_cast<unsigned long long>(key.second),
                  static_cast<double>(opened->time_ns) / 1000.0, opened->origin, opened->au);
    emit(buf);
  }
  out << "\n]}\n";
}

}  // namespace lockss::obs
