#include "obs/event_log.hpp"

#include <algorithm>
#include <cstring>

namespace lockss::obs {
namespace {

// splitmix64 finalizer — the same mix sim::Rng seeds from, duplicated here so
// obs stays at the bottom of the layering (and consumes no RNG stream).
constexpr uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

const char* const kEventKindNames[kEventKindCount] = {
    "poll_opened",
    "invitation_sent",
    "solicitation_retry",
    "ack_received",
    "ack_refused",
    "ack_timeout",
    "vote_timeout",
    "vote_received",
    "outer_circle_started",
    "repair_requested",
    "repair_received",
    "poll_concluded",
    "invitation_considered",
    "vote_sent",
    "repair_served",
    "receipt_checked",
    "churn_arrival",
    "churn_leave",
    "churn_crash",
    "churn_recover",
    "operator_action",
    "fault_loss",
    "fault_burst_drop",
    "fault_duplicate",
    "fault_jitter",
    "adversary_policy_trigger",
    "adversary_policy_action",
};

}  // namespace

const char* event_kind_name(EventKind kind) {
  const size_t index = static_cast<size_t>(kind);
  return index < kEventKindCount ? kEventKindNames[index] : "?";
}

bool parse_event_kind(const char* name, EventKind* out) {
  for (size_t i = 0; i < kEventKindCount; ++i) {
    if (std::strcmp(name, kEventKindNames[i]) == 0) {
      *out = static_cast<EventKind>(i);
      return true;
    }
  }
  return false;
}

bool EventSink::sampled(const Event& e) const {
  if (config_.sample_rate <= 0.0) {
    return false;
  }
  // Pure function of the event's stream coordinates: shard- and
  // worker-count-invariant, and identical for the identical event in a
  // serial and a sharded run.
  const uint64_t h = mix64(static_cast<uint64_t>(e.time_ns) ^
                           (static_cast<uint64_t>(e.origin) << 32) ^
                           (static_cast<uint64_t>(e.kind) * 0x9E3779B97F4A7C15ull));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return unit < config_.sample_rate;
}

EventLog::EventLog(const TraceConfig& config, size_t sink_count,
                   uint32_t peer_domain_limit)
    : sinks_(sink_count == 0 ? 1 : sink_count) {
  for (EventSink& sink : sinks_) {
    sink.configure(config, peer_domain_limit);
  }
}

void EventLog::drain() {
  for (EventSink& sink : sinks_) {
    if (!sink.events_.empty()) {
      master_.insert(master_.end(), sink.events_.begin(), sink.events_.end());
      sink.events_.clear();
    }
    dropped_ += sink.dropped_;
    sink.dropped_ = 0;
  }
}

EventTrace EventLog::finalize() {
  drain();
  EventTrace trace;
  trace.enabled = true;
  trace.dropped = dropped_;
  trace.events = std::move(master_);
  master_.clear();
  canonicalize(&trace.events);
  return trace;
}

void canonicalize(std::vector<Event>* events) {
  std::stable_sort(events->begin(), events->end(), [](const Event& a, const Event& b) {
    if (a.time_ns != b.time_ns) {
      return a.time_ns < b.time_ns;
    }
    if (a.domain != b.domain) {
      return a.domain < b.domain;
    }
    return a.origin < b.origin;
  });
}

}  // namespace lockss::obs
