// Wall-clock self-profiling (docs/observability.md, domain 2).
//
// Unlike the sim-time event trace, everything here measures the *host*: how
// long setup/run/harvest actually took, how the sharded engine's barrier
// windows behaved, and how big the process grew. None of it is
// deterministic, so profile data never feeds the journal, the golden corpus,
// or any determinism comparison — it is reporting only, gated off by
// default.
#ifndef LOCKSS_OBS_PROFILE_HPP_
#define LOCKSS_OBS_PROFILE_HPP_

#include <array>
#include <chrono>
#include <cstdint>

namespace lockss::obs {

// Process peak / current resident set from /proc/self/status, in KiB; 0 when
// unavailable (non-Linux hosts).
uint64_t vm_hwm_kb();
uint64_t vm_rss_kb();

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }
  double elapsed_seconds() const { return elapsed_ms() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Filled in by sim::ShardedEngine when a profile is attached (nullptr —
// the default — costs the engine nothing but a branch per window).
struct EngineProfile {
  uint64_t windows = 0;           // lookahead windows dispatched
  uint64_t barriers = 0;          // barrier merges completed
  double window_exec_seconds = 0.0;   // wall time inside shard execution
  double barrier_stall_seconds = 0.0; // wall time merging + waiting at barriers
  // Window-occupancy histogram: windows by how many shards had work,
  // saturated at the last bucket. All-idle windows land in bucket 0.
  static constexpr size_t kOccupancyBuckets = 17;
  std::array<uint64_t, kOccupancyBuckets> occupancy{};

  double barrier_stall_fraction() const {
    const double total = window_exec_seconds + barrier_stall_seconds;
    return total > 0.0 ? barrier_stall_seconds / total : 0.0;
  }
};

// One run's wall-clock profile, carried in experiment::RunResult when
// ScenarioConfig::obs_profile is on.
struct RunProfile {
  bool enabled = false;
  double setup_ms = 0.0;    // deployment construction, wiring
  double run_ms = 0.0;      // event-loop execution
  double harvest_ms = 0.0;  // counter harvest + report build
  double total_ms = 0.0;
  uint64_t peak_rss_kb = 0;
  EngineProfile engine;
};

}  // namespace lockss::obs

#endif  // LOCKSS_OBS_PROFILE_HPP_
