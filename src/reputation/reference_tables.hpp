// Seed (pre-densification) reputation containers, preserved verbatim.
//
// PR 3 rebuilt KnownPeers and IntroductionTable on dense NodeSlotRegistry
// slot arrays. These are the ordered-container originals they replaced,
// kept — like metrics::MapReferenceCollector — for two jobs:
//
//   * the randomized equivalence property tests
//     (tests/substrate_equivalence_test.cpp), which drive identical op
//     sequences through both implementations and demand identical
//     observable behavior, including iteration order;
//   * the before/after micro-benchmarks (bench/micro_substrates.cpp,
//     tools/bench_report), which keep the speedup claim re-measurable.
//
// Do not "fix" or optimize these: their value is being the seed semantics,
// byte for byte.
#ifndef LOCKSS_REPUTATION_REFERENCE_TABLES_HPP_
#define LOCKSS_REPUTATION_REFERENCE_TABLES_HPP_

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/node_id.hpp"
#include "reputation/known_peers.hpp"
#include "sim/time.hpp"

namespace lockss::reputation {

// The seed KnownPeers: one std::map node per graded peer, ordered lookups
// on every standing check.
class KnownPeersReference {
 public:
  explicit KnownPeersReference(sim::SimTime decay_interval)
      : decay_interval_(decay_interval) {}

  Standing standing(net::NodeId peer, sim::SimTime now) const {
    auto it = entries_.find(peer);
    if (it == entries_.end()) {
      return Standing::kUnknown;
    }
    switch (decayed_grade(it->second, now)) {
      case Grade::kDebt:
        return Standing::kDebt;
      case Grade::kEven:
        return Standing::kEven;
      case Grade::kCredit:
        return Standing::kCredit;
    }
    return Standing::kUnknown;
  }

  void record_service_supplied(net::NodeId peer, sim::SimTime now) {
    auto [it, inserted] = entries_.try_emplace(peer, Entry{Grade::kDebt, now});
    if (!inserted) {
      materialize_decay(it->second, now);
      // debt -> even -> credit -> credit (§5.1).
      it->second.grade = static_cast<Grade>(std::min(static_cast<int>(it->second.grade) + 1, 2));
    } else {
      // First encounter: a peer that just supplied us service starts at even.
      it->second.grade = Grade::kEven;
    }
    it->second.last_update = now;
  }

  void record_service_consumed(net::NodeId peer, sim::SimTime now) {
    auto [it, inserted] = entries_.try_emplace(peer, Entry{Grade::kDebt, now});
    if (!inserted) {
      materialize_decay(it->second, now);
      // credit -> even -> debt -> debt.
      it->second.grade = static_cast<Grade>(std::max(static_cast<int>(it->second.grade) - 1, 0));
    }
    it->second.last_update = now;
  }

  void record_misbehavior(net::NodeId peer, sim::SimTime now) {
    entries_[peer] = Entry{Grade::kDebt, now};
  }

  void ensure_known(net::NodeId peer, Grade grade, sim::SimTime now) {
    entries_.try_emplace(peer, Entry{grade, now});
  }

  bool known(net::NodeId peer) const { return entries_.contains(peer); }
  size_t size() const { return entries_.size(); }

  std::vector<net::NodeId> peers_with_standing(Standing target, sim::SimTime now) const {
    std::vector<net::NodeId> out;
    for (const auto& [peer, entry] : entries_) {
      if (standing(peer, now) == target) {
        out.push_back(peer);
      }
    }
    return out;
  }

 private:
  struct Entry {
    Grade grade;
    sim::SimTime last_update;
  };

  Grade decayed_grade(const Entry& entry, sim::SimTime now) const {
    if (decay_interval_ <= sim::SimTime::zero()) {
      return entry.grade;
    }
    const int64_t steps = (now - entry.last_update).ns() / decay_interval_.ns();
    int level = static_cast<int>(entry.grade) - static_cast<int>(std::min<int64_t>(steps, 2));
    return static_cast<Grade>(std::max(level, 0));
  }

  void materialize_decay(Entry& entry, sim::SimTime now) const {
    entry.grade = decayed_grade(entry, now);
  }

  sim::SimTime decay_interval_;
  std::map<net::NodeId, Entry> entries_;
};

// The seed IntroductionTable: a std::set of pairs, with linear scans for
// introduced() and the consumption cascade.
class IntroductionTableReference {
 public:
  explicit IntroductionTableReference(size_t max_outstanding)
      : max_outstanding_(max_outstanding) {}

  void add(net::NodeId introducer, net::NodeId introducee) {
    if (introducer == introducee) {
      return;
    }
    if (pairs_.size() >= max_outstanding_ && !pairs_.contains({introducer, introducee})) {
      return;
    }
    pairs_.insert({introducer, introducee});
  }

  bool introduced(net::NodeId introducee) const {
    return std::any_of(pairs_.begin(), pairs_.end(),
                       [&](const Pair& p) { return p.introducee == introducee; });
  }

  std::vector<net::NodeId> introducers_of(net::NodeId introducee) const {
    std::vector<net::NodeId> out;
    for (const Pair& p : pairs_) {
      if (p.introducee == introducee) {
        out.push_back(p.introducer);
      }
    }
    return out;
  }

  bool consume(net::NodeId introducee) {
    const std::vector<net::NodeId> introducers = introducers_of(introducee);
    if (introducers.empty()) {
      return false;
    }
    for (auto it = pairs_.begin(); it != pairs_.end();) {
      const bool by_consumed_introducer =
          std::find(introducers.begin(), introducers.end(), it->introducer) != introducers.end();
      if (it->introducee == introducee || by_consumed_introducer) {
        it = pairs_.erase(it);
      } else {
        ++it;
      }
    }
    return true;
  }

  void remove_introducer(net::NodeId introducer) {
    for (auto it = pairs_.begin(); it != pairs_.end();) {
      it = (it->introducer == introducer) ? pairs_.erase(it) : std::next(it);
    }
  }

  size_t outstanding() const { return pairs_.size(); }

 private:
  struct Pair {
    net::NodeId introducer;
    net::NodeId introducee;
    friend auto operator<=>(const Pair&, const Pair&) = default;
  };

  size_t max_outstanding_;
  std::set<Pair> pairs_;
};

}  // namespace lockss::reputation

#endif  // LOCKSS_REPUTATION_REFERENCE_TABLES_HPP_
