// First-hand reputation (§5.1).
//
// Per AU, a peer grades every peer it has exchanged votes with:
//   debt   — "the peer has supplied P with fewer votes than P has supplied it"
//   even   — recent exchanges balanced
//   credit — "P has supplied the peer with fewer votes than the peer has
//             supplied P"
// Grades move one step up when the counterparty behaves (supplies a valid
// vote / evaluates ours), one step down when we consume its service, and
// crash to debt on misbehavior. Entries decay toward debt with time, so
// standing liability is bounded.
//
// Layout: entries for identities registered in the deployment's
// net::NodeSlotRegistry live in a flat slot array — standing() and the
// grade transitions are one index load, no allocation, no ordered walk.
// Unregistered identities (the admission-flood adversary spoofs unbounded
// fresh ids) fall back to a small ordered map with identical semantics.
// Iteration (peers_with_standing) merges both sides in ascending NodeId
// order, matching the seed std::map exactly (the registry's index order is
// NodeId order); the seed implementation is preserved as
// KnownPeersReference and property-checked equivalent.
#ifndef LOCKSS_REPUTATION_KNOWN_PEERS_HPP_
#define LOCKSS_REPUTATION_KNOWN_PEERS_HPP_

#include <cstdint>
#include <map>
#include <vector>

#include "net/node_id.hpp"
#include "net/node_slot_registry.hpp"
#include "sim/time.hpp"

namespace lockss::reputation {

enum class Grade : uint8_t {
  kDebt = 0,
  kEven = 1,
  kCredit = 2,
};

const char* grade_name(Grade grade);

// Reputation standing including "never heard of them".
enum class Standing : uint8_t {
  kUnknown,
  kDebt,
  kEven,
  kCredit,
};

const char* standing_name(Standing standing);

class KnownPeers {
 public:
  // `decay_interval`: a grade drops one level toward debt for every full
  // interval since its last update ("entries ... 'decay' with time toward
  // the debt grade"). `nodes` may be null (hand-built hosts, unit tests):
  // every identity then takes the map path, which is the seed behavior.
  explicit KnownPeers(sim::SimTime decay_interval,
                      const net::NodeSlotRegistry* nodes = nullptr);

  // Standing of `peer` at `now`, with decay applied.
  Standing standing(net::NodeId peer, sim::SimTime now) const;

  // The counterparty supplied us a valid service (vote + repairs as voter,
  // or a valid evaluation receipt as poller): move its grade one step up.
  void record_service_supplied(net::NodeId peer, sim::SimTime now);

  // We consumed the counterparty's service: move its grade one step down
  // ("the voter correspondingly decreases the grade it has assigned to the
  // poller").
  void record_service_consumed(net::NodeId peer, sim::SimTime now);

  // Misbehavior (deserted poll, bogus proof, missing receipt): crash to debt.
  void record_misbehavior(net::NodeId peer, sim::SimTime now);

  // Inserts `peer` at `grade` if absent (used to seed initial reference
  // lists and for the §7.4 adversary whose minions start in-debt).
  void ensure_known(net::NodeId peer, Grade grade, sim::SimTime now);

  bool known(net::NodeId peer) const;
  size_t size() const { return slot_known_ + overflow_.size(); }
  std::vector<net::NodeId> peers_with_standing(Standing standing, sim::SimTime now) const;

 private:
  struct Entry {
    Grade grade = Grade::kDebt;
    bool known = false;
    sim::SimTime last_update;
  };

  Grade decayed_grade(const Entry& entry, sim::SimTime now) const;
  // Applies pending decay to the stored entry before mutating it, so decay
  // and explicit transitions compose in timestamp order.
  void materialize_decay(Entry& entry, sim::SimTime now) const;
  static Standing standing_of(Grade grade);

  // Slot-array entry for `peer`, or nullptr when `peer` is unregistered
  // (route through overflow_) . The mutable overload grows the array to the
  // registry's current count on demand — registration is setup-time work,
  // so the array reaches a fixed footprint before traffic starts.
  const Entry* slot_entry(net::NodeId peer) const;
  Entry* slot_entry_mut(net::NodeId peer);
  Standing entry_standing(const Entry& entry, sim::SimTime now) const;

  sim::SimTime decay_interval_;
  const net::NodeSlotRegistry* nodes_;
  std::vector<Entry> slots_;   // indexed by registry slot; .known marks use
  size_t slot_known_ = 0;
  std::map<net::NodeId, Entry> overflow_;  // unregistered identities only
};

}  // namespace lockss::reputation

#endif  // LOCKSS_REPUTATION_KNOWN_PEERS_HPP_
