// First-hand reputation (§5.1).
//
// Per AU, a peer grades every peer it has exchanged votes with:
//   debt   — "the peer has supplied P with fewer votes than P has supplied it"
//   even   — recent exchanges balanced
//   credit — "P has supplied the peer with fewer votes than the peer has
//             supplied P"
// Grades move one step up when the counterparty behaves (supplies a valid
// vote / evaluates ours), one step down when we consume its service, and
// crash to debt on misbehavior. Entries decay toward debt with time, so
// standing liability is bounded.
#ifndef LOCKSS_REPUTATION_KNOWN_PEERS_HPP_
#define LOCKSS_REPUTATION_KNOWN_PEERS_HPP_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace lockss::reputation {

enum class Grade : uint8_t {
  kDebt = 0,
  kEven = 1,
  kCredit = 2,
};

const char* grade_name(Grade grade);

// Reputation standing including "never heard of them".
enum class Standing : uint8_t {
  kUnknown,
  kDebt,
  kEven,
  kCredit,
};

const char* standing_name(Standing standing);

class KnownPeers {
 public:
  // `decay_interval`: a grade drops one level toward debt for every full
  // interval since its last update ("entries ... 'decay' with time toward
  // the debt grade").
  explicit KnownPeers(sim::SimTime decay_interval);

  // Standing of `peer` at `now`, with decay applied.
  Standing standing(net::NodeId peer, sim::SimTime now) const;

  // The counterparty supplied us a valid service (vote + repairs as voter,
  // or a valid evaluation receipt as poller): move its grade one step up.
  void record_service_supplied(net::NodeId peer, sim::SimTime now);

  // We consumed the counterparty's service: move its grade one step down
  // ("the voter correspondingly decreases the grade it has assigned to the
  // poller").
  void record_service_consumed(net::NodeId peer, sim::SimTime now);

  // Misbehavior (deserted poll, bogus proof, missing receipt): crash to debt.
  void record_misbehavior(net::NodeId peer, sim::SimTime now);

  // Inserts `peer` at `grade` if absent (used to seed initial reference
  // lists and for the §7.4 adversary whose minions start in-debt).
  void ensure_known(net::NodeId peer, Grade grade, sim::SimTime now);

  bool known(net::NodeId peer) const { return entries_.contains(peer); }
  size_t size() const { return entries_.size(); }
  std::vector<net::NodeId> peers_with_standing(Standing standing, sim::SimTime now) const;

 private:
  struct Entry {
    Grade grade;
    sim::SimTime last_update;
  };

  Grade decayed_grade(const Entry& entry, sim::SimTime now) const;
  // Applies pending decay to the stored entry before mutating it, so decay
  // and explicit transitions compose in timestamp order.
  void materialize_decay(Entry& entry, sim::SimTime now) const;

  sim::SimTime decay_interval_;
  std::map<net::NodeId, Entry> entries_;
};

}  // namespace lockss::reputation

#endif  // LOCKSS_REPUTATION_KNOWN_PEERS_HPP_
