#include "reputation/admission_policy.hpp"

namespace lockss::reputation {

double AdmissionPolicy::drop_probability(Standing standing) const {
  switch (standing) {
    case Standing::kUnknown:
      return config_.unknown_drop_probability;
    case Standing::kDebt:
      return config_.debt_drop_probability;
    case Standing::kEven:
    case Standing::kCredit:
      return 0.0;
  }
  return 1.0;
}

bool AdmissionPolicy::pass_random_drop(Standing standing) {
  return !rng_.bernoulli(drop_probability(standing));
}

}  // namespace lockss::reputation
