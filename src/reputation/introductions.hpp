// Peer introductions (§5.1).
//
// Voters bundle introductions with nominations; an introduced peer's poll
// invitation "is treated as if coming from a known peer with an even grade",
// bypassing random drops and refractory periods. Consumption semantics are
// deliberately aggressive to prevent stockpiling:
//
//   "at most one introduction is honored per (validly voting) introducer,
//    and unused introductions do not accumulate. Specifically, when
//    consuming the introduction of peer B by peer A for AU X, all other
//    introductions of other introducees by peer A for AU X are 'forgotten,'
//    as are all introductions of peer B for X by other introducers.
//    Furthermore, introductions by peers who have entered and left the
//    reference list are also removed, and the maximum number of outstanding
//    introductions is capped."
//
// One IntroductionTable instance covers a single AU.
#ifndef LOCKSS_REPUTATION_INTRODUCTIONS_HPP_
#define LOCKSS_REPUTATION_INTRODUCTIONS_HPP_

#include <cstddef>
#include <map>
#include <set>
#include <vector>

#include "net/node_id.hpp"

namespace lockss::reputation {

class IntroductionTable {
 public:
  explicit IntroductionTable(size_t max_outstanding) : max_outstanding_(max_outstanding) {}

  // Records that `introducer` vouched for `introducee`. Ignored when the cap
  // is reached or the pair already exists. Self-introductions are invalid.
  void add(net::NodeId introducer, net::NodeId introducee);

  // Whether some live introduction vouches for `introducee`.
  bool introduced(net::NodeId introducee) const;

  // Consumes the introduction of `introducee`: removes every introduction of
  // `introducee` (any introducer) and every other introduction made by each
  // of its introducers. Returns true if any introduction was consumed.
  bool consume(net::NodeId introducee);

  // A former introducer left the reference list: its introductions lapse.
  void remove_introducer(net::NodeId introducer);

  size_t outstanding() const { return pairs_.size(); }
  std::vector<net::NodeId> introducers_of(net::NodeId introducee) const;

 private:
  struct Pair {
    net::NodeId introducer;
    net::NodeId introducee;
    friend auto operator<=>(const Pair&, const Pair&) = default;
  };

  size_t max_outstanding_;
  std::set<Pair> pairs_;
};

}  // namespace lockss::reputation

#endif  // LOCKSS_REPUTATION_INTRODUCTIONS_HPP_
