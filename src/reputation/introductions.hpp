// Peer introductions (§5.1).
//
// Voters bundle introductions with nominations; an introduced peer's poll
// invitation "is treated as if coming from a known peer with an even grade",
// bypassing random drops and refractory periods. Consumption semantics are
// deliberately aggressive to prevent stockpiling:
//
//   "at most one introduction is honored per (validly voting) introducer,
//    and unused introductions do not accumulate. Specifically, when
//    consuming the introduction of peer B by peer A for AU X, all other
//    introductions of other introducees by peer A for AU X are 'forgotten,'
//    as are all introductions of peer B for X by other introducers.
//    Furthermore, introductions by peers who have entered and left the
//    reference list are also removed, and the maximum number of outstanding
//    introductions is capped."
//
// One IntroductionTable instance covers a single AU.
//
// Layout: the (capped, small) pair set is a flat vector sorted by
// (introducer, introducee) — the seed std::set's order. introduced(), the
// per-invitation hot-path query, is a slot-indexed per-introducee counter
// (NodeSlotRegistry) — one load instead of a set scan; unregistered
// introducees count in a small overflow map. The cascading consume() and
// remove_introducer() stay linear walks of the pair vector (contiguous PODs
// now, and rare). Seed semantics preserved as IntroductionTableReference
// and property-checked equivalent.
#ifndef LOCKSS_REPUTATION_INTRODUCTIONS_HPP_
#define LOCKSS_REPUTATION_INTRODUCTIONS_HPP_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "net/node_id.hpp"
#include "net/node_slot_registry.hpp"

namespace lockss::reputation {

class IntroductionTable {
 public:
  // `nodes` may be null (hand-built hosts, unit tests): every introducee
  // then counts in the overflow map; observable behavior is identical.
  explicit IntroductionTable(size_t max_outstanding,
                             const net::NodeSlotRegistry* nodes = nullptr)
      : max_outstanding_(max_outstanding), nodes_(nodes) {}

  // Records that `introducer` vouched for `introducee`. Ignored when the cap
  // is reached or the pair already exists. Self-introductions are invalid.
  void add(net::NodeId introducer, net::NodeId introducee);

  // Whether some live introduction vouches for `introducee`.
  bool introduced(net::NodeId introducee) const;

  // Consumes the introduction of `introducee`: removes every introduction of
  // `introducee` (any introducer) and every other introduction made by each
  // of its introducers. Returns true if any introduction was consumed.
  bool consume(net::NodeId introducee);

  // A former introducer left the reference list: its introductions lapse.
  void remove_introducer(net::NodeId introducer);

  size_t outstanding() const { return pairs_.size(); }
  std::vector<net::NodeId> introducers_of(net::NodeId introducee) const;

 private:
  struct Pair {
    net::NodeId introducer;
    net::NodeId introducee;
    friend auto operator<=>(const Pair&, const Pair&) = default;
  };

  void count_introducee(net::NodeId introducee, int delta);

  size_t max_outstanding_;
  const net::NodeSlotRegistry* nodes_;
  std::vector<Pair> pairs_;  // sorted by (introducer, introducee); canonical
  std::vector<uint16_t> introduced_counts_;      // slot-indexed accelerator
  std::map<net::NodeId, uint16_t> overflow_counts_;  // unregistered introducees
  std::vector<net::NodeId> consume_scratch_;     // reused by consume()
};

}  // namespace lockss::reputation

#endif  // LOCKSS_REPUTATION_INTRODUCTIONS_HPP_
