// Random-drop admission policy by reputation standing (§5.1, §6.3).
//
// "Peers randomly drop some poll invitations arriving from previously
// unknown peers and from pollers with a debt grade. Invitations from pollers
// with an even or credit grade are not dropped. ... the drop probability
// imposed on unknown pollers is higher than that imposed on known in-debt
// pollers." §6.3 fixes the probabilities at 0.90 (unknown) and 0.80 (debt).
#ifndef LOCKSS_REPUTATION_ADMISSION_POLICY_HPP_
#define LOCKSS_REPUTATION_ADMISSION_POLICY_HPP_

#include "reputation/known_peers.hpp"
#include "sim/rng.hpp"

namespace lockss::reputation {

struct AdmissionPolicyConfig {
  double unknown_drop_probability = 0.90;
  double debt_drop_probability = 0.80;
};

class AdmissionPolicy {
 public:
  AdmissionPolicy(AdmissionPolicyConfig config, sim::Rng rng) : config_(config), rng_(rng) {}

  // Applies the random-drop stage for a poller with the given standing.
  // Introduced pollers must be mapped to Standing::kEven by the caller
  // *before* this check (introductions bypass drops).
  bool pass_random_drop(Standing standing);

  double drop_probability(Standing standing) const;

  const AdmissionPolicyConfig& config() const { return config_; }

 private:
  AdmissionPolicyConfig config_;
  sim::Rng rng_;
};

}  // namespace lockss::reputation

#endif  // LOCKSS_REPUTATION_ADMISSION_POLICY_HPP_
