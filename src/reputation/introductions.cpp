#include "reputation/introductions.hpp"

#include <algorithm>

namespace lockss::reputation {

void IntroductionTable::add(net::NodeId introducer, net::NodeId introducee) {
  if (introducer == introducee) {
    return;
  }
  if (pairs_.size() >= max_outstanding_ && !pairs_.contains({introducer, introducee})) {
    return;
  }
  pairs_.insert({introducer, introducee});
}

bool IntroductionTable::introduced(net::NodeId introducee) const {
  return std::any_of(pairs_.begin(), pairs_.end(),
                     [&](const Pair& p) { return p.introducee == introducee; });
}

std::vector<net::NodeId> IntroductionTable::introducers_of(net::NodeId introducee) const {
  std::vector<net::NodeId> out;
  for (const Pair& p : pairs_) {
    if (p.introducee == introducee) {
      out.push_back(p.introducer);
    }
  }
  return out;
}

bool IntroductionTable::consume(net::NodeId introducee) {
  const std::vector<net::NodeId> introducers = introducers_of(introducee);
  if (introducers.empty()) {
    return false;
  }
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    const bool by_consumed_introducer =
        std::find(introducers.begin(), introducers.end(), it->introducer) != introducers.end();
    if (it->introducee == introducee || by_consumed_introducer) {
      it = pairs_.erase(it);
    } else {
      ++it;
    }
  }
  return true;
}

void IntroductionTable::remove_introducer(net::NodeId introducer) {
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    it = (it->introducer == introducer) ? pairs_.erase(it) : std::next(it);
  }
}

}  // namespace lockss::reputation
