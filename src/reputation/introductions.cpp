#include "reputation/introductions.hpp"

#include <algorithm>
#include <cassert>

namespace lockss::reputation {

void IntroductionTable::count_introducee(net::NodeId introducee, int delta) {
  if (nodes_ != nullptr) {
    const uint32_t index = nodes_->index_of(introducee);
    if (index != net::NodeSlotRegistry::kUnassigned) {
      if (index >= introduced_counts_.size()) {
        introduced_counts_.resize(nodes_->count(), 0);
      }
      if (!overflow_counts_.empty()) {
        // The introducee was vouched for before it registered: fold its
        // overflow count into the slot so both paths agree from here on.
        auto it = overflow_counts_.find(introducee);
        if (it != overflow_counts_.end()) {
          introduced_counts_[index] = static_cast<uint16_t>(introduced_counts_[index] + it->second);
          overflow_counts_.erase(it);
        }
      }
      assert(delta > 0 || introduced_counts_[index] > 0);
      introduced_counts_[index] = static_cast<uint16_t>(introduced_counts_[index] + delta);
      return;
    }
  }
  if (delta > 0) {
    ++overflow_counts_[introducee];
  } else {
    auto it = overflow_counts_.find(introducee);
    assert(it != overflow_counts_.end() && it->second > 0);
    if (--it->second == 0) {
      overflow_counts_.erase(it);
    }
  }
}

void IntroductionTable::add(net::NodeId introducer, net::NodeId introducee) {
  if (introducer == introducee) {
    return;
  }
  const Pair pair{introducer, introducee};
  const auto pos = std::lower_bound(pairs_.begin(), pairs_.end(), pair);
  const bool exists = pos != pairs_.end() && *pos == pair;
  if (exists || pairs_.size() >= max_outstanding_) {
    return;  // duplicate, or cap reached ("outstanding introductions are capped")
  }
  pairs_.insert(pos, pair);
  count_introducee(introducee, +1);
}

bool IntroductionTable::introduced(net::NodeId introducee) const {
  if (nodes_ != nullptr) {
    const uint32_t index = nodes_->index_of(introducee);
    if (index != net::NodeSlotRegistry::kUnassigned) {
      if (index < introduced_counts_.size() && introduced_counts_[index] > 0) {
        return true;
      }
      // Fall through: pre-registration vouches may still sit in the
      // overflow counts until a mutator folds them in.
    }
  }
  return !overflow_counts_.empty() && overflow_counts_.contains(introducee);
}

std::vector<net::NodeId> IntroductionTable::introducers_of(net::NodeId introducee) const {
  std::vector<net::NodeId> out;
  for (const Pair& p : pairs_) {
    if (p.introducee == introducee) {
      out.push_back(p.introducer);
    }
  }
  return out;
}

bool IntroductionTable::consume(net::NodeId introducee) {
  // Gather the introducers of `introducee` (ascending, since pairs_ is
  // introducer-major sorted) into the reused scratch.
  consume_scratch_.clear();
  for (const Pair& p : pairs_) {
    if (p.introducee == introducee) {
      consume_scratch_.push_back(p.introducer);
    }
  }
  if (consume_scratch_.empty()) {
    return false;
  }
  // Remove every introduction of `introducee` and every other introduction
  // by its introducers, keeping the vector sorted (erase-remove preserves
  // relative order).
  const auto removed = std::remove_if(pairs_.begin(), pairs_.end(), [&](const Pair& p) {
    const bool by_consumed_introducer =
        std::binary_search(consume_scratch_.begin(), consume_scratch_.end(), p.introducer);
    if (p.introducee == introducee || by_consumed_introducer) {
      count_introducee(p.introducee, -1);
      return true;
    }
    return false;
  });
  pairs_.erase(removed, pairs_.end());
  return true;
}

void IntroductionTable::remove_introducer(net::NodeId introducer) {
  // pairs_ is introducer-major sorted: the block to remove is contiguous.
  const auto first = std::lower_bound(
      pairs_.begin(), pairs_.end(), introducer,
      [](const Pair& p, net::NodeId id) { return p.introducer < id; });
  auto last = first;
  for (; last != pairs_.end() && last->introducer == introducer; ++last) {
    count_introducee(last->introducee, -1);
  }
  pairs_.erase(first, last);
}

}  // namespace lockss::reputation
