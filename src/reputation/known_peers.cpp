#include "reputation/known_peers.hpp"

#include <algorithm>

namespace lockss::reputation {

const char* grade_name(Grade grade) {
  switch (grade) {
    case Grade::kDebt:
      return "debt";
    case Grade::kEven:
      return "even";
    case Grade::kCredit:
      return "credit";
  }
  return "?";
}

const char* standing_name(Standing standing) {
  switch (standing) {
    case Standing::kUnknown:
      return "unknown";
    case Standing::kDebt:
      return "debt";
    case Standing::kEven:
      return "even";
    case Standing::kCredit:
      return "credit";
  }
  return "?";
}

KnownPeers::KnownPeers(sim::SimTime decay_interval) : decay_interval_(decay_interval) {}

Grade KnownPeers::decayed_grade(const Entry& entry, sim::SimTime now) const {
  if (decay_interval_ <= sim::SimTime::zero()) {
    return entry.grade;
  }
  const int64_t steps = (now - entry.last_update).ns() / decay_interval_.ns();
  int level = static_cast<int>(entry.grade) - static_cast<int>(std::min<int64_t>(steps, 2));
  return static_cast<Grade>(std::max(level, 0));
}

void KnownPeers::materialize_decay(Entry& entry, sim::SimTime now) const {
  entry.grade = decayed_grade(entry, now);
}

Standing KnownPeers::standing(net::NodeId peer, sim::SimTime now) const {
  auto it = entries_.find(peer);
  if (it == entries_.end()) {
    return Standing::kUnknown;
  }
  switch (decayed_grade(it->second, now)) {
    case Grade::kDebt:
      return Standing::kDebt;
    case Grade::kEven:
      return Standing::kEven;
    case Grade::kCredit:
      return Standing::kCredit;
  }
  return Standing::kUnknown;
}

void KnownPeers::record_service_supplied(net::NodeId peer, sim::SimTime now) {
  auto [it, inserted] = entries_.try_emplace(peer, Entry{Grade::kDebt, now});
  if (!inserted) {
    materialize_decay(it->second, now);
    // debt -> even -> credit -> credit (§5.1).
    it->second.grade = static_cast<Grade>(std::min(static_cast<int>(it->second.grade) + 1, 2));
  } else {
    // First encounter: a peer that just supplied us service starts at even.
    it->second.grade = Grade::kEven;
  }
  it->second.last_update = now;
}

void KnownPeers::record_service_consumed(net::NodeId peer, sim::SimTime now) {
  auto [it, inserted] = entries_.try_emplace(peer, Entry{Grade::kDebt, now});
  if (!inserted) {
    materialize_decay(it->second, now);
    // credit -> even -> debt -> debt.
    it->second.grade = static_cast<Grade>(std::max(static_cast<int>(it->second.grade) - 1, 0));
  }
  it->second.last_update = now;
}

void KnownPeers::record_misbehavior(net::NodeId peer, sim::SimTime now) {
  entries_[peer] = Entry{Grade::kDebt, now};
}

void KnownPeers::ensure_known(net::NodeId peer, Grade grade, sim::SimTime now) {
  entries_.try_emplace(peer, Entry{grade, now});
}

std::vector<net::NodeId> KnownPeers::peers_with_standing(Standing target, sim::SimTime now) const {
  std::vector<net::NodeId> out;
  for (const auto& [peer, entry] : entries_) {
    if (standing(peer, now) == target) {
      out.push_back(peer);
    }
  }
  return out;
}

}  // namespace lockss::reputation
