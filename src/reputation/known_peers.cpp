#include "reputation/known_peers.hpp"

#include <algorithm>

namespace lockss::reputation {

const char* grade_name(Grade grade) {
  switch (grade) {
    case Grade::kDebt:
      return "debt";
    case Grade::kEven:
      return "even";
    case Grade::kCredit:
      return "credit";
  }
  return "?";
}

const char* standing_name(Standing standing) {
  switch (standing) {
    case Standing::kUnknown:
      return "unknown";
    case Standing::kDebt:
      return "debt";
    case Standing::kEven:
      return "even";
    case Standing::kCredit:
      return "credit";
  }
  return "?";
}

KnownPeers::KnownPeers(sim::SimTime decay_interval, const net::NodeSlotRegistry* nodes)
    : decay_interval_(decay_interval), nodes_(nodes) {
  if (nodes_ != nullptr) {
    slots_.resize(nodes_->count());
  }
}

Grade KnownPeers::decayed_grade(const Entry& entry, sim::SimTime now) const {
  if (decay_interval_ <= sim::SimTime::zero()) {
    return entry.grade;
  }
  const int64_t steps = (now - entry.last_update).ns() / decay_interval_.ns();
  int level = static_cast<int>(entry.grade) - static_cast<int>(std::min<int64_t>(steps, 2));
  return static_cast<Grade>(std::max(level, 0));
}

void KnownPeers::materialize_decay(Entry& entry, sim::SimTime now) const {
  entry.grade = decayed_grade(entry, now);
}

Standing KnownPeers::standing_of(Grade grade) {
  switch (grade) {
    case Grade::kDebt:
      return Standing::kDebt;
    case Grade::kEven:
      return Standing::kEven;
    case Grade::kCredit:
      return Standing::kCredit;
  }
  return Standing::kUnknown;
}

Standing KnownPeers::entry_standing(const Entry& entry, sim::SimTime now) const {
  return standing_of(decayed_grade(entry, now));
}

const KnownPeers::Entry* KnownPeers::slot_entry(net::NodeId peer) const {
  if (nodes_ == nullptr) {
    return nullptr;
  }
  const uint32_t index = nodes_->index_of(peer);
  if (index == net::NodeSlotRegistry::kUnassigned || index >= slots_.size()) {
    return nullptr;
  }
  return &slots_[index];
}

KnownPeers::Entry* KnownPeers::slot_entry_mut(net::NodeId peer) {
  if (nodes_ == nullptr) {
    return nullptr;
  }
  const uint32_t index = nodes_->index_of(peer);
  if (index == net::NodeSlotRegistry::kUnassigned) {
    return nullptr;
  }
  if (index >= slots_.size()) {
    // The registry grew since construction (late-setup minion registration);
    // catch up. Registration precedes traffic, so this never runs hot.
    slots_.resize(nodes_->count());
  }
  Entry* entry = &slots_[index];
  if (!entry->known && !overflow_.empty()) {
    // The peer was graded before it registered: migrate the overflow entry
    // into its slot so both paths agree from here on.
    auto it = overflow_.find(peer);
    if (it != overflow_.end()) {
      *entry = it->second;
      overflow_.erase(it);
      ++slot_known_;
    }
  }
  return entry;
}

Standing KnownPeers::standing(net::NodeId peer, sim::SimTime now) const {
  if (const Entry* entry = slot_entry(peer)) {
    if (entry->known) {
      return entry_standing(*entry, now);
    }
    // Empty slot: fall through — the peer may have been graded before it
    // registered, leaving its entry in the overflow map until a mutator
    // migrates it.
  }
  if (overflow_.empty()) {
    return Standing::kUnknown;  // the common case: one load, no map walk
  }
  auto it = overflow_.find(peer);
  return it == overflow_.end() ? Standing::kUnknown : entry_standing(it->second, now);
}

bool KnownPeers::known(net::NodeId peer) const {
  if (const Entry* entry = slot_entry(peer)) {
    if (entry->known) {
      return true;
    }
  }
  return !overflow_.empty() && overflow_.contains(peer);
}

void KnownPeers::record_service_supplied(net::NodeId peer, sim::SimTime now) {
  if (Entry* entry = slot_entry_mut(peer)) {
    if (entry->known) {
      materialize_decay(*entry, now);
      // debt -> even -> credit -> credit (§5.1).
      entry->grade = static_cast<Grade>(std::min(static_cast<int>(entry->grade) + 1, 2));
    } else {
      // First encounter: a peer that just supplied us service starts at even.
      entry->known = true;
      ++slot_known_;
      entry->grade = Grade::kEven;
    }
    entry->last_update = now;
    return;
  }
  auto [it, inserted] = overflow_.try_emplace(peer, Entry{Grade::kDebt, true, now});
  if (!inserted) {
    materialize_decay(it->second, now);
    it->second.grade = static_cast<Grade>(std::min(static_cast<int>(it->second.grade) + 1, 2));
  } else {
    it->second.grade = Grade::kEven;
  }
  it->second.last_update = now;
}

void KnownPeers::record_service_consumed(net::NodeId peer, sim::SimTime now) {
  if (Entry* entry = slot_entry_mut(peer)) {
    if (entry->known) {
      materialize_decay(*entry, now);
      // credit -> even -> debt -> debt.
      entry->grade = static_cast<Grade>(std::max(static_cast<int>(entry->grade) - 1, 0));
    } else {
      entry->known = true;
      ++slot_known_;
      entry->grade = Grade::kDebt;
    }
    entry->last_update = now;
    return;
  }
  auto [it, inserted] = overflow_.try_emplace(peer, Entry{Grade::kDebt, true, now});
  if (!inserted) {
    materialize_decay(it->second, now);
    it->second.grade = static_cast<Grade>(std::max(static_cast<int>(it->second.grade) - 1, 0));
  }
  it->second.last_update = now;
}

void KnownPeers::record_misbehavior(net::NodeId peer, sim::SimTime now) {
  if (Entry* entry = slot_entry_mut(peer)) {
    slot_known_ += entry->known ? 0 : 1;
    *entry = Entry{Grade::kDebt, true, now};
    return;
  }
  overflow_[peer] = Entry{Grade::kDebt, true, now};
}

void KnownPeers::ensure_known(net::NodeId peer, Grade grade, sim::SimTime now) {
  if (Entry* entry = slot_entry_mut(peer)) {
    if (!entry->known) {
      *entry = Entry{grade, true, now};
      ++slot_known_;
    }
    return;
  }
  overflow_.try_emplace(peer, Entry{grade, true, now});
}

std::vector<net::NodeId> KnownPeers::peers_with_standing(Standing target,
                                                         sim::SimTime now) const {
  // Ascending-NodeId merge of the slot array (index order == NodeId order,
  // the registry's ordering contract) and the overflow map — the exact
  // iteration order of the seed's single std::map.
  std::vector<net::NodeId> out;
  auto ov = overflow_.begin();
  const uint32_t slot_count = static_cast<uint32_t>(slots_.size());
  for (uint32_t index = 0; index < slot_count; ++index) {
    if (!slots_[index].known) {
      continue;
    }
    const net::NodeId id = nodes_->node_at(index);
    for (; ov != overflow_.end() && ov->first < id; ++ov) {
      if (entry_standing(ov->second, now) == target) {
        out.push_back(ov->first);
      }
    }
    if (entry_standing(slots_[index], now) == target) {
      out.push_back(id);
    }
  }
  for (; ov != overflow_.end(); ++ov) {
    if (entry_standing(ov->second, now) == target) {
      out.push_back(ov->first);
    }
  }
  return out;
}

}  // namespace lockss::reputation
