// Per-peer CPU commitment calendar (§5.1, "poll flood" defense).
//
// "To prevent over-commitment, peers maintain a task schedule of their
// promises to perform effort, both to generate votes for others and to call
// their own polls. If the effort of computing the vote solicited by an
// incoming Poll message cannot be accommodated in the schedule, the
// invitation is refused."
//
// The schedule models one CPU as a set of non-overlapping busy intervals.
// Reservations use earliest-fit within a [not_before, deadline] window and
// can be cancelled (poller never followed up) or consumed (work performed).
// Only future intervals are retained; history is pruned as time advances.
#ifndef LOCKSS_SCHED_TASK_SCHEDULE_HPP_
#define LOCKSS_SCHED_TASK_SCHEDULE_HPP_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace lockss::sched {

using ReservationId = uint64_t;

struct Reservation {
  ReservationId id = 0;
  sim::SimTime start;
  sim::SimTime end;
};

class TaskSchedule {
 public:
  // Earliest-fit reservation of `duration` with start >= not_before and
  // end <= deadline. Returns nullopt when no gap fits (the §5.1 refusal).
  std::optional<Reservation> reserve(sim::SimTime duration, sim::SimTime not_before,
                                     sim::SimTime deadline);

  // Whether a reservation would succeed, without making it. Used by the
  // brute-force adversary's schedule oracle (§7.4) as well as by peers that
  // probe before committing.
  bool can_reserve(sim::SimTime duration, sim::SimTime not_before, sim::SimTime deadline) const;

  // Releases a pending reservation (e.g. the poller deserted before
  // PollProof and the slot's hold expired). Unknown ids are ignored —
  // the reservation may have been pruned after completing.
  void cancel(ReservationId id);

  // Extends (or shrinks) an existing reservation's end time in place, e.g.
  // when actual work runs longer than the original estimate. Returns false
  // if the extension would overlap the next busy interval.
  bool extend(ReservationId id, sim::SimTime new_end);

  // Drops intervals that end at or before `now`; keeps the calendar small.
  void prune(sim::SimTime now);

  // Fraction of [from, to) covered by busy intervals (diagnostics/tests).
  double busy_fraction(sim::SimTime from, sim::SimTime to) const;

  // Injects an opaque busy interval (background load). Used by the 600-AU
  // layering methodology of §6.3: layer n sees the accumulated busy time of
  // layers 1..n-1 as pre-existing commitments. Overlapping injections are
  // clipped to fit free space.
  void inject_busy(sim::SimTime start, sim::SimTime end);

  // Exports all intervals ending after `from` (for layering hand-off).
  std::vector<Reservation> intervals_after(sim::SimTime from) const;

  size_t interval_count() const { return by_start_.size(); }

 private:
  struct Interval {
    sim::SimTime end;
    ReservationId id;
  };

  bool fits(sim::SimTime start, sim::SimTime end) const;

  // Busy intervals keyed by start time; values carry end + id.
  std::map<sim::SimTime, Interval> by_start_;
  std::map<ReservationId, sim::SimTime> start_by_id_;
  ReservationId next_id_ = 1;
};

}  // namespace lockss::sched

#endif  // LOCKSS_SCHED_TASK_SCHEDULE_HPP_
