#include "sched/effort_meter.hpp"

#include <cassert>
#include <numeric>
#include <sstream>

namespace lockss::sched {

const char* effort_category_name(EffortCategory category) {
  switch (category) {
    case EffortCategory::kMbfGeneration:
      return "mbf_generation";
    case EffortCategory::kMbfVerification:
      return "mbf_verification";
    case EffortCategory::kVoteComputation:
      return "vote_computation";
    case EffortCategory::kVoteEvaluation:
      return "vote_evaluation";
    case EffortCategory::kRepairService:
      return "repair_service";
    case EffortCategory::kHandshake:
      return "handshake";
    case EffortCategory::kOverhead:
      return "overhead";
    case EffortCategory::kCount:
      break;
  }
  return "unknown";
}

void EffortMeter::charge(EffortCategory category, double effort_seconds) {
  assert(effort_seconds >= 0.0);
  charged_[static_cast<size_t>(category)] += effort_seconds;
}

double EffortMeter::total() const {
  return std::accumulate(charged_.begin(), charged_.end(), 0.0);
}

double EffortMeter::by_category(EffortCategory category) const {
  return charged_[static_cast<size_t>(category)];
}

EffortMeter::Snapshot EffortMeter::snapshot() const { return Snapshot{charged_}; }

double EffortMeter::Snapshot::total() const {
  return std::accumulate(values.begin(), values.end(), 0.0);
}

std::string EffortMeter::to_string() const {
  std::ostringstream out;
  for (size_t i = 0; i < charged_.size(); ++i) {
    if (charged_[i] > 0.0) {
      out << effort_category_name(static_cast<EffortCategory>(i)) << "=" << charged_[i] << "s ";
    }
  }
  return out.str();
}

}  // namespace lockss::sched
