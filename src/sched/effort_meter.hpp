// Effort accounting for the friction and cost-ratio metrics (§6.1).
//
// Every expensive operation a node performs — hashing, MBF generation and
// verification, handshakes, repairs — is charged here in effort-seconds.
// The metrics module divides loyal effort by successful polls (coefficient
// of friction) and compares attacker vs defender totals (cost ratio).
#ifndef LOCKSS_SCHED_EFFORT_METER_HPP_
#define LOCKSS_SCHED_EFFORT_METER_HPP_

#include <array>
#include <cstdint>
#include <string>

namespace lockss::sched {

enum class EffortCategory : uint8_t {
  kMbfGeneration = 0,   // minting introductory / remaining / vote proofs
  kMbfVerification,     // checking received proofs
  kVoteComputation,     // hashing own replica to produce a vote
  kVoteEvaluation,      // poller-side hashing to evaluate received votes
  kRepairService,       // reading + shipping repair blocks
  kHandshake,           // TLS anonymous-DH session setup
  kOverhead,            // per-message fixed costs
  kCount,
};

const char* effort_category_name(EffortCategory category);

class EffortMeter {
 public:
  void charge(EffortCategory category, double effort_seconds);

  double total() const;
  double by_category(EffortCategory category) const;

  // Snapshot/delta support: metrics snapshots the meter at poll boundaries.
  struct Snapshot {
    std::array<double, static_cast<size_t>(EffortCategory::kCount)> values{};
    double total() const;
  };
  Snapshot snapshot() const;

  std::string to_string() const;

 private:
  std::array<double, static_cast<size_t>(EffortCategory::kCount)> charged_{};
};

}  // namespace lockss::sched

#endif  // LOCKSS_SCHED_EFFORT_METER_HPP_
