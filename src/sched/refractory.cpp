#include "sched/refractory.hpp"

namespace lockss::sched {

bool RefractoryTracker::in_refractory(storage::AuId au, sim::SimTime now) const {
  auto it = last_admission_.find(au);
  return it != last_admission_.end() && now - it->second < period_;
}

void RefractoryTracker::record_admission(storage::AuId au, sim::SimTime now) {
  last_admission_[au] = now;
}

bool RefractoryTracker::peer_admission_allowed(storage::AuId au, net::NodeId peer,
                                               sim::SimTime now) const {
  auto it = last_peer_admission_.find({au, peer});
  return it == last_peer_admission_.end() || now - it->second >= period_;
}

void RefractoryTracker::record_peer_admission(storage::AuId au, net::NodeId peer,
                                              sim::SimTime now) {
  last_peer_admission_[{au, peer}] = now;
}

void RefractoryTracker::prune(sim::SimTime now) {
  for (auto it = last_admission_.begin(); it != last_admission_.end();) {
    it = (now - it->second >= period_) ? last_admission_.erase(it) : std::next(it);
  }
  for (auto it = last_peer_admission_.begin(); it != last_peer_admission_.end();) {
    it = (now - it->second >= period_) ? last_peer_admission_.erase(it) : std::next(it);
  }
}

}  // namespace lockss::sched
