// Refractory periods for unknown / in-debt pollers (§5.1).
//
// "After it admits one such invitation for consideration, a voter enters a
// refractory period during which it automatically rejects all invitations
// from unknown or in-debt pollers. Like the known-peers list, refractory
// periods are maintained on a per AU basis. Consequently, during every
// refractory period, a voter admits at most one invitation from unknown or
// in-debt peers, plus at most one invitation from each of its fellow peers
// with a credit or even grade."
#ifndef LOCKSS_SCHED_REFRACTORY_HPP_
#define LOCKSS_SCHED_REFRACTORY_HPP_

#include <map>
#include <utility>

#include "net/node_id.hpp"
#include "sim/time.hpp"
#include "storage/au.hpp"

namespace lockss::sched {

class RefractoryTracker {
 public:
  explicit RefractoryTracker(sim::SimTime period) : period_(period) {}

  sim::SimTime period() const { return period_; }

  // --- Unknown / in-debt pollers: one admission per AU per period. --------
  bool in_refractory(storage::AuId au, sim::SimTime now) const;
  void record_admission(storage::AuId au, sim::SimTime now);

  // --- Known even/credit pollers: one admission per (peer, AU) per period.
  bool peer_admission_allowed(storage::AuId au, net::NodeId peer, sim::SimTime now) const;
  void record_peer_admission(storage::AuId au, net::NodeId peer, sim::SimTime now);

  // Drops stale state (anything whose period has long passed).
  void prune(sim::SimTime now);

 private:
  sim::SimTime period_;
  std::map<storage::AuId, sim::SimTime> last_admission_;
  std::map<std::pair<storage::AuId, net::NodeId>, sim::SimTime> last_peer_admission_;
};

}  // namespace lockss::sched

#endif  // LOCKSS_SCHED_REFRACTORY_HPP_
