#include "sched/task_schedule.hpp"

#include <algorithm>
#include <cassert>

namespace lockss::sched {

bool TaskSchedule::fits(sim::SimTime start, sim::SimTime end) const {
  if (start >= end) {
    return false;
  }
  // The first interval at-or-after `start` must not begin before `end`.
  auto after = by_start_.lower_bound(start);
  if (after != by_start_.end() && after->first < end) {
    return false;
  }
  // The interval before `start` must have ended by `start`.
  if (after != by_start_.begin()) {
    auto before = std::prev(after);
    if (before->second.end > start) {
      return false;
    }
  }
  return true;
}

std::optional<Reservation> TaskSchedule::reserve(sim::SimTime duration, sim::SimTime not_before,
                                                 sim::SimTime deadline) {
  if (duration <= sim::SimTime::zero() || not_before + duration > deadline) {
    return std::nullopt;
  }
  // Candidate starts: `not_before`, then the end of each busy interval that
  // finishes after `not_before`.
  sim::SimTime candidate = not_before;
  auto it = by_start_.lower_bound(not_before);
  if (it != by_start_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > candidate) {
      candidate = prev->second.end;
    }
  }
  while (candidate + duration <= deadline) {
    if (fits(candidate, candidate + duration)) {
      const ReservationId id = next_id_++;
      by_start_.emplace(candidate, Interval{candidate + duration, id});
      start_by_id_.emplace(id, candidate);
      return Reservation{id, candidate, candidate + duration};
    }
    // Jump to the end of the interval blocking the candidate.
    auto blocker = by_start_.lower_bound(candidate + duration);
    if (blocker == by_start_.begin()) {
      break;  // nothing blocks yet candidate failed: defensive
    }
    candidate = std::prev(blocker)->second.end;
  }
  return std::nullopt;
}

bool TaskSchedule::can_reserve(sim::SimTime duration, sim::SimTime not_before,
                               sim::SimTime deadline) const {
  if (duration <= sim::SimTime::zero() || not_before + duration > deadline) {
    return false;
  }
  sim::SimTime candidate = not_before;
  auto it = by_start_.lower_bound(not_before);
  if (it != by_start_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > candidate) {
      candidate = prev->second.end;
    }
  }
  while (candidate + duration <= deadline) {
    if (fits(candidate, candidate + duration)) {
      return true;
    }
    auto blocker = by_start_.lower_bound(candidate + duration);
    if (blocker == by_start_.begin()) {
      break;
    }
    candidate = std::prev(blocker)->second.end;
  }
  return false;
}

void TaskSchedule::cancel(ReservationId id) {
  auto it = start_by_id_.find(id);
  if (it == start_by_id_.end()) {
    return;
  }
  by_start_.erase(it->second);
  start_by_id_.erase(it);
}

bool TaskSchedule::extend(ReservationId id, sim::SimTime new_end) {
  auto it = start_by_id_.find(id);
  if (it == start_by_id_.end()) {
    return false;
  }
  auto interval_it = by_start_.find(it->second);
  assert(interval_it != by_start_.end());
  if (new_end <= interval_it->first) {
    return false;
  }
  auto next = std::next(interval_it);
  if (next != by_start_.end() && next->first < new_end) {
    return false;
  }
  interval_it->second.end = new_end;
  return true;
}

void TaskSchedule::prune(sim::SimTime now) {
  for (auto it = by_start_.begin(); it != by_start_.end();) {
    if (it->second.end <= now) {
      start_by_id_.erase(it->second.id);
      it = by_start_.erase(it);
    } else {
      // Intervals are non-overlapping and sorted by start; the first one
      // that ends after `now` may still be followed by ended ones only if
      // starts are increasing, so we must scan on. Starts increase and ends
      // increase too (non-overlap), so we can stop here.
      break;
    }
  }
}

double TaskSchedule::busy_fraction(sim::SimTime from, sim::SimTime to) const {
  if (from >= to) {
    return 0.0;
  }
  int64_t busy_ns = 0;
  for (const auto& [start, interval] : by_start_) {
    const sim::SimTime s = std::max(start, from);
    const sim::SimTime e = std::min(interval.end, to);
    if (s < e) {
      busy_ns += (e - s).ns();
    }
  }
  return static_cast<double>(busy_ns) / static_cast<double>((to - from).ns());
}

void TaskSchedule::inject_busy(sim::SimTime start, sim::SimTime end) {
  // Clip the injected interval around existing commitments, inserting the
  // free fragments as anonymous busy time.
  sim::SimTime cursor = start;
  while (cursor < end) {
    auto after = by_start_.lower_bound(cursor);
    if (after != by_start_.begin()) {
      auto before = std::prev(after);
      if (before->second.end > cursor) {
        cursor = before->second.end;
        continue;
      }
    }
    if (after != by_start_.end() && after->first == cursor) {
      // An existing commitment starts exactly here; skip past it.
      cursor = after->second.end;
      continue;
    }
    sim::SimTime fragment_end = end;
    if (after != by_start_.end() && after->first < fragment_end) {
      fragment_end = after->first;
    }
    const ReservationId id = next_id_++;
    by_start_.emplace(cursor, Interval{fragment_end, id});
    start_by_id_.emplace(id, cursor);
    cursor = fragment_end;
  }
}

std::vector<Reservation> TaskSchedule::intervals_after(sim::SimTime from) const {
  std::vector<Reservation> out;
  for (const auto& [start, interval] : by_start_) {
    if (interval.end > from) {
      out.push_back(Reservation{interval.id, start, interval.end});
    }
  }
  return out;
}

}  // namespace lockss::sched
