// Self-clocked invitation-consideration rate limit (§5.1).
//
// "Peers limit the rate at which they even consider poll invitations (i.e.,
// establishing a secure session, checking their schedule, etc.). A peer sets
// this rate limit for considering poll invitations according to the rate of
// poll invitations it sends out to others; this is essentially a
// self-clocking mechanism." §6.3 sizes the budget at 4x the legitimate
// expectation ("we allow up to a total of four times the rate of poll
// invitations that should be expected in the absence of attacks").
//
// Implemented as a token bucket: capacity = burst, refill = rate tokens/sec.
// The rate is updated from the peer's own outbound solicitation counter, so
// it tracks actual legitimate traffic rather than a static constant.
#ifndef LOCKSS_SCHED_RATE_LIMITER_HPP_
#define LOCKSS_SCHED_RATE_LIMITER_HPP_

#include <cstdint>

#include "sim/time.hpp"

namespace lockss::sched {

class InvitationRateLimiter {
 public:
  // `tokens_per_second` may be zero initially (nothing sent yet); a small
  // floor keeps a freshly-booted peer able to consider some invitations.
  InvitationRateLimiter(double tokens_per_second, double burst);

  // Attempts to consume one token at simulated time `now`. Returns false if
  // the bucket is empty (invitation dropped unconsidered, negligible cost).
  bool try_admit(sim::SimTime now);

  // Self-clocking input: the peer reports its own outbound solicitation
  // rate; the limiter allows `multiplier` times that.
  void update_rate(double own_solicitations_per_second, double multiplier);

  double rate_per_second() const { return rate_; }
  double available_tokens(sim::SimTime now) const;

  uint64_t admitted() const { return admitted_; }
  uint64_t rejected() const { return rejected_; }

 private:
  double refill(sim::SimTime now) const;

  double rate_;   // tokens per second
  double burst_;  // bucket capacity
  double tokens_;
  sim::SimTime last_;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace lockss::sched

#endif  // LOCKSS_SCHED_RATE_LIMITER_HPP_
