#include "sched/rate_limiter.hpp"

#include <algorithm>

namespace lockss::sched {
namespace {
// A peer that has never solicited still considers a trickle of invitations,
// or the network could never bootstrap.
constexpr double kMinRatePerSecond = 1.0 / 3600.0;  // one per hour
}  // namespace

InvitationRateLimiter::InvitationRateLimiter(double tokens_per_second, double burst)
    : rate_(std::max(tokens_per_second, kMinRatePerSecond)),
      burst_(std::max(burst, 1.0)),
      tokens_(burst_),
      last_(sim::SimTime::zero()) {}

double InvitationRateLimiter::refill(sim::SimTime now) const {
  const double elapsed = (now - last_).to_seconds();
  return std::min(burst_, tokens_ + elapsed * rate_);
}

bool InvitationRateLimiter::try_admit(sim::SimTime now) {
  tokens_ = refill(now);
  last_ = now;
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    ++admitted_;
    return true;
  }
  ++rejected_;
  return false;
}

void InvitationRateLimiter::update_rate(double own_solicitations_per_second, double multiplier) {
  rate_ = std::max(own_solicitations_per_second * multiplier, kMinRatePerSecond);
}

double InvitationRateLimiter::available_tokens(sim::SimTime now) const { return refill(now); }

}  // namespace lockss::sched
