#include "protocol/poller_session.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "metrics/collector.hpp"
#include "obs/event_log.hpp"

namespace lockss::protocol {
namespace {

// Grace period after the solicitation window before evaluation begins, to
// absorb in-flight votes.
constexpr sim::SimTime kEvaluationGrace = sim::SimTime::hours(1);
// Time allowed for a requested repair block to arrive (transfer of a few MB
// plus scheduling slack at the voter).
constexpr sim::SimTime kRepairTimeout = sim::SimTime::hours(6);
// Fraction of the inter-poll interval by which everything (evaluation,
// repairs, receipts) must be finished.
constexpr double kPollEndFraction = 0.97;

}  // namespace

const char* poll_outcome_name(PollOutcomeKind kind) {
  switch (kind) {
    case PollOutcomeKind::kSuccess:
      return "success";
    case PollOutcomeKind::kInquorate:
      return "inquorate";
    case PollOutcomeKind::kAlarm:
      return "alarm";
  }
  return "?";
}

const char* poll_abort_reason_name(PollAbortReason reason) {
  switch (reason) {
    case PollAbortReason::kNone:
      return "none";
    case PollAbortReason::kQuorumNotReached:
      return "quorum_not_reached";
    case PollAbortReason::kScheduleSaturated:
      return "schedule_saturated";
    case PollAbortReason::kVotesInvalid:
      return "votes_invalid";
    case PollAbortReason::kRepairExhausted:
      return "repair_exhausted";
    case PollAbortReason::kBlockInconclusive:
      return "block_inconclusive";
  }
  return "?";
}

PollerSession::PollerSession(PeerHost& host, storage::AuId au, PollId poll_id)
    : host_(host),
      trace_sink_(host.trace_sink()),
      au_(au),
      poll_id_(poll_id),
      invitees_(host.node_registry()) {}

void PollerSession::trace(obs::EventKind kind, uint32_t other, uint64_t arg) {
  if (trace_sink_ == nullptr) {
    return;
  }
  obs::Event e;
  e.time_ns = host_.simulator().now().ns();
  e.poll = poll_id_;
  e.arg = arg;
  e.origin = static_cast<uint32_t>(host_.id().value);
  e.other = other;
  e.au = static_cast<uint32_t>(au_.value);
  e.kind = kind;
  e.domain = 1;
  trace_sink_->record(e);
}

PollerSession::~PollerSession() {
  for (auto& handle : pending_events_) {
    handle.cancel();
  }
  invitees_.for_each([](net::NodeId, Invitee& invitee) { invitee.timeout.cancel(); });
  repair_timeout_handle_.cancel();
  // A session destroyed mid-poll (its peer departed, or the scenario tore
  // down) must release its still-booked future slots, or the departing
  // peer's calendar leaks phantom busy time into every later admission
  // decision. After a normal conclude() this is a no-op.
  release_reservations();
}

void PollerSession::release_reservations() {
  for (sched::ReservationId rid : active_reservations_) {
    host_.schedule().cancel(rid);
  }
  active_reservations_.clear();
}

void PollerSession::start() {
  const Params& params = host_.params();
  started_ = host_.simulator().now();
  solicitation_end_ = started_ + params.solicitation_window();
  poll_end_ = started_ + params.inter_poll_interval * kPollEndFraction;
  trace(obs::EventKind::kPollOpened);

  // Desynchronization (§5.2): each inner-circle invitee gets an independent
  // uniform-random solicitation time; a poll is a sequence of two-party
  // exchanges, never a synchronous multi-party step.
  const sim::SimTime inner_window_end =
      started_ + params.solicitation_window() * params.outer_circle_start_fraction;
  const auto inner = host_.reference_list(au_).sample(params.inner_circle_size(), host_.rng());
  for (net::NodeId voter : inner) {
    invitees_[voter].inner = true;
    schedule_solicitation(voter, host_.rng().uniform_time(started_, inner_window_end));
  }

  pending_events_.push_back(host_.simulator().schedule_at(
      started_ + params.solicitation_window() * params.outer_circle_start_fraction,
      [&host = host_, id = poll_id_] {
        if (auto* s = host.find_poller_session(id)) {
          s->begin_outer_circle();
        }
      }));
  pending_events_.push_back(host_.simulator().schedule_at(
      solicitation_end_ + kEvaluationGrace, [&host = host_, id = poll_id_] {
        if (auto* s = host.find_poller_session(id)) {
          s->begin_evaluation();
        }
      }));
}

void PollerSession::schedule_solicitation(net::NodeId voter, sim::SimTime at) {
  pending_events_.push_back(
      host_.simulator().schedule_at(at, [&host = host_, id = poll_id_, voter] {
        if (auto* s = host.find_poller_session(id)) {
          s->solicit(voter);
        }
      }));
}

void PollerSession::solicit(net::NodeId voter) {
  if (concluded_) {
    return;
  }
  Invitee* invitee = invitees_.find(voter);
  if (invitee == nullptr || invitee->phase == InviteePhase::kFailed ||
      invitee->phase == InviteePhase::kVoted) {
    return;
  }
  const sim::SimTime now = host_.simulator().now();
  if (now >= solicitation_end_) {
    fail_invitee(voter, /*misbehaved=*/false);
    return;
  }
  ++invitee->attempts;
  // TLS session establishment for this exchange (§4.1).
  host_.meter().charge(sched::EffortCategory::kHandshake, host_.costs().session_handshake_seconds);

  // Mint the introductory effort proof; this occupies the local CPU for the
  // proof's full effort (§5.1), so it is booked on the task schedule.
  const double intro = host_.efforts().introductory_effort();
  const sim::SimTime gen_deadline = std::min(now + sim::SimTime::days(2), solicitation_end_);
  run_task(host_.costs().mbf_generate_time(intro), sched::EffortCategory::kMbfGeneration,
           gen_deadline, [this, voter, intro](bool ok) {
             if (concluded_) {
               return;
             }
             if (!ok) {
               retry_later(voter);
               return;
             }
             Invitee* inv = invitees_.find(voter);
             if (inv == nullptr) {
               return;
             }
             auto poll = std::make_unique<PollMsg>();
             poll->poll_id = poll_id_;
             poll->au = au_;
             poll->introductory_effort = host_.mbf().generate(intro);
             poll->vote_deadline = solicitation_end_;
             host_.send(voter, std::move(poll));
             host_.note_solicitation_sent();
             trace(obs::EventKind::kInvitationSent, static_cast<uint32_t>(voter.value),
                   inv->attempts);
             inv->phase = InviteePhase::kAwaitingAck;
             inv->timeout = host_.simulator().schedule_in(
                 host_.params().poll_ack_timeout, [&host = host_, id = poll_id_, voter] {
                   if (auto* s = host.find_poller_session(id)) {
                     s->ack_timeout(voter);
                   }
                 });
           });
}

void PollerSession::retry_later(net::NodeId voter) {
  Invitee* invitee = invitees_.find(voter);
  if (invitee == nullptr) {
    return;
  }
  // "Re-trying the reluctant peer later in the same vote solicitation phase"
  // (§4.1): periodic retries one jittered gap apart, until the window ends.
  // Against unknown/in-debt standings (0.10/0.20 admission probability) a
  // poller therefore expends several introductory proofs per eventual
  // admission — the waste the §7.3 attack amplifies.
  const sim::SimTime now = host_.simulator().now();
  const sim::SimTime earliest = now + host_.params().min_retry_gap;
  if (earliest >= solicitation_end_) {
    fail_invitee(voter, /*misbehaved=*/false);
    return;
  }
  const sim::SimTime latest =
      std::min(earliest + host_.params().min_retry_gap, solicitation_end_);
  invitee->phase = InviteePhase::kScheduled;
  ++solicitation_retries_;
  trace(obs::EventKind::kSolicitationRetry, static_cast<uint32_t>(voter.value));
  schedule_solicitation(voter, host_.rng().uniform_time(earliest, latest));
}

void PollerSession::fail_invitee(net::NodeId voter, bool misbehaved) {
  Invitee* invitee = invitees_.find(voter);
  if (invitee == nullptr) {
    return;
  }
  invitee->timeout.cancel();
  invitee->phase = InviteePhase::kFailed;
  if (misbehaved) {
    // The voter committed (affirmative PollAck) but never delivered (§5.1).
    host_.known_peers(au_).record_misbehavior(voter, host_.simulator().now());
  }
}

void PollerSession::ack_timeout(net::NodeId voter) {
  Invitee* invitee = invitees_.find(voter);
  if (invitee == nullptr || invitee->phase != InviteePhase::kAwaitingAck) {
    return;
  }
  // Silence is normal: admission control drops invitations without reply
  // (§5.1), and pipe stoppage eats packets. Not misbehavior — retry later.
  ++ack_timeouts_;
  trace(obs::EventKind::kAckTimeout, static_cast<uint32_t>(voter.value));
  retry_later(voter);
}

void PollerSession::vote_timeout(net::NodeId voter) {
  Invitee* invitee = invitees_.find(voter);
  if (invitee == nullptr || invitee->phase != InviteePhase::kAwaitingVote) {
    return;
  }
  ++vote_timeouts_;
  trace(obs::EventKind::kVoteTimeout, static_cast<uint32_t>(voter.value));
  fail_invitee(voter, /*misbehaved=*/true);
}

void PollerSession::on_poll_ack(const PollAckMsg& ack) {
  if (concluded_) {
    return;
  }
  Invitee* invitee = invitees_.find(ack.from);
  if (invitee == nullptr || invitee->phase != InviteePhase::kAwaitingAck) {
    return;  // unsolicited or stale
  }
  invitee->timeout.cancel();
  if (!ack.accept) {
    ++refusals_;
    trace(obs::EventKind::kAckRefused, static_cast<uint32_t>(ack.from.value));
    retry_later(ack.from);
    return;
  }
  ++acks_received_;
  trace(obs::EventKind::kAckReceived, static_cast<uint32_t>(ack.from.value));
  invitee->phase = InviteePhase::kPreparingProof;
  // "Upon receiving the affirmative PollAck, the poller performs the balance
  // of the provable effort" (§5.1). The voter's PollProof hold is short, so
  // the proof must be produced promptly or the slot is lost.
  const double remaining = host_.efforts().remaining_effort();
  const sim::SimTime deadline =
      host_.simulator().now() + host_.params().poll_proof_timeout * 0.8;
  const net::NodeId voter = ack.from;
  run_task(host_.costs().mbf_generate_time(remaining), sched::EffortCategory::kMbfGeneration,
           deadline, [this, voter, remaining](bool ok) {
             if (concluded_) {
               return;
             }
             Invitee* inv = invitees_.find(voter);
             if (inv == nullptr || inv->phase != InviteePhase::kPreparingProof) {
               return;
             }
             if (!ok) {
               // Could not produce the proof in time; the voter will time
               // out and penalize us. Try again later in the window.
               retry_later(voter);
               return;
             }
             auto proof = std::make_unique<PollProofMsg>();
             proof->poll_id = poll_id_;
             proof->au = au_;
             proof->remaining_effort = host_.mbf().generate(remaining);
             proof->vote_nonce = crypto::Digest64{host_.rng().next_u64() | 1};
             inv->nonce = proof->vote_nonce;
             host_.send(voter, std::move(proof));
             inv->phase = InviteePhase::kAwaitingVote;
             inv->timeout = host_.simulator().schedule_in(
                 host_.params().vote_window + host_.params().vote_slack,
                 [&host = host_, id = poll_id_, voter] {
                   if (auto* s = host.find_poller_session(id)) {
                     s->vote_timeout(voter);
                   }
                 });
           });
}

void PollerSession::on_vote(const VoteMsg& vote) {
  if (concluded_) {
    return;
  }
  Invitee* invitee = invitees_.find(vote.from);
  if (invitee == nullptr || invitee->phase != InviteePhase::kAwaitingVote) {
    return;  // "Unsolicited votes are ignored." (§5.1)
  }
  invitee->timeout.cancel();
  invitee->phase = InviteePhase::kVoted;
  trace(obs::EventKind::kVoteReceived, static_cast<uint32_t>(vote.from.value));
  votes_.push_back(
      StoredVote{vote.from, invitee->nonce, vote.block_hashes, vote.vote_effort, invitee->inner});
  // Discovery (§4.2/§5.1): the poller randomly partitions the vote's peer
  // identities into outer-circle nominations and introductions.
  for (net::NodeId nominee : vote.nominations) {
    if (nominee == host_.id() || !nominee.valid()) {
      continue;
    }
    if (host_.rng().bernoulli(host_.params().introduction_fraction)) {
      host_.introductions(au_).add(vote.from, nominee);
    } else {
      nomination_pool_.push_back(nominee);
    }
  }
}

void PollerSession::begin_outer_circle() {
  if (concluded_ || outer_circle_started_) {
    return;
  }
  outer_circle_started_ = true;
  // Candidates: nominated identities that are genuinely new — not us, not
  // already invited, not already in the reference list.
  std::set<net::NodeId> candidates;
  for (net::NodeId nominee : nomination_pool_) {
    if (nominee != host_.id() && !invitees_.contains(nominee) &&
        !host_.reference_list(au_).contains(nominee)) {
      candidates.insert(nominee);
    }
  }
  std::vector<net::NodeId> pool(candidates.begin(), candidates.end());
  const auto outer = host_.rng().sample(pool, host_.params().outer_circle_size);
  const sim::SimTime now = host_.simulator().now();
  for (net::NodeId voter : outer) {
    invitees_[voter].inner = false;
    schedule_solicitation(voter, host_.rng().uniform_time(now, solicitation_end_));
  }
  trace(obs::EventKind::kOuterCircleStarted, 0, outer.size());
}

void PollerSession::begin_evaluation() {
  if (concluded_) {
    return;
  }
  // Give up on anything still in flight; votes can no longer be used.
  // Ordered sweep: reputation crashes land in ascending NodeId order, the
  // seed map's iteration order.
  invitees_.for_each_ordered([this](net::NodeId voter, Invitee& invitee) {
    if (invitee.phase == InviteePhase::kAwaitingAck ||
        invitee.phase == InviteePhase::kScheduled) {
      invitee.timeout.cancel();
      invitee.phase = InviteePhase::kFailed;
    } else if (invitee.phase == InviteePhase::kPreparingProof ||
               invitee.phase == InviteePhase::kAwaitingVote) {
      // Committed exchanges that never completed — the voter may have been
      // cut off (or deserted); it takes the reputation consequence.
      fail_invitee(voter, /*misbehaved=*/true);
    }
  });

  const size_t inner_votes =
      static_cast<size_t>(std::count_if(votes_.begin(), votes_.end(),
                                        [](const StoredVote& v) { return v.inner; }));
  if (inner_votes < host_.params().quorum) {
    conclude(PollOutcomeKind::kInquorate, PollAbortReason::kQuorumNotReached);
    return;
  }

  // Book the evaluation effort: hashing the replica once per vote (each vote
  // has its own nonce) plus verifying each vote's effort proof. If the full
  // set cannot be accommodated, shed outer votes first, then inner votes
  // down to the quorum.
  const double per_vote =
      host_.efforts().vote_computation_effort() +
      host_.costs().mbf_verify_effort(host_.efforts().vote_proof_effort());
  // Order votes inner-first so shedding drops outer votes first.
  std::stable_sort(votes_.begin(), votes_.end(),
                   [](const StoredVote& a, const StoredVote& b) { return a.inner > b.inner; });
  const sim::SimTime now = host_.simulator().now();
  size_t keep = votes_.size();
  while (keep >= host_.params().quorum) {
    const sim::SimTime duration =
        sim::SimTime::seconds(per_vote * static_cast<double>(keep));
    if (host_.schedule().can_reserve(duration, now, poll_end_)) {
      break;
    }
    --keep;
  }
  if (keep < host_.params().quorum) {
    conclude(PollOutcomeKind::kInquorate, PollAbortReason::kScheduleSaturated);
    return;
  }
  votes_.resize(keep);
  const sim::SimTime duration = sim::SimTime::seconds(per_vote * static_cast<double>(keep));
  run_task(duration, sched::EffortCategory::kVoteEvaluation, poll_end_, [this](bool ok) {
    if (concluded_) {
      return;
    }
    if (!ok) {
      conclude(PollOutcomeKind::kInquorate, PollAbortReason::kScheduleSaturated);
      return;
    }
    run_tally();
  });
}

void PollerSession::run_tally() {
  // Verify each vote's effort proof; bogus votes are discarded and their
  // senders penalized (§5.1 vote-desertion defense). Verification effort was
  // charged as part of the evaluation task.
  std::vector<StoredVote> valid;
  valid.reserve(votes_.size());
  for (StoredVote& vote : votes_) {
    const auto verification =
        host_.mbf().verify(vote.proof, host_.efforts().vote_proof_effort());
    if (!verification.ok) {
      host_.known_peers(au_).record_misbehavior(vote.voter, host_.simulator().now());
      continue;
    }
    valid.push_back(std::move(vote));
  }
  votes_ = std::move(valid);

  tally_ = std::make_unique<Tally>(host_.replica(au_), host_.params().quorum,
                                   host_.params().max_disagreeing, host_.node_registry());
  for (const StoredVote& vote : votes_) {
    tally_->add_vote(vote.voter, vote.nonce, vote.hashes, vote.inner);
  }
  if (!tally_->quorate()) {
    conclude(PollOutcomeKind::kInquorate, PollAbortReason::kVotesInvalid);
    return;
  }
  continue_tally();
}

void PollerSession::continue_tally() {
  if (concluded_) {
    return;
  }
  const Tally::Step step = tally_->advance();
  switch (step.kind) {
    case Tally::Step::Kind::kDone:
      maybe_frivolous_repair_then_receipts();
      return;
    case Tally::Step::Kind::kNeedRepair:
      if (repairs_requested_ >= host_.params().max_repairs_served_per_poll) {
        conclude(PollOutcomeKind::kAlarm, PollAbortReason::kRepairExhausted);
        return;
      }
      request_repair(step.block, step.disagreeing);
      return;
    case Tally::Step::Kind::kAlarm:
      conclude(PollOutcomeKind::kAlarm, PollAbortReason::kBlockInconclusive);
      return;
  }
}

void PollerSession::request_repair(uint32_t block, std::vector<net::NodeId> candidates) {
  if (pending_repair_block_.has_value() && *pending_repair_block_ == block) {
    // Re-entry after a failed repair of the same block: keep the remaining
    // candidate list so we do not retry a source that already failed us.
    candidates = pending_repair_candidates_;
  }
  if (candidates.empty()) {
    conclude(PollOutcomeKind::kAlarm, PollAbortReason::kRepairExhausted);
    return;
  }
  const size_t pick = host_.rng().index(candidates.size());
  const net::NodeId source = candidates[pick];
  candidates.erase(candidates.begin() + static_cast<ptrdiff_t>(pick));
  pending_repair_block_ = block;
  pending_repair_candidates_ = std::move(candidates);

  auto request = std::make_unique<RepairRequestMsg>();
  request->poll_id = poll_id_;
  request->au = au_;
  request->block = block;
  host_.send(source, std::move(request));
  ++repairs_requested_;
  trace(obs::EventKind::kRepairRequested, static_cast<uint32_t>(source.value), block);
  repair_timeout_handle_.cancel();
  repair_timeout_handle_ =
      host_.simulator().schedule_in(kRepairTimeout, [&host = host_, id = poll_id_] {
        if (auto* s = host.find_poller_session(id)) {
          s->repair_timeout();
        }
      });
}

void PollerSession::repair_timeout() {
  if (concluded_ || !pending_repair_block_.has_value()) {
    return;
  }
  if (frivolous_phase_) {
    // Frivolous repair went unanswered; proceed to receipts regardless.
    pending_repair_block_.reset();
    send_receipts_and_conclude();
    return;
  }
  request_repair(*pending_repair_block_, pending_repair_candidates_);
}

void PollerSession::on_repair(const RepairMsg& repair) {
  if (concluded_ || !pending_repair_block_.has_value() || repair.block != *pending_repair_block_) {
    return;
  }
  repair_timeout_handle_.cancel();
  trace(obs::EventKind::kRepairReceived, static_cast<uint32_t>(repair.from.value), repair.block);
  // Re-hash the repaired block (§4.3 re-evaluation cost).
  host_.meter().charge(sched::EffortCategory::kVoteEvaluation,
                       host_.efforts().block_hash_effort());
  if (frivolous_phase_) {
    // The content is discarded; the request existed only to probe the
    // voter's willingness to serve repairs (§4.3).
    pending_repair_block_.reset();
    send_receipts_and_conclude();
    return;
  }
  storage::AuReplica& replica = host_.replica(au_);
  replica.set_block_content(repair.block, repair.content);
  replica_was_repaired_ = true;
  host_.on_replica_state_changed(au_);
  pending_repair_block_.reset();
  continue_tally();
}

void PollerSession::maybe_frivolous_repair_then_receipts() {
  if (!votes_.empty() && host_.rng().bernoulli(host_.params().frivolous_repair_probability)) {
    frivolous_phase_ = true;
    const StoredVote& victim = votes_[host_.rng().index(votes_.size())];
    const uint32_t block = static_cast<uint32_t>(
        host_.rng().index(host_.params().au_spec.block_count));
    pending_repair_block_ = block;
    pending_repair_candidates_.clear();
    auto request = std::make_unique<RepairRequestMsg>();
    request->poll_id = poll_id_;
    request->au = au_;
    request->block = block;
    host_.send(victim.voter, std::move(request));
    ++repairs_requested_;
    trace(obs::EventKind::kRepairRequested, static_cast<uint32_t>(victim.voter.value), block);
    repair_timeout_handle_ =
        host_.simulator().schedule_in(kRepairTimeout, [&host = host_, id = poll_id_] {
          if (auto* s = host.find_poller_session(id)) {
            s->repair_timeout();
          }
        });
    return;
  }
  send_receipts_and_conclude();
}

void PollerSession::send_receipts_and_conclude() {
  const sim::SimTime now = host_.simulator().now();
  // Receipts: the byproduct of each vote's effort proof, recovered during
  // evaluation (§5.1 wasteful-strategy defense).
  for (const StoredVote& vote : votes_) {
    auto receipt = std::make_unique<EvaluationReceiptMsg>();
    receipt->poll_id = poll_id_;
    receipt->au = au_;
    receipt->receipt = vote.proof.byproduct;
    host_.send(vote.voter, std::move(receipt));
    // The voter supplied us a valid vote: its grade climbs (§5.1).
    host_.known_peers(au_).record_service_supplied(vote.voter, now);
  }

  // Reference list update (§4.3): drop the inner voters whose votes
  // determined the outcome, insert agreeing outer-circle voters and a few
  // friends.
  ReferenceList& ref = host_.reference_list(au_);
  for (const StoredVote& vote : votes_) {
    if (vote.inner) {
      ref.remove(vote.voter);
      host_.introductions(au_).remove_introducer(vote.voter);
    } else if (tally_ && tally_->voter_agreed_throughout(vote.voter)) {
      ref.insert(vote.voter);
    }
  }
  const auto chosen = host_.rng().sample(host_.friends(), host_.params().friends_per_poll);
  for (net::NodeId f : chosen) {
    ref.insert(f);
  }
  // Keep the list near its target size ("the reference list contains mostly
  // peers that have agreed with the poller in recent polls", §4.1): when
  // outer-circle discovery cannot replace the removed voters — small
  // populations, attack-throttled discovery — top up from known peers in
  // good standing, i.e. peers with a history of valid votes.
  if (ref.size() < host_.params().reference_list_target) {
    const sim::SimTime now = host_.simulator().now();
    const reputation::KnownPeers& known = host_.known_peers(au_);
    std::vector<net::NodeId> pool;
    for (reputation::Standing standing :
         {reputation::Standing::kCredit, reputation::Standing::kEven}) {
      for (net::NodeId peer : known.peers_with_standing(standing, now)) {
        if (peer != host_.id() && !ref.contains(peer)) {
          pool.push_back(peer);
        }
      }
    }
    host_.rng().shuffle(pool);
    for (net::NodeId peer : pool) {
      if (ref.size() >= host_.params().reference_list_target) {
        break;
      }
      ref.insert(peer);
    }
  }
  conclude(PollOutcomeKind::kSuccess);
}

void PollerSession::conclude(PollOutcomeKind kind, PollAbortReason reason) {
  assert((kind == PollOutcomeKind::kSuccess) == (reason == PollAbortReason::kNone));
  if (concluded_) {
    return;
  }
  concluded_ = true;
  for (auto& handle : pending_events_) {
    handle.cancel();
  }
  invitees_.for_each([](net::NodeId, Invitee& invitee) { invitee.timeout.cancel(); });
  repair_timeout_handle_.cancel();
  // Release any still-booked future slots.
  release_reservations();

  PollOutcome outcome;
  outcome.kind = kind;
  outcome.au = au_;
  outcome.poll_id = poll_id_;
  outcome.inner_votes = static_cast<size_t>(
      std::count_if(votes_.begin(), votes_.end(), [](const StoredVote& v) { return v.inner; }));
  outcome.outer_votes = votes_.size() - outcome.inner_votes;
  outcome.repairs = repairs_requested_;
  outcome.replica_was_repaired = replica_was_repaired_;
  outcome.started = started_;
  outcome.concluded = host_.simulator().now();
  outcome.invited = invitees_.size();
  outcome.accepted = acks_received_;
  outcome.refusals = refusals_;
  outcome.ack_timeouts = ack_timeouts_;
  outcome.vote_timeouts = vote_timeouts_;
  outcome.solicitation_retries = solicitation_retries_;
  outcome.abort = reason;
  if (metrics::MetricsCollector* collector = host_.metrics()) {
    collector->record_poll(host_.id(), outcome);
  }
  trace(obs::EventKind::kPollConcluded, 0,
        (static_cast<uint64_t>(kind) << 8) | static_cast<uint64_t>(reason));
  host_.on_poll_concluded(outcome);
  host_.retire_poller_session(poll_id_);
}

void PollerSession::run_task(sim::SimTime duration, sched::EffortCategory category,
                             sim::SimTime deadline, std::function<void(bool)> done) {
  const sim::SimTime now = host_.simulator().now();
  auto reservation = host_.schedule().reserve(duration, now, deadline);
  if (!reservation) {
    done(false);
    return;
  }
  active_reservations_.push_back(reservation->id);
  pending_events_.push_back(host_.simulator().schedule_at(
      reservation->end, [&host = host_, id = poll_id_, rid = reservation->id, category, duration,
                         done = std::move(done)] {
        PollerSession* session = host.find_poller_session(id);
        if (session == nullptr || session->concluded_) {
          return;
        }
        std::erase(session->active_reservations_, rid);
        host.meter().charge(category, duration.to_seconds());
        done(true);
      }));
}

}  // namespace lockss::protocol
