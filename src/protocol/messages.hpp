// The seven LOCKSS protocol messages (Figure 1, §4).
//
//   Poll ──▶ PollAck ──▶ PollProof ──▶ Vote ──▶ [RepairRequest ──▶ Repair]*
//   ──▶ EvaluationReceipt
//
// Wire sizes are estimates of the production encoding and drive transfer
// times; Repair messages carry a whole content block (megabytes), everything
// else is small.
#ifndef LOCKSS_PROTOCOL_MESSAGES_HPP_
#define LOCKSS_PROTOCOL_MESSAGES_HPP_

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/digest.hpp"
#include "crypto/mbf.hpp"
#include "net/message.hpp"
#include "storage/au.hpp"

namespace lockss::protocol {

// Globally unique poll identifier: poller node id in the high 32 bits.
using PollId = uint64_t;

constexpr PollId make_poll_id(net::NodeId poller, uint32_t sequence) {
  return (static_cast<uint64_t>(poller.value) << 32) | sequence;
}
constexpr net::NodeId poll_id_owner(PollId id) {
  return net::NodeId{static_cast<uint32_t>(id >> 32)};
}

// Base for all protocol messages; carries the poll and AU being discussed.
class ProtocolMessage : public net::Message {
 public:
  PollId poll_id = 0;
  storage::AuId au;
};

// Poll: invitation to vote, carrying the introductory effort proof (§5.1).
class PollMsg : public ProtocolMessage {
 public:
  crypto::MbfProof introductory_effort;
  // Deadline by which the poller needs the vote (end of its solicitation
  // window); the voter schedules its computation before this.
  sim::SimTime vote_deadline;

  uint64_t size_bytes() const override { return 1024; }
  const char* type_name() const override { return "Poll"; }
  net::MessageKind kind() const override { return net::MessageKind::kPoll; }
  net::MessagePtr clone() const override { return std::make_unique<PollMsg>(*this); }
};

// PollAck: acceptance or refusal of the invitation (§4.1).
class PollAckMsg : public ProtocolMessage {
 public:
  bool accept = false;

  uint64_t size_bytes() const override { return 256; }
  const char* type_name() const override { return "PollAck"; }
  net::MessageKind kind() const override { return net::MessageKind::kPollAck; }
  net::MessagePtr clone() const override { return std::make_unique<PollAckMsg>(*this); }
};

// PollProof: the balance of the solicitation effort plus the vote nonce.
class PollProofMsg : public ProtocolMessage {
 public:
  crypto::MbfProof remaining_effort;
  crypto::Digest64 vote_nonce;

  uint64_t size_bytes() const override { return 1280; }
  const char* type_name() const override { return "PollProof"; }
  net::MessageKind kind() const override { return net::MessageKind::kPollProof; }
  net::MessagePtr clone() const override { return std::make_unique<PollProofMsg>(*this); }
};

// Vote: running block hashes over (nonce, replica), the vote's own effort
// proof (whose byproduct becomes the evaluation receipt), and discovery
// payload (nominations; the poller partitions them into outer-circle
// candidates and introductions, §4.2/§5.1).
class VoteMsg : public ProtocolMessage {
 public:
  std::vector<crypto::Digest64> block_hashes;
  crypto::MbfProof vote_effort;
  std::vector<net::NodeId> nominations;

  uint64_t size_bytes() const override {
    return 1024 + 20 * block_hashes.size() + 8 * nominations.size();
  }
  const char* type_name() const override { return "Vote"; }
  net::MessageKind kind() const override { return net::MessageKind::kVote; }
  net::MessagePtr clone() const override { return std::make_unique<VoteMsg>(*this); }
};

// RepairRequest: the poller asks a disagreeing voter for one block (§4.3).
class RepairRequestMsg : public ProtocolMessage {
 public:
  uint32_t block = 0;

  uint64_t size_bytes() const override { return 256; }
  const char* type_name() const override { return "RepairRequest"; }
  net::MessageKind kind() const override { return net::MessageKind::kRepairRequest; }
  net::MessagePtr clone() const override { return std::make_unique<RepairRequestMsg>(*this); }
};

// Repair: the block content. Dominates wire cost (megabytes).
class RepairMsg : public ProtocolMessage {
 public:
  uint32_t block = 0;
  uint64_t content = 0;
  uint64_t wire_block_bytes = 0;  // logical block size for transfer time

  uint64_t size_bytes() const override { return 512 + wire_block_bytes; }
  const char* type_name() const override { return "Repair"; }
  net::MessageKind kind() const override { return net::MessageKind::kRepair; }
  net::MessagePtr clone() const override { return std::make_unique<RepairMsg>(*this); }
};

// EvaluationReceipt: unforgeable proof the poller evaluated the vote —
// the byproduct of the vote's MBF proof (§5.1 wasteful-strategy defense).
class EvaluationReceiptMsg : public ProtocolMessage {
 public:
  crypto::Digest64 receipt;

  uint64_t size_bytes() const override { return 256; }
  const char* type_name() const override { return "EvaluationReceipt"; }
  net::MessageKind kind() const override { return net::MessageKind::kEvaluationReceipt; }
  net::MessagePtr clone() const override { return std::make_unique<EvaluationReceiptMsg>(*this); }
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_MESSAGES_HPP_
