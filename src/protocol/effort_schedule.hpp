// Effort sizing for the effort-balancing filters (§5.1).
//
// The paper's invariants, with V = effort to produce a vote (fetch + hash an
// AU replica), h_b = effort to hash one block, gamma = MBF verify asymmetry:
//
//   * vote proof  g_v: the voter's Vote must carry provable effort covering
//     the poller's cost "of hashing a single block and of verifying this
//     effort":                       g_v >= h_b + g_v / gamma
//   * solicitation effort S (split across Poll and PollProof): must exceed
//     the voter's cost of verifying it plus producing the vote (including
//     generating g_v):               S >= S / gamma + V + g_v
//   * introductory effort (the Poll share of S, §6.3): 20% of the *total*
//     effort of a well-behaved poller per voter, sized so that ~5 retries
//     against the 0.2 in-debt admission probability cost the adversary 100%
//     of honest participation:       intro = 0.2 * (S + V)
//
// All quantities are effort-seconds on the reference machine (crypto::
// CostModel). `EffortSchedule` solves the inequalities once per (Params,
// CostModel) pair, with a configurable safety margin.
#ifndef LOCKSS_PROTOCOL_EFFORT_SCHEDULE_HPP_
#define LOCKSS_PROTOCOL_EFFORT_SCHEDULE_HPP_

#include "crypto/cost_model.hpp"
#include "protocol/params.hpp"

namespace lockss::protocol {

class EffortSchedule {
 public:
  EffortSchedule(const Params& params, const crypto::CostModel& costs);

  // V: voter's effort to compute one vote (hash the whole AU).
  double vote_computation_effort() const { return vote_effort_; }
  // h_b: effort to hash a single block.
  double block_hash_effort() const { return block_effort_; }
  // g_v: provable effort the voter embeds in its Vote.
  double vote_proof_effort() const { return vote_proof_effort_; }
  // S: total solicitation effort (intro + remaining).
  double solicitation_effort() const { return solicitation_effort_; }
  // Poll-message share of S (the introductory effort).
  double introductory_effort() const { return introductory_effort_; }
  // PollProof-message share of S.
  double remaining_effort() const { return solicitation_effort_ - introductory_effort_; }
  // Poller's total per-voter effort when everyone behaves: S plus the
  // evaluation hashing of one vote.
  double poller_total_per_voter() const { return solicitation_effort_ + vote_effort_; }

  // The §5.1 inequalities as predicates (also exercised by tests).
  bool vote_proof_covers_block_check(double gamma) const {
    return vote_proof_effort_ >= block_effort_ + vote_proof_effort_ / gamma;
  }
  bool solicitation_covers_vote(double gamma) const {
    return solicitation_effort_ >=
           solicitation_effort_ / gamma + vote_effort_ + vote_proof_effort_;
  }

 private:
  double vote_effort_;
  double block_effort_;
  double vote_proof_effort_;
  double solicitation_effort_;
  double introductory_effort_;
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_EFFORT_SCHEDULE_HPP_
