// Voter-side poll participation (§4.1, §5.1).
//
// `consider_invitation` is the admission-control filter pipeline of §3.3 and
// §5.1, applied to an incoming Poll message in this order (cheapest first):
//
//   1. reputation lookup + introduction bypass (introduced ⇒ even grade);
//   2. for unknown/in-debt pollers: per-AU refractory auto-reject, then the
//      random drop (0.90 unknown / 0.80 debt), then the self-clocked
//      consideration rate limit — all free of charge for the voter;
//      for even/credit pollers: the one-admission-per-peer-per-period
//      allowance (bounded liability), no random drop;
//   3. session handshake + verification of the introductory effort proof
//      (the first *costed* step — garbage proofs are detected here, after
//      they have already burned a refractory admission, which is exactly
//      the §7.3 attack surface);
//   4. task-schedule reservation for the vote computation — no slot means a
//      polite refusal (§5.1 poll-flood defense).
//
// An accepted invitation becomes a VoterSession that awaits the PollProof,
// computes and ships the vote at its reserved slot, serves block repairs,
// and finally checks the evaluation receipt against the remembered MBF
// byproduct, adjusting the poller's grade accordingly.
#ifndef LOCKSS_PROTOCOL_VOTER_SESSION_HPP_
#define LOCKSS_PROTOCOL_VOTER_SESSION_HPP_

#include <cstdint>
#include <memory>

#include "obs/event.hpp"
#include "protocol/host.hpp"
#include "protocol/messages.hpp"

namespace lockss::protocol {

// Why an invitation did not produce a session (statistics / tests).
enum class AdmissionVerdict {
  kAccepted,
  kNoReplica,          // we do not preserve this AU
  kRefractoryReject,   // automatic reject during refractory period
  kRandomDrop,         // lost the 0.90/0.80 coin flip
  kRateLimited,        // consideration budget exhausted
  kPeerAllowanceUsed,  // known peer already admitted this period (refused)
  kBadIntroEffort,     // introductory effort proof failed verification
  kScheduleFull,       // no slot for the vote computation (refused)
};

const char* admission_verdict_name(AdmissionVerdict verdict);

class VoterSession {
 public:
  // Runs the admission pipeline. On acceptance returns a new session (the
  // host must register it under `poll.poll_id`) and sends the affirmative
  // PollAck; on refusal sends a PollAck refusal where the protocol calls for
  // one (silent drops stay silent). `verdict_out` (optional) reports the
  // decision.
  static std::unique_ptr<VoterSession> consider_invitation(PeerHost& host, const PollMsg& poll,
                                                           AdmissionVerdict* verdict_out = nullptr);

  ~VoterSession();
  VoterSession(const VoterSession&) = delete;
  VoterSession& operator=(const VoterSession&) = delete;

  // Message entry points.
  void on_poll_proof(const PollProofMsg& proof);
  void on_repair_request(const RepairRequestMsg& request);
  void on_receipt(const EvaluationReceiptMsg& receipt);

  PollId poll_id() const { return poll_id_; }
  storage::AuId au() const { return au_; }
  net::NodeId poller() const { return poller_; }
  bool finished() const { return finished_; }
  bool vote_sent() const { return vote_sent_; }
  // When the invitation was accepted; the session-liveness audit bounds
  // every live session's age against the inter-poll interval
  // (docs/faults.md).
  sim::SimTime started() const { return started_; }

 private:
  VoterSession(PeerHost& host, const PollMsg& poll, sched::Reservation slot);

  void poll_proof_timeout();
  void compute_and_send_vote();
  void receipt_timeout();
  void finish();

  // Records one lifecycle event on the host's trace sink; a single null
  // check when tracing is off (docs/observability.md).
  void trace(obs::EventKind kind, uint64_t arg = 0);

  PeerHost& host_;
  obs::EventSink* trace_sink_;  // cached host_.trace_sink()
  PollId poll_id_;
  storage::AuId au_;
  net::NodeId poller_;
  sim::SimTime started_;
  sim::SimTime vote_deadline_;

  sched::Reservation slot_;
  bool slot_active_ = true;

  crypto::Digest64 nonce_;
  crypto::Digest64 expected_receipt_;
  bool proof_received_ = false;
  bool vote_sent_ = false;
  uint32_t repairs_served_ = 0;
  bool finished_ = false;

  sim::EventHandle proof_timeout_;
  sim::EventHandle compute_event_;
  sim::EventHandle receipt_timeout_;
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_VOTER_SESSION_HPP_
