#include "protocol/tally.hpp"

#include <algorithm>
#include <cassert>

namespace lockss::protocol {

Tally::Tally(const storage::AuReplica& replica, uint32_t quorum, uint32_t max_disagreeing,
             const net::NodeSlotRegistry* nodes)
    : replica_(replica), quorum_(quorum), max_disagreeing_(max_disagreeing), nodes_(nodes) {}

uint32_t Tally::find_state(net::NodeId voter) const {
  if (nodes_ != nullptr) {
    const uint32_t index = nodes_->index_of(voter);
    if (index != net::NodeSlotRegistry::kUnassigned && index < by_slot_.size() &&
        by_slot_[index] != kNoVote) {
      return by_slot_[index];
    }
    // Fall through: a voter that registered mid-poll would still be indexed
    // in the overflow map it entered under.
  }
  if (overflow_.empty()) {
    return kNoVote;
  }
  const auto it = overflow_.find(voter);
  return it == overflow_.end() ? kNoVote : it->second;
}

void Tally::add_vote(net::NodeId voter, crypto::Digest64 nonce,
                     std::vector<crypto::Digest64> block_hashes, bool inner) {
  assert(block_ == 0 && "votes must be registered before evaluation starts");
  if (find_state(voter) != kNoVote) {
    return;  // duplicate voter: first vote wins (seed std::map::emplace)
  }
  const uint32_t state_index = static_cast<uint32_t>(states_.size());
  VoterState state;
  state.voter = voter;
  state.hashes = std::move(block_hashes);
  state.expected_prev = crypto::vote_chain_seed(nonce);
  state.inner = inner;
  states_.push_back(std::move(state));
  // Keep the evaluation walk in NodeId order (the seed map's order).
  const auto pos = std::lower_bound(order_.begin(), order_.end(), voter,
                                    [&](uint32_t index, net::NodeId id) {
                                      return states_[index].voter < id;
                                    });
  order_.insert(pos, state_index);
  if (nodes_ != nullptr) {
    const uint32_t index = nodes_->index_of(voter);
    if (index != net::NodeSlotRegistry::kUnassigned) {
      if (index >= by_slot_.size()) {
        by_slot_.resize(nodes_->count(), kNoVote);
      }
      by_slot_[index] = state_index;
    } else {
      overflow_.emplace(voter, state_index);
    }
  } else {
    overflow_.emplace(voter, state_index);
  }
  if (inner) {
    ++inner_count_;
  }
}

Tally::Step Tally::advance() {
  const uint32_t blocks = replica_.spec().block_count;
  while (block_ < blocks) {
    // Evaluate the current block against every vote, in NodeId order.
    uint32_t inner_agree = 0;
    uint32_t inner_disagree = 0;
    std::vector<net::NodeId> disagreeing;
    for (uint32_t index : order_) {
      VoterState& state = states_[index];
      const crypto::Digest64 expected = replica_.expected_block_hash(state.expected_prev, block_);
      const bool vote_long_enough = state.hashes.size() > block_;
      const bool agree = vote_long_enough && state.hashes[block_] == expected;
      if (state.inner) {
        if (agree) {
          ++inner_agree;
        } else {
          ++inner_disagree;
          disagreeing.push_back(state.voter);
        }
      }
    }
    if (inner_disagree <= max_disagreeing_) {
      // Landslide agreement: commit the block and move on.
      for (uint32_t index : order_) {
        VoterState& state = states_[index];
        const crypto::Digest64 expected =
            replica_.expected_block_hash(state.expected_prev, block_);
        const bool agree = state.hashes.size() > block_ && state.hashes[block_] == expected;
        if (!agree) {
          state.agreed_throughout = false;
        }
        state.expected_prev = expected;
      }
      ++block_;
      continue;
    }
    if (inner_agree <= max_disagreeing_) {
      // Landslide disagreement: the poller's replica is presumed damaged at
      // this block (§4.3); caller must repair and re-advance.
      return Step{Step::Kind::kNeedRepair, block_, std::move(disagreeing)};
    }
    // No landslide either way: inconclusive.
    return Step{Step::Kind::kAlarm, block_, std::move(disagreeing)};
  }
  done_ = true;
  return Step{Step::Kind::kDone, blocks, {}};
}

std::vector<net::NodeId> Tally::agreeing_voters() const {
  std::vector<net::NodeId> out;
  for (uint32_t index : order_) {
    if (states_[index].agreed_throughout) {
      out.push_back(states_[index].voter);
    }
  }
  return out;
}

std::vector<net::NodeId> Tally::disagreeing_voters() const {
  std::vector<net::NodeId> out;
  for (uint32_t index : order_) {
    if (!states_[index].agreed_throughout) {
      out.push_back(states_[index].voter);
    }
  }
  return out;
}

bool Tally::voter_agreed_throughout(net::NodeId voter) const {
  const uint32_t index = find_state(voter);
  return index != kNoVote && states_[index].agreed_throughout;
}

}  // namespace lockss::protocol
