#include "protocol/tally.hpp"

#include <cassert>

namespace lockss::protocol {

Tally::Tally(const storage::AuReplica& replica, uint32_t quorum, uint32_t max_disagreeing)
    : replica_(replica), quorum_(quorum), max_disagreeing_(max_disagreeing) {}

void Tally::add_vote(net::NodeId voter, crypto::Digest64 nonce,
                     std::vector<crypto::Digest64> block_hashes, bool inner) {
  assert(block_ == 0 && "votes must be registered before evaluation starts");
  VoterState state;
  state.hashes = std::move(block_hashes);
  state.expected_prev = crypto::vote_chain_seed(nonce);
  state.inner = inner;
  auto [it, inserted] = voters_.emplace(voter, std::move(state));
  (void)it;
  if (inserted && inner) {
    ++inner_count_;
  }
}

Tally::Step Tally::advance() {
  const uint32_t blocks = replica_.spec().block_count;
  while (block_ < blocks) {
    // Evaluate the current block against every vote.
    uint32_t inner_agree = 0;
    uint32_t inner_disagree = 0;
    std::vector<net::NodeId> disagreeing;
    for (auto& [voter, state] : voters_) {
      const crypto::Digest64 expected = replica_.expected_block_hash(state.expected_prev, block_);
      const bool vote_long_enough = state.hashes.size() > block_;
      const bool agree = vote_long_enough && state.hashes[block_] == expected;
      if (state.inner) {
        if (agree) {
          ++inner_agree;
        } else {
          ++inner_disagree;
          disagreeing.push_back(voter);
        }
      }
    }
    if (inner_disagree <= max_disagreeing_) {
      // Landslide agreement: commit the block and move on.
      for (auto& [voter, state] : voters_) {
        const crypto::Digest64 expected =
            replica_.expected_block_hash(state.expected_prev, block_);
        const bool agree = state.hashes.size() > block_ && state.hashes[block_] == expected;
        if (!agree) {
          state.agreed_throughout = false;
        }
        state.expected_prev = expected;
      }
      ++block_;
      continue;
    }
    if (inner_agree <= max_disagreeing_) {
      // Landslide disagreement: the poller's replica is presumed damaged at
      // this block (§4.3); caller must repair and re-advance.
      return Step{Step::Kind::kNeedRepair, block_, std::move(disagreeing)};
    }
    // No landslide either way: inconclusive.
    return Step{Step::Kind::kAlarm, block_, std::move(disagreeing)};
  }
  done_ = true;
  return Step{Step::Kind::kDone, blocks, {}};
}

std::vector<net::NodeId> Tally::agreeing_voters() const {
  std::vector<net::NodeId> out;
  for (const auto& [voter, state] : voters_) {
    if (state.agreed_throughout) {
      out.push_back(voter);
    }
  }
  return out;
}

std::vector<net::NodeId> Tally::disagreeing_voters() const {
  std::vector<net::NodeId> out;
  for (const auto& [voter, state] : voters_) {
    if (!state.agreed_throughout) {
      out.push_back(voter);
    }
  }
  return out;
}

bool Tally::voter_agreed_throughout(net::NodeId voter) const {
  auto it = voters_.find(voter);
  return it != voters_.end() && it->second.agreed_throughout;
}

}  // namespace lockss::protocol
