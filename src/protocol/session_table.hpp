// Open-addressed poll-session tables.
//
// A peer's live PollerSession/VoterSession set is keyed by PollId and hit on
// every protocol message dispatch plus every session-scheduled simulator
// event (PR 1's lifetime rule: events resolve their session through
// find_*_session(PollId), never via captured pointers — so the lookup *is*
// the hot path). The seed kept the sessions in std::map<PollId, unique_ptr>;
// sessions are short-lived and few, so the map was all rebalancing and
// node-allocation overhead. This table is the event-slab idea (PR 1)
// applied to a keyed set: sessions live in slots of one flat power-of-two
// array probed linearly from the key hash; find is a load-compare walk of
// expected length ~1, erase is backward-shift (no tombstones, so probe
// chains never rot), and the array reaches a fixed footprint once a peer
// has seen its busiest poll overlap. PollIds already make stale lookups
// safe the way the event slab's generation counters did: ids are never
// reused (poller id ⊕ monotone sequence), so a retired poll's id simply
// misses.
//
// Determinism: lookups by key and size() are order-free; the only
// order-sensitive read is keys_sorted(), which returns PollId order — the
// seed map's iteration order (vote_flood's replay oracle RNG-indexes into
// it). The seed container is preserved as SessionTableReference for the
// equivalence property test and the before/after benchmark.
#ifndef LOCKSS_PROTOCOL_SESSION_TABLE_HPP_
#define LOCKSS_PROTOCOL_SESSION_TABLE_HPP_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "protocol/messages.hpp"
#include "sim/rng.hpp"

namespace lockss::protocol {

template <typename Session>
class SessionTable {
 public:
  Session* find(PollId id) const {
    if (size_ == 0) {
      return nullptr;
    }
    const size_t mask = slots_.size() - 1;
    for (size_t probe = hash(id) & mask;; probe = (probe + 1) & mask) {
      const Slot& slot = slots_[probe];
      if (slot.session == nullptr) {
        return nullptr;
      }
      if (slot.key == id) {
        return slot.session.get();
      }
    }
  }

  bool contains(PollId id) const { return find(id) != nullptr; }

  // Inserts a new session; `id` must not already be present (PollIds are
  // globally unique by construction). Returns the raw session pointer.
  Session* insert(PollId id, std::unique_ptr<Session> session) {
    assert(session != nullptr);
    assert(find(id) == nullptr && "duplicate PollId");
    if ((size_ + 1) * 10 >= slots_.size() * 7) {  // load factor 0.7
      grow();
    }
    Session* raw = session.get();
    const size_t mask = slots_.size() - 1;
    size_t probe = hash(id) & mask;
    while (slots_[probe].session != nullptr) {
      probe = (probe + 1) & mask;
    }
    slots_[probe] = Slot{id, std::move(session)};
    ++size_;
    return raw;
  }

  // Destroys the session for `id`. Returns false if absent. Backward-shift
  // deletion: no tombstones, probe chains stay minimal forever.
  bool erase(PollId id) {
    if (size_ == 0) {
      return false;
    }
    const size_t mask = slots_.size() - 1;
    size_t probe = hash(id) & mask;
    while (true) {
      if (slots_[probe].session == nullptr) {
        return false;
      }
      if (slots_[probe].key == id) {
        break;
      }
      probe = (probe + 1) & mask;
    }
    slots_[probe].session.reset();
    --size_;
    // Shift the rest of the probe chain back over the hole.
    size_t hole = probe;
    for (size_t next = (probe + 1) & mask; slots_[next].session != nullptr;
         next = (next + 1) & mask) {
      const size_t home = hash(slots_[next].key) & mask;
      // Move `next` into the hole unless it already sits in [home, hole].
      const bool in_place = ((next - home) & mask) < ((next - hole) & mask);
      if (!in_place) {
        slots_[hole] = std::move(slots_[next]);
        slots_[next].session.reset();
        hole = next;
      }
    }
    return true;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Live PollIds in ascending order — the seed std::map's iteration order
  // (order-sensitive consumers: vote_flood's replay oracle RNG-indexes the
  // result). Allocates; diagnostics/adversary path, not the protocol path.
  std::vector<PollId> keys_sorted() const {
    std::vector<PollId> keys;
    keys.reserve(size_);
    for (const Slot& slot : slots_) {
      if (slot.session != nullptr) {
        keys.push_back(slot.key);
      }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }

 private:
  struct Slot {
    PollId key = 0;
    std::unique_ptr<Session> session;  // nullptr == empty slot
  };

  // splitmix64 finalizer over the PollId (high half: poller id; low half:
  // sequence) — consecutive sequences spread uniformly.
  static size_t hash(PollId id) { return static_cast<size_t>(sim::splitmix64_mix(id)); }

  void grow() {
    const size_t capacity = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(capacity);
    const size_t mask = capacity - 1;
    for (Slot& slot : old) {
      if (slot.session == nullptr) {
        continue;
      }
      size_t probe = hash(slot.key) & mask;
      while (slots_[probe].session != nullptr) {
        probe = (probe + 1) & mask;
      }
      slots_[probe] = std::move(slot);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

// The seed container (std::map keyed by PollId) behind the same interface,
// for the equivalence property test and the before/after benchmark.
template <typename Session>
class SessionTableReference {
 public:
  Session* find(PollId id) const {
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
  }
  bool contains(PollId id) const { return sessions_.contains(id); }
  Session* insert(PollId id, std::unique_ptr<Session> session) {
    Session* raw = session.get();
    sessions_.emplace(id, std::move(session));
    return raw;
  }
  bool erase(PollId id) { return sessions_.erase(id) > 0; }
  size_t size() const { return sessions_.size(); }
  bool empty() const { return sessions_.empty(); }
  std::vector<PollId> keys_sorted() const {
    std::vector<PollId> keys;
    keys.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) {
      keys.push_back(id);
    }
    return keys;
  }

 private:
  std::map<PollId, std::unique_ptr<Session>> sessions_;
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_SESSION_TABLE_HPP_
