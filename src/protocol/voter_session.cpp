#include "protocol/voter_session.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "obs/event_log.hpp"

namespace lockss::protocol {
namespace {

// How long after sending the vote the voter waits for the evaluation
// receipt, expressed as the evaluation share of the poll plus slack. The
// poller evaluates after its solicitation window closes, so the wait is
// anchored at the poll's vote deadline rather than at the vote send time.
sim::SimTime receipt_deadline(const Params& params, sim::SimTime vote_deadline) {
  return vote_deadline + params.inter_poll_interval * (1.0 - params.solicitation_window_fraction);
}

}  // namespace

const char* admission_verdict_name(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAccepted:
      return "accepted";
    case AdmissionVerdict::kNoReplica:
      return "no_replica";
    case AdmissionVerdict::kRefractoryReject:
      return "refractory_reject";
    case AdmissionVerdict::kRandomDrop:
      return "random_drop";
    case AdmissionVerdict::kRateLimited:
      return "rate_limited";
    case AdmissionVerdict::kPeerAllowanceUsed:
      return "peer_allowance_used";
    case AdmissionVerdict::kBadIntroEffort:
      return "bad_intro_effort";
    case AdmissionVerdict::kScheduleFull:
      return "schedule_full";
  }
  return "?";
}

std::unique_ptr<VoterSession> VoterSession::consider_invitation(PeerHost& host,
                                                                const PollMsg& poll,
                                                                AdmissionVerdict* verdict_out) {
  auto verdict = [&](AdmissionVerdict v) {
    if (verdict_out != nullptr) {
      *verdict_out = v;
    }
  };
  const sim::SimTime now = host.simulator().now();
  const Params& params = host.params();

  if (!host.has_replica(poll.au)) {
    verdict(AdmissionVerdict::kNoReplica);
    return nullptr;  // silent: we cannot vote on an AU we do not hold
  }

  // 1. Reputation standing, with the introduction bypass (§5.1).
  reputation::KnownPeers& reputation = host.known_peers(poll.au);
  reputation::Standing standing = reputation.standing(poll.from, now);
  const bool introduced = (standing == reputation::Standing::kUnknown ||
                           standing == reputation::Standing::kDebt) &&
                          host.introductions(poll.au).introduced(poll.from);
  if (introduced) {
    // "A poll invitation from an introduced peer is treated as if coming
    // from a known peer with an even grade."
    standing = reputation::Standing::kEven;
  }

  const bool privileged = standing == reputation::Standing::kEven ||
                          standing == reputation::Standing::kCredit;
  if (!privileged) {
    // 2a. Unknown / in-debt channel: refractory auto-reject (free), random
    // drop (free), then the consideration rate limit.
    if (host.refractory().in_refractory(poll.au, now)) {
      verdict(AdmissionVerdict::kRefractoryReject);
      return nullptr;
    }
    if (!host.pass_random_drop(standing)) {
      verdict(AdmissionVerdict::kRandomDrop);
      return nullptr;
    }
    if (params.adaptive_acceptance) {
      // §9 (future work): the busier we already are, the less likely we are
      // to accept work from strangers — attackers must spend ever more to
      // push a victim's busyness higher.
      const double busyness =
          host.schedule().busy_fraction(now, now + params.adaptive_window);
      const double extra_drop = std::min(1.0, busyness * params.adaptive_scale);
      if (extra_drop > 0.0 && !host.pass_random_drop_with(extra_drop)) {
        verdict(AdmissionVerdict::kRandomDrop);
        return nullptr;
      }
    }
    if (!host.consideration_limiter().try_admit(now)) {
      verdict(AdmissionVerdict::kRateLimited);
      return nullptr;
    }
    // Admitted for consideration: the refractory period starts *now*, before
    // any verification — a garbage proof still burns the day's admission
    // (the §7.3 attack).
    host.refractory().record_admission(poll.au, now);
  } else {
    // 2b. Known even/credit channel: one admission per peer per period.
    if (!host.refractory().peer_admission_allowed(poll.au, poll.from, now)) {
      auto ack = std::make_unique<PollAckMsg>();
      ack->poll_id = poll.poll_id;
      ack->au = poll.au;
      ack->accept = false;
      host.send(poll.from, std::move(ack));
      verdict(AdmissionVerdict::kPeerAllowanceUsed);
      return nullptr;
    }
    host.refractory().record_peer_admission(poll.au, poll.from, now);
  }

  // 3. Costed consideration: TLS handshake + introductory effort check.
  host.meter().charge(sched::EffortCategory::kHandshake, host.costs().session_handshake_seconds);
  host.meter().charge(sched::EffortCategory::kOverhead, host.costs().message_overhead_seconds);
  const auto verification =
      host.mbf().verify(poll.introductory_effort, host.efforts().introductory_effort());
  host.meter().charge(sched::EffortCategory::kMbfVerification, verification.verify_effort);
  if (!verification.ok) {
    reputation.record_misbehavior(poll.from, now);
    verdict(AdmissionVerdict::kBadIntroEffort);
    return nullptr;  // silent drop; the sender already spent its admission
  }

  // 4. Poll-flood defense: the vote computation must fit in the schedule.
  const sim::SimTime vote_task = sim::SimTime::seconds(
      host.efforts().vote_computation_effort() + host.efforts().vote_proof_effort());
  const sim::SimTime window_end = std::min(now + params.vote_window, poll.vote_deadline);
  auto slot = host.schedule().reserve(vote_task, now + params.poll_proof_timeout * 0.5,
                                      window_end);
  if (!slot) {
    auto ack = std::make_unique<PollAckMsg>();
    ack->poll_id = poll.poll_id;
    ack->au = poll.au;
    ack->accept = false;
    host.send(poll.from, std::move(ack));
    verdict(AdmissionVerdict::kScheduleFull);
    return nullptr;
  }

  if (introduced) {
    // Consume the introduction only once it has actually opened a door.
    host.introductions(poll.au).consume(poll.from);
  }

  auto ack = std::make_unique<PollAckMsg>();
  ack->poll_id = poll.poll_id;
  ack->au = poll.au;
  ack->accept = true;
  host.send(poll.from, std::move(ack));
  verdict(AdmissionVerdict::kAccepted);
  return std::unique_ptr<VoterSession>(new VoterSession(host, poll, *slot));
}

VoterSession::VoterSession(PeerHost& host, const PollMsg& poll, sched::Reservation slot)
    : host_(host),
      trace_sink_(host.trace_sink()),
      poll_id_(poll.poll_id),
      au_(poll.au),
      poller_(poll.from),
      started_(host.simulator().now()),
      vote_deadline_(poll.vote_deadline),
      slot_(slot) {
  proof_timeout_ = host_.simulator().schedule_in(
      host_.params().poll_proof_timeout, [&h = host_, id = poll_id_] {
        if (auto* s = h.find_voter_session(id)) {
          s->poll_proof_timeout();
        }
      });
}

VoterSession::~VoterSession() {
  proof_timeout_.cancel();
  compute_event_.cancel();
  receipt_timeout_.cancel();
  if (slot_active_) {
    host_.schedule().cancel(slot_.id);
  }
}

void VoterSession::poll_proof_timeout() {
  if (finished_ || proof_received_) {
    return;
  }
  // Reservation attack (§5.1): the poller committed us and deserted. Free
  // the slot and grade the poller down.
  host_.known_peers(au_).record_misbehavior(poller_, host_.simulator().now());
  finish();
}

void VoterSession::on_poll_proof(const PollProofMsg& proof) {
  if (finished_ || proof_received_ || proof.from != poller_) {
    return;
  }
  proof_received_ = true;
  proof_timeout_.cancel();
  const sim::SimTime now = host_.simulator().now();

  const auto verification =
      host_.mbf().verify(proof.remaining_effort, host_.efforts().remaining_effort());
  host_.meter().charge(sched::EffortCategory::kMbfVerification, verification.verify_effort);
  if (!verification.ok) {
    host_.known_peers(au_).record_misbehavior(poller_, now);
    finish();
    return;
  }
  nonce_ = proof.vote_nonce;

  sim::SimTime compute_done = slot_.end;
  if (now > slot_.start) {
    // The proof arrived after the reserved slot began (slow generation at
    // the poller or network delay); try to move the work later.
    host_.schedule().cancel(slot_.id);
    slot_active_ = false;
    const sim::SimTime vote_task = sim::SimTime::seconds(
        host_.efforts().vote_computation_effort() + host_.efforts().vote_proof_effort());
    auto moved = host_.schedule().reserve(
        vote_task, now, std::min(now + host_.params().vote_window, vote_deadline_));
    if (!moved) {
      // We committed but can no longer deliver; the poller will grade us
      // down when its vote timeout fires.
      finish();
      return;
    }
    slot_ = *moved;
    slot_active_ = true;
    compute_done = slot_.end;
  }
  compute_event_ = host_.simulator().schedule_at(compute_done, [&h = host_, id = poll_id_] {
    if (auto* s = h.find_voter_session(id)) {
      s->compute_and_send_vote();
    }
  });
}

void VoterSession::compute_and_send_vote() {
  if (finished_) {
    return;
  }
  slot_active_ = false;  // the slot has now been consumed as real work
  // Hash the replica block by block under the poller's nonce and mint the
  // vote's effort proof, remembering its byproduct as the expected receipt.
  host_.meter().charge(sched::EffortCategory::kVoteComputation,
                       host_.efforts().vote_computation_effort());
  host_.meter().charge(sched::EffortCategory::kMbfGeneration,
                       host_.efforts().vote_proof_effort());
  const storage::AuReplica& replica = host_.replica(au_);
  auto vote = std::make_unique<VoteMsg>();
  vote->poll_id = poll_id_;
  vote->au = au_;
  vote->block_hashes = replica.vote_hashes(nonce_);
  vote->vote_effort = host_.mbf().generate(host_.efforts().vote_proof_effort());
  expected_receipt_ = vote->vote_effort.byproduct;
  // Discovery payload (§4.2): a random subset of our reference list,
  // sampled straight into the message (no intermediate pool rebuild).
  host_.reference_list(au_).sample_into(vote->nominations,
                                        host_.params().nominations_per_vote, host_.rng());
  host_.send(poller_, std::move(vote));
  vote_sent_ = true;
  trace(obs::EventKind::kVoteSent);

  const sim::SimTime deadline = receipt_deadline(host_.params(), vote_deadline_);
  const sim::SimTime now = host_.simulator().now();
  const sim::SimTime wait = deadline > now ? deadline - now : sim::SimTime::hours(1);
  receipt_timeout_ = host_.simulator().schedule_in(wait, [&h = host_, id = poll_id_] {
    if (auto* s = h.find_voter_session(id)) {
      s->receipt_timeout();
    }
  });
}

void VoterSession::on_repair_request(const RepairRequestMsg& request) {
  if (finished_ || request.from != poller_ || !vote_sent_) {
    return;
  }
  if (request.block >= host_.params().au_spec.block_count) {
    return;
  }
  if (repairs_served_ >= host_.params().max_repairs_served_per_poll) {
    return;  // abusive poller; it can penalize us, we protect our resources
  }
  ++repairs_served_;
  // Read + ship the block (§4.3). Voters committed to a poll supply "a small
  // number of repairs".
  host_.meter().charge(sched::EffortCategory::kRepairService,
                       host_.efforts().block_hash_effort());
  auto repair = std::make_unique<RepairMsg>();
  repair->poll_id = poll_id_;
  repair->au = au_;
  repair->block = request.block;
  repair->content = host_.replica(au_).block_content(request.block);
  repair->wire_block_bytes = host_.params().au_spec.block_size_bytes();
  host_.send(poller_, std::move(repair));
  trace(obs::EventKind::kRepairServed, request.block);
}

void VoterSession::on_receipt(const EvaluationReceiptMsg& receipt) {
  if (finished_ || receipt.from != poller_ || !vote_sent_) {
    return;
  }
  const sim::SimTime now = host_.simulator().now();
  const bool matched = receipt.receipt == expected_receipt_;
  trace(obs::EventKind::kReceiptChecked, matched ? 1 : 0);
  if (matched) {
    // The poller provably evaluated our vote; the exchange is complete. The
    // poller consumed our service, so its grade steps down (§5.1) — it owes
    // us a vote.
    host_.known_peers(au_).record_service_consumed(poller_, now);
  } else {
    host_.known_peers(au_).record_misbehavior(poller_, now);
  }
  finish();
}

void VoterSession::receipt_timeout() {
  if (finished_) {
    return;
  }
  // Wasteful strategy (§5.1): our vote was solicited but never provably
  // evaluated.
  host_.known_peers(au_).record_misbehavior(poller_, host_.simulator().now());
  finish();
}

void VoterSession::finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  proof_timeout_.cancel();
  compute_event_.cancel();
  receipt_timeout_.cancel();
  if (slot_active_) {
    host_.schedule().cancel(slot_.id);
    slot_active_ = false;
  }
  host_.retire_voter_session(poll_id_);
}

void VoterSession::trace(obs::EventKind kind, uint64_t arg) {
  if (trace_sink_ == nullptr) {
    return;
  }
  obs::Event e;
  e.time_ns = host_.simulator().now().ns();
  e.poll = poll_id_;
  e.arg = arg;
  e.origin = static_cast<uint32_t>(host_.id().value);
  e.other = static_cast<uint32_t>(poller_.value);
  e.au = static_cast<uint32_t>(au_.value);
  e.kind = kind;
  e.domain = 1;
  trace_sink_->record(e);
}

}  // namespace lockss::protocol
