// The environment a protocol session runs in.
//
// PollerSession and VoterSession are written against this interface instead
// of the concrete peer::Peer so the protocol layer depends only on the
// substrates (clean bottom-up layering) and so tests/adversaries can provide
// purpose-built hosts.
//
// Lifetime rule: sessions schedule simulator events that resolve themselves
// through find_poller_session()/find_voter_session() by PollId — never by
// captured session pointers — so a host may destroy a retired session at any
// time without dangling callbacks.
#ifndef LOCKSS_PROTOCOL_HOST_HPP_
#define LOCKSS_PROTOCOL_HOST_HPP_

#include <memory>
#include <vector>

#include "crypto/cost_model.hpp"
#include "crypto/mbf.hpp"
#include "net/message.hpp"
#include "net/node_id.hpp"
#include "net/node_slot_registry.hpp"
#include "protocol/effort_schedule.hpp"
#include "protocol/messages.hpp"
#include "protocol/params.hpp"
#include "protocol/reference_list.hpp"
#include "reputation/introductions.hpp"
#include "reputation/known_peers.hpp"
#include "sched/effort_meter.hpp"
#include "sched/rate_limiter.hpp"
#include "sched/refractory.hpp"
#include "sched/task_schedule.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "storage/replica.hpp"

namespace lockss::metrics {
class MetricsCollector;
}  // namespace lockss::metrics

namespace lockss::obs {
class EventSink;
}  // namespace lockss::obs

namespace lockss::protocol {

class PollerSession;
class VoterSession;

enum class PollOutcomeKind {
  kSuccess,    // landslide agreement on every block (after repairs)
  kInquorate,  // fewer than quorum inner votes could be evaluated
  kAlarm,      // some block was inconclusive — operator attention (§4.3)
};

const char* poll_outcome_name(PollOutcomeKind kind);

// Why a poll ended without full success — one reason per non-success
// conclusion site in PollerSession, so lossy-network campaigns can tell
// "not enough voters answered" from "the votes disagreed" (docs/faults.md).
enum class PollAbortReason : uint8_t {
  kNone = 0,            // the poll succeeded
  kQuorumNotReached,    // too few affirmative voters by solicitation end
  kScheduleSaturated,   // evaluation effort could not be booked or was shed
  kVotesInvalid,        // votes arrived but too few evaluated as valid
  kRepairExhausted,     // repair budget spent (or no candidate) on a bad block
  kBlockInconclusive,   // a block tally stayed inconclusive — raise the alarm
};
constexpr size_t kPollAbortReasonCount = 6;

const char* poll_abort_reason_name(PollAbortReason reason);

struct PollOutcome {
  PollOutcomeKind kind = PollOutcomeKind::kInquorate;
  storage::AuId au;
  PollId poll_id = 0;
  size_t inner_votes = 0;
  size_t outer_votes = 0;
  size_t repairs = 0;
  bool replica_was_repaired = false;
  sim::SimTime started;
  sim::SimTime concluded;
  // Solicitation diagnostics.
  size_t invited = 0;        // distinct voters solicited
  size_t accepted = 0;       // affirmative PollAcks
  size_t refusals = 0;       // negative PollAcks
  size_t ack_timeouts = 0;   // silent drops / lost invitations
  size_t vote_timeouts = 0;  // committed voters that never delivered
  // Solicitation rounds that had to reschedule because the rate limiter (or
  // the task schedule) pushed the next invitation into the future.
  size_t solicitation_retries = 0;
  // kNone on success; otherwise the conclusion site that ended the poll.
  PollAbortReason abort = PollAbortReason::kNone;
};

class PeerHost {
 public:
  virtual ~PeerHost() = default;

  // --- Identity & environment ---------------------------------------------
  virtual net::NodeId id() const = 0;
  virtual const Params& params() const = 0;
  virtual const EffortSchedule& efforts() const = 0;
  virtual const crypto::CostModel& costs() const = 0;
  virtual sim::Simulator& simulator() = 0;
  virtual sim::Rng& rng() = 0;
  virtual crypto::MbfService& mbf() = 0;

  // --- State owned by the peer ---------------------------------------------
  virtual storage::AuReplica& replica(storage::AuId au) = 0;
  virtual bool has_replica(storage::AuId au) const = 0;
  virtual sched::TaskSchedule& schedule() = 0;
  virtual sched::EffortMeter& meter() = 0;
  virtual sched::InvitationRateLimiter& consideration_limiter() = 0;
  virtual sched::RefractoryTracker& refractory() = 0;
  virtual reputation::KnownPeers& known_peers(storage::AuId au) = 0;
  virtual reputation::IntroductionTable& introductions(storage::AuId au) = 0;
  virtual ReferenceList& reference_list(storage::AuId au) = 0;
  // The operator-maintained friends list (§4.1). Returned by reference: it
  // is read on every poll conclusion and must not be copied per call.
  virtual const std::vector<net::NodeId>& friends() const = 0;
  // The deployment-wide identity registry behind the dense per-AU
  // substrates, or nullptr for an unregistered (hand-built) host — the
  // substrates then run their ordered-map fallback with identical behavior.
  virtual const net::NodeSlotRegistry* node_registry() const = 0;

  // --- Reputation-aware admission helper -----------------------------------
  // The random-drop stage; implemented by the host so adversarial hosts can
  // observe/override it.
  virtual bool pass_random_drop(reputation::Standing standing) = 0;
  // A drop with an explicit probability (adaptive acceptance, §9).
  virtual bool pass_random_drop_with(double drop_probability) = 0;

  // --- Messaging ------------------------------------------------------------
  // Stamps `from` with id() and hands the message to the network.
  virtual void send(net::NodeId to, std::unique_ptr<ProtocolMessage> message) = 0;

  // --- Session registry ------------------------------------------------------
  virtual PollerSession* find_poller_session(PollId id) = 0;
  virtual VoterSession* find_voter_session(PollId id) = 0;
  // Asks the host to destroy the session (deferred; never reentrant).
  virtual void retire_poller_session(PollId id) = 0;
  virtual void retire_voter_session(PollId id) = 0;

  // --- Metrics ----------------------------------------------------------------
  // The deployment-wide metrics sink, or nullptr when this host runs
  // uninstrumented (unit tests, hand-built examples). Sessions record poll
  // outcomes straight into the collector's dense (peer, AU) slot arrays;
  // on_poll_concluded below stays the host-side notification hook (observer
  // callbacks, host bookkeeping), not a metrics path.
  virtual metrics::MetricsCollector* metrics() = 0;

  // --- Observability -----------------------------------------------------------
  // The host's protocol event sink (docs/observability.md), or nullptr when
  // tracing is off. Sessions cache the pointer at construction, so a
  // disabled trace costs one null check per hook site. Defaulted (not pure)
  // so hand-built test hosts stay oblivious to tracing.
  virtual obs::EventSink* trace_sink() { return nullptr; }

  // --- Notifications ----------------------------------------------------------
  virtual void on_poll_concluded(const PollOutcome& outcome) = 0;
  // A repair changed the replica's damaged state (metrics hook).
  virtual void on_replica_state_changed(storage::AuId au) = 0;
  // Outbound solicitation sent (self-clocking input for the rate limiter).
  virtual void note_solicitation_sent() = 0;
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_HOST_HPP_
