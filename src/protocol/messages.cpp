#include "protocol/messages.hpp"

// Message classes are header-only; this translation unit anchors vtables.
