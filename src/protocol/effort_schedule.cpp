#include "protocol/effort_schedule.hpp"

#include <cassert>

namespace lockss::protocol {

EffortSchedule::EffortSchedule(const Params& params, const crypto::CostModel& costs) {
  const double gamma = costs.mbf_verify_asymmetry;
  assert(gamma > 1.0);

  vote_effort_ = costs.hash_time(params.au_spec.size_bytes).to_seconds();
  block_effort_ = vote_effort_ / params.au_spec.block_count;

  // g_v >= h_b * gamma / (gamma - 1), inflated by the margin.
  vote_proof_effort_ = params.effort_margin * block_effort_ * gamma / (gamma - 1.0);

  // S >= (V + g_v) * gamma / (gamma - 1), inflated by the margin.
  solicitation_effort_ =
      params.effort_margin * (vote_effort_ + vote_proof_effort_) * gamma / (gamma - 1.0);

  // intro = fraction of the poller's total per-voter effort (§6.3).
  introductory_effort_ =
      params.introductory_effort_fraction * (solicitation_effort_ + vote_effort_);
  // The remaining effort must stay positive; with the default parameters
  // intro ≈ 0.2 * 22.8s ≈ 4.6s out of S ≈ 12.0s.
  assert(introductory_effort_ < solicitation_effort_);
}

}  // namespace lockss::protocol
