// Poller-side poll state machine (§4.1–§4.3).
//
// One PollerSession drives one poll on one AU through:
//
//   1. *Vote solicitation* — the inner circle (2x quorum, sampled from the
//      reference list) is invited at independent random times spread across
//      the solicitation window (the desynchronization defense, §5.2);
//      refusals and timeouts are retried later in the same window.
//   2. *Outer circle* — once inner solicitation concludes, a sample of the
//      nominations accumulated from votes is solicited identically (§4.2).
//   3. *Evaluation* — a block-at-a-time tally (protocol/tally.hpp); landslide
//      disagreement triggers block repairs from disagreeing voters; an
//      occasional frivolous repair penalizes repair free-riding (§4.3).
//   4. *Receipts & reference list update* — evaluation receipts (the MBF
//      byproducts of the vote proofs) go to every evaluated voter; used
//      inner voters leave the reference list, agreeing outer voters and a
//      few friends enter (§4.3).
//
// The session never slows down or speeds up in response to adversity: the
// next poll is scheduled exactly one inter-poll interval after this poll
// started, whatever happened (§5.1 rate limitation).
#ifndef LOCKSS_PROTOCOL_POLLER_SESSION_HPP_
#define LOCKSS_PROTOCOL_POLLER_SESSION_HPP_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "obs/event.hpp"
#include "protocol/host.hpp"
#include "protocol/invitee_table.hpp"
#include "protocol/messages.hpp"
#include "protocol/tally.hpp"

namespace lockss::protocol {

class PollerSession {
 public:
  PollerSession(PeerHost& host, storage::AuId au, PollId poll_id);
  ~PollerSession();

  PollerSession(const PollerSession&) = delete;
  PollerSession& operator=(const PollerSession&) = delete;

  // Samples the inner circle and schedules its solicitations. Call once.
  void start();

  // Message entry points (dispatched by the host).
  void on_poll_ack(const PollAckMsg& ack);
  void on_vote(const VoteMsg& vote);
  void on_repair(const RepairMsg& repair);

  PollId poll_id() const { return poll_id_; }
  storage::AuId au() const { return au_; }
  bool concluded() const { return concluded_; }
  // When the poll began; the session-liveness audit bounds every live
  // session's age against the inter-poll interval (docs/faults.md).
  sim::SimTime started() const { return started_; }

  // Visible for tests and diagnostics.
  size_t votes_received() const { return votes_.size(); }
  size_t invitees() const { return invitees_.size(); }

 private:
  enum class InviteePhase : uint8_t {
    kScheduled,      // solicitation event queued
    kAwaitingAck,    // Poll sent
    kPreparingProof, // affirmative ack received, generating remaining effort
    kAwaitingVote,   // PollProof sent
    kVoted,          // vote stored
    kFailed,         // gave up on this voter for this poll
  };

  struct Invitee {
    bool inner = false;
    InviteePhase phase = InviteePhase::kScheduled;
    crypto::Digest64 nonce;
    sim::EventHandle timeout;
    uint32_t attempts = 0;
  };

  struct StoredVote {
    net::NodeId voter;
    crypto::Digest64 nonce;
    std::vector<crypto::Digest64> hashes;
    crypto::MbfProof proof;
    bool inner = false;
  };

  // --- Solicitation ---------------------------------------------------------
  void schedule_solicitation(net::NodeId voter, sim::SimTime at);
  void solicit(net::NodeId voter);
  void retry_later(net::NodeId voter);
  void fail_invitee(net::NodeId voter, bool misbehaved);
  void ack_timeout(net::NodeId voter);
  void vote_timeout(net::NodeId voter);
  void begin_outer_circle();

  // --- Evaluation -----------------------------------------------------------
  void begin_evaluation();
  void run_tally();
  void continue_tally();
  void request_repair(uint32_t block, std::vector<net::NodeId> candidates);
  void repair_timeout();
  void maybe_frivolous_repair_then_receipts();
  void send_receipts_and_conclude();
  void conclude(PollOutcomeKind kind, PollAbortReason reason = PollAbortReason::kNone);
  // Cancels every still-booked schedule slot (conclude() and the
  // destructor must stay in lockstep — a slot surviving either path leaks
  // phantom busy time into later admission decisions).
  void release_reservations();

  // Books an effort task on the local schedule; invokes `done(true)` at the
  // task's end (charging `category`) or `done(false)` if no slot fits before
  // `deadline`.
  void run_task(sim::SimTime duration, sched::EffortCategory category, sim::SimTime deadline,
                std::function<void(bool)> done);

  // Records one lifecycle event on the host's trace sink; a single null
  // check when tracing is off (docs/observability.md).
  void trace(obs::EventKind kind, uint32_t other = 0, uint64_t arg = 0);

  PeerHost& host_;
  obs::EventSink* trace_sink_;  // cached host_.trace_sink()
  storage::AuId au_;
  PollId poll_id_;

  sim::SimTime started_;
  sim::SimTime solicitation_end_;
  sim::SimTime poll_end_;

  // Flat slot-registry-backed invitee records (seed: std::map; see
  // protocol/invitee_table.hpp for the layout and determinism notes).
  InviteeTable<Invitee> invitees_;
  std::vector<StoredVote> votes_;
  std::vector<net::NodeId> nomination_pool_;  // outer-circle candidates
  bool outer_circle_started_ = false;

  std::unique_ptr<Tally> tally_;
  size_t acks_received_ = 0;
  size_t refusals_ = 0;
  size_t ack_timeouts_ = 0;
  size_t vote_timeouts_ = 0;
  size_t solicitation_retries_ = 0;
  size_t repairs_requested_ = 0;
  bool replica_was_repaired_ = false;
  std::optional<uint32_t> pending_repair_block_;
  std::vector<net::NodeId> pending_repair_candidates_;
  sim::EventHandle repair_timeout_handle_;
  bool frivolous_phase_ = false;

  bool concluded_ = false;
  std::vector<sim::EventHandle> pending_events_;
  // Future schedule slots booked by run_task; released if the poll concludes
  // before they run (completed tasks remove themselves).
  std::vector<sched::ReservationId> active_reservations_;
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_POLLER_SESSION_HPP_
