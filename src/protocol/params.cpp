#include "protocol/params.hpp"

// Params is header-only; this translation unit anchors the library.
