// Block-at-a-time vote evaluation with landslide outcomes (§4.3).
//
// The poller walks the AU block by block. For each voter it maintains the
// running hash chain that the voter *should* have produced had its replica
// matched the poller's (each voter gets its own nonce, so chains differ per
// voter). At each block:
//
//   * landslide agreement (≤ max_disagreeing inner votes disagree): advance;
//   * landslide disagreement (≤ max_disagreeing inner votes agree): the
//     poller's own block is presumed damaged — the caller fetches a repair
//     from a disagreeing voter, applies it, and re-evaluates the block;
//   * anything else: inconclusive — raise an alarm for the operator.
//
// Tally is a pure in-memory state machine; messaging (RepairRequest/Repair)
// is the PollerSession's job. Outer-circle votes are evaluated for agreement
// (they feed discovery) but never counted toward the outcome ("the outcome
// of the poll is computed only from inner-circle votes", §4.2).
#ifndef LOCKSS_PROTOCOL_TALLY_HPP_
#define LOCKSS_PROTOCOL_TALLY_HPP_

#include <cstdint>
#include <map>
#include <vector>

#include "crypto/digest.hpp"
#include "net/node_id.hpp"
#include "storage/replica.hpp"

namespace lockss::protocol {

class Tally {
 public:
  // `replica` must outlive the tally and reflects repairs as they land.
  Tally(const storage::AuReplica& replica, uint32_t quorum, uint32_t max_disagreeing);

  // Registers a vote. `inner` marks inner-circle votes (outcome-determining).
  void add_vote(net::NodeId voter, crypto::Digest64 nonce,
                std::vector<crypto::Digest64> block_hashes, bool inner);

  size_t inner_votes() const { return inner_count_; }
  size_t total_votes() const { return voters_.size(); }
  bool quorate() const { return inner_count_ >= quorum_; }

  struct Step {
    enum class Kind {
      kDone,        // every block landslide-agreed
      kNeedRepair,  // current block landslide-disagrees with the poller
      kAlarm,       // current block inconclusive
    };
    Kind kind = Kind::kDone;
    uint32_t block = 0;
    // For kNeedRepair: inner-circle voters disagreeing on this block
    // (repair candidates, §4.3).
    std::vector<net::NodeId> disagreeing;
  };

  // Evaluates blocks from the current position until a repair is needed, an
  // alarm fires, or the AU is exhausted. Idempotent when already finished.
  Step advance();

  // Re-evaluates the current block after the caller repaired the replica.
  // Equivalent to calling advance() again: chains before the current block
  // are unaffected by a repair at the current block.
  Step resume_after_repair() { return advance(); }

  // Voters that were in the agreeing set at every block the tally has
  // passed. Valid once advance() returned kDone.
  std::vector<net::NodeId> agreeing_voters() const;
  std::vector<net::NodeId> disagreeing_voters() const;
  bool voter_agreed_throughout(net::NodeId voter) const;

  uint32_t current_block() const { return block_; }

 private:
  struct VoterState {
    std::vector<crypto::Digest64> hashes;  // the vote as received
    crypto::Digest64 expected_prev;        // poller-side chain before current block
    bool inner = false;
    bool agreed_throughout = true;
  };

  const storage::AuReplica& replica_;
  uint32_t quorum_;
  uint32_t max_disagreeing_;
  // std::map for deterministic iteration.
  std::map<net::NodeId, VoterState> voters_;
  size_t inner_count_ = 0;
  uint32_t block_ = 0;
  bool done_ = false;
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_TALLY_HPP_
