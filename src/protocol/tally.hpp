// Block-at-a-time vote evaluation with landslide outcomes (§4.3).
//
// The poller walks the AU block by block. For each voter it maintains the
// running hash chain that the voter *should* have produced had its replica
// matched the poller's (each voter gets its own nonce, so chains differ per
// voter). At each block:
//
//   * landslide agreement (≤ max_disagreeing inner votes disagree): advance;
//   * landslide disagreement (≤ max_disagreeing inner votes agree): the
//     poller's own block is presumed damaged — the caller fetches a repair
//     from a disagreeing voter, applies it, and re-evaluates the block;
//   * anything else: inconclusive — raise an alarm for the operator.
//
// Tally is a pure in-memory state machine; messaging (RepairRequest/Repair)
// is the PollerSession's job. Outer-circle votes are evaluated for agreement
// (they feed discovery) but never counted toward the outcome ("the outcome
// of the poll is computed only from inner-circle votes", §4.2).
//
// Layout: votes land in a flat vector in arrival order; a slot-keyed index
// array (NodeSlotRegistry) gives O(1) duplicate detection and
// voter_agreed_throughout(), and a NodeId-sorted order vector drives every
// walk — the per-block evaluation loop touches contiguous state in exactly
// the seed std::map's NodeId order (determinism: the disagreeing/agreeing
// voter lists feed repair-source RNG picks and reference-list updates). The
// seed implementation is preserved as TallyReference
// (protocol/reference_tables.hpp) and property-checked equivalent.
#ifndef LOCKSS_PROTOCOL_TALLY_HPP_
#define LOCKSS_PROTOCOL_TALLY_HPP_

#include <cstdint>
#include <map>
#include <vector>

#include "crypto/digest.hpp"
#include "net/node_id.hpp"
#include "net/node_slot_registry.hpp"
#include "storage/replica.hpp"

namespace lockss::protocol {

class Tally {
 public:
  // `replica` must outlive the tally and reflects repairs as they land.
  // `nodes` may be null (unit tests): every voter then takes the
  // overflow-map index path; observable behavior is identical either way.
  Tally(const storage::AuReplica& replica, uint32_t quorum, uint32_t max_disagreeing,
        const net::NodeSlotRegistry* nodes = nullptr);

  // Registers a vote. `inner` marks inner-circle votes (outcome-determining).
  void add_vote(net::NodeId voter, crypto::Digest64 nonce,
                std::vector<crypto::Digest64> block_hashes, bool inner);

  size_t inner_votes() const { return inner_count_; }
  size_t total_votes() const { return states_.size(); }
  bool quorate() const { return inner_count_ >= quorum_; }

  struct Step {
    enum class Kind {
      kDone,        // every block landslide-agreed
      kNeedRepair,  // current block landslide-disagrees with the poller
      kAlarm,       // current block inconclusive
    };
    Kind kind = Kind::kDone;
    uint32_t block = 0;
    // For kNeedRepair: inner-circle voters disagreeing on this block
    // (repair candidates, §4.3).
    std::vector<net::NodeId> disagreeing;
  };

  // Evaluates blocks from the current position until a repair is needed, an
  // alarm fires, or the AU is exhausted. Idempotent when already finished.
  Step advance();

  // Re-evaluates the current block after the caller repaired the replica.
  // Equivalent to calling advance() again: chains before the current block
  // are unaffected by a repair at the current block.
  Step resume_after_repair() { return advance(); }

  // Voters that were in the agreeing set at every block the tally has
  // passed. Valid once advance() returned kDone.
  std::vector<net::NodeId> agreeing_voters() const;
  std::vector<net::NodeId> disagreeing_voters() const;
  bool voter_agreed_throughout(net::NodeId voter) const;

  uint32_t current_block() const { return block_; }

 private:
  static constexpr uint32_t kNoVote = UINT32_MAX;

  struct VoterState {
    net::NodeId voter;
    std::vector<crypto::Digest64> hashes;  // the vote as received
    crypto::Digest64 expected_prev;        // poller-side chain before current block
    bool inner = false;
    bool agreed_throughout = true;
  };

  // Index into states_ for `voter`, or kNoVote.
  uint32_t find_state(net::NodeId voter) const;

  const storage::AuReplica& replica_;
  uint32_t quorum_;
  uint32_t max_disagreeing_;
  const net::NodeSlotRegistry* nodes_;
  std::vector<VoterState> states_;     // arrival order; indices stable
  std::vector<uint32_t> order_;        // state indices sorted by voter NodeId
  std::vector<uint32_t> by_slot_;      // registry slot → state index (lazy)
  std::map<net::NodeId, uint32_t> overflow_;  // unregistered voters
  size_t inner_count_ = 0;
  uint32_t block_ = 0;
  bool done_ = false;
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_TALLY_HPP_
