// Per-AU reference list (§4.1, §4.3).
//
// "The reference list contains mostly peers that have agreed with the poller
// in recent polls on the AU, and a few peers from its static friends list."
// At poll conclusion the poller "updates its reference list by removing all
// voters whose votes determined the poll outcome and by inserting all
// agreeing outer-circle voters and some peers from the friends list."
#ifndef LOCKSS_PROTOCOL_REFERENCE_LIST_HPP_
#define LOCKSS_PROTOCOL_REFERENCE_LIST_HPP_

#include <set>
#include <vector>

#include "net/node_id.hpp"
#include "sim/rng.hpp"

namespace lockss::protocol {

class ReferenceList {
 public:
  explicit ReferenceList(net::NodeId self) : self_(self) {}

  // Insert/remove keep the list duplicate-free and never admit `self`.
  void insert(net::NodeId peer);
  void remove(net::NodeId peer);
  bool contains(net::NodeId peer) const { return members_.contains(peer); }
  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  // Uniform random sample of up to `k` distinct members.
  std::vector<net::NodeId> sample(size_t k, sim::Rng& rng) const;

  std::vector<net::NodeId> members() const {
    return std::vector<net::NodeId>(members_.begin(), members_.end());
  }

 private:
  net::NodeId self_;
  std::set<net::NodeId> members_;  // ordered for deterministic iteration
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_REFERENCE_LIST_HPP_
