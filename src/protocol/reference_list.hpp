// Per-AU reference list (§4.1, §4.3).
//
// "The reference list contains mostly peers that have agreed with the poller
// in recent polls on the AU, and a few peers from its static friends list."
// At poll conclusion the poller "updates its reference list by removing all
// voters whose votes determined the poll outcome and by inserting all
// agreeing outer-circle voters and some peers from the friends list."
//
// Layout: the canonical membership is a NodeId-sorted flat vector (the
// iteration/sampling order of the seed's std::set, which feeds RNG draws
// and solicitation order — determinism-critical). A NodeSlotRegistry-indexed
// bit array accelerates contains() to one load for registered identities;
// insert/remove are a binary search plus a small POD memmove. sample()
// shuffles a reused scratch buffer with draws identical to the seed's
// rng.sample(members, k) — no per-call set→vector rebuild, no allocation at
// steady state. The seed implementation is preserved as
// ReferenceListReference (protocol/reference_tables.hpp) and
// property-checked equivalent, sample draws included.
#ifndef LOCKSS_PROTOCOL_REFERENCE_LIST_HPP_
#define LOCKSS_PROTOCOL_REFERENCE_LIST_HPP_

#include <vector>

#include "net/node_id.hpp"
#include "net/node_slot_registry.hpp"
#include "sim/rng.hpp"

namespace lockss::protocol {

class ReferenceList {
 public:
  // `nodes` may be null (hand-built hosts, unit tests): contains() then
  // always binary-searches the sorted member vector.
  explicit ReferenceList(net::NodeId self, const net::NodeSlotRegistry* nodes = nullptr)
      : self_(self), nodes_(nodes) {}

  // Insert/remove keep the list duplicate-free and never admit `self`.
  void insert(net::NodeId peer);
  void remove(net::NodeId peer);
  bool contains(net::NodeId peer) const;
  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  // Uniform random sample of up to `k` distinct members, replacing `out`
  // (its capacity is reused — sessions pass a scratch vector and the steady
  // state allocates nothing). Draw-for-draw identical to the seed's
  // rng.sample(members(), k).
  void sample_into(std::vector<net::NodeId>& out, size_t k, sim::Rng& rng) const;

  std::vector<net::NodeId> sample(size_t k, sim::Rng& rng) const {
    std::vector<net::NodeId> out;
    sample_into(out, k, rng);
    return out;
  }

  // Members in ascending NodeId order (the seed's std::set order).
  const std::vector<net::NodeId>& members() const { return members_; }

 private:
  // Slot index of `peer` when it is registered and covered by in_list_,
  // else NodeSlotRegistry::kUnassigned.
  uint32_t covered_index(net::NodeId peer) const;
  bool member_search(net::NodeId peer, size_t* pos) const;

  net::NodeId self_;
  const net::NodeSlotRegistry* nodes_;
  std::vector<net::NodeId> members_;  // ascending NodeId; canonical
  std::vector<uint8_t> in_list_;      // slot-indexed membership accelerator
  // Members not covered by in_list_ (unregistered identities). When zero —
  // every scenario population — a clear accelerator bit alone proves
  // non-membership.
  size_t uncovered_members_ = 0;
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_REFERENCE_LIST_HPP_
