#include "protocol/reference_list.hpp"

namespace lockss::protocol {

void ReferenceList::insert(net::NodeId peer) {
  if (peer != self_ && peer.valid()) {
    members_.insert(peer);
  }
}

void ReferenceList::remove(net::NodeId peer) { members_.erase(peer); }

std::vector<net::NodeId> ReferenceList::sample(size_t k, sim::Rng& rng) const {
  std::vector<net::NodeId> pool(members_.begin(), members_.end());
  return rng.sample(pool, k);
}

}  // namespace lockss::protocol
