#include "protocol/reference_list.hpp"

#include <algorithm>
#include <cstddef>

namespace lockss::protocol {

uint32_t ReferenceList::covered_index(net::NodeId peer) const {
  if (nodes_ == nullptr) {
    return net::NodeSlotRegistry::kUnassigned;
  }
  const uint32_t index = nodes_->index_of(peer);
  return index < in_list_.size() ? index : net::NodeSlotRegistry::kUnassigned;
}

bool ReferenceList::member_search(net::NodeId peer, size_t* pos) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), peer);
  if (pos != nullptr) {
    *pos = static_cast<size_t>(it - members_.begin());
  }
  return it != members_.end() && *it == peer;
}

bool ReferenceList::contains(net::NodeId peer) const {
  const uint32_t index = covered_index(peer);
  if (index != net::NodeSlotRegistry::kUnassigned) {
    return in_list_[index] != 0;
  }
  // Not bit-covered: only worth searching when uncovered members can exist.
  return (uncovered_members_ > 0 || nodes_ == nullptr) && member_search(peer, nullptr);
}

void ReferenceList::insert(net::NodeId peer) {
  if (peer == self_ || !peer.valid()) {
    return;
  }
  size_t pos = 0;
  if (member_search(peer, &pos)) {
    return;
  }
  members_.insert(members_.begin() + static_cast<ptrdiff_t>(pos), peer);
  if (nodes_ != nullptr) {
    const uint32_t index = nodes_->index_of(peer);
    if (index != net::NodeSlotRegistry::kUnassigned) {
      if (index >= in_list_.size()) {
        in_list_.resize(nodes_->count(), 0);
      }
      in_list_[index] = 1;
      return;
    }
  }
  ++uncovered_members_;
}

void ReferenceList::remove(net::NodeId peer) {
  size_t pos = 0;
  if (!member_search(peer, &pos)) {
    return;
  }
  members_.erase(members_.begin() + static_cast<ptrdiff_t>(pos));
  const uint32_t index = covered_index(peer);
  if (index != net::NodeSlotRegistry::kUnassigned && in_list_[index] != 0) {
    in_list_[index] = 0;
  } else {
    --uncovered_members_;
  }
}

void ReferenceList::sample_into(std::vector<net::NodeId>& out, size_t k, sim::Rng& rng) const {
  out.assign(members_.begin(), members_.end());
  rng.shuffle(out);
  if (k < out.size()) {
    out.resize(k);
  }
}

}  // namespace lockss::protocol
