// Protocol parameters, defaulted to the paper's evaluation settings (§6.3).
//
// Every constant that §4–§6 pins down appears here with a citation; the
// experiment harness overrides only what a given figure sweeps.
#ifndef LOCKSS_PROTOCOL_PARAMS_HPP_
#define LOCKSS_PROTOCOL_PARAMS_HPP_

#include <cstdint>

#include "sim/time.hpp"
#include "storage/au.hpp"

namespace lockss::protocol {

struct Params {
  // --- Poll structure ------------------------------------------------------
  // §6.3: "Each poll uses a quorum of 10 peers".
  uint32_t quorum = 10;
  // §4.1: "a poller invites into its poll a larger inner circle than the
  // quorum (typically, twice as large)".
  uint32_t inner_circle_factor = 2;
  // §6.3: "landslide agreement as having a maximum of three disagreeing
  // votes".
  uint32_t max_disagreeing = 3;
  // §6.3: "Each peer runs a poll on each of its AUs on average every 3
  // months."
  sim::SimTime inter_poll_interval = sim::SimTime::months(3);
  // Fraction of the interval devoted to (desynchronized) vote solicitation;
  // the remainder hosts evaluation, repairs, and receipts.
  double solicitation_window_fraction = 0.75;
  // Point within the solicitation window where outer-circle solicitation
  // begins ("When it concludes its inner circle solicitations", §4.2).
  double outer_circle_start_fraction = 0.55;

  // --- Discovery (§4.2) ----------------------------------------------------
  // Peers a voter nominates from its reference list per Vote.
  uint32_t nominations_per_vote = 8;
  // Outer-circle sample size per poll.
  uint32_t outer_circle_size = 10;
  // Probability that a nominated identity is used as an introduction rather
  // than an outer-circle nomination (the poller "randomly partitions",
  // §5.1).
  double introduction_fraction = 0.5;
  // §5.1: "the maximum number of outstanding introductions is capped."
  uint32_t max_outstanding_introductions = 40;

  // --- Reference list ------------------------------------------------------
  // Initial/target reference list size (≈3x quorum, following [29]).
  uint32_t reference_list_target = 30;
  // Friends inserted at poll conclusion (friend bias, §4.3/[29]).
  uint32_t friends_per_poll = 2;
  uint32_t friends_list_size = 5;

  // --- Admission control (§5.1, §6.3) --------------------------------------
  double unknown_drop_probability = 0.90;
  double debt_drop_probability = 0.80;
  // §6.3: "The refractory period of one day".
  sim::SimTime refractory_period = sim::SimTime::days(1);
  // §6.3: "we allow up to a total of four times the rate of poll invitations
  // that should be expected in the absence of attacks."
  double consideration_rate_multiplier = 4.0;
  // Grade decay interval: one step toward debt per interval without
  // exchanges (§5.1: grades "decay ... toward the debt grade").
  sim::SimTime grade_decay_interval = sim::SimTime::months(6);

  // --- Effort balancing (§5.1, §6.3) ---------------------------------------
  // §6.3: "we set the introductory effort to be 20% of the total effort
  // required of a poller".
  double introductory_effort_fraction = 0.20;
  // Safety margin by which provable effort exceeds the strict minimum the
  // inequalities of §5.1 require.
  double effort_margin = 1.10;

  // --- Adaptive acceptance (§9 future work, off by default) -----------------
  // "Loyal peers could modulate the probability of acceptance of a poll
  // request according to their recent busyness. The effect would be to raise
  // the marginal effort required to increase the loyal peer's busyness as
  // the attack effort increases." When enabled, unknown/in-debt invitations
  // face an *additional* drop probability equal to the voter's committed
  // busy fraction over the upcoming adaptive window, scaled by the factor.
  bool adaptive_acceptance = false;
  sim::SimTime adaptive_window = sim::SimTime::days(7);
  double adaptive_scale = 1.0;

  // --- Repairs (§4.3) ------------------------------------------------------
  // Probability of one frivolous repair per concluded poll.
  double frivolous_repair_probability = 0.05;
  // Repairs a voter honors per poll before regarding the poller as abusive.
  uint32_t max_repairs_served_per_poll = 16;

  // --- Timeouts -------------------------------------------------------------
  sim::SimTime poll_ack_timeout = sim::SimTime::minutes(10);
  // Voter-side wait for PollProof after an affirmative PollAck; the
  // introductory effort is sized against this hold (§5.1 reservation
  // defense).
  sim::SimTime poll_proof_timeout = sim::SimTime::minutes(30);
  // Window the voter is given to fit the vote-computation task.
  sim::SimTime vote_window = sim::SimTime::days(3);
  // Extra slack the poller allows beyond the vote window before giving up
  // on a committed voter.
  sim::SimTime vote_slack = sim::SimTime::days(1);
  // Minimum spacing between re-invitations of a reluctant voter.
  sim::SimTime min_retry_gap = sim::SimTime::days(2);

  // --- Storage --------------------------------------------------------------
  storage::AuSpec au_spec;

  // Derived helpers ----------------------------------------------------------
  uint32_t inner_circle_size() const { return quorum * inner_circle_factor; }
  sim::SimTime solicitation_window() const {
    return inter_poll_interval * solicitation_window_fraction;
  }
  // Expected solicitations per poll (inner + outer), the self-clocking basis
  // for the consideration rate limiter.
  double expected_solicitations_per_poll() const {
    return static_cast<double>(inner_circle_size() + outer_circle_size);
  }
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_PARAMS_HPP_
