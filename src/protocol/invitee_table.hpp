// Per-poll invitee state, flattened onto the deployment slot registry.
//
// A PollerSession tracks one record per invited voter — phase, nonce,
// timeout, attempt count — and resolves it on every solicitation event, ack,
// vote, and timeout. The seed kept the records in std::map<NodeId, Invitee>:
// a node allocation per invitee and an ordered walk per resolve, the last
// remaining map on the per-message path after PR 3 (ROADMAP). This table
// stores the records in one compact vector (insertion order) and finds them
// through the deployment's net::NodeSlotRegistry: a registered id resolves
// via a direct slot→record index load — O(1), no compare walk. Unregistered
// ids (a spoofed identity nominated into the outer circle, or hand-built
// hosts with no registry) fall back to a small ordered map with seed
// semantics.
//
// Determinism: ordered iteration (for_each_ordered) visits records in
// ascending NodeId order — the seed map's iteration order — merging the
// registered records (slot order ≡ NodeId order, the registry contract)
// with the overflow map. The seed container is preserved as
// InviteeTableReference and property-checked equivalent
// (tests/substrate_equivalence_test.cpp).
#ifndef LOCKSS_PROTOCOL_INVITEE_TABLE_HPP_
#define LOCKSS_PROTOCOL_INVITEE_TABLE_HPP_

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "net/node_id.hpp"
#include "net/node_slot_registry.hpp"

namespace lockss::protocol {

template <typename V>
class InviteeTable {
 public:
  static constexpr uint32_t kNone = UINT32_MAX;

  // `nodes` may be null (hand-built hosts, unit tests): every id then takes
  // the overflow-map path, which is the seed behavior.
  explicit InviteeTable(const net::NodeSlotRegistry* nodes = nullptr) : nodes_(nodes) {}

  V* find(net::NodeId id) {
    const uint32_t index = index_of(id);
    return index == kNone ? nullptr : &records_[index].value;
  }
  const V* find(net::NodeId id) const {
    const uint32_t index = index_of(id);
    return index == kNone ? nullptr : &records_[index].value;
  }
  bool contains(net::NodeId id) const { return index_of(id) != kNone; }

  // Find-or-insert, the seed map's operator[].
  V& operator[](net::NodeId id) {
    const uint32_t existing = index_of(id);
    if (existing != kNone) {
      return records_[existing].value;
    }
    const uint32_t index = static_cast<uint32_t>(records_.size());
    records_.push_back(Record{id, V{}});
    const uint32_t slot =
        nodes_ != nullptr ? nodes_->index_of(id) : net::NodeSlotRegistry::kUnassigned;
    if (slot != net::NodeSlotRegistry::kUnassigned) {
      if (slot >= slot_index_.size()) {
        // One growth to the registry's (setup-time fixed) count; the poll
        // path after the inner-circle sample allocates nothing new.
        slot_index_.resize(nodes_->count(), kNone);
      }
      slot_index_[slot] = index;
    } else {
      overflow_.emplace(id, index);
    }
    return records_[index].value;
  }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  // Unordered sweep in insertion order — for commutative teardown work
  // (cancelling timeouts); no allocation.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Record& record : records_) {
      fn(record.id, record.value);
    }
  }

  // Ascending-NodeId sweep, the seed std::map's iteration order. Sorts a
  // small key list per call; used once per poll (begin_evaluation), not per
  // message.
  template <typename Fn>
  void for_each_ordered(Fn&& fn) {
    std::vector<uint32_t> order(records_.size());
    for (uint32_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
      return records_[a].id < records_[b].id;
    });
    for (uint32_t index : order) {
      fn(records_[index].id, records_[index].value);
    }
  }

 private:
  struct Record {
    net::NodeId id;
    V value;
  };

  uint32_t index_of(net::NodeId id) const {
    if (nodes_ != nullptr) {
      const uint32_t slot = nodes_->index_of(id);
      if (slot != net::NodeSlotRegistry::kUnassigned) {
        return slot < slot_index_.size() ? slot_index_[slot] : kNone;
      }
    }
    if (overflow_.empty()) {
      return kNone;
    }
    auto it = overflow_.find(id);
    return it == overflow_.end() ? kNone : it->second;
  }

  const net::NodeSlotRegistry* nodes_;
  std::vector<Record> records_;            // insertion order; stable indices
  std::vector<uint32_t> slot_index_;       // registry slot → record index
  std::map<net::NodeId, uint32_t> overflow_;  // unregistered ids only
};

// The seed container (std::map keyed by NodeId) behind the same interface,
// for the equivalence property test and the before/after benchmark.
template <typename V>
class InviteeTableReference {
 public:
  explicit InviteeTableReference(const net::NodeSlotRegistry* /*nodes*/ = nullptr) {}

  V* find(net::NodeId id) {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }
  const V* find(net::NodeId id) const {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }
  bool contains(net::NodeId id) const { return map_.contains(id); }
  V& operator[](net::NodeId id) { return map_[id]; }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [id, value] : map_) {
      fn(id, value);
    }
  }
  template <typename Fn>
  void for_each_ordered(Fn&& fn) {
    for_each(fn);
  }

 private:
  std::map<net::NodeId, V> map_;
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_INVITEE_TABLE_HPP_
