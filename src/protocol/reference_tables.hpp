// Seed (pre-densification) protocol containers, preserved verbatim.
//
// PR 3 rebuilt ReferenceList and Tally on dense NodeSlotRegistry slot
// structures; these are the ordered-container originals, kept — like
// metrics::MapReferenceCollector — for the randomized equivalence property
// tests (tests/substrate_equivalence_test.cpp) and the before/after
// micro-benchmarks (bench/micro_substrates.cpp, tools/bench_report). Do not
// "fix" or optimize them: their value is being the seed semantics.
#ifndef LOCKSS_PROTOCOL_REFERENCE_TABLES_HPP_
#define LOCKSS_PROTOCOL_REFERENCE_TABLES_HPP_

#include <cassert>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "crypto/digest.hpp"
#include "net/node_id.hpp"
#include "protocol/tally.hpp"
#include "sim/rng.hpp"
#include "storage/replica.hpp"

namespace lockss::protocol {

// The seed ReferenceList: a std::set walked into a fresh vector on every
// members()/sample() call.
class ReferenceListReference {
 public:
  explicit ReferenceListReference(net::NodeId self) : self_(self) {}

  void insert(net::NodeId peer) {
    if (peer != self_ && peer.valid()) {
      members_.insert(peer);
    }
  }
  void remove(net::NodeId peer) { members_.erase(peer); }
  bool contains(net::NodeId peer) const { return members_.contains(peer); }
  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  std::vector<net::NodeId> sample(size_t k, sim::Rng& rng) const {
    std::vector<net::NodeId> pool(members_.begin(), members_.end());
    return rng.sample(pool, k);
  }

  std::vector<net::NodeId> members() const {
    return std::vector<net::NodeId>(members_.begin(), members_.end());
  }

 private:
  net::NodeId self_;
  std::set<net::NodeId> members_;  // ordered for deterministic iteration
};

// The seed Tally: per-voter state in a std::map, one ordered walk per block.
// Mirrors protocol::Tally's interface (same Step type).
class TallyReference {
 public:
  TallyReference(const storage::AuReplica& replica, uint32_t quorum, uint32_t max_disagreeing)
      : replica_(replica), quorum_(quorum), max_disagreeing_(max_disagreeing) {}

  void add_vote(net::NodeId voter, crypto::Digest64 nonce,
                std::vector<crypto::Digest64> block_hashes, bool inner) {
    assert(block_ == 0 && "votes must be registered before evaluation starts");
    VoterState state;
    state.hashes = std::move(block_hashes);
    state.expected_prev = crypto::vote_chain_seed(nonce);
    state.inner = inner;
    auto [it, inserted] = voters_.emplace(voter, std::move(state));
    (void)it;
    if (inserted && inner) {
      ++inner_count_;
    }
  }

  size_t inner_votes() const { return inner_count_; }
  size_t total_votes() const { return voters_.size(); }
  bool quorate() const { return inner_count_ >= quorum_; }

  using Step = Tally::Step;

  Step advance() {
    const uint32_t blocks = replica_.spec().block_count;
    while (block_ < blocks) {
      // Evaluate the current block against every vote.
      uint32_t inner_agree = 0;
      uint32_t inner_disagree = 0;
      std::vector<net::NodeId> disagreeing;
      for (auto& [voter, state] : voters_) {
        const crypto::Digest64 expected =
            replica_.expected_block_hash(state.expected_prev, block_);
        const bool vote_long_enough = state.hashes.size() > block_;
        const bool agree = vote_long_enough && state.hashes[block_] == expected;
        if (state.inner) {
          if (agree) {
            ++inner_agree;
          } else {
            ++inner_disagree;
            disagreeing.push_back(voter);
          }
        }
      }
      if (inner_disagree <= max_disagreeing_) {
        // Landslide agreement: commit the block and move on.
        for (auto& [voter, state] : voters_) {
          const crypto::Digest64 expected =
              replica_.expected_block_hash(state.expected_prev, block_);
          const bool agree = state.hashes.size() > block_ && state.hashes[block_] == expected;
          if (!agree) {
            state.agreed_throughout = false;
          }
          state.expected_prev = expected;
        }
        ++block_;
        continue;
      }
      if (inner_agree <= max_disagreeing_) {
        return Step{Step::Kind::kNeedRepair, block_, std::move(disagreeing)};
      }
      return Step{Step::Kind::kAlarm, block_, std::move(disagreeing)};
    }
    done_ = true;
    return Step{Step::Kind::kDone, blocks, {}};
  }

  Step resume_after_repair() { return advance(); }

  std::vector<net::NodeId> agreeing_voters() const {
    std::vector<net::NodeId> out;
    for (const auto& [voter, state] : voters_) {
      if (state.agreed_throughout) {
        out.push_back(voter);
      }
    }
    return out;
  }

  std::vector<net::NodeId> disagreeing_voters() const {
    std::vector<net::NodeId> out;
    for (const auto& [voter, state] : voters_) {
      if (!state.agreed_throughout) {
        out.push_back(voter);
      }
    }
    return out;
  }

  bool voter_agreed_throughout(net::NodeId voter) const {
    auto it = voters_.find(voter);
    return it != voters_.end() && it->second.agreed_throughout;
  }

  uint32_t current_block() const { return block_; }

 private:
  struct VoterState {
    std::vector<crypto::Digest64> hashes;  // the vote as received
    crypto::Digest64 expected_prev;        // poller-side chain before current block
    bool inner = false;
    bool agreed_throughout = true;
  };

  const storage::AuReplica& replica_;
  uint32_t quorum_;
  uint32_t max_disagreeing_;
  // std::map for deterministic iteration.
  std::map<net::NodeId, VoterState> voters_;
  size_t inner_count_ = 0;
  uint32_t block_ = 0;
  bool done_ = false;
};

}  // namespace lockss::protocol

#endif  // LOCKSS_PROTOCOL_REFERENCE_TABLES_HPP_
