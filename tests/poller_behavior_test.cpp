// Poller-side protocol behaviour observed through small real deployments:
// frivolous repairs, alarms, reference-list maintenance, and the fixed-rate
// invariant of §5.1 ("peers set their rate limits autonomously, not varying
// them in response to other peers' actions").
#include <gtest/gtest.h>

#include <vector>

#include "experiment/scenario.hpp"

namespace lockss::experiment {
namespace {

ScenarioConfig tiny_config() {
  ScenarioConfig config;
  config.peer_count = 24;
  config.au_count = 2;
  config.duration = sim::SimTime::years(1);
  config.seed = 31;
  config.enable_damage = false;
  return config;
}

TEST(PollerBehaviorTest, FrivolousRepairsExerciseVotersEvenWithoutDamage) {
  // §4.3: "the poller may also decide to obtain a repair from a random
  // voter, even if one is not required."
  ScenarioConfig config = tiny_config();
  config.duration = sim::SimTime::months(8);
  config.params.frivolous_repair_probability = 1.0;  // every poll probes
  uint64_t successful = 0;
  uint64_t with_repairs = 0;
  config.poll_observer = [&](net::NodeId, const protocol::PollOutcome& o) {
    if (o.kind == protocol::PollOutcomeKind::kSuccess) {
      ++successful;
      if (o.repairs > 0) {
        ++with_repairs;
      }
    }
  };
  const RunResult result = run_scenario(config);
  EXPECT_GT(successful, 20u);
  // Every successful poll issued its frivolous repair request.
  EXPECT_EQ(with_repairs, successful);
  // No replica was actually damaged; the content never changed.
  EXPECT_EQ(result.report.access_failure_probability, 0.0);
}

TEST(PollerBehaviorTest, NoFrivolousRepairsWhenDisabled) {
  ScenarioConfig config = tiny_config();
  config.duration = sim::SimTime::months(8);
  config.params.frivolous_repair_probability = 0.0;
  const RunResult result = run_scenario(config);
  EXPECT_EQ(result.report.repairs, 0u);
}

TEST(PollerBehaviorTest, FixedPollRateRegardlessOfAdversity) {
  // Rate limitation (§5.1): polls are called at a fixed autonomous rate —
  // under total pipe stoppage the number of *started* polls matches the
  // no-attack run exactly.
  ScenarioConfig config = tiny_config();
  const RunResult calm = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kPipeStoppage;
  config.adversary.cadence.coverage = 1.0;
  config.adversary.cadence.attack_duration = sim::SimTime::days(360);
  const RunResult attacked = run_scenario(config);
  EXPECT_EQ(calm.polls_started, attacked.polls_started);
}

TEST(PollerBehaviorTest, ReferenceListsStayNearTarget) {
  // §4.3 removals are balanced by discovery + top-up; lists neither drain
  // below the quorum nor balloon.
  ScenarioConfig config = tiny_config();
  uint64_t too_small = 0;
  config.poll_observer = [&](net::NodeId, const protocol::PollOutcome& o) {
    if (o.kind == protocol::PollOutcomeKind::kSuccess &&
        o.inner_votes < 10) {  // quorum with the default params
      ++too_small;
    }
  };
  const RunResult result = run_scenario(config);
  EXPECT_GT(result.report.successful_polls, 100u);
  EXPECT_EQ(result.report.inquorate_polls, 0u);
}

TEST(PollerBehaviorTest, WidespreadIdenticalDisagreementRaisesAlarms) {
  // §4.3: no landslide either way -> inconclusive -> operator alarm. We
  // damage ~half the replicas of one AU before the run; pollers then find
  // the population split and must alarm rather than repair.
  ScenarioConfig config = tiny_config();
  config.duration = sim::SimTime::months(5);
  // Damage at a very high rate briefly: instead, corrupt via the damage
  // process with an extreme rate on half the peers is not expressible via
  // ScenarioConfig; use the damage process across all peers with a rate so
  // high that most replicas are damaged within the first poll interval.
  config.enable_damage = true;
  config.damage.mean_disk_years_between_failures = 0.01;  // ~100 events/disk-year
  config.damage.aus_per_disk = 2.0;
  const RunResult result = run_scenario(config);
  // With a majority of replicas damaged (all differently), polls cannot
  // reach a landslide: the system correctly reports irrecoverable damage
  // rather than silently repairing from corrupt majorities.
  EXPECT_GT(result.report.alarms, 0u);
}

TEST(PollerBehaviorTest, OuterCircleDiscoversNewPeers) {
  // Votes nominate reference-list members; agreeing outer-circle voters
  // enter the reference list (§4.2). Observable as outer votes > 0. The
  // reference list must be smaller than the population or there is nobody
  // left to discover.
  ScenarioConfig config = tiny_config();
  config.peer_count = 40;
  config.params.reference_list_target = 15;
  uint64_t outer_votes = 0;
  config.poll_observer = [&](net::NodeId, const protocol::PollOutcome& o) {
    outer_votes += o.outer_votes;
  };
  run_scenario(config);
  EXPECT_GT(outer_votes, 0u);
}

// Whole-scenario invariants swept across seeds and adversaries.
struct InvariantCase {
  uint64_t seed;
  AdversarySpec::Kind adversary;
};

class ScenarioInvariantTest : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(ScenarioInvariantTest, AccountingInvariantsHold) {
  const InvariantCase param = GetParam();
  ScenarioConfig config = tiny_config();
  config.peer_count = 20;
  config.duration = sim::SimTime::months(8);
  config.seed = param.seed;
  config.enable_damage = true;
  config.damage.mean_disk_years_between_failures = 0.5;
  config.damage.aus_per_disk = 2.0;
  config.adversary.kind = param.adversary;
  config.adversary.defection = adversary::DefectionPoint::kNone;
  config.adversary.cadence.coverage = 0.5;
  config.adversary.cadence.attack_duration = sim::SimTime::days(45);
  config.adversary.cadence.recuperation = sim::SimTime::days(30);
  const RunResult result = run_scenario(config);

  // Access failure is a probability.
  EXPECT_GE(result.report.access_failure_probability, 0.0);
  EXPECT_LE(result.report.access_failure_probability, 1.0);
  // Concluded polls never exceed started polls.
  EXPECT_LE(result.report.successful_polls + result.report.inquorate_polls +
                result.report.alarms,
            result.polls_started);
  // Effort is non-negative and attributed.
  EXPECT_GE(result.report.loyal_effort_seconds, 0.0);
  if (result.report.successful_polls > 0) {
    EXPECT_GT(result.report.loyal_effort_seconds, 0.0);
  }
  // The poll rate is fixed: started polls ≈ peers x AUs x (duration /
  // interval), within one poll per (peer, AU) for phase rounding.
  const double cycles = config.duration / config.params.inter_poll_interval;
  const uint64_t pairs = config.peer_count * config.au_count;
  EXPECT_LE(result.polls_started, pairs * static_cast<uint64_t>(cycles + 1.0));
  EXPECT_GE(result.polls_started, pairs * static_cast<uint64_t>(cycles - 1.0));
  // Determinism: the same config reruns identically.
  const RunResult again = run_scenario(config);
  EXPECT_EQ(again.messages_delivered, result.messages_delivered);
  EXPECT_DOUBLE_EQ(again.report.loyal_effort_seconds, result.report.loyal_effort_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAdversaries, ScenarioInvariantTest,
    ::testing::Values(InvariantCase{1, AdversarySpec::Kind::kNone},
                      InvariantCase{2, AdversarySpec::Kind::kNone},
                      InvariantCase{3, AdversarySpec::Kind::kPipeStoppage},
                      InvariantCase{4, AdversarySpec::Kind::kPipeStoppage},
                      InvariantCase{5, AdversarySpec::Kind::kAdmissionFlood},
                      InvariantCase{6, AdversarySpec::Kind::kBruteForce},
                      InvariantCase{7, AdversarySpec::Kind::kGradeRecovery}));

}  // namespace
}  // namespace lockss::experiment
