// §9 ("we need to consider combined adversary strategies"): a network-level
// pipe stoppage over part of the population run concurrently with the
// application-level brute-force adversary.
#include <gtest/gtest.h>

#include "experiment/aggregate.hpp"
#include "experiment/scenario.hpp"

namespace lockss::experiment {
namespace {

ScenarioConfig combined_config() {
  ScenarioConfig config;
  config.peer_count = 24;
  config.au_count = 2;
  config.duration = sim::SimTime::years(1);
  config.seed = 17;
  config.enable_damage = false;
  config.adversary.cadence.coverage = 0.5;
  config.adversary.cadence.attack_duration = sim::SimTime::days(60);
  config.adversary.cadence.recuperation = sim::SimTime::days(30);
  config.adversary.defection = adversary::DefectionPoint::kNone;
  return config;
}

TEST(CombinedAdversaryTest, BothAttackVectorsAreActive) {
  ScenarioConfig config = combined_config();
  config.adversary.kind = AdversarySpec::Kind::kCombined;
  const RunResult combined = run_scenario(config);
  // Network-level suppression happened...
  EXPECT_GT(combined.messages_filtered, 0u);
  // ...and the effortful adversary got through admission control too.
  EXPECT_GT(combined.adversary_admissions, 10u);
  EXPECT_GT(combined.report.adversary_effort_seconds, 0.0);
}

TEST(CombinedAdversaryTest, HarmAtLeastMatchesEachComponent) {
  ScenarioConfig config = combined_config();

  config.adversary.kind = AdversarySpec::Kind::kCombined;
  const RunResult combined = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kPipeStoppage;
  const RunResult stoppage_only = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kBruteForce;
  const RunResult brute_only = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kNone;
  const RunResult baseline = run_scenario(config);

  const RelativeMetrics rel_combined = relative_metrics(combined, baseline);
  const RelativeMetrics rel_stoppage = relative_metrics(stoppage_only, baseline);
  const RelativeMetrics rel_brute = relative_metrics(brute_only, baseline);

  // Throughput damage at least matches the blackout component (small slack
  // for run-to-run variation in which peers are covered).
  EXPECT_GE(rel_combined.delay_ratio, rel_stoppage.delay_ratio * 0.9);
  // Friction at least approaches the effortful component's; the blackout
  // removes some victims from the brute-force lanes, so it need not exceed
  // it, but it must clearly exceed baseline.
  EXPECT_GT(rel_combined.friction, 1.1);
  EXPECT_GT(rel_brute.friction, 1.1);
  // The combination must not *help* the defenders: successful polls cannot
  // exceed the better of the two single-vector attacks.
  EXPECT_LE(combined.report.successful_polls,
            std::max(stoppage_only.report.successful_polls, brute_only.report.successful_polls));
}

TEST(CombinedAdversaryTest, SystemStillRecoversBetweenPhases) {
  // Even under the combined attack, the 30-day recuperations let polls
  // through: the year cannot end with near-zero successes at 50% coverage.
  ScenarioConfig config = combined_config();
  config.adversary.kind = AdversarySpec::Kind::kCombined;
  const RunResult combined = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kNone;
  const RunResult baseline = run_scenario(config);
  EXPECT_GT(combined.report.successful_polls, baseline.report.successful_polls / 5);
  EXPECT_EQ(combined.report.alarms, 0u);
}

}  // namespace
}  // namespace lockss::experiment
