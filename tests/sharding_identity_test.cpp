// Sharded-vs-serial bit-identity matrix (docs/sharding.md).
//
// The sharding contract: a run split across N worker shards produces the
// same RunResult as the serial run, bit for bit, at every shard count —
// every double compared exactly, every counter, every trace point. The one
// excluded field is peak_queue_depth, which under sharding becomes the sum
// of per-queue high-water marks (there is no serial equivalent of a
// per-queue peak; see docs/sharding.md).
//
// The matrix reuses the golden-trace corpus scenarios — the serial arm of
// every comparison is the exact configuration the committed fixtures pin,
// so this test transitively anchors the sharded results to the golden
// corpus: serial == fixture (golden_trace_test) and sharded == serial
// (here) gives sharded == fixture.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "campaign/spec.hpp"
#include "experiment/aggregate.hpp"
#include "experiment/scenario.hpp"

namespace lockss::experiment {
namespace {

// Exact equality, doubles included: the contract is bit-identity, not
// tolerance. EXPECT_EQ on doubles compares values exactly.
void expect_identical(const RunResult& serial, const RunResult& sharded,
                      const std::string& label) {
  SCOPED_TRACE(label);
  const metrics::MetricsReport& a = serial.report;
  const metrics::MetricsReport& b = sharded.report;
  EXPECT_EQ(a.access_failure_probability, b.access_failure_probability);
  EXPECT_EQ(a.mean_success_gap_days, b.mean_success_gap_days);
  EXPECT_EQ(a.mean_observed_gap_days, b.mean_observed_gap_days);
  EXPECT_EQ(a.successful_polls, b.successful_polls);
  EXPECT_EQ(a.inquorate_polls, b.inquorate_polls);
  EXPECT_EQ(a.alarms, b.alarms);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.damage_events, b.damage_events);
  EXPECT_EQ(a.loyal_effort_seconds, b.loyal_effort_seconds);
  EXPECT_EQ(a.adversary_effort_seconds, b.adversary_effort_seconds);
  EXPECT_EQ(a.effort_per_successful_poll, b.effort_per_successful_poll);
  EXPECT_EQ(a.cost_ratio, b.cost_ratio);
  EXPECT_EQ(a.duration, b.duration);

  EXPECT_EQ(serial.polls_started, sharded.polls_started);
  EXPECT_EQ(serial.solicitations_sent, sharded.solicitations_sent);
  EXPECT_EQ(serial.messages_delivered, sharded.messages_delivered);
  EXPECT_EQ(serial.messages_filtered, sharded.messages_filtered);
  EXPECT_EQ(serial.adversary_invitations, sharded.adversary_invitations);
  EXPECT_EQ(serial.adversary_admissions, sharded.adversary_admissions);
  EXPECT_EQ(serial.admission_verdicts, sharded.admission_verdicts);
  // Sum over all shard queues == the serial event count, exactly.
  EXPECT_EQ(serial.events_processed, sharded.events_processed);
  // peak_queue_depth deliberately NOT compared (see file comment).
  EXPECT_EQ(serial.churn_departures, sharded.churn_departures);
  EXPECT_EQ(serial.churn_recoveries, sharded.churn_recoveries);
  EXPECT_EQ(serial.churn_arrivals, sharded.churn_arrivals);
  EXPECT_EQ(serial.availability_mean, sharded.availability_mean);
  EXPECT_EQ(serial.mean_recovery_days, sharded.mean_recovery_days);
  EXPECT_EQ(serial.operator_interventions, sharded.operator_interventions);
  // Fault-layer counters: per-sender RNG lanes must make every loss, dup,
  // and jitter decision shard-invariant (docs/faults.md).
  EXPECT_EQ(serial.faults_lost, sharded.faults_lost);
  EXPECT_EQ(serial.faults_burst_dropped, sharded.faults_burst_dropped);
  EXPECT_EQ(serial.faults_duplicated, sharded.faults_duplicated);
  EXPECT_EQ(serial.faults_jittered, sharded.faults_jittered);
  EXPECT_EQ(serial.ack_timeouts, sharded.ack_timeouts);
  EXPECT_EQ(serial.vote_timeouts, sharded.vote_timeouts);
  EXPECT_EQ(serial.solicitation_retries, sharded.solicitation_retries);
  for (size_t r = 0; r < serial.polls_aborted.size(); ++r) {
    SCOPED_TRACE("abort reason " + std::to_string(r));
    EXPECT_EQ(serial.polls_aborted[r], sharded.polls_aborted[r]);
  }
  EXPECT_EQ(serial.sessions_live_at_end, sharded.sessions_live_at_end);
  EXPECT_EQ(serial.stale_sessions_at_end, sharded.stale_sessions_at_end);
  EXPECT_EQ(serial.reservations_beyond_horizon, sharded.reservations_beyond_horizon);

  EXPECT_EQ(serial.trace.interval, sharded.trace.interval);
  ASSERT_EQ(serial.trace.points.size(), sharded.trace.points.size());
  for (size_t k = 0; k < serial.trace.points.size(); ++k) {
    SCOPED_TRACE("trace point " + std::to_string(k));
    const metrics::TracePoint& p = serial.trace.points[k];
    const metrics::TracePoint& q = sharded.trace.points[k];
    EXPECT_EQ(p.t, q.t);
    EXPECT_EQ(p.damaged_fraction, q.damaged_fraction);
    EXPECT_EQ(p.afp_to_date, q.afp_to_date);
    EXPECT_EQ(p.successful_polls, q.successful_polls);
    EXPECT_EQ(p.inquorate_polls, q.inquorate_polls);
    EXPECT_EQ(p.alarms, q.alarms);
    EXPECT_EQ(p.repairs, q.repairs);
    EXPECT_EQ(p.loyal_effort_seconds, q.loyal_effort_seconds);
    EXPECT_EQ(p.adversary_effort_seconds, q.adversary_effort_seconds);
    EXPECT_EQ(p.online_fraction, q.online_fraction);
    EXPECT_EQ(p.departures, q.departures);
    EXPECT_EQ(p.recoveries, q.recoveries);
    EXPECT_EQ(p.mean_recovery_days, q.mean_recovery_days);
    EXPECT_EQ(p.faults_injected, q.faults_injected);
    EXPECT_EQ(p.ack_timeouts, q.ack_timeouts);
    EXPECT_EQ(p.vote_timeouts, q.vote_timeouts);
    EXPECT_EQ(p.solicitation_retries, q.solicitation_retries);
  }
}

void check_shard_counts(ScenarioConfig config, const std::string& name,
                        const std::vector<uint32_t>& shard_counts) {
  config.shards = 1;
  const RunResult serial = run_scenario(config);
  for (uint32_t shards : shard_counts) {
    config.shards = shards;
    const RunResult sharded = run_scenario(config);
    expect_identical(serial, sharded, name + " @ shards=" + std::to_string(shards));
  }
}

// The golden corpus's canonical deployment (tests/golden_trace_test.cpp).
ScenarioConfig canonical_config() {
  ScenarioConfig config;
  config.peer_count = 12;
  config.au_count = 2;
  config.duration = sim::SimTime::days(400);
  config.seed = 20250730;
  config.trace_interval = sim::SimTime::days(25);
  config.damage.mean_disk_years_between_failures = 0.2;
  config.damage.aus_per_disk = config.au_count;
  return config;
}

TEST(ShardingIdentityTest, Baseline) {
  // The full shard ladder on the baseline, including shards=8 where several
  // shards own just one or two peers each.
  check_shard_counts(canonical_config(), "baseline", {2, 4, 8});
}

TEST(ShardingIdentityTest, PipeStoppage) {
  ScenarioConfig config = canonical_config();
  config.adversary.kind = AdversarySpec::Kind::kPipeStoppage;
  config.adversary.cadence.attack_duration = sim::SimTime::days(30);
  config.adversary.cadence.recuperation = sim::SimTime::days(15);
  config.adversary.cadence.coverage = 0.5;
  check_shard_counts(config, "pipe_stoppage", {2});
}

TEST(ShardingIdentityTest, AdmissionFlood) {
  ScenarioConfig config = canonical_config();
  config.adversary.kind = AdversarySpec::Kind::kAdmissionFlood;
  config.adversary.cadence.attack_duration = sim::SimTime::days(20);
  config.adversary.cadence.recuperation = sim::SimTime::days(20);
  config.adversary.cadence.coverage = 1.0;
  check_shard_counts(config, "admission_flood", {2});
}

TEST(ShardingIdentityTest, VoteFlood) {
  ScenarioConfig config = canonical_config();
  config.adversary.kind = AdversarySpec::Kind::kVoteFlood;
  check_shard_counts(config, "vote_flood", {2, 4});
}

TEST(ShardingIdentityTest, Newcomers) {
  ScenarioConfig config = canonical_config();
  config.newcomer_count = 3;
  config.newcomer_join_window = sim::SimTime::days(200);
  check_shard_counts(config, "churn", {2});
}

TEST(ShardingIdentityTest, UnreliableLinks) {
  // All four fault knobs at once, the full shard ladder. This is the test
  // the per-sender-lane design exists to pass: the old mutable-Rng
  // LossLinkFilter rolled its dice in whichever context the send or
  // delivery event landed, so its outcomes changed with the shard count.
  ScenarioConfig config = canonical_config();
  config.faults.loss_rate = 0.10;
  config.faults.dup_rate = 0.02;
  config.faults.jitter = sim::SimTime::milliseconds(20);
  config.faults.burst_outage_rate = 0.05;
  config.faults.burst_cycle = sim::SimTime::days(2.0);
  check_shard_counts(config, "unreliable_links", {2, 4, 8});
}

TEST(ShardingIdentityTest, UnreliableLinksUnderChurnAndAttack) {
  // Faults composed with the other delivery-path inhabitants: the churn
  // OfflineSetFilter and a pipe-stoppage adversary's veto filter. Faults
  // are decided after the vetoes, so the lane-draw sequence depends on
  // which messages survive — that order must itself be shard-invariant.
  ScenarioConfig config = canonical_config();
  config.faults.loss_rate = 0.15;
  config.faults.jitter = sim::SimTime::milliseconds(10);
  config.churn.leave_rate_per_peer_year = 1.0;
  config.churn.crash_rate_per_peer_year = 0.5;
  config.churn.mean_downtime_days = 6.0;
  config.churn.arrival_rate_per_year = 2.0;
  config.adversary.kind = AdversarySpec::Kind::kPipeStoppage;
  config.adversary.cadence.attack_duration = sim::SimTime::days(25);
  config.adversary.cadence.recuperation = sim::SimTime::days(20);
  config.adversary.cadence.coverage = 0.4;
  check_shard_counts(config, "faults_churn_attack", {2, 8});
}

TEST(ShardingIdentityTest, ChurnDynamics) {
  // Session churn + arrivals + operator alarm/recovery policies: exercises
  // the global-actor path (churn model, operator engine) and the barrier
  // alarm deferral at several shard counts.
  ScenarioConfig config = canonical_config();
  config.churn.leave_rate_per_peer_year = 1.5;
  config.churn.crash_rate_per_peer_year = 0.7;
  config.churn.mean_downtime_days = 8.0;
  config.churn.arrival_rate_per_year = 3.0;
  config.operators.detection_latency = sim::SimTime::days(2);
  config.operators.policies.push_back(
      {dynamics::OperatorTrigger::kAlarm, dynamics::OperatorAction::kAuRecrawl, 1.0});
  config.operators.policies.push_back(
      {dynamics::OperatorTrigger::kRecovery, dynamics::OperatorAction::kRekey, 1.0});
  check_shard_counts(config, "churn_dynamics", {2, 4, 8});
}

TEST(ShardingIdentityTest, RegionalOutage) {
  // Correlated regional outages batch many same-instant global mutations
  // (whole NodeId blocks going dark at once) — the hardest case for the
  // (time, shard, sequence) merge key.
  ScenarioConfig config = canonical_config();
  config.adversary.kind = AdversarySpec::Kind::kBruteForce;
  config.churn.regions = 3;
  config.churn.regional_outage_rate_per_year = 3.0;
  config.churn.regional_outage_days = 6.0;
  config.churn.regional_recovery_stagger_hours = 12.0;
  config.churn.regional_state_loss = true;
  check_shard_counts(config, "regional_outage", {2, 4, 8});
}

TEST(ShardingIdentityTest, LayeredBruteForce) {
  // §6.3 layering threads schedule exports between runs; every layer must
  // shard identically for the combined result to match.
  ScenarioConfig config = canonical_config();
  config.adversary.kind = AdversarySpec::Kind::kBruteForce;
  config.shards = 1;
  const std::vector<RunResult> serial_layers = run_layered(config, 2);
  config.shards = 2;
  const std::vector<RunResult> sharded_layers = run_layered(config, 2);
  ASSERT_EQ(serial_layers.size(), sharded_layers.size());
  for (size_t layer = 0; layer < serial_layers.size(); ++layer) {
    expect_identical(serial_layers[layer], sharded_layers[layer],
                     "layered_brute_force layer " + std::to_string(layer));
  }
  expect_identical(combine_results(serial_layers), combine_results(sharded_layers),
                   "layered_brute_force combined");
}

TEST(ShardingIdentityTest, UnsupportedConfigsFallBackToSerial) {
  // An external poll observer forces the serial path (observers expect the
  // serial calling convention); the run must still complete and match.
  ScenarioConfig config = canonical_config();
  // Long enough for the ~3-month poll cycle to conclude at least one poll,
  // so the observer demonstrably fired on the fallback path.
  config.duration = sim::SimTime::months(5);
  EXPECT_TRUE(sharding_supported(config));
  uint64_t observed = 0;
  config.poll_observer = [&observed](net::NodeId, const protocol::PollOutcome&) { ++observed; };
  EXPECT_FALSE(sharding_supported(config));
  config.shards = 4;
  const RunResult with_observer = run_scenario(config);
  config.poll_observer = nullptr;
  config.shards = 1;
  const RunResult serial = run_scenario(config);
  expect_identical(serial, with_observer, "observer fallback");
  EXPECT_GT(observed, 0u);
}

TEST(ShardingIdentityTest, DefaultShardsKnob) {
  // ScenarioConfig.shards = 0 defers to the process-wide default, the knob
  // lockss_campaign --shards sets; the result is still bit-identical, so
  // the knob is a pure execution detail.
  ScenarioConfig config = canonical_config();
  config.duration = sim::SimTime::days(100);
  config.shards = 1;
  const RunResult serial = run_scenario(config);
  set_default_shards(2);
  config.shards = 0;
  const RunResult sharded = run_scenario(config);
  set_default_shards(0);
  expect_identical(serial, sharded, "default_shards knob");
}

// Campaign artifacts are pure functions of the spec; the shard count must
// never reach them. Byte-compare the rendered manifest of the shipped smoke
// campaign between serial and sharded execution.
TEST(ShardingIdentityTest, CampaignManifestBytesInvariantUnderSharding) {
  campaign::Spec spec;
  std::string error;
  ASSERT_TRUE(campaign::load_spec_file(std::string(LOCKSS_SOURCE_DIR) + "/campaigns/smoke.json",
                                       &spec, &error))
      << error;
  campaign::CompiledCampaign compiled;
  ASSERT_TRUE(campaign::compile_campaign(spec, &compiled, &error)) << error;

  campaign::RunOptions options;
  options.quiet = true;
  options.write_outputs = false;

  const auto manifest_with_shards = [&](uint32_t shards) {
    set_default_shards(shards);
    campaign::CampaignOutcome outcome;
    EXPECT_TRUE(campaign::run_campaign(compiled, options, &outcome, &error)) << error;
    set_default_shards(0);
    return campaign::render_manifest(compiled, outcome);
  };
  const std::string serial = manifest_with_shards(1);
  const std::string sharded = manifest_with_shards(2);
  EXPECT_EQ(serial, sharded);
}

}  // namespace
}  // namespace lockss::experiment
