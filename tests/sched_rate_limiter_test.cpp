#include "sched/rate_limiter.hpp"

#include <gtest/gtest.h>

namespace lockss::sched {
namespace {

using sim::SimTime;

TEST(RateLimiterTest, BurstThenThrottle) {
  InvitationRateLimiter limiter(1.0, 3.0);  // 1 token/s, burst 3
  const SimTime t0 = SimTime::seconds(100);
  EXPECT_TRUE(limiter.try_admit(t0));
  EXPECT_TRUE(limiter.try_admit(t0));
  EXPECT_TRUE(limiter.try_admit(t0));
  EXPECT_FALSE(limiter.try_admit(t0));
  EXPECT_EQ(limiter.admitted(), 3u);
  EXPECT_EQ(limiter.rejected(), 1u);
}

TEST(RateLimiterTest, TokensRefillOverTime) {
  InvitationRateLimiter limiter(1.0, 1.0);
  EXPECT_TRUE(limiter.try_admit(SimTime::seconds(0)));
  EXPECT_FALSE(limiter.try_admit(SimTime::seconds(0)));
  EXPECT_FALSE(limiter.try_admit(SimTime::milliseconds(500)));
  EXPECT_TRUE(limiter.try_admit(SimTime::seconds(2)));
}

TEST(RateLimiterTest, RefillCappedAtBurst) {
  InvitationRateLimiter limiter(10.0, 2.0);
  EXPECT_TRUE(limiter.try_admit(SimTime::seconds(0)));
  // A long quiet period must not bank more than `burst` tokens.
  EXPECT_TRUE(limiter.try_admit(SimTime::seconds(1000)));
  EXPECT_TRUE(limiter.try_admit(SimTime::seconds(1000)));
  EXPECT_FALSE(limiter.try_admit(SimTime::seconds(1000)));
}

TEST(RateLimiterTest, SelfClockingUpdatesRate) {
  InvitationRateLimiter limiter(0.0, 4.0);
  // §6.3: consider at most 4x the legitimate solicitation rate.
  limiter.update_rate(0.5, 4.0);
  EXPECT_NEAR(limiter.rate_per_second(), 2.0, 1e-12);
}

TEST(RateLimiterTest, ZeroRateFallsBackToFloor) {
  InvitationRateLimiter limiter(0.0, 1.0);
  EXPECT_GT(limiter.rate_per_second(), 0.0);
  limiter.update_rate(0.0, 4.0);
  EXPECT_GT(limiter.rate_per_second(), 0.0);
}

TEST(RateLimiterTest, LongRunAdmissionRateMatchesConfiguredRate) {
  InvitationRateLimiter limiter(2.0, 1.0);  // 2 admissions per second
  uint64_t admitted = 0;
  // Offer 10 invitations per second for 100 s.
  for (int i = 0; i < 1000; ++i) {
    if (limiter.try_admit(SimTime::milliseconds(i * 100))) {
      ++admitted;
    }
  }
  EXPECT_NEAR(static_cast<double>(admitted), 200.0, 5.0);
}

TEST(RateLimiterTest, AvailableTokensIsNonMutating) {
  InvitationRateLimiter limiter(1.0, 5.0);
  const double before = limiter.available_tokens(SimTime::seconds(1));
  EXPECT_EQ(limiter.available_tokens(SimTime::seconds(1)), before);
  EXPECT_TRUE(limiter.try_admit(SimTime::seconds(1)));
}

}  // namespace
}  // namespace lockss::sched
