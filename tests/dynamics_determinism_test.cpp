// Deployment-dynamics determinism and teardown suite.
//
//   * Schedule properties: randomized churn configs produce well-formed
//     schedules — sorted, strictly alternating per peer (build-time
//     interval merging means the runtime can never double-depart), clipped
//     to the run, arrival counts consistent.
//   * Transition invariants: a randomized churn schedule replayed over a
//     live deployment must leave, after *every* transition, the departed
//     peer with zero live sessions, zero booked schedule slots (the
//     teardown audit: no leaked reservations), untouched metrics-slot
//     registration (everything registers at setup — the determinism
//     contract), and reference lists that only name registered identities.
//   * Bit-identity: a churn grid spanning session churn, regional outages,
//     arrivals, operators, and an adversary must produce bit-identical
//     RunResults (including the availability/recovery trace series) under
//     1, 2, and 8 parallel workers — the experiment_parallel_test pattern
//     extended to the dynamics subsystem.
//   * Death tests: double departure and recover-while-online assert, and
//     polls against a departed peer are absorbed without leaks.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "dynamics/churn.hpp"
#include "dynamics/operator_response.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "metrics/collector.hpp"
#include "net/fault_injection.hpp"
#include "net/network.hpp"
#include "net/node_slot_registry.hpp"
#include "peer/peer.hpp"
#include "sim/simulator.hpp"

namespace lockss {
namespace {

// --- Schedule properties ---------------------------------------------------

dynamics::ChurnConfig random_config(sim::Rng& rng) {
  dynamics::ChurnConfig config;
  if (rng.bernoulli(0.8)) {
    config.leave_rate_per_peer_year = rng.uniform() * 4.0;
    config.crash_rate_per_peer_year = rng.uniform() * 2.0;
  }
  config.mean_downtime_days = 1.0 + rng.uniform() * 20.0;
  if (rng.bernoulli(0.5)) {
    config.arrival_rate_per_year = rng.uniform() * 12.0;
  }
  if (rng.bernoulli(0.5)) {
    config.regions = 1 + static_cast<uint32_t>(rng.index(4));
    config.regional_outage_rate_per_year = rng.uniform() * 6.0;
    config.regional_outage_days = 0.5 + rng.uniform() * 10.0;
    config.regional_recovery_stagger_hours = rng.uniform() * 24.0;
    config.regional_state_loss = rng.bernoulli(0.5);
  }
  return config;
}

TEST(ChurnScheduleTest, RandomSchedulesAreWellFormed) {
  sim::Rng meta(20260730);
  const sim::SimTime duration = sim::SimTime::years(2);
  for (int iteration = 0; iteration < 50; ++iteration) {
    const uint32_t established = 1 + static_cast<uint32_t>(meta.index(40));
    const dynamics::ChurnConfig config = random_config(meta);
    sim::Rng rng(meta.next_u64());
    const dynamics::ChurnSchedule schedule =
        dynamics::build_churn_schedule(config, established, duration, rng);

    // Sorted by (time, peer, kind); everything inside the run.
    for (size_t i = 0; i < schedule.events.size(); ++i) {
      const dynamics::ChurnEvent& e = schedule.events[i];
      EXPECT_GE(e.at, sim::SimTime::zero());
      EXPECT_LT(e.at, duration);
      if (i > 0) {
        const dynamics::ChurnEvent& prev = schedule.events[i - 1];
        EXPECT_TRUE(prev.at < e.at ||
                    (prev.at == e.at &&
                     (prev.peer < e.peer ||
                      (prev.peer == e.peer &&
                       static_cast<int>(prev.kind) < static_cast<int>(e.kind)))))
            << "events out of order at " << i;
      }
    }
    // Per-peer transitions strictly alternate down/up; arrival ordinals are
    // each started exactly once.
    std::vector<bool> down(established, false);
    std::set<uint32_t> arrivals_seen;
    for (const dynamics::ChurnEvent& e : schedule.events) {
      switch (e.kind) {
        case dynamics::ChurnEventKind::kArrival:
          EXPECT_LT(e.peer, schedule.arrival_count);
          EXPECT_TRUE(arrivals_seen.insert(e.peer).second) << "arrival started twice";
          break;
        case dynamics::ChurnEventKind::kLeave:
        case dynamics::ChurnEventKind::kCrash:
          ASSERT_LT(e.peer, established);
          EXPECT_FALSE(down[e.peer]) << "double departure in schedule";
          down[e.peer] = true;
          break;
        case dynamics::ChurnEventKind::kRecover:
          ASSERT_LT(e.peer, established);
          EXPECT_TRUE(down[e.peer]) << "recovery while up";
          down[e.peer] = false;
          break;
      }
    }
    EXPECT_EQ(arrivals_seen.size(), schedule.arrival_count);
  }
}

TEST(ChurnScheduleTest, PureFunctionOfConfigAndSeed) {
  dynamics::ChurnConfig config;
  config.leave_rate_per_peer_year = 2.0;
  config.crash_rate_per_peer_year = 1.0;
  config.arrival_rate_per_year = 6.0;
  config.regions = 3;
  config.regional_outage_rate_per_year = 2.0;
  sim::Rng a(99);
  sim::Rng b(99);
  const auto one = dynamics::build_churn_schedule(config, 20, sim::SimTime::years(1), a);
  const auto two = dynamics::build_churn_schedule(config, 20, sim::SimTime::years(1), b);
  ASSERT_EQ(one.events.size(), two.events.size());
  ASSERT_GT(one.events.size(), 0u);
  for (size_t i = 0; i < one.events.size(); ++i) {
    EXPECT_EQ(one.events[i].at, two.events[i].at);
    EXPECT_EQ(one.events[i].kind, two.events[i].kind);
    EXPECT_EQ(one.events[i].peer, two.events[i].peer);
    EXPECT_EQ(one.events[i].state_loss, two.events[i].state_loss);
  }
  EXPECT_EQ(one.arrival_count, two.arrival_count);
}

// --- Transition invariants over a live deployment --------------------------

// A small self-contained deployment (the integration_churn_test pattern)
// the churn model can push around, with every invariant checkable from the
// outside.
class DynamicDeployment {
 public:
  static constexpr uint32_t kPeers = 16;
  static constexpr storage::AuId kAu{0};

  explicit DynamicDeployment(uint64_t seed) : network_(simulator_, sim::Rng(7)) {
    for (uint32_t p = 0; p < kPeers; ++p) {
      registry_.register_node(net::NodeId{p});
    }
    env_.simulator = &simulator_;
    env_.network = &network_;
    env_.metrics = &collector_;
    env_.nodes = &registry_;
    env_.enable_damage = false;
    env_.params.quorum = 4;
    env_.params.max_disagreeing = 1;
    env_.params.reference_list_target = 10;
    collector_.set_total_replicas(kPeers);

    sim::Rng root(seed);
    for (uint32_t p = 0; p < kPeers; ++p) {
      ids_.push_back(net::NodeId{p});
      peers_.push_back(std::make_unique<peer::Peer>(env_, net::NodeId{p}, root.split()));
      peers_.back()->join_au(kAu);
    }
    sim::Rng boot = root.split();
    for (uint32_t p = 0; p < kPeers; ++p) {
      std::vector<net::NodeId> others;
      for (uint32_t q = 0; q < kPeers; ++q) {
        if (q != p) {
          others.push_back(ids_[q]);
        }
      }
      peers_[p]->set_friends(boot.sample(others, 4));
      const auto seeds = boot.sample(others, env_.params.reference_list_target);
      peers_[p]->seed_reference_list(kAu, seeds);
      for (net::NodeId o : seeds) {
        peers_[p]->seed_grade(kAu, o, reputation::Grade::kEven);
        peers_[o.value]->seed_grade(kAu, ids_[p], reputation::Grade::kEven);
      }
    }
    for (auto& p : peers_) {
      p->start();
    }
  }

  std::vector<peer::Peer*> peer_ptrs() {
    std::vector<peer::Peer*> out;
    for (auto& p : peers_) {
      out.push_back(p.get());
    }
    return out;
  }

  sim::Simulator simulator_;
  net::Network network_;
  net::NodeSlotRegistry registry_;
  metrics::MetricsCollector collector_;
  peer::PeerEnvironment env_;
  std::vector<std::unique_ptr<peer::Peer>> peers_;
  std::vector<net::NodeId> ids_;
};

TEST(DynamicsInvariantTest, RandomChurnInterleavingsKeepInvariantsAfterEveryTransition) {
  sim::Rng meta(4242);
  for (int iteration = 0; iteration < 5; ++iteration) {
    DynamicDeployment deployment(1000 + static_cast<uint64_t>(iteration));

    dynamics::ChurnConfig config;
    config.leave_rate_per_peer_year = 3.0 + meta.uniform() * 3.0;
    config.crash_rate_per_peer_year = 1.0 + meta.uniform() * 2.0;
    config.mean_downtime_days = 5.0 + meta.uniform() * 20.0;
    config.regions = 2;
    config.regional_outage_rate_per_year = 2.0;
    config.regional_outage_days = 4.0;
    config.regional_recovery_stagger_hours = 8.0;
    config.regional_state_loss = meta.bernoulli(0.5);
    sim::Rng churn_rng(meta.next_u64());
    dynamics::ChurnSchedule schedule = dynamics::build_churn_schedule(
        config, DynamicDeployment::kPeers, sim::SimTime::years(1), churn_rng);
    ASSERT_GT(schedule.events.size(), 0u);

    net::OfflineSetFilter offline;
    deployment.network_.add_filter(&offline);
    dynamics::ChurnModel model(deployment.simulator_, std::move(schedule),
                               deployment.peer_ptrs(), {}, &offline);

    const uint32_t peers_registered = deployment.collector_.slots().peer_count();
    const uint32_t aus_registered = deployment.collector_.slots().au_count();
    uint64_t transitions = 0;
    model.set_transition_hook([&](const dynamics::ChurnEvent& event) {
      ++transitions;
      const sim::SimTime now = deployment.simulator_.now();
      if (event.kind == dynamics::ChurnEventKind::kArrival) {
        return;
      }
      peer::Peer& peer = *deployment.peers_[event.peer];
      if (event.kind == dynamics::ChurnEventKind::kRecover) {
        EXPECT_TRUE(peer.online());
      } else {
        // Teardown audit: a departed peer holds no live sessions and, with
        // every session's pending reservations released, no booked future
        // slots either.
        EXPECT_FALSE(peer.online());
        EXPECT_EQ(peer.active_poller_sessions(), 0u);
        EXPECT_EQ(peer.active_voter_sessions(), 0u);
        EXPECT_TRUE(peer.schedule().intervals_after(now).empty())
            << "leaked schedule reservations at departure";
      }
      // Metrics-slot invariant: registration is setup-time only; no
      // transition may grow the dense registry.
      EXPECT_EQ(deployment.collector_.slots().peer_count(), peers_registered);
      EXPECT_EQ(deployment.collector_.slots().au_count(), aus_registered);
      // Session tables at *every* peer only hold live ids, and reference
      // lists only name registered identities.
      for (uint32_t p = 0; p < DynamicDeployment::kPeers; ++p) {
        for (net::NodeId member :
             deployment.peers_[p]->reference_list(DynamicDeployment::kAu).members()) {
          EXPECT_LT(member.value, DynamicDeployment::kPeers);
        }
      }
    });
    model.start();
    deployment.simulator_.run_until(sim::SimTime::years(1));

    EXPECT_GT(transitions, 0u);
    EXPECT_GT(model.departures(), 0u);
    EXPECT_GT(model.recoveries(), 0u);
    EXPECT_LE(model.recoveries(), model.departures());
    EXPECT_GT(model.mean_recovery_days(), 0.0);
    EXPECT_LT(model.availability_mean(sim::SimTime::years(1)), 1.0);
    // The deployment as a whole kept working through the churn.
    const auto report = deployment.collector_.finalize(sim::SimTime::years(1));
    EXPECT_GT(report.successful_polls, 0u);
    deployment.network_.remove_filter(&offline);
  }
}

TEST(DynamicsInvariantTest, PollAgainstDepartedPeerIsAbsorbed) {
  // One voter departs for the middle third of the run: polls that sampled
  // it simply lose a voter (ack timeouts, §5.2 desynchronization absorbs
  // sporadic unavailability), and the departed peer comes back clean.
  DynamicDeployment deployment(77);
  dynamics::ChurnSchedule schedule;
  schedule.events.push_back(dynamics::ChurnEvent{sim::SimTime::days(120),
                                                 dynamics::ChurnEventKind::kLeave, 3, false});
  schedule.events.push_back(dynamics::ChurnEvent{sim::SimTime::days(240),
                                                 dynamics::ChurnEventKind::kRecover, 3, false});
  net::OfflineSetFilter offline;
  deployment.network_.add_filter(&offline);
  dynamics::ChurnModel model(deployment.simulator_, std::move(schedule),
                             deployment.peer_ptrs(), {}, &offline);
  model.start();
  deployment.simulator_.run_until(sim::SimTime::years(1));

  EXPECT_TRUE(deployment.peers_[3]->online());
  const auto report = deployment.collector_.finalize(sim::SimTime::years(1));
  EXPECT_GT(report.successful_polls, 0u);
  EXPECT_EQ(model.departures(), 1u);
  EXPECT_EQ(model.recoveries(), 1u);
  deployment.network_.remove_filter(&offline);
}

// --- Death tests: driver-contract violations assert ------------------------

TEST(DynamicsDeathTest, DoubleDepartureAsserts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  DynamicDeployment deployment(5);
  deployment.peers_[0]->depart();
  EXPECT_DEATH(deployment.peers_[0]->depart(), "double departure");
}

TEST(DynamicsDeathTest, RecoverWhileOnlineAsserts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  DynamicDeployment deployment(6);
  EXPECT_DEATH(deployment.peers_[0]->recover(false), "while online");
}

// --- Scenario-level bit-identity across worker counts ----------------------

void expect_identical(const experiment::RunResult& a, const experiment::RunResult& b) {
  ASSERT_EQ(a.trace.points.size(), b.trace.points.size());
  for (size_t k = 0; k < a.trace.points.size(); ++k) {
    SCOPED_TRACE(k);
    // Defaulted operator== covers every TracePoint field, including the
    // new availability/recovery series.
    EXPECT_TRUE(a.trace.points[k] == b.trace.points[k]);
  }
  EXPECT_EQ(a.report.access_failure_probability, b.report.access_failure_probability);
  EXPECT_EQ(a.report.mean_success_gap_days, b.report.mean_success_gap_days);
  EXPECT_EQ(a.report.successful_polls, b.report.successful_polls);
  EXPECT_EQ(a.report.inquorate_polls, b.report.inquorate_polls);
  EXPECT_EQ(a.report.alarms, b.report.alarms);
  EXPECT_EQ(a.report.repairs, b.report.repairs);
  EXPECT_EQ(a.report.loyal_effort_seconds, b.report.loyal_effort_seconds);
  EXPECT_EQ(a.report.adversary_effort_seconds, b.report.adversary_effort_seconds);
  EXPECT_EQ(a.polls_started, b.polls_started);
  EXPECT_EQ(a.solicitations_sent, b.solicitations_sent);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.messages_filtered, b.messages_filtered);
  EXPECT_EQ(a.admission_verdicts, b.admission_verdicts);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.churn_departures, b.churn_departures);
  EXPECT_EQ(a.churn_recoveries, b.churn_recoveries);
  EXPECT_EQ(a.churn_arrivals, b.churn_arrivals);
  EXPECT_EQ(a.availability_mean, b.availability_mean);
  EXPECT_EQ(a.mean_recovery_days, b.mean_recovery_days);
  EXPECT_EQ(a.operator_interventions, b.operator_interventions);
}

experiment::ScenarioConfig dynamic_config(uint64_t seed) {
  experiment::ScenarioConfig config;
  config.peer_count = 12;
  config.au_count = 2;
  config.duration = sim::SimTime::days(400);
  config.seed = seed;
  config.trace_interval = sim::SimTime::days(30);
  config.churn.leave_rate_per_peer_year = 1.5;
  config.churn.crash_rate_per_peer_year = 0.7;
  config.churn.mean_downtime_days = 8.0;
  config.churn.arrival_rate_per_year = 3.0;
  return config;
}

TEST(DynamicsDeterminismTest, ChurnGridBitIdenticalAcross1And2And8Workers) {
  std::vector<experiment::ScenarioConfig> grid;
  for (uint64_t seed = 11; seed <= 12; ++seed) {
    grid.push_back(dynamic_config(seed));

    experiment::ScenarioConfig regional = dynamic_config(seed);
    regional.churn.regions = 3;
    regional.churn.regional_outage_rate_per_year = 3.0;
    regional.churn.regional_outage_days = 6.0;
    regional.churn.regional_recovery_stagger_hours = 12.0;
    regional.churn.regional_state_loss = true;
    grid.push_back(regional);

    experiment::ScenarioConfig attacked = dynamic_config(seed);
    attacked.adversary.kind = experiment::AdversarySpec::Kind::kBruteForce;
    attacked.operators.detection_latency = sim::SimTime::days(2);
    attacked.operators.policies.push_back(
        {dynamics::OperatorTrigger::kAlarm, dynamics::OperatorAction::kAuRecrawl, 1.0});
    attacked.operators.policies.push_back(
        {dynamics::OperatorTrigger::kRecovery, dynamics::OperatorAction::kRekey, 1.0});
    attacked.operators.policies.push_back(
        {dynamics::OperatorTrigger::kAlarm, dynamics::OperatorAction::kRateTighten, 0.5});
    attacked.operators.policies.push_back(
        {dynamics::OperatorTrigger::kRecovery, dynamics::OperatorAction::kFriendRefresh, 1.0});
    grid.push_back(attacked);
  }

  const auto one = experiment::ParallelRunner(1).run(grid);
  const auto two = experiment::ParallelRunner(2).run(grid);
  const auto eight = experiment::ParallelRunner(8).run(grid);
  ASSERT_EQ(one.size(), grid.size());
  ASSERT_EQ(two.size(), grid.size());
  ASSERT_EQ(eight.size(), grid.size());
  // Guard against vacuous passes: churn, arrivals, and recoveries must have
  // actually happened, and the dynamic trace series must carry signal.
  EXPECT_GT(one[0].churn_departures, 0u);
  EXPECT_GT(one[0].churn_recoveries, 0u);
  EXPECT_GT(one[0].churn_arrivals, 0u);
  EXPECT_LT(one[0].availability_mean, 1.0);
  ASSERT_TRUE(one[0].trace.enabled());
  EXPECT_GT(one[0].trace.points.back().departures, 0u);
  EXPECT_GT(one[1].churn_departures, 0u);  // regional outages fired
  for (size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(one[i], two[i]);
    expect_identical(one[i], eight[i]);
  }
}

TEST(DynamicsDeterminismTest, StaticConfigUnaffectedByDynamicsPlumbing) {
  // A config with dynamics disabled takes no dynamics RNG splits: the run
  // must be bit-identical to itself across worker counts *and* produce
  // default dynamics accounting.
  experiment::ScenarioConfig config;
  config.peer_count = 12;
  config.au_count = 2;
  config.duration = sim::SimTime::days(200);
  config.seed = 3;
  const experiment::RunResult r = experiment::run_scenario(config);
  EXPECT_EQ(r.churn_departures, 0u);
  EXPECT_EQ(r.churn_recoveries, 0u);
  EXPECT_EQ(r.churn_arrivals, 0u);
  EXPECT_EQ(r.availability_mean, 1.0);
  EXPECT_EQ(r.mean_recovery_days, 0.0);
  for (uint64_t n : r.operator_interventions) {
    EXPECT_EQ(n, 0u);
  }
}

}  // namespace
}  // namespace lockss
