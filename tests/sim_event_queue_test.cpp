#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <utility>
#include <vector>

namespace lockss::sim {
namespace {

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::seconds(3), [&] { order.push_back(3); });
  q.push(SimTime::seconds(1), [&] { order.push_back(1); });
  q.push(SimTime::seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TieBrokenByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime::seconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, CancelledEventSkipped) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.push(SimTime::seconds(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::seconds(1), [&] { order.push_back(1); });
  EventHandle h = q.push(SimTime::seconds(2), [&] { order.push_back(2); });
  q.push(SimTime::seconds(3), [&] { order.push_back(3); });
  h.cancel();
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  int runs = 0;
  EventHandle h = q.push(SimTime::seconds(1), [&] { ++runs; });
  q.pop().fn();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or affect anything
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, NextTimeReportsEarliestPending) {
  EventQueue q;
  EventHandle h = q.push(SimTime::seconds(1), [] {});
  q.push(SimTime::seconds(5), [] {});
  EXPECT_EQ(q.next_time(), SimTime::seconds(1));
  h.cancel();
  EXPECT_EQ(q.next_time(), SimTime::seconds(5));
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

TEST(EventQueueTest, PopReturnsTimestamp) {
  EventQueue q;
  q.push(SimTime::days(2), [] {});
  auto popped = q.pop();
  EXPECT_EQ(popped.at, SimTime::days(2));
}

// Regression (carried over from the shared_ptr design, where a
// default-constructed handle dereferenced a null `fired_`): handles must be
// inert not only when default-constructed but also when they outlive their
// event through slot recycling.
TEST(EventQueueTest, StaleHandleToRecycledSlotIsInert) {
  EventQueue q;
  EventHandle first = q.push(SimTime::seconds(1), [] {});
  q.pop();  // fires the event; its slot returns to the free list
  EXPECT_FALSE(first.pending());

  // The next push reuses the slot under a new generation.
  bool ran = false;
  EventHandle second = q.push(SimTime::seconds(2), [&] { ran = true; });
  EXPECT_TRUE(second.pending());
  EXPECT_FALSE(first.pending());
  first.cancel();  // stale handle must not touch the new occupant
  EXPECT_TRUE(second.pending());
  q.pop().fn();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, CancelledSlotRecycledAfterSurfacing) {
  EventQueue q;
  EventHandle h = q.push(SimTime::seconds(1), [] {});
  q.push(SimTime::seconds(2), [] {});
  h.cancel();
  EXPECT_EQ(q.size(), 1u);
  // The cancelled record surfaces and is skipped; its handle stays inert.
  EXPECT_EQ(q.next_time(), SimTime::seconds(2));
  EXPECT_FALSE(h.pending());
  h.cancel();  // idempotent on a released slot
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, SizeIsLiveCountAndEmptyIsConst) {
  EventQueue q;
  EventHandle a = q.push(SimTime::seconds(1), [] {});
  q.push(SimTime::seconds(2), [] {});
  const EventQueue& cq = q;
  EXPECT_EQ(cq.size(), 2u);
  a.cancel();
  // Cancellation updates the live count immediately, no pruning required.
  EXPECT_EQ(cq.size(), 1u);
  EXPECT_FALSE(cq.empty());
}

TEST(EventQueueTest, PeakDepthTracksHighWaterMark) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) {
    q.push(SimTime::seconds(i + 1), [] {});
  }
  while (!q.empty()) {
    q.pop();
  }
  EXPECT_EQ(q.peak_depth(), 5u);
}

// The zero-allocation contract: callbacks whose captures fit the inline
// buffer must never touch the heap on schedule or cancel. The hook counts
// InlineFn's heap fallbacks process-wide.
TEST(EventQueueTest, SmallCallbacksNeverAllocate) {
  EventQueue q;
  uint64_t sink = 0;
  InlineFn::reset_heap_allocations();
  std::vector<EventHandle> handles;
  for (uint64_t i = 0; i < 1000; ++i) {
    handles.push_back(q.push(SimTime::seconds(static_cast<double>(i)), [&sink, i] { sink += i; }));
  }
  for (size_t i = 0; i < handles.size(); i += 2) {
    handles[i].cancel();
  }
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(InlineFn::heap_allocations(), 0u);
  EXPECT_GT(sink, 0u);
}

TEST(EventQueueTest, OversizedCallbacksFallBackToHeapAndStillRun) {
  EventQueue q;
  struct Big {
    char payload[128];
  };
  Big big{};
  big.payload[0] = 7;
  char out = 0;
  InlineFn::reset_heap_allocations();
  q.push(SimTime::seconds(1), [big, &out] { out = big.payload[0]; });
  EXPECT_EQ(InlineFn::heap_allocations(), 1u);
  q.pop().fn();
  EXPECT_EQ(out, 7);
  InlineFn::reset_heap_allocations();
}

// Randomized stress against a reference model: a std::multimap keyed by
// (time, seq) reproduces the queue's contract (time order, FIFO among ties,
// lazy cancellation) with none of its machinery.
TEST(EventQueueStressTest, MatchesMultimapModel) {
  EventQueue q;
  std::multimap<std::pair<int64_t, uint64_t>, int> model;
  std::map<int, EventHandle> handles;  // id -> handle for live model events
  std::mt19937_64 rng(20260730);
  int next_id = 0;
  int last_fired = -1;
  uint64_t seq = 0;

  for (int step = 0; step < 20000; ++step) {
    const uint64_t op = rng() % 10;
    if (op < 5 || model.empty()) {
      // Push at a random time; ties with live events are common on purpose.
      const int64_t t = static_cast<int64_t>(rng() % 512);
      const int id = next_id++;
      handles[id] = q.push(SimTime::seconds(static_cast<double>(t)),
                           [id, &last_fired] { last_fired = id; });
      model.emplace(std::make_pair(t * int64_t{1000000000}, seq++), id);
      EXPECT_TRUE(handles[id].pending());
    } else if (op < 7) {
      // Cancel a uniformly random live event.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng() % model.size()));
      const int id = it->second;
      handles[id].cancel();
      EXPECT_FALSE(handles[id].pending());
      handles.erase(id);
      model.erase(it);
    } else {
      // Pop: must match the model's earliest (time, seq).
      ASSERT_FALSE(q.empty());
      EXPECT_EQ(q.next_time().ns(), model.begin()->first.first);
      auto popped = q.pop();
      popped.fn();
      EXPECT_EQ(popped.at.ns(), model.begin()->first.first);
      EXPECT_EQ(last_fired, model.begin()->second);
      handles.erase(model.begin()->second);
      model.erase(model.begin());
    }
    ASSERT_EQ(q.size(), model.size());
  }

  // Drain what is left and verify full order.
  while (!model.empty()) {
    ASSERT_FALSE(q.empty());
    auto popped = q.pop();
    popped.fn();
    EXPECT_EQ(popped.at.ns(), model.begin()->first.first);
    EXPECT_EQ(last_fired, model.begin()->second);
    model.erase(model.begin());
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace lockss::sim
