#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lockss::sim {
namespace {

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::seconds(3), [&] { order.push_back(3); });
  q.push(SimTime::seconds(1), [&] { order.push_back(1); });
  q.push(SimTime::seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TieBrokenByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime::seconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, CancelledEventSkipped) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.push(SimTime::seconds(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::seconds(1), [&] { order.push_back(1); });
  EventHandle h = q.push(SimTime::seconds(2), [&] { order.push_back(2); });
  q.push(SimTime::seconds(3), [&] { order.push_back(3); });
  h.cancel();
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  int runs = 0;
  EventHandle h = q.push(SimTime::seconds(1), [&] { ++runs; });
  q.pop().fn();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or affect anything
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, NextTimeReportsEarliestPending) {
  EventQueue q;
  EventHandle h = q.push(SimTime::seconds(1), [] {});
  q.push(SimTime::seconds(5), [] {});
  EXPECT_EQ(q.next_time(), SimTime::seconds(1));
  h.cancel();
  EXPECT_EQ(q.next_time(), SimTime::seconds(5));
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

TEST(EventQueueTest, PopReturnsTimestamp) {
  EventQueue q;
  q.push(SimTime::days(2), [] {});
  auto popped = q.pop();
  EXPECT_EQ(popped.at, SimTime::days(2));
}

}  // namespace
}  // namespace lockss::sim
