// Protocol event trace determinism matrix (docs/observability.md).
//
// The tracing contract has two halves, both pinned here:
//   * disabled (the default), every hook is an inert null check — a traced
//     build produces byte-for-byte the untraced RunResult, so the golden
//     corpus never notices the subsystem exists;
//   * enabled, the canonical trace is itself bit-identical at every shard
//     count — the serialized bytes at shards 1, 2, 4, and 8 are equal, the
//     same way the scalar metrics are (tests/sharding_identity_test.cpp).
// The matrix scenario deliberately turns everything on at once — churn,
// operator policies, link faults, and a windowed adversary — so every hook
// class (poller, voter, churn, operator, fault) emits into the same trace.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "campaign/json.hpp"
#include "experiment/scenario.hpp"
#include "obs/event.hpp"
#include "obs/event_log.hpp"
#include "obs/export.hpp"

namespace lockss::experiment {
namespace {

// The golden corpus deployment with every dynamic subsystem enabled: the
// densest hook coverage the harness can produce at test scale.
ScenarioConfig everything_config() {
  ScenarioConfig config;
  config.peer_count = 12;
  config.au_count = 2;
  config.duration = sim::SimTime::days(400);
  config.seed = 20250730;
  config.damage.mean_disk_years_between_failures = 0.2;
  config.damage.aus_per_disk = config.au_count;
  config.adversary.kind = AdversarySpec::Kind::kPipeStoppage;
  config.adversary.cadence.attack_duration = sim::SimTime::days(30);
  config.adversary.cadence.recuperation = sim::SimTime::days(15);
  config.adversary.cadence.coverage = 0.5;
  config.churn.leave_rate_per_peer_year = 1.0;
  config.churn.crash_rate_per_peer_year = 0.5;
  config.churn.mean_downtime_days = 6.0;
  config.churn.arrival_rate_per_year = 2.0;
  config.operators.detection_latency = sim::SimTime::days(2);
  config.operators.policies.push_back(
      {dynamics::OperatorTrigger::kAlarm, dynamics::OperatorAction::kAuRecrawl, 1.0});
  config.faults.loss_rate = 0.10;
  config.faults.jitter = sim::SimTime::milliseconds(10);
  config.obs_trace.enabled = true;
  return config;
}

// Scalar results must match exactly whether or not the trace rode along;
// spot-check the fields most sensitive to perturbation.
void expect_same_run(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.report.access_failure_probability, b.report.access_failure_probability);
  EXPECT_EQ(a.report.successful_polls, b.report.successful_polls);
  EXPECT_EQ(a.report.loyal_effort_seconds, b.report.loyal_effort_seconds);
  EXPECT_EQ(a.polls_started, b.polls_started);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.churn_departures, b.churn_departures);
  EXPECT_EQ(a.faults_lost, b.faults_lost);
  EXPECT_EQ(a.ack_timeouts, b.ack_timeouts);
}

TEST(ObsTraceTest, DisabledTracingChangesNothing) {
  ScenarioConfig config = everything_config();
  config.obs_trace.enabled = false;
  const RunResult untraced = run_scenario(config);
  EXPECT_FALSE(untraced.obs_events.enabled);
  EXPECT_TRUE(untraced.obs_events.events.empty());

  // Tracing consumes no RNG (sampling is a pure hash), so the traced run
  // must reproduce the untraced one exactly.
  config.obs_trace.enabled = true;
  const RunResult traced = run_scenario(config);
  EXPECT_TRUE(traced.obs_events.enabled);
  EXPECT_FALSE(traced.obs_events.events.empty());
  expect_same_run(untraced, traced);
}

TEST(ObsTraceTest, TraceBytesIdenticalAcrossShardCounts) {
  ScenarioConfig config = everything_config();
  config.shards = 1;
  const RunResult serial = run_scenario(config);
  ASSERT_TRUE(serial.obs_events.enabled);
  ASSERT_GT(serial.obs_events.events.size(), 100u);
  EXPECT_EQ(serial.obs_events.dropped, 0u);
  std::string serial_bytes;
  obs::serialize_trace(serial.obs_events, &serial_bytes);

  for (uint32_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    config.shards = shards;
    const RunResult sharded = run_scenario(config);
    expect_same_run(serial, sharded);
    std::string sharded_bytes;
    obs::serialize_trace(sharded.obs_events, &sharded_bytes);
    EXPECT_EQ(serial_bytes, sharded_bytes);
  }
}

TEST(ObsTraceTest, KindMaskFiltersDeterministically) {
  // A poll-only mask at two shard counts: still byte-identical, and every
  // surviving event is a poll-domain kind.
  ScenarioConfig config = everything_config();
  config.obs_trace.kind_mask = obs::kMaskPoll;
  config.shards = 1;
  const RunResult serial = run_scenario(config);
  ASSERT_FALSE(serial.obs_events.events.empty());
  for (const obs::Event& e : serial.obs_events.events) {
    EXPECT_NE(obs::kind_bit(e.kind) & obs::kMaskPoll, 0u);
  }
  std::string serial_bytes;
  obs::serialize_trace(serial.obs_events, &serial_bytes);
  config.shards = 4;
  const RunResult sharded = run_scenario(config);
  std::string sharded_bytes;
  obs::serialize_trace(sharded.obs_events, &sharded_bytes);
  EXPECT_EQ(serial_bytes, sharded_bytes);
}

TEST(ObsTraceTest, SamplingIsDeterministicAcrossShardCounts) {
  // Hash-based sampling keeps a strict, shard-invariant subset: the same
  // events survive at every shard count, and fewer than at rate 1.0.
  ScenarioConfig config = everything_config();
  config.obs_trace.sample_rate = 0.5;
  config.shards = 1;
  const RunResult serial = run_scenario(config);
  ASSERT_FALSE(serial.obs_events.events.empty());
  std::string serial_bytes;
  obs::serialize_trace(serial.obs_events, &serial_bytes);

  config.shards = 4;
  const RunResult sharded = run_scenario(config);
  std::string sharded_bytes;
  obs::serialize_trace(sharded.obs_events, &sharded_bytes);
  EXPECT_EQ(serial_bytes, sharded_bytes);

  config.shards = 1;
  config.obs_trace.sample_rate = 1.0;
  const RunResult full = run_scenario(config);
  EXPECT_LT(serial.obs_events.events.size(), full.obs_events.events.size());
  expect_same_run(serial, full);  // sampling never perturbs the simulation
}

TEST(ObsTraceTest, RingOverflowCountsDrops) {
  // A tiny per-sink ring must overflow on this workload; the drop counter
  // accounts for every event the ring refused, and re-running reproduces
  // the identical truncated trace (determinism within one shard count).
  ScenarioConfig config = everything_config();
  config.obs_trace.ring_capacity = 8;
  config.shards = 1;
  const RunResult first = run_scenario(config);
  EXPECT_GT(first.obs_events.dropped, 0u);
  const RunResult second = run_scenario(config);
  EXPECT_EQ(first.obs_events, second.obs_events);

  config.obs_trace.ring_capacity = 0;
  const RunResult unbounded = run_scenario(config);
  EXPECT_EQ(unbounded.obs_events.dropped, 0u);
  EXPECT_EQ(first.obs_events.events.size() + first.obs_events.dropped,
            unbounded.obs_events.events.size());
}

TEST(ObsTraceTest, BinaryRoundTrip) {
  ScenarioConfig config = everything_config();
  config.duration = sim::SimTime::days(120);
  const RunResult r = run_scenario(config);
  ASSERT_FALSE(r.obs_events.events.empty());

  std::string bytes;
  obs::serialize_trace(r.obs_events, &bytes);
  obs::EventTrace back;
  std::string error;
  ASSERT_TRUE(obs::deserialize_trace(bytes, &back, &error)) << error;
  EXPECT_EQ(back, r.obs_events);

  // Header guards: a truncated or wrong-magic blob is a diagnosed error,
  // not garbage events.
  obs::EventTrace junk;
  EXPECT_FALSE(obs::deserialize_trace(bytes.substr(0, bytes.size() - 3), &junk, &error));
  std::string corrupt = bytes;
  corrupt[0] ^= 0x5A;
  EXPECT_FALSE(obs::deserialize_trace(corrupt, &junk, &error));
}

TEST(ObsTraceTest, CanonicalOrderIsSorted) {
  const RunResult r = run_scenario(everything_config());
  const auto& events = r.obs_events.events;
  ASSERT_GT(events.size(), 1u);
  for (size_t k = 1; k < events.size(); ++k) {
    const obs::Event& a = events[k - 1];
    const obs::Event& b = events[k];
    const bool ordered =
        a.time_ns < b.time_ns ||
        (a.time_ns == b.time_ns &&
         (a.domain < b.domain || (a.domain == b.domain && a.origin <= b.origin)));
    EXPECT_TRUE(ordered) << "event " << k << " out of canonical order";
  }
}

TEST(ObsTraceTest, CsvExportHasHeaderAndOneRowPerEvent) {
  ScenarioConfig config = everything_config();
  config.duration = sim::SimTime::days(120);
  const RunResult r = run_scenario(config);
  std::ostringstream out;
  obs::write_csv(out, r.obs_events.events);
  const std::string csv = out.str();
  EXPECT_EQ(csv.rfind("time_ns,kind,domain,origin,other,au,poll,arg\n", 0), 0u);
  size_t lines = 0;
  for (char c : csv) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, r.obs_events.events.size() + 1);
}

TEST(ObsTraceTest, PerfettoExportIsWellFormedJson) {
  ScenarioConfig config = everything_config();
  config.duration = sim::SimTime::days(120);
  const RunResult r = run_scenario(config);
  ASSERT_FALSE(r.obs_events.events.empty());
  std::ostringstream out;
  obs::write_perfetto_json(out, r.obs_events.events);

  campaign::Json parsed;
  std::string error;
  ASSERT_TRUE(campaign::parse_json(out.str(), &parsed, &error)) << error;
  ASSERT_TRUE(parsed.is_object());
  const campaign::Json* trace_events = parsed.find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  EXPECT_FALSE(trace_events->array_items.empty());
  // Spot-check the trace-event schema on the first entry.
  const campaign::Json& first = trace_events->array_items.front();
  ASSERT_TRUE(first.is_object());
  EXPECT_NE(first.find("ph"), nullptr);
  EXPECT_NE(first.find("ts"), nullptr);
  EXPECT_NE(first.find("name"), nullptr);
}

TEST(ObsTraceTest, EventKindNamesRoundTrip) {
  for (size_t k = 0; k < obs::kEventKindCount; ++k) {
    const auto kind = static_cast<obs::EventKind>(k);
    obs::EventKind back;
    ASSERT_TRUE(obs::parse_event_kind(obs::event_kind_name(kind), &back))
        << obs::event_kind_name(kind);
    EXPECT_EQ(back, kind);
  }
  obs::EventKind ignored;
  EXPECT_FALSE(obs::parse_event_kind("not_a_kind", &ignored));
}

}  // namespace
}  // namespace lockss::experiment
