#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "storage/au.hpp"
#include "storage/damage.hpp"
#include "storage/replica.hpp"
#include "storage/storage_node.hpp"

namespace lockss::storage {
namespace {

constexpr AuId kAu{7};
constexpr AuSpec kSmallSpec{.size_bytes = 1024 * 1024, .block_count = 16};

TEST(AuSpecTest, DefaultMatchesPaper) {
  AuSpec spec;
  EXPECT_EQ(spec.size_bytes, 512ull * 1024 * 1024);  // 0.5 GB (§6.3)
  EXPECT_EQ(spec.block_size_bytes() * spec.block_count, spec.size_bytes);
}

TEST(CanonicalContentTest, DistinctAcrossAusAndBlocks) {
  EXPECT_NE(canonical_content(AuId{1}, 0), canonical_content(AuId{2}, 0));
  EXPECT_NE(canonical_content(AuId{1}, 0), canonical_content(AuId{1}, 1));
  EXPECT_EQ(canonical_content(AuId{1}, 0), canonical_content(AuId{1}, 0));
}

TEST(ReplicaTest, FreshReplicaIsUndamaged) {
  AuReplica r(kAu, kSmallSpec);
  EXPECT_FALSE(r.damaged());
  EXPECT_EQ(r.damaged_block_count(), 0u);
  for (uint32_t b = 0; b < kSmallSpec.block_count; ++b) {
    EXPECT_FALSE(r.block_damaged(b));
  }
}

TEST(ReplicaTest, CorruptAndRestoreRoundTrip) {
  AuReplica r(kAu, kSmallSpec);
  EXPECT_TRUE(r.corrupt_block(3, 0x1234));
  EXPECT_TRUE(r.damaged());
  EXPECT_TRUE(r.block_damaged(3));
  EXPECT_EQ(r.damaged_block_count(), 1u);
  r.restore_block(3);
  EXPECT_FALSE(r.damaged());
}

TEST(ReplicaTest, DoubleCorruptionCountsOnce) {
  AuReplica r(kAu, kSmallSpec);
  EXPECT_TRUE(r.corrupt_block(3, 1));
  EXPECT_FALSE(r.corrupt_block(3, 2));  // already damaged
  EXPECT_EQ(r.damaged_block_count(), 1u);
}

TEST(ReplicaTest, CorruptionNeverProducesCanonicalWord) {
  AuReplica r(kAu, kSmallSpec);
  for (uint64_t entropy = 0; entropy < 200; ++entropy) {
    r.corrupt_block(5, entropy);
    EXPECT_TRUE(r.block_damaged(5));
  }
}

TEST(ReplicaTest, RepairViaSetBlockContent) {
  AuReplica good(kAu, kSmallSpec);
  AuReplica bad(kAu, kSmallSpec);
  bad.corrupt_block(9, 42);
  // §4.3 repair: fetch the block from a disagreeing (correct) voter.
  bad.set_block_content(9, good.block_content(9));
  EXPECT_FALSE(bad.damaged());
}

TEST(ReplicaTest, VoteHashesAgreeForIdenticalReplicas) {
  AuReplica a(kAu, kSmallSpec);
  AuReplica b(kAu, kSmallSpec);
  const crypto::Digest64 nonce{999};
  EXPECT_EQ(a.vote_hashes(nonce), b.vote_hashes(nonce));
}

TEST(ReplicaTest, VoteHashesDivergeFromDamagedBlockOn) {
  AuReplica a(kAu, kSmallSpec);
  AuReplica b(kAu, kSmallSpec);
  b.corrupt_block(6, 1);
  const crypto::Digest64 nonce{999};
  const auto ha = a.vote_hashes(nonce);
  const auto hb = b.vote_hashes(nonce);
  for (uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(ha[i], hb[i]) << "block " << i;
  }
  for (uint32_t i = 6; i < kSmallSpec.block_count; ++i) {
    EXPECT_NE(ha[i], hb[i]) << "block " << i;
  }
}

TEST(ReplicaTest, VoteHashesDependOnNonce) {
  AuReplica a(kAu, kSmallSpec);
  EXPECT_NE(a.vote_hashes(crypto::Digest64{1}), a.vote_hashes(crypto::Digest64{2}));
}

TEST(ReplicaTest, ExpectedBlockHashMatchesVoteChain) {
  AuReplica a(kAu, kSmallSpec);
  const crypto::Digest64 nonce{4242};
  const auto hashes = a.vote_hashes(nonce);
  crypto::Digest64 running = crypto::vote_chain_seed(nonce);
  for (uint32_t b = 0; b < kSmallSpec.block_count; ++b) {
    running = a.expected_block_hash(running, b);
    EXPECT_EQ(running, hashes[b]);
  }
}

TEST(StorageNodeTest, AddAndQueryReplicas) {
  StorageNode node;
  node.add_replica(AuId{1}, kSmallSpec);
  node.add_replica(AuId{2}, kSmallSpec);
  EXPECT_EQ(node.replica_count(), 2u);
  EXPECT_TRUE(node.has_replica(AuId{1}));
  EXPECT_FALSE(node.has_replica(AuId{3}));
  EXPECT_EQ(node.au_ids().size(), 2u);
}

TEST(StorageNodeTest, DamagedReplicaCount) {
  StorageNode node;
  node.add_replica(AuId{1}, kSmallSpec);
  node.add_replica(AuId{2}, kSmallSpec);
  node.add_replica(AuId{3}, kSmallSpec);
  EXPECT_EQ(node.damaged_replica_count(), 0u);
  node.replica(AuId{2}).corrupt_block(0, 5);
  EXPECT_EQ(node.damaged_replica_count(), 1u);
}

TEST(DamageProcessTest, MeanInterarrivalScalesWithCollection) {
  sim::Simulator sim;
  StorageNode node;
  for (uint32_t i = 0; i < 50; ++i) {
    node.add_replica(AuId{i}, kSmallSpec);
  }
  DamageConfig config{.mean_disk_years_between_failures = 5.0, .aus_per_disk = 50.0};
  DamageProcess process(sim, sim::Rng(3), config, node);
  // 50 AUs = exactly one disk -> one event per 5 years.
  EXPECT_NEAR(process.mean_interarrival().to_years(), 5.0, 1e-9);
}

TEST(DamageProcessTest, InjectsAtApproximatelyConfiguredRate) {
  sim::Simulator sim;
  StorageNode node;
  for (uint32_t i = 0; i < 50; ++i) {
    node.add_replica(AuId{i}, kSmallSpec);
  }
  // Speed the clock: 0.05 disk-years between failures -> ~20/yr/disk.
  DamageConfig config{.mean_disk_years_between_failures = 0.05, .aus_per_disk = 50.0};
  uint64_t callbacks = 0;
  DamageProcess process(sim, sim::Rng(17), config, node,
                        [&](AuId, uint32_t) { ++callbacks; });
  sim.run_until(sim::SimTime::years(2));
  EXPECT_EQ(callbacks, process.damage_events());
  // Expectation: 40 events over 2 years; Poisson sd ~6.3.
  EXPECT_GT(process.damage_events(), 15u);
  EXPECT_LT(process.damage_events(), 80u);
  EXPECT_GT(node.damaged_replica_count(), 0u);
}

TEST(DamageProcessTest, EmptyCollectionInjectsNothing) {
  sim::Simulator sim;
  StorageNode node;
  DamageProcess process(sim, sim::Rng(19), {}, node);
  sim.run_until(sim::SimTime::years(1));
  EXPECT_EQ(process.damage_events(), 0u);
}

TEST(DamageProcessTest, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    sim::Simulator sim;
    StorageNode node;
    for (uint32_t i = 0; i < 50; ++i) {
      node.add_replica(AuId{i}, kSmallSpec);
    }
    DamageConfig config{.mean_disk_years_between_failures = 0.1, .aus_per_disk = 50.0};
    DamageProcess process(sim, sim::Rng(seed), config, node);
    sim.run_until(sim::SimTime::years(1));
    return process.damage_events();
  };
  EXPECT_EQ(run(123), run(123));
}

}  // namespace
}  // namespace lockss::storage
