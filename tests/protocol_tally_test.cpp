#include "protocol/tally.hpp"

#include <gtest/gtest.h>

#include "storage/replica.hpp"

namespace lockss::protocol {
namespace {

constexpr storage::AuId kAu{1};
constexpr storage::AuSpec kSpec{.size_bytes = 1024 * 1024, .block_count = 16};
constexpr uint32_t kQuorum = 10;
constexpr uint32_t kMaxDisagree = 3;

// Builds a vote for `voter_replica` under `nonce`.
std::vector<crypto::Digest64> vote_for(const storage::AuReplica& replica, uint64_t nonce) {
  return replica.vote_hashes(crypto::Digest64{nonce});
}

class TallyTest : public ::testing::Test {
 protected:
  TallyTest() : poller_replica_(kAu, kSpec) {}

  // Adds `n` inner votes from undamaged replicas.
  void add_good_votes(Tally& tally, uint32_t n, bool inner = true, uint32_t id_base = 100) {
    storage::AuReplica good(kAu, kSpec);
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t nonce = 1000 + i + id_base;
      tally.add_vote(net::NodeId{id_base + i}, crypto::Digest64{nonce},
                     vote_for(good, nonce), inner);
    }
  }

  storage::AuReplica poller_replica_;
};

TEST_F(TallyTest, AllAgreeingVotesComplete) {
  Tally tally(poller_replica_, kQuorum, kMaxDisagree);
  add_good_votes(tally, 10);
  EXPECT_TRUE(tally.quorate());
  const auto step = tally.advance();
  EXPECT_EQ(step.kind, Tally::Step::Kind::kDone);
  EXPECT_EQ(tally.agreeing_voters().size(), 10u);
  EXPECT_TRUE(tally.disagreeing_voters().empty());
}

TEST_F(TallyTest, QuorumAccounting) {
  Tally tally(poller_replica_, kQuorum, kMaxDisagree);
  add_good_votes(tally, 9);
  EXPECT_FALSE(tally.quorate());
  add_good_votes(tally, 1, true, 300);
  EXPECT_TRUE(tally.quorate());
  EXPECT_EQ(tally.inner_votes(), 10u);
}

TEST_F(TallyTest, OuterVotesDoNotCountTowardOutcome) {
  Tally tally(poller_replica_, kQuorum, kMaxDisagree);
  add_good_votes(tally, 9, /*inner=*/true);
  add_good_votes(tally, 5, /*inner=*/false, 300);
  EXPECT_FALSE(tally.quorate());  // only 9 inner
  EXPECT_EQ(tally.total_votes(), 14u);
}

TEST_F(TallyTest, FewDisagreeingVotesStillLandslide) {
  // Up to kMaxDisagree damaged voters leave the poll in landslide agreement.
  Tally tally(poller_replica_, kQuorum, kMaxDisagree);
  add_good_votes(tally, 10);
  storage::AuReplica damaged(kAu, kSpec);
  damaged.corrupt_block(4, 99);
  for (uint32_t i = 0; i < kMaxDisagree; ++i) {
    const uint64_t nonce = 5000 + i;
    tally.add_vote(net::NodeId{200 + i}, crypto::Digest64{nonce}, vote_for(damaged, nonce), true);
  }
  const auto step = tally.advance();
  EXPECT_EQ(step.kind, Tally::Step::Kind::kDone);
  EXPECT_EQ(tally.disagreeing_voters().size(), kMaxDisagree);
  EXPECT_FALSE(tally.voter_agreed_throughout(net::NodeId{200}));
  EXPECT_TRUE(tally.voter_agreed_throughout(net::NodeId{100}));
}

TEST_F(TallyTest, DamagedPollerTriggersRepairAtDamagedBlock) {
  poller_replica_.corrupt_block(7, 42);
  Tally tally(poller_replica_, kQuorum, kMaxDisagree);
  add_good_votes(tally, 10);
  const auto step = tally.advance();
  ASSERT_EQ(step.kind, Tally::Step::Kind::kNeedRepair);
  EXPECT_EQ(step.block, 7u);
  EXPECT_EQ(step.disagreeing.size(), 10u);
}

TEST_F(TallyTest, RepairThenResumeCompletes) {
  poller_replica_.corrupt_block(7, 42);
  Tally tally(poller_replica_, kQuorum, kMaxDisagree);
  add_good_votes(tally, 10);
  auto step = tally.advance();
  ASSERT_EQ(step.kind, Tally::Step::Kind::kNeedRepair);
  // Apply the repair (canonical content from a good voter).
  poller_replica_.restore_block(7);
  step = tally.resume_after_repair();
  EXPECT_EQ(step.kind, Tally::Step::Kind::kDone);
  // After the repair the poller agrees with everyone.
  EXPECT_EQ(tally.agreeing_voters().size(), 10u);
}

TEST_F(TallyTest, MultipleDamagedBlocksRepairedSequentially) {
  poller_replica_.corrupt_block(3, 1);
  poller_replica_.corrupt_block(12, 2);
  Tally tally(poller_replica_, kQuorum, kMaxDisagree);
  add_good_votes(tally, 10);
  auto step = tally.advance();
  ASSERT_EQ(step.kind, Tally::Step::Kind::kNeedRepair);
  EXPECT_EQ(step.block, 3u);
  poller_replica_.restore_block(3);
  step = tally.resume_after_repair();
  ASSERT_EQ(step.kind, Tally::Step::Kind::kNeedRepair);
  EXPECT_EQ(step.block, 12u);
  poller_replica_.restore_block(12);
  EXPECT_EQ(tally.resume_after_repair().kind, Tally::Step::Kind::kDone);
}

TEST_F(TallyTest, BadRepairKeepsBlockDisagreeing) {
  poller_replica_.corrupt_block(7, 42);
  Tally tally(poller_replica_, kQuorum, kMaxDisagree);
  add_good_votes(tally, 10);
  auto step = tally.advance();
  ASSERT_EQ(step.kind, Tally::Step::Kind::kNeedRepair);
  // A "repair" carrying damaged content does not help.
  poller_replica_.corrupt_block(7, 43);
  step = tally.resume_after_repair();
  EXPECT_EQ(step.kind, Tally::Step::Kind::kNeedRepair);
  EXPECT_EQ(step.block, 7u);
}

TEST_F(TallyTest, NoLandslideEitherWayIsAlarm) {
  // 5 votes match the poller, 5 match a damaged replica: inconclusive.
  Tally tally(poller_replica_, kQuorum, kMaxDisagree);
  add_good_votes(tally, 5);
  storage::AuReplica damaged(kAu, kSpec);
  damaged.corrupt_block(0, 7);
  for (uint32_t i = 0; i < 5; ++i) {
    const uint64_t nonce = 7000 + i;
    tally.add_vote(net::NodeId{400 + i}, crypto::Digest64{nonce}, vote_for(damaged, nonce), true);
  }
  const auto step = tally.advance();
  EXPECT_EQ(step.kind, Tally::Step::Kind::kAlarm);
  EXPECT_EQ(step.block, 0u);
}

TEST_F(TallyTest, GarbageVoteDisagreesEverywhereButCannotBlockLandslide) {
  Tally tally(poller_replica_, kQuorum, kMaxDisagree);
  add_good_votes(tally, 10);
  std::vector<crypto::Digest64> garbage(kSpec.block_count, crypto::Digest64{0xDEAD});
  tally.add_vote(net::NodeId{500}, crypto::Digest64{1}, garbage, true);
  const auto step = tally.advance();
  EXPECT_EQ(step.kind, Tally::Step::Kind::kDone);
  EXPECT_FALSE(tally.voter_agreed_throughout(net::NodeId{500}));
}

TEST_F(TallyTest, ShortVoteTreatedAsDisagreeing) {
  Tally tally(poller_replica_, kQuorum, kMaxDisagree);
  add_good_votes(tally, 10);
  storage::AuReplica good(kAu, kSpec);
  auto hashes = vote_for(good, 9999);
  hashes.resize(4);  // truncated vote
  tally.add_vote(net::NodeId{600}, crypto::Digest64{9999}, hashes, true);
  EXPECT_EQ(tally.advance().kind, Tally::Step::Kind::kDone);
  EXPECT_FALSE(tally.voter_agreed_throughout(net::NodeId{600}));
}

TEST_F(TallyTest, VoterDamageAfterPollerDamageBlock) {
  // Voter damaged at block 2, poller damaged at block 9: the voter's chain
  // diverges from block 2 on, so at block 9 all ten voters disagree and the
  // damaged voter remains a repair candidate (its block 9 is fine).
  poller_replica_.corrupt_block(9, 17);
  Tally tally(poller_replica_, kQuorum, kMaxDisagree);
  add_good_votes(tally, 9);
  storage::AuReplica early_damage(kAu, kSpec);
  early_damage.corrupt_block(2, 5);
  tally.add_vote(net::NodeId{700}, crypto::Digest64{123}, vote_for(early_damage, 123), true);
  auto step = tally.advance();
  // Block 2: only one disagreeing voter -> landslide agree, advance.
  // Block 9: poller damaged -> all voters disagree.
  ASSERT_EQ(step.kind, Tally::Step::Kind::kNeedRepair);
  EXPECT_EQ(step.block, 9u);
  EXPECT_EQ(step.disagreeing.size(), 10u);
  poller_replica_.restore_block(9);
  EXPECT_EQ(tally.resume_after_repair().kind, Tally::Step::Kind::kDone);
  // The early-damaged voter never recovers agreement (running hashes).
  EXPECT_FALSE(tally.voter_agreed_throughout(net::NodeId{700}));
}

}  // namespace
}  // namespace lockss::protocol
