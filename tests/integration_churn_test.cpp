// §9 dynamic-environment scenario: "we need to understand how our defenses
// against attrition work in a more dynamic environment, where new loyal
// peers continually join the system over time."
//
// Newcomers start with a publisher-bootstrap reference list (they know a few
// peers; nobody knows them), so their first solicitations run through the
// unknown-peer admission channel and discovery — exactly the paths the
// introduction machinery exists to keep open.
#include <gtest/gtest.h>

#include <memory>

#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "peer/peer.hpp"
#include "sim/simulator.hpp"

namespace lockss {
namespace {

class ChurnDeployment {
 public:
  static constexpr uint32_t kEstablished = 25;
  static constexpr uint32_t kNewcomers = 5;
  static constexpr storage::AuId kAu{0};

  ChurnDeployment() : network_(simulator_, sim::Rng(21)) {
    env_.simulator = &simulator_;
    env_.network = &network_;
    env_.metrics = &collector_;
    env_.enable_damage = false;
    env_.params.quorum = 8;
    env_.params.max_disagreeing = 2;
    env_.params.reference_list_target = 20;
    collector_.set_total_replicas(kEstablished + kNewcomers);

    sim::Rng root(2024);
    for (uint32_t p = 0; p < kEstablished + kNewcomers; ++p) {
      ids_.push_back(net::NodeId{p});
      peers_.push_back(std::make_unique<peer::Peer>(env_, net::NodeId{p}, root.split()));
      peers_.back()->join_au(kAu);
    }
    // Established peers: mutual familiarity.
    sim::Rng boot = root.split();
    for (uint32_t p = 0; p < kEstablished; ++p) {
      std::vector<net::NodeId> others;
      for (uint32_t q = 0; q < kEstablished; ++q) {
        if (q != p) {
          others.push_back(ids_[q]);
        }
      }
      peers_[p]->set_friends(boot.sample(others, 4));
      const auto seeds = boot.sample(others, env_.params.reference_list_target);
      peers_[p]->seed_reference_list(kAu, seeds);
      for (net::NodeId o : seeds) {
        peers_[p]->seed_grade(kAu, o, reputation::Grade::kEven);
        peers_[o.value]->seed_grade(kAu, ids_[p], reputation::Grade::kEven);
      }
      peers_[p]->start();
    }
    // Newcomers: staggered joins with one-directional bootstrap knowledge.
    sim::Rng late = root.split();
    for (uint32_t n = 0; n < kNewcomers; ++n) {
      const uint32_t index = kEstablished + n;
      std::vector<net::NodeId> bootstrap_pool(ids_.begin(), ids_.begin() + kEstablished);
      const auto bootstrap = late.sample(bootstrap_pool, env_.params.reference_list_target);
      peers_[index]->seed_reference_list(kAu, bootstrap);
      peers_[index]->set_friends(late.sample(bootstrap_pool, 3));
      // The newcomer knows them (publisher's peer directory); they do NOT
      // know the newcomer.
      for (net::NodeId o : bootstrap) {
        peers_[index]->seed_grade(kAu, o, reputation::Grade::kEven);
      }
      simulator_.schedule_at(sim::SimTime::months(2 + n), [this, index] {
        peers_[static_cast<size_t>(index)]->start();
      });
    }
  }

  sim::Simulator simulator_;
  net::Network network_;
  metrics::MetricsCollector collector_;
  peer::PeerEnvironment env_;
  std::vector<std::unique_ptr<peer::Peer>> peers_;
  std::vector<net::NodeId> ids_;
};

TEST(ChurnIntegrationTest, NewcomersIntegrateAndPollSuccessfully) {
  ChurnDeployment deployment;
  deployment.simulator_.run_until(sim::SimTime::years(2));
  const auto report = deployment.collector_.finalize(sim::SimTime::years(2));

  // The established population polls normally...
  EXPECT_GT(report.successful_polls, 100u);
  // ...and the whole deployment's polls overwhelmingly succeed, newcomers
  // included (their invitations pass through unknown-channel admission and
  // they become known via the votes they supply).
  EXPECT_GT(report.successful_polls, 10 * report.inquorate_polls);
  EXPECT_EQ(report.alarms, 0u);
}

TEST(ChurnIntegrationTest, NewcomersBecomeKnownToEstablishedPeers) {
  ChurnDeployment deployment;
  deployment.simulator_.run_until(sim::SimTime::years(2));
  // After two years, most established peers have first-hand history for the
  // first newcomer (it voted for them or polled them).
  const net::NodeId newcomer = deployment.ids_[ChurnDeployment::kEstablished];
  int know_it = 0;
  for (uint32_t p = 0; p < ChurnDeployment::kEstablished; ++p) {
    if (deployment.peers_[p]->known_peers(ChurnDeployment::kAu).known(newcomer)) {
      ++know_it;
    }
  }
  EXPECT_GT(know_it, static_cast<int>(ChurnDeployment::kEstablished) / 3);
}

TEST(ChurnIntegrationTest, NewcomerReferenceListGrowsBeyondBootstrap) {
  ChurnDeployment deployment;
  deployment.simulator_.run_until(sim::SimTime::years(2));
  const size_t index = ChurnDeployment::kEstablished;
  // Discovery (nominations -> outer circle) keeps the list at target size
  // even though every concluded poll strips the voters that were used.
  EXPECT_GE(deployment.peers_[index]->reference_list(ChurnDeployment::kAu).size(), 10u);
}

}  // namespace
}  // namespace lockss
