// End-to-end scenario tests without an adversary (§7.1 baseline behaviour).
#include <gtest/gtest.h>

#include "experiment/aggregate.hpp"
#include "experiment/scenario.hpp"

namespace lockss::experiment {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.peer_count = 30;
  config.au_count = 2;
  config.duration = sim::SimTime::years(1);
  config.seed = 42;
  return config;
}

TEST(BaselineIntegrationTest, PollsSucceedWithoutAdversary) {
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  const RunResult result = run_scenario(config);
  // 30 peers x 2 AUs x ~4 polls/year; the first poll of each cycle starts at
  // a random phase, so expect at least 2 concluded polls per (peer, AU).
  EXPECT_GT(result.report.successful_polls, 30u * 2u * 2u);
  // The overwhelming majority of polls must succeed absent an attack.
  EXPECT_GT(result.report.successful_polls,
            20 * (result.report.inquorate_polls + result.report.alarms + 1));
  EXPECT_EQ(result.report.alarms, 0u);
  EXPECT_EQ(result.report.access_failure_probability, 0.0);
}

TEST(BaselineIntegrationTest, DamageGetsRepaired) {
  ScenarioConfig config = small_config();
  // Aggressive damage so the 1-year run sees plenty of events: one block per
  // 0.25 disk-years with 2 AUs/disk -> 2 events per AU-year, 120 expected
  // over 30 peers x 2 AUs x 1 year.
  config.damage.mean_disk_years_between_failures = 0.25;
  config.damage.aus_per_disk = 2.0;
  const RunResult result = run_scenario(config);
  EXPECT_GT(result.report.damage_events, 100u);
  // Repairs must actually happen.
  EXPECT_GT(result.report.repairs, 0u);
  // With detection latency bounded by one poll cycle (~3 months of
  // solicitation plus evaluation), lambda*L stays near 2 x 0.3 = 0.6, so the
  // time-averaged damaged fraction must sit well below the no-repair level
  // (which approaches 1 as every replica is damaged ~twice a year and stays
  // damaged forever).
  EXPECT_LT(result.report.access_failure_probability, 0.5);
  EXPECT_GT(result.report.access_failure_probability, 0.0);
}

TEST(BaselineIntegrationTest, DeterministicForSeed) {
  ScenarioConfig config = small_config();
  config.duration = sim::SimTime::months(6);
  const RunResult a = run_scenario(config);
  const RunResult b = run_scenario(config);
  EXPECT_EQ(a.report.successful_polls, b.report.successful_polls);
  EXPECT_EQ(a.report.damage_events, b.report.damage_events);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_DOUBLE_EQ(a.report.loyal_effort_seconds, b.report.loyal_effort_seconds);
}

TEST(BaselineIntegrationTest, DifferentSeedsDiffer) {
  ScenarioConfig config = small_config();
  config.duration = sim::SimTime::months(6);
  const RunResult a = run_scenario(config);
  config.seed = 43;
  const RunResult b = run_scenario(config);
  EXPECT_NE(a.messages_delivered, b.messages_delivered);
}

TEST(BaselineIntegrationTest, MeanSuccessGapTracksPollInterval) {
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  config.duration = sim::SimTime::years(2);
  const RunResult result = run_scenario(config);
  // Successive successful polls on one AU are one inter-poll interval apart
  // (~90 days); allow slack for occasional failures.
  EXPECT_GT(result.report.mean_success_gap_days, 80.0);
  EXPECT_LT(result.report.mean_success_gap_days, 130.0);
}

TEST(BaselineIntegrationTest, EffortPerPollIsPlausible) {
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  const RunResult result = run_scenario(config);
  // A successful poll costs the poller ~30 x (solicitation + evaluation)
  // ≈ 30 x 23s ≈ 700s plus the voters' ~11s each. Expect hundreds to a few
  // thousand effort-seconds per successful poll system-wide.
  EXPECT_GT(result.report.effort_per_successful_poll, 200.0);
  EXPECT_LT(result.report.effort_per_successful_poll, 5000.0);
}

TEST(BaselineIntegrationTest, ReplicatedRunsAggregate) {
  ScenarioConfig config = small_config();
  config.duration = sim::SimTime::months(6);
  config.enable_damage = false;
  const auto runs = run_replicated(config, 2);
  ASSERT_EQ(runs.size(), 2u);
  const auto agg = aggregate_metric(
      runs, [](const RunResult& r) { return static_cast<double>(r.report.successful_polls); });
  EXPECT_EQ(agg.n, 2u);
  EXPECT_GE(agg.max, agg.mean);
  EXPECT_GE(agg.mean, agg.min);
  EXPECT_GT(agg.mean, 0.0);
}

}  // namespace
}  // namespace lockss::experiment
