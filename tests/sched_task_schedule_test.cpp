#include "sched/task_schedule.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"

namespace lockss::sched {
namespace {

using sim::SimTime;

TEST(TaskScheduleTest, ReserveOnEmptySchedule) {
  TaskSchedule s;
  auto r = s.reserve(SimTime::seconds(10), SimTime::seconds(5), SimTime::seconds(100));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->start, SimTime::seconds(5));
  EXPECT_EQ(r->end, SimTime::seconds(15));
}

TEST(TaskScheduleTest, SecondReservationPacksAfterFirst) {
  TaskSchedule s;
  auto r1 = s.reserve(SimTime::seconds(10), SimTime::zero(), SimTime::seconds(100));
  auto r2 = s.reserve(SimTime::seconds(10), SimTime::zero(), SimTime::seconds(100));
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r2->start, r1->end);
}

TEST(TaskScheduleTest, RefusesWhenWindowFull) {
  TaskSchedule s;
  ASSERT_TRUE(s.reserve(SimTime::seconds(50), SimTime::zero(), SimTime::seconds(60)));
  // Only 10 s of slack remain before the deadline.
  EXPECT_FALSE(s.reserve(SimTime::seconds(20), SimTime::zero(), SimTime::seconds(60)));
  EXPECT_TRUE(s.can_reserve(SimTime::seconds(10), SimTime::zero(), SimTime::seconds(60)));
}

TEST(TaskScheduleTest, FindsGapBetweenReservations) {
  TaskSchedule s;
  auto r1 = s.reserve(SimTime::seconds(10), SimTime::zero(), SimTime::seconds(1000));
  ASSERT_TRUE(r1);
  auto r3 = s.reserve(SimTime::seconds(10), SimTime::seconds(50), SimTime::seconds(1000));
  ASSERT_TRUE(r3);
  // A 40 s gap exists between 10 and 50.
  auto r2 = s.reserve(SimTime::seconds(30), SimTime::zero(), SimTime::seconds(1000));
  ASSERT_TRUE(r2);
  EXPECT_EQ(r2->start, SimTime::seconds(10));
  EXPECT_EQ(r2->end, SimTime::seconds(40));
}

TEST(TaskScheduleTest, GapTooSmallIsSkipped) {
  TaskSchedule s;
  ASSERT_TRUE(s.reserve(SimTime::seconds(10), SimTime::zero(), SimTime::seconds(1000)));
  ASSERT_TRUE(s.reserve(SimTime::seconds(10), SimTime::seconds(15), SimTime::seconds(1000)));
  // 5 s gap at [10,15) cannot hold 8 s; lands after the second interval.
  auto r = s.reserve(SimTime::seconds(8), SimTime::zero(), SimTime::seconds(1000));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->start, SimTime::seconds(25));
}

TEST(TaskScheduleTest, CancelFreesTheSlot) {
  TaskSchedule s;
  auto r1 = s.reserve(SimTime::seconds(10), SimTime::zero(), SimTime::seconds(30));
  ASSERT_TRUE(r1);
  EXPECT_FALSE(s.reserve(SimTime::seconds(25), SimTime::zero(), SimTime::seconds(30)));
  s.cancel(r1->id);
  EXPECT_TRUE(s.reserve(SimTime::seconds(25), SimTime::zero(), SimTime::seconds(30)));
}

TEST(TaskScheduleTest, CancelUnknownIdIsNoop) {
  TaskSchedule s;
  s.cancel(987654);  // must not crash
  EXPECT_EQ(s.interval_count(), 0u);
}

TEST(TaskScheduleTest, ExtendWithinFreeSpace) {
  TaskSchedule s;
  auto r = s.reserve(SimTime::seconds(10), SimTime::zero(), SimTime::seconds(100));
  ASSERT_TRUE(r);
  EXPECT_TRUE(s.extend(r->id, SimTime::seconds(20)));
  // Extension occupied [0,20): a new reservation starts at 20.
  auto r2 = s.reserve(SimTime::seconds(5), SimTime::zero(), SimTime::seconds(100));
  ASSERT_TRUE(r2);
  EXPECT_EQ(r2->start, SimTime::seconds(20));
}

TEST(TaskScheduleTest, ExtendBlockedByNeighbor) {
  TaskSchedule s;
  auto r1 = s.reserve(SimTime::seconds(10), SimTime::zero(), SimTime::seconds(100));
  auto r2 = s.reserve(SimTime::seconds(10), SimTime::zero(), SimTime::seconds(100));
  ASSERT_TRUE(r1 && r2);
  EXPECT_FALSE(s.extend(r1->id, SimTime::seconds(15)));
}

TEST(TaskScheduleTest, PruneDropsPastIntervals) {
  TaskSchedule s;
  ASSERT_TRUE(s.reserve(SimTime::seconds(10), SimTime::zero(), SimTime::seconds(100)));
  ASSERT_TRUE(s.reserve(SimTime::seconds(10), SimTime::seconds(50), SimTime::seconds(100)));
  EXPECT_EQ(s.interval_count(), 2u);
  s.prune(SimTime::seconds(20));
  EXPECT_EQ(s.interval_count(), 1u);
  s.prune(SimTime::seconds(200));
  EXPECT_EQ(s.interval_count(), 0u);
}

TEST(TaskScheduleTest, BusyFraction) {
  TaskSchedule s;
  ASSERT_TRUE(s.reserve(SimTime::seconds(25), SimTime::zero(), SimTime::seconds(100)));
  EXPECT_NEAR(s.busy_fraction(SimTime::zero(), SimTime::seconds(100)), 0.25, 1e-9);
  EXPECT_NEAR(s.busy_fraction(SimTime::seconds(50), SimTime::seconds(100)), 0.0, 1e-9);
}

TEST(TaskScheduleTest, InjectBusyClipsAroundExisting) {
  TaskSchedule s;
  auto r = s.reserve(SimTime::seconds(10), SimTime::seconds(10), SimTime::seconds(100));
  ASSERT_TRUE(r);
  // Inject [0, 40): fragments [0,10) and [20,40) are claimed.
  s.inject_busy(SimTime::zero(), SimTime::seconds(40));
  EXPECT_NEAR(s.busy_fraction(SimTime::zero(), SimTime::seconds(40)), 1.0, 1e-9);
  // Non-overlap invariant: no double booking detectable through fraction > 1.
  EXPECT_LE(s.busy_fraction(SimTime::zero(), SimTime::seconds(100)), 1.0);
}

TEST(TaskScheduleTest, IntervalsAfterExport) {
  TaskSchedule s;
  ASSERT_TRUE(s.reserve(SimTime::seconds(10), SimTime::zero(), SimTime::seconds(100)));
  ASSERT_TRUE(s.reserve(SimTime::seconds(10), SimTime::seconds(50), SimTime::seconds(100)));
  EXPECT_EQ(s.intervals_after(SimTime::zero()).size(), 2u);
  EXPECT_EQ(s.intervals_after(SimTime::seconds(30)).size(), 1u);
}

TEST(TaskScheduleTest, ZeroDurationRejected) {
  TaskSchedule s;
  EXPECT_FALSE(s.reserve(SimTime::zero(), SimTime::zero(), SimTime::seconds(10)));
}

TEST(TaskScheduleTest, DeadlineBeforeWindowRejected) {
  TaskSchedule s;
  EXPECT_FALSE(s.reserve(SimTime::seconds(10), SimTime::seconds(95), SimTime::seconds(100)));
}

// Property sweep: many random reservations never overlap.
class TaskSchedulePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TaskSchedulePropertyTest, ReservationsNeverOverlap) {
  sim::Rng rng(GetParam());
  TaskSchedule s;
  std::vector<Reservation> held;
  for (int i = 0; i < 300; ++i) {
    const SimTime duration = SimTime::seconds(rng.uniform() * 20 + 1);
    const SimTime not_before = SimTime::seconds(rng.uniform() * 500);
    const SimTime deadline = not_before + SimTime::seconds(rng.uniform() * 100 + 1);
    auto r = s.reserve(duration, not_before, deadline);
    if (r) {
      EXPECT_GE(r->start, not_before);
      EXPECT_LE(r->end, deadline);
      held.push_back(*r);
    }
    if (!held.empty() && rng.bernoulli(0.2)) {
      const size_t victim = rng.index(held.size());
      s.cancel(held[victim].id);
      held.erase(held.begin() + static_cast<ptrdiff_t>(victim));
    }
  }
  // Pairwise non-overlap of everything still held.
  for (size_t i = 0; i < held.size(); ++i) {
    for (size_t j = i + 1; j < held.size(); ++j) {
      const bool disjoint = held[i].end <= held[j].start || held[j].end <= held[i].start;
      EXPECT_TRUE(disjoint) << "overlap between reservation " << i << " and " << j;
    }
  }
  EXPECT_LE(s.busy_fraction(SimTime::zero(), SimTime::seconds(700)), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskSchedulePropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace lockss::sched
