// Large-deployment regime stress (the 10k-peer x 100-AU target of the
// bench_report `large_deployment` sweep; docs/sharding.md).
//
// Three layers of coverage:
//   * the dense id registries at >= 1M entries — the 32-bit index/counter
//     audit's regression surface (rehash math, direct-index table widening);
//   * the metrics grid at 1M (peer, AU) slots — 64-bit slot arithmetic and
//     the far-corner write;
//   * a scaled-down large deployment run end-to-end, sharded, with a
//     bytes-per-peer ceiling read from /proc/self/status VmHWM that pins
//     the current memory constant against regressions.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <string>

#include "experiment/scenario.hpp"
#include "metrics/collector.hpp"
#include "metrics/slot_registry.hpp"
#include "net/node_slot_registry.hpp"

namespace lockss {
namespace {

TEST(ScaleStressTest, NodeSlotRegistryMillionIds) {
  net::NodeSlotRegistry registry;
  constexpr uint32_t kIds = 1'100'000;
  for (uint32_t i = 0; i < kIds; ++i) {
    ASSERT_EQ(registry.register_node(net::NodeId{i}), i);
  }
  EXPECT_EQ(registry.count(), kIds);
  // Spot-check lookups across the range, including past several rehashes.
  EXPECT_EQ(registry.index_of(net::NodeId{0}), 0u);
  EXPECT_EQ(registry.index_of(net::NodeId{kIds / 2}), kIds / 2);
  EXPECT_EQ(registry.index_of(net::NodeId{kIds - 1}), kIds - 1);
  EXPECT_EQ(registry.index_of(net::NodeId{kIds}), net::NodeSlotRegistry::kUnassigned);
  EXPECT_EQ(registry.node_at(kIds - 1), net::NodeId{kIds - 1});
  // High-base minion ids on top of the million loyal ids.
  const uint32_t minion_base = 1u << 22 | kIds;
  EXPECT_EQ(registry.register_node(net::NodeId{minion_base}), kIds);
  EXPECT_EQ(registry.index_of(net::NodeId{minion_base}), kIds);
}

TEST(ScaleStressTest, NodeSlotRegistryOutOfOrderRegistrationAborts) {
  // The ordering contract is a hard error independent of NDEBUG: a release
  // build must not silently corrupt every substrate walk.
  net::NodeSlotRegistry registry;
  registry.register_node(net::NodeId{10});
  EXPECT_EQ(registry.register_node(net::NodeId{10}), 0u);  // idempotent re-add is fine
  EXPECT_DEATH(registry.register_node(net::NodeId{5}), "out-of-order registration");
}

TEST(ScaleStressTest, MetricsGridMillionSlots) {
  // 10k peers x 100 AUs = 1M (peer, AU) slots, the large_deployment shape.
  metrics::MetricsCollector collector;
  constexpr uint32_t kPeers = 10'000;
  constexpr uint32_t kAus = 100;
  for (uint32_t a = 0; a < kAus; ++a) {
    collector.register_au(storage::AuId{a});
  }
  for (uint32_t p = 0; p < kPeers; ++p) {
    collector.register_peer(net::NodeId{p});
  }
  EXPECT_EQ(collector.slots().slot_count(), static_cast<size_t>(kPeers) * kAus);
  EXPECT_EQ(collector.slots().slot(kPeers - 1, kAus - 1),
            static_cast<size_t>(kPeers) * kAus - 1);
  collector.set_total_replicas(static_cast<uint64_t>(kPeers) * kAus);

  // Two successes at the far corner of the grid: exercises the highest slot
  // and the observed-gap accounting there.
  protocol::PollOutcome outcome;
  outcome.kind = protocol::PollOutcomeKind::kSuccess;
  outcome.au = storage::AuId{kAus - 1};
  outcome.concluded = sim::SimTime::days(10);
  collector.record_poll(net::NodeId{kPeers - 1}, outcome);
  outcome.concluded = sim::SimTime::days(13);
  collector.record_poll(net::NodeId{kPeers - 1}, outcome);
  EXPECT_EQ(collector.successful_polls(), 2u);
  const metrics::MetricsReport report = collector.finalize(sim::SimTime::days(20));
  EXPECT_EQ(report.mean_observed_gap_days, 3.0);
}

size_t vm_hwm_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::stoul(line.substr(6)) * 1024;  // reported in kB
    }
  }
  return 0;
}

TEST(ScaleStressTest, LargeDeploymentScaledDownBytesPerPeer) {
  // A 1/5-linear-scale slice of the large_deployment bench row (2k peers,
  // 10 AUs), run sharded over a short horizon: long enough for the startup
  // poll schedule and first deliveries, short enough for CI. The memory
  // ceiling is the real assertion: it pins today's bytes/peer constant so
  // a memory regression (one more word per (peer, known-peer) pair is
  // ~30 MB here) fails loudly before the 10k regime ever runs.
  experiment::ScenarioConfig config;
  config.peer_count = 2'000;
  config.au_count = 10;
  config.duration = sim::SimTime::days(3);
  config.seed = 20260809;
  config.enable_damage = false;
  config.shards = 4;
  const experiment::RunResult result = run_scenario(config);
  EXPECT_GT(result.events_processed, 0u);
  EXPECT_GT(result.solicitations_sent, 0u);

  const size_t hwm = vm_hwm_bytes();
  ASSERT_GT(hwm, 0u) << "/proc/self/status VmHWM unavailable";
  const size_t bytes_per_peer = hwm / config.peer_count;
  // Pins the memory constant at this population. The figure is population-
  // dependent (~370 KB/peer at 2k peers, measured) because the dense
  // reputation substrates keep a slot per *known* peer — the ROADMAP's
  // struct-of-arrays budget item is about shrinking exactly this term.
  // The ceiling leaves ~35% headroom; an accidental extra per-pair array
  // or a leak across the run overshoots it immediately.
  EXPECT_LT(bytes_per_peer, 512u * 1024u)
      << "VmHWM " << hwm << " bytes -> " << bytes_per_peer << " bytes/peer";
}

}  // namespace
}  // namespace lockss
