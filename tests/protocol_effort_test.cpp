#include "protocol/effort_schedule.hpp"

#include <gtest/gtest.h>

#include <set>

#include "protocol/messages.hpp"
#include "protocol/reference_list.hpp"

namespace lockss::protocol {
namespace {

TEST(EffortScheduleTest, DefaultInequalitiesHold) {
  Params params;
  crypto::CostModel costs;
  EffortSchedule efforts(params, costs);
  const double gamma = costs.mbf_verify_asymmetry;
  // §5.1: the vote proof covers hashing one block + verifying itself.
  EXPECT_TRUE(efforts.vote_proof_covers_block_check(gamma));
  // §5.1: solicitation effort covers verification + vote production.
  EXPECT_TRUE(efforts.solicitation_covers_vote(gamma));
}

TEST(EffortScheduleTest, IntroductoryEffortIsTwentyPercentOfTotal) {
  Params params;
  crypto::CostModel costs;
  EffortSchedule efforts(params, costs);
  EXPECT_NEAR(efforts.introductory_effort(),
              0.20 * (efforts.solicitation_effort() + efforts.vote_computation_effort()), 1e-9);
}

TEST(EffortScheduleTest, FiveRetriesCostHonestParticipation) {
  // §6.3: "by the time the adversary has gotten his poll invitation admitted
  // [5 tries at 0.2 admission probability], even if he defects for the rest
  // of the poll, he has already expended on average 100% of the effort he
  // would have, had he behaved well in the first place."
  Params params;
  crypto::CostModel costs;
  EffortSchedule efforts(params, costs);
  const double five_intros = 5.0 * efforts.introductory_effort();
  const double honest_total = efforts.poller_total_per_voter();
  EXPECT_NEAR(five_intros / honest_total, 1.0, 1e-9);
}

TEST(EffortScheduleTest, VoteEffortMatchesAuHashTime) {
  Params params;
  crypto::CostModel costs;
  EffortSchedule efforts(params, costs);
  EXPECT_NEAR(efforts.vote_computation_effort(),
              costs.hash_time(params.au_spec.size_bytes).to_seconds(), 1e-9);
  EXPECT_NEAR(efforts.block_hash_effort() * params.au_spec.block_count,
              efforts.vote_computation_effort(), 1e-9);
}

TEST(EffortScheduleTest, RemainingPlusIntroIsSolicitation) {
  Params params;
  crypto::CostModel costs;
  EffortSchedule efforts(params, costs);
  EXPECT_NEAR(efforts.introductory_effort() + efforts.remaining_effort(),
              efforts.solicitation_effort(), 1e-9);
  EXPECT_GT(efforts.remaining_effort(), 0.0);
}

TEST(EffortScheduleTest, ScalesWithAuSize) {
  Params big;
  big.au_spec.size_bytes = 1024ull * 1024 * 1024;
  Params small;
  small.au_spec.size_bytes = 256ull * 1024 * 1024;
  crypto::CostModel costs;
  EffortSchedule be(big, costs), se(small, costs);
  EXPECT_NEAR(be.vote_computation_effort() / se.vote_computation_effort(), 4.0, 1e-9);
  EXPECT_GT(be.solicitation_effort(), se.solicitation_effort());
}

TEST(EffortScheduleTest, HoldsAcrossAsymmetries) {
  // Property sweep: the §5.1 inequalities must hold for any plausible MBF
  // asymmetry.
  Params params;
  for (double gamma : {2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    crypto::CostModel costs;
    costs.mbf_verify_asymmetry = gamma;
    EffortSchedule efforts(params, costs);
    EXPECT_TRUE(efforts.vote_proof_covers_block_check(gamma)) << "gamma=" << gamma;
    EXPECT_TRUE(efforts.solicitation_covers_vote(gamma)) << "gamma=" << gamma;
    EXPECT_LT(efforts.introductory_effort(), efforts.solicitation_effort()) << "gamma=" << gamma;
  }
}

TEST(PollIdTest, RoundTrip) {
  const net::NodeId poller{0xABCD};
  const PollId id = make_poll_id(poller, 42);
  EXPECT_EQ(poll_id_owner(id), poller);
  EXPECT_NE(make_poll_id(poller, 43), id);
  EXPECT_NE(make_poll_id(net::NodeId{1}, 42), id);
}

TEST(MessagesTest, WireSizes) {
  VoteMsg vote;
  vote.block_hashes.resize(128);
  vote.nominations.resize(8);
  // 1 KB framing + 20 B per running hash + 8 B per nomination.
  EXPECT_EQ(vote.size_bytes(), 1024u + 20u * 128u + 8u * 8u);
  RepairMsg repair;
  repair.wire_block_bytes = 4 * 1024 * 1024;
  EXPECT_GT(repair.size_bytes(), 4u * 1024 * 1024);
  EXPECT_EQ(PollMsg{}.size_bytes(), 1024u);
  EXPECT_EQ(PollAckMsg{}.size_bytes(), 256u);
}

TEST(ReferenceListTest, InsertRemoveContains) {
  ReferenceList list(net::NodeId{1});
  list.insert(net::NodeId{2});
  list.insert(net::NodeId{3});
  EXPECT_TRUE(list.contains(net::NodeId{2}));
  EXPECT_EQ(list.size(), 2u);
  list.remove(net::NodeId{2});
  EXPECT_FALSE(list.contains(net::NodeId{2}));
}

TEST(ReferenceListTest, NeverContainsSelfOrInvalid) {
  ReferenceList list(net::NodeId{1});
  list.insert(net::NodeId{1});
  list.insert(net::NodeId::invalid());
  EXPECT_TRUE(list.empty());
}

TEST(ReferenceListTest, DuplicateInsertIdempotent) {
  ReferenceList list(net::NodeId{1});
  list.insert(net::NodeId{2});
  list.insert(net::NodeId{2});
  EXPECT_EQ(list.size(), 1u);
}

TEST(ReferenceListTest, SampleIsDistinctSubset) {
  ReferenceList list(net::NodeId{0});
  for (uint32_t i = 1; i <= 50; ++i) {
    list.insert(net::NodeId{i});
  }
  sim::Rng rng(7);
  const auto sample = list.sample(20, rng);
  EXPECT_EQ(sample.size(), 20u);
  std::set<net::NodeId> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (net::NodeId id : sample) {
    EXPECT_TRUE(list.contains(id));
  }
}

TEST(ReferenceListTest, SampleLargerThanListReturnsAll) {
  ReferenceList list(net::NodeId{0});
  list.insert(net::NodeId{1});
  list.insert(net::NodeId{2});
  sim::Rng rng(7);
  EXPECT_EQ(list.sample(10, rng).size(), 2u);
}

}  // namespace
}  // namespace lockss::protocol
