#include <gtest/gtest.h>

#include <set>

#include "crypto/cost_model.hpp"
#include "crypto/digest.hpp"
#include "crypto/mbf.hpp"

namespace lockss::crypto {
namespace {

TEST(DigestTest, CombineIsDeterministic) {
  const Digest64 a = digest_combine(Digest64{1}, 42);
  const Digest64 b = digest_combine(Digest64{1}, 42);
  EXPECT_EQ(a, b);
}

TEST(DigestTest, CombineSensitiveToBothInputs) {
  EXPECT_NE(digest_combine(Digest64{1}, 42), digest_combine(Digest64{2}, 42));
  EXPECT_NE(digest_combine(Digest64{1}, 42), digest_combine(Digest64{1}, 43));
}

TEST(DigestTest, RunningChainsDivergeAndReconverge) {
  // Two chains over the same content agree; a one-block difference changes
  // every subsequent running hash (the vote-evaluation property of §4.3).
  const Digest64 nonce{777};
  Digest64 x = vote_chain_seed(nonce);
  Digest64 y = vote_chain_seed(nonce);
  for (int i = 0; i < 10; ++i) {
    x = running_block_hash(x, 100 + static_cast<uint64_t>(i));
    y = running_block_hash(y, 100 + static_cast<uint64_t>(i));
    EXPECT_EQ(x, y);
  }
  Digest64 z = running_block_hash(x, 9999);  // damaged block
  Digest64 w = running_block_hash(x, 10);    // good block
  EXPECT_NE(z, w);
  // Chains never re-converge after divergence.
  for (int i = 0; i < 10; ++i) {
    z = running_block_hash(z, 200 + static_cast<uint64_t>(i));
    w = running_block_hash(w, 200 + static_cast<uint64_t>(i));
    EXPECT_NE(z, w);
  }
}

TEST(DigestTest, DifferentNoncesGiveDifferentChains) {
  // The per-poll nonce prevents vote replay (§4.1).
  Digest64 x = vote_chain_seed(Digest64{1});
  Digest64 y = vote_chain_seed(Digest64{2});
  x = running_block_hash(x, 42);
  y = running_block_hash(y, 42);
  EXPECT_NE(x, y);
}

TEST(DigestTest, NoObviousCollisions) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    seen.insert(keyed_digest(Digest64{i}, i * 3).value);
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(DigestTest, HexRendering) {
  EXPECT_EQ(Digest64{0}.to_hex(), "0000000000000000");
  EXPECT_EQ(Digest64{0xdeadbeefull}.to_hex(), "00000000deadbeef");
}

TEST(CostModelTest, HashTimeScalesLinearly) {
  CostModel costs;
  const auto t1 = costs.hash_time(1024 * 1024);
  const auto t2 = costs.hash_time(2 * 1024 * 1024);
  EXPECT_NEAR(t2.to_seconds(), 2 * t1.to_seconds(), 1e-9);
}

TEST(CostModelTest, HalfGigAuTakesSeconds) {
  // 0.5 GB at 50 MB/s -> ~10.24 s; the vote-computation cost that drives the
  // whole effort-balancing arithmetic.
  CostModel costs;
  const auto t = costs.hash_time(512ull * 1024 * 1024);
  EXPECT_NEAR(t.to_seconds(), 10.24, 0.01);
}

TEST(CostModelTest, VerifyCheaperThanGenerateByGamma) {
  CostModel costs;
  const double effort = 8.0;
  EXPECT_NEAR(costs.mbf_generate_time(effort).to_seconds(), 8.0, 1e-9);
  EXPECT_NEAR(costs.mbf_verify_time(effort).to_seconds(), 8.0 / costs.mbf_verify_asymmetry, 1e-9);
}

TEST(MbfTest, GenuineProofVerifies) {
  CostModel costs;
  MbfService mbf(costs, sim::Rng(5));
  const MbfProof proof = mbf.generate(4.0);
  const MbfVerification v = mbf.verify(proof, 4.0);
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.byproduct, proof.byproduct);
  EXPECT_NEAR(v.verify_effort, 4.0 / costs.mbf_verify_asymmetry, 1e-9);
}

TEST(MbfTest, GarbageProofFailsButStillCostsVerifier) {
  CostModel costs;
  MbfService mbf(costs, sim::Rng(6));
  const MbfProof proof = MbfProof::garbage(4.0);
  const MbfVerification v = mbf.verify(proof, 4.0);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.byproduct, Digest64{0});
  EXPECT_GT(v.verify_effort, 0.0);
}

TEST(MbfTest, UndersizedProofRejected) {
  CostModel costs;
  MbfService mbf(costs, sim::Rng(7));
  const MbfProof proof = mbf.generate(2.0);
  EXPECT_FALSE(mbf.verify(proof, 4.0).ok);
  EXPECT_TRUE(mbf.verify(proof, 2.0).ok);
}

TEST(MbfTest, ByproductsAreUniqueAndNonzero) {
  CostModel costs;
  MbfService mbf(costs, sim::Rng(8));
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const MbfProof p = mbf.generate(1.0);
    EXPECT_NE(p.byproduct.value, 0u);
    seen.insert(p.byproduct.value);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace lockss::crypto
