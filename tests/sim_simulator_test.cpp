#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lockss::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.schedule_in(SimTime::seconds(5), [&] { seen.push_back(sim.now()); });
  sim.schedule_in(SimTime::seconds(1), [&] { seen.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], SimTime::seconds(1));
  EXPECT_EQ(seen[1], SimTime::seconds(5));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      sim.schedule_in(SimTime::seconds(1), chain);
    }
  };
  sim.schedule_in(SimTime::seconds(1), chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::seconds(5));
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim;
  int ran = 0;
  sim.schedule_in(SimTime::seconds(1), [&] { ++ran; });
  sim.schedule_in(SimTime::seconds(10), [&] { ++ran; });
  sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(5));
  // The remaining event still fires on a later run.
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, EventExactlyAtHorizonDoesNotRun) {
  Simulator sim;
  bool ran = false;
  sim.schedule_in(SimTime::seconds(5), [&] { ran = true; });
  sim.run_until(SimTime::seconds(5));
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.now(), SimTime::seconds(5));
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator sim;
  sim.schedule_in(SimTime::seconds(1), [] {});
  sim.run_until(SimTime::days(3));
  EXPECT_EQ(sim.now(), SimTime::days(3));
}

TEST(SimulatorTest, StopBreaksRun) {
  Simulator sim;
  int ran = 0;
  sim.schedule_in(SimTime::seconds(1), [&] {
    ++ran;
    sim.stop();
  });
  sim.schedule_in(SimTime::seconds(2), [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(1));
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  SimTime fired;
  sim.schedule_at(SimTime::days(7), [&] { fired = sim.now(); });
  sim.run();
  EXPECT_EQ(fired, SimTime::days(7));
}

TEST(SimulatorTest, CancelledEventsDontRun) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.schedule_in(SimTime::seconds(1), [&] { ran = true; });
  h.cancel();
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_processed(), 0u);
}

// Regression: century-scale exponential waiting times used to overflow
// SimTime and trip the negative-delay assert (or silently wind the clock
// backwards with NDEBUG). Saturated delays park the event at the end of
// representable time instead.
TEST(SimulatorTest, HugeDelaySaturatesInsteadOfWrapping) {
  Simulator sim;
  sim.schedule_in(SimTime::seconds(1), [] {});
  sim.run();  // now() > 0, so an unsaturated max-delay add would wrap
  bool ran = false;
  EventHandle h = sim.schedule_in(SimTime::max(), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  sim.run_until(SimTime::years(1000));
  EXPECT_FALSE(ran);  // "effectively never" within any realistic horizon
  EXPECT_EQ(sim.now(), SimTime::years(1000));
}

TEST(SimulatorTest, EventsPendingIsConstAndCountsLiveEvents) {
  Simulator sim;
  EventHandle h = sim.schedule_in(SimTime::seconds(1), [] {});
  sim.schedule_in(SimTime::seconds(2), [] {});
  // Callable through a const reference: the query must not mutate the queue.
  const Simulator& csim = sim;
  EXPECT_EQ(csim.events_pending(), 2u);
  h.cancel();
  EXPECT_EQ(csim.events_pending(), 1u);
  sim.run();
  EXPECT_EQ(csim.events_pending(), 0u);
  EXPECT_GE(csim.peak_queue_depth(), 2u);
}

TEST(SimulatorTest, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_in(SimTime::seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace lockss::sim
