// The human-operator alarm response (§4.3: an inconclusive poll raises "an
// alarm that requires attention from a human operator"). OperatorModel
// closes the loop: it audits the alarming replica against the publisher's
// copy after a response delay and restores damaged blocks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "peer/operator.hpp"
#include "peer/peer.hpp"
#include "sim/simulator.hpp"

namespace lockss::peer {
namespace {

// A deployment small and damaged enough to raise genuine alarms: with most
// replicas corrupted in different blocks, polls find no landslide.
struct AlarmProneDeployment {
  explicit AlarmProneDeployment(uint64_t seed, uint32_t peer_count)
      : root(seed), network(simulator, root.split()), operators(simulator, OperatorConfig{}) {
    env.simulator = &simulator;
    env.network = &network;
    env.metrics = &collector;
    env.enable_damage = false;  // we corrupt by hand, deterministically
    env.poll_observer = operators.observer();
    collector.set_total_replicas(peer_count);
    for (uint32_t p = 0; p < peer_count; ++p) {
      peers.push_back(std::make_unique<Peer>(env, net::NodeId{p}, root.split()));
      peers.back()->join_au(kAu);
      operators.attend(peers.back().get());
    }
    for (uint32_t p = 0; p < peer_count; ++p) {
      std::vector<net::NodeId> others;
      for (uint32_t q = 0; q < peer_count; ++q) {
        if (q != p) {
          others.push_back(net::NodeId{q});
        }
      }
      peers[p]->seed_reference_list(kAu, others);
      for (net::NodeId o : others) {
        peers[p]->seed_grade(kAu, o, reputation::Grade::kEven);
      }
    }
  }

  void start() {
    for (auto& p : peers) {
      p->start();
    }
  }

  static constexpr storage::AuId kAu{0};
  sim::Simulator simulator;
  sim::Rng root;
  net::Network network;
  metrics::MetricsCollector collector;
  PeerEnvironment env;
  OperatorModel operators{simulator, OperatorConfig{}};
  std::vector<std::unique_ptr<Peer>> peers;
};

TEST(OperatorModelTest, AlarmTriggersAuditAndRestoration) {
  AlarmProneDeployment d(61, 20);
  // Corrupt a different block on 8 of 20 replicas: pollers with damage see
  // mixed votes (12 agree with canonical on their block, but a damaged
  // poller's own block disagrees with everyone while other damaged peers'
  // blocks disagree elsewhere) — enough spread to make some polls
  // inconclusive and others repair.
  for (uint32_t p = 0; p < 8; ++p) {
    d.peers[p]->replica(AlarmProneDeployment::kAu).corrupt_block(p, 0x1234 + p);
  }
  d.start();
  d.simulator.run_until(sim::SimTime::years(1));
  // The corruption spread really does make polls inconclusive (with seed 61:
  // 21 alarms, 4 operator restorations alongside ordinary poll repairs).
  EXPECT_GT(d.operators.alarms_seen(), 0u);
  // Every alarm seen must have produced an audit (same count: all attended).
  EXPECT_EQ(d.operators.alarms_seen(), d.operators.audits_performed());
  // Whether via poll repair or operator audit, the population must converge
  // to fully clean replicas.
  for (auto& p : d.peers) {
    EXPECT_FALSE(p->replica(AlarmProneDeployment::kAu).damaged())
        << "replica at " << p->id().to_string() << " still damaged";
  }
}

TEST(OperatorModelTest, NoAlarmsMeansNoAudits) {
  AlarmProneDeployment d(62, 15);
  d.start();
  d.simulator.run_until(sim::SimTime::months(9));
  EXPECT_EQ(d.collector.alarms(), 0u);
  EXPECT_EQ(d.operators.audits_performed(), 0u);
  EXPECT_EQ(d.operators.blocks_restored(), 0u);
}

TEST(OperatorModelTest, ObserverChainsToNext) {
  sim::Simulator simulator;
  OperatorModel operators(simulator, OperatorConfig{});
  uint64_t chained = 0;
  auto observer = operators.observer(
      [&chained](net::NodeId, const protocol::PollOutcome&) { ++chained; });
  protocol::PollOutcome outcome;
  outcome.kind = protocol::PollOutcomeKind::kSuccess;
  observer(net::NodeId{1}, outcome);
  EXPECT_EQ(chained, 1u);
  EXPECT_EQ(operators.alarms_seen(), 0u);
  outcome.kind = protocol::PollOutcomeKind::kAlarm;
  observer(net::NodeId{1}, outcome);
  EXPECT_EQ(chained, 2u);
  EXPECT_EQ(operators.alarms_seen(), 1u);
}

TEST(OperatorModelTest, AuditChargesEffort) {
  AlarmProneDeployment d(63, 12);
  const double before = d.peers[3]->meter().total();
  d.peers[3]->replica(AlarmProneDeployment::kAu).corrupt_block(5, 99);
  d.peers[3]->charge_operator_audit(2.0);
  // One audit at factor 2 costs two full replica hashes (~21s for 0.5 GB at
  // 50 MB/s).
  EXPECT_GT(d.peers[3]->meter().total(), before + 20.0);
}

}  // namespace
}  // namespace lockss::peer
