// Unit and property tests for the analysis helpers (streaming statistics,
// histograms, time-weighted means, gnuplot emission).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/gnuplot.hpp"
#include "analysis/stats.hpp"
#include "sim/rng.hpp"

namespace lockss::analysis {
namespace {

// --- RunningStats ------------------------------------------------------------

TEST(RunningStatsTest, EmptyIsAllZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSinglePass) {
  sim::Rng rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100.0 - 50.0;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  a.merge(b);  // empty <- nonempty
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  RunningStats c;
  a.merge(c);  // nonempty <- empty
  EXPECT_EQ(a.count(), 1u);
}

TEST(RunningStatsTest, ConfidenceIntervalShrinksWithSamples) {
  sim::Rng rng(6);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    if (i < 100) {
      small.add(x);
    }
    large.add(x);
  }
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
  // For U(0,1): sigma = sqrt(1/12) ~ 0.2887; ci95 with n=10000 ~ 0.00566.
  EXPECT_NEAR(large.ci95_half_width(), 1.96 * std::sqrt(1.0 / 12.0) / 100.0, 5e-4);
}

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, BinsAndOutliers) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(HistogramTest, QuantilesOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  sim::Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    h.add(rng.uniform());
  }
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(HistogramTest, RenderShowsNonEmptyBinsOnly) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.6);
  h.add(3.5);
  const std::string text = h.render(10);
  // Two populated bins -> two rows, each with a bar.
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

// --- TimeWeighted ------------------------------------------------------------

TEST(TimeWeightedTest, StepFunctionMean) {
  TimeWeighted tw;
  tw.set(sim::SimTime::seconds(0), 0.0);
  tw.set(sim::SimTime::seconds(10), 1.0);  // 0 for 10s
  tw.set(sim::SimTime::seconds(30), 0.0);  // 1 for 20s
  // 0*(10) + 1*(20) + 0*(10) over 40s = 0.5
  EXPECT_NEAR(tw.mean(sim::SimTime::seconds(40)), 0.5, 1e-12);
}

TEST(TimeWeightedTest, TailExtendsLastValue) {
  TimeWeighted tw;
  tw.set(sim::SimTime::seconds(0), 2.0);
  EXPECT_NEAR(tw.mean(sim::SimTime::seconds(50)), 2.0, 1e-12);
}

TEST(TimeWeightedTest, BeforeStartIsZero) {
  TimeWeighted tw;
  EXPECT_EQ(tw.mean(sim::SimTime::seconds(10)), 0.0);
  tw.set(sim::SimTime::seconds(5), 1.0);
  EXPECT_EQ(tw.mean(sim::SimTime::seconds(5)), 0.0);
}

// --- Gnuplot -----------------------------------------------------------------

TEST(GnuplotTest, ScriptReferencesCsvAndSeries) {
  GnuplotSpec spec;
  spec.title = "Figure 3";
  spec.csv_path = "fig3.csv";
  spec.x_label = "Attack duration (days)";
  spec.y_label = "Access failure probability";
  spec.log_x = true;
  spec.log_y = true;
  spec.series = {"10%", "40%", "100%"};
  const std::string script = gnuplot_script(spec);
  EXPECT_NE(script.find("set logscale x"), std::string::npos);
  EXPECT_NE(script.find("set logscale y"), std::string::npos);
  EXPECT_NE(script.find("'fig3.csv' using 1:2"), std::string::npos);
  EXPECT_NE(script.find("using 1:4"), std::string::npos);
  EXPECT_NE(script.find("title '100%'"), std::string::npos);
}

TEST(GnuplotTest, LinearAxesOmitLogscale) {
  GnuplotSpec spec;
  spec.csv_path = "t.csv";
  spec.series = {"a"};
  const std::string script = gnuplot_script(spec);
  EXPECT_EQ(script.find("logscale"), std::string::npos);
}

TEST(GnuplotTest, EmptyCsvPathRefusesToWrite) {
  GnuplotSpec spec;
  EXPECT_FALSE(write_gnuplot(spec, "/tmp/should_not_exist.gp"));
}

}  // namespace
}  // namespace lockss::analysis
