#include "net/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/message.hpp"
#include "net/node_id.hpp"
#include "sim/simulator.hpp"

namespace lockss::net {
namespace {

class TestMessage : public Message {
 public:
  explicit TestMessage(uint64_t bytes = 100) : bytes_(bytes) {}
  uint64_t size_bytes() const override { return bytes_; }
  const char* type_name() const override { return "Test"; }

 private:
  uint64_t bytes_;
};

class Recorder : public MessageHandler {
 public:
  void handle_message(MessagePtr message) override { received.push_back(std::move(message)); }
  std::vector<MessagePtr> received;
};

MessagePtr make_message(NodeId from, NodeId to, uint64_t bytes = 100) {
  auto m = std::make_unique<TestMessage>(bytes);
  m->from = from;
  m->to = to;
  return m;
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_, sim::Rng(1234)) {
    net_.register_node(a_, &ra_);
    net_.register_node(b_, &rb_);
  }

  sim::Simulator sim_;
  Network net_;
  NodeId a_{1}, b_{2};
  Recorder ra_, rb_;
};

TEST_F(NetworkTest, DeliversMessage) {
  net_.send(make_message(a_, b_));
  sim_.run();
  ASSERT_EQ(rb_.received.size(), 1u);
  EXPECT_EQ(rb_.received[0]->from, a_);
  EXPECT_EQ(rb_.received[0]->to, b_);
  EXPECT_EQ(net_.stats().messages_delivered, 1u);
}

TEST_F(NetworkTest, DeliveryTakesLatencyPlusTransfer) {
  const uint64_t bytes = 1000000;
  const sim::SimTime expected = net_.delivery_delay(a_, b_, bytes);
  sim::SimTime delivered_at;
  class TimeRecorder : public MessageHandler {
   public:
    TimeRecorder(sim::Simulator& s, sim::SimTime& out) : sim_(s), out_(out) {}
    void handle_message(MessagePtr) override { out_ = sim_.now(); }

   private:
    sim::Simulator& sim_;
    sim::SimTime& out_;
  } tr(sim_, delivered_at);
  NodeId c{3};
  net_.register_node(c, &tr);
  net_.send(make_message(a_, c, bytes));
  sim_.run();
  EXPECT_EQ(delivered_at, net_.delivery_delay(a_, c, bytes));
  // Sanity: latency alone is 1..30 ms; 1 MB over at most 100 Mbps adds
  // >= 80 ms of transfer time.
  EXPECT_GE(expected, sim::SimTime::milliseconds(80));
}

TEST_F(NetworkTest, LatencyIsSymmetricDeterministicAndBounded) {
  for (uint32_t i = 0; i < 40; ++i) {
    NodeId x{100 + i}, y{200 + i};
    const sim::SimTime l1 = net_.latency(x, y);
    EXPECT_EQ(l1, net_.latency(y, x));
    EXPECT_EQ(l1, net_.latency(x, y));  // stable across calls
    EXPECT_GE(l1, sim::SimTime::milliseconds(1));
    EXPECT_LE(l1, sim::SimTime::milliseconds(30));
  }
}

TEST_F(NetworkTest, BandwidthsComeFromConfiguredTiers) {
  std::set<double> seen;
  for (uint32_t i = 0; i < 60; ++i) {
    NodeId id{1000 + i};
    Recorder r;
    net_.register_node(id, &r);
    seen.insert(net_.bandwidth_bps(id));
    net_.unregister_node(id);
  }
  for (double bw : seen) {
    EXPECT_TRUE(bw == 1.5e6 || bw == 10e6 || bw == 100e6);
  }
  // With 60 draws all three tiers should appear.
  EXPECT_EQ(seen.size(), 3u);
}

TEST_F(NetworkTest, BandwidthStableAcrossReRegistration) {
  const double bw = net_.bandwidth_bps(a_);
  net_.unregister_node(a_);
  net_.register_node(a_, &ra_);
  EXPECT_EQ(net_.bandwidth_bps(a_), bw);
}

TEST_F(NetworkTest, TransferUsesBottleneckBandwidth) {
  const double bw_a = net_.bandwidth_bps(a_);
  const double bw_b = net_.bandwidth_bps(b_);
  const uint64_t bytes = 10000000;
  const sim::SimTime d = net_.delivery_delay(a_, b_, bytes);
  const double expected_transfer = static_cast<double>(bytes) * 8.0 / std::min(bw_a, bw_b);
  const double latency_s = net_.latency(a_, b_).to_seconds();
  EXPECT_NEAR(d.to_seconds(), latency_s + expected_transfer, 1e-6);
}

class BlockAll : public LinkFilter {
 public:
  bool allow(NodeId, NodeId) const override { return false; }
};

class BlockTo : public LinkFilter {
 public:
  explicit BlockTo(NodeId victim) : victim_(victim) {}
  bool allow(NodeId, NodeId to) const override { return to != victim_; }

 private:
  NodeId victim_;
};

TEST_F(NetworkTest, FilterDropsAtSendTime) {
  BlockAll filter;
  net_.add_filter(&filter);
  net_.send(make_message(a_, b_));
  sim_.run();
  EXPECT_TRUE(rb_.received.empty());
  EXPECT_EQ(net_.stats().messages_filtered, 1u);
}

TEST_F(NetworkTest, FilterInstalledMidFlightDropsAtDelivery) {
  BlockAll filter;
  net_.send(make_message(a_, b_));
  // Install the filter before the delivery event fires.
  sim_.schedule_in(sim::SimTime::microseconds(1), [&] { net_.add_filter(&filter); });
  sim_.run();
  EXPECT_TRUE(rb_.received.empty());
  EXPECT_EQ(net_.stats().messages_filtered, 1u);
}

TEST_F(NetworkTest, RemoveFilterRestoresDelivery) {
  BlockAll filter;
  net_.add_filter(&filter);
  net_.remove_filter(&filter);
  net_.send(make_message(a_, b_));
  sim_.run();
  EXPECT_EQ(rb_.received.size(), 1u);
}

TEST_F(NetworkTest, TargetedFilterOnlyAffectsVictim) {
  BlockTo filter(b_);
  net_.add_filter(&filter);
  NodeId c{3};
  Recorder rc;
  net_.register_node(c, &rc);
  net_.send(make_message(a_, b_));
  net_.send(make_message(a_, c));
  sim_.run();
  EXPECT_TRUE(rb_.received.empty());
  EXPECT_EQ(rc.received.size(), 1u);
}

TEST_F(NetworkTest, UnregisteredDestinationCounted) {
  net_.send(make_message(a_, NodeId{77}));
  sim_.run();
  EXPECT_EQ(net_.stats().messages_no_handler, 1u);
}

TEST_F(NetworkTest, SelfLatencyIsZero) { EXPECT_EQ(net_.latency(a_, a_), sim::SimTime::zero()); }

}  // namespace
}  // namespace lockss::net
