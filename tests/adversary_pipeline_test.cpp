// Adversary pipeline model: enum-kind ↔ canonical-pipeline equivalence and
// phase-window semantics.
//
// The equivalence half is the contract that let PR 4 route every scenario —
// legacy single-enum specs included — through adversary::AdversaryFleet: a
// config carrying AdversarySpec::Kind k must produce a bit-identical
// RunResult to the same config carrying canonical_pipeline(k) explicitly.
// The golden corpus pins the fleet against the pre-pipeline implementation;
// this test pins the enum path against the explicit-pipeline path for every
// kind, so neither can drift without failing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adversary/pipeline.hpp"
#include "experiment/scenario.hpp"

namespace lockss::experiment {
namespace {

// Exact equality over every deterministic field (the bench_report
// `identical` predicate, duplicated so tests stay self-contained).
void expect_identical(const RunResult& a, const RunResult& b, const std::string& what) {
  EXPECT_EQ(a.report.access_failure_probability, b.report.access_failure_probability) << what;
  EXPECT_EQ(a.report.mean_success_gap_days, b.report.mean_success_gap_days) << what;
  EXPECT_EQ(a.report.successful_polls, b.report.successful_polls) << what;
  EXPECT_EQ(a.report.inquorate_polls, b.report.inquorate_polls) << what;
  EXPECT_EQ(a.report.alarms, b.report.alarms) << what;
  EXPECT_EQ(a.report.repairs, b.report.repairs) << what;
  EXPECT_EQ(a.report.damage_events, b.report.damage_events) << what;
  EXPECT_EQ(a.report.loyal_effort_seconds, b.report.loyal_effort_seconds) << what;
  EXPECT_EQ(a.report.adversary_effort_seconds, b.report.adversary_effort_seconds) << what;
  EXPECT_EQ(a.polls_started, b.polls_started) << what;
  EXPECT_EQ(a.solicitations_sent, b.solicitations_sent) << what;
  EXPECT_EQ(a.messages_delivered, b.messages_delivered) << what;
  EXPECT_EQ(a.messages_filtered, b.messages_filtered) << what;
  EXPECT_EQ(a.adversary_invitations, b.adversary_invitations) << what;
  EXPECT_EQ(a.adversary_admissions, b.adversary_admissions) << what;
  EXPECT_EQ(a.admission_verdicts, b.admission_verdicts) << what;
  EXPECT_EQ(a.events_processed, b.events_processed) << what;
  EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth) << what;
  EXPECT_EQ(a.trace == b.trace, true) << what;
}

ScenarioConfig small_config(uint64_t seed) {
  ScenarioConfig config;
  config.peer_count = 12;
  config.au_count = 2;
  config.duration = sim::SimTime::days(220);
  config.seed = seed;
  config.trace_interval = sim::SimTime::days(30);
  config.damage.mean_disk_years_between_failures = 0.2;
  config.damage.aus_per_disk = 2.0;
  return config;
}

TEST(AdversaryPipelineTest, EnumKindMatchesCanonicalPipelineBitExactly) {
  const std::vector<AdversarySpec::Kind> kinds = {
      AdversarySpec::Kind::kNone,         AdversarySpec::Kind::kPipeStoppage,
      AdversarySpec::Kind::kAdmissionFlood, AdversarySpec::Kind::kBruteForce,
      AdversarySpec::Kind::kGradeRecovery,  AdversarySpec::Kind::kVoteFlood,
      AdversarySpec::Kind::kCombined,
  };
  for (uint64_t seed : {1u, 77u}) {
    for (AdversarySpec::Kind kind : kinds) {
      ScenarioConfig by_kind = small_config(seed);
      by_kind.adversary.kind = kind;
      by_kind.adversary.cadence.attack_duration = sim::SimTime::days(25);
      by_kind.adversary.cadence.recuperation = sim::SimTime::days(12);
      by_kind.adversary.cadence.coverage = 0.5;
      by_kind.adversary.defection = adversary::DefectionPoint::kRemaining;

      ScenarioConfig by_pipeline = by_kind;
      by_pipeline.adversary.pipeline = canonical_pipeline(by_kind.adversary);
      // Poison the enum: the explicit pipeline must take precedence.
      by_pipeline.adversary.kind = AdversarySpec::Kind::kNone;
      if (kind == AdversarySpec::Kind::kNone) {
        EXPECT_TRUE(by_pipeline.adversary.pipeline.empty());
        continue;
      }
      EXPECT_EQ(by_pipeline.adversary.pipeline.size(),
                kind == AdversarySpec::Kind::kCombined ? 2u : 1u);

      expect_identical(run_scenario(by_kind), run_scenario(by_pipeline),
                       std::string("kind=") + std::to_string(static_cast<int>(kind)) +
                           " seed=" + std::to_string(seed));
    }
  }
}

TEST(AdversaryPipelineTest, StopWindowDisarmsTheAttack) {
  // Vote flood for the first 60 days only: strictly fewer bogus votes than
  // a full-run flood, and identical to it in the window's interior is not
  // required — only that the tap actually closes.
  ScenarioConfig full = small_config(3);
  adversary::AdversaryPhase flood;
  flood.kind = adversary::PhaseKind::kVoteFlood;
  full.adversary.pipeline = {flood};
  const RunResult full_run = run_scenario(full);

  ScenarioConfig windowed = full;
  windowed.adversary.pipeline[0].stop = sim::SimTime::days(60);
  const RunResult windowed_run = run_scenario(windowed);

  EXPECT_GT(full_run.adversary_invitations, 0u);
  EXPECT_GT(windowed_run.adversary_invitations, 0u);
  EXPECT_LT(windowed_run.adversary_invitations, full_run.adversary_invitations / 2);
}

TEST(AdversaryPipelineTest, StartDelaysTheAttack) {
  // A pipe stoppage that only exists in the last quarter filters fewer
  // messages than one running from day zero.
  ScenarioConfig early = small_config(4);
  adversary::AdversaryPhase stoppage;
  stoppage.kind = adversary::PhaseKind::kPipeStoppage;
  stoppage.cadence.attack_duration = sim::SimTime::days(30);
  stoppage.cadence.recuperation = sim::SimTime::days(10);
  stoppage.cadence.coverage = 1.0;
  early.adversary.pipeline = {stoppage};
  const RunResult early_run = run_scenario(early);

  ScenarioConfig late = early;
  late.adversary.pipeline[0].start = sim::SimTime::days(165);
  const RunResult late_run = run_scenario(late);

  EXPECT_GT(early_run.messages_filtered, 0u);
  EXPECT_GT(late_run.messages_filtered, 0u);
  EXPECT_LT(late_run.messages_filtered, early_run.messages_filtered);
}

TEST(AdversaryPipelineTest, ConcurrentPhasesBothEngage) {
  // Pipe stoppage + vote flood running together: the blackout filters
  // messages while the flood keeps spraying (counted via invitations).
  ScenarioConfig config = small_config(5);
  adversary::AdversaryPhase stoppage;
  stoppage.kind = adversary::PhaseKind::kPipeStoppage;
  stoppage.cadence.attack_duration = sim::SimTime::days(20);
  stoppage.cadence.recuperation = sim::SimTime::days(20);
  stoppage.cadence.coverage = 0.5;
  adversary::AdversaryPhase flood;
  flood.kind = adversary::PhaseKind::kVoteFlood;
  config.adversary.pipeline = {stoppage, flood};
  const RunResult result = run_scenario(config);
  EXPECT_GT(result.messages_filtered, 0u);
  EXPECT_GT(result.adversary_invitations, 0u);
}

TEST(AdversaryPipelineTest, ValidatePipelineDiagnostics) {
  adversary::AdversaryPipeline pipeline;
  adversary::AdversaryPhase a;
  a.kind = adversary::PhaseKind::kBruteForce;
  adversary::AdversaryPhase b;
  b.kind = adversary::PhaseKind::kBruteForce;
  pipeline = {a, b};
  EXPECT_NE(adversary::validate_pipeline(pipeline, 100).find("overlapping"),
            std::string::npos);

  b.minion_id_base = 1u << 26;
  pipeline = {a, b};
  EXPECT_TRUE(adversary::validate_pipeline(pipeline, 100).empty());

  adversary::AdversaryPhase bad_window;
  bad_window.kind = adversary::PhaseKind::kVoteFlood;
  bad_window.start = sim::SimTime::days(10);
  bad_window.stop = sim::SimTime::days(5);
  EXPECT_NE(adversary::validate_pipeline({bad_window}, 100).find("stop"), std::string::npos);

  adversary::AdversaryPhase bad_coverage;
  bad_coverage.kind = adversary::PhaseKind::kPipeStoppage;
  bad_coverage.cadence.coverage = 1.5;
  EXPECT_NE(adversary::validate_pipeline({bad_coverage}, 100).find("coverage"),
            std::string::npos);

  adversary::AdversaryPhase low_pool;
  low_pool.kind = adversary::PhaseKind::kVoteFlood;
  low_pool.minion_id_base = 10;
  EXPECT_NE(adversary::validate_pipeline({low_pool}, 100).find("id space"), std::string::npos);
}

}  // namespace
}  // namespace lockss::experiment
