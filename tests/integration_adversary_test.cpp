// End-to-end scenario tests with each adversary (§7.2–§7.4), verifying the
// qualitative results of the paper's evaluation at reduced scale.
#include <gtest/gtest.h>

#include "experiment/aggregate.hpp"
#include "experiment/scenario.hpp"

namespace lockss::experiment {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.peer_count = 30;
  config.au_count = 2;
  config.duration = sim::SimTime::years(1);
  config.seed = 7;
  // Damage fast enough for measurable access failures in 1 year.
  config.damage.mean_disk_years_between_failures = 0.2;
  config.damage.aus_per_disk = 2.0;
  return config;
}

TEST(PipeStoppageIntegrationTest, TotalBlackoutStopsPolls) {
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  config.adversary.kind = AdversarySpec::Kind::kPipeStoppage;
  config.adversary.cadence.coverage = 1.0;
  config.adversary.cadence.attack_duration = sim::SimTime::days(360);
  config.adversary.cadence.recuperation = sim::SimTime::days(30);
  const RunResult attacked = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kNone;
  const RunResult baseline = run_scenario(config);
  // A year-long 100%-coverage blackout suppresses essentially all polls.
  EXPECT_LT(attacked.report.successful_polls, baseline.report.successful_polls / 10 + 5);
  EXPECT_GT(attacked.messages_filtered, 0u);
}

TEST(PipeStoppageIntegrationTest, ShortAttacksBarelyMatter) {
  // §7.2: "attacks must last at least 60 days to raise the delay ratio by an
  // order of magnitude" — short repeated stoppages are absorbed by retries
  // spread across the 90-day solicitation window.
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  config.adversary.kind = AdversarySpec::Kind::kPipeStoppage;
  config.adversary.cadence.coverage = 1.0;
  config.adversary.cadence.attack_duration = sim::SimTime::days(2);
  config.adversary.cadence.recuperation = sim::SimTime::days(30);
  const RunResult attacked = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kNone;
  const RunResult baseline = run_scenario(config);
  EXPECT_GT(attacked.report.successful_polls, baseline.report.successful_polls * 8 / 10);
}

TEST(PipeStoppageIntegrationTest, PartialCoverageDegradesGracefully) {
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  config.duration = sim::SimTime::years(1);
  config.adversary.kind = AdversarySpec::Kind::kPipeStoppage;
  config.adversary.cadence.coverage = 0.4;
  config.adversary.cadence.attack_duration = sim::SimTime::days(60);
  config.adversary.cadence.recuperation = sim::SimTime::days(30);
  const RunResult attacked = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kNone;
  const RunResult baseline = run_scenario(config);
  // 40% coverage must hurt less than proportionally (untargeted peers keep
  // auditing; targeted peers recover in recuperation).
  EXPECT_GT(attacked.report.successful_polls, baseline.report.successful_polls / 3);
  EXPECT_LT(attacked.report.successful_polls, baseline.report.successful_polls + 1);
}

TEST(PipeStoppageIntegrationTest, DamageAccumulatesDuringBlackout) {
  ScenarioConfig config = small_config();
  config.adversary.kind = AdversarySpec::Kind::kPipeStoppage;
  config.adversary.cadence.coverage = 1.0;
  config.adversary.cadence.attack_duration = sim::SimTime::days(180);
  config.adversary.cadence.recuperation = sim::SimTime::days(30);
  const RunResult attacked = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kNone;
  const RunResult baseline = run_scenario(config);
  // Repairs are blocked during blackouts, so damage lingers longer.
  EXPECT_GT(attacked.report.access_failure_probability,
            baseline.report.access_failure_probability);
}

TEST(AdmissionFloodIntegrationTest, AuditsContinueUnderGarbageFlood) {
  // §7.3: "these attacks have little effect on the access failure
  // probability or the delay ratio."
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  config.adversary.kind = AdversarySpec::Kind::kAdmissionFlood;
  config.adversary.cadence.coverage = 1.0;
  config.adversary.cadence.attack_duration = sim::SimTime::days(360);
  config.adversary.cadence.recuperation = sim::SimTime::days(30);
  const RunResult attacked = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kNone;
  const RunResult baseline = run_scenario(config);
  EXPECT_GT(attacked.adversary_invitations, 1000u);
  EXPECT_GT(attacked.report.successful_polls, baseline.report.successful_polls * 9 / 10);
}

TEST(AdmissionFloodIntegrationTest, RefractoryPeriodsBurnAndVerificationWasted) {
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  config.duration = sim::SimTime::months(6);
  config.adversary.kind = AdversarySpec::Kind::kAdmissionFlood;
  config.adversary.cadence.coverage = 1.0;
  config.adversary.cadence.attack_duration = sim::SimTime::days(170);
  config.adversary.cadence.recuperation = sim::SimTime::days(30);
  const RunResult attacked = run_scenario(config);
  // Garbage that passes the coin flip is detected only at verification.
  const uint64_t verified_garbage = attacked.admission_verdicts[static_cast<size_t>(
      protocol::AdmissionVerdict::kBadIntroEffort)];
  EXPECT_GT(verified_garbage, 50u);
  // The refractory period caps costed consideration of unknown-sender
  // garbage at about one per victim per AU per day (§6.3).
  const uint64_t refractory_ceiling = 30u * 2u * 181u;
  EXPECT_LT(verified_garbage, refractory_ceiling * 12 / 10);
  // The overwhelming majority of garbage dies in the free random-drop or
  // refractory stages. The insider-informed adversary probes only outside
  // refractory windows, so the floor is the 9:1 unknown-sender drop ratio
  // (0.90 drop probability); loyal invitations bounced by hot refractory
  // periods add to it.
  EXPECT_GT(attacked.admission_verdicts[static_cast<size_t>(
                protocol::AdmissionVerdict::kRandomDrop)] +
                attacked.admission_verdicts[static_cast<size_t>(
                    protocol::AdmissionVerdict::kRefractoryReject)],
            5 * verified_garbage);
}

TEST(BruteForceIntegrationTest, FullParticipationRaisesFriction) {
  // §7.4/Table 1: the NONE strategy roughly doubles loyal effort per
  // successful poll but barely moves access failure.
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  config.duration = sim::SimTime::months(9);
  config.adversary.kind = AdversarySpec::Kind::kBruteForce;
  config.adversary.defection = adversary::DefectionPoint::kNone;
  const RunResult attacked = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kNone;
  const RunResult baseline = run_scenario(config);
  const RelativeMetrics rel = relative_metrics(attacked, baseline);
  EXPECT_GT(attacked.adversary_admissions, 50u);
  EXPECT_GT(rel.friction, 1.2);
  EXPECT_LT(rel.friction, 10.0);
  // Polls still succeed at nearly the baseline rate.
  EXPECT_GT(attacked.report.successful_polls, baseline.report.successful_polls * 8 / 10);
}

TEST(BruteForceIntegrationTest, IntroDefectionWastesLessDefenderEffortThanFull) {
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  config.duration = sim::SimTime::months(9);
  config.adversary.kind = AdversarySpec::Kind::kBruteForce;
  config.adversary.defection = adversary::DefectionPoint::kIntro;
  const RunResult intro = run_scenario(config);
  config.adversary.defection = adversary::DefectionPoint::kNone;
  const RunResult none = run_scenario(config);
  // Table 1 ordering: INTRO friction < NONE friction.
  EXPECT_LT(intro.report.effort_per_successful_poll, none.report.effort_per_successful_poll);
}

TEST(BruteForceIntegrationTest, CostRatioOrderingMatchesTable1) {
  // Table 1: cost ratio INTRO (1.93) > REMAINING (1.55) >= NONE (1.02): full
  // participation is the adversary's most cost-effective strategy, INTRO
  // desertion its least. Our NONE adversary skips the redundant evaluation
  // hashing (see BruteForceAdversary), so its total effort is the REMAINING
  // adversary's plus only an MBF-verification epsilon, while the defenders
  // additionally serve its repair requests; NONE therefore lands at or just
  // below REMAINING rather than across the paper's wider 1.55 -> 1.02 gap
  // (EXPERIMENTS.md shows the full accounting).
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  config.duration = sim::SimTime::months(9);
  config.adversary.kind = AdversarySpec::Kind::kBruteForce;

  config.adversary.defection = adversary::DefectionPoint::kIntro;
  const RunResult intro = run_scenario(config);
  config.adversary.defection = adversary::DefectionPoint::kRemaining;
  const RunResult remaining = run_scenario(config);
  config.adversary.defection = adversary::DefectionPoint::kNone;
  const RunResult none = run_scenario(config);

  EXPECT_GT(intro.report.cost_ratio, remaining.report.cost_ratio);
  EXPECT_LE(none.report.cost_ratio, remaining.report.cost_ratio * 1.05);
  EXPECT_LT(none.report.cost_ratio, intro.report.cost_ratio);
  // Harm side of the same table: desertion at INTRO wastes the least loyal
  // effort per successful poll, full participation at least as much as
  // REMAINING.
  EXPECT_GT(remaining.report.effort_per_successful_poll,
            intro.report.effort_per_successful_poll);
  EXPECT_GE(none.report.effort_per_successful_poll,
            remaining.report.effort_per_successful_poll * 0.95);
}

TEST(BruteForceIntegrationTest, AdmissionsRateLimitedByRefractory) {
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  config.duration = sim::SimTime::months(3);
  config.adversary.kind = AdversarySpec::Kind::kBruteForce;
  config.adversary.defection = adversary::DefectionPoint::kNone;
  const RunResult attacked = run_scenario(config);
  // Ceiling: one unknown/debt admission per victim per AU per refractory
  // day => 30 peers x 2 AUs x ~90 days.
  const uint64_t ceiling = 30u * 2u * 92u;
  EXPECT_LT(attacked.adversary_admissions, ceiling);
  EXPECT_GT(attacked.adversary_admissions, ceiling / 8);
  // ~5 tries per admission (0.2 admission probability).
  const double tries_per_admission =
      static_cast<double>(attacked.adversary_invitations) /
      static_cast<double>(attacked.adversary_admissions);
  EXPECT_GT(tries_per_admission, 2.5);
  EXPECT_LT(tries_per_admission, 10.0);
}

TEST(LayeredRunTest, LayersRunAndCombine) {
  ScenarioConfig config = small_config();
  config.enable_damage = false;
  config.peer_count = 15;
  config.au_count = 2;
  config.duration = sim::SimTime::months(6);
  const auto layers = run_layered(config, 3);
  ASSERT_EQ(layers.size(), 3u);
  for (const auto& layer : layers) {
    EXPECT_GT(layer.report.successful_polls, 0u);
  }
  const RunResult combined = combine_results(layers);
  EXPECT_EQ(combined.report.successful_polls, layers[0].report.successful_polls +
                                                  layers[1].report.successful_polls +
                                                  layers[2].report.successful_polls);
  EXPECT_GT(combined.report.effort_per_successful_poll, 0.0);
}

}  // namespace
}  // namespace lockss::experiment
