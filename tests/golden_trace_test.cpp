// Golden-trace regression corpus: six small canonical scenarios spanning
// the paper's attack families (plus churn and §6.3 layering), each reduced
// to a full textual fingerprint of its RunResult — every scalar, counter,
// histogram bucket, and trace point, doubles rendered round-trip exactly
// with %.17g — and compared byte-for-byte against fixtures committed under
// tests/golden/. An FNV-1a hash heads each fixture for quick triage.
//
// This pins down, across every future PR: the simulator's end-to-end
// determinism (PR 1's bit-identical contract now has a corpus, not just a
// self-consistency check), the dense metrics collector's accounting, and
// the trace sampler's event stream.
//
// Regenerating after an *intentional* behavior change:
//
//   LOCKSS_REGEN_GOLDEN=1 ./build/golden_trace_test
//
// rewrites the fixtures in the source tree; commit the diff with an
// explanation of why the numbers moved. See docs/metrics.md. The fixtures
// assume one platform/libm (CI and the dev container); a fresh platform
// regenerates once and is then pinned.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/aggregate.hpp"
#include "experiment/scenario.hpp"

namespace lockss::experiment {
namespace {

std::string golden_dir() { return std::string(LOCKSS_SOURCE_DIR) + "/tests/golden/"; }

void append(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s: %.17g\n", key, v);
  out += buf;
}

void append(std::string& out, const char* key, uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s: %" PRIu64 "\n", key, v);
  out += buf;
}

// The full deterministic content of a RunResult, one field per line.
// `dynamic` selects the extended fixture format carrying the dynamics
// accounting; it is a property of the scenario *config* (churn/operators
// enabled), not of what the realized schedule happened to produce, so the
// fixture shape can never flip on a seed tweak and a dynamics-enabled
// scenario pins its dynamics fields even when they are all zero. `faulty`
// gates the unreliable-network extension lines the same way (fault
// counters, robustness counters, abort taxonomy, liveness audit), so the
// pre-fault corpus stays byte-identical with zero regeneration.
std::string fingerprint(const std::string& name, const RunResult& r, bool dynamic,
                        bool faulty = false) {
  std::string out = "scenario: " + name + "\n";
  const metrics::MetricsReport& m = r.report;
  append(out, "duration_days", m.duration.to_days());
  append(out, "access_failure_probability", m.access_failure_probability);
  append(out, "mean_success_gap_days", m.mean_success_gap_days);
  append(out, "mean_observed_gap_days", m.mean_observed_gap_days);
  append(out, "successful_polls", m.successful_polls);
  append(out, "inquorate_polls", m.inquorate_polls);
  append(out, "alarms", m.alarms);
  append(out, "repairs", m.repairs);
  append(out, "damage_events", m.damage_events);
  append(out, "loyal_effort_seconds", m.loyal_effort_seconds);
  append(out, "adversary_effort_seconds", m.adversary_effort_seconds);
  append(out, "effort_per_successful_poll", m.effort_per_successful_poll);
  append(out, "cost_ratio", m.cost_ratio);
  append(out, "polls_started", r.polls_started);
  append(out, "solicitations_sent", r.solicitations_sent);
  append(out, "messages_delivered", r.messages_delivered);
  append(out, "messages_filtered", r.messages_filtered);
  append(out, "adversary_invitations", r.adversary_invitations);
  append(out, "adversary_admissions", r.adversary_admissions);
  for (size_t v = 0; v < r.admission_verdicts.size(); ++v) {
    char key[32];
    std::snprintf(key, sizeof(key), "admission_verdicts[%zu]", v);
    append(out, key, r.admission_verdicts[v]);
  }
  append(out, "events_processed", r.events_processed);
  append(out, "peak_queue_depth", r.peak_queue_depth);
  // Deployment-dynamics accounting is fingerprinted only for dynamic
  // scenarios, so every static fixture in the pre-dynamics corpus stays
  // byte-identical with zero regeneration.
  if (dynamic) {
    append(out, "churn_departures", r.churn_departures);
    append(out, "churn_recoveries", r.churn_recoveries);
    append(out, "churn_arrivals", r.churn_arrivals);
    append(out, "availability_mean", r.availability_mean);
    append(out, "mean_recovery_days", r.mean_recovery_days);
    for (size_t a = 0; a < r.operator_interventions.size(); ++a) {
      char key[40];
      std::snprintf(key, sizeof(key), "operator_interventions[%zu]", a);
      append(out, key, r.operator_interventions[a]);
    }
  }
  if (faulty) {
    append(out, "faults_lost", r.faults_lost);
    append(out, "faults_burst_dropped", r.faults_burst_dropped);
    append(out, "faults_duplicated", r.faults_duplicated);
    append(out, "faults_jittered", r.faults_jittered);
    append(out, "ack_timeouts", r.ack_timeouts);
    append(out, "vote_timeouts", r.vote_timeouts);
    append(out, "solicitation_retries", r.solicitation_retries);
    for (size_t a = 0; a < r.polls_aborted.size(); ++a) {
      char key[32];
      std::snprintf(key, sizeof(key), "polls_aborted[%zu]", a);
      append(out, key, r.polls_aborted[a]);
    }
    append(out, "sessions_live_at_end", r.sessions_live_at_end);
    append(out, "stale_sessions_at_end", r.stale_sessions_at_end);
    append(out, "reservations_beyond_horizon", r.reservations_beyond_horizon);
  }
  append(out, "trace_interval_days", r.trace.interval.to_days());
  append(out, "trace_points", static_cast<uint64_t>(r.trace.points.size()));
  for (size_t k = 0; k < r.trace.points.size(); ++k) {
    const metrics::TracePoint& p = r.trace.points[k];
    char prefix[48];
    std::snprintf(prefix, sizeof(prefix), "trace[%zu]", k);
    std::string row = prefix;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ": t=%.17g damaged=%.17g afp=%.17g success=%" PRIu64 " inquorate=%" PRIu64
                  " alarms=%" PRIu64 " repairs=%" PRIu64 " loyal=%.17g adversary=%.17g\n",
                  p.t.to_days(), p.damaged_fraction, p.afp_to_date, p.successful_polls,
                  p.inquorate_polls, p.alarms, p.repairs, p.loyal_effort_seconds,
                  p.adversary_effort_seconds);
    out += row + buf;
    if (dynamic) {
      std::snprintf(buf, sizeof(buf),
                    "%s: online=%.17g departures=%" PRIu64 " recoveries=%" PRIu64
                    " mean_recovery_days=%.17g\n",
                    prefix, p.online_fraction, p.departures, p.recoveries,
                    p.mean_recovery_days);
      out += buf;
    }
    if (faulty) {
      std::snprintf(buf, sizeof(buf),
                    "%s: faults=%" PRIu64 " ack_timeouts=%" PRIu64 " vote_timeouts=%" PRIu64
                    " solicitation_retries=%" PRIu64 "\n",
                    prefix, p.faults_injected, p.ack_timeouts, p.vote_timeouts,
                    p.solicitation_retries);
      out += buf;
    }
  }
  return out;
}

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Fixture = hash header + fingerprint body.
std::string render_fixture(const std::string& body) {
  char head[64];
  std::snprintf(head, sizeof(head), "hash: %016" PRIx64 "\n", fnv1a(body));
  return head + body;
}

bool regen_requested() {
  const char* env = std::getenv("LOCKSS_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void check_golden(const std::string& name, const RunResult& result, bool dynamic = false,
                  bool faulty = false) {
  const std::string fixture = render_fixture(fingerprint(name, result, dynamic, faulty));
  const std::string path = golden_dir() + name + ".golden";
  if (regen_requested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << fixture;
    out.close();
    SUCCEED() << "regenerated " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing fixture " << path
                            << " — run LOCKSS_REGEN_GOLDEN=1 ./golden_trace_test";
  std::stringstream committed;
  committed << in.rdbuf();
  EXPECT_EQ(committed.str(), fixture)
      << "RunResult drifted from the committed fixture for '" << name
      << "'. If this change is intentional, regenerate with "
         "LOCKSS_REGEN_GOLDEN=1 ./golden_trace_test and commit the diff.";
}

// Small canonical deployment: big enough for polls, repairs, damage, and
// adversary engagement; small enough that all six scenarios run in seconds.
ScenarioConfig canonical_config() {
  ScenarioConfig config;
  config.peer_count = 12;
  config.au_count = 2;
  config.duration = sim::SimTime::days(400);
  config.seed = 20250730;
  config.trace_interval = sim::SimTime::days(25);
  // Inflate the damage rate (as the reduced bench profiles do) so the
  // corpus also pins the bit-rot injection, damage-integral, and repair
  // accounting paths, which see no events at paper rates in a deployment
  // this small.
  config.damage.mean_disk_years_between_failures = 0.2;
  config.damage.aus_per_disk = config.au_count;
  return config;
}

TEST(GoldenTraceTest, Baseline) {
  check_golden("baseline", run_scenario(canonical_config()));
}

TEST(GoldenTraceTest, PipeStoppage) {
  ScenarioConfig config = canonical_config();
  config.adversary.kind = AdversarySpec::Kind::kPipeStoppage;
  config.adversary.cadence.attack_duration = sim::SimTime::days(30);
  config.adversary.cadence.recuperation = sim::SimTime::days(15);
  config.adversary.cadence.coverage = 0.5;
  check_golden("pipe_stoppage", run_scenario(config));
}

TEST(GoldenTraceTest, AdmissionFlood) {
  ScenarioConfig config = canonical_config();
  config.adversary.kind = AdversarySpec::Kind::kAdmissionFlood;
  config.adversary.cadence.attack_duration = sim::SimTime::days(20);
  config.adversary.cadence.recuperation = sim::SimTime::days(20);
  config.adversary.cadence.coverage = 1.0;
  check_golden("admission_flood", run_scenario(config));
}

TEST(GoldenTraceTest, VoteFlood) {
  ScenarioConfig config = canonical_config();
  config.adversary.kind = AdversarySpec::Kind::kVoteFlood;
  check_golden("vote_flood", run_scenario(config));
}

TEST(GoldenTraceTest, Churn) {
  ScenarioConfig config = canonical_config();
  config.newcomer_count = 3;
  config.newcomer_join_window = sim::SimTime::days(200);
  check_golden("churn", run_scenario(config));
}

TEST(GoldenTraceTest, ChurnDynamics) {
  // Session churn + arrivals + alarm/recovery operator policies over the
  // canonical deployment: pins the whole dynamics layer — schedule
  // generation, depart/recover teardown, arrival bootstrap, operator
  // interventions, and the availability/recovery trace series.
  ScenarioConfig config = canonical_config();
  config.churn.leave_rate_per_peer_year = 1.5;
  config.churn.crash_rate_per_peer_year = 0.7;
  config.churn.mean_downtime_days = 8.0;
  config.churn.arrival_rate_per_year = 3.0;
  config.operators.detection_latency = sim::SimTime::days(2);
  config.operators.policies.push_back(
      {dynamics::OperatorTrigger::kAlarm, dynamics::OperatorAction::kAuRecrawl, 1.0});
  config.operators.policies.push_back(
      {dynamics::OperatorTrigger::kRecovery, dynamics::OperatorAction::kRekey, 1.0});
  check_golden("churn_dynamics", run_scenario(config), /*dynamic=*/true);
}

TEST(GoldenTraceTest, RegionalOutage) {
  // Correlated regional outages with staggered, state-losing recovery under
  // a brute-force adversary: pins the outage merge logic, the offline link
  // filter, and publisher reinstalls interacting with the damage integral.
  ScenarioConfig config = canonical_config();
  config.adversary.kind = AdversarySpec::Kind::kBruteForce;
  config.churn.regions = 3;
  config.churn.regional_outage_rate_per_year = 3.0;
  config.churn.regional_outage_days = 6.0;
  config.churn.regional_recovery_stagger_hours = 12.0;
  config.churn.regional_state_loss = true;
  check_golden("regional_outage", run_scenario(config), /*dynamic=*/true);
}

TEST(GoldenTraceTest, LossyLinks) {
  // All four fault knobs over the otherwise-static canonical deployment:
  // pins the fault model's per-sender lane streams, the burst placement
  // hash, the duplicate clone path, and the robustness/abort/liveness
  // accounting (docs/faults.md).
  ScenarioConfig config = canonical_config();
  config.faults.loss_rate = 0.10;
  config.faults.dup_rate = 0.02;
  config.faults.jitter = sim::SimTime::milliseconds(20);
  config.faults.burst_outage_rate = 0.05;
  config.faults.burst_cycle = sim::SimTime::days(2.0);
  check_golden("lossy_links", run_scenario(config), /*dynamic=*/false, /*faulty=*/true);
}

TEST(GoldenTraceTest, LossyChurnDynamics) {
  // Faults composed with session churn and arrivals: the delivery path now
  // runs faults *after* the churn OfflineSetFilter veto, so this fixture
  // pins the fault/veto ordering and the lane-draw stream under a changing
  // population.
  ScenarioConfig config = canonical_config();
  config.faults.loss_rate = 0.15;
  config.faults.jitter = sim::SimTime::milliseconds(10);
  config.churn.leave_rate_per_peer_year = 1.5;
  config.churn.crash_rate_per_peer_year = 0.7;
  config.churn.mean_downtime_days = 8.0;
  config.churn.arrival_rate_per_year = 3.0;
  check_golden("lossy_churn_dynamics", run_scenario(config), /*dynamic=*/true, /*faulty=*/true);
}

TEST(GoldenTraceTest, LayeredBruteForce) {
  // §6.3 layering methodology under the §7.4 adversary: two layers whose
  // schedules thread through, combined into one deployment-level result.
  ScenarioConfig config = canonical_config();
  config.adversary.kind = AdversarySpec::Kind::kBruteForce;
  const std::vector<RunResult> layers = run_layered(config, 2);
  ASSERT_EQ(layers.size(), 2u);
  check_golden("layered_brute_force", combine_results(layers));
}

}  // namespace
}  // namespace lockss::experiment
