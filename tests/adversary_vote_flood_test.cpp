// The §5.1 vote-flood adversary: "hamstrung by the fact that votes can be
// supplied only in response to an invitation by the putative victim poller
// ... Unsolicited votes are ignored."
#include <gtest/gtest.h>

#include "adversary/vote_flood.hpp"
#include "experiment/aggregate.hpp"
#include "experiment/scenario.hpp"

namespace lockss::experiment {
namespace {

ScenarioConfig flood_config() {
  ScenarioConfig config;
  config.peer_count = 20;
  config.au_count = 2;
  config.duration = sim::SimTime::months(9);
  config.seed = 31;
  config.enable_damage = false;
  return config;
}

TEST(VoteFloodIntegrationTest, FloodBuysNoFriction) {
  ScenarioConfig config = flood_config();
  config.adversary.kind = AdversarySpec::Kind::kVoteFlood;
  const RunResult attacked = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kNone;
  const RunResult baseline = run_scenario(config);

  // The flood really happened — hundreds of thousands of bogus votes.
  EXPECT_GT(attacked.adversary_invitations, 100000u);
  // Zero effect on throughput: every vote died at session dispatch.
  EXPECT_EQ(attacked.report.successful_polls, baseline.report.successful_polls);
  EXPECT_EQ(attacked.report.alarms, 0u);
  // Loyal effort rises by at most a sliver (message-arrival overhead only;
  // no hashing, no proof verification).
  const RelativeMetrics rel = relative_metrics(attacked, baseline);
  EXPECT_LT(rel.friction, 1.05);
  EXPECT_GE(rel.friction, 0.99);
}

TEST(VoteFloodIntegrationTest, ReplayedLivePollIdsAreStillRejected) {
  // With replay_fraction forced to 1 every bogus vote names a poll the
  // victim is actually running; the invitee check must still reject all of
  // them, so tallies stay clean and polls conclude exactly as in baseline.
  ScenarioConfig config = flood_config();
  config.seed = 32;
  config.adversary.kind = AdversarySpec::Kind::kVoteFlood;
  const RunResult attacked = run_scenario(config);
  config.adversary.kind = AdversarySpec::Kind::kNone;
  const RunResult baseline = run_scenario(config);
  EXPECT_EQ(attacked.report.successful_polls, baseline.report.successful_polls);
  EXPECT_EQ(attacked.report.inquorate_polls, baseline.report.inquorate_polls);
  EXPECT_EQ(attacked.report.alarms, 0u);
}

TEST(VoteFloodIntegrationTest, AdversaryEffortIsNearZero) {
  // The attack is nearly effortless for the adversary too (garbage proofs
  // cost nothing) — but it buys him nothing, which is the point: the rate
  // limits remove the target, not the attacker's budget.
  ScenarioConfig config = flood_config();
  config.adversary.kind = AdversarySpec::Kind::kVoteFlood;
  const RunResult attacked = run_scenario(config);
  EXPECT_LT(attacked.report.adversary_effort_seconds, attacked.report.loyal_effort_seconds * 0.01);
}

}  // namespace
}  // namespace lockss::experiment
