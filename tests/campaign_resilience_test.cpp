// Crash-resumable campaign execution, end to end.
//
// The central claim: kill the campaign process at ANY journal offset, at
// ANY worker count, resume with --resume, and every artifact (manifest,
// cells CSV, figure CSV, trace CSV, gnuplot script) is byte-identical to
// the uninterrupted run's. The kill is a real one — fork() a child that
// runs the engine under a fault plan whose kill:<n> directive _exit(137)s
// mid-run, exactly like SIGKILL — and the resume happens in this process
// against whatever the dead child left on disk.
//
// Also covered: per-cell failure isolation and retry (a unit that exhausts
// its retry budget is recorded as failed while the rest of the grid
// completes), deterministic retry recovery (artifacts identical to the
// no-fault run), journal/artifact I/O fault unwinding, resume over a
// corrupted journal, and spec-mismatch rejection.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "campaign/engine.hpp"
#include "campaign/fault.hpp"
#include "campaign/journal.hpp"
#include "campaign/spec.hpp"
#include "experiment/runner.hpp"

namespace lockss::campaign {
namespace {

std::string source_dir() { return std::string(LOCKSS_SOURCE_DIR); }

std::string fresh_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "resilience_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << text;
}

CompiledCampaign compile_file(const std::string& campaign_file) {
  Spec spec;
  std::string error;
  EXPECT_TRUE(load_spec_file(source_dir() + "/campaigns/" + campaign_file, &spec, &error))
      << error;
  CompiledCampaign compiled;
  EXPECT_TRUE(compile_campaign(spec, &compiled, &error)) << error;
  return compiled;
}

CompiledCampaign compile_text(const std::string& text, const std::string& tag) {
  const std::string path = testing::TempDir() + "resilience_spec_" + tag + ".json";
  write_text(path, text);
  Spec spec;
  std::string error;
  EXPECT_TRUE(load_spec_file(path, &spec, &error)) << error;
  CompiledCampaign compiled;
  EXPECT_TRUE(compile_campaign(spec, &compiled, &error)) << error;
  return compiled;
}

// Every artifact in `dir` except the journal (which legitimately differs
// between an interrupted+resumed run and an uninterrupted one: the former
// holds the same records in a different completion order).
std::map<std::string, std::string> read_artifacts(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".journal") || name.ends_with(".tmp")) {
      continue;
    }
    files[name] = read_bytes(entry.path().string());
  }
  return files;
}

RunOptions make_options(const std::string& dir) {
  RunOptions options;
  options.out_dir = dir;
  options.quiet = true;
  return options;
}

// Uninterrupted reference run (worker count is irrelevant to the bytes —
// that is the determinism contract this suite leans on).
std::map<std::string, std::string> reference_artifacts(const CompiledCampaign& compiled,
                                                       const std::string& tag) {
  const std::string dir = fresh_dir(tag);
  CampaignOutcome outcome;
  std::string error;
  EXPECT_TRUE(run_campaign(compiled, make_options(dir), &outcome, &error)) << error;
  EXPECT_TRUE(outcome.all_ok());
  return read_artifacts(dir);
}

// Fork a child that runs the campaign under `kill:<offset>` and dies with
// _exit(137) right after that journal append; then resume in-process with
// `workers` and return what landed on disk.
void kill_then_resume(const CompiledCampaign& compiled, uint64_t kill_offset, unsigned workers,
                      const std::string& dir, CampaignOutcome* outcome) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    experiment::ParallelRunner::set_default_workers(workers);
    RunOptions options = make_options(dir);
    std::string error;
    ASSERT_TRUE(
        parse_fault_plan("kill:" + std::to_string(kill_offset), &options.faults, &error));
    CampaignOutcome child_outcome;
    run_campaign(compiled, options, &child_outcome, &error);
    ::_exit(42);  // only reached if the kill offset never fired
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 137) << "kill offset " << kill_offset << " never fired";

  experiment::ParallelRunner::set_default_workers(workers);
  RunOptions options = make_options(dir);
  options.resume = true;
  std::string error;
  ASSERT_TRUE(run_campaign(compiled, options, outcome, &error)) << error;
  experiment::ParallelRunner::set_default_workers(0);
  EXPECT_TRUE(outcome->all_ok());
}

void check_kill_resume_identity(const CompiledCampaign& compiled, const std::string& tag,
                                const std::vector<uint64_t>& offsets,
                                const std::vector<unsigned>& worker_counts) {
  const std::map<std::string, std::string> reference =
      reference_artifacts(compiled, tag + "_ref");
  ASSERT_FALSE(reference.empty());
  for (const uint64_t offset : offsets) {
    for (const unsigned workers : worker_counts) {
      const std::string dir =
          fresh_dir(tag + "_k" + std::to_string(offset) + "_w" + std::to_string(workers));
      CampaignOutcome outcome;
      kill_then_resume(compiled, offset, workers, dir, &outcome);
      // Offset n = killed after the nth unit record: exactly n units must
      // replay from the journal instead of recomputing.
      EXPECT_EQ(outcome.units_resumed, offset)
          << tag << " kill:" << offset << " workers=" << workers;
      const std::map<std::string, std::string> resumed = read_artifacts(dir);
      ASSERT_EQ(resumed.size(), reference.size())
          << tag << " kill:" << offset << " workers=" << workers;
      for (const auto& [name, bytes] : reference) {
        ASSERT_TRUE(resumed.contains(name)) << name;
        EXPECT_EQ(resumed.at(name), bytes)
            << name << " drifted after kill:" << offset << " workers=" << workers;
      }
    }
  }
}

// --- Kill-resume bit-identity -------------------------------------------

// Static campaign (smoke: baseline + 2 cells = 3 unit records; offsets 1-3
// cover "one unit journaled" through "everything journaled, artifacts not
// yet written") at 1, 2, and 8 workers.
TEST(CampaignResilienceTest, KillResumeIdentitySmoke) {
  const CompiledCampaign compiled = compile_file("smoke.json");
  check_kill_resume_identity(compiled, "smoke", {1, 2, 3}, {1, 2, 8});
}

// Dynamics campaign: churn + arrivals exercise the dynamics metrics and
// trace fields through the journal's RunResult blob.
TEST(CampaignResilienceTest, KillResumeIdentityChurnBaseline) {
  const CompiledCampaign compiled = compile_file("churn_baseline.json");
  check_kill_resume_identity(compiled, "churn", {1, 2, 3}, {1, 2, 8});
}

// Figure campaign (in-test spec: 2x2 grid + baseline = 5 units): the
// resumed run must reproduce the figure CSV, trace CSV, and gnuplot script
// byte-for-byte, not just the manifest.
TEST(CampaignResilienceTest, KillResumeIdentityFigureOutputs) {
  const CompiledCampaign compiled = compile_text(
      "{\n"
      "  \"name\": \"figtest\",\n"
      "  \"deployment\": { \"peers\": 10, \"aus\": 2, \"duration_years\": 0.4, "
      "\"seed\": 11, \"seeds\": 1 },\n"
      "  \"damage\": { \"mean_disk_years_between_failures\": 0.2, \"aus_per_disk\": 2.0 },\n"
      "  \"trace_days\": 60.0,\n"
      "  \"adversary\": [ { \"kind\": \"pipe_stoppage\", \"attack_days\": 20, "
      "\"recuperation_days\": 10, \"coverage_percent\": 50 } ],\n"
      "  \"sweep\": [\n"
      "    { \"param\": \"attack_days\", \"phase\": 0, \"label\": \"d\", \"values\": [10, 30] },\n"
      "    { \"param\": \"coverage_percent\", \"phase\": 0, \"label\": \"c\", "
      "\"values\": [50, 100] }\n"
      "  ],\n"
      "  \"outputs\": { \"figure\": { \"metric\": \"access_failure\", "
      "\"row_header\": \"duration_days\", \"title\": \"resilience fig test\", "
      "\"x_label\": \"Attack duration (days)\", \"log_x\": true, \"log_y\": true, "
      "\"csv\": \"figtest.csv\" } }\n"
      "}\n",
      "fig");
  ASSERT_EQ(compiled.cells.size(), 4u);
  check_kill_resume_identity(compiled, "fig", {1, 3, 5}, {1, 8});
}

// --- Failure isolation and retry ----------------------------------------

TEST(CampaignResilienceTest, FailedCellCompletesGridAndIsRecorded) {
  const CompiledCampaign compiled = compile_file("smoke.json");
  const std::string dir = fresh_dir("failed_cell");
  RunOptions options = make_options(dir);
  options.retries = 1;
  std::string error;
  ASSERT_TRUE(parse_fault_plan("cell:0@99", &options.faults, &error)) << error;

  CampaignOutcome outcome;
  // Cell failure is not an I/O failure: the run "succeeds" and reports.
  ASSERT_TRUE(run_campaign(compiled, options, &outcome, &error)) << error;
  EXPECT_FALSE(outcome.all_ok());
  EXPECT_EQ(outcome.units_failed, 1u);
  ASSERT_EQ(outcome.cell_status.size(), 2u);
  EXPECT_FALSE(outcome.cell_status[0].ok);
  EXPECT_EQ(outcome.cell_status[0].attempts, 2u);  // 1 + retries
  EXPECT_FALSE(outcome.cell_status[0].error.empty());
  // The rest of the grid completed.
  EXPECT_TRUE(outcome.baseline_status.ok);
  EXPECT_TRUE(outcome.cell_status[1].ok);
  EXPECT_GT(outcome.cells[1].report.successful_polls, 0u);

  // The manifest records the failure (and only campaigns with failures
  // carry these keys — golden fixtures never see them).
  const std::string manifest = read_bytes(dir + "/smoke.manifest.json");
  EXPECT_NE(manifest.find("\"failed_units\": 1"), std::string::npos);
  EXPECT_NE(manifest.find("\"status\": \"failed\""), std::string::npos);
  EXPECT_NE(manifest.find("injected cell fault"), std::string::npos);
}

TEST(CampaignResilienceTest, RetrySucceedsAndMatchesNoFaultRun) {
  const CompiledCampaign compiled = compile_file("smoke.json");
  const std::map<std::string, std::string> reference =
      reference_artifacts(compiled, "retry_ref");

  const std::string dir = fresh_dir("retry");
  RunOptions options = make_options(dir);
  options.retries = 2;
  std::string error;
  ASSERT_TRUE(parse_fault_plan("cell:0@1", &options.faults, &error)) << error;
  CampaignOutcome outcome;
  ASSERT_TRUE(run_campaign(compiled, options, &outcome, &error)) << error;
  EXPECT_TRUE(outcome.all_ok());
  EXPECT_EQ(outcome.cell_status[0].attempts, 2u);  // failed once, then succeeded

  // A retried run is byte-identical to a never-faulted one.
  EXPECT_EQ(read_artifacts(dir), reference);
}

// A journal holding a *failure* record re-attempts that unit on resume.
TEST(CampaignResilienceTest, ResumeReattemptsJournaledFailures) {
  const CompiledCampaign compiled = compile_file("smoke.json");
  const std::map<std::string, std::string> reference =
      reference_artifacts(compiled, "refail_ref");

  const std::string dir = fresh_dir("refail");
  RunOptions options = make_options(dir);
  std::string error;
  ASSERT_TRUE(parse_fault_plan("cell:0@99", &options.faults, &error)) << error;
  CampaignOutcome failed_outcome;
  ASSERT_TRUE(run_campaign(compiled, options, &failed_outcome, &error)) << error;
  EXPECT_EQ(failed_outcome.units_failed, 1u);

  RunOptions resume = make_options(dir);
  resume.resume = true;
  CampaignOutcome outcome;
  ASSERT_TRUE(run_campaign(compiled, resume, &outcome, &error)) << error;
  EXPECT_TRUE(outcome.all_ok());
  EXPECT_EQ(outcome.units_resumed, 2u);  // baseline + healthy cell replayed
  EXPECT_FALSE(outcome.cell_status[0].from_journal);
  EXPECT_EQ(read_artifacts(dir), reference);
}

// --- I/O faults ----------------------------------------------------------

TEST(CampaignResilienceTest, JournalIoFailureUnwindsThenResumes) {
  const CompiledCampaign compiled = compile_file("smoke.json");
  const std::map<std::string, std::string> reference =
      reference_artifacts(compiled, "jio_ref");

  const std::string dir = fresh_dir("jio");
  RunOptions options = make_options(dir);
  std::string error;
  ASSERT_TRUE(parse_fault_plan("journal-io:1", &options.faults, &error)) << error;
  CampaignOutcome outcome;
  EXPECT_FALSE(run_campaign(compiled, options, &outcome, &error));
  EXPECT_NE(error.find("journal"), std::string::npos) << error;

  RunOptions resume = make_options(dir);
  resume.resume = true;
  CampaignOutcome resumed;
  error.clear();
  ASSERT_TRUE(run_campaign(compiled, resume, &resumed, &error)) << error;
  EXPECT_TRUE(resumed.all_ok());
  EXPECT_EQ(read_artifacts(dir), reference);
}

TEST(CampaignResilienceTest, ArtifactIoFailureUnwindsCleanly) {
  const CompiledCampaign compiled = compile_file("smoke.json");
  const std::string dir = fresh_dir("aio");
  RunOptions options = make_options(dir);
  std::string error;
  ASSERT_TRUE(parse_fault_plan("artifact-io:smoke.manifest.json", &options.faults, &error));
  CampaignOutcome outcome;
  EXPECT_FALSE(run_campaign(compiled, options, &outcome, &error));
  EXPECT_NE(error.find("smoke.manifest.json"), std::string::npos) << error;
  // Neither a torn manifest nor its temp file may survive.
  EXPECT_FALSE(std::filesystem::exists(dir + "/smoke.manifest.json"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/smoke.manifest.json.tmp"));
}

// --- Journal pathologies on resume ---------------------------------------

TEST(CampaignResilienceTest, ResumeOverCorruptedJournalRecomputes) {
  const CompiledCampaign compiled = compile_file("smoke.json");
  const std::map<std::string, std::string> reference =
      reference_artifacts(compiled, "corrupt_ref");

  // Complete run, then smash a garbage tail onto the journal.
  const std::string dir = fresh_dir("corrupt");
  CampaignOutcome first;
  std::string error;
  ASSERT_TRUE(run_campaign(compiled, make_options(dir), &first, &error)) << error;
  {
    std::ofstream out(dir + "/smoke.journal", std::ios::binary | std::ios::app);
    out << "garbage tail from a crashed writer";
  }

  RunOptions resume = make_options(dir);
  resume.resume = true;
  CampaignOutcome outcome;
  ASSERT_TRUE(run_campaign(compiled, resume, &outcome, &error)) << error;
  EXPECT_EQ(outcome.units_resumed, 3u);  // prefix recovered, nothing recomputed
  EXPECT_EQ(read_artifacts(dir), reference);

  // And a completely garbage journal (no valid header) starts fresh.
  const std::string dir2 = fresh_dir("corrupt2");
  write_text(dir2 + "/smoke.journal", "not a journal at all");
  RunOptions resume2 = make_options(dir2);
  resume2.resume = true;
  CampaignOutcome outcome2;
  ASSERT_TRUE(run_campaign(compiled, resume2, &outcome2, &error)) << error;
  EXPECT_EQ(outcome2.units_resumed, 0u);
  EXPECT_EQ(read_artifacts(dir2), reference);
}

TEST(CampaignResilienceTest, ResumeRejectsSpecMismatchedJournal) {
  const CompiledCampaign compiled = compile_file("smoke.json");
  const std::string dir = fresh_dir("mismatch");
  // A valid journal written for a *different* campaign hash.
  JournalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.create(dir + "/smoke.journal", 0x1234ull, &error)) << error;
  writer.close();

  RunOptions resume = make_options(dir);
  resume.resume = true;
  CampaignOutcome outcome;
  EXPECT_FALSE(run_campaign(compiled, resume, &outcome, &error));
  EXPECT_NE(error.find("different campaign"), std::string::npos) << error;
}

}  // namespace
}  // namespace lockss::campaign
